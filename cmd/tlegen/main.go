// Command tlegen emits standard two-line element sets (TLEs) for a
// constellation shell and optionally cross-checks the bundled SGP4
// propagator against the J2-secular Kepler propagator the experiments use.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/orbit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tlegen:", err)
		os.Exit(1)
	}
}

func run() error {
	shellName := flag.String("shell", "starlink", "shell: starlink|kuiper|polar")
	check := flag.Bool("check", false, "cross-check SGP4 vs Kepler instead of printing TLEs")
	limit := flag.Int("n", 0, "print only the first n satellites (0 = all)")
	flag.Parse()

	var sh constellation.Shell
	switch *shellName {
	case "starlink":
		sh = constellation.StarlinkPhase1()
	case "kuiper":
		sh = constellation.KuiperPhase1()
	case "polar":
		sh = constellation.PolarShell()
	default:
		return fmt.Errorf("unknown shell %q", *shellName)
	}

	lines := sh.TLEs(1, geo.Epoch)
	if !*check {
		n := len(lines)
		if *limit > 0 && 2**limit < n {
			n = 2 * *limit
		}
		for i := 0; i < n; i += 2 {
			fmt.Printf("%s-%04d\n%s\n%s\n", sh.Name, i/2+1, lines[i], lines[i+1])
		}
		return nil
	}

	// Cross-check: propagate a sample of satellites with both propagators
	// and report the position divergence over 90 minutes.
	step := len(lines) / 2 / 16
	if step < 1 {
		step = 1
	}
	fmt.Printf("SGP4 vs J2-Kepler divergence for %s (90 min):\n", sh.Name)
	worst := 0.0
	for si := 0; si < len(lines)/2; si += step {
		tle, err := orbit.ParseTLE(lines[2*si], lines[2*si+1])
		if err != nil {
			return fmt.Errorf("sat %d: %w", si, err)
		}
		sgp4, err := orbit.NewSGP4(tle)
		if err != nil {
			return fmt.Errorf("sat %d: %w", si, err)
		}
		kep := orbit.NewKepler(tle.Elements())
		max := 0.0
		for m := 0; m <= 90; m += 10 {
			at := geo.Epoch.Add(time.Duration(m) * time.Minute)
			d := sgp4.PositionECI(at).Distance(kep.PositionECI(at))
			if d > max {
				max = d
			}
		}
		fmt.Printf("  sat %4d: max divergence %6.2f km\n", si, max)
		if max > worst {
			worst = max
		}
	}
	fmt.Printf("worst sampled divergence: %.2f km\n", worst)
	return nil
}
