// The serve subcommand runs the constellation query service: one sim, built
// once at startup, answering concurrent path/latency/reachability queries
// over HTTP until SIGINT/SIGTERM, then draining gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"time"

	"leosim"
	"leosim/internal/fault"
	"leosim/internal/server"
	"leosim/internal/version"
)

// newLogger builds the serve request logger from the -log-level/-log-format
// flags; both handlers write to stderr, keeping stdout clean.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func runServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("leosim serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	scaleName := fs.String("scale", "reduced", "simulation scale: tiny|reduced|large|full")
	constName := fs.String("constellation", "starlink", "constellation: starlink|kuiper")
	snapshots := fs.Int("snapshots", 0, "override the snapshot count (0 = scale default)")
	cities := fs.Int("cities", 0, "override the number of cities (0 = scale default)")
	cacheSize := fs.Int("cache-size", 0, "snapshot cache capacity in graphs (0 = snapshots+4, or 2×snapshots+8 with -prime)")
	prime := fs.Bool("prime", false, "prime the snapshot cache in the background at startup: walk the day incrementally and deposit every snapshot for both modes")
	oracleOn := fs.Bool("oracle", false, "with -prime, also build a distance oracle per primed snapshot so /v1/paths batches start warm")
	oracleLandmarks := fs.Int("oracle-landmarks", 0, "ALT landmarks per oracle (0 = default 8)")
	cacheTTL := fs.Duration("cache-ttl", 0, "snapshot cache entry TTL (0 = never expire)")
	staleFor := fs.Duration("cache-stale-for", 0, "serve expired snapshots (marked stale) this long past TTL while rebuilding in the background")
	buildTimeout := fs.Duration("build-timeout", 0, "per-snapshot build deadline (0 = unbounded)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive build failures that trip the circuit breaker (0 = default 5, negative = disabled)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before one probe build (0 = 5s)")
	chaosFail := fs.Float64("chaos-fail", 0, "chaos: probability a snapshot build fails (testing only)")
	chaosPanic := fs.Float64("chaos-panic", 0, "chaos: probability a snapshot build panics (testing only)")
	chaosDelay := fs.Duration("chaos-delay", 0, "chaos: added latency per snapshot build (testing only)")
	chaosSeed := fs.Int64("chaos-seed", 1, "chaos: injection seed (same seed, same faults)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent query cap, excess sheds 429 (0 = 2×GOMAXPROCS)")
	reqTimeout := fs.Duration("req-timeout", 15*time.Second, "per-query deadline")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound after SIGTERM")
	logLevel := fs.String("log-level", "info", "request log level: debug|info|warn|error")
	logFormat := fs.String("log-format", "text", "request log format: text|json")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: leosim serve [flags]\n\nendpoints: /v1/path /v1/latency /v1/reachability /v1/snapshots /healthz\n           POST /v1/paths (batched multi-pair queries, oracle-served)\n           /metrics (JSON; ?format=prometheus for text exposition)\n           /debug/events (flight recorder) /debug/trace (Perfetto span capture)\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("serve takes no positional arguments")
	}

	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *snapshots > 0 {
		scale.NumSnapshots = *snapshots
	}
	if *cities > 0 {
		scale.NumCities = *cities
	}
	choice, err := constellationByName(*constName)
	if err != nil {
		return err
	}
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	start := time.Now()
	sim, err := leosim.NewSim(choice, scale)
	if err != nil {
		return err
	}
	var chaos *fault.Chaos
	if *chaosFail > 0 || *chaosPanic > 0 || *chaosDelay > 0 {
		chaos = fault.NewChaos(*chaosSeed, *chaosFail, *chaosPanic, *chaosDelay)
		fmt.Fprintf(os.Stderr, "chaos injection armed: fail=%.2f panic=%.2f delay=%v seed=%d\n",
			*chaosFail, *chaosPanic, *chaosDelay, *chaosSeed)
	}
	srv, err := server.New(server.Config{
		Sim:              sim,
		CacheSize:        *cacheSize,
		CacheTTL:         *cacheTTL,
		CacheStaleFor:    *staleFor,
		BuildTimeout:     *buildTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		PrimeSnapshots:   *prime,
		PrimeOracles:     *oracleOn,
		OracleLandmarks:  *oracleLandmarks,
		Chaos:            chaos,
		MaxInFlight:      *maxInFlight,
		RequestTimeout:   *reqTimeout,
		DrainTimeout:     *drainTimeout,
		Logger:           logger,
		EnablePprof:      *pprofOn,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s\nserving %s on http://%s (built in %v)\n",
		version.Get(), sim, ln.Addr(), time.Since(start).Round(time.Millisecond))
	return srv.Serve(ctx, ln)
}
