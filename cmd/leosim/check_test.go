package main

import (
	"context"
	"errors"
	"testing"
)

// The check subcommand's CLI face: both reference scenarios must sweep clean
// end-to-end (this is the "leosim check exits 0" acceptance test; the
// invariant logic itself lives in internal/check and internal/core tests).
func TestRunCheckCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("full check sweep in -short mode")
	}
	for _, scen := range []string{"starlink", "kuiper"} {
		scen := scen
		t.Run(scen, func(t *testing.T) {
			args := []string{"check", "-scenario", scen, "-scale", "tiny", "-snapshots", "1"}
			if err := run(context.Background(), args); err != nil {
				t.Fatalf("run(%v) = %v, want clean sweep", args, err)
			}
		})
	}
}

func TestRunCheckErrors(t *testing.T) {
	cases := [][]string{
		{"check", "extra"},                  // positional args
		{"check", "-scenario", "teledesic"}, // unknown scenario
		{"check", "-scale", "huge"},         // unknown scale
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) should fail", args)
		} else if errors.Is(err, errViolations) {
			t.Errorf("run(%v) reported violations, want a usage error: %v", args, err)
		}
	}
}

func TestRunCheckCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"check", "-scale", "tiny", "-snapshots", "1"}); err == nil {
		t.Fatal("cancelled check should fail")
	}
}
