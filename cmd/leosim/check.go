// The check subcommand runs the invariant-validation sweep (internal/check)
// against a reference scenario and reports violations as structured JSON on
// stdout. Exit status is nonzero when any invariant fails, so CI can gate on
// it directly:
//
//	leosim check -scenario starlink -snapshots 4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"leosim"
)

// errViolations distinguishes "the sweep found violations" (report printed,
// exit 1) from operational failures (bad flags, cancelled run).
var errViolations = fmt.Errorf("invariant violations found")

func runCheck(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("leosim check", flag.ContinueOnError)
	scenName := fs.String("scenario", "starlink", "reference scenario: starlink|kuiper")
	scaleName := fs.String("scale", "tiny", "scenario scale: tiny|reduced|large|full")
	snapshots := fs.Int("snapshots", 4, "snapshots to sweep (0 = all at this scale)")
	pairs := fs.Int("pairs", 0, "per-snapshot pair sample for symmetry/dominance checks (0 = default)")
	optPairs := fs.Int("opt-pairs", 0, "per-snapshot pair sample for the naive-Dijkstra optimality check (0 = default)")
	sgp4 := fs.Bool("sgp4", false, "propagate with SGP4 instead of the analytic J2 model")
	motifName := fs.String("motif", "", "validate under an ISL topology motif: plus-grid|diag-grid|ladder|nearest|demand (default +Grid)")
	verbose := fs.Bool("v", false, "also list violation samples on stderr")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: leosim check [flags]\n\nRuns physics/graph/routing/flow invariant checks over snapshot graphs and\nprints a JSON report; exits 1 if any invariant is violated.\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("check takes no positional arguments")
	}

	choice, err := constellationByName(*scenName)
	if err != nil {
		return fmt.Errorf("bad -scenario: %w", err)
	}
	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	var opts []leosim.SimOption
	if *sgp4 {
		opts = append(opts, leosim.WithSGP4Propagation())
	}
	if *motifName != "" {
		id, err := leosim.ParseMotif(*motifName)
		if err != nil {
			return fmt.Errorf("bad -motif: %w", err)
		}
		opts = append(opts, leosim.WithMotifID(id))
	}

	start := time.Now()
	sim, err := leosim.NewSim(choice, scale, opts...)
	if err != nil {
		return err
	}
	rep, err := leosim.RunCheck(ctx, sim, leosim.CheckOptions{
		Snapshots:        *snapshots,
		PairSample:       *pairs,
		OptimalitySample: *optPairs,
	})
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Scenario  string              `json:"scenario"`
		Scale     string              `json:"scale"`
		Snapshots int                 `json:"snapshots"`
		ElapsedMs int64               `json:"elapsedMs"`
		Report    *leosim.CheckReport `json:"report"`
	}{*scenName, *scaleName, *snapshots, time.Since(start).Milliseconds(), rep}); err != nil {
		return err
	}
	if !rep.OK() {
		if *verbose {
			for _, v := range rep.Violations() {
				fmt.Fprintf(os.Stderr, "violation [%s %s/%s] %s\n",
					v.Class, v.Snapshot, v.Mode, v.Detail)
			}
		}
		return fmt.Errorf("%w: %s", errViolations, rep.Summary())
	}
	fmt.Fprintln(os.Stderr, "check:", rep.Summary())
	return nil
}
