// Command leosim runs the paper's experiments from the command line, one
// subcommand per table/figure:
//
//	leosim fig2a|fig2b      latency and its variability (§4)
//	leosim fig3             Maceió–Durban path trace (§4)
//	leosim fig4             aggregate throughput matrix (§5)
//	leosim fig5             ISL capacity sweep (§5)
//	leosim disconnected     BP's stranded satellites (§5)
//	leosim fig6             weather attenuation across pairs (§6)
//	leosim fig8             Delhi–Sydney weather comparison (§6)
//	leosim fig9             GSO arc avoidance (§7)
//	leosim fig10            cross-shell BP augmentation (§8)
//	leosim fig11            Paris fiber augmentation (§8)
//	leosim resilience       fault-injection degradation sweep (-fault scenario)
//	leosim topo             ISL topology-lab sweep: motifs × modes (-motif picks one for other runs)
//	leosim all              everything above
//	leosim serve            HTTP query service over one sim (see -h for flags)
//	leosim check            invariant-validation sweep, JSON report, exit 1 on violations
//
// Scale is selected with -scale tiny|reduced|large|full; "full" reproduces the
// paper's sizing (1,000 cities, 5,000 pairs, 0.5° relay grid, 96 snapshots)
// and needs minutes to hours of CPU depending on the experiment.
// `leosim -version` prints the build identity (also served from /healthz).
//
// Ctrl-C (or SIGTERM) cancels the run cooperatively: experiments stop within
// about one snapshot's work, and the ones that aggregate across snapshots
// flush the completed prefix — with -json, as a valid envelope marked
// "partial": true — before the process exits.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"syscall"
	"time"

	"leosim"
	"leosim/internal/atomicfile"
	"leosim/internal/constellation"
	"leosim/internal/ground"
	"leosim/internal/version"
)

// stdout is where experiment results go; a variable so tests can capture
// the exact byte stream a run produces.
var stdout io.Writer = os.Stdout

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// SIGQUIT dumps the flight recorder to stderr and keeps running — the
	// "what has this stuck process been doing" probe for batch sweeps and
	// serve alike. (This replaces the Go runtime's kill-with-stacks default;
	// use SIGABRT for goroutine dumps.)
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			leosim.DumpTelemetryEvents(os.Stderr)
		}
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "leosim:", err)
		os.Exit(1)
	}
}

// scaleByName resolves -scale values; serve shares it with the experiments.
func scaleByName(name string) (leosim.Scale, error) {
	switch name {
	case "tiny":
		return leosim.TinyScale(), nil
	case "reduced":
		return leosim.ReducedScale(), nil
	case "large":
		return leosim.LargeScale(), nil
	case "full":
		return leosim.FullScale(), nil
	default:
		return leosim.Scale{}, fmt.Errorf("unknown scale %q (want tiny|reduced|large|full)", name)
	}
}

// constellationByName resolves -constellation values.
func constellationByName(name string) (leosim.ConstellationChoice, error) {
	switch name {
	case "starlink":
		return leosim.Starlink, nil
	case "kuiper":
		return leosim.Kuiper, nil
	default:
		return 0, fmt.Errorf("unknown constellation %q (want starlink|kuiper)", name)
	}
}

func run(ctx context.Context, args []string) error {
	// serve is a subcommand with its own flag set (server knobs differ from
	// experiment knobs), dispatched before experiment flag parsing.
	if len(args) > 0 && args[0] == "serve" {
		return runServe(ctx, args[1:])
	}
	// check likewise dispatches to its own flag set; it validates invariants
	// rather than running an experiment.
	if len(args) > 0 && args[0] == "check" {
		return runCheck(ctx, args[1:])
	}

	fs := flag.NewFlagSet("leosim", flag.ContinueOnError)
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	scaleName := fs.String("scale", "reduced", "experiment scale: tiny|reduced|large|full")
	constName := fs.String("constellation", "starlink", "constellation: starlink|kuiper")
	cdfPoints := fs.Int("cdf-points", 20, "points per printed CDF series (0 = none)")
	jsonOut := fs.Bool("json", false, "emit results as JSON envelopes instead of text")
	verbose := fs.Bool("v", false, "debug logging plus progress/ETA lines for long-running phases on stderr")
	quiet := fs.Bool("quiet", false, "errors only on stderr (overrides -v)")
	traceFile := fs.String("trace", "", "write a runtime/trace of the run to this file")
	traceEventFile := fs.String("tracefile", "", "write a Chrome trace_event JSON span trace of the run (open in Perfetto) to this file")
	seed := fs.Int64("seed", 0, "override the traffic-matrix sampling seed (0 = scale default)")
	pairs := fs.Int("pairs", 0, "override the number of sampled city pairs (0 = scale default)")
	cities := fs.Int("cities", 0, "override the number of cities (0 = scale default)")
	snapshots := fs.Int("snapshots", 0, "override the snapshot count (0 = scale default)")
	faultName := fs.String("fault", "sat", "resilience scenario: sat|plane|site|isl|gslcap")
	motifName := fs.String("motif", "", "ISL topology motif: plus-grid|diag-grid|ladder|nearest|demand (default +Grid)")
	churnStep := fs.Duration("churn-step", time.Second, "churn experiment: time between instants")
	churnWindow := fs.Duration("churn-window", time.Minute, "churn experiment: total simulated span")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile for the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	resume := fs.String("resume", "", "journal experiment/snapshot completion to this file and resume from it after a crash or Ctrl-C")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: leosim [flags] <experiment>\n       leosim serve [flags]\n       leosim check [flags]\n\nexperiments: fig2a fig2b fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 te modcod churn xchurn passes util pathchurn beams relays gsoimpact resilience topo geojson disconnected info all ext\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(version.Get())
		return nil
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one experiment expected")
	}
	cmd := strings.ToLower(fs.Arg(0))

	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if *pairs > 0 {
		scale.NumPairs = *pairs
	}
	if *cities > 0 {
		scale.NumCities = *cities
	}
	if *snapshots > 0 {
		scale.NumSnapshots = *snapshots
	}
	choice, err := constellationByName(*constName)
	if err != nil {
		return err
	}

	// All operator chatter (run headers, timings, progress) goes through
	// slog on stderr, so stdout carries nothing but results — with -json, a
	// machine-clean stream of envelopes.
	lvl := slog.LevelInfo
	switch {
	case *quiet:
		lvl = slog.LevelError
	case *verbose:
		lvl = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	if *verbose {
		leosim.SetProgress(os.Stderr)
	}
	// Batch runs always record stage histograms: the cost with telemetry
	// enabled is still nanoseconds per stage, and the per-run breakdown
	// (stage_times, debug logs) depends on it.
	leosim.EnableTelemetry()
	// -tracefile captures every span the run completes — one track per
	// snapshot — and exports Chrome trace_event JSON for Perfetto.
	if *traceEventFile != "" {
		if _, err := leosim.StartTracing(leosim.DefaultTraceCapacity); err != nil {
			return fmt.Errorf("tracefile: %w", err)
		}
		defer func() {
			tr := leosim.StopTracing()
			if tr == nil {
				return
			}
			f, err := atomicfile.Create(*traceEventFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "leosim: tracefile:", err)
				return
			}
			defer f.Abort() // no-op once committed
			if err := tr.WriteChrome(f); err != nil {
				fmt.Fprintln(os.Stderr, "leosim: tracefile:", err)
				return
			}
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "leosim: tracefile:", err)
			}
		}()
	}
	// Profiles and traces go through atomic temp+fsync+rename writes: a
	// crash mid-run leaves no truncated file for pprof to choke on later.
	if *traceFile != "" {
		f, err := atomicfile.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Abort() // no-op once committed
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer func() {
			trace.Stop()
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "leosim: trace:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := atomicfile.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Abort()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "leosim: cpuprofile:", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := atomicfile.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "leosim: memprofile:", err)
				return
			}
			defer f.Abort()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "leosim: memprofile:", err)
				return
			}
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "leosim: memprofile:", err)
			}
		}()
	}

	start := time.Now()
	var simOpts []leosim.SimOption
	if *motifName != "" {
		id, err := leosim.ParseMotif(*motifName)
		if err != nil {
			return err
		}
		simOpts = append(simOpts, leosim.WithMotifID(id))
	}
	sim, err := leosim.NewSim(choice, scale, simOpts...)
	if err != nil {
		return err
	}
	logger.Info("sim ready", "sim", sim.String(),
		"buildMs", time.Since(start).Milliseconds())

	// -resume binds this run to a journal: completed experiments replay
	// their stored output, the snapshot-level sweeps skip journaled
	// snapshots, and the journal description pins every flag that shapes
	// the output so incompatible runs can never be spliced together.
	var jour *leosim.Journal
	if *resume != "" {
		desc := fmt.Sprintf("%s cmd=%s json=%t cdf=%d fault=%s churn=%v/%v",
			sim, cmd, *jsonOut, *cdfPoints, *faultName, *churnStep, *churnWindow)
		jour, err = leosim.OpenJournal(*resume, desc)
		if err != nil {
			return err
		}
		ctx = leosim.WithJournal(ctx, jour)
		logger.Info("journal open", "path", *resume, "records", jour.Len())
	}

	experiments := []string{cmd}
	switch cmd {
	case "all":
		experiments = []string{"fig2a", "fig3", "fig4", "fig5", "disconnected",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
	case "ext":
		experiments = []string{"util", "pathchurn", "te", "modcod", "beams",
			"gsoimpact", "resilience", "topo", "churn", "xchurn", "passes"}
	}
	for _, e := range experiments {
		if jour != nil {
			if out, ok := jour.DoneOutput(e); ok {
				logger.Info("experiment replayed from journal", "name", e)
				leosim.EmitJournalReplayEvent(e, len(out))
				if _, err := stdout.Write(out); err != nil {
					return err
				}
				continue
			}
		}
		t0 := time.Now()
		logger.Info("experiment start", "name", e)
		// One recorder per experiment: every pipeline stage run under this
		// context attributes its time here, surfacing as "stage_times" in
		// the JSON envelope and in the done log line.
		rec := leosim.NewTelemetryRecorder()
		ectx := leosim.WithTelemetryRecorder(ctx, rec)
		w := stdout
		emitRec := rec
		var buf *bytes.Buffer
		if jour != nil {
			// Journaled output is buffered so only complete experiments are
			// marked done, and emitted without stage_times — wall-clock
			// timings would make replayed output differ from recomputed.
			buf = &bytes.Buffer{}
			w = buf
			emitRec = nil
		}
		churnOpt := leosim.ChurnOptions{Step: *churnStep, Window: *churnWindow}
		rerr := runExperiment(ectx, sim, e, *cdfPoints, *jsonOut, *faultName, churnOpt, emitRec, w)
		if buf != nil && buf.Len() > 0 {
			// Flush even on error: a cancelled sweep still emits its
			// partial-prefix envelope, exactly like an unjournaled run.
			if _, err := stdout.Write(buf.Bytes()); err != nil {
				return err
			}
		}
		if rerr != nil {
			return fmt.Errorf("%s: %w", e, rerr)
		}
		if jour != nil {
			if err := jour.MarkDone(e, buf.Bytes()); err != nil {
				return err
			}
		}
		attrs := []any{slog.String("name", e),
			slog.Int64("durMs", time.Since(t0).Milliseconds())}
		if stages := rec.Summary(); stages != "" {
			attrs = append(attrs, slog.String("stages", stages))
		}
		logger.Info("experiment done", attrs...)
	}
	return nil
}

func runExperiment(ctx context.Context, sim *leosim.Sim, cmd string, cdfPoints int, jsonOut bool, faultName string, churnOpt leosim.ChurnOptions, rec *leosim.TelemetryRecorder, w io.Writer) error {
	// partial is set by the experiments that can flush a completed prefix
	// after cancellation (fig2a/fig2b, disconnected, resilience) before they
	// call emit; the JSON envelope then carries "partial": true.
	partial := false
	emit := func(data interface{}, text func()) error {
		if jsonOut {
			return leosim.WriteJSONStages(w, cmd, sim, data, partial, rec)
		}
		text()
		return nil
	}
	switch cmd {
	case "info":
		fmt.Fprintln(w, sim)
		return nil
	case "fig2a", "fig2b":
		res, rerr := leosim.RunLatency(ctx, sim)
		if res == nil {
			return rerr
		}
		partial = res.Partial
		if err := emit(res, func() { leosim.WriteLatencyReport(w, res, cdfPoints) }); err != nil {
			return err
		}
		return rerr
	case "fig3":
		for _, name := range []string{"Maceió", "Durban"} {
			if err := sim.EnsureCity(name); err != nil {
				return err
			}
		}
		res, err := leosim.RunPathTrace(ctx, sim, "Maceió", "Durban", leosim.BP)
		if err != nil {
			return err
		}
		return emit(res, func() {
			for _, tr := range res.Traces {
				if tr.Reachable {
					fmt.Fprintf(w, "%s rtt=%6.1fms hops=%2d aircraft=%d route=%s\n",
						tr.Time.Format("15:04"), tr.RTTMs, tr.Hops, tr.AircraftHops, tr.Route)
				} else {
					fmt.Fprintf(w, "%s unreachable\n", tr.Time.Format("15:04"))
				}
			}
			fmt.Fprintf(w, "fig3 RTT inflation (max-min): %.1f ms; uses aircraft: %v\n",
				res.RTTInflationMs(), res.UsesAircraftEver())
		})
	case "fig4":
		rows, err := leosim.RunFig4(ctx, sim)
		if err != nil {
			return err
		}
		return emit(rows, func() { leosim.WriteFig4Report(w, rows) })
	case "fig5":
		pts, bp, err := leosim.RunFig5(ctx, sim, []float64{0.5, 1, 2, 3, 4, 5})
		if err != nil {
			return err
		}
		return emit(struct {
			BPBaselineGbps float64            `json:"bpBaselineGbps"`
			Points         []leosim.Fig5Point `json:"points"`
		}{bp, pts}, func() { leosim.WriteFig5Report(w, pts, bp) })
	case "disconnected":
		res, rerr := leosim.RunDisconnected(ctx, sim)
		if res == nil {
			return rerr
		}
		partial = res.Partial
		if err := emit(res, func() { leosim.WriteDisconnectReport(w, res) }); err != nil {
			return err
		}
		return rerr
	case "topo":
		// Topology lab: every ISL motif × {BP, Hybrid} compared on latency,
		// throughput, fault resilience and route churn (§ topology design).
		res, err := leosim.RunTopo(ctx, sim, leosim.TopoOptions{
			FaultScenario: leosim.FaultScenario(faultName),
			ChurnStep:     churnOpt.Step,
			ChurnWindow:   churnOpt.Window,
		})
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteTopoReport(w, res) })
	case "resilience":
		sc := leosim.FaultScenario(faultName)
		res, rerr := leosim.RunResilience(ctx, sim, sc, nil)
		if res == nil {
			return rerr
		}
		partial = res.Partial
		if err := emit(res, func() { leosim.WriteResilienceReport(w, res) }); err != nil {
			return err
		}
		return rerr
	case "fig6":
		res, err := leosim.RunWeather(ctx, sim)
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteWeatherReport(w, res, cdfPoints) })
	case "fig7":
		res, err := leosim.RunHeatmap(ctx, sim, "Delhi", "Sydney", 2)
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteHeatmapReport(w, res) })
	case "fig8":
		res, err := leosim.RunPairWeather(ctx, sim, "Delhi", "Sydney")
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WritePairWeatherReport(w, res) })
	case "fig9":
		rows, err := leosim.RunGSOArc(ctx, sim, 40, []float64{0, 10, 20, 30, 40, 50, 60, 70, 80})
		if err != nil {
			return err
		}
		return emit(rows, func() { leosim.WriteGSOReport(w, rows) })
	case "fig10":
		res, err := leosim.RunCrossShell(ctx, sim, "Brisbane", "Tokyo")
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteCrossShellReport(w, res) })
	case "relays":
		base := sim.Scale
		points, err := leosim.RunRelayDensitySweep(ctx, sim.Choice, base, []float64{base.RelaySpacingDeg, base.RelaySpacingDeg * 2, base.RelaySpacingDeg * 4})
		if err != nil {
			return err
		}
		return emit(points, func() { leosim.WriteRelayReport(w, points) })
	case "gsoimpact":
		res, err := leosim.RunGSOImpact(ctx, sim)
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteGSOImpactReport(w, res) })
	case "beams":
		points, err := leosim.RunBeamSweep(ctx, sim, []int{2, 4, 8, 16, 0}, leosim.Epoch)
		if err != nil {
			return err
		}
		return emit(points, func() { leosim.WriteBeamReport(w, points) })
	case "geojson":
		return leosim.WriteSnapshotGeoJSON(w, sim, 0, leosim.Epoch)
	case "util":
		bp, err := leosim.RunUtilization(ctx, sim, leosim.BP, leosim.Epoch)
		if err != nil {
			return err
		}
		hy, err := leosim.RunUtilization(ctx, sim, leosim.Hybrid, leosim.Epoch)
		if err != nil {
			return err
		}
		return emit([]*leosim.UtilizationResult{bp, hy}, func() {
			leosim.WriteUtilizationReport(w, bp, hy)
		})
	case "pathchurn":
		res, err := leosim.RunPathChurn(ctx, sim)
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WritePathChurnReport(w, res) })
	case "passes":
		// §2: "Each satellite is reachable from a GT for a few minutes."
		city, err := ground.CityByName("London")
		if err != nil {
			return err
		}
		st, err := constellation.TerminalPassStats(sim.Const, city.Position(),
			sim.Choice.Shell().MinElevationDeg, leosim.Epoch, time.Hour, 20*time.Second)
		if err != nil {
			return err
		}
		return emit(st, func() {
			fmt.Fprintf(w, "passes over %s in 1h: %d (mean %v, max %v)\n",
				city.Name, st.Passes, st.MeanDuration.Round(time.Second), st.MaxDuration.Round(time.Second))
			fmt.Fprintf(w, "passes mean simultaneously visible satellites: %.1f\n", st.MeanVisible)
		})
	case "churn":
		// Seconds-scale link/route dynamics via the incremental advancer —
		// resolution the 15-minute snapshot grid cannot see.
		res, err := leosim.RunChurn(ctx, sim, churnOpt)
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteChurnReport(w, res) })
	case "xchurn":
		// §8: cross-shell ISL pairings are short-lived. Quantified against
		// a polar shell added to this sim's constellation.
		multi, err := constellation.New(
			[]constellation.Shell{sim.Choice.Shell(), constellation.PolarShell()},
			constellation.WithISLs())
		if err != nil {
			return err
		}
		st, err := constellation.CrossShellChurn(multi, 0, 1, leosim.Epoch, time.Minute, 45)
		if err != nil {
			return err
		}
		return emit(st, func() {
			fmt.Fprintf(w, "xchurn cross-shell pairing lifetime: %v\n", st.MeanLifetime.Round(time.Second))
			fmt.Fprintf(w, "xchurn switches per satellite-hour: %.1f (intra-shell +Grid: 0)\n", st.SwitchesPerSatPerHour)
			fmt.Fprintf(w, "xchurn mean nearest range: %.0f km\n", st.MeanRangeKm)
		})
	case "modcod":
		res, err := leosim.RunWeatherCapacity(ctx, sim)
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteModcodReport(w, res) })
	case "te":
		res, err := leosim.RunTrafficEngineering(ctx, sim, leosim.Hybrid, 4, leosim.Epoch)
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteTEReport(w, res) })
	case "fig11":
		nearby := []string{"Rouen", "Orléans", "Reims", "Amiens", "Le Mans"}
		res, err := leosim.RunFiberAugmentation(ctx, sim, "Paris", nearby, 200, leosim.Epoch)
		if err != nil {
			return err
		}
		return emit(res, func() { leosim.WriteFiberReport(w, res) })
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}
