package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The CLI plumbing: flag parsing, scale/constellation resolution, and the
// dispatch table. Experiments themselves are covered by package tests; here
// each command only needs to run end-to-end at tiny scale without error.
func TestRunInfo(t *testing.T) {
	if err := run(context.Background(), []string{"-scale", "tiny", "info"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunKuiper(t *testing.T) {
	if err := run(context.Background(), []string{"-scale", "tiny", "-constellation", "kuiper", "info"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI experiment dispatch in -short mode")
	}
	for _, cmd := range []string{"fig4", "disconnected", "fig9", "xchurn", "passes", "util", "resilience"} {
		cmd := cmd
		t.Run(cmd, func(t *testing.T) {
			if err := run(context.Background(), []string{"-scale", "tiny", "-cdf-points", "0", cmd}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The seconds-scale churn experiment honours its step/window flags (a short
// window keeps the test fast) in both text and JSON form.
func TestRunChurnFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("churn dispatch in -short mode")
	}
	args := []string{"-scale", "tiny", "-churn-step", "2s", "-churn-window", "10s"}
	if err := run(context.Background(), append(args, "churn")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-json", "churn")); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-scale", "tiny", "-json", "disconnected"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                      // no experiment
		{"fig4", "extra"},                       // too many args
		{"-scale", "huge", "fig4"},              // unknown scale
		{"-constellation", "teledesic", "fig4"}, // unknown constellation
		{"-scale", "tiny", "figX"},              // unknown experiment
		{"-scale", "tiny", "-fault", "meteor", "resilience"},                    // unknown scenario
		{"-scale", "tiny", "-churn-step", "1m", "-churn-window", "1s", "churn"}, // window < step
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) should fail", args)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("run(%v) panicked: %v", args, err)
		}
	}
}

// A pre-cancelled context must abort the run with the context's error rather
// than hang or panic.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-scale", "tiny", "fig2a"})
	if err == nil {
		t.Fatal("cancelled run should fail")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("err = %v, want context.Canceled in the chain", err)
	}
}

// `leosim -version` prints the build identity and exits successfully
// without requiring an experiment.
func TestRunVersion(t *testing.T) {
	if err := run(context.Background(), []string{"-version"}); err != nil {
		t.Fatal(err)
	}
}

// The serve subcommand must come up, then drain cleanly when the run
// context is cancelled — the CLI face of the server lifecycle tests.
func TestRunServeDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-scale", "tiny", "-snapshots", "1"})
	}()
	time.Sleep(100 * time.Millisecond) // let the listener come up
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after cancel: %v, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain after cancel")
	}
}

// -quiet and -trace ride along on any run: -quiet silences the slog lines,
// -trace writes a non-empty runtime/trace file.
func TestRunQuietAndTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.trace")
	if err := run(context.Background(), []string{"-scale", "tiny", "-quiet", "-trace", out, "info"}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("trace file is empty")
	}
	// An unwritable trace path must fail up front, not mid-run.
	if err := run(context.Background(), []string{"-scale", "tiny", "-trace", filepath.Join(out, "nope"), "info"}); err == nil {
		t.Error("unwritable -trace path should fail")
	}
}

func TestRunServeErrors(t *testing.T) {
	cases := [][]string{
		{"serve", "extra"},                  // positional args
		{"serve", "-scale", "huge"},         // unknown scale
		{"serve", "-constellation", "iris"}, // unknown constellation
		{"serve", "-addr", "256.0.0.1:bad"}, // unlistenable address
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
