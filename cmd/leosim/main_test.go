package main

import (
	"strings"
	"testing"
)

// The CLI plumbing: flag parsing, scale/constellation resolution, and the
// dispatch table. Experiments themselves are covered by package tests; here
// each command only needs to run end-to-end at tiny scale without error.
func TestRunInfo(t *testing.T) {
	if err := run([]string{"-scale", "tiny", "info"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunKuiper(t *testing.T) {
	if err := run([]string{"-scale", "tiny", "-constellation", "kuiper", "info"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI experiment dispatch in -short mode")
	}
	for _, cmd := range []string{"fig4", "disconnected", "fig9", "churn", "passes", "util"} {
		cmd := cmd
		t.Run(cmd, func(t *testing.T) {
			if err := run([]string{"-scale", "tiny", "-cdf-points", "0", cmd}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunJSONFlag(t *testing.T) {
	if err := run([]string{"-scale", "tiny", "-json", "disconnected"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                      // no experiment
		{"fig4", "extra"},                       // too many args
		{"-scale", "huge", "fig4"},              // unknown scale
		{"-constellation", "teledesic", "fig4"}, // unknown constellation
		{"-scale", "tiny", "figX"},              // unknown experiment
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("run(%v) panicked: %v", args, err)
		}
	}
}
