package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// captureRun executes the CLI with stdout redirected into a buffer,
// returning the exact byte stream the run produced. Tests in this package
// run sequentially, so swapping the package-level stdout is safe.
func captureRun(ctx context.Context, args []string) ([]byte, error) {
	old := stdout
	var buf bytes.Buffer
	stdout = &buf
	defer func() { stdout = old }()
	err := run(ctx, args)
	return buf.Bytes(), err
}

// extArgs is the journaled sweep every subtest replays: the ext suite at
// tiny scale, JSON envelopes, no CDF tails (ext includes the resilience
// sweep, so both experiment-level and snapshot-level journaling are
// exercised).
func extArgs(journal string) []string {
	return []string{"-scale", "tiny", "-snapshots", "2", "-cdf-points", "0",
		"-quiet", "-json", "-resume", journal, "ext"}
}

// countDone reports how many experiments the journal has marked complete.
func countDone(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte(`"kind":"done"`))
}

// The -resume acceptance path, end to end: a journaled sweep replays
// byte-identically, a sweep killed mid-run resumes to the same bytes without
// redoing completed experiments, and a journal never accepts flags that
// would change the output it stores.
func TestResumeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweeps in -short mode")
	}
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.journal")

	// The reference: one uninterrupted journaled run.
	want, err := captureRun(context.Background(), extArgs(ref))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference run produced no output")
	}

	t.Run("replay is byte-identical", func(t *testing.T) {
		got, err := captureRun(context.Background(), extArgs(ref))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("replayed output differs from original (%d vs %d bytes)", len(got), len(want))
		}
	})

	t.Run("kill and resume is byte-identical", func(t *testing.T) {
		journal := filepath.Join(dir, "killed.journal")
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// The "kill": cancel the run's context — the CLI face of Ctrl-C —
		// once at least two experiments have journaled as done, leaving the
		// rest uncomputed.
		stopWatch := make(chan struct{})
		go func() {
			defer cancel()
			for {
				select {
				case <-stopWatch:
					return
				case <-time.After(2 * time.Millisecond):
				}
				if countDone(journal) >= 2 {
					return
				}
			}
		}()
		_, _ = captureRun(ctx, extArgs(journal)) // error expected; ignored
		close(stopWatch)

		done := countDone(journal)
		if done < 2 || done >= 11 {
			t.Fatalf("killed run journaled %d done experiments, want a strict mid-sweep prefix", done)
		}
		got, err := captureRun(context.Background(), extArgs(journal))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("resumed output differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
		}
		if countDone(journal) != 11 {
			t.Errorf("resumed journal holds %d done experiments, want all 11", countDone(journal))
		}
	})

	t.Run("refuses mismatched flags", func(t *testing.T) {
		args := extArgs(ref)
		args[5] = "7" // -cdf-points 0 → 7 changes the rendered output
		_, err := captureRun(context.Background(), args)
		if err == nil || !strings.Contains(err.Error(), "different run configuration") {
			t.Errorf("err = %v, want run-configuration mismatch", err)
		}
	})
}
