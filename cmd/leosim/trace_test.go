package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -tracefile exports the run as Chrome trace_event JSON: a well-formed
// {"traceEvents": [...]} envelope whose complete spans include one
// "snapshot[i]" envelope per swept snapshot (each its own Perfetto track)
// with the pipeline-stage spans recorded under them.
func TestRunTraceEventFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	err := run(context.Background(), []string{
		"-scale", "tiny", "-snapshots", "2", "-pairs", "8", "-cdf-points", "0",
		"-quiet", "-tracefile", out, "fig2a"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		OtherData struct {
			DroppedEvents int64 `json:"droppedEvents"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-tracefile wrote invalid JSON: %v", err)
	}
	snapshots := map[string]bool{}
	var stageSpans int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if strings.HasPrefix(ev.Name, "snapshot[") {
			snapshots[ev.Name] = true
		} else {
			stageSpans++
		}
	}
	if len(snapshots) != 2 {
		t.Errorf("trace holds %d snapshot envelopes %v, want 2", len(snapshots), snapshots)
	}
	if stageSpans == 0 {
		t.Error("trace holds no pipeline-stage spans")
	}
	if doc.OtherData.DroppedEvents != 0 {
		t.Errorf("droppedEvents = %d, want 0", doc.OtherData.DroppedEvents)
	}

	// An unwritable path must not fail the run — the sweep's results matter
	// more than its trace — but it must not leave a partial file either.
	bad := filepath.Join(out, "nope", "t.json")
	if err := run(context.Background(), []string{
		"-scale", "tiny", "-snapshots", "1", "-quiet", "-tracefile", bad, "info"}); err != nil {
		t.Fatalf("run with unwritable -tracefile: %v", err)
	}
	if fi, err := os.Stat(bad); err == nil {
		t.Errorf("partial trace file left behind: %v", fi.Name())
	}
}
