// Command constinfo inspects constellation geometry: shell parameters,
// coverage radii, ISL statistics, and satellite-visibility counts for a
// sample city, for both paper constellations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/ground"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "constinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	city := flag.String("city", "London", "anchor city for visibility counts")
	flag.Parse()

	c, err := ground.CityByName(*city)
	if err != nil {
		return err
	}
	obs := c.Position().ToECEF()

	for _, sh := range []constellation.Shell{
		constellation.StarlinkPhase1(),
		constellation.KuiperPhase1(),
		constellation.PolarShell(),
	} {
		fmt.Printf("%s: %d planes × %d sats = %d, %.0f km @ %.1f°, e_min=%.0f°\n",
			sh.Name, sh.Planes, sh.SatsPerPlane, sh.Size(),
			sh.AltitudeKm, sh.InclinationDeg, sh.MinElevationDeg)
		fmt.Printf("  coverage radius: %.0f km, max GSL length: %.0f km\n",
			sh.CoverageRadiusKm(), sh.MaxGSLKm())

		cst, err := constellation.New([]constellation.Shell{sh}, constellation.WithISLs())
		if err != nil {
			return err
		}
		st := cst.StatsAt(geo.Epoch)
		fmt.Printf("  ISLs: %d (+Grid), length %.0f–%.0f km (mean %.0f), min link altitude %.0f km\n",
			st.Count, st.MinKm, st.MaxKm, st.MeanKm, st.MinLinkAltitudeKm)

		// Visibility from the chosen city across two hours.
		minV, maxV, sum, n := 1<<30, 0, 0, 0
		for m := 0; m < 120; m += 10 {
			pos := cst.PositionsECEF(geo.Epoch.Add(time.Duration(m) * time.Minute))
			vis := 0
			for _, p := range pos {
				if geo.Visible(obs, p, sh.MinElevationDeg) {
					vis++
				}
			}
			if vis < minV {
				minV = vis
			}
			if vis > maxV {
				maxV = vis
			}
			sum += vis
			n++
		}
		fmt.Printf("  satellites visible from %s: min %d, max %d, mean %.1f\n\n",
			c.Name, minV, maxV, float64(sum)/float64(n))
	}
	return nil
}
