// Weather example: reproduce the §6 analysis — the Fig 6 comparison of
// 99.5th-percentile attenuation across city pairs, and the Fig 7/8
// Delhi–Sydney deep dive where the BP path transits the wet tropics that the
// ISL path overflies. Also demonstrates direct use of the ITU-R attenuation
// models for a single link.
//
//	go run ./examples/weather
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"leosim"
	"leosim/internal/itur"
)

func main() {
	ctx := context.Background()
	// Direct model use: a Ku-band uplink from Singapore (wet tropics) vs
	// Helsinki (dry high latitude) at 40° elevation.
	fmt.Println("--- single-link ITU-R attenuation, Ku-band uplink, e=40° ---")
	for _, site := range []struct {
		name     string
		lat, lon float64
	}{
		{"Singapore", 1.35, 103.82},
		{"Helsinki", 60.17, 24.94},
	} {
		lp := itur.LinkParams{
			LatDeg: site.lat, LonDeg: site.lon,
			ElevationDeg: 40, FreqGHz: 14.25, Pol: itur.PolCircular,
		}
		curve, err := itur.NewCurve(lp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s A(1%%)=%5.2f dB  A(0.5%%)=%5.2f dB  A(0.01%%)=%5.2f dB\n",
			site.name, curve.At(1), curve.At(0.5), curve.At(0.01))
	}

	scale := leosim.ReducedScale()
	scale.NumSnapshots = 6
	sim, err := leosim.NewSim(leosim.Starlink, scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- Fig 6: 99.5th-percentile attenuation across pairs ---")
	res, err := leosim.RunWeather(ctx, sim)
	if err != nil {
		log.Fatal(err)
	}
	leosim.WriteWeatherReport(os.Stdout, res, 10)

	fmt.Println("\n--- Fig 8: Delhi–Sydney ---")
	pw, err := leosim.RunPairWeather(ctx, sim, "Delhi", "Sydney")
	if err != nil {
		log.Fatal(err)
	}
	leosim.WritePairWeatherReport(os.Stdout, pw)
}
