// Serve example: run the constellation query service in-process and hammer
// it with concurrent clients, the workload the snapshot cache exists for.
// 24 clients fire path queries spread over a handful of snapshots and both
// connectivity modes; the cache statistics afterwards show that only one
// graph build ran per distinct (mode, snapshot) even though every snapshot
// was requested dozens of times. A repeat pass then verifies that answers
// are stable across cache hits.
//
// The client retries like a production one: exponential backoff with full
// jitter, honouring Retry-After (429 back-pressure and 503 breaker
// rejections) as a floor. That makes it double as the chaos-smoke driver:
// pointed at an external server built with injected build failures
// (-addr, see scripts/chaos_smoke.sh), it reports its success rate and
// exits non-zero below -min-success.
//
//	go run ./examples/serve
//	go run ./examples/serve -addr 127.0.0.1:8080 -requests 192 -min-success 0.95
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"leosim"
	"leosim/internal/server"
)

// maxTries bounds the retry loop; with backoff doubling from 100ms this
// spends about 6s worst-case on one unlucky query before giving up.
const maxTries = 6

// backoff returns the wait before retry attempt (0-based): exponential with
// full jitter on the upper half, floored by the server's Retry-After hint.
func backoff(attempt int, retryAfter string) time.Duration {
	d := time.Duration(100<<attempt) * time.Millisecond
	if ra, err := strconv.Atoi(retryAfter); err == nil && ra > 0 {
		if hint := time.Duration(ra) * time.Second; hint > d {
			d = hint
		}
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2+1))
}

type tally struct {
	ok, failed, shed, retried, stale, degraded atomic.Int64
}

func main() {
	addr := flag.String("addr", "", "query an already-running server at this address instead of starting one in-process (its -scale must be tiny)")
	requests := flag.Int("requests", 96, "number of path queries to issue")
	clients := flag.Int("clients", 24, "concurrent client goroutines")
	minSuccess := flag.Float64("min-success", 1.0, "exit non-zero if the answered fraction falls below this")
	flag.Parse()

	// The sim is always built locally: it is the source of the city names the
	// queries use (and, in-process, the server itself). External servers must
	// therefore run the same tiny scale.
	scale := leosim.TinyScale()
	sim, err := leosim.NewSim(leosim.Starlink, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sim)

	var srv *server.Server
	var serveDone chan error
	var stop context.CancelFunc
	base := "http://" + *addr
	if *addr == "" {
		srv, err = server.New(server.Config{Sim: sim})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		var ctx context.Context
		ctx, stop = context.WithCancel(context.Background())
		serveDone = make(chan error, 1)
		go func() { serveDone <- srv.Serve(ctx, ln) }()
		base = "http://" + ln.Addr().String()
	}
	fmt.Println("querying", base)

	// Every client asks for one of a few (pair, mode, snapshot) combinations
	// — many more queries than distinct snapshots, so most requests must be
	// served from the shared cache.
	type query struct{ src, dst, mode, snap string }
	queries := make([]query, 0, *requests)
	for i := 0; i < *requests; i++ {
		pair := sim.Pairs[i%4]
		mode := []string{"bp", "hybrid"}[i%2]
		snap := fmt.Sprint(i % 3)
		queries = append(queries, query{sim.CityName(pair.Src), sim.CityName(pair.Dst), mode, snap})
	}

	var tl tally
	// Every response carries an X-Trace-Id; for degraded answers and 5xx it
	// is the join key into the server's /debug/events flight recorder, so the
	// smoke run prints one for the operator to chase.
	var traceMu sync.Mutex
	var degradedTrace string
	// get answers one query, retrying transient failures (429 back-pressure,
	// injected 5xx, truncated bodies) under backoff. The second result
	// reports whether an answer was obtained at all.
	get := func(q query) (rtt float64, answered, reachable bool) {
		v := url.Values{}
		v.Set("src", q.src)
		v.Set("dst", q.dst)
		v.Set("mode", q.mode)
		v.Set("snap", q.snap)
		var body struct {
			Stale    bool   `json:"stale"`
			Degraded string `json:"degraded"`
			Path     struct {
				Reachable bool    `json:"reachable"`
				RTTMs     float64 `json:"rttMs"`
			} `json:"path"`
		}
		for attempt := 0; attempt < maxTries; attempt++ {
			resp, err := http.Get(base + "/v1/path?" + v.Encode())
			if err != nil {
				log.Fatal(err) // transport failure: the server is gone, not degraded
			}
			switch {
			case resp.StatusCode == http.StatusOK:
				// Decode per response: a truncated or interleaved body is a
				// server bug backoff must not paper over.
				err := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					log.Fatalf("GET /v1/path: truncated or invalid JSON body: %v", err)
				}
				if body.Stale {
					tl.stale.Add(1)
				}
				if body.Degraded != "" {
					tl.degraded.Add(1)
					if tid := resp.Header.Get("X-Trace-Id"); tid != "" {
						traceMu.Lock()
						if degradedTrace == "" {
							degradedTrace = tid
						}
						traceMu.Unlock()
					}
				}
				tl.ok.Add(1)
				return body.Path.RTTMs, true, body.Path.Reachable
			case resp.StatusCode == http.StatusTooManyRequests:
				tl.shed.Add(1)
			case resp.StatusCode >= 500:
				tl.retried.Add(1)
				if tid := resp.Header.Get("X-Trace-Id"); tid != "" {
					log.Printf("status %d trace=%s (see /debug/events), retrying", resp.StatusCode, tid)
				}
			default:
				log.Fatalf("GET /v1/path: unexpected status %d", resp.StatusCode)
			}
			ra := resp.Header.Get("Retry-After")
			resp.Body.Close()
			time.Sleep(backoff(attempt, ra))
		}
		tl.failed.Add(1)
		return 0, false, false
	}

	answers := sync.Map{} // query key → RTT from the concurrent pass
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := c; i < len(queries); i += *clients {
				q := queries[i]
				if rtt, answered, reachable := get(q); answered && reachable {
					answers.Store(fmt.Sprintf("%s→%s/%s@%s", q.src, q.dst, q.mode, q.snap), rtt)
				}
			}
		}()
	}
	wg.Wait()

	if srv != nil {
		st := srv.CacheStats()
		fmt.Printf("after %d queries from %d clients: %d graph builds, %d cache hits (%.0f%% hit rate)\n",
			len(queries), *clients, st.Builds, st.Hits, st.HitRate()*100)
	}
	rate := float64(tl.ok.Load()) / float64(len(queries))
	fmt.Printf("answered %d/%d (%.1f%%): %d shed+retried, %d 5xx+retried, %d stale, %d degraded, %d gave up\n",
		tl.ok.Load(), len(queries), rate*100, tl.shed.Load(), tl.retried.Load(),
		tl.stale.Load(), tl.degraded.Load(), tl.failed.Load())
	if degradedTrace != "" {
		fmt.Printf("first degraded answer trace: %s (join it against GET /debug/events)\n", degradedTrace)
	}

	// Repeat pass, sequentially: every answer must match the concurrent run
	// bit for bit — cached and freshly-built snapshots are interchangeable.
	mismatches := 0
	for _, q := range queries {
		rtt, answered, reachable := get(q)
		key := fmt.Sprintf("%s→%s/%s@%s", q.src, q.dst, q.mode, q.snap)
		if prev, seen := answers.Load(key); answered && reachable && seen && prev.(float64) != rtt {
			fmt.Printf("MISMATCH %s: %.3f ms then %.3f ms\n", key, prev.(float64), rtt)
			mismatches++
		}
	}
	if mismatches == 0 {
		fmt.Println("repeat pass: every cached answer identical to the first run")
	}

	if srv != nil {
		stop()
		if err := <-serveDone; err != nil {
			log.Fatal(err)
		}
		fmt.Println("drained cleanly")
	}
	if mismatches > 0 {
		os.Exit(1)
	}
	if rate < *minSuccess {
		fmt.Printf("success rate %.3f below -min-success %.3f\n", rate, *minSuccess)
		os.Exit(1)
	}
}
