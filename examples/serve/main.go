// Serve example: run the constellation query service in-process and hammer
// it with concurrent clients, the workload the snapshot cache exists for.
// Clients fire path queries for Zipf-distributed city pairs (heavy-tailed
// toward the most populous cities, like real traffic matrices) spread over
// a handful of snapshots and both connectivity modes; the cache statistics
// afterwards show that only one graph build ran per distinct (mode,
// snapshot) even though every snapshot was requested dozens of times. A
// repeat pass then verifies that answers are stable across cache hits, and
// the run closes with client-observed latency percentiles and achieved QPS.
//
// The client retries like a production one: exponential backoff with full
// jitter, honouring Retry-After (429 back-pressure and 503 breaker
// rejections) as a floor. That makes it double as the chaos-smoke driver:
// pointed at an external server built with injected build failures
// (-addr, see scripts/chaos_smoke.sh), it reports its success rate and
// exits non-zero below -min-success.
//
//	go run ./examples/serve
//	go run ./examples/serve -addr 127.0.0.1:8080 -requests 192 -min-success 0.95
//	go run ./examples/serve -batch 64 -requests 2048   # POST /v1/paths batches
//	go run ./examples/serve -pairs-file pairs.txt      # replay a fixed pair list
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"leosim"
	"leosim/internal/server"
)

// maxTries bounds the retry loop; with backoff doubling from 100ms this
// spends about 6s worst-case on one unlucky query before giving up.
const maxTries = 6

// zipfS and zipfV shape the city-pair popularity curve: s≈1.1 is the
// classic web-traffic exponent, v=2 softens the head so the top city does
// not swallow the whole draw.
const (
	zipfS = 1.1
	zipfV = 2
)

// backoff returns the wait before retry attempt (0-based): exponential with
// full jitter on the upper half, floored by the server's Retry-After hint.
func backoff(attempt int, retryAfter string) time.Duration {
	d := time.Duration(100<<attempt) * time.Millisecond
	if ra, err := strconv.Atoi(retryAfter); err == nil && ra > 0 {
		if hint := time.Duration(ra) * time.Second; hint > d {
			d = hint
		}
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2+1))
}

type tally struct {
	ok, failed, shed, retried, stale, degraded atomic.Int64
}

// pairName is one requested city pair, by name.
type pairName struct{ src, dst string }

// loadPairs reads a pairs file: one "Src,Dst" pair per line, blank lines
// and #-comments skipped. Every name must resolve in the sim.
func loadPairs(path string, find func(string) bool) ([]pairName, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []pairName
	sc := bufio.NewScanner(f)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		src, dst, ok := strings.Cut(line, ",")
		src, dst = strings.TrimSpace(src), strings.TrimSpace(dst)
		if !ok || src == "" || dst == "" || src == dst {
			return nil, fmt.Errorf("%s:%d: want \"Src,Dst\" with distinct names, got %q", path, ln, line)
		}
		for _, name := range []string{src, dst} {
			if !find(name) {
				return nil, fmt.Errorf("%s:%d: unknown city %q", path, ln, name)
			}
		}
		out = append(out, pairName{src, dst})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no pairs", path)
	}
	return out, nil
}

// zipfPairs draws n distinct-endpoint city pairs with Zipf-distributed
// popularity over the population rank (cities are sorted most-populous
// first, so rank == index). Deterministic for a given seed.
func zipfPairs(n, ncity int, seed int64) [][2]int {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, zipfS, zipfV, uint64(ncity-1))
	out := make([][2]int, 0, n)
	for len(out) < n {
		s, d := int(z.Uint64()), int(z.Uint64())
		if s == d {
			continue
		}
		out = append(out, [2]int{s, d})
	}
	return out
}

// percentile returns the pth percentile (0–100) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	addr := flag.String("addr", "", "query an already-running server at this address instead of starting one in-process (its -scale must be tiny)")
	requests := flag.Int("requests", 96, "number of path queries to issue")
	clients := flag.Int("clients", 24, "concurrent client goroutines")
	minSuccess := flag.Float64("min-success", 1.0, "exit non-zero if the answered fraction falls below this")
	pairsFile := flag.String("pairs-file", "", "replay city pairs from this file (\"Src,Dst\" per line) instead of drawing Zipf pairs")
	batch := flag.Int("batch", 0, "batch size for POST /v1/paths (0 = one GET /v1/path per query)")
	seed := flag.Int64("seed", 1, "Zipf pair-draw seed (same seed, same workload)")
	flag.Parse()

	// The sim is always built locally: it is the source of the city names the
	// queries use (and, in-process, the server itself). External servers must
	// therefore run the same tiny scale.
	scale := leosim.TinyScale()
	sim, err := leosim.NewSim(leosim.Starlink, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sim)

	var srv *server.Server
	var serveDone chan error
	var stop context.CancelFunc
	base := "http://" + *addr
	if *addr == "" {
		srv, err = server.New(server.Config{Sim: sim})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		var ctx context.Context
		ctx, stop = context.WithCancel(context.Background())
		serveDone = make(chan error, 1)
		go func() { serveDone <- srv.Serve(ctx, ln) }()
		base = "http://" + ln.Addr().String()
	}
	fmt.Println("querying", base)

	// The workload: -pairs-file replays a fixed list; otherwise pairs are
	// drawn Zipf over the population ranking, so a few hot pairs dominate —
	// exactly the skew a batch oracle and a snapshot cache exploit. Either
	// way the full query list is materialized up front, deterministically, so
	// the sequential repeat pass can replay it bit for bit.
	var pairs []pairName
	if *pairsFile != "" {
		pairs, err = loadPairs(*pairsFile, func(name string) bool {
			_, ok := sim.FindCity(name)
			return ok
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d pairs from %s\n", len(pairs), *pairsFile)
	} else {
		ranked := zipfPairs(*requests, sim.NumCities(), *seed)
		pairs = make([]pairName, len(ranked))
		for i, p := range ranked {
			pairs[i] = pairName{sim.CityName(p[0]), sim.CityName(p[1])}
		}
		fmt.Printf("drew %d Zipf city pairs (s=%.1f, seed=%d)\n", len(pairs), zipfS, *seed)
	}

	// Every query pins one of a few (pair, mode, snapshot) combinations —
	// many more queries than distinct snapshots, so most requests must be
	// served from the shared cache. The server decides how many snapshots
	// exist (-snapshots), so ask it rather than assume; spread over at most
	// three to keep the per-snapshot hit density high.
	nsnap := 3
	for attempt := 0; attempt < 10; attempt++ {
		resp, err := http.Get(base + "/v1/snapshots")
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var meta struct {
			Times []string `json:"times"`
		}
		err = json.NewDecoder(resp.Body).Decode(&meta)
		resp.Body.Close()
		if err == nil && len(meta.Times) > 0 {
			nsnap = min(nsnap, len(meta.Times))
			break
		}
	}
	type query struct{ src, dst, mode, snap string }
	queries := make([]query, 0, *requests)
	for i := 0; i < *requests; i++ {
		p := pairs[i%len(pairs)]
		mode := []string{"bp", "hybrid"}[i%2]
		snap := fmt.Sprint(i % nsnap)
		queries = append(queries, query{p.src, p.dst, mode, snap})
	}

	var tl tally
	// Client-observed latency per successful request (retries included) —
	// the number a real caller feels, reported as percentiles at the end.
	var latMu sync.Mutex
	var latencies []time.Duration
	recordLatency := func(d time.Duration) {
		latMu.Lock()
		latencies = append(latencies, d)
		latMu.Unlock()
	}
	// Every response carries an X-Trace-Id; for degraded answers and 5xx it
	// is the join key into the server's /debug/events flight recorder, so the
	// smoke run prints one for the operator to chase.
	var traceMu sync.Mutex
	var degradedTrace string
	noteDegraded := func(tid string) {
		if tid == "" {
			return
		}
		traceMu.Lock()
		if degradedTrace == "" {
			degradedTrace = tid
		}
		traceMu.Unlock()
	}
	// get answers one query, retrying transient failures (429 back-pressure,
	// injected 5xx, truncated bodies) under backoff. The second result
	// reports whether an answer was obtained at all.
	get := func(q query) (rtt float64, answered, reachable bool) {
		v := url.Values{}
		v.Set("src", q.src)
		v.Set("dst", q.dst)
		v.Set("mode", q.mode)
		v.Set("snap", q.snap)
		var body struct {
			Stale    bool   `json:"stale"`
			Degraded string `json:"degraded"`
			Path     struct {
				Reachable bool    `json:"reachable"`
				RTTMs     float64 `json:"rttMs"`
			} `json:"path"`
		}
		start := time.Now()
		for attempt := 0; attempt < maxTries; attempt++ {
			resp, err := http.Get(base + "/v1/path?" + v.Encode())
			if err != nil {
				log.Fatal(err) // transport failure: the server is gone, not degraded
			}
			switch {
			case resp.StatusCode == http.StatusOK:
				// Decode per response: a truncated or interleaved body is a
				// server bug backoff must not paper over.
				err := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					log.Fatalf("GET /v1/path: truncated or invalid JSON body: %v", err)
				}
				if body.Stale {
					tl.stale.Add(1)
				}
				if body.Degraded != "" {
					tl.degraded.Add(1)
					noteDegraded(resp.Header.Get("X-Trace-Id"))
				}
				tl.ok.Add(1)
				recordLatency(time.Since(start))
				return body.Path.RTTMs, true, body.Path.Reachable
			case resp.StatusCode == http.StatusTooManyRequests:
				tl.shed.Add(1)
			case resp.StatusCode >= 500:
				tl.retried.Add(1)
				if tid := resp.Header.Get("X-Trace-Id"); tid != "" {
					log.Printf("status %d trace=%s (see /debug/events), retrying", resp.StatusCode, tid)
				}
			default:
				log.Fatalf("GET /v1/path: unexpected status %d", resp.StatusCode)
			}
			ra := resp.Header.Get("Retry-After")
			resp.Body.Close()
			time.Sleep(backoff(attempt, ra))
		}
		tl.failed.Add(1)
		return 0, false, false
	}

	// Batch mode groups the query list by (mode, snapshot), dedups pairs
	// within each group (the batch endpoint rejects duplicates — the Zipf
	// skew guarantees them), and POSTs chunks of -batch pairs. Answers land
	// under the same per-query keys the single-query path uses, so the
	// repeat-pass comparison is identical in both modes.
	type batchJob struct {
		mode, snap string
		pairs      []pairName
	}
	var jobs []batchJob
	if *batch > 0 {
		group := map[string]*batchJob{}
		var order []string
		seen := map[string]map[pairName]bool{}
		for _, q := range queries {
			gk := q.mode + "@" + q.snap
			if group[gk] == nil {
				group[gk] = &batchJob{mode: q.mode, snap: q.snap}
				seen[gk] = map[pairName]bool{}
				order = append(order, gk)
			}
			p := pairName{q.src, q.dst}
			if !seen[gk][p] {
				seen[gk][p] = true
				group[gk].pairs = append(group[gk].pairs, p)
			}
		}
		for _, gk := range order {
			g := group[gk]
			for off := 0; off < len(g.pairs); off += *batch {
				end := min(off+*batch, len(g.pairs))
				jobs = append(jobs, batchJob{mode: g.mode, snap: g.snap, pairs: g.pairs[off:end]})
			}
		}
	}
	var oracleOnce sync.Once
	// post answers one batch job, with the same retry discipline as get.
	// Results are keyed like the single-query pass so both feed one answers
	// map.
	post := func(job batchJob, record func(key string, rtt float64)) (answered int) {
		snap, _ := strconv.Atoi(job.snap)
		reqBody := map[string]any{"mode": job.mode, "snap": snap, "pairs": []map[string]string{}}
		bp := make([]map[string]string, 0, len(job.pairs))
		for _, p := range job.pairs {
			bp = append(bp, map[string]string{"src": p.src, "dst": p.dst})
		}
		reqBody["pairs"] = bp
		payload, err := json.Marshal(reqBody)
		if err != nil {
			log.Fatal(err)
		}
		var body struct {
			Stale    bool   `json:"stale"`
			Degraded string `json:"degraded"`
			Oracle   struct {
				Cached    bool    `json:"cached"`
				BuildMs   float64 `json:"buildMs"`
				Sources   int     `json:"sources"`
				Landmarks int     `json:"landmarks"`
			} `json:"oracle"`
			Results []struct {
				Src       string  `json:"src"`
				Dst       string  `json:"dst"`
				Reachable bool    `json:"reachable"`
				RTTMs     float64 `json:"rttMs"`
			} `json:"results"`
		}
		start := time.Now()
		for attempt := 0; attempt < maxTries; attempt++ {
			resp, err := http.Post(base+"/v1/paths", "application/json", bytes.NewReader(payload))
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case resp.StatusCode == http.StatusOK:
				err := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					log.Fatalf("POST /v1/paths: truncated or invalid JSON body: %v", err)
				}
				if body.Stale {
					tl.stale.Add(1)
				}
				if body.Degraded != "" {
					tl.degraded.Add(1)
					noteDegraded(resp.Header.Get("X-Trace-Id"))
				}
				oracleOnce.Do(func() {
					fmt.Printf("oracle: cached=%v buildMs=%.1f sources=%d landmarks=%d\n",
						body.Oracle.Cached, body.Oracle.BuildMs, body.Oracle.Sources, body.Oracle.Landmarks)
				})
				recordLatency(time.Since(start))
				for _, r := range body.Results {
					tl.ok.Add(1)
					answered++
					if r.Reachable && record != nil {
						record(fmt.Sprintf("%s→%s/%s@%s", r.Src, r.Dst, job.mode, job.snap), r.RTTMs)
					}
				}
				return answered
			case resp.StatusCode == http.StatusTooManyRequests:
				tl.shed.Add(1)
			case resp.StatusCode >= 500:
				tl.retried.Add(1)
				if tid := resp.Header.Get("X-Trace-Id"); tid != "" {
					log.Printf("status %d trace=%s (see /debug/events), retrying", resp.StatusCode, tid)
				}
			default:
				log.Fatalf("POST /v1/paths: unexpected status %d", resp.StatusCode)
			}
			ra := resp.Header.Get("Retry-After")
			resp.Body.Close()
			time.Sleep(backoff(attempt, ra))
		}
		tl.failed.Add(int64(len(job.pairs)))
		return 0
	}

	answers := sync.Map{} // query key → RTT from the concurrent pass
	var totalIssued int
	passStart := time.Now()
	var wg sync.WaitGroup
	if *batch > 0 {
		totalIssued = 0
		for _, j := range jobs {
			totalIssued += len(j.pairs)
		}
		for c := 0; c < *clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := c; i < len(jobs); i += *clients {
					post(jobs[i], func(key string, rtt float64) { answers.Store(key, rtt) })
				}
			}()
		}
	} else {
		totalIssued = len(queries)
		for c := 0; c < *clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := c; i < len(queries); i += *clients {
					q := queries[i]
					if rtt, answered, reachable := get(q); answered && reachable {
						answers.Store(fmt.Sprintf("%s→%s/%s@%s", q.src, q.dst, q.mode, q.snap), rtt)
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(passStart)

	if srv != nil {
		st := srv.CacheStats()
		fmt.Printf("after %d queries from %d clients: %d graph builds, %d cache hits (%.0f%% hit rate)\n",
			totalIssued, *clients, st.Builds, st.Hits, st.HitRate()*100)
	}
	rate := float64(tl.ok.Load()) / float64(totalIssued)
	fmt.Printf("answered %d/%d (%.1f%%): %d shed+retried, %d 5xx+retried, %d stale, %d degraded, %d gave up\n",
		tl.ok.Load(), totalIssued, rate*100, tl.shed.Load(), tl.retried.Load(),
		tl.stale.Load(), tl.degraded.Load(), tl.failed.Load())
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 && elapsed > 0 {
		fmt.Printf("latency p50=%v p90=%v p99=%v; %.0f answers/s over %v\n",
			percentile(latencies, 50).Round(time.Microsecond),
			percentile(latencies, 90).Round(time.Microsecond),
			percentile(latencies, 99).Round(time.Microsecond),
			float64(tl.ok.Load())/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	}
	if degradedTrace != "" {
		fmt.Printf("first degraded answer trace: %s (join it against GET /debug/events)\n", degradedTrace)
	}

	// Repeat pass, sequentially: every answer must match the concurrent run
	// bit for bit — cached and freshly-built snapshots are interchangeable,
	// and oracle-served batch answers are stable across requests.
	mismatches := 0
	check := func(key string, rtt float64) {
		if prev, seen := answers.Load(key); seen && prev.(float64) != rtt {
			fmt.Printf("MISMATCH %s: %.3f ms then %.3f ms\n", key, prev.(float64), rtt)
			mismatches++
		}
	}
	if *batch > 0 {
		for _, j := range jobs {
			post(j, check)
		}
	} else {
		for _, q := range queries {
			rtt, answered, reachable := get(q)
			if answered && reachable {
				check(fmt.Sprintf("%s→%s/%s@%s", q.src, q.dst, q.mode, q.snap), rtt)
			}
		}
	}
	if mismatches == 0 {
		fmt.Println("repeat pass: every cached answer identical to the first run")
	}

	if srv != nil {
		stop()
		if err := <-serveDone; err != nil {
			log.Fatal(err)
		}
		fmt.Println("drained cleanly")
	}
	if mismatches > 0 {
		os.Exit(1)
	}
	if rate < *minSuccess {
		fmt.Printf("success rate %.3f below -min-success %.3f\n", rate, *minSuccess)
		os.Exit(1)
	}
}
