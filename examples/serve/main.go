// Serve example: run the constellation query service in-process and hammer
// it with concurrent clients, the workload the snapshot cache exists for.
// 24 clients fire 96 path queries spread over a handful of snapshots and
// both connectivity modes; the cache statistics afterwards show that only
// one graph build ran per distinct (mode, snapshot) even though every
// snapshot was requested dozens of times. A repeat pass then verifies that
// answers are stable across cache hits.
//
//	go run ./examples/serve
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"leosim"
	"leosim/internal/server"
)

func main() {
	scale := leosim.TinyScale()
	sim, err := leosim.NewSim(leosim.Starlink, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sim)

	srv, err := server.New(server.Config{Sim: sim})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// Every client asks for one of a few (pair, mode, snapshot) combinations
	// — many more queries than distinct snapshots, so most requests must be
	// served from the shared cache.
	type query struct{ src, dst, mode, snap string }
	queries := make([]query, 0, 96)
	for i := 0; i < 96; i++ {
		pair := sim.Pairs[i%4]
		mode := []string{"bp", "hybrid"}[i%2]
		snap := fmt.Sprint(i % 3)
		queries = append(queries, query{sim.CityName(pair.Src), sim.CityName(pair.Dst), mode, snap})
	}
	var shed atomic.Int64
	get := func(q query) (string, float64, bool) {
		v := url.Values{}
		v.Set("src", q.src)
		v.Set("dst", q.dst)
		v.Set("mode", q.mode)
		v.Set("snap", q.snap)
		var body struct {
			Path struct {
				Reachable bool    `json:"reachable"`
				RTTMs     float64 `json:"rttMs"`
			} `json:"path"`
		}
		for {
			resp, err := http.Get(base + "/v1/path?" + v.Encode())
			if err != nil {
				log.Fatal(err)
			}
			// A well-behaved client treats 429 as back-pressure, not
			// failure: back off for the advertised interval and retry.
			if resp.StatusCode == http.StatusTooManyRequests {
				resp.Body.Close()
				shed.Add(1)
				wait := time.Second
				if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
					wait = time.Duration(ra) * time.Second
				}
				time.Sleep(wait)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("GET /v1/path: status %d", resp.StatusCode)
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil {
				log.Fatal(err)
			}
			break
		}
		key := fmt.Sprintf("%s→%s/%s@%s", q.src, q.dst, q.mode, q.snap)
		return key, body.Path.RTTMs, body.Path.Reachable
	}

	const clients = 24
	answers := sync.Map{} // query key → RTT from the concurrent pass
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := c; i < len(queries); i += clients {
				key, rtt, ok := get(queries[i])
				if ok {
					answers.Store(key, rtt)
				}
			}
		}()
	}
	wg.Wait()

	st := srv.CacheStats()
	fmt.Printf("after %d queries from %d clients: %d graph builds, %d cache hits (%.0f%% hit rate), %d shed then retried\n",
		len(queries), clients, st.Builds, st.Hits, st.HitRate()*100, shed.Load())

	// Repeat pass, sequentially: every answer must match the concurrent run
	// bit for bit — cached and freshly-built snapshots are interchangeable.
	mismatches := 0
	for _, q := range queries {
		key, rtt, ok := get(q)
		if prev, seen := answers.Load(key); ok && seen && prev.(float64) != rtt {
			fmt.Printf("MISMATCH %s: %.3f ms then %.3f ms\n", key, prev.(float64), rtt)
			mismatches++
		}
	}
	if mismatches == 0 {
		fmt.Println("repeat pass: every cached answer identical to the first run")
	}

	stop()
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
