// Quickstart: build a Starlink simulation at tiny scale, route one city
// pair under both connectivity models, and print what the paper's core
// question looks like for that pair.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"leosim"
)

func main() {
	// A Sim bundles the constellation (1,584 Starlink satellites with
	// +Grid ISLs generated), the ground segment (cities + relay grid),
	// the synthetic aircraft fleet, and a sampled traffic matrix.
	sim, err := leosim.NewSim(leosim.Starlink, leosim.TinyScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sim)

	// Pick the first sampled pair and route it at a few instants.
	pair := sim.Pairs[0]
	src, dst := sim.Cities[pair.Src], sim.Cities[pair.Dst]
	fmt.Printf("\npair: %s → %s (%.0f km geodesic)\n\n", src.Name, dst.Name, pair.GeodesicKm)

	for _, offset := range []time.Duration{0, 30 * time.Minute, time.Hour} {
		t := leosim.SnapshotAt(offset)
		for _, mode := range []leosim.Mode{leosim.BP, leosim.Hybrid} {
			n := sim.NetworkAt(t, mode)
			p, ok := n.ShortestPath(n.CityNode(pair.Src), n.CityNode(pair.Dst))
			if !ok {
				fmt.Printf("t=%-4v %-6s unreachable\n", offset, mode)
				continue
			}
			fmt.Printf("t=%-4v %-6s rtt=%6.1f ms over %2d hops\n",
				offset, mode, p.RTTMs(), p.Hops())
		}
	}

	fmt.Println("\nWith ISLs the path stays in space; without them it zig-zags" +
		" through ground relays — compare the hop counts above.")
}
