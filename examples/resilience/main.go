// Resilience example: inject failures into the constellation and watch how
// bent-pipe and hybrid connectivity degrade. Sweeps random satellite outages
// and correlated whole-plane outages from 0% to 30%, reporting latency
// inflation, unreachable pairs and throughput retention against the healthy
// baseline. The sweep is deterministic: the same seed always fails the same
// satellites.
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"leosim"
)

func main() {
	// Ctrl-C stops the sweep at the next fraction boundary; completed
	// fractions are still reported (res.Partial is set).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scale := leosim.TinyScale()
	sim, err := leosim.NewSim(leosim.Starlink, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sim)

	for _, sc := range []leosim.FaultScenario{leosim.SatOutage, leosim.PlaneOutage} {
		fmt.Printf("\n--- scenario: %s ---\n", sc)
		res, rerr := leosim.RunResilience(ctx, sim, sc, nil)
		if res == nil {
			log.Fatal(rerr)
		}
		leosim.WriteResilienceReport(os.Stdout, res)
		if res.Partial {
			fmt.Println("(interrupted; table covers the completed fractions)")
			return
		}

		// The 0% row equals the healthy run by construction; the interesting
		// question is how fast each mode falls off.
		if p, ok := res.PointAt(0.30, leosim.BP); ok {
			h, _ := res.PointAt(0.30, leosim.Hybrid)
			fmt.Printf("at 30%%: BP keeps %.0f%% of throughput, hybrid %.0f%%\n",
				p.ThroughputRetention*100, h.ThroughputRetention*100)
		}
	}
}
