// Throughput example: reproduce the §5 analysis on a reduced scale — the
// Fig 4 matrix (BP vs hybrid × single-path vs 4-path) for both Starlink and
// Kuiper, the Fig 5 ISL-capacity sweep, and the stranded-satellite statistic
// that explains part of BP's deficit.
//
//	go run ./examples/throughput
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"leosim"
)

func main() {
	ctx := context.Background()
	scale := leosim.ReducedScale()
	for _, choice := range []leosim.ConstellationChoice{leosim.Starlink, leosim.Kuiper} {
		sim, err := leosim.NewSim(choice, scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- Fig 4 on %s ---\n", choice)
		rows, err := leosim.RunFig4(ctx, sim)
		if err != nil {
			log.Fatal(err)
		}
		leosim.WriteFig4Report(os.Stdout, rows)
		fmt.Println()
	}

	sim, err := leosim.NewSim(leosim.Starlink, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- Fig 5: Starlink throughput vs ISL capacity (k=4) ---")
	pts, bp, err := leosim.RunFig5(ctx, sim, []float64{0.5, 1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	leosim.WriteFig5Report(os.Stdout, pts, bp)

	fmt.Println("\n--- §5: satellites stranded by BP ---")
	disc, err := leosim.RunDisconnected(ctx, sim)
	if err != nil {
		log.Fatal(err)
	}
	leosim.WriteDisconnectReport(os.Stdout, disc)
	fmt.Println("(the paper reports 25.1%–31.5% at full 1000-city/0.5°-relay scale;")
	fmt.Println(" sparser ground segments strand more satellites)")
}
