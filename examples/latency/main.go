// Latency example: reproduce Fig 2's comparison on a reduced scale and show
// why BP latency varies — trace the Maceió→Durban path across the simulated
// day (Fig 3) and watch it detour through North-Atlantic aircraft when the
// South Atlantic has none.
//
//	go run ./examples/latency
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"leosim"
)

func main() {
	// Ctrl-C cancels cooperatively; RunLatency then returns the completed
	// snapshots with res.Partial set.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scale := leosim.ReducedScale()
	scale.NumSnapshots = 8 // keep the example snappy
	sim, err := leosim.NewSim(leosim.Starlink, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sim)

	fmt.Println("\n--- Fig 2: latency and its variability ---")
	res, err := leosim.RunLatency(ctx, sim)
	if res == nil {
		log.Fatal(err)
	}
	leosim.WriteLatencyReport(os.Stdout, res, 0)
	if res.Partial {
		fmt.Printf("(interrupted after %d snapshots)\n", res.SnapshotsDone)
		return
	}

	fmt.Println("\n--- Fig 3: Maceió → Durban under BP ---")
	for _, name := range []string{"Maceió", "Durban"} {
		if err := sim.EnsureCity(name); err != nil {
			log.Fatal(err)
		}
	}
	trace, err := leosim.RunPathTrace(ctx, sim, "Maceió", "Durban", leosim.BP)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range trace.Traces {
		if !tr.Reachable {
			fmt.Printf("%s  unreachable\n", tr.Time.Format("15:04"))
			continue
		}
		fmt.Printf("%s  rtt=%6.1f ms  hops=%2d  aircraft=%d\n",
			tr.Time.Format("15:04"), tr.RTTMs, tr.Hops, tr.AircraftHops)
	}
	fmt.Printf("\nRTT inflation across the day: %.1f ms (the paper reports ≈100 ms)\n",
		trace.RTTInflationMs())
}
