// Orbits example: exercise the orbital-mechanics substrate directly —
// generate the Starlink shell, emit a TLE, propagate it with both the
// J2-secular Kepler propagator and the SGP4 port, and quantify the §8
// claim that cross-shell ISL pairings are short-lived.
//
//	go run ./examples/orbits
package main

import (
	"fmt"
	"log"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/orbit"
)

func main() {
	shell := constellation.StarlinkPhase1()
	fmt.Printf("%s: %d satellites, coverage radius %.0f km, max GSL %.0f km\n",
		shell.Name, shell.Size(), shell.CoverageRadiusKm(), shell.MaxGSLKm())

	// One satellite's TLE, round-tripped through the parser.
	lines := shell.TLEs(44700, geo.Epoch)
	fmt.Println("\nfirst satellite's TLE:")
	fmt.Println(lines[0])
	fmt.Println(lines[1])
	tle, err := orbit.ParseTLE(lines[0], lines[1])
	if err != nil {
		log.Fatal(err)
	}

	// Propagate with both propagators and compare.
	sgp4, err := orbit.NewSGP4(tle)
	if err != nil {
		log.Fatal(err)
	}
	kep := orbit.NewKepler(tle.Elements())
	fmt.Println("\nSGP4 vs J2-Kepler over one orbit:")
	for m := 0; m <= 90; m += 15 {
		at := geo.Epoch.Add(time.Duration(m) * time.Minute)
		ps := sgp4.PositionECI(at)
		pk := kep.PositionECI(at)
		sub := orbit.SubsatellitePoint(kep, at)
		fmt.Printf("  t=%2dmin  divergence %6.2f km  subsatellite %s\n",
			m, ps.Distance(pk), sub)
	}

	// §8: cross-shell pairings churn; intra-shell +Grid links never do.
	multi, err := constellation.New(
		[]constellation.Shell{shell, constellation.PolarShell()},
		constellation.WithISLs())
	if err != nil {
		log.Fatal(err)
	}
	st, err := constellation.CrossShellChurn(multi, 0, 1, geo.Epoch, time.Minute, 45)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-shell nearest-neighbour churn (53° shell → polar shell):\n")
	fmt.Printf("  mean pairing lifetime: %v\n", st.MeanLifetime.Round(time.Second))
	fmt.Printf("  switches per satellite-hour: %.1f\n", st.SwitchesPerSatPerHour)
	fmt.Printf("  mean nearest range: %.0f km\n", st.MeanRangeKm)
	fmt.Println("  (+Grid intra-shell partners never change — §8's point about")
	fmt.Println("   why Starlink's four ISLs stay within one shell)")
}
