// Package leosim reproduces the analysis of "'Internet from Space' without
// Inter-satellite Links?" (Hauri, Bhattacherjee, Grossmann, Singla —
// ACM HotNets 2020): a comparison of bent-pipe (BP) and hybrid (BP+ISL)
// connectivity for LEO broadband mega-constellations across latency and its
// variability, network-wide throughput, and resilience to weather.
//
// This root package is the public facade: it re-exports the experiment
// engine (internal/core), the constellation/orbit/ground substrates it is
// built from, and convenience constructors, so downstream users program
// against one import path:
//
//	sim, err := leosim.NewSim(leosim.Starlink, leosim.ReducedScale())
//	res, err := leosim.RunLatency(ctx, sim)
//	leosim.WriteLatencyReport(os.Stdout, res, 20)
//
// Every Run* entry point takes a context.Context and stops cooperatively —
// within about one snapshot's work — when it is cancelled; experiments that
// aggregate across snapshots return the completed prefix (flagged Partial)
// alongside ctx.Err(). Worker panics inside the parallel phases surface as
// returned errors carrying the worker's stack, never as a crashed process.
//
// The deeper layers remain available for specialised use — orbital mechanics
// (internal/orbit: Kepler + a full SGP4 port with TLE I/O), Walker-shell and
// +Grid ISL generation (internal/constellation), the ground segment with
// city dataset, relay grids and the GSO arc-avoidance rule (internal/ground),
// synthetic air traffic (internal/aircraft), the snapshot graph engine
// (internal/graph), the max-min fair allocator (internal/flow), and the
// ITU-R attenuation models (internal/itur).
package leosim

import (
	"io"
	"time"

	"leosim/internal/check"
	"leosim/internal/constellation"
	"leosim/internal/core"
	"leosim/internal/fault"
	"leosim/internal/geo"
	"leosim/internal/ground"
	"leosim/internal/itur"
	"leosim/internal/stats"
	"leosim/internal/telemetry"
	"leosim/internal/topo"
)

// Connectivity modes and constellation choices.
const (
	// BP is bent-pipe-only connectivity (no ISLs).
	BP = core.BP
	// Hybrid is BP plus +Grid laser ISLs.
	Hybrid = core.Hybrid
	// Starlink selects the 72×22 / 550 km / 53° phase-1 shell.
	Starlink = core.Starlink
	// Kuiper selects the 34×34 / 630 km / 51.9° phase-1 shell.
	Kuiper = core.Kuiper
)

// ISL topology motifs for the topology lab (internal/topo).
const (
	// PlusGridMotif is the paper's §2 +Grid baseline.
	PlusGridMotif = topo.PlusGrid
	// DiagGridMotif shifts cross-plane links by a slot offset.
	DiagGridMotif = topo.DiagGrid
	// LadderMotif keeps only the intra-plane rings (2 ISLs/sat).
	LadderMotif = topo.Ladder
	// NearestMotif greedily matches nearest inter-plane neighbours,
	// recomputed per snapshot epoch.
	NearestMotif = topo.Nearest
	// DemandMotif places a fixed ISL budget along gravity demand.
	DemandMotif = topo.Demand
)

// Fault-injection scenarios for RunResilience.
const (
	// SatOutage fails a random fraction of satellites.
	SatOutage = fault.SatOutage
	// PlaneOutage fails whole orbital planes (correlated failures).
	PlaneOutage = fault.PlaneOutage
	// SiteOutage fails ground sites (cities and relays).
	SiteOutage = fault.SiteOutage
	// ISLOutage fails individual ISL lasers.
	ISLOutage = fault.ISLOutage
	// GSLDegrade scales GSL capacity down fleet-wide (rain fade).
	GSLDegrade = fault.GSLDegrade
)

// Core experiment types.
type (
	// Sim is a fully assembled simulation (constellation, ground segment,
	// aircraft fleet, traffic matrix).
	Sim = core.Sim
	// Scale sizes an experiment (see FullScale, ReducedScale, TinyScale).
	Scale = core.Scale
	// Mode selects BP or Hybrid connectivity.
	Mode = core.Mode
	// ConstellationChoice selects Starlink or Kuiper.
	ConstellationChoice = core.ConstellationChoice
	// Pair is one traffic demand between two cities.
	Pair = core.Pair
	// LatencyResult is the Fig 2 output.
	LatencyResult = core.LatencyResult
	// ThroughputResult is one §5 throughput data point.
	ThroughputResult = core.ThroughputResult
	// Fig4Row is one cell of the Fig 4 matrix.
	Fig4Row = core.Fig4Row
	// Fig5Point is one point of the Fig 5 ISL-capacity sweep.
	Fig5Point = core.Fig5Point
	// WeatherResult is the Fig 6 output.
	WeatherResult = core.WeatherResult
	// PairWeather is the Fig 7/8 single-pair weather comparison.
	PairWeather = core.PairWeather
	// DisconnectResult is the §5 disconnected-satellite statistic.
	DisconnectResult = core.DisconnectResult
	// PathTraceResult is the Fig 3 path trace.
	PathTraceResult = core.PathTraceResult
	// CrossShellResult is the Fig 10 BP-augmentation result.
	CrossShellResult = core.CrossShellResult
	// FiberResult is the Fig 11 fiber-augmentation result.
	FiberResult = core.FiberResult
	// GSORow is one latitude row of the Fig 9 GSO-arc analysis.
	GSORow = core.GSORow
	// TEResult compares shortest-delay vs min-max-utilization routing.
	TEResult = core.TEResult
	// Band is a frequency plan for the weather experiments.
	Band = core.Band
	// ModcodResult is the capacity-retention extension of §6.
	ModcodResult = core.ModcodResult
	// UtilizationResult is the per-satellite load distribution.
	UtilizationResult = core.UtilizationResult
	// PathChurnResult is the path-stability comparison.
	PathChurnResult = core.PathChurnResult
	// Walker is an incremental time cursor over one mode's network:
	// seconds-scale steps cost a per-step delta instead of a full rebuild.
	Walker = core.Walker
	// ChurnOptions configures the seconds-scale churn experiment.
	ChurnOptions = core.ChurnOptions
	// ChurnResult is the seconds-scale link/route churn report.
	ChurnResult = core.ChurnResult
	// ChurnModeStats is one mode's route-stability rates within it.
	ChurnModeStats = core.ChurnModeStats
	// HeatmapResult is the Fig 7 regional attenuation map.
	HeatmapResult = core.HeatmapResult
	// BeamPoint is one cell of the beam-limit sweep.
	BeamPoint = core.BeamPoint
	// RelayPoint is one cell of the relay-density sweep.
	RelayPoint = core.RelayPoint
	// GSOImpactResult is §7's end-to-end arc-avoidance comparison.
	GSOImpactResult = core.GSOImpactResult
	// ResilienceResult is the fault-injection degradation sweep.
	ResilienceResult = core.ResilienceResult
	// ResiliencePoint is one fraction × mode cell of the sweep.
	ResiliencePoint = core.ResiliencePoint
	// FaultScenario names one failure dimension (SatOutage, PlaneOutage,
	// SiteOutage, ISLOutage, GSLDegrade).
	FaultScenario = fault.Scenario
	// FaultPlan is a seeded failure description, realizable against a
	// constellation into concrete outages.
	FaultPlan = fault.Plan
	// FaultOutages is a realized failure set whose Mask plugs into graph
	// building.
	FaultOutages = fault.Outages
	// Shell describes one orbital shell.
	Shell = constellation.Shell
	// City is one traffic source/sink.
	City = ground.City
	// Summary holds summary statistics.
	Summary = stats.Summary
	// Curve is an attenuation exceedance curve.
	Curve = itur.Curve
	// LatLon is a geodetic position.
	LatLon = geo.LatLon
	// SimOption tweaks simulation construction.
	SimOption = core.SimOption
	// CheckOptions sizes an invariant-checking sweep (RunCheck).
	CheckOptions = core.CheckOptions
	// CheckReport carries the outcome of an invariant sweep: per-class
	// violation counts, capped samples, and coverage counters.
	CheckReport = check.Report
	// CheckViolation is one sampled invariant violation.
	CheckViolation = check.Violation
	// Motif is an ISL link-placement strategy (topology lab).
	Motif = topo.Motif
	// MotifID names a built-in motif (PlusGridMotif, DiagGridMotif, …).
	MotifID = topo.ID
	// MotifConfig carries motif construction knobs.
	MotifConfig = topo.Config
	// TopoOptions configures the topology-lab sweep.
	TopoOptions = core.TopoOptions
	// TopoResult is the motif × mode comparison table.
	TopoResult = core.TopoResult
	// TopoCell is one motif × mode cell of it.
	TopoCell = core.TopoCell
)

// Experiment sizing presets.
var (
	// FullScale reproduces the paper's sizing (1,000 cities, 5,000 pairs,
	// 0.5° relays, 96×15-min snapshots). Minutes to hours of CPU.
	FullScale = core.FullScale
	// LargeScale approaches the paper's contention level; minutes/experiment.
	LargeScale = core.LargeScale
	// ReducedScale runs every experiment in tens of seconds.
	ReducedScale = core.ReducedScale
	// TinyScale keeps unit tests fast.
	TinyScale = core.TinyScale
)

// Simulation construction.
var (
	// NewSim assembles a simulation for a constellation at a scale.
	NewSim = core.NewSim
	// WithGSOAvoidance applies the §7 GSO arc-avoidance constraint.
	WithGSOAvoidance = core.WithGSOAvoidance
	// WithMinElevation overrides the minimum elevation angle.
	WithMinElevation = core.WithMinElevation
	// WithExtraShells adds shells beyond the chosen preset.
	WithExtraShells = core.WithExtraShells
	// WithSGP4Propagation switches the propagator to SGP4.
	WithSGP4Propagation = core.WithSGP4Propagation
	// WithSatelliteCapacity sets the per-satellite aggregate GSL pool
	// (default 20 Gbps; 0 disables — the per-link-only ablation model).
	WithSatelliteCapacity = core.WithSatelliteCapacity
	// Cities returns the n-most-populous city dataset.
	Cities = ground.Cities
	// SamplePairs draws the paper's traffic matrix.
	SamplePairs = core.SamplePairs
	// WithMotif replaces the +Grid ISL topology with a custom motif.
	WithMotif = core.WithMotif
	// WithMotifID resolves a built-in motif by ID inside NewSim (the
	// -motif CLI path), handing it the sim's own demand model.
	WithMotifID = core.WithMotifID
	// BuildMotif constructs a built-in motif from its ID and config.
	BuildMotif = topo.Build
	// ParseMotif resolves a motif name ("plus-grid", "diag-grid", …).
	ParseMotif = topo.ParseID
	// MotifIDs lists every built-in motif.
	MotifIDs = topo.IDs
)

// Experiments — one per table/figure of the paper's evaluation.
var (
	// RunLatency runs §4 / Fig 2 (latency and its variability).
	RunLatency = core.RunLatency
	// RunPathTrace runs Fig 3 (per-snapshot path trace).
	RunPathTrace = core.RunPathTrace
	// RunThroughput computes one §5 throughput cell.
	RunThroughput = core.RunThroughput
	// RunFig4 evaluates the Fig 4 matrix ({BP,Hybrid} × {k=1,4}).
	RunFig4 = core.RunFig4
	// RunFig5 sweeps ISL capacity (Fig 5).
	RunFig5 = core.RunFig5
	// RunDisconnected measures BP's stranded satellites (§5).
	RunDisconnected = core.RunDisconnected
	// RunWeather runs §6 / Fig 6 (attenuation across pairs, Ku band).
	RunWeather = core.RunWeather
	// RunWeatherBand runs Fig 6 at another frequency plan (e.g. KaBand).
	RunWeatherBand = core.RunWeatherBand
	// RunPairWeather runs Fig 7/8 for one named pair.
	RunPairWeather = core.RunPairWeather
	// RunGSOArc quantifies Fig 9 (GSO arc avoidance).
	RunGSOArc = core.RunGSOArc
	// RunCrossShell quantifies Fig 10 (BP augmentation across shells).
	RunCrossShell = core.RunCrossShell
	// RunFiberAugmentation quantifies Fig 11 (fiber augmentation).
	RunFiberAugmentation = core.RunFiberAugmentation
	// RunTrafficEngineering evaluates §5's future-work routing scheme
	// (minimize max utilization) against shortest-delay multipath.
	RunTrafficEngineering = core.RunTrafficEngineering
	// RunWeatherCapacity converts §6's attenuation into capacity
	// retention through an adaptive MODCOD ladder.
	RunWeatherCapacity = core.RunWeatherCapacity
	// RunUtilization measures per-satellite carried load (§5's unused
	// satellites, beyond mere disconnection).
	RunUtilization = core.RunUtilization
	// RunPathChurn measures how often each pair's path changes (§4).
	RunPathChurn = core.RunPathChurn
	// RunChurn measures GSL and route churn at seconds-scale resolution
	// via the incremental advancer (the regime snapshot grids cannot see).
	RunChurn = core.RunChurn
	// RunHeatmap computes the Fig 7 regional attenuation map with the
	// BP/ISL path overlays.
	RunHeatmap = core.RunHeatmap
	// RunBeamSweep quantifies §2's frequency-management assumption by
	// capping simultaneous beams per satellite.
	RunBeamSweep = core.RunBeamSweep
	// RunRelayDensitySweep shows what coarser relay grids cost BP.
	RunRelayDensitySweep = core.RunRelayDensitySweep
	// RunGSOImpact measures §7's end-to-end effect of arc avoidance.
	RunGSOImpact = core.RunGSOImpact
	// RunResilience sweeps a failure scenario over growing fractions and
	// reports BP-vs-Hybrid latency inflation, unreachable pairs and
	// throughput retention. Deterministic for a fixed sim seed.
	RunResilience = core.RunResilience
	// DefaultFaultFractions is the standard 0–30% sweep.
	DefaultFaultFractions = core.DefaultFaultFractions
	// FaultScenarios lists every supported scenario.
	FaultScenarios = fault.Scenarios
	// ForFaultScenario builds the plan failing a fraction of one resource.
	ForFaultScenario = fault.ForScenario
	// RunCheck sweeps the invariant-validation suite over a sim: graph
	// physics, path optimality/symmetry/dominance, and max-min optimality
	// conditions. Backs `leosim check`.
	RunCheck = core.RunCheck
	// RunTopo runs the topology-lab sweep: every motif × {BP, Hybrid}
	// compared on latency, throughput, fault resilience and route churn.
	RunTopo = core.RunTopo
)

// Report writers (text renderings of each figure/table).
var (
	WriteLatencyReport     = core.WriteLatencyReport
	WriteFig4Report        = core.WriteFig4Report
	WriteFig5Report        = core.WriteFig5Report
	WriteWeatherReport     = core.WriteWeatherReport
	WritePairWeatherReport = core.WritePairWeatherReport
	WriteDisconnectReport  = core.WriteDisconnectReport
	WriteGSOReport         = core.WriteGSOReport
	WriteCrossShellReport  = core.WriteCrossShellReport
	WriteFiberReport       = core.WriteFiberReport
	WriteTEReport          = core.WriteTEReport
	WriteModcodReport      = core.WriteModcodReport
	WriteUtilizationReport = core.WriteUtilizationReport
	WriteHeatmapReport     = core.WriteHeatmapReport
	WriteBeamReport        = core.WriteBeamReport
	WriteRelayReport       = core.WriteRelayReport
	WriteGSOImpactReport   = core.WriteGSOImpactReport
	WritePathChurnReport   = core.WritePathChurnReport
	WriteChurnReport       = core.WriteChurnReport
	WriteResilienceReport  = core.WriteResilienceReport
	WriteTopoReport        = core.WriteTopoReport
	// WriteJSON emits any experiment result as a JSON envelope.
	WriteJSON = core.WriteJSON
	// WriteJSONPartial is WriteJSON with an explicit partial flag (used
	// when a cancelled run flushes the prefix it completed).
	WriteJSONPartial = core.WriteJSONPartial
	// WriteSnapshotGeoJSON exports a snapshot + routed pair as GeoJSON.
	WriteSnapshotGeoJSON = core.WriteSnapshotGeoJSON
)

// Direct access to the ITU-R attenuation models (§6's substrate).
var (
	// TotalAttenuation returns A(p) in dB for one slant path.
	TotalAttenuation = itur.TotalAttenuation
	// ScaleRainAttenuationFrequency applies P.618 §2.2.1.2 frequency
	// scaling between bands (7–55 GHz).
	ScaleRainAttenuationFrequency = itur.ScaleRainAttenuationFrequency
	// ReceivedPowerFraction converts dB of attenuation to power fraction.
	ReceivedPowerFraction = itur.ReceivedPowerFraction
)

// AttenuationLink describes one slant path for TotalAttenuation.
type AttenuationLink = itur.LinkParams

// Constellation presets.
var (
	// StarlinkPhase1 returns the Starlink first-phase shell.
	StarlinkPhase1 = constellation.StarlinkPhase1
	// KuiperPhase1 returns the Kuiper first-phase shell.
	KuiperPhase1 = constellation.KuiperPhase1
	// PolarShell returns the small polar shell used by Fig 10.
	PolarShell = constellation.PolarShell
)

// Frequency plans for the §6 weather experiments.
var (
	// KuBand is the paper's Ku-band plan (14.25/11.7 GHz).
	KuBand = core.KuBand
	// KaBand is the gateway band §6 flags as more weather-affected.
	KaBand = core.KaBand
)

// Epoch is the fixed simulation reference epoch.
var Epoch = geo.Epoch

// SnapshotAt is a convenience for building a one-off time offset from the
// epoch.
func SnapshotAt(offset time.Duration) time.Time { return geo.Epoch.Add(offset) }

// SetProgress directs coarse progress lines from long-running experiment
// phases (thousands of routed pairs at full scale) to w; nil silences them.
// Snapshot-sweep experiments additionally emit throttled progress/ETA lines
// to the same writer.
func SetProgress(w io.Writer) { core.Progress = w }

// TelemetryRecorder accumulates per-run stage timings (graph build, search,
// allocation, …) when attached to the run's context.
type TelemetryRecorder = telemetry.Recorder

// Observability entry points (internal/telemetry).
var (
	// EnableTelemetry installs the process-global metrics registry; every
	// pipeline stage then feeds its latency histogram. Near-zero cost is
	// paid when disabled (one atomic load per stage).
	EnableTelemetry = telemetry.Enable
	// NewTelemetryRecorder creates a per-run stage-time recorder.
	NewTelemetryRecorder = telemetry.NewRecorder
	// WithTelemetryRecorder attaches a recorder to a context; Run* calls
	// under that context attribute their stage times to it.
	WithTelemetryRecorder = telemetry.WithRecorder
	// WriteJSONStages is WriteJSONPartial plus the recorder's stage-time
	// breakdown in the envelope ("stage_times").
	WriteJSONStages = core.WriteJSONStages
	// StartTracing begins the process's exclusive bounded span-trace capture
	// (requires EnableTelemetry); StopTracing ends it and returns the
	// capture, whose WriteChrome exports Chrome trace_event JSON viewable in
	// Perfetto. Each batch snapshot gets its own track.
	StartTracing = telemetry.StartTracing
	StopTracing  = telemetry.StopTracing
	// DumpTelemetryEvents writes the flight recorder's retained events (build
	// failures, breaker transitions, degraded serves, chaos injections) to w —
	// the post-mortem view the CLI wires to panics and SIGQUIT.
	DumpTelemetryEvents = telemetry.DumpEvents
)

// DefaultTraceCapacity bounds a span-trace capture started by StartTracing.
const DefaultTraceCapacity = telemetry.DefaultTraceCapacity

// EmitJournalReplayEvent records a whole-experiment journal replay (stored
// output re-emitted instead of recomputed) in the flight recorder.
func EmitJournalReplayEvent(experiment string, outputBytes int) {
	telemetry.EmitEvent(nil, telemetry.CatJournal, telemetry.SevInfo,
		"journal replay: experiment output re-emitted from journal",
		telemetry.Str("experiment", experiment),
		telemetry.Int64("outputBytes", int64(outputBytes)))
}

// Journal is the crash-safe run journal: per-experiment, per-snapshot
// completion records in a JSONL sidecar, written atomically.
type Journal = core.Journal

// Crash-safe resume entry points (internal/core).
var (
	// OpenJournal opens or creates the journal at a path, bound to one run
	// configuration.
	OpenJournal = core.OpenJournal
	// WithJournal attaches a journal to a context; Run* sweeps under that
	// context record per-snapshot progress and skip journaled work.
	WithJournal = core.WithJournal
	// JournalFrom extracts the context's journal (nil when unjournaled).
	JournalFrom = core.JournalFrom
)
