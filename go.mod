module leosim

go 1.22
