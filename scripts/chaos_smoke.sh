#!/usr/bin/env bash
# Chaos smoke: boot `leosim serve` with seeded build-failure injection, then
# drive it with the backoff client from examples/serve. Passes when ≥95% of
# queries are answered despite a 30% injected build-failure rate, every body
# decodes as complete JSON (the client fails hard on truncation), and the
# repeat pass returns bit-identical answers. Run from the repo root; CI runs
# it on every push.
#
#   ./scripts/chaos_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
BIN="$(mktemp -d)/leosim"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/leosim

"$BIN" serve -addr "127.0.0.1:$PORT" -scale tiny -log-level warn \
  -cache-ttl 50ms -cache-stale-for 1h -breaker-cooldown 100ms \
  -chaos-fail 0.30 -chaos-seed 1234 &
SERVER_PID=$!

echo "chaos_smoke: waiting for server on port $PORT"
for _ in $(seq 1 150); do
  if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "chaos_smoke: server exited before becoming ready" >&2
    exit 1
  fi
  sleep 0.2
done

go run ./examples/serve -addr "127.0.0.1:$PORT" -requests 192 -min-success 0.95

echo "chaos_smoke: server-side view of the storm:"
curl -fsS "http://127.0.0.1:$PORT/metrics" |
  python3 -c 'import json,sys; m=json.load(sys.stdin); print(json.dumps({"counters": m["server"]["counters"], "cache": m["cache"], "breaker": m["breaker"]}, indent=2))' \
  || curl -fsS "http://127.0.0.1:$PORT/metrics"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
echo "chaos_smoke: PASS"
