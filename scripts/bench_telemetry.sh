#!/bin/sh
# Run the telemetry-overhead benchmarks and record them in
# BENCH_telemetry.json.
#
# usage: scripts/bench_telemetry.sh [label]
#
# The label names the run inside the trajectory file (default "current");
# rerunning with the same label replaces that run in place. The recorded set
# proves the observability layer's cost model: the span fast path when
# telemetry is disabled (one atomic load, no allocation), the enabled path
# (histogram observe), the recorder path, and the routing kernel with and
# without telemetry — BenchmarkSearch must stay within noise of the kernel
# baselines in BENCH_routing.json.
set -eu
cd "$(dirname "$0")/.."

LABEL="${1:-current}"
PATTERN='^(BenchmarkSpanDisabled|BenchmarkSpanEnabled|BenchmarkSpanEnabledWithRecorder|BenchmarkHistogramObserve|BenchmarkSearch|BenchmarkSearchTelemetryEnabled)$'

go test -run '^$' -bench "$PATTERN" -benchmem -count 1 \
	./internal/telemetry ./internal/graph |
	go run ./scripts/benchjson -label "$LABEL" -out BENCH_telemetry.json
