#!/bin/sh
# Regenerate every figure and extension of EXPERIMENTS.md.
#
# usage: scripts/regenerate.sh [reduced|large|full] [outdir]
#
# "reduced" (default) finishes in about a minute on a laptop; "large" takes
# ~15 minutes on one core; "full" is the paper's exact sizing and needs
# hours. ("tiny" is not supported here: its 60-city set cannot route the
# Delhi–Sydney pair under bent-pipe, which Fig 8 requires.)
set -eu

SCALE="${1:-reduced}"
case "$SCALE" in
reduced | large | full) ;;
*)
	echo "unsupported scale '$SCALE' (want reduced|large|full)" >&2
	exit 2
	;;
esac
OUT="${2:-results/$SCALE}"
mkdir -p "$OUT"

# run <name> <args...>: execute the CLI, fail the script on error, and keep
# a copy of the output. (No pipelines: a pipe to tee would mask failures
# under plain POSIX sh.)
run() {
	name="$1"
	shift
	echo "== $name =="
	go run ./cmd/leosim "$@" >"$OUT/$name.txt"
	cat "$OUT/$name.txt"
}

run figures -scale "$SCALE" all
run extensions -scale "$SCALE" ext
run kuiper-fig4 -scale "$SCALE" -constellation kuiper fig4

echo "== machine-readable envelopes =="
for exp in fig2a fig4 fig5 fig6 fig8 disconnected; do
	go run ./cmd/leosim -scale "$SCALE" -json "$exp" >"$OUT/$exp.json"
done

echo "== geojson snapshot =="
go run ./cmd/leosim -scale "$SCALE" geojson >"$OUT/snapshot.geojson"

echo "done: $OUT"
