// Command benchjson converts `go test -bench` output on stdin into a run
// entry in a benchmark-trajectory JSON file. Each run is labelled; rerunning
// with an existing label replaces that run in place, so the file accumulates
// one entry per milestone (e.g. "pre-kernel", "csr-pooled-kernel") and stays
// diffable.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -label after -out BENCH_routing.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"

	"leosim/internal/atomicfile"
)

// Benchmark is one benchmark's metrics from a -benchmem run.
type Benchmark struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Run is one labelled benchmark sweep.
type Run struct {
	Label      string               `json:"label"`
	GoVersion  string               `json:"go_version,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// File is the trajectory document.
type File struct {
	Unit string `json:"unit"`
	Runs []Run  `json:"runs"`
}

// benchLine matches e.g.
// BenchmarkDijkstra-8   	 100	  11800932 ns/op	  263120 B/op	      22 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "", "label for this run (required)")
	out := flag.String("out", "BENCH_routing.json", "trajectory file to update")
	filter := flag.String("filter", "", "regexp; keep only matching benchmark names (default: all)")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}
	var keep *regexp.Regexp
	if *filter != "" {
		keep = regexp.MustCompile(*filter)
	}

	run := Run{Label: *label, Benchmarks: map[string]Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if keep != nil && !keep.MatchString(name) {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Benchmark{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		// With `-count N` the same benchmark appears N times; keep the
		// fastest sample. Minimum ns/op is the standard noise-robust
		// statistic on shared machines — scheduler interference only ever
		// slows a run down.
		if prev, ok := run.Benchmarks[name]; ok && prev.NsPerOp <= b.NsPerOp {
			continue
		}
		run.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(run.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	run.GoVersion = runtime.Version()

	var doc File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	doc.Unit = "ns/op, B/op, allocs/op"
	replaced := false
	for i := range doc.Runs {
		if doc.Runs[i].Label == run.Label {
			doc.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Runs = append(doc.Runs, run)
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// Atomic write: the trajectory file accumulates history across runs, so
	// a crash mid-write must never clobber it with a half-written document.
	if err := atomicfile.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(run.Benchmarks))
	for n := range run.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks under %q in %s\n",
		len(names), run.Label, *out)
}
