#!/bin/sh
# Run the test suite with coverage, write a per-package summary artifact, and
# enforce the coverage floor on internal/oracle (the distance-oracle layer is
# pure algorithmic code — there is no excuse for untested statements there).
#
# usage: scripts/coverage.sh [floor-percent]
#
# Artifacts land in coverage/: packages.txt (per-package summary, the CI
# artifact), func.txt (per-function breakdown), cover.out (raw profile).
set -eu
cd "$(dirname "$0")/.."

FLOOR="${1:-85}"
mkdir -p coverage

go test -short -count=1 -coverprofile=coverage/cover.out ./... | tee coverage/packages.txt
go tool cover -func=coverage/cover.out > coverage/func.txt

ORACLE=$(awk '$1 == "ok" && $2 == "leosim/internal/oracle" {
	for (i = 1; i <= NF; i++) if ($i ~ /%/) { gsub(/%.*/, "", $i); print $i }
}' coverage/packages.txt)
if [ -z "$ORACLE" ]; then
	echo "coverage: no result line for leosim/internal/oracle" >&2
	exit 1
fi
echo "internal/oracle coverage: ${ORACLE}% (floor ${FLOOR}%)"
if awk -v got="$ORACLE" -v floor="$FLOOR" 'BEGIN { exit !(got < floor) }'; then
	echo "coverage: internal/oracle at ${ORACLE}% is below the ${FLOOR}% floor" >&2
	exit 1
fi
