#!/bin/sh
# Run a benchmark suite and record it in its trajectory JSON file.
#
# usage: scripts/bench.sh [routing|snapshot|topo|telemetry|serve|all] [label]
#
# Targets:
#   routing   — the routing hot path (Dijkstra, ShortestPath, KDisjointPaths,
#               Yen, MinMaxUtilization, the Fig 2a sweep) → BENCH_routing.json
#   snapshot  — the snapshot engine at paper scale: one full At() rebuild vs
#               one incremental Advance() step at 1-second resolution
#               → BENCH_snapshot.json
#   topo      — ISL motif construction cost at Starlink scale (one build per
#               motif, including the demand optimizer's greedy placement)
#               → BENCH_topo.json
#   telemetry — the observability cost model: span and event emission with
#               telemetry disabled (one atomic load, no allocation) and
#               enabled, plus the routing kernel with and without telemetry;
#               BenchmarkSearch must stay within noise of the kernel
#               baselines in BENCH_routing.json → BENCH_telemetry.json
#   serve     — the batched serving path: one-time oracle build cost per
#               snapshot (BenchmarkOracleBuild) against the per-pair batched
#               query cost it buys (BenchmarkOracleBatch — must stay well
#               under 100µs — and BenchmarkOracleQuery, the bare distance
#               read) → BENCH_serve.json
#   all       — all of the above (default)
#
# The label names the run inside the trajectory file (default "current");
# rerunning with the same label replaces that run in place, so each file keeps
# one entry per milestone. Snapshot benchmarks run with -count 3; benchjson
# keeps the fastest sample per benchmark, so a noisy neighbour can only be
# filtered out, never flatter the result.
set -eu
cd "$(dirname "$0")/.."

TARGET="${1:-all}"
LABEL="${2:-current}"

run_routing() {
	PATTERN='^(BenchmarkDijkstra|BenchmarkShortestPath|BenchmarkKDisjoint|BenchmarkYen|BenchmarkMinMaxUtilization|BenchmarkFig2aMinRTT)$'
	go test -run '^$' -bench "$PATTERN" -benchmem -count 1 \
		. ./internal/graph ./internal/routing |
		go run ./scripts/benchjson -label "$LABEL" -out BENCH_routing.json
}

run_snapshot() {
	# Three interleaved rounds rather than -count 3: with -count, all
	# BuildAt samples land minutes before all Advance samples, and on a
	# shared machine the noise phase can shift in between, skewing the
	# rebuild/advance ratio either way. Alternating rounds keep each
	# pair's measurement windows seconds apart; benchjson's min-aggregation
	# then picks each side's cleanest round.
	PATTERN='^(BenchmarkBuildAt|BenchmarkAdvance)$'
	for round in 1 2 3; do
		go test -run '^$' -bench "$PATTERN" -benchmem -benchtime 2s \
			./internal/graph
	done |
		go run ./scripts/benchjson -label "$LABEL" -out BENCH_snapshot.json
}

run_topo() {
	go test -run '^$' -bench '^BenchmarkMotifBuild$' -benchmem -count 1 \
		./internal/topo |
		go run ./scripts/benchjson -label "$LABEL" -out BENCH_topo.json
}

run_telemetry() {
	PATTERN='^(BenchmarkSpanDisabled|BenchmarkSpanEnabled|BenchmarkSpanEnabledWithRecorder|BenchmarkHistogramObserve|BenchmarkEventDisabled|BenchmarkEventEnabled|BenchmarkSearch|BenchmarkSearchTelemetryEnabled)$'
	go test -run '^$' -bench "$PATTERN" -benchmem -count 1 \
		./internal/telemetry ./internal/graph |
		go run ./scripts/benchjson -label "$LABEL" -out BENCH_telemetry.json
}

run_serve() {
	PATTERN='^(BenchmarkOracleBuild|BenchmarkOracleQuery|BenchmarkOracleBatch)$'
	go test -run '^$' -bench "$PATTERN" -benchmem -count 1 \
		./internal/oracle |
		go run ./scripts/benchjson -label "$LABEL" -out BENCH_serve.json
}

case "$TARGET" in
routing) run_routing ;;
snapshot) run_snapshot ;;
topo) run_topo ;;
telemetry) run_telemetry ;;
serve) run_serve ;;
all)
	run_routing
	run_snapshot
	run_topo
	run_telemetry
	run_serve
	;;
*)
	echo "usage: scripts/bench.sh [routing|snapshot|topo|telemetry|serve|all] [label]" >&2
	exit 2
	;;
esac
