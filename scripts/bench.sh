#!/bin/sh
# Run the routing-kernel benchmarks and record them in BENCH_routing.json.
#
# usage: scripts/bench.sh [label]
#
# The label names the run inside the trajectory file (default "current");
# rerunning with the same label replaces that run in place, so the file keeps
# one entry per milestone. The recorded set covers the routing hot path:
# Dijkstra, ShortestPath, KDisjointPaths, Yen, MinMaxUtilization, and the
# end-to-end Fig 2a sweep that exercises it all.
set -eu
cd "$(dirname "$0")/.."

LABEL="${1:-current}"
PATTERN='^(BenchmarkDijkstra|BenchmarkShortestPath|BenchmarkKDisjoint|BenchmarkYen|BenchmarkMinMaxUtilization|BenchmarkFig2aMinRTT)$'

go test -run '^$' -bench "$PATTERN" -benchmem -count 1 \
	. ./internal/graph ./internal/routing |
	go run ./scripts/benchjson -label "$LABEL" -out BENCH_routing.json
