package leosim

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
// Benchmarks run the same experiment code as the CLI, at a scale chosen so
// one iteration stays in the hundreds-of-milliseconds-to-seconds range; the
// reported per-op time is the cost of regenerating that figure at bench
// scale. Shapes (who wins, by what factor) match the paper at every scale;
// absolute ratios sharpen with scale (see EXPERIMENTS.md).

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/flow"
	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/ground"
)

// benchScale is TinyScale with slightly more aircraft so every experiment
// (including the South Atlantic path trace) is exercised.
func benchScale() Scale {
	s := TinyScale()
	s.AircraftDensity = 0.5
	return s
}

var (
	benchSimOnce sync.Once
	benchSim     *Sim
	benchSimErr  error
)

func getBenchSim(b *testing.B) *Sim {
	b.Helper()
	benchSimOnce.Do(func() {
		benchSim, benchSimErr = NewSim(Starlink, benchScale())
		if benchSimErr == nil {
			benchSimErr = benchSim.EnsureCity("Maceió")
		}
		if benchSimErr == nil {
			benchSimErr = benchSim.EnsureCity("Durban")
		}
	})
	if benchSimErr != nil {
		b.Fatal(benchSimErr)
	}
	return benchSim
}

// BenchmarkFig2aMinRTT regenerates Fig 2a/2b: per-pair min RTT and RTT range
// across the day under BP and hybrid connectivity.
func BenchmarkFig2aMinRTT(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunLatency(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if res.ReachablePairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkFig2bRTTVariation isolates the variation metric (headline claim).
func BenchmarkFig2bRTTVariation(b *testing.B) {
	s := getBenchSim(b)
	res, err := RunLatency(context.Background(), s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		med, p95 := res.Headline()
		if med < -100 || p95 < -100 {
			b.Fatal("impossible headline")
		}
	}
}

// BenchmarkFig3PathTrace regenerates the Maceió–Durban path trace.
func BenchmarkFig3PathTrace(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPathTrace(context.Background(), s, "Maceió", "Durban", BP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Throughput regenerates the Fig 4 throughput matrix.
func BenchmarkFig4Throughput(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := RunFig4(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		WriteFig4Report(io.Discard, rows)
	}
}

// BenchmarkFig5ISLSweep regenerates the ISL-capacity sweep.
func BenchmarkFig5ISLSweep(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunFig5(context.Background(), s, []float64{0.5, 1, 2, 3, 4, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisconnectedSats regenerates the §5 stranded-satellite statistic.
func BenchmarkDisconnectedSats(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := RunDisconnected(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if r.Max <= 0 {
			b.Fatal("no disconnection measured")
		}
	}
}

// BenchmarkFig6Attenuation regenerates the cross-pair weather comparison.
func BenchmarkFig6Attenuation(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunWeather(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8DelhiSydney regenerates the single-pair weather deep dive.
// Delhi–Sydney needs a denser ground segment than the shared tiny sim (no
// Australian relays there), so this bench owns a small dedicated sim.
func BenchmarkFig8DelhiSydney(b *testing.B) {
	scale := TinyScale()
	scale.NumCities = 150
	scale.RelaySpacingDeg = 2
	scale.RelayMaxKm = 2000
	scale.AircraftDensity = 1
	scale.NumSnapshots = 2
	s, err := NewSim(Starlink, scale)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pw, err := RunPairWeather(context.Background(), s, "Delhi", "Sydney")
		if err != nil {
			b.Fatal(err)
		}
		bpDB, islDB, _, _ := pw.At1Percent()
		if bpDB <= islDB {
			b.Fatalf("BP %v ≤ ISL %v at 1%%", bpDB, islDB)
		}
	}
}

// BenchmarkFig9GSOArc regenerates the GSO arc-avoidance analysis.
func BenchmarkFig9GSOArc(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := RunGSOArc(context.Background(), s, 40, []float64{0, 20, 40, 60, 80})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkFig10CrossShell regenerates the Brisbane–Tokyo BP-augmentation
// comparison.
func BenchmarkFig10CrossShell(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunCrossShell(context.Background(), s, "Brisbane", "Tokyo"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Fiber regenerates the Paris fiber-augmentation analysis.
func BenchmarkFig11Fiber(b *testing.B) {
	s := getBenchSim(b)
	nearby := []string{"Rouen", "Orléans", "Reims", "Amiens", "Le Mans"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunFiberAugmentation(context.Background(), s, "Paris", nearby, 200, Epoch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtUtilization regenerates the satellite-load extension (§5).
func BenchmarkExtUtilization(b *testing.B) {
	s := getBenchSim(b)
	t := s.SnapshotTimes()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunUtilization(context.Background(), s, BP, t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtPathChurn regenerates the path-stability extension (§4).
func BenchmarkExtPathChurn(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPathChurn(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtModcod regenerates the MODCOD capacity-retention extension
// (§6).
func BenchmarkExtModcod(b *testing.B) {
	s := getBenchSim(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunWeatherCapacity(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtTrafficEngineering regenerates the §5 future-work routing
// comparison.
func BenchmarkExtTrafficEngineering(b *testing.B) {
	s := getBenchSim(b)
	t := s.SnapshotTimes()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrafficEngineering(context.Background(), s, Hybrid, 4, t); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches (design choices called out in DESIGN.md) ----

// BenchmarkAblationKPaths sweeps the multipath degree k: the paper fixes
// k ∈ {1,4}; this shows the cost and the diminishing returns beyond k=4.
func BenchmarkAblationKPaths(b *testing.B) {
	s := getBenchSim(b)
	t := s.SnapshotTimes()[0]
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(benchName("k", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunThroughput(context.Background(), s, Hybrid, k, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRelayDensity compares BP latency computation across relay
// grid densities — the knob the paper credits for BP's viability.
func BenchmarkAblationRelayDensity(b *testing.B) {
	for _, spacing := range []float64{2.5, 5, 10} {
		scale := benchScale()
		scale.RelaySpacingDeg = spacing
		scale.NumSnapshots = 2
		s, err := NewSim(Starlink, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("spacingDegX10", int(spacing*10)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunLatency(context.Background(), s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPropagator compares the J2-secular Kepler propagator the
// experiments use against the full SGP4 port.
func BenchmarkAblationPropagator(b *testing.B) {
	shell := []constellation.Shell{constellation.StarlinkPhase1()}
	kep, err := constellation.New(shell)
	if err != nil {
		b.Fatal(err)
	}
	sgp, err := constellation.New(shell, constellation.WithSGP4())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("kepler", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kep.PositionsECEF(Epoch)
		}
	})
	b.Run("sgp4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sgp.PositionsECEF(Epoch)
		}
	})
}

// BenchmarkAblationVisibility compares the grid-bucket visibility search in
// the graph builder against brute force over all satellites.
func BenchmarkAblationVisibility(b *testing.B) {
	c, err := constellation.New([]constellation.Shell{constellation.StarlinkPhase1()})
	if err != nil {
		b.Fatal(err)
	}
	cities, err := ground.Cities(200)
	if err != nil {
		b.Fatal(err)
	}
	seg, err := ground.NewSegment(cities, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	builder, err := graph.NewBuilder(c, seg, nil, graph.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("grid-index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := builder.At(Epoch)
			if len(n.Links) == 0 {
				b.Fatal("no links")
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		pos := c.PositionsECEF(Epoch)
		sh := constellation.StarlinkPhase1()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			links := 0
			for _, term := range seg.Terminals {
				for _, sp := range pos {
					if geo.Visible(term.ECEF, sp, sh.MinElevationDeg) {
						links++
					}
				}
			}
			if links == 0 {
				b.Fatal("no links")
			}
		}
	})
}

// BenchmarkAblationMaxMin compares the exact progressive-filling max-min
// allocator against the one-shot bottleneck approximation.
func BenchmarkAblationMaxMin(b *testing.B) {
	s := getBenchSim(b)
	t := s.SnapshotTimes()[0]
	n := s.NetworkAt(t, Hybrid)
	// One shared problem from the hybrid network and k=4 disjoint paths.
	pr := flow.ProblemFromNetwork(n)
	for _, pair := range s.Pairs {
		for _, p := range n.KDisjointPaths(n.CityNode(pair.Src), n.CityNode(pair.Dst), 4) {
			if _, err := flow.AddPathFlow(pr, n, p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pr.MaxMinFair(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pr.BottleneckApprox(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSatCapacity compares the default capacity model (each
// satellite's up-down radio capacity is an aggregate pool shared across its
// GTs, per §2) against the per-link-only model. The pool model is what
// reproduces the paper's Fig 4/5 ratios; see EXPERIMENTS.md.
func BenchmarkAblationSatCapacity(b *testing.B) {
	for _, cfg := range []struct {
		name string
		gbps float64
	}{{"pool20", 20}, {"linkOnly", 0}} {
		s, err := NewSim(Starlink, benchScale(), WithSatelliteCapacity(cfg.gbps))
		if err != nil {
			b.Fatal(err)
		}
		t := s.SnapshotTimes()[0]
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunThroughput(context.Background(), s, Hybrid, 4, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotBuild measures raw per-snapshot graph construction for
// both modes — the inner loop every experiment pays.
func BenchmarkSnapshotBuild(b *testing.B) {
	s := getBenchSim(b)
	for _, mode := range []Mode{BP, Hybrid} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Vary the instant so the cache never hits.
				t := Epoch.Add(time.Duration(i+1) * time.Second)
				n := s.NetworkAt(t, mode)
				if n.N() == 0 {
					b.Fatal("empty network")
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
