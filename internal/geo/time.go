package geo

import (
	"math"
	"time"
)

// JulianDate returns the Julian date of t (UTC). The conversion uses the
// standard Fliegel–Van Flandern algorithm and is exact for the Gregorian
// calendar dates the simulator deals in.
func JulianDate(t time.Time) float64 {
	t = t.UTC()
	y, m, d := t.Date()
	yy, mm := int64(y), int64(m)
	if mm <= 2 {
		yy--
		mm += 12
	}
	a := yy / 100
	b := 2 - a + a/4
	jdMidnight := math.Floor(365.25*float64(yy+4716)) +
		math.Floor(30.6001*float64(mm+1)) +
		float64(d) + float64(b) - 1524.5
	secs := float64(t.Hour())*3600 + float64(t.Minute())*60 +
		float64(t.Second()) + float64(t.Nanosecond())*1e-9
	return jdMidnight + secs/86400
}

// GMST returns the Greenwich Mean Sidereal Time at t, in radians in [0, 2π).
// It implements the IAU 1982 GMST polynomial, which is accurate to well under
// a second of time for decades around J2000 — far beyond what link geometry
// needs.
func GMST(t time.Time) float64 {
	jd := JulianDate(t)
	// Julian centuries of UT1 (≈UTC here) from J2000.
	tut := (jd - 2451545.0) / 36525.0
	// Seconds of sidereal time.
	s := 67310.54841 + (876600.0*3600+8640184.812866)*tut +
		0.093104*tut*tut - 6.2e-6*tut*tut*tut
	// Convert seconds → radians (86400 sidereal seconds per 2π).
	theta := math.Mod(s*(2*math.Pi/86400), 2*math.Pi)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	return theta
}

// Epoch is the reference epoch used by the simulator when an experiment does
// not specify one. It is arbitrary but fixed so that every run is
// deterministic.
var Epoch = time.Date(2020, time.March, 1, 0, 0, 0, 0, time.UTC)
