package geo

import (
	"math"
	"math/rand"
	"testing"
)

// Tests for the geometry oracles the invariant checker (internal/check)
// leans on. Each has a closed-form special case to pin the formula and a
// randomized property to pin the inequalities.

func TestMaxSlantRangeClosedForms(t *testing.T) {
	rT, rS := EarthRadius, EarthRadius+550.0
	// Zenith: the range is exactly the altitude.
	if got, want := MaxSlantRange(rT, rS, 90), rS-rT; math.Abs(got-want) > 1e-9 {
		t.Errorf("zenith range %v, want %v", got, want)
	}
	// Horizon: the tangent-triangle hypotenuse leg.
	if got, want := MaxSlantRange(rT, rS, 0), math.Sqrt(rS*rS-rT*rT); math.Abs(got-want) > 1e-9 {
		t.Errorf("horizon range %v, want %v", got, want)
	}
	// Degenerate: satellite not above the terminal shell.
	if got := MaxSlantRange(rT, rT, 25); got != 0 {
		t.Errorf("co-radial range %v, want 0", got)
	}
}

func TestMaxSlantRangeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		rT := EarthRadius + 20*r.Float64()
		rS := EarthRadius + 300 + 1500*r.Float64()
		prev := math.Inf(1)
		for e := 0.0; e <= 90; e += 7.5 {
			d := MaxSlantRange(rT, rS, e)
			if d <= 0 || d > prev {
				t.Fatalf("rT=%v rS=%v: range %v at elev %v not positive-decreasing (prev %v)",
					rT, rS, d, e, prev)
			}
			// Law of cosines closes the center–terminal–satellite
			// triangle: the point at range d and elevation e sits at
			// radius rS exactly.
			back := math.Sqrt(rT*rT + d*d + 2*rT*d*math.Sin(e*Deg))
			if math.Abs(back-rS) > 1e-6 {
				t.Fatalf("triangle does not close: %v vs %v", back, rS)
			}
			prev = d
		}
	}
}

func TestSegmentMinAltitude(t *testing.T) {
	up := func(lat, lon, altKm float64) Vec3 {
		return LL(lat, lon).ToECEF().Unit().Scale(EarthRadius + altKm)
	}
	// Antipodal satellites: the chord runs through the planet's center.
	a, b := up(0, 0, 550), up(0, 180, 550)
	if got := SegmentMinAltitudeKm(a, b); math.Abs(got-(-EarthRadius)) > 1e-6 {
		t.Errorf("antipodal min altitude %v, want %v", got, -EarthRadius)
	}
	// Nearby satellites: the closest approach is at an endpoint.
	a, b = up(10, 20, 550), up(12, 21, 560)
	if got := SegmentMinAltitudeKm(a, b); math.Abs(got-550) > 1 {
		t.Errorf("short-chord min altitude %v, want ≈550", got)
	}
	// Degenerate zero-length segment.
	if got := SegmentMinAltitudeKm(a, a); math.Abs(got-550) > 1e-9 {
		t.Errorf("point min altitude %v, want 550", got)
	}
	// Symmetric chord between equal altitudes: sagitta formula
	// h_min = (R+h)·cos(ψ/2) − R with ψ the central angle.
	a, b = up(0, -30, 550), up(0, 30, 550)
	want := (EarthRadius+550)*math.Cos(30*Deg) - EarthRadius
	if got := SegmentMinAltitudeKm(a, b); math.Abs(got-want) > 1e-6 {
		t.Errorf("sagitta altitude %v, want %v", got, want)
	}
}

func TestMinFreeSpacePath(t *testing.T) {
	up := func(lat, lon, altKm float64) Vec3 {
		return LL(lat, lon).ToECEF().Unit().Scale(EarthRadius + altKm)
	}
	// Clear chord: exactly the Euclidean distance.
	a, b := up(0, 0, 550), up(0, 20, 550)
	if got, want := MinFreeSpacePathKm(a, b), a.Distance(b); math.Abs(got-want) > 1e-9 {
		t.Errorf("clear path %v, want chord %v", got, want)
	}
	// Antipodal surface points: the taut string is the half great circle.
	a, b = up(0, 0, 0), up(0, 180, 0)
	if got, want := MinFreeSpacePathKm(a, b), math.Pi*EarthRadius; math.Abs(got-want) > 1e-6 {
		t.Errorf("antipodal surface path %v, want %v", got, want)
	}
	// Occluded satellites: tangent + arc + tangent, computed by hand for
	// symmetric antipodal satellites at altitude h: each tangent leg is
	// sqrt((R+h)²−R²) and the wrapped arc spans ψ − 2·acos(R/(R+h)).
	h := 550.0
	a, b = up(0, 0, h), up(0, 180, h)
	leg := math.Sqrt((EarthRadius+h)*(EarthRadius+h) - EarthRadius*EarthRadius)
	arc := EarthRadius * (math.Pi - 2*math.Acos(EarthRadius/(EarthRadius+h)))
	if got, want := MinFreeSpacePathKm(a, b), 2*leg+arc; math.Abs(got-want) > 1e-6 {
		t.Errorf("occluded path %v, want %v", got, want)
	}
}

func TestMinFreeSpacePathProperties(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	randPoint := func() Vec3 {
		return LL(-90+180*r.Float64(), -180+360*r.Float64()).ToECEF().
			Unit().Scale(EarthRadius + 2000*r.Float64())
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randPoint(), randPoint()
		l, lr := MinFreeSpacePathKm(a, b), MinFreeSpacePathKm(b, a)
		if math.Abs(l-lr) > 1e-9*math.Max(1, l) {
			t.Fatalf("not symmetric: %v vs %v", l, lr)
		}
		if chord := a.Distance(b); l < chord-1e-9 {
			t.Fatalf("shorter than the chord: %v vs %v", l, chord)
		}
		// Triangle inequality through a random waypoint: detouring can
		// never beat the taut string.
		w := randPoint()
		if via := MinFreeSpacePathKm(a, w) + MinFreeSpacePathKm(w, b); via < l-1e-9 {
			t.Fatalf("detour via %v beats direct: %v vs %v", w, via, l)
		}
	}
}
