// Package geo provides the geodetic and astrodynamic primitives used by the
// rest of the simulator: Cartesian vectors, coordinate transforms between
// geodetic, Earth-centered Earth-fixed (ECEF) and Earth-centered inertial
// (ECI) frames, topocentric look angles, great-circle geodesics, and sidereal
// time.
//
// Conventions: distances are kilometers, times are seconds (or time.Time for
// epochs), angles at the public API boundary are degrees, and internal math
// uses radians. Latitude is positive north, longitude positive east.
package geo

import (
	"fmt"
	"math"
)

// Physical and geodetic constants. Distances are in kilometers.
const (
	// EarthRadius is the volumetric mean Earth radius used for the
	// spherical-Earth geometry that the network experiments run on.
	EarthRadius = 6371.0

	// EarthEquatorialRadius is the WGS84 semi-major axis.
	EarthEquatorialRadius = 6378.137

	// EarthFlattening is the WGS84 flattening f = 1/298.257223563.
	EarthFlattening = 1.0 / 298.257223563

	// EarthMu is the WGS84 gravitational parameter in km^3/s^2.
	EarthMu = 398600.4418

	// EarthRotationRate is the Earth's sidereal rotation rate in rad/s.
	EarthRotationRate = 7.2921150e-5

	// LightSpeed is the speed of light in vacuum, km/s. Laser ISLs and
	// radio ground-satellite links both propagate at c.
	LightSpeed = 299792.458

	// FiberSpeed is the effective propagation speed in optical fiber
	// (~2/3 c), used for the terrestrial fiber augmentation of §8.
	FiberSpeed = LightSpeed * 2.0 / 3.0

	// MsPerKm is the one-way propagation delay in milliseconds per
	// kilometre at c. Link construction multiplies by this instead of
	// dividing by LightSpeed: the untyped constant 1000/c is rounded once
	// at compile time, so every construction site — the full snapshot
	// builder and the incremental advancer alike — produces bit-identical
	// delays from the same distance, and the per-link float division
	// disappears from both hot paths.
	MsPerKm = 1000 / LightSpeed

	// GSOAltitude is the altitude of the geostationary arc above the
	// Equator, used for the GSO arc-avoidance constraint of §7.
	GSOAltitude = 35786.0

	// Deg converts degrees to radians when multiplied.
	Deg = math.Pi / 180
	// Rad converts radians to degrees when multiplied.
	Rad = 180 / math.Pi
)

// LatLon is a geodetic position: latitude and longitude in degrees and
// altitude above the (spherical) Earth surface in kilometers.
type LatLon struct {
	Lat, Lon float64 // degrees
	Alt      float64 // kilometers above surface
}

// LL builds a surface LatLon (altitude zero).
func LL(lat, lon float64) LatLon { return LatLon{Lat: lat, Lon: lon} }

// Normalize returns the position with longitude wrapped into (-180, 180] and
// latitude clamped into [-90, 90].
func (p LatLon) Normalize() LatLon {
	lon := math.Mod(p.Lon, 360)
	if lon > 180 {
		lon -= 360
	} else if lon <= -180 {
		lon += 360
	}
	lat := p.Lat
	if lat > 90 {
		lat = 90
	} else if lat < -90 {
		lat = -90
	}
	return LatLon{Lat: lat, Lon: lon, Alt: p.Alt}
}

// Valid reports whether latitude and longitude are within their conventional
// ranges.
func (p LatLon) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 360 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String implements fmt.Stringer.
func (p LatLon) String() string {
	ns, ew := "N", "E"
	lat, lon := p.Lat, p.Lon
	if lat < 0 {
		ns, lat = "S", -lat
	}
	if lon < 0 {
		ew, lon = "W", -lon
	}
	if p.Alt != 0 {
		return fmt.Sprintf("%.3f°%s %.3f°%s %+.1fkm", lat, ns, lon, ew, p.Alt)
	}
	return fmt.Sprintf("%.3f°%s %.3f°%s", lat, ns, lon, ew)
}

// CoverageRadius returns the great-circle radius (km, along the surface) of
// the coverage cone of a satellite at altitude h (km) for ground terminals
// with minimum elevation angle elevDeg (degrees).
//
// Geometry: for a spherical Earth of radius R, a terminal sees the satellite
// at elevation e when the Earth-central angle ψ between terminal and
// sub-satellite point satisfies
//
//	ψ = acos(R·cos(e)/(R+h)) − e.
//
// Starlink (h=550, e=25°) yields ≈941 km and Kuiper (h=630, e=30°)
// ≈1,091 km, matching §2 of the paper.
func CoverageRadius(altKm, elevDeg float64) float64 {
	e := elevDeg * Deg
	psi := math.Acos(EarthRadius*math.Cos(e)/(EarthRadius+altKm)) - e
	return EarthRadius * psi
}

// SlantRange returns the terminal→satellite distance in km for a satellite at
// altitude h seen at elevation elevDeg, on a spherical Earth.
func SlantRange(altKm, elevDeg float64) float64 {
	e := elevDeg * Deg
	r := EarthRadius + altKm
	// Law of cosines in the Earth-center/terminal/satellite triangle.
	return math.Sqrt(r*r-EarthRadius*EarthRadius*math.Cos(e)*math.Cos(e)) -
		EarthRadius*math.Sin(e)
}

// MaxGSLLength returns the maximum length of a ground-satellite link for a
// satellite at altKm with minimum elevation elevDeg. It is the slant range at
// exactly the minimum elevation.
func MaxGSLLength(altKm, elevDeg float64) float64 { return SlantRange(altKm, elevDeg) }

// MaxSlantRange returns the largest possible distance between a terminal at
// geocentric radius rTermKm and a satellite at geocentric radius rSatKm seen
// at elevation ≥ elevDeg. It generalizes MaxGSLLength to elevated terminals
// (aircraft relays): by the law of cosines in the center/terminal/satellite
// triangle, the range at elevation e is
//
//	d(e) = sqrt(rSat² − rTerm²·cos²e) − rTerm·sin e,
//
// which is strictly decreasing in e, so d(elevDeg) bounds every feasible
// link. Returns 0 when the satellite is below the terminal's horizon cone
// entirely (rSat < rTerm).
func MaxSlantRange(rTermKm, rSatKm, elevDeg float64) float64 {
	if rSatKm <= rTermKm {
		return 0
	}
	e := elevDeg * Deg
	cosE, sinE := math.Cos(e), math.Sin(e)
	disc := rSatKm*rSatKm - rTermKm*rTermKm*cosE*cosE
	if disc <= 0 {
		return 0
	}
	return math.Sqrt(disc) - rTermKm*sinE
}

// SegmentMinAltitudeKm returns the minimum altitude above the (spherical)
// Earth surface reached by the straight-line segment a–b (ECEF, km).
// Negative values mean the segment cuts through the Earth.
func SegmentMinAltitudeKm(a, b Vec3) float64 {
	ab := b.Sub(a)
	den := ab.Norm2()
	if den == 0 {
		return a.Norm() - EarthRadius
	}
	// Parameter of the closest point on the infinite line to the origin,
	// clamped to the segment.
	t := -a.Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return a.Add(ab.Scale(t)).Norm() - EarthRadius
}

// MinFreeSpacePathKm returns the length of the shortest curve from a to b
// (ECEF, km) that stays outside the Earth sphere — the "taut string" pulled
// tight around the planet. If the straight segment clears the surface this is
// simply the chord |a−b|; otherwise it is the two tangent segments plus the
// great-circle arc wrapped around the limb:
//
//	L = sqrt(ra²−R²) + sqrt(rb²−R²) + R·(ψ − acos(R/ra) − acos(R/rb)),
//
// with ψ the Earth-central angle between a and b. For two surface points it
// degenerates to the great-circle distance. No physical signal path between
// a and b can be shorter, which makes L/c a hard lower bound on one-way
// propagation delay — the oracle the invariant checker uses.
func MinFreeSpacePathKm(a, b Vec3) float64 {
	chord := a.Distance(b)
	if SegmentMinAltitudeKm(a, b) >= 0 {
		return chord
	}
	ra, rb := a.Norm(), b.Norm()
	if ra < EarthRadius {
		ra = EarthRadius // endpoints can sit on (never below) the surface
	}
	if rb < EarthRadius {
		rb = EarthRadius
	}
	psi := a.AngleTo(b)
	wrap := psi - math.Acos(EarthRadius/ra) - math.Acos(EarthRadius/rb)
	if wrap < 0 {
		// Grazing geometry where floating point disagrees with the segment
		// test: the chord is always a valid lower bound.
		return chord
	}
	return math.Sqrt(ra*ra-EarthRadius*EarthRadius) +
		math.Sqrt(rb*rb-EarthRadius*EarthRadius) + EarthRadius*wrap
}
