// Package geo provides the geodetic and astrodynamic primitives used by the
// rest of the simulator: Cartesian vectors, coordinate transforms between
// geodetic, Earth-centered Earth-fixed (ECEF) and Earth-centered inertial
// (ECI) frames, topocentric look angles, great-circle geodesics, and sidereal
// time.
//
// Conventions: distances are kilometers, times are seconds (or time.Time for
// epochs), angles at the public API boundary are degrees, and internal math
// uses radians. Latitude is positive north, longitude positive east.
package geo

import (
	"fmt"
	"math"
)

// Physical and geodetic constants. Distances are in kilometers.
const (
	// EarthRadius is the volumetric mean Earth radius used for the
	// spherical-Earth geometry that the network experiments run on.
	EarthRadius = 6371.0

	// EarthEquatorialRadius is the WGS84 semi-major axis.
	EarthEquatorialRadius = 6378.137

	// EarthFlattening is the WGS84 flattening f = 1/298.257223563.
	EarthFlattening = 1.0 / 298.257223563

	// EarthMu is the WGS84 gravitational parameter in km^3/s^2.
	EarthMu = 398600.4418

	// EarthRotationRate is the Earth's sidereal rotation rate in rad/s.
	EarthRotationRate = 7.2921150e-5

	// LightSpeed is the speed of light in vacuum, km/s. Laser ISLs and
	// radio ground-satellite links both propagate at c.
	LightSpeed = 299792.458

	// FiberSpeed is the effective propagation speed in optical fiber
	// (~2/3 c), used for the terrestrial fiber augmentation of §8.
	FiberSpeed = LightSpeed * 2.0 / 3.0

	// GSOAltitude is the altitude of the geostationary arc above the
	// Equator, used for the GSO arc-avoidance constraint of §7.
	GSOAltitude = 35786.0

	// Deg converts degrees to radians when multiplied.
	Deg = math.Pi / 180
	// Rad converts radians to degrees when multiplied.
	Rad = 180 / math.Pi
)

// LatLon is a geodetic position: latitude and longitude in degrees and
// altitude above the (spherical) Earth surface in kilometers.
type LatLon struct {
	Lat, Lon float64 // degrees
	Alt      float64 // kilometers above surface
}

// LL builds a surface LatLon (altitude zero).
func LL(lat, lon float64) LatLon { return LatLon{Lat: lat, Lon: lon} }

// Normalize returns the position with longitude wrapped into (-180, 180] and
// latitude clamped into [-90, 90].
func (p LatLon) Normalize() LatLon {
	lon := math.Mod(p.Lon, 360)
	if lon > 180 {
		lon -= 360
	} else if lon <= -180 {
		lon += 360
	}
	lat := p.Lat
	if lat > 90 {
		lat = 90
	} else if lat < -90 {
		lat = -90
	}
	return LatLon{Lat: lat, Lon: lon, Alt: p.Alt}
}

// Valid reports whether latitude and longitude are within their conventional
// ranges.
func (p LatLon) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 360 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String implements fmt.Stringer.
func (p LatLon) String() string {
	ns, ew := "N", "E"
	lat, lon := p.Lat, p.Lon
	if lat < 0 {
		ns, lat = "S", -lat
	}
	if lon < 0 {
		ew, lon = "W", -lon
	}
	if p.Alt != 0 {
		return fmt.Sprintf("%.3f°%s %.3f°%s %+.1fkm", lat, ns, lon, ew, p.Alt)
	}
	return fmt.Sprintf("%.3f°%s %.3f°%s", lat, ns, lon, ew)
}

// CoverageRadius returns the great-circle radius (km, along the surface) of
// the coverage cone of a satellite at altitude h (km) for ground terminals
// with minimum elevation angle elevDeg (degrees).
//
// Geometry: for a spherical Earth of radius R, a terminal sees the satellite
// at elevation e when the Earth-central angle ψ between terminal and
// sub-satellite point satisfies
//
//	ψ = acos(R·cos(e)/(R+h)) − e.
//
// Starlink (h=550, e=25°) yields ≈941 km and Kuiper (h=630, e=30°)
// ≈1,091 km, matching §2 of the paper.
func CoverageRadius(altKm, elevDeg float64) float64 {
	e := elevDeg * Deg
	psi := math.Acos(EarthRadius*math.Cos(e)/(EarthRadius+altKm)) - e
	return EarthRadius * psi
}

// SlantRange returns the terminal→satellite distance in km for a satellite at
// altitude h seen at elevation elevDeg, on a spherical Earth.
func SlantRange(altKm, elevDeg float64) float64 {
	e := elevDeg * Deg
	r := EarthRadius + altKm
	// Law of cosines in the Earth-center/terminal/satellite triangle.
	return math.Sqrt(r*r-EarthRadius*EarthRadius*math.Cos(e)*math.Cos(e)) -
		EarthRadius*math.Sin(e)
}

// MaxGSLLength returns the maximum length of a ground-satellite link for a
// satellite at altKm with minimum elevation elevDeg. It is the slant range at
// exactly the minimum elevation.
func MaxGSLLength(altKm, elevDeg float64) float64 { return SlantRange(altKm, elevDeg) }
