package geo

import (
	"math"
	"testing"
	"testing/quick"
)

var (
	london   = LL(51.5074, -0.1278)
	newYork  = LL(40.7128, -74.0060)
	sydney   = LL(-33.8688, 151.2093)
	delhi    = LL(28.7041, 77.1025)
	johannes = LL(-26.2041, 28.0473)
)

func TestGreatCircleKnownDistances(t *testing.T) {
	cases := []struct {
		a, b LatLon
		want float64 // km, spherical-Earth values
		tol  float64
	}{
		{london, newYork, 5570, 30},
		{delhi, sydney, 10420, 60},
		{london, johannes, 9070, 60},
		{LL(0, 0), LL(0, 180), math.Pi * EarthRadius, 1},    // antipodal
		{LL(0, 0), LL(0, 90), math.Pi / 2 * EarthRadius, 1}, // quarter
	}
	for _, c := range cases {
		got := GreatCircleKm(c.a, c.b)
		if !almostEq(got, c.want, c.tol) {
			t.Errorf("GreatCircleKm(%v,%v) = %.0f, want %.0f±%.0f", c.a, c.b, got, c.want, c.tol)
		}
	}
}

func TestGreatCircleSymmetryProperty(t *testing.T) {
	f := func(la, loa, lb, lob float64) bool {
		a := LL(math.Mod(sanitize(la), 90), math.Mod(sanitize(loa), 180))
		b := LL(math.Mod(sanitize(lb), 90), math.Mod(sanitize(lob), 180))
		return almostEq(GreatCircleKm(a, b), GreatCircleKm(b, a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGreatCircleTriangleProperty(t *testing.T) {
	// d(a,c) <= d(a,b) + d(b,c) on the sphere.
	f := func(la, loa, lb, lob, lc, loc float64) bool {
		a := LL(math.Mod(sanitize(la), 90), math.Mod(sanitize(loa), 180))
		b := LL(math.Mod(sanitize(lb), 90), math.Mod(sanitize(lob), 180))
		c := LL(math.Mod(sanitize(lc), 90), math.Mod(sanitize(loc), 180))
		return GreatCircleKm(a, c) <= GreatCircleKm(a, b)+GreatCircleKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	start := LL(51.5, -0.13)
	for _, brg := range []float64{0, 45, 90, 135, 180, 270, 359} {
		for _, dist := range []float64{1, 100, 2500, 9000} {
			dst := Destination(start, brg, dist)
			if d := GreatCircleKm(start, dst); !almostEq(d, dist, 1e-6*dist+1e-6) {
				t.Errorf("Destination(%v° %vkm): distance back = %v", brg, dist, d)
			}
		}
	}
}

func TestDestinationPoles(t *testing.T) {
	// Walking a quarter circumference north from the equator reaches the pole.
	p := Destination(LL(0, 30), 0, math.Pi/2*EarthRadius)
	if !almostEq(p.Lat, 90, 1e-6) {
		t.Errorf("should reach north pole, got %v", p)
	}
}

func TestIntermediate(t *testing.T) {
	a, b := london, sydney
	if p := Intermediate(a, b, 0); GreatCircleKm(p, a) > 1e-6 {
		t.Errorf("f=0 should return start, got %v", p)
	}
	if p := Intermediate(a, b, 1); GreatCircleKm(p, b) > 1e-6 {
		t.Errorf("f=1 should return end, got %v", p)
	}
	mid := Intermediate(a, b, 0.5)
	da, db := GreatCircleKm(a, mid), GreatCircleKm(mid, b)
	if !almostEq(da, db, 1e-6) {
		t.Errorf("midpoint not equidistant: %v vs %v", da, db)
	}
	if !almostEq(da+db, GreatCircleKm(a, b), 1e-6) {
		t.Errorf("midpoint not on geodesic")
	}
}

func TestIntermediateCoincident(t *testing.T) {
	p := Intermediate(london, london, 0.5)
	if GreatCircleKm(p, london) > 1e-9 {
		t.Errorf("intermediate of coincident points = %v", p)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	if b := InitialBearing(LL(0, 0), LL(10, 0)); !almostEq(b, 0, 1e-9) {
		t.Errorf("north bearing = %v", b)
	}
	if b := InitialBearing(LL(0, 0), LL(0, 10)); !almostEq(b, 90, 1e-9) {
		t.Errorf("east bearing = %v", b)
	}
	if b := InitialBearing(LL(0, 0), LL(-10, 0)); !almostEq(b, 180, 1e-9) {
		t.Errorf("south bearing = %v", b)
	}
	if b := InitialBearing(LL(0, 0), LL(0, -10)); !almostEq(b, 270, 1e-9) {
		t.Errorf("west bearing = %v", b)
	}
}

func TestMinRTTOverSurface(t *testing.T) {
	// London–New York geodesic c-latency is ≈ 37 ms RTT on the sphere.
	rtt := MinRTTOverSurface(london, newYork)
	if !almostEq(rtt, 2*5570/LightSpeed*1000, 0.3) {
		t.Errorf("c-RTT London–NY = %v ms", rtt)
	}
}
