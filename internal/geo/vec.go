package geo

import (
	"fmt"
	"math"
)

// Vec3 is a Cartesian vector in kilometers. It is used for positions and
// velocities in both Earth-centered inertial (ECI) and Earth-centered
// Earth-fixed (ECEF) frames; the frame is tracked by the caller.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v, avoiding a sqrt.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Distance returns the Euclidean distance between v and w in kilometers.
func (v Vec3) Distance(w Vec3) float64 { return v.Sub(w).Norm() }

// AngleTo returns the angle between v and w in radians, in [0, π].
func (v Vec3) AngleTo(w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	cos := v.Dot(w) / (nv * nw)
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return math.Acos(cos)
}

// IsZero reports whether all components are exactly zero.
func (v Vec3) IsZero() bool { return v.X == 0 && v.Y == 0 && v.Z == 0 }

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}
