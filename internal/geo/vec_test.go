package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecAddSub(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{-4, 5, 0.5}
	got := v.Add(w)
	want := Vec3{-3, 7, 3.5}
	if got != want {
		t.Fatalf("Add = %v, want %v", got, want)
	}
	if v.Add(w).Sub(w) != v {
		t.Fatalf("Add then Sub should round-trip")
	}
}

func TestVecDotCross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := Vec3{0, 0, 1}
	if x.Dot(y) != 0 {
		t.Errorf("x·y = %v, want 0", x.Dot(y))
	}
	if x.Cross(y) != z {
		t.Errorf("x×y = %v, want %v", x.Cross(y), z)
	}
	if y.Cross(x) != z.Scale(-1) {
		t.Errorf("y×x = %v, want %v", y.Cross(x), z.Scale(-1))
	}
}

func TestVecNormUnit(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v, want 5", v.Norm())
	}
	u := v.Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Fatalf("Unit norm = %v, want 1", u.Norm())
	}
	if !Vec3.IsZero(Vec3{}) {
		t.Fatalf("zero vector should report IsZero")
	}
	if got := (Vec3{}).Unit(); !got.IsZero() {
		t.Fatalf("Unit of zero = %v, want zero", got)
	}
}

func TestVecAngleTo(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 2, 0}
	if a := x.AngleTo(y); !almostEq(a, math.Pi/2, 1e-12) {
		t.Errorf("angle = %v, want π/2", a)
	}
	if a := x.AngleTo(x.Scale(3)); !almostEq(a, 0, 1e-7) {
		t.Errorf("angle to self = %v, want 0", a)
	}
	if a := x.AngleTo(x.Scale(-1)); !almostEq(a, math.Pi, 1e-7) {
		t.Errorf("angle to -self = %v, want π", a)
	}
}

func TestVecDistance(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 2, 2}
	if d := a.Distance(b); d != 3 {
		t.Fatalf("Distance = %v, want 3", d)
	}
}

// Property: the cross product is orthogonal to both operands.
func TestVecCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{sanitize(ax), sanitize(ay), sanitize(az)}
		b := Vec3{sanitize(bx), sanitize(by), sanitize(bz)}
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Norm()*b.Norm())
		return math.Abs(c.Dot(a)) <= tol && math.Abs(c.Dot(b)) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: |a+b| <= |a| + |b| (triangle inequality).
func TestVecTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{sanitize(ax), sanitize(ay), sanitize(az)}
		b := Vec3{sanitize(bx), sanitize(by), sanitize(bz)}
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// sanitize maps arbitrary quick-generated floats onto a bounded, finite
// range so geometric identities hold within floating-point tolerance.
func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
