package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// §2 of the paper: Starlink (e=25°, h=550 km) has coverage radius ≈941 km;
// Kuiper (e=30°, h=630 km) ≈1,091 km.
func TestCoverageRadiusMatchesPaper(t *testing.T) {
	if r := CoverageRadius(550, 25); !almostEq(r, 941, 5) {
		t.Errorf("Starlink coverage radius = %.1f km, want ≈941", r)
	}
	// The paper quotes 1,091 km for Kuiper (e=30°, h=630 km) but the
	// standard spherical geometry — the same formula that reproduces the
	// Starlink number above exactly — yields ≈889 km; 1,091 km would
	// correspond to e≈24°. We pin the formula's own value here and note
	// the discrepancy rather than distort the geometry.
	if r := CoverageRadius(630, 30); !almostEq(r, 889, 5) {
		t.Errorf("Kuiper coverage radius = %.1f km, want ≈889", r)
	}
}

func TestCoverageRadiusMonotonic(t *testing.T) {
	// Higher altitude → larger coverage; higher min elevation → smaller.
	if CoverageRadius(550, 25) >= CoverageRadius(1200, 25) {
		t.Errorf("coverage should grow with altitude")
	}
	if CoverageRadius(550, 25) <= CoverageRadius(550, 40) {
		t.Errorf("coverage should shrink with min elevation")
	}
}

func TestSlantRange(t *testing.T) {
	// At 90° elevation the slant range equals the altitude.
	if r := SlantRange(550, 90); !almostEq(r, 550, 1e-6) {
		t.Errorf("slant range at zenith = %v, want 550", r)
	}
	// At the minimum elevation, the slant range must exceed the altitude.
	if r := SlantRange(550, 25); r <= 550 {
		t.Errorf("slant range at 25° = %v, want > 550", r)
	}
	// And it must be consistent with the coverage-radius geometry:
	// terminal at the edge of coverage sees the satellite at exactly e.
	psi := CoverageRadius(550, 25) / EarthRadius
	obs := LL(0, 0).ToECEF()
	sat := LatLon{Lat: psi * Rad, Lon: 0, Alt: 550}.ToECEF()
	if el := Elevation(obs, sat); !almostEq(el, 25, 0.01) {
		t.Errorf("elevation at coverage edge = %v, want 25", el)
	}
	if d := obs.Distance(sat); !almostEq(d, SlantRange(550, 25), 0.5) {
		t.Errorf("slant range mismatch: %v vs %v", d, SlantRange(550, 25))
	}
}

func TestLatLonNormalize(t *testing.T) {
	cases := []struct{ in, wantLon float64 }{
		{190, -170},
		{-190, 170},
		{360, 0},
		{180, 180},
		{-180, 180},
	}
	for _, c := range cases {
		got := LatLon{Lon: c.in}.Normalize()
		if !almostEq(got.Lon, c.wantLon, 1e-9) {
			t.Errorf("Normalize lon %v = %v, want %v", c.in, got.Lon, c.wantLon)
		}
	}
	if p := (LatLon{Lat: 95}).Normalize(); p.Lat != 90 {
		t.Errorf("latitude should clamp to 90, got %v", p.Lat)
	}
}

func TestECEFRoundTrip(t *testing.T) {
	pts := []LatLon{
		{0, 0, 0}, {45, 90, 0}, {-33.9, 18.4, 0}, {51.5, -0.1, 550},
		{89, 179, 1200}, {-89, -179, 0},
	}
	for _, p := range pts {
		back := FromECEF(p.ToECEF())
		if !almostEq(back.Lat, p.Lat, 1e-9) || !almostEq(back.Lon, p.Lon, 1e-9) ||
			!almostEq(back.Alt, p.Alt, 1e-6) {
			t.Errorf("round-trip %v → %v", p, back)
		}
	}
}

func TestECEFRoundTripProperty(t *testing.T) {
	f := func(lat, lon, alt float64) bool {
		p := LatLon{
			Lat: math.Mod(math.Abs(sanitize(lat)), 89),
			Lon: math.Mod(sanitize(lon), 179),
			Alt: math.Mod(math.Abs(sanitize(alt)), 2000),
		}
		back := FromECEF(p.ToECEF())
		return almostEq(back.Lat, p.Lat, 1e-7) &&
			almostEq(back.Lon, p.Lon, 1e-7) &&
			almostEq(back.Alt, p.Alt, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestToECEFWGS84(t *testing.T) {
	// At the equator the WGS84 radius is the semi-major axis.
	v := LL(0, 0).ToECEFWGS84()
	if !almostEq(v.X, EarthEquatorialRadius, 1e-9) {
		t.Errorf("equator X = %v, want %v", v.X, EarthEquatorialRadius)
	}
	// At the pole the radius is the semi-minor axis b = a(1-f) ≈ 6356.752.
	p := LatLon{Lat: 90}.ToECEFWGS84()
	if !almostEq(p.Z, 6356.752, 0.001) {
		t.Errorf("pole Z = %v, want 6356.752", p.Z)
	}
}

func TestJulianDate(t *testing.T) {
	// Standard reference: 2000-01-01 12:00 UTC is JD 2451545.0.
	jd := JulianDate(time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC))
	if !almostEq(jd, 2451545.0, 1e-9) {
		t.Errorf("J2000 JD = %v, want 2451545.0", jd)
	}
	// Vallado example 3-4: 1996-10-26 14:20:00 UTC → JD 2450383.09722222.
	jd = JulianDate(time.Date(1996, 10, 26, 14, 20, 0, 0, time.UTC))
	if !almostEq(jd, 2450383.09722222, 1e-7) {
		t.Errorf("JD = %v, want 2450383.09722222", jd)
	}
}

func TestGMST(t *testing.T) {
	// Vallado example 3-5: 1992-08-20 12:14:00 UT1 → GMST 152.578788°.
	theta := GMST(time.Date(1992, 8, 20, 12, 14, 0, 0, time.UTC))
	if !almostEq(theta*Rad, 152.578788, 1e-3) {
		t.Errorf("GMST = %v°, want 152.578788°", theta*Rad)
	}
	// GMST must advance ~360.9856°/day.
	t0 := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	d := math.Mod((GMST(t0.Add(24*time.Hour))-GMST(t0))*Rad+720, 360)
	if !almostEq(d, 0.9856, 1e-3) {
		t.Errorf("GMST advance per day = %v°, want ≈0.9856° (mod 360)", d)
	}
}

func TestECIECEFRoundTrip(t *testing.T) {
	at := time.Date(2020, 3, 1, 7, 31, 12, 0, time.UTC)
	v := Vec3{1234.5, -6789.0, 3456.7}
	back := ECEFToECI(ECIToECEF(v, at), at)
	if v.Distance(back) > 1e-9 {
		t.Errorf("ECI↔ECEF round-trip error %v", v.Distance(back))
	}
	// Rotation preserves norms and Z.
	w := ECIToECEF(v, at)
	if !almostEq(w.Norm(), v.Norm(), 1e-9) || w.Z != v.Z {
		t.Errorf("rotation should preserve |v| and Z")
	}
}

func TestElevation(t *testing.T) {
	obs := LL(0, 0).ToECEF()
	zenith := LatLon{Lat: 0, Lon: 0, Alt: 550}.ToECEF()
	if el := Elevation(obs, zenith); !almostEq(el, 90, 1e-6) {
		t.Errorf("zenith elevation = %v, want 90", el)
	}
	// A satellite on the opposite side of the Earth is far below horizon.
	anti := LatLon{Lat: 0, Lon: 180, Alt: 550}.ToECEF()
	if el := Elevation(obs, anti); el >= 0 {
		t.Errorf("antipodal elevation = %v, want < 0", el)
	}
	if !Visible(obs, zenith, 25) {
		t.Errorf("zenith satellite must be visible at e=25°")
	}
	if Visible(obs, anti, 25) {
		t.Errorf("antipodal satellite must not be visible")
	}
}

func TestLookAngles(t *testing.T) {
	obs := LL(0, 0).ToECEF()
	north := LatLon{Lat: 5, Lon: 0, Alt: 550}.ToECEF()
	az, el := LookAngles(obs, north)
	if !almostEq(az, 0, 1e-6) {
		t.Errorf("azimuth to northern satellite = %v, want 0", az)
	}
	if el <= 0 || el >= 90 {
		t.Errorf("elevation to northern satellite = %v, want (0,90)", el)
	}
	east := LatLon{Lat: 0, Lon: 5, Alt: 550}.ToECEF()
	az, _ = LookAngles(obs, east)
	if !almostEq(az, 90, 1e-6) {
		t.Errorf("azimuth to eastern satellite = %v, want 90", az)
	}
	// Elevation from LookAngles must agree with Elevation.
	_, el = LookAngles(obs, east)
	if !almostEq(el, Elevation(obs, east), 1e-9) {
		t.Errorf("LookAngles elevation disagrees with Elevation")
	}
}

func TestLatLonString(t *testing.T) {
	s := LL(-33.9, 18.4).String()
	if s != "33.900°S 18.400°E" {
		t.Errorf("String = %q", s)
	}
	s = LatLon{Lat: 51.5, Lon: -0.1, Alt: 550}.String()
	if s != "51.500°N 0.100°W +550.0km" {
		t.Errorf("String = %q", s)
	}
}

func TestLatLonValid(t *testing.T) {
	if !geoValid(0, 0) || !geoValid(-90, 180) || !geoValid(90, -180) {
		t.Errorf("valid coordinates rejected")
	}
	if geoValid(91, 0) || geoValid(0, 400) {
		t.Errorf("invalid coordinates accepted")
	}
	if (LatLon{Lat: math.NaN()}).Valid() {
		t.Errorf("NaN latitude accepted")
	}
}

func geoValid(lat, lon float64) bool { return LL(lat, lon).Valid() }

func TestMaxGSLLength(t *testing.T) {
	if MaxGSLLength(550, 25) != SlantRange(550, 25) {
		t.Errorf("MaxGSLLength must equal the min-elevation slant range")
	}
}

func TestVecNorm2AndString(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm2() != 25 {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	if v.String() != "(3.000, 4.000, 0.000)" {
		t.Errorf("String = %q", v.String())
	}
}
