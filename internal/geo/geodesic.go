package geo

import "math"

// GreatCircleKm returns the great-circle (geodesic) distance between two
// surface positions in kilometers, on the spherical Earth. Altitudes are
// ignored. The haversine form is used for numerical stability at short
// distances.
func GreatCircleKm(a, b LatLon) float64 {
	return EarthRadius * CentralAngle(a, b)
}

// CentralAngle returns the Earth-central angle between two surface positions
// in radians.
func CentralAngle(a, b LatLon) float64 {
	la, lb := a.Lat*Deg, b.Lat*Deg
	dLat := lb - la
	dLon := (b.Lon - a.Lon) * Deg
	sa := math.Sin(dLat / 2)
	so := math.Sin(dLon / 2)
	h := sa*sa + math.Cos(la)*math.Cos(lb)*so*so
	if h > 1 {
		h = 1
	}
	return 2 * math.Asin(math.Sqrt(h))
}

// InitialBearing returns the initial great-circle bearing from a to b in
// degrees clockwise from north, in [0, 360).
func InitialBearing(a, b LatLon) float64 {
	la, lb := a.Lat*Deg, b.Lat*Deg
	dLon := (b.Lon - a.Lon) * Deg
	y := math.Sin(dLon) * math.Cos(lb)
	x := math.Cos(la)*math.Sin(lb) - math.Sin(la)*math.Cos(lb)*math.Cos(dLon)
	brg := math.Atan2(y, x) * Rad
	if brg < 0 {
		brg += 360
	}
	return brg
}

// Destination returns the surface point reached by travelling distKm along
// the great circle from p with initial bearing bearingDeg.
func Destination(p LatLon, bearingDeg, distKm float64) LatLon {
	delta := distKm / EarthRadius
	theta := bearingDeg * Deg
	lat1 := p.Lat * Deg
	lon1 := p.Lon * Deg
	sinLat1, cosLat1 := math.Sincos(lat1)
	sinD, cosD := math.Sincos(delta)
	sinLat2 := sinLat1*cosD + cosLat1*sinD*math.Cos(theta)
	lat2 := math.Asin(clamp(sinLat2, -1, 1))
	y := math.Sin(theta) * sinD * cosLat1
	x := cosD - sinLat1*sinLat2
	lon2 := lon1 + math.Atan2(y, x)
	return LatLon{Lat: lat2 * Rad, Lon: lon2 * Rad}.Normalize()
}

// Intermediate returns the surface point a fraction f (in [0,1]) of the way
// along the great circle from a to b. f=0 yields a, f=1 yields b. Antipodal
// endpoints (where the great circle is ambiguous) fall back to walking via
// the initial bearing.
func Intermediate(a, b LatLon, f float64) LatLon {
	d := CentralAngle(a, b)
	if d == 0 {
		return a
	}
	sinD := math.Sin(d)
	if sinD < 1e-12 { // antipodal or coincident
		return Destination(a, InitialBearing(a, b), f*d*EarthRadius)
	}
	A := math.Sin((1-f)*d) / sinD
	B := math.Sin(f*d) / sinD
	la, lb := a.Lat*Deg, b.Lat*Deg
	loa, lob := a.Lon*Deg, b.Lon*Deg
	x := A*math.Cos(la)*math.Cos(loa) + B*math.Cos(lb)*math.Cos(lob)
	y := A*math.Cos(la)*math.Sin(loa) + B*math.Cos(lb)*math.Sin(lob)
	z := A*math.Sin(la) + B*math.Sin(lb)
	lat := math.Atan2(z, math.Sqrt(x*x+y*y))
	lon := math.Atan2(y, x)
	return LatLon{Lat: lat * Rad, Lon: lon * Rad}
}

// MinRTTOverSurface returns the lower bound on round-trip time, in
// milliseconds, between two surface points if signals travelled the geodesic
// at the speed of light — the "c-latency" yardstick used in LEO networking
// papers.
func MinRTTOverSurface(a, b LatLon) float64 {
	return 2 * GreatCircleKm(a, b) / LightSpeed * 1000
}
