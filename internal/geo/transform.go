package geo

import (
	"math"
	"time"
)

// ToECEF converts a geodetic position on the spherical Earth to ECEF
// Cartesian coordinates (km). The spherical model is used for all network
// geometry; see ToECEFWGS84 for the ellipsoidal variant.
func (p LatLon) ToECEF() Vec3 {
	lat := p.Lat * Deg
	lon := p.Lon * Deg
	r := EarthRadius + p.Alt
	cl := math.Cos(lat)
	return Vec3{
		X: r * cl * math.Cos(lon),
		Y: r * cl * math.Sin(lon),
		Z: r * math.Sin(lat),
	}
}

// FromECEF converts an ECEF Cartesian position (km) back to spherical
// geodetic coordinates.
func FromECEF(v Vec3) LatLon {
	r := v.Norm()
	if r == 0 {
		return LatLon{}
	}
	return LatLon{
		Lat: math.Asin(v.Z/r) * Rad,
		Lon: math.Atan2(v.Y, v.X) * Rad,
		Alt: r - EarthRadius,
	}
}

// ToECEFWGS84 converts a geodetic position to ECEF using the WGS84
// ellipsoid. Provided for interoperability (e.g. comparing against SGP4/TEME
// pipelines); the experiments themselves use the spherical model so that
// coverage-radius math matches the paper's §2 numbers exactly.
func (p LatLon) ToECEFWGS84() Vec3 {
	lat := p.Lat * Deg
	lon := p.Lon * Deg
	a := EarthEquatorialRadius
	e2 := EarthFlattening * (2 - EarthFlattening)
	sl := math.Sin(lat)
	n := a / math.Sqrt(1-e2*sl*sl)
	cl := math.Cos(lat)
	return Vec3{
		X: (n + p.Alt) * cl * math.Cos(lon),
		Y: (n + p.Alt) * cl * math.Sin(lon),
		Z: (n*(1-e2) + p.Alt) * sl,
	}
}

// ECIToECEF rotates an ECI position into the ECEF frame at time t, using
// GMST as the rotation angle about the Z axis.
func ECIToECEF(v Vec3, t time.Time) Vec3 {
	return RotateZ(v, -GMST(t))
}

// ECEFToECI rotates an ECEF position into the ECI frame at time t.
func ECEFToECI(v Vec3, t time.Time) Vec3 {
	return RotateZ(v, GMST(t))
}

// RotateZ rotates v about the +Z axis by angle radians (right-handed).
func RotateZ(v Vec3, angle float64) Vec3 {
	s, c := math.Sincos(angle)
	return Vec3{
		X: c*v.X - s*v.Y,
		Y: s*v.X + c*v.Y,
		Z: v.Z,
	}
}

// Elevation returns the elevation angle, in degrees, at which an observer at
// ECEF position obs sees a target at ECEF position tgt. Both positions must
// be in the same Earth-fixed frame. The result is negative when the target is
// below the observer's local horizon.
func Elevation(obs, tgt Vec3) float64 {
	d := tgt.Sub(obs)
	dn := d.Norm()
	on := obs.Norm()
	if dn == 0 || on == 0 {
		return 90
	}
	// sin(elev) = (d · up) / |d| with up = obs/|obs| (spherical Earth).
	sinE := d.Dot(obs) / (dn * on)
	if sinE > 1 {
		sinE = 1
	} else if sinE < -1 {
		sinE = -1
	}
	return math.Asin(sinE) * Rad
}

// Visible reports whether a ground observer at obs (ECEF) sees a satellite at
// sat (ECEF) at or above the minimum elevation angle minElevDeg.
func Visible(obs, sat Vec3, minElevDeg float64) bool {
	return Elevation(obs, sat) >= minElevDeg
}

// LookAngles returns azimuth (degrees clockwise from north) and elevation
// (degrees) from an observer at ECEF obs toward target tgt, on the spherical
// Earth.
func LookAngles(obs, tgt Vec3) (azDeg, elDeg float64) {
	p := FromECEF(obs)
	lat := p.Lat * Deg
	lon := p.Lon * Deg
	d := tgt.Sub(obs)
	sinLat, cosLat := math.Sincos(lat)
	sinLon, cosLon := math.Sincos(lon)
	// Rotate the difference vector into the local SEZ (south-east-zenith)
	// frame.
	s := sinLat*cosLon*d.X + sinLat*sinLon*d.Y - cosLat*d.Z
	e := -sinLon*d.X + cosLon*d.Y
	z := cosLat*cosLon*d.X + cosLat*sinLon*d.Y + sinLat*d.Z
	rng := d.Norm()
	if rng == 0 {
		return 0, 90
	}
	el := math.Asin(clamp(z/rng, -1, 1)) * Rad
	az := math.Atan2(e, -s) * Rad
	if az < 0 {
		az += 360
	}
	return az, el
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
