// Package server turns a Sim into a long-running constellation query
// service: an HTTP JSON API answering path, latency and reachability
// questions against any snapshot of the moving constellation, under any
// fault mask, concurrently.
//
// The load-bearing pieces:
//
//   - One snapcache.Cache of frozen snapshot graphs, keyed by
//     (scenario, time, fault-mask). Concurrent queries for the same epoch
//     build the network once (singleflight) and share the immutable CSR
//     graph across goroutines; an LRU bound keeps memory flat.
//   - Per-request routing scratch comes from the graph package's
//     SearchState pool, so steady-state queries allocate almost nothing in
//     the kernel.
//   - Admission control: at most MaxInFlight queries run at once; beyond
//     that the server sheds with 429 + Retry-After instead of queueing into
//     collapse. Every query gets a deadline, and the request context is
//     propagated into core — all the way into the Dijkstra kernel — so a
//     disconnected client stops costing CPU within a poll interval.
//   - Lifecycle: Serve(ctx, ln) runs until ctx is cancelled (the CLI wires
//     SIGINT/SIGTERM), then drains in-flight requests gracefully before
//     returning.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"leosim/internal/core"
	"leosim/internal/fault"
	"leosim/internal/oracle"
	"leosim/internal/safe"
	"leosim/internal/snapcache"
	"leosim/internal/telemetry"
)

// Config assembles a Server.
type Config struct {
	// Sim is the simulation to serve queries against (required).
	Sim *core.Sim
	// CacheSize bounds resident snapshot graphs (default: snapshots per
	// day + 4, enough for a whole-day latency scan per mode at small
	// scales without evictions thrashing).
	CacheSize int
	// CacheTTL expires cached snapshots (default 0: never — snapshot
	// graphs for a fixed scenario are immutable).
	CacheTTL time.Duration
	// CacheStaleFor extends expired snapshots' lives: within the window a
	// stale snapshot is served (responses carry "stale": true) while one
	// background rebuild runs. Zero disables stale-while-revalidate;
	// meaningless without CacheTTL.
	CacheStaleFor time.Duration
	// BuildTimeout bounds each snapshot build. Zero means no bound beyond
	// the per-request deadline.
	BuildTimeout time.Duration
	// BreakerThreshold trips the snapshot-build circuit breaker after this
	// many consecutive build failures (default 5; negative disables). While
	// open, misses fail fast with 503 + Retry-After instead of hammering a
	// broken build path; stale snapshots keep serving.
	BreakerThreshold int
	// BreakerCooldown is how long the open breaker waits before one probe
	// build (default: snapcache's own 5s).
	BreakerCooldown time.Duration
	// PrimeSnapshots, when set, walks the whole snapshot schedule for both
	// modes in the background once Serve starts, advancing incrementally
	// (graph.Advancer) and depositing snapshot clones into the cache — so
	// the first client to ask for any snapshot of the day hits a warm entry
	// instead of paying a cold build. With priming on, the default cache is
	// sized to hold both modes' full day.
	PrimeSnapshots bool
	// PrimeOracles piggybacks distance-oracle construction on the priming
	// walker: every primed snapshot also gets its path oracle built and
	// attached, so the first batch (or single path query) against any
	// snapshot of the day skips the one-time build. Requires
	// PrimeSnapshots; ignored without it.
	PrimeOracles bool
	// OracleLandmarks is the ALT landmark count per oracle (0 = the oracle
	// package default).
	OracleLandmarks int
	// Chaos, when non-nil, injects seeded faults (errors, delays, panics)
	// into every snapshot build — the chaos-testing hook. Nil in production.
	Chaos *fault.Chaos
	// MaxInFlight caps concurrently executing queries; excess requests
	// receive 429 (default 2×GOMAXPROCS).
	MaxInFlight int
	// RequestTimeout bounds each query (default 15s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown once the serve context is
	// cancelled (default 10s).
	DrainTimeout time.Duration
	// Logger receives one structured line per request (id, method, path,
	// status, duration, stage timings). Nil discards logs.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — off by
	// default: profiling endpoints expose internals and cost CPU when hit.
	EnablePprof bool
}

func (c *Config) fillDefaults() error {
	if c.Sim == nil {
		return fmt.Errorf("server: Config.Sim is required")
	}
	if c.CacheSize <= 0 {
		c.CacheSize = c.Sim.Scale.NumSnapshots + 4
		if c.PrimeSnapshots {
			// Priming deposits both modes' whole day; an LRU sized for one
			// mode would evict the first mode while priming the second.
			c.CacheSize = 2*c.Sim.Scale.NumSnapshots + 8
		}
		if c.CacheSize < 16 {
			c.CacheSize = 16
		}
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	switch {
	case c.BreakerThreshold < 0:
		c.BreakerThreshold = 0 // disabled explicitly
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 5
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	return nil
}

// discardHandler drops every record (the default when Config.Logger is nil).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Server is the query service. Create one with New; it is safe for
// arbitrary handler concurrency.
type Server struct {
	cfg      Config
	scenario string // cache-key namespace: "<constellation>/<scale>"
	cache    *snapcache.Cache
	sem      chan struct{}
	times    []time.Time
	started  time.Time
	mux      *http.ServeMux
	log      *slog.Logger
	reqID    atomic.Int64 // monotonic request id for log correlation

	// reg holds this server's counters, gauges and per-route latency
	// histograms. Per-server (not the process-global telemetry registry) so
	// several instances — e.g. test servers — never share a namespace. The
	// cache's counters surface as pull-style gauges on the same registry.
	reg                                    *telemetry.Registry
	requests, shed, cancelled, timeouts    *telemetry.Counter
	badRequests, notFound, internalErrors  *telemetry.Counter
	degraded, staleResponses, breakerTrips *telemetry.Counter
	inflight                               *telemetry.Gauge

	// Oracle serving state: per-key singleflight for the one-time builds,
	// plus counters for builds paid and attached oracles reused.
	oracleMu       sync.Mutex
	oracleInflight map[snapcache.Key]*oracleCall
	oracleBuilds   *telemetry.Counter
	oracleHits     *telemetry.Counter

	// lastDegraded is the unix-nano time of the most recent degraded
	// (fallback) serve; /healthz reports "degraded" while it is recent.
	lastDegraded atomic.Int64
}

// New builds a Server for cfg.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:            cfg,
		scenario:       fmt.Sprintf("%s/%s", cfg.Sim.Choice, cfg.Sim.Scale.Name),
		sem:            make(chan struct{}, cfg.MaxInFlight),
		times:          cfg.Sim.SnapshotTimes(),
		started:        time.Now(),
		oracleInflight: map[snapcache.Key]*oracleCall{},
	}
	s.cache = snapcache.New(s.buildSnapshot, snapcache.Options{
		Capacity:         cfg.CacheSize,
		TTL:              cfg.CacheTTL,
		StaleFor:         cfg.CacheStaleFor,
		BuildTimeout:     cfg.BuildTimeout,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		// fault.Chaos is nil-safe, so the hook is wired unconditionally. The
		// build context still carries the triggering request's trace ID, so
		// injected faults join to requests in the flight recorder.
		BuildHook: func(ctx context.Context, k snapcache.Key) error { return cfg.Chaos.BuildHook(ctx, k.String()) },
	})
	s.log = cfg.Logger

	// The process-global telemetry registry feeds the per-stage histograms
	// (graph build, search, cache lookup, …) that /metrics reports; a serve
	// process always records them.
	telemetry.Enable()

	s.reg = telemetry.NewRegistry()
	s.requests = s.reg.Counter("requests")
	s.shed = s.reg.Counter("shed429")
	s.cancelled = s.reg.Counter("cancelled")
	s.timeouts = s.reg.Counter("timeouts")
	s.badRequests = s.reg.Counter("badRequests")
	s.notFound = s.reg.Counter("notFound")
	s.internalErrors = s.reg.Counter("internalErrors")
	// Degraded-mode accounting: responses answered from a stale or fallback
	// snapshot (200 with a "degraded" field where a plain server would 5xx),
	// responses served stale under stale-while-revalidate, and requests
	// rejected by the open build breaker (503).
	s.degraded = s.reg.Counter("degradedResponses")
	s.staleResponses = s.reg.Counter("staleResponses")
	s.breakerTrips = s.reg.Counter("breakerRejects")
	s.inflight = s.reg.Gauge("inflight")
	// Oracle accounting: one-time builds paid (on demand or by the primer)
	// and queries answered from an already-attached oracle.
	s.oracleBuilds = s.reg.Counter("oracleBuilds")
	s.oracleHits = s.reg.Counter("oracleHits")
	// Snapshot-cache counters as pull-style gauges: read at snapshot time
	// from the cache's own atomics, never copied on the request path.
	// singleflight_shares is the misses that piggybacked on another
	// caller's build instead of paying for their own.
	s.reg.RegisterGaugeFunc("cache_hits", func() int64 { return s.cache.Stats().Hits })
	s.reg.RegisterGaugeFunc("cache_misses", func() int64 { return s.cache.Stats().Misses })
	s.reg.RegisterGaugeFunc("cache_builds", func() int64 { return s.cache.Stats().Builds })
	s.reg.RegisterGaugeFunc("cache_evictions", func() int64 { return s.cache.Stats().Evictions })
	s.reg.RegisterGaugeFunc("cache_singleflight_shares", func() int64 {
		st := s.cache.Stats()
		return st.Misses - st.Builds
	})
	s.reg.RegisterGaugeFunc("cache_resident", func() int64 { return int64(s.cache.Len()) })
	// Self-healing surface: stale serves, abandoned/adopted builds, and the
	// live breaker position (0 closed, 1 half-open, 2 open) with its
	// consecutive-failure streak.
	s.reg.RegisterGaugeFunc("cache_stale_serves", func() int64 { return s.cache.Stats().StaleServes })
	s.reg.RegisterGaugeFunc("cache_primed", func() int64 { return s.cache.Stats().Primed })
	s.reg.RegisterGaugeFunc("cache_build_timeouts", func() int64 { return s.cache.Stats().Timeouts })
	s.reg.RegisterGaugeFunc("cache_late_builds", func() int64 { return s.cache.Stats().LateBuilds })
	s.reg.RegisterGaugeFunc("cache_fast_fails", func() int64 { return s.cache.Stats().FastFails })
	s.reg.RegisterGaugeFunc("cache_attachments", func() int64 { return s.cache.Stats().Attachments })
	s.reg.RegisterGaugeFunc("breaker_state", func() int64 { return int64(s.cache.Breaker().State) })
	s.reg.RegisterGaugeFunc("build_failure_streak", func() int64 { return s.cache.Breaker().FailureStreak })

	s.mux = http.NewServeMux()
	// Query endpoints: admission-controlled and deadline-bounded, with a
	// per-route latency histogram and one structured log line per request.
	s.mux.HandleFunc("GET /v1/path", s.instrumented("path", slog.LevelInfo, s.limited(s.handlePath)))
	s.mux.HandleFunc("GET /v1/latency", s.instrumented("latency", slog.LevelInfo, s.limited(s.handleLatency)))
	s.mux.HandleFunc("GET /v1/reachability", s.instrumented("reachability", slog.LevelInfo, s.limited(s.handleReachability)))
	// Batched multi-pair path queries, answered from per-snapshot distance
	// oracles (built once per snapshot epoch, singleflighted, attached to
	// the snapshot's cache entry).
	s.mux.HandleFunc("POST /v1/paths", s.instrumented("paths", slog.LevelInfo, s.limited(s.handleBatchPaths)))
	// Introspection endpoints: never shed, so probes and dashboards keep
	// working while the query pool is saturated; logged at debug so a
	// scraper doesn't drown the request log.
	s.mux.HandleFunc("GET /v1/snapshots", s.instrumented("snapshots", slog.LevelDebug, s.handleSnapshots))
	s.mux.HandleFunc("GET /healthz", s.instrumented("healthz", slog.LevelDebug, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrumented("metrics", slog.LevelDebug, s.handleMetrics))
	// Observability endpoints: the flight recorder (what happened, in what
	// order) and a bounded on-demand trace capture. Never shed, like the
	// other introspection routes.
	s.mux.HandleFunc("GET /debug/events", s.instrumented("debug_events", slog.LevelDebug, s.handleEvents))
	s.mux.HandleFunc("GET /debug/trace", s.instrumented("debug_trace", slog.LevelDebug, s.handleTraceCapture))
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// statusWriter captures the status code a handler wrote (200 if it never
// called WriteHeader explicitly before the first Write).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrumented wraps a handler with the observability envelope: a request id,
// a trace id (returned in X-Trace-Id and joined to every flight-recorder
// event the request causes), a per-request telemetry recorder (carried in
// the context, so every pipeline stage the request touches is attributed to
// it), a per-route latency histogram, and one structured log line. 5xx
// responses log at Warn regardless of the route's base level.
func (s *Server) instrumented(route string, lvl slog.Level, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("http_" + route + "_ms")
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		rec := telemetry.NewRecorder()
		trace := telemetry.NewTraceID()
		w.Header().Set("X-Trace-Id", trace.String())
		ctx := telemetry.WithTraceID(telemetry.WithRecorder(r.Context(), rec), trace)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		dur := time.Since(start)
		hist.Observe(dur)
		// The whole-request envelope span: one top-level slice per request
		// track in the exported trace (no-op unless a capture is running).
		telemetry.AddTraceSpan("http_"+route, trace, start, dur)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		level := lvl
		if sw.status >= 500 {
			level = slog.LevelWarn
		}
		if !s.log.Enabled(r.Context(), level) {
			return
		}
		attrs := []any{
			slog.Int64("id", id),
			slog.String("trace", trace.String()),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Float64("durMs", float64(dur)/float64(time.Millisecond)),
		}
		if hits, misses := rec.Count(telemetry.StageCacheHit), rec.Count(telemetry.StageCacheMiss); hits+misses > 0 {
			attrs = append(attrs, slog.Int64("cacheHits", hits), slog.Int64("cacheMisses", misses))
		}
		if stages := rec.Summary(); stages != "" {
			attrs = append(attrs, slog.String("stages", stages))
		}
		s.log.Log(r.Context(), level, "request", attrs...)
	}
}

// Handler returns the root handler (also useful under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes the snapshot-cache counters (tests, /v1/snapshots).
func (s *Server) CacheStats() snapcache.Stats { return s.cache.Stats() }

// retryAfter derives the Retry-After hint for shed (429) and breaker (503)
// responses from live pressure, not a constant: the base grows with query
// pool saturation, stretches to the breaker's remaining cooldown when the
// circuit is open (retrying sooner is provably pointless), and carries up
// to 50% random jitter so a synchronized client fleet doesn't thunder back
// in lockstep. floor is a caller-supplied lower bound (e.g. the cooldown
// from the specific BreakerOpenError being reported).
func (s *Server) retryAfter(floor time.Duration) time.Duration {
	load := float64(len(s.sem)) / float64(cap(s.sem))
	base := time.Duration((1 + load) * float64(time.Second))
	if br := s.cache.Breaker(); br.State != snapcache.BreakerClosed && br.RetryAfter > base {
		base = br.RetryAfter
	}
	if floor > base {
		base = floor
	}
	return base + time.Duration(rand.Int63n(int64(base)/2+1))
}

// retryAfterHeader renders a duration as the integral-seconds Retry-After
// header value, rounding up so the hint never undershoots.
func retryAfterHeader(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// limited wraps a query handler with admission control and the per-request
// deadline. Shedding replies 429 with Retry-After so well-behaved clients
// back off.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.Add(1)
			telemetry.EmitEvent(r.Context(), telemetry.CatServe, telemetry.SevWarn,
				"load shed: server at capacity",
				telemetry.Int64("maxInFlight", int64(cap(s.sem))))
			w.Header().Set("Retry-After", retryAfterHeader(s.retryAfter(0)))
			writeErrorTraced(w, http.StatusTooManyRequests,
				"server at capacity, retry later", telemetry.TraceIDFrom(r.Context()))
			return
		}
		s.inflight.Add(1)
		defer func() { s.inflight.Add(-1); <-s.sem }()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
// in-flight requests run to completion (bounded by DrainTimeout) while new
// connections are refused. It returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if s.cfg.PrimeSnapshots {
		go s.primeCache(ctx)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	<-errc // always http.ErrServerClosed after Shutdown
	return err
}

// primeCache walks the snapshot schedule for both modes with an incremental
// time cursor, depositing a clone of each snapshot into the cache. One
// Advance step costs a fraction of a full build, so the whole day warms in
// roughly the time a handful of cold misses would; requests arriving
// mid-prime simply build (or singleflight-share) as usual and the prime's
// Put refreshes their entry. Runs until done or ctx is cancelled; a builder
// panic aborts priming with a log line, never the serve process.
func (s *Server) primeCache(ctx context.Context) {
	start := time.Now()
	primed, err := s.primeAll(ctx)
	if err != nil && ctx.Err() == nil {
		s.log.Warn("cache prime aborted", "primed", primed, "err", err)
		return
	}
	s.log.Info("cache primed", "snapshots", primed,
		"durMs", time.Since(start).Milliseconds())
}

func (s *Server) primeAll(ctx context.Context) (primed int, err error) {
	defer safe.RecoverTo(&err)
	for _, mode := range []core.Mode{core.BP, core.Hybrid} {
		w := s.cfg.Sim.NewWalker(mode)
		for _, t := range s.times {
			if err := ctx.Err(); err != nil {
				return primed, err
			}
			// The walker's network is mutated in place by the next step;
			// the cache gets an immutable clone with its CSR pre-frozen.
			clone := w.At(t).Clone()
			key := s.cacheKey(t, mode, "")
			s.cache.Put(key, clone)
			primed++
			if s.cfg.PrimeOracles {
				// The oracle build rides the primer: once it lands, the
				// first query against this snapshot — single or batched —
				// skips both the graph build and the oracle build.
				o, oerr := oracle.Build(ctx, clone, oracle.Options{Landmarks: s.cfg.OracleLandmarks})
				if oerr != nil {
					return primed, oerr
				}
				s.oracleBuilds.Add(1)
				s.cache.Attach(key, clone, o)
			}
		}
	}
	return primed, nil
}
