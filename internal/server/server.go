// Package server turns a Sim into a long-running constellation query
// service: an HTTP JSON API answering path, latency and reachability
// questions against any snapshot of the moving constellation, under any
// fault mask, concurrently.
//
// The load-bearing pieces:
//
//   - One snapcache.Cache of frozen snapshot graphs, keyed by
//     (scenario, time, fault-mask). Concurrent queries for the same epoch
//     build the network once (singleflight) and share the immutable CSR
//     graph across goroutines; an LRU bound keeps memory flat.
//   - Per-request routing scratch comes from the graph package's
//     SearchState pool, so steady-state queries allocate almost nothing in
//     the kernel.
//   - Admission control: at most MaxInFlight queries run at once; beyond
//     that the server sheds with 429 + Retry-After instead of queueing into
//     collapse. Every query gets a deadline, and the request context is
//     propagated into core — all the way into the Dijkstra kernel — so a
//     disconnected client stops costing CPU within a poll interval.
//   - Lifecycle: Serve(ctx, ln) runs until ctx is cancelled (the CLI wires
//     SIGINT/SIGTERM), then drains in-flight requests gracefully before
//     returning.
package server

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"leosim/internal/core"
	"leosim/internal/snapcache"
)

// Config assembles a Server.
type Config struct {
	// Sim is the simulation to serve queries against (required).
	Sim *core.Sim
	// CacheSize bounds resident snapshot graphs (default: snapshots per
	// day + 4, enough for a whole-day latency scan per mode at small
	// scales without evictions thrashing).
	CacheSize int
	// CacheTTL expires cached snapshots (default 0: never — snapshot
	// graphs for a fixed scenario are immutable).
	CacheTTL time.Duration
	// MaxInFlight caps concurrently executing queries; excess requests
	// receive 429 (default 2×GOMAXPROCS).
	MaxInFlight int
	// RequestTimeout bounds each query (default 15s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown once the serve context is
	// cancelled (default 10s).
	DrainTimeout time.Duration
}

func (c *Config) fillDefaults() error {
	if c.Sim == nil {
		return fmt.Errorf("server: Config.Sim is required")
	}
	if c.CacheSize <= 0 {
		c.CacheSize = c.Sim.Scale.NumSnapshots + 4
		if c.CacheSize < 16 {
			c.CacheSize = 16
		}
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return nil
}

// Server is the query service. Create one with New; it is safe for
// arbitrary handler concurrency.
type Server struct {
	cfg      Config
	scenario string // cache-key namespace: "<constellation>/<scale>"
	cache    *snapcache.Cache
	sem      chan struct{}
	times    []time.Time
	started  time.Time
	mux      *http.ServeMux

	// Counters surface on /metrics through an (unpublished) expvar.Map, so
	// several servers — e.g. test instances — never collide in the global
	// expvar namespace.
	vars                                  *expvar.Map
	requests, shed, cancelled, timeouts   expvar.Int
	badRequests, notFound, internalErrors expvar.Int
	inflight                              expvar.Int
}

// New builds a Server for cfg.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		scenario: fmt.Sprintf("%s/%s", cfg.Sim.Choice, cfg.Sim.Scale.Name),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		times:    cfg.Sim.SnapshotTimes(),
		started:  time.Now(),
	}
	s.cache = snapcache.New(s.buildSnapshot, snapcache.Options{
		Capacity: cfg.CacheSize,
		TTL:      cfg.CacheTTL,
	})
	s.vars = new(expvar.Map).Init()
	s.vars.Set("requests", &s.requests)
	s.vars.Set("shed429", &s.shed)
	s.vars.Set("cancelled", &s.cancelled)
	s.vars.Set("timeouts", &s.timeouts)
	s.vars.Set("badRequests", &s.badRequests)
	s.vars.Set("notFound", &s.notFound)
	s.vars.Set("internalErrors", &s.internalErrors)
	s.vars.Set("inflight", &s.inflight)

	s.mux = http.NewServeMux()
	// Query endpoints: admission-controlled and deadline-bounded.
	s.mux.HandleFunc("GET /v1/path", s.limited(s.handlePath))
	s.mux.HandleFunc("GET /v1/latency", s.limited(s.handleLatency))
	s.mux.HandleFunc("GET /v1/reachability", s.limited(s.handleReachability))
	// Introspection endpoints: never shed, so probes and dashboards keep
	// working while the query pool is saturated.
	s.mux.HandleFunc("GET /v1/snapshots", s.handleSnapshots)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the root handler (also useful under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes the snapshot-cache counters (tests, /v1/snapshots).
func (s *Server) CacheStats() snapcache.Stats { return s.cache.Stats() }

// limited wraps a query handler with admission control and the per-request
// deadline. Shedding replies 429 with Retry-After so well-behaved clients
// back off.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		s.inflight.Add(1)
		defer func() { s.inflight.Add(-1); <-s.sem }()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
// in-flight requests run to completion (bounded by DrainTimeout) while new
// connections are refused. It returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	<-errc // always http.ErrServerClosed after Shutdown
	return err
}
