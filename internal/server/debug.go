package server

import (
	"net/http"
	"strconv"
	"time"

	"leosim/internal/telemetry"
)

// eventsResponse is the GET /debug/events payload. LastSeq is the newest
// sequence number in the recorder at snapshot time — pass it back as ?since=
// to read only what happened afterwards (the chaos tests use exactly this to
// scope a storm).
type eventsResponse struct {
	LastSeq uint64            `json:"lastSeq"`
	Events  []telemetry.Event `json:"events"`
}

// handleEvents answers GET /debug/events: the flight recorder's retained
// events, oldest first. Filters: ?since=<seq> (events after that sequence
// number), ?category=build|breaker|serve|chaos|advance|journal,
// ?severity=info|warn|error (minimum), ?limit=<n> (newest n).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := telemetry.EventFilter{Cat: telemetry.CatAll}
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, r, badRequest("since must be a sequence number"))
			return
		}
		f.Since = n
	}
	cat, err := telemetry.ParseCategory(q.Get("category"))
	if err != nil {
		s.fail(w, r, badRequest("category must be one of build, breaker, serve, chaos, advance, journal"))
		return
	}
	f.Cat = cat
	sev, err := telemetry.ParseSeverity(q.Get("severity"))
	if err != nil {
		s.fail(w, r, badRequest("severity must be one of info, warn, error"))
		return
	}
	f.MinSev = sev
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, r, badRequest("limit must be a non-negative integer"))
			return
		}
		f.Limit = n
	}
	evs := telemetry.Events(f)
	if evs == nil {
		evs = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{LastSeq: telemetry.LastEventSeq(), Events: evs})
}

// maxTraceCaptureDuration bounds one /debug/trace capture; holding the
// exclusive tracer (and the connection) longer serves no diagnostic purpose.
const maxTraceCaptureDuration = time.Minute

// handleTraceCapture answers GET /debug/trace?duration=5s: it starts an
// exclusive trace capture, records every span the process completes for the
// duration, and streams the result as Chrome trace_event JSON — open it in
// Perfetto (ui.perfetto.dev) to see each request and batch snapshot as its
// own track. 409 when a capture is already running.
func (s *Server) handleTraceCapture(w http.ResponseWriter, r *http.Request) {
	dur := 5 * time.Second
	if v := r.URL.Query().Get("duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 || d > maxTraceCaptureDuration {
			s.fail(w, r, badRequest("duration must be a positive duration up to %s", maxTraceCaptureDuration))
			return
		}
		dur = d
	}
	if _, err := telemetry.StartTracing(telemetry.DefaultTraceCapacity); err != nil {
		writeErrorTraced(w, http.StatusConflict, err.Error(), telemetry.TraceIDFrom(r.Context()))
		return
	}
	// Capture for the window, or until the client hangs up — either way the
	// exclusive tracer must be released.
	select {
	case <-time.After(dur):
	case <-r.Context().Done():
	}
	tr := telemetry.StopTracing()
	if tr == nil {
		s.fail(w, r, badRequest("trace capture was stopped concurrently"))
		return
	}
	if r.Context().Err() != nil {
		return // client gone; nothing to write to
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="leosim-trace.json"`)
	tr.WriteChrome(w) //nolint:errcheck // client gone — nothing left to do
}
