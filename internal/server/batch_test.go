package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"leosim/internal/core"
	"leosim/internal/oracle"
)

func postJSON(t *testing.T, h http.Handler, url string, body []byte, out interface{}) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", url, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec
}

type batchRespJSON struct {
	Mode   string `json:"mode"`
	Count  int    `json:"count"`
	Oracle struct {
		Cached    bool    `json:"cached"`
		BuildMs   float64 `json:"buildMs"`
		Sources   int     `json:"sources"`
		Landmarks int     `json:"landmarks"`
	} `json:"oracle"`
	Results []struct {
		Src       string   `json:"src"`
		Dst       string   `json:"dst"`
		Reachable bool     `json:"reachable"`
		RTTMs     float64  `json:"rttMs"`
		OneWayMs  float64  `json:"oneWayMs"`
		Hops      int      `json:"hops"`
		Route     []string `json:"route"`
	} `json:"results"`
}

// TestBatchPathsMatchesSingle is the serving-level differential: every entry
// of a POST /v1/paths batch must equal the corresponding GET /v1/path answer
// — RTT, hops, and the full named route — for both modes.
func TestBatchPathsMatchesSingle(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 5}}
	for _, mode := range []string{"bp", "hybrid"} {
		body := map[string]interface{}{
			"mode": mode, "snap": 1, "includeRoutes": true,
			"pairs": []map[string]string{},
		}
		bp := body["pairs"].([]map[string]string)
		for _, p := range pairs {
			bp = append(bp, map[string]string{"src": sim.CityName(p[0]), "dst": sim.CityName(p[1])})
		}
		body["pairs"] = bp
		payload, _ := json.Marshal(body)
		var batch batchRespJSON
		if rec := postJSON(t, s.Handler(), "/v1/paths", payload, &batch); rec.Code != http.StatusOK {
			t.Fatalf("POST /v1/paths (%s): %d\n%s", mode, rec.Code, rec.Body.String())
		}
		if batch.Count != len(pairs) || len(batch.Results) != len(pairs) {
			t.Fatalf("batch answered %d/%d pairs", len(batch.Results), len(pairs))
		}
		if batch.Oracle.Sources != sim.NumCities() {
			t.Fatalf("oracle labelled %d sources, want %d", batch.Oracle.Sources, sim.NumCities())
		}
		for i, p := range pairs {
			var single struct {
				Path struct {
					Reachable bool     `json:"reachable"`
					RTTMs     float64  `json:"rttMs"`
					Hops      int      `json:"hops"`
					Route     []string `json:"route"`
				} `json:"path"`
			}
			url := q("/v1/path", "src", sim.CityName(p[0]), "dst", sim.CityName(p[1]), "mode", mode, "snap", "1")
			if rec := getJSON(t, s.Handler(), url, &single); rec.Code != http.StatusOK {
				t.Fatalf("GET %s: %d", url, rec.Code)
			}
			got := batch.Results[i]
			if got.Reachable != single.Path.Reachable {
				t.Fatalf("pair %d (%s): batch reachable=%v, single=%v", i, mode, got.Reachable, single.Path.Reachable)
			}
			if !got.Reachable {
				continue
			}
			if got.RTTMs != single.Path.RTTMs || got.Hops != single.Path.Hops {
				t.Fatalf("pair %d (%s): batch (%.6f ms, %d hops) != single (%.6f ms, %d hops)",
					i, mode, got.RTTMs, got.Hops, single.Path.RTTMs, single.Path.Hops)
			}
			if strings.Join(got.Route, "|") != strings.Join(single.Path.Route, "|") {
				t.Fatalf("pair %d (%s): batch route %v != single route %v", i, mode, got.Route, single.Path.Route)
			}
		}
	}
}

// TestBatchPathsValidation pins every rejection class the decoder and
// handler promise: 400s for malformed bodies, 404 for unknown cities, and
// clean answers never panic out of the handler.
func TestBatchPathsValidation(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	pair := func(a, b int) string {
		return fmt.Sprintf(`{"src":%q,"dst":%q}`, sim.CityName(a), sim.CityName(b))
	}
	manyPairs := make([]string, MaxBatchPairs+1)
	for i := range manyPairs {
		manyPairs[i] = pair(0, 1) // duplicates, but the limit check fires first
	}
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"pairs":[`, http.StatusBadRequest},
		{"unknown field", `{"pears":[` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"trailing data", `{"pairs":[` + pair(0, 1) + `]}{}`, http.StatusBadRequest},
		{"empty pairs", `{"pairs":[]}`, http.StatusBadRequest},
		{"missing pairs", `{"mode":"bp"}`, http.StatusBadRequest},
		{"duplicate pair", `{"pairs":[` + pair(0, 1) + `,` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"src equals dst", `{"pairs":[` + pair(2, 2) + `]}`, http.StatusBadRequest},
		{"empty src", `{"pairs":[{"src":"","dst":"Tokyo"}]}`, http.StatusBadRequest},
		{"bad mode", `{"mode":"warp","pairs":[` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"snap and t", `{"snap":0,"t":"90m","pairs":[` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"snap out of range", `{"snap":99,"pairs":[` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"bad t", `{"t":"yesterday","pairs":[` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"fraction without fault", `{"fraction":0.5,"pairs":[` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"bad fault scenario", `{"fault":"meteor","pairs":[` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"fraction out of range", `{"fault":"sat","fraction":1.5,"pairs":[` + pair(0, 1) + `]}`, http.StatusBadRequest},
		{"limit overflow", `{"pairs":[` + strings.Join(manyPairs, ",") + `]}`, http.StatusBadRequest},
		{"unknown src city", `{"pairs":[{"src":"Atlantis","dst":"Tokyo"}]}`, http.StatusNotFound},
		{"unknown dst city", `{"pairs":[{"src":"Tokyo","dst":"Atlantis"}]}`, http.StatusNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := postJSON(t, s.Handler(), "/v1/paths", []byte(c.body), nil)
			if rec.Code != c.want {
				t.Fatalf("status %d, want %d\n%s", rec.Code, c.want, rec.Body.String())
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON with error field: %s", rec.Body.String())
			}
		})
	}

	// An oversized body is rejected before the decoder ever sees it.
	huge := make([]byte, maxBatchBodyBytes+2)
	for i := range huge {
		huge[i] = ' '
	}
	if rec := postJSON(t, s.Handler(), "/v1/paths", huge, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", rec.Code)
	}
}

// TestBatchPathsOracleCached pins the singleflight attach lifecycle: the
// first batch for a key builds and attaches the oracle, the second finds it.
func TestBatchPathsOracleCached(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	payload := []byte(fmt.Sprintf(`{"pairs":[{"src":%q,"dst":%q},{"src":%q,"dst":%q}]}`,
		sim.CityName(0), sim.CityName(1), sim.CityName(1), sim.CityName(3)))

	var first, second batchRespJSON
	if rec := postJSON(t, s.Handler(), "/v1/paths", payload, &first); rec.Code != http.StatusOK {
		t.Fatalf("first batch: %d\n%s", rec.Code, rec.Body.String())
	}
	if first.Oracle.Cached {
		t.Fatal("first batch claims a cached oracle on a cold server")
	}
	if rec := postJSON(t, s.Handler(), "/v1/paths", payload, &second); rec.Code != http.StatusOK {
		t.Fatalf("second batch: %d\n%s", rec.Code, rec.Body.String())
	}
	if !second.Oracle.Cached {
		t.Fatal("second batch rebuilt the oracle instead of finding the attachment")
	}
	if got := s.oracleBuilds.Value(); got != 1 {
		t.Fatalf("oracleBuilds = %d, want 1", got)
	}
	if first.Results[0].RTTMs != second.Results[0].RTTMs {
		t.Fatalf("cached oracle answered differently: %v then %v", first.Results[0].RTTMs, second.Results[0].RTTMs)
	}
	cs := s.cache.Stats()
	if cs.Attachments != 1 {
		t.Fatalf("cache recorded %d attachments, want 1", cs.Attachments)
	}
}

// TestBatchPathsFaulted runs a batch under a nonzero fault mask and checks
// the answers against the single-query endpoint under the same mask.
func TestBatchPathsFaulted(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	payload := []byte(fmt.Sprintf(`{"fault":"sat","fraction":0.2,"faultSeed":7,"pairs":[{"src":%q,"dst":%q}]}`,
		sim.CityName(0), sim.CityName(4)))
	var batch batchRespJSON
	if rec := postJSON(t, s.Handler(), "/v1/paths", payload, &batch); rec.Code != http.StatusOK {
		t.Fatalf("faulted batch: %d\n%s", rec.Code, rec.Body.String())
	}
	var single struct {
		Fault string `json:"fault"`
		Path  struct {
			Reachable bool    `json:"reachable"`
			RTTMs     float64 `json:"rttMs"`
		} `json:"path"`
	}
	url := q("/v1/path", "src", sim.CityName(0), "dst", sim.CityName(4),
		"fault", "sat", "fraction", "0.2", "fault-seed", "7")
	if rec := getJSON(t, s.Handler(), url, &single); rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d", url, rec.Code)
	}
	got := batch.Results[0]
	if got.Reachable != single.Path.Reachable || got.RTTMs != single.Path.RTTMs {
		t.Fatalf("faulted batch (%v, %.6f) != single (%v, %.6f)",
			got.Reachable, got.RTTMs, single.Path.Reachable, single.Path.RTTMs)
	}
}

// TestPrimeOraclesAttach checks the primer piggyback: with PrimeOracles set,
// every primed (snapshot, mode) key carries a valid oracle attachment, and
// single-path queries are then served off the oracle (oracleHits moves).
func TestPrimeOraclesAttach(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{PrimeSnapshots: true, PrimeOracles: true, OracleLandmarks: 2})
	primed, err := s.primeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(s.times); primed != want {
		t.Fatalf("primed %d snapshots, want %d", primed, want)
	}
	if got := s.oracleBuilds.Value(); got != int64(primed) {
		t.Fatalf("oracleBuilds = %d, want one per primed snapshot (%d)", got, primed)
	}
	for _, mode := range []core.Mode{core.BP, core.Hybrid} {
		for _, ts := range s.times {
			aux, n, ok := s.cache.Attachment(s.cacheKey(ts, mode, ""))
			if !ok || n == nil {
				t.Fatalf("%s@%v: no attachment after oracle prime", mode, ts)
			}
			o, isOracle := aux.(*oracle.Oracle)
			if !isOracle || !o.Valid(n) {
				t.Fatalf("%s@%v: attachment is not a valid oracle for its network", mode, ts)
			}
		}
	}
	before := s.oracleHits.Value()
	url := q("/v1/path", "src", sim.CityName(0), "dst", sim.CityName(2), "snap", "0")
	if rec := getJSON(t, s.Handler(), url, nil); rec.Code != http.StatusOK {
		t.Fatalf("path after oracle prime: %d", rec.Code)
	}
	if s.oracleHits.Value() != before+1 {
		t.Fatalf("single query did not hit the primed oracle (hits %d → %d)", before, s.oracleHits.Value())
	}
}

// FuzzBatchPathsDecode fuzzes the pure batch-body decoder: any byte string
// must yield either a valid request satisfying every documented invariant or
// a *badRequestError — never a panic, never another error type.
func FuzzBatchPathsDecode(f *testing.F) {
	seeds := []string{
		`{"pairs":[{"src":"A","dst":"B"}]}`,
		`{"mode":"hybrid","snap":1,"pairs":[{"src":"A","dst":"B"},{"src":"B","dst":"A"}]}`,
		`{"t":"90m","includeRoutes":true,"pairs":[{"src":"A","dst":"B"}]}`,
		`{"fault":"sat","fraction":0.5,"faultSeed":3,"pairs":[{"src":"A","dst":"B"}]}`,
		`{"pairs":[{"src":"A","dst":"A"}]}`,
		`{"pairs":[{"src":"A","dst":"B"},{"src":"A","dst":"B"}]}`,
		`{"pairs":[]}`,
		`{"snap":0,"t":"90m","pairs":[{"src":"A","dst":"B"}]}`,
		`{"pears":[{"src":"A","dst":"B"}]}`,
		`{"pairs":[{"src":"A","dst":"B"}]}trailing`,
		`{`,
		``,
		`[1,2,3]`,
		`{"mode":"warp","pairs":[{"src":"A","dst":"B"}]}`,
		`{"fraction":2,"fault":"sat","pairs":[{"src":"A","dst":"B"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	const maxPairs = 16
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeBatchPaths(data, maxPairs)
		if err != nil {
			var br *badRequestError
			if !errors.As(err, &br) {
				t.Fatalf("decode error is %T, want *badRequestError: %v", err, err)
			}
			if req != nil {
				t.Fatal("decode returned both a request and an error")
			}
			return
		}
		if req == nil {
			t.Fatal("decode returned neither request nor error")
		}
		switch req.Mode {
		case "", "bp", "hybrid":
		default:
			t.Fatalf("accepted mode %q", req.Mode)
		}
		if req.Snap != nil && req.T != "" {
			t.Fatal("accepted both snap and t")
		}
		if len(req.Pairs) == 0 || len(req.Pairs) > maxPairs {
			t.Fatalf("accepted %d pairs", len(req.Pairs))
		}
		seen := map[batchPair]bool{}
		for _, p := range req.Pairs {
			if p.Src == "" || p.Dst == "" || p.Src == p.Dst {
				t.Fatalf("accepted degenerate pair %+v", p)
			}
			if seen[p] {
				t.Fatalf("accepted duplicate pair %+v", p)
			}
			seen[p] = true
		}
		if req.Fault == "" && (req.Fraction != nil || req.FaultSeed != nil) {
			t.Fatal("accepted fraction/faultSeed without fault")
		}
		if req.Fraction != nil && (*req.Fraction < 0 || *req.Fraction > 1) {
			t.Fatalf("accepted fraction %v", *req.Fraction)
		}
	})
}
