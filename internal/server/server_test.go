package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"leosim/internal/core"
	"leosim/internal/geo"
)

// One shared sim for the whole package: constellation construction dominates
// test time and every test only reads it.
var (
	simOnce sync.Once
	testSim *core.Sim
	simErr  error
)

func serverSim(t *testing.T) *core.Sim {
	t.Helper()
	simOnce.Do(func() {
		scale := core.TinyScale()
		scale.NumSnapshots = 2
		testSim, simErr = core.NewSim(core.Starlink, scale)
	})
	if simErr != nil {
		t.Fatal(simErr)
	}
	return testSim
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Sim == nil {
		cfg.Sim = serverSim(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// q builds a correctly-escaped query URL: city names contain spaces and
// non-ASCII characters a raw string would not parse as.
func q(path string, kv ...string) string {
	v := url.Values{}
	for i := 0; i+1 < len(kv); i += 2 {
		v.Set(kv[i], kv[i+1])
	}
	return path + "?" + v.Encode()
}

func getJSON(t *testing.T, h http.Handler, url string, out interface{}) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec
}

// The core acceptance criterion: a served /v1/path answer must match the
// batch pipeline's shortest path exactly, for both modes.
func TestPathMatchesBatchResults(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	for _, mode := range []core.Mode{core.BP, core.Hybrid} {
		n := sim.NetworkAt(geo.Epoch, mode)
		for _, pair := range sim.Pairs[:5] {
			url := q("/v1/path", "src", sim.CityName(pair.Src), "dst", sim.CityName(pair.Dst), "mode", mode.String())
			var resp pathResponse
			if rec := getJSON(t, s.Handler(), url, &resp); rec.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", url, rec.Code, rec.Body.String())
			}
			p, ok := n.ShortestPath(n.CityNode(pair.Src), n.CityNode(pair.Dst))
			if resp.Path.Reachable != ok {
				t.Fatalf("%s: served reachable=%v, batch %v", url, resp.Path.Reachable, ok)
			}
			if !ok {
				continue
			}
			if resp.Path.RTTMs != p.RTTMs() || resp.Path.Hops != p.Hops() {
				t.Fatalf("%s: served (rtt=%v hops=%d), batch (rtt=%v hops=%d)",
					url, resp.Path.RTTMs, resp.Path.Hops, p.RTTMs(), p.Hops())
			}
		}
	}
}

// The cache acceptance criterion: 100 concurrent requests for one
// (scenario, time, mask) key run exactly one snapshot build.
func TestSingleBuildUnder100ConcurrentRequests(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{MaxInFlight: 128})
	url := q("/v1/path", "src", sim.CityName(sim.Pairs[0].Src), "dst", sim.CityName(sim.Pairs[0].Dst))

	const N = 100
	var wg sync.WaitGroup
	codes := make([]int, N)
	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
			codes[i] = rec.Code
		}()
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
	st := s.CacheStats()
	if st.Builds != 1 {
		t.Fatalf("%d concurrent requests ran %d builds, want 1", N, st.Builds)
	}
	if st.Hits+st.Misses != N {
		t.Fatalf("cache saw %d gets, want %d", st.Hits+st.Misses, N)
	}
}

// Distinct fault masks are distinct cache keys: the masked build must not be
// served for the healthy key or vice versa, and the mask is echoed back.
func TestFaultMaskKeysSeparateBuilds(t *testing.T) {
	s := newTestServer(t, Config{})
	sim := serverSim(t)
	src, dst := sim.CityName(sim.Pairs[0].Src), sim.CityName(sim.Pairs[0].Dst)
	base := q("/v1/path", "src", src, "dst", dst, "mode", "hybrid")
	faulted0 := q("/v1/path", "src", src, "dst", dst, "mode", "hybrid",
		"fault", "sat", "fraction", "0.5", "fault-seed", "3")

	var healthy, faulted pathResponse
	if rec := getJSON(t, s.Handler(), base, &healthy); rec.Code != http.StatusOK {
		t.Fatalf("healthy: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := getJSON(t, s.Handler(), faulted0, &faulted); rec.Code != http.StatusOK {
		t.Fatalf("faulted: status %d: %s", rec.Code, rec.Body.String())
	}
	if faulted.Fault != "sat:0.5:3" {
		t.Fatalf("fault fingerprint = %q, want sat:0.5:3", faulted.Fault)
	}
	if s.CacheStats().Builds != 2 {
		t.Fatalf("healthy + faulted ran %d builds, want 2", s.CacheStats().Builds)
	}
	// Same faulted query again: cache hit, no third build.
	if rec := getJSON(t, s.Handler(), faulted0, nil); rec.Code != http.StatusOK {
		t.Fatalf("faulted repeat: status %d", rec.Code)
	}
	if s.CacheStats().Builds != 2 {
		t.Fatalf("repeat query rebuilt: %d builds", s.CacheStats().Builds)
	}
}

func TestParamValidation(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	src, dst := sim.CityName(sim.Pairs[0].Src), sim.CityName(sim.Pairs[0].Dst)
	cases := []struct {
		url  string
		want int
	}{
		{q("/v1/path", "dst", dst), http.StatusBadRequest},
		{q("/v1/path", "src", "Atlantis", "dst", dst), http.StatusNotFound},
		{q("/v1/path", "src", src, "dst", dst, "mode", "warp"), http.StatusBadRequest},
		{q("/v1/path", "src", src, "dst", dst, "t", "yesterday"), http.StatusBadRequest},
		{q("/v1/path", "src", src, "dst", dst, "snap", "99"), http.StatusBadRequest},
		{q("/v1/path", "src", src, "dst", dst, "fault", "meteor"), http.StatusBadRequest},
		{q("/v1/path", "src", src, "dst", dst, "fraction", "0.5"), http.StatusBadRequest},
		{q("/v1/path", "src", src, "dst", dst, "fault", "sat", "fraction", "2"), http.StatusBadRequest},
		{q("/v1/path", "src", src, "dst", dst, "snap", "1"), http.StatusOK},
		{q("/v1/path", "src", src, "dst", dst, "t", "2h"), http.StatusOK},
		{q("/v1/reachability"), http.StatusOK},
		{q("/v1/reachability", "src", src), http.StatusOK},
		{q("/v1/reachability", "src", "Atlantis"), http.StatusNotFound},
	}
	for _, c := range cases {
		if rec := getJSON(t, s.Handler(), c.url, nil); rec.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.url, rec.Code, c.want, rec.Body.String())
		}
	}
}

func TestIntrospectionEndpoints(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})

	var snaps struct {
		Times []time.Time    `json:"times"`
		Cache cacheStatsJSON `json:"cache"`
	}
	if rec := getJSON(t, s.Handler(), "/v1/snapshots", &snaps); rec.Code != http.StatusOK {
		t.Fatalf("/v1/snapshots: status %d", rec.Code)
	}
	if len(snaps.Times) != sim.Scale.NumSnapshots {
		t.Fatalf("/v1/snapshots lists %d times, want %d", len(snaps.Times), sim.Scale.NumSnapshots)
	}

	var health struct {
		Status  string `json:"status"`
		Version struct {
			Version   string `json:"version"`
			GoVersion string `json:"goVersion"`
		} `json:"version"`
	}
	if rec := getJSON(t, s.Handler(), "/healthz", &health); rec.Code != http.StatusOK {
		t.Fatalf("/healthz: status %d", rec.Code)
	}
	if health.Status != "ok" || health.Version.Version == "" || health.Version.GoVersion == "" {
		t.Fatalf("/healthz = %+v", health)
	}

	// /metrics must be one valid JSON object holding the server registry.
	var metrics struct {
		Server struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
		} `json:"server"`
		Runtime struct {
			Goroutines int64 `json:"goroutines"`
		} `json:"runtime"`
	}
	if rec := getJSON(t, s.Handler(), "/metrics", &metrics); rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if _, ok := metrics.Server.Counters["requests"]; !ok {
		t.Fatalf("/metrics server block lacks request counter: %v", metrics.Server.Counters)
	}
	if _, ok := metrics.Server.Gauges["cache_hits"]; !ok {
		t.Fatalf("/metrics server block lacks cache gauges: %v", metrics.Server.Gauges)
	}
	if metrics.Runtime.Goroutines <= 0 {
		t.Fatalf("/metrics runtime block reports %d goroutines", metrics.Runtime.Goroutines)
	}
}

// latencyGate parks /v1/latency requests inside the handler so lifecycle
// tests can hold them in-flight deterministically. Entered is signalled once
// per snapshot iteration; Close releases all current and future holds.
type latencyGate struct {
	entered chan struct{}
	release chan struct{}
}

func installGate(t *testing.T) *latencyGate {
	t.Helper()
	g := &latencyGate{entered: make(chan struct{}, 64), release: make(chan struct{})}
	testHookLatencySnapshot = func() {
		g.entered <- struct{}{}
		<-g.release
	}
	t.Cleanup(func() { testHookLatencySnapshot = nil })
	return g
}

func (g *latencyGate) waitEntered(t *testing.T) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the latency hook")
	}
}

// At MaxInFlight=1, a second query must be shed with 429 + Retry-After while
// the first is in flight — and admitted again once capacity frees up.
func TestSheddingAtCapacity(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{MaxInFlight: 1})
	gate := installGate(t)
	url := q("/v1/latency", "src", sim.CityName(sim.Pairs[0].Src), "dst", sim.CityName(sim.Pairs[0].Dst))

	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		done <- rec.Code
	}()
	gate.waitEntered(t)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 response lacks Retry-After")
	}
	if s.shed.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.shed.Value())
	}
	// /healthz must answer even while the query pool is saturated.
	if rec := getJSON(t, s.Handler(), "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/healthz while saturated: status %d", rec.Code)
	}

	close(gate.release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held request: status %d, want 200", code)
	}
	// Capacity is back: the same query is admitted now.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-drain request: status %d, want 200", rec.Code)
	}
}

// A client that disconnects mid-scan must be answered with the 499 path:
// the handler observes the cancelled context and stops between snapshots.
func TestClientCancellationStopsScan(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	gate := installGate(t)
	url := q("/v1/latency", "src", sim.CityName(sim.Pairs[0].Src), "dst", sim.CityName(sim.Pairs[0].Dst))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", url, nil).WithContext(ctx)
		s.Handler().ServeHTTP(rec, req)
	}()
	gate.waitEntered(t)
	cancel() // client goes away while the request is parked in-flight
	close(gate.release)
	<-done
	if got := s.cancelled.Value(); got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}
}

// Graceful drain: cancelling the serve context must let an in-flight request
// finish with 200 while new connections are refused, and Serve returns nil.
func TestGracefulDrain(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{DrainTimeout: 20 * time.Second})
	gate := installGate(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String() + q("/v1/latency",
		"src", sim.CityName(sim.Pairs[0].Src), "dst", sim.CityName(sim.Pairs[0].Dst))
	type result struct {
		code int
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		reqDone <- result{code: resp.StatusCode}
	}()
	gate.waitEntered(t)

	stop() // SIGTERM equivalent: drain begins with one request in flight
	close(gate.release)

	res := <-reqDone
	if res.err != nil || res.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %+v, want 200", res)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after clean drain, want nil", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// The listener is closed: new connections must fail.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting connections after drain")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a Sim must error")
	}
	s := newTestServer(t, Config{})
	if s.cfg.MaxInFlight <= 0 || s.cfg.RequestTimeout <= 0 || s.cfg.DrainTimeout <= 0 || s.cfg.CacheSize <= 0 {
		t.Fatalf("defaults not filled: %+v", s.cfg)
	}
}

// The observability acceptance criterion, end to end: after real queries,
// /metrics must expose the snapshot-cache counters as registry gauges
// (including singleflight shares) and per-stage latency histograms with
// plausible quantiles for at least graph build, search and cache lookups.
func TestMetricsExposeCacheAndStageHistograms(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	url := q("/v1/path", "src", sim.CityName(sim.Pairs[0].Src), "dst", sim.CityName(sim.Pairs[0].Dst))
	for i := 0; i < 3; i++ { // 1 miss+build, then hits
		if rec := getJSON(t, s.Handler(), url, nil); rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", url, rec.Code)
		}
	}

	var metrics struct {
		Server struct {
			Gauges     map[string]int64 `json:"gauges"`
			Histograms map[string]struct {
				Count int64 `json:"count"`
			} `json:"histograms"`
		} `json:"server"`
		Stages map[string]struct {
			Count int64   `json:"count"`
			P50Ms float64 `json:"p50Ms"`
			P99Ms float64 `json:"p99Ms"`
		} `json:"stages"`
	}
	if rec := getJSON(t, s.Handler(), "/metrics", &metrics); rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}

	g := metrics.Server.Gauges
	if g["cache_hits"] < 2 || g["cache_builds"] < 1 {
		t.Errorf("cache gauges: hits=%d builds=%d, want ≥2 hits and ≥1 build", g["cache_hits"], g["cache_builds"])
	}
	if shares, ok := g["cache_singleflight_shares"]; !ok || shares < 0 {
		t.Errorf("cache_singleflight_shares = %d, ok=%v", shares, ok)
	}
	if g["cache_resident"] < 1 {
		t.Errorf("cache_resident = %d, want ≥ 1", g["cache_resident"])
	}
	if h, ok := metrics.Server.Histograms["http_path_ms"]; !ok || h.Count < 3 {
		t.Errorf("http_path_ms histogram = %+v, want count ≥ 3", h)
	}
	// The stage histograms are process-global, so counts include other
	// tests' work — assert presence and sane quantiles, not exact counts.
	for _, stage := range []string{"graph_build", "search", "cache_hit", "cache_miss"} {
		st, ok := metrics.Stages[stage]
		if !ok || st.Count < 1 {
			t.Errorf("stage %q missing from /metrics (got %v)", stage, metrics.Stages)
			continue
		}
		if st.P50Ms < 0 || st.P99Ms < st.P50Ms {
			t.Errorf("stage %q quantiles implausible: %+v", stage, st)
		}
	}
}

// Every request must produce one structured log line carrying the request
// id, route, status, duration and the cache outcome.
func TestRequestLogging(t *testing.T) {
	sim := serverSim(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	s := newTestServer(t, Config{Logger: logger})
	url := q("/v1/path", "src", sim.CityName(sim.Pairs[0].Src), "dst", sim.CityName(sim.Pairs[0].Dst))
	if rec := getJSON(t, s.Handler(), url, nil); rec.Code != http.StatusOK {
		t.Fatalf("%s: status %d", url, rec.Code)
	}

	var line struct {
		Msg    string  `json:"msg"`
		ID     int64   `json:"id"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		DurMs  float64 `json:"durMs"`
		Stages string  `json:"stages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("request log is not one JSON line: %v\n%s", err, buf.String())
	}
	if line.Msg != "request" || line.ID < 1 || line.Method != "GET" ||
		line.Path != "/v1/path" || line.Status != http.StatusOK || line.DurMs < 0 {
		t.Fatalf("request log line incomplete: %+v", line)
	}
	if line.Stages == "" || !strings.Contains(line.Stages, "cache_miss") {
		t.Errorf("request log lacks stage breakdown: %q", line.Stages)
	}

	// Introspection endpoints log at debug — silent at the info level.
	buf.Reset()
	getJSON(t, s.Handler(), "/healthz", nil)
	if buf.Len() != 0 {
		t.Errorf("healthz logged at info level: %s", buf.String())
	}
}

// TestPrimeCacheWarmsWholeDay checks the background primer: every snapshot of
// both modes lands in the cache, byte-identical to a cold build, and
// subsequent requests are pure cache hits.
func TestPrimeCacheWarmsWholeDay(t *testing.T) {
	s := newTestServer(t, Config{PrimeSnapshots: true})
	primed, err := s.primeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(s.times); primed != want {
		t.Fatalf("primed %d snapshots, want %d (both modes × schedule)", primed, want)
	}
	if got := s.CacheStats().Primed; got != int64(primed) {
		t.Fatalf("Primed counter %d, want %d", got, primed)
	}
	for _, mode := range []core.Mode{core.BP, core.Hybrid} {
		for _, ts := range s.times {
			n, _, ok := s.cache.GetCached(s.cacheKey(ts, mode, ""))
			if !ok {
				t.Fatalf("%s@%v not resident after prime", mode, ts)
			}
			want, err := s.cfg.Sim.BuildNetworkAt(context.Background(), ts, mode, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(n.Links) != len(want.Links) {
				t.Fatalf("%s@%v: primed snapshot has %d links, cold build %d",
					mode, ts, len(n.Links), len(want.Links))
			}
		}
	}
	// A served query now finds its snapshot warm: hits move, builds don't.
	base := s.CacheStats()
	rec := getJSON(t, s.Handler(), q("/v1/path", "src", s.cfg.Sim.CityName(0), "dst", s.cfg.Sim.CityName(1)), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("path after prime: %d\n%s", rec.Code, rec.Body.String())
	}
	st := s.CacheStats()
	if st.Builds != base.Builds || st.Hits <= base.Hits {
		t.Fatalf("query after prime built (%d→%d builds, %d→%d hits), want pure hit",
			base.Builds, st.Builds, base.Hits, st.Hits)
	}
}

// TestPrimeCancelled checks a cancelled prime stops early and reports how far
// it got instead of hanging the serve goroutine.
func TestPrimeCancelled(t *testing.T) {
	s := newTestServer(t, Config{PrimeSnapshots: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	primed, err := s.primeAll(ctx)
	if err != context.Canceled || primed != 0 {
		t.Fatalf("cancelled prime: primed=%d err=%v", primed, err)
	}
}

// TestPrimeDefaultCacheSizing checks the default cache grows to hold both
// modes' full day when priming is enabled.
func TestPrimeDefaultCacheSizing(t *testing.T) {
	sim := serverSim(t)
	plain, err := New(Config{Sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	primedSrv, err := New(Config{Sim: sim, PrimeSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	if primedSrv.cfg.CacheSize < 2*sim.Scale.NumSnapshots ||
		primedSrv.cfg.CacheSize < plain.cfg.CacheSize {
		t.Fatalf("primed cache size %d vs plain %d for %d snapshots",
			primedSrv.cfg.CacheSize, plain.cfg.CacheSize, sim.Scale.NumSnapshots)
	}
}
