package server

import (
	"net/http"
	"testing"
	"time"
)

// TestSnapshotsEndpoint pins the /v1/snapshots contract: the schedule (its
// length, ordering, and spacing must match the sim's scale) plus live cache
// statistics that actually move with traffic.
func TestSnapshotsEndpoint(t *testing.T) {
	sim := serverSim(t)
	s := newTestServer(t, Config{})
	var resp struct {
		Scenario     string         `json:"scenario"`
		SnapshotStep string         `json:"snapshotStep"`
		Times        []time.Time    `json:"times"`
		Cache        cacheStatsJSON `json:"cache"`
	}
	if rec := getJSON(t, s.Handler(), "/v1/snapshots", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/v1/snapshots: status %d", rec.Code)
	}
	if resp.Scenario == "" {
		t.Fatal("empty scenario")
	}
	if resp.SnapshotStep != sim.Scale.SnapshotStep.String() {
		t.Fatalf("snapshotStep %q, want %q", resp.SnapshotStep, sim.Scale.SnapshotStep)
	}
	if len(resp.Times) != sim.Scale.NumSnapshots {
		t.Fatalf("%d times, want %d", len(resp.Times), sim.Scale.NumSnapshots)
	}
	for i := 1; i < len(resp.Times); i++ {
		if step := resp.Times[i].Sub(resp.Times[i-1]); step != sim.Scale.SnapshotStep {
			t.Fatalf("times[%d]-times[%d] = %v, want %v", i, i-1, step, sim.Scale.SnapshotStep)
		}
	}
	if resp.Cache.Builds != 0 || resp.Cache.Resident != 0 {
		t.Fatalf("cold cache reports %d builds, %d resident", resp.Cache.Builds, resp.Cache.Resident)
	}

	// One path query must show up as exactly one build and one resident graph.
	url := q("/v1/path", "src", sim.CityName(0), "dst", sim.CityName(1))
	if rec := getJSON(t, s.Handler(), url, nil); rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d", url, rec.Code)
	}
	if rec := getJSON(t, s.Handler(), "/v1/snapshots", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/v1/snapshots after query: status %d", rec.Code)
	}
	if resp.Cache.Builds != 1 || resp.Cache.Resident != 1 {
		t.Fatalf("after one query: %d builds, %d resident (want 1, 1)", resp.Cache.Builds, resp.Cache.Resident)
	}
}

func healthStatus(t *testing.T, s *Server) string {
	t.Helper()
	var health struct {
		Status string `json:"status"`
	}
	if rec := getJSON(t, s.Handler(), "/healthz", &health); rec.Code != http.StatusOK {
		t.Fatalf("/healthz: status %d", rec.Code)
	}
	return health.Status
}

// TestHealthzDegradedWindow pins the one-minute recency window: a fallback
// serve flips /healthz to "degraded" for degradedWindow, after which the
// status recovers to "ok" on its own (white-box: the recency mark is a
// timestamp, so the test moves it rather than sleeping a minute).
func TestHealthzDegradedWindow(t *testing.T) {
	s := newTestServer(t, Config{})
	if got := healthStatus(t, s); got != "ok" {
		t.Fatalf("fresh server status %q, want ok", got)
	}

	// A fallback serve just happened: inside the window.
	s.lastDegraded.Store(time.Now().UnixNano())
	if got := healthStatus(t, s); got != "degraded" {
		t.Fatalf("status %q just after a degraded serve, want degraded", got)
	}

	// Still inside the window near its edge.
	s.lastDegraded.Store(time.Now().Add(-degradedWindow / 2).UnixNano())
	if got := healthStatus(t, s); got != "degraded" {
		t.Fatalf("status %q halfway through the window, want degraded", got)
	}

	// Past the window: the incident has aged out.
	s.lastDegraded.Store(time.Now().Add(-degradedWindow - time.Second).UnixNano())
	if got := healthStatus(t, s); got != "ok" {
		t.Fatalf("status %q after the window elapsed, want ok", got)
	}
}
