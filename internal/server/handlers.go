package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"leosim/internal/core"
	"leosim/internal/fault"
	"leosim/internal/graph"
	"leosim/internal/oracle"
	"leosim/internal/snapcache"
	"leosim/internal/telemetry"
	"leosim/internal/version"
)

// statusClientClosedRequest is nginx's convention for "the client went away
// before we could answer" — there is no standard HTTP code for it.
const statusClientClosedRequest = 499

// testHookLatencySnapshot, when non-nil, runs between snapshots of a
// /v1/latency scan. Lifecycle tests park requests here to hold them
// in-flight deterministically (drain, shedding, cancellation).
var testHookLatencySnapshot func()

// ---- cache key plumbing -------------------------------------------------

// cacheKey assembles the snapshot-cache key. Scenario namespaces by
// constellation/scale/mode so one cache could in principle front several
// sims; Mask is the fault fingerprint ("" = healthy).
func (s *Server) cacheKey(t time.Time, mode core.Mode, mask string) snapcache.Key {
	return snapcache.Key{
		Scenario: s.scenario + "/" + mode.String(),
		Time:     t,
		Mask:     mask,
	}
}

// snapMeta describes how a snapshot was obtained, for the response envelope.
type snapMeta struct {
	// Stale: the snapshot is past its TTL and served under
	// stale-while-revalidate (a background rebuild is in motion).
	Stale bool
	// Degraded names the fallback that saved the response from a 5xx:
	// "" (none), "stale-cache" (build failed, resident copy served), or
	// "bp-fallback" (hybrid build failed, resident BP-only snapshot served —
	// conservative routing: BP paths exist in the hybrid graph too).
	Degraded string
}

// snapshot fetches the network for one snapshot, degrading instead of
// failing wherever an older answer can absorb the fault: a build error is
// downgraded to a stale resident copy of the same key, and a hybrid-mode
// build error to a resident BP-only snapshot. Context expiry is the
// client's own doing and never degrades.
func (s *Server) snapshot(ctx context.Context, t time.Time, mode core.Mode, mask string) (*graph.Network, snapMeta, error) {
	key := s.cacheKey(t, mode, mask)
	n, info, err := s.cache.GetEx(ctx, key)
	if err == nil {
		if info.Stale {
			s.staleResponses.Add(1)
			telemetry.EmitEvent(ctx, telemetry.CatServe, telemetry.SevInfo,
				"stale serve: expired snapshot answered, rebuild in background",
				telemetry.Str("key", key.String()),
				telemetry.Int64("ageMs", info.Age.Milliseconds()))
		}
		return n, snapMeta{Stale: info.Stale}, nil
	}
	if ctx.Err() != nil {
		return nil, snapMeta{}, err
	}
	if n, info, ok := s.cache.GetCached(key); ok {
		s.noteDegraded(ctx, key.String(), "stale-cache", err)
		return n, snapMeta{Stale: info.Stale, Degraded: "stale-cache"}, nil
	}
	if mode == core.Hybrid {
		if n, info, ok := s.cache.GetCached(s.cacheKey(t, core.BP, mask)); ok {
			s.noteDegraded(ctx, key.String(), "bp-fallback", err)
			return n, snapMeta{Stale: info.Stale, Degraded: "bp-fallback"}, nil
		}
	}
	return nil, snapMeta{}, err
}

// noteDegraded accounts one fallback serve: the counter, the /healthz
// recency mark, and a flight-recorder event whose trace ID joins the
// degraded response to the build failure it absorbed.
func (s *Server) noteDegraded(ctx context.Context, key, fallback string, cause error) {
	s.degraded.Add(1)
	s.lastDegraded.Store(time.Now().UnixNano())
	telemetry.EmitEvent(ctx, telemetry.CatServe, telemetry.SevWarn,
		"degraded serve: fallback snapshot absorbed a build failure",
		telemetry.Str("key", key),
		telemetry.Str("fallback", fallback),
		telemetry.Str("cause", cause.Error()))
}

// buildSnapshot is the cache's BuildFunc: it re-derives mode and fault mask
// from the key and runs a fresh side-effect-free build. Keeping the key →
// build mapping pure is what makes cached snapshots trustworthy: two
// requests that agree on the key are guaranteed the same network.
func (s *Server) buildSnapshot(ctx context.Context, key snapcache.Key) (*graph.Network, error) {
	mode := core.BP
	if strings.HasSuffix(key.Scenario, "/"+core.Hybrid.String()) {
		mode = core.Hybrid
	}
	outages, err := s.realizeMask(key.Mask)
	if err != nil {
		return nil, err
	}
	return s.cfg.Sim.BuildNetworkAt(ctx, key.Time, mode, outages)
}

// realizeMask turns a fault fingerprint "scenario:fraction:seed" back into
// concrete outages. Realization is deterministic (seeded), so the
// fingerprint alone is a complete description of the failure set.
func (s *Server) realizeMask(mask string) (*fault.Outages, error) {
	if mask == "" {
		return nil, nil
	}
	parts := strings.Split(mask, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("server: malformed fault mask %q", mask)
	}
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, fmt.Errorf("server: fault mask fraction: %w", err)
	}
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("server: fault mask seed: %w", err)
	}
	plan, err := fault.ForScenario(fault.Scenario(parts[0]), frac, seed)
	if err != nil {
		return nil, err
	}
	return plan.Realize(s.cfg.Sim.Const, len(s.cfg.Sim.Seg.Terminals))
}

// ---- request parsing ----------------------------------------------------

type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

type notFoundError struct{ msg string }

func (e *notFoundError) Error() string { return e.msg }

// parseMode reads ?mode=bp|hybrid (default bp).
func parseMode(r *http.Request) (core.Mode, error) {
	switch r.URL.Query().Get("mode") {
	case "", core.BP.String():
		return core.BP, nil
	case core.Hybrid.String():
		return core.Hybrid, nil
	default:
		return 0, badRequest("mode must be %q or %q", core.BP, core.Hybrid)
	}
}

// parseTime resolves the requested snapshot instant: ?snap=<index> picks
// from the sim's schedule, ?t= accepts RFC3339 or a duration offset from
// the simulation epoch ("90m"); default is the first snapshot.
func (s *Server) parseTime(r *http.Request) (time.Time, error) {
	q := r.URL.Query()
	if sp := q.Get("snap"); sp != "" {
		i, err := strconv.Atoi(sp)
		if err != nil {
			return time.Time{}, badRequest("snap must be an index in [0,%d)", len(s.times))
		}
		return s.timeAt(&i, q.Get("t"))
	}
	return s.timeAt(nil, q.Get("t"))
}

// timeAt resolves a snapshot spec shared by the GET query parameters and the
// POST /v1/paths body: a schedule index, an RFC3339 instant or duration
// offset, or (neither) the first snapshot.
func (s *Server) timeAt(snap *int, ts string) (time.Time, error) {
	if snap != nil {
		if *snap < 0 || *snap >= len(s.times) {
			return time.Time{}, badRequest("snap must be an index in [0,%d)", len(s.times))
		}
		return s.times[*snap], nil
	}
	if ts == "" {
		return s.times[0], nil
	}
	if t, err := time.Parse(time.RFC3339, ts); err == nil {
		return t.UTC(), nil
	}
	if d, err := time.ParseDuration(ts); err == nil && d >= 0 {
		return s.times[0].Add(d), nil
	}
	return time.Time{}, badRequest("t must be RFC3339 or a non-negative duration offset like 90m")
}

// parseMask reads the fault triple ?fault=sat|plane|site|isl|gslcap,
// ?fraction=, ?fault-seed= into a canonical fingerprint ("" = no fault).
func parseMask(r *http.Request) (string, error) {
	q := r.URL.Query()
	sc := q.Get("fault")
	if sc == "" {
		if q.Get("fraction") != "" || q.Get("fault-seed") != "" {
			return "", badRequest("fraction/fault-seed require fault=<scenario>")
		}
		return "", nil
	}
	if !fault.Scenario(sc).Valid() {
		return "", badRequest("fault must be one of %v", fault.Scenarios())
	}
	frac := 0.1
	if fs := q.Get("fraction"); fs != "" {
		f, err := strconv.ParseFloat(fs, 64)
		if err != nil || f < 0 || f > 1 {
			return "", badRequest("fraction must be a number in [0,1]")
		}
		frac = f
	}
	seed := int64(1)
	if ss := q.Get("fault-seed"); ss != "" {
		n, err := strconv.ParseInt(ss, 10, 64)
		if err != nil {
			return "", badRequest("fault-seed must be an integer")
		}
		seed = n
	}
	return fmt.Sprintf("%s:%g:%d", sc, frac, seed), nil
}

// parseCity resolves a required city-name parameter to its index.
func (s *Server) parseCity(r *http.Request, param string) (int, error) {
	name := r.URL.Query().Get(param)
	if name == "" {
		return 0, badRequest("%s=<city name> is required", param)
	}
	idx, ok := s.cfg.Sim.FindCity(name)
	if !ok {
		return 0, &notFoundError{msg: fmt.Sprintf("unknown city %q", name)}
	}
	return idx, nil
}

// ---- responses ----------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone — nothing left to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeErrorTraced is writeError plus the request's trace ID, so an error
// response joins to the flight-recorder events that explain it.
func writeErrorTraced(w http.ResponseWriter, status int, msg string, trace telemetry.TraceID) {
	if trace == 0 {
		writeError(w, status, msg)
		return
	}
	writeJSON(w, status, map[string]string{"error": msg, "traceId": trace.String()})
}

// fail maps an error to its status code and counts it. The ladder mirrors
// the failure modes the admission pipeline produces: client-side parse
// errors, unknown cities, an open build breaker (503 + Retry-After — the
// fault is transient by construction), a cancelled client, an expired
// deadline, and — only then — a genuine server fault. Every error body
// carries the request's trace ID; server-fault classes also land in the
// flight recorder under that ID.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	ctx := r.Context()
	trace := telemetry.TraceIDFrom(ctx)
	var br *badRequestError
	var nf *notFoundError
	var boe *snapcache.BreakerOpenError
	switch {
	case errors.As(err, &br):
		s.badRequests.Add(1)
		writeErrorTraced(w, http.StatusBadRequest, br.msg, trace)
	case errors.As(err, &nf):
		s.notFound.Add(1)
		writeErrorTraced(w, http.StatusNotFound, nf.msg, trace)
	case errors.As(err, &boe):
		s.breakerTrips.Add(1)
		telemetry.EmitEvent(ctx, telemetry.CatServe, telemetry.SevWarn,
			"breaker rejected request: builds suspended",
			telemetry.Int64("retryAfterMs", boe.RetryAfter.Milliseconds()))
		w.Header().Set("Retry-After", retryAfterHeader(s.retryAfter(boe.RetryAfter)))
		writeErrorTraced(w, http.StatusServiceUnavailable, "snapshot builds suspended: "+err.Error(), trace)
	case errors.Is(err, context.Canceled):
		s.cancelled.Add(1)
		writeErrorTraced(w, statusClientClosedRequest, "request cancelled by client", trace)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		telemetry.EmitEvent(ctx, telemetry.CatServe, telemetry.SevError,
			"request deadline exceeded", telemetry.Str("err", err.Error()))
		writeErrorTraced(w, http.StatusGatewayTimeout, "request deadline exceeded", trace)
	default:
		s.internalErrors.Add(1)
		telemetry.EmitEvent(ctx, telemetry.CatServe, telemetry.SevError,
			"internal error", telemetry.Str("err", err.Error()))
		writeErrorTraced(w, http.StatusInternalServerError, err.Error(), trace)
	}
}

// ---- endpoints ----------------------------------------------------------

type pathResponse struct {
	Time     time.Time       `json:"time"`
	Mode     string          `json:"mode"`
	Src      string          `json:"src"`
	Dst      string          `json:"dst"`
	Fault    string          `json:"fault,omitempty"`
	Stale    bool            `json:"stale,omitempty"`
	Degraded string          `json:"degraded,omitempty"`
	Path     *core.PathQuery `json:"path"`
}

// handlePath answers GET /v1/path?src=&dst=[&snap=|&t=][&mode=][&fault=...]:
// the route, RTT and hop breakdown for one city pair at one snapshot.
func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	src, err := s.parseCity(r, "src")
	if err != nil {
		s.fail(w, r, err)
		return
	}
	dst, err := s.parseCity(r, "dst")
	if err != nil {
		s.fail(w, r, err)
		return
	}
	mode, err := parseMode(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	t, err := s.parseTime(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	mask, err := parseMask(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	q, meta, err := s.pathAt(ctx, t, mode, mask, src, dst)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, pathResponse{
		Time: t, Mode: mode.String(), Fault: mask,
		Stale: meta.Stale, Degraded: meta.Degraded,
		Src: s.cfg.Sim.CityName(src), Dst: s.cfg.Sim.CityName(dst),
		Path: q,
	})
}

// pathAt fetches (or builds, once, possibly degraded) the snapshot and
// routes over it. When the snapshot already carries an attached distance
// oracle (deposited by the primer or an earlier batch), the answer comes
// from the oracle's precomputed tree — identical to the kernel's, proven by
// the oracle differential battery — at a fraction of a full search. Single
// queries never *build* an oracle; only batches and the primer pay that.
func (s *Server) pathAt(ctx context.Context, t time.Time, mode core.Mode, mask string, src, dst int) (*core.PathQuery, snapMeta, error) {
	n, meta, err := s.snapshot(ctx, t, mode, mask)
	if err != nil {
		return nil, meta, err
	}
	if aux, net, ok := s.cache.Attachment(s.cacheKey(t, mode, mask)); ok && net == n {
		if o, isOracle := aux.(*oracle.Oracle); isOracle && o.Valid(n) {
			s.oracleHits.Add(1)
			p, reachable := o.Query(src, dst)
			if !reachable {
				return &core.PathQuery{}, meta, nil
			}
			return core.PathQueryOf(n, p), meta, nil
		}
	}
	q, err := s.cfg.Sim.PathAt(ctx, n, src, dst)
	return q, meta, err
}

type latencySample struct {
	Time      time.Time `json:"time"`
	Reachable bool      `json:"reachable"`
	RTTMs     float64   `json:"rttMs,omitempty"`
}

type latencyResponse struct {
	Mode  string `json:"mode"`
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	Fault string `json:"fault,omitempty"`
	// Stale: at least one sample was served from an expired snapshot under
	// stale-while-revalidate. Degraded: at least one sample needed a
	// fallback snapshot; the value is the first fallback used.
	Stale    bool            `json:"stale,omitempty"`
	Degraded string          `json:"degraded,omitempty"`
	Samples  []latencySample `json:"samples"`
	Summary  struct {
		MinMs     float64 `json:"minMs"`
		MaxMs     float64 `json:"maxMs"`
		MeanMs    float64 `json:"meanMs"`
		RangeMs   float64 `json:"rangeMs"`
		Reachable int     `json:"reachableSnapshots"`
		Total     int     `json:"totalSnapshots"`
	} `json:"summary"`
}

// handleLatency answers GET /v1/latency?src=&dst=[&mode=][&fault=...]: the
// pair's RTT across the whole simulated day (the per-pair view behind the
// paper's §4 variability figures). The request context is checked between
// snapshots, so a cancelled scan stops within one snapshot's work.
func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	src, err := s.parseCity(r, "src")
	if err != nil {
		s.fail(w, r, err)
		return
	}
	dst, err := s.parseCity(r, "dst")
	if err != nil {
		s.fail(w, r, err)
		return
	}
	mode, err := parseMode(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	mask, err := parseMask(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}

	resp := latencyResponse{
		Mode: mode.String(), Fault: mask,
		Src: s.cfg.Sim.CityName(src), Dst: s.cfg.Sim.CityName(dst),
		Samples: make([]latencySample, 0, len(s.times)),
	}
	sum := 0.0
	resp.Summary.MinMs = -1
	for _, t := range s.times {
		if testHookLatencySnapshot != nil {
			testHookLatencySnapshot()
		}
		if err := ctx.Err(); err != nil {
			s.fail(w, r, err)
			return
		}
		q, meta, err := s.pathAt(ctx, t, mode, mask, src, dst)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		resp.Stale = resp.Stale || meta.Stale
		if resp.Degraded == "" {
			resp.Degraded = meta.Degraded
		}
		sample := latencySample{Time: t, Reachable: q.Reachable}
		if q.Reachable {
			sample.RTTMs = q.RTTMs
			sum += q.RTTMs
			resp.Summary.Reachable++
			if resp.Summary.MinMs < 0 || q.RTTMs < resp.Summary.MinMs {
				resp.Summary.MinMs = q.RTTMs
			}
			if q.RTTMs > resp.Summary.MaxMs {
				resp.Summary.MaxMs = q.RTTMs
			}
		}
		resp.Samples = append(resp.Samples, sample)
	}
	resp.Summary.Total = len(s.times)
	if resp.Summary.Reachable > 0 {
		resp.Summary.MeanMs = sum / float64(resp.Summary.Reachable)
		resp.Summary.RangeMs = resp.Summary.MaxMs - resp.Summary.MinMs
	} else {
		resp.Summary.MinMs = 0
	}
	writeJSON(w, http.StatusOK, resp)
}

type reachabilityResponse struct {
	Time         time.Time               `json:"time"`
	Mode         string                  `json:"mode"`
	Src          string                  `json:"src,omitempty"`
	Fault        string                  `json:"fault,omitempty"`
	Stale        bool                    `json:"stale,omitempty"`
	Degraded     string                  `json:"degraded,omitempty"`
	Reachability *core.ReachabilityQuery `json:"reachability"`
}

// handleReachability answers GET /v1/reachability[?src=][&snap=|&t=][&mode=]
// [&fault=...]: component structure and stranded satellites at one
// snapshot, optionally from one source city's perspective.
func (s *Server) handleReachability(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	mode, err := parseMode(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	t, err := s.parseTime(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	mask, err := parseMask(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	src, srcName := -1, ""
	if r.URL.Query().Get("src") != "" {
		if src, err = s.parseCity(r, "src"); err != nil {
			s.fail(w, r, err)
			return
		}
		srcName = s.cfg.Sim.CityName(src)
	}
	n, meta, err := s.snapshot(ctx, t, mode, mask)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	q, err := s.cfg.Sim.ReachabilityAt(ctx, n, src)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, reachabilityResponse{
		Time: t, Mode: mode.String(), Src: srcName, Fault: mask,
		Stale: meta.Stale, Degraded: meta.Degraded, Reachability: q,
	})
}

type cacheStatsJSON struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Builds      int64   `json:"builds"`
	Evictions   int64   `json:"evictions"`
	Expirations int64   `json:"expirations"`
	Errors      int64   `json:"errors"`
	StaleServes int64   `json:"staleServes"`
	Timeouts    int64   `json:"buildTimeouts"`
	LateBuilds  int64   `json:"lateBuilds"`
	FastFails   int64   `json:"fastFails"`
	HitRate     float64 `json:"hitRate"`
	Resident    int     `json:"resident"`
}

// breakerJSON is the live circuit-breaker position in /metrics and
// /v1/snapshots: the state name, the consecutive-failure streak feeding the
// trip threshold, and the seconds until a retry is worth attempting.
type breakerJSON struct {
	State         string  `json:"state"`
	FailureStreak int64   `json:"failureStreak"`
	RetryAfterSec float64 `json:"retryAfterSec,omitempty"`
	Opens         int64   `json:"opens"`
}

func (s *Server) cacheStatsJSON() cacheStatsJSON {
	st := s.cache.Stats()
	return cacheStatsJSON{
		Hits: st.Hits, Misses: st.Misses, Builds: st.Builds,
		Evictions: st.Evictions, Expirations: st.Expirations, Errors: st.Errors,
		StaleServes: st.StaleServes, Timeouts: st.Timeouts,
		LateBuilds: st.LateBuilds, FastFails: st.FastFails,
		HitRate: st.HitRate(), Resident: s.cache.Len(),
	}
}

func (s *Server) breakerJSON() breakerJSON {
	br := s.cache.Breaker()
	return breakerJSON{
		State:         br.State.String(),
		FailureStreak: br.FailureStreak,
		RetryAfterSec: br.RetryAfter.Seconds(),
		Opens:         s.cache.Stats().BreakerOpens,
	}
}

// handleSnapshots answers GET /v1/snapshots: the queryable snapshot
// schedule plus live snapshot-cache statistics.
func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Scenario     string         `json:"scenario"`
		SnapshotStep string         `json:"snapshotStep"`
		Times        []time.Time    `json:"times"`
		Cache        cacheStatsJSON `json:"cache"`
	}{
		Scenario:     s.scenario,
		SnapshotStep: s.cfg.Sim.Scale.SnapshotStep.String(),
		Times:        s.times,
		Cache:        s.cacheStatsJSON(),
	})
}

// errorBudgetJSON summarizes how much failure the serve path has absorbed or
// surfaced: total requests, hard failures (5xx: internal errors, deadline
// timeouts, breaker rejects), sheds, degraded/stale serves, and the
// resulting availability ratio.
type errorBudgetJSON struct {
	Requests     int64   `json:"requests"`
	Errors5xx    int64   `json:"errors5xx"`
	Shed         int64   `json:"shed"`
	Degraded     int64   `json:"degraded"`
	Stale        int64   `json:"stale"`
	Availability float64 `json:"availability"`
}

func (s *Server) errorBudgetJSON() errorBudgetJSON {
	eb := errorBudgetJSON{
		Requests:  s.requests.Value(),
		Errors5xx: s.internalErrors.Value() + s.timeouts.Value() + s.breakerTrips.Value(),
		Shed:      s.shed.Value(),
		Degraded:  s.degraded.Value(),
		Stale:     s.staleResponses.Value(),
	}
	eb.Availability = 1
	if eb.Requests > 0 {
		eb.Availability = 1 - float64(eb.Errors5xx)/float64(eb.Requests)
	}
	return eb
}

// degradedWindow is how long after a fallback serve /healthz keeps reporting
// "degraded": long enough for a probe on a typical scrape interval to see it.
const degradedWindow = time.Minute

// handleHealthz answers GET /healthz: liveness plus the build identity, so a
// fleet can be audited for what it is actually running, plus the self-healing
// posture — breaker state, cache generation, and the error-budget summary.
// Status is "degraded" (still 200: the process is healthy, the answers are
// second-best) while the breaker is not closed or a fallback serve happened
// within the last minute.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	br := s.breakerJSON()
	status := "ok"
	if last := s.lastDegraded.Load(); br.State != snapcache.BreakerClosed.String() ||
		(last != 0 && time.Since(time.Unix(0, last)) < degradedWindow) {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, struct {
		Status          string          `json:"status"`
		Version         version.Info    `json:"version"`
		Sim             string          `json:"sim"`
		UptimeSec       float64         `json:"uptimeSec"`
		Breaker         breakerJSON     `json:"breaker"`
		CacheGeneration uint64          `json:"cacheGeneration"`
		ErrorBudget     errorBudgetJSON `json:"errorBudget"`
	}{
		Status:          status,
		Version:         version.Get(),
		Sim:             s.cfg.Sim.String(),
		UptimeSec:       time.Since(s.started).Seconds(),
		Breaker:         br,
		CacheGeneration: s.cache.Generation(),
		ErrorBudget:     s.errorBudgetJSON(),
	})
}

// metricsResponse is the GET /metrics payload: this server's registry
// (request counters, cache gauges, per-route latency histograms), the
// snapshot-cache statistics, the process-wide pipeline-stage histograms
// (graph build, search, flow allocation, cache lookup — p50/p90/p99 each),
// and a runtime/metrics sample of the Go runtime.
type metricsResponse struct {
	Server  telemetry.RegistrySnapshot             `json:"server"`
	Cache   cacheStatsJSON                         `json:"cache"`
	Breaker breakerJSON                            `json:"breaker"`
	Stages  map[string]telemetry.HistogramSnapshot `json:"stages,omitempty"`
	Runtime telemetry.RuntimeStats                 `json:"runtime"`
}

// handleMetrics answers GET /metrics as one JSON object, or — with
// ?format=prometheus — in Prometheus text exposition format (this server's
// registry plus the process-global pipeline-stage histograms, all under the
// "leosim_" prefix). Server counters live in a per-server registry so
// several Server instances never share a namespace; the stage histograms
// come from the process-global telemetry registry New enabled.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w, "leosim_"); err != nil {
			return // client gone mid-scrape
		}
		if reg := telemetry.Active(); reg != nil {
			// The server registry records no stage spans of its own (those go
			// to the process-global registry), so the two exports never emit
			// the same family twice.
			reg.WritePrometheusStages(w, "leosim_") //nolint:errcheck
		}
		return
	}
	resp := metricsResponse{
		Server:  s.reg.Snapshot(),
		Cache:   s.cacheStatsJSON(),
		Breaker: s.breakerJSON(),
		Runtime: telemetry.SampleRuntime(),
	}
	if reg := telemetry.Active(); reg != nil {
		resp.Stages = reg.Snapshot().Stages
	}
	writeJSON(w, http.StatusOK, resp)
}
