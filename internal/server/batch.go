package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"leosim/internal/core"
	"leosim/internal/fault"
	"leosim/internal/graph"
	"leosim/internal/oracle"
	"leosim/internal/snapcache"
	"leosim/internal/telemetry"
)

// MaxBatchPairs bounds one POST /v1/paths request. Above it the request is
// rejected with 400 — callers split into multiple batches rather than the
// server queueing unbounded work behind one connection.
const MaxBatchPairs = 10000

// maxBatchBodyBytes bounds the request body read: ~10k pairs of long city
// names fit comfortably; anything bigger is rejected before JSON decoding
// touches it.
const maxBatchBodyBytes = 4 << 20

// batchPair is one requested city pair.
type batchPair struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
}

// batchPathsRequest is the POST /v1/paths body. Snapshot selection mirrors
// the GET endpoints: "snap" indexes the schedule, "t" takes RFC3339 or a
// duration offset, neither means the first snapshot; the fault triple
// matches ?fault=&fraction=&fault-seed=.
type batchPathsRequest struct {
	Mode          string      `json:"mode,omitempty"`
	Snap          *int        `json:"snap,omitempty"`
	T             string      `json:"t,omitempty"`
	Fault         string      `json:"fault,omitempty"`
	Fraction      *float64    `json:"fraction,omitempty"`
	FaultSeed     *int64      `json:"faultSeed,omitempty"`
	IncludeRoutes bool        `json:"includeRoutes,omitempty"`
	Pairs         []batchPair `json:"pairs"`
}

// decodeBatchPaths parses and validates one batch body. It is a pure
// function of its input — no sim, no clock, no server state — which is what
// makes it fuzzable in isolation (FuzzBatchPathsDecode): any input must
// produce either a request or a *badRequestError, never a panic. City-name
// resolution happens later in the handler, where the sim is at hand.
func decodeBatchPaths(data []byte, maxPairs int) (*batchPathsRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req batchPathsRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after JSON body")
	}
	switch req.Mode {
	case "", core.BP.String(), core.Hybrid.String():
	default:
		return nil, badRequest("mode must be %q or %q", core.BP, core.Hybrid)
	}
	if req.Snap != nil && req.T != "" {
		return nil, badRequest("snap and t are mutually exclusive")
	}
	if len(req.Pairs) == 0 {
		return nil, badRequest("pairs must be a non-empty array")
	}
	if len(req.Pairs) > maxPairs {
		return nil, badRequest("too many pairs: %d exceeds the per-request limit %d", len(req.Pairs), maxPairs)
	}
	seen := make(map[batchPair]struct{}, len(req.Pairs))
	for i, p := range req.Pairs {
		if p.Src == "" || p.Dst == "" {
			return nil, badRequest("pairs[%d]: src and dst are required", i)
		}
		if p.Src == p.Dst {
			return nil, badRequest("pairs[%d]: src equals dst (%q)", i, p.Src)
		}
		if _, dup := seen[p]; dup {
			return nil, badRequest("pairs[%d]: duplicate pair %q → %q", i, p.Src, p.Dst)
		}
		seen[p] = struct{}{}
	}
	if req.Fault == "" {
		if req.Fraction != nil || req.FaultSeed != nil {
			return nil, badRequest("fraction/faultSeed require fault=<scenario>")
		}
	} else if !fault.Scenario(req.Fault).Valid() {
		return nil, badRequest("fault must be one of %v", fault.Scenarios())
	}
	if req.Fraction != nil && (*req.Fraction < 0 || *req.Fraction > 1) {
		return nil, badRequest("fraction must be a number in [0,1]")
	}
	return &req, nil
}

// mode resolves the validated mode string.
func (r *batchPathsRequest) mode() core.Mode {
	if r.Mode == core.Hybrid.String() {
		return core.Hybrid
	}
	return core.BP
}

// mask renders the validated fault triple as the canonical cache-key
// fingerprint, with the same defaults as the GET parameter form.
func (r *batchPathsRequest) maskFingerprint() string {
	if r.Fault == "" {
		return ""
	}
	frac := 0.1
	if r.Fraction != nil {
		frac = *r.Fraction
	}
	seed := int64(1)
	if r.FaultSeed != nil {
		seed = *r.FaultSeed
	}
	return fmt.Sprintf("%s:%g:%d", r.Fault, frac, seed)
}

// batchPathEntry is one pair's answer, aligned by index with the request's
// pairs array.
type batchPathEntry struct {
	Src       string   `json:"src"`
	Dst       string   `json:"dst"`
	Reachable bool     `json:"reachable"`
	RTTMs     float64  `json:"rttMs,omitempty"`
	OneWayMs  float64  `json:"oneWayMs,omitempty"`
	Hops      int      `json:"hops,omitempty"`
	Route     []string `json:"route,omitempty"`
}

// oracleMetaJSON reports the oracle that answered a batch: whether this
// request found it already attached to the snapshot, and the one-time build
// cost that was paid (by this request or an earlier one / the primer) to
// make every query after it a few array reads.
type oracleMetaJSON struct {
	Cached    bool    `json:"cached"`
	BuildMs   float64 `json:"buildMs"`
	Sources   int     `json:"sources"`
	Landmarks int     `json:"landmarks"`
}

type batchPathsResponse struct {
	Time     time.Time        `json:"time"`
	Mode     string           `json:"mode"`
	Fault    string           `json:"fault,omitempty"`
	Stale    bool             `json:"stale,omitempty"`
	Degraded string           `json:"degraded,omitempty"`
	Count    int              `json:"count"`
	Oracle   oracleMetaJSON   `json:"oracle"`
	Results  []batchPathEntry `json:"results"`
}

// batchCancelPollInterval spaces context polls in the answer loop: a
// disconnected client stops costing CPU within a few hundred oracle reads.
const batchCancelPollInterval = 256

// handleBatchPaths answers POST /v1/paths: up to MaxBatchPairs city pairs
// against one (snapshot, mode, fault-mask), served from the snapshot's
// precomputed distance oracle. The first batch against a cold snapshot pays
// the one-time oracle build (singleflight — concurrent batches share it);
// every batch after that answers each pair in microseconds.
func (s *Server) handleBatchPaths(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBodyBytes+1))
	if err != nil {
		s.fail(w, r, badRequest("reading request body: %v", err))
		return
	}
	if len(body) > maxBatchBodyBytes {
		s.fail(w, r, badRequest("request body exceeds %d bytes", maxBatchBodyBytes))
		return
	}
	req, err := decodeBatchPaths(body, MaxBatchPairs)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	t, err := s.timeAt(req.Snap, req.T)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	type idxPair struct{ src, dst int }
	pairs := make([]idxPair, len(req.Pairs))
	for i, p := range req.Pairs {
		si, ok := s.cfg.Sim.FindCity(p.Src)
		if !ok {
			s.fail(w, r, &notFoundError{msg: fmt.Sprintf("pairs[%d]: unknown city %q", i, p.Src)})
			return
		}
		di, ok := s.cfg.Sim.FindCity(p.Dst)
		if !ok {
			s.fail(w, r, &notFoundError{msg: fmt.Sprintf("pairs[%d]: unknown city %q", i, p.Dst)})
			return
		}
		pairs[i] = idxPair{src: si, dst: di}
	}
	mode, mask := req.mode(), req.maskFingerprint()
	n, meta, err := s.snapshot(ctx, t, mode, mask)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	orc, cached, err := s.oracleFor(ctx, s.cacheKey(t, mode, mask), n)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	ost := orc.Stats()
	resp := batchPathsResponse{
		Time: t, Mode: mode.String(), Fault: mask,
		Stale: meta.Stale, Degraded: meta.Degraded,
		Count: len(pairs),
		Oracle: oracleMetaJSON{
			Cached:    cached,
			BuildMs:   float64(ost.BuildDuration) / float64(time.Millisecond),
			Sources:   ost.Sources,
			Landmarks: ost.Landmarks,
		},
		Results: make([]batchPathEntry, len(pairs)),
	}
	for i, p := range pairs {
		if i%batchCancelPollInterval == 0 && ctx.Err() != nil {
			s.fail(w, r, ctx.Err())
			return
		}
		entry := &resp.Results[i]
		entry.Src, entry.Dst = req.Pairs[i].Src, req.Pairs[i].Dst
		path, ok := orc.Query(p.src, p.dst)
		if !ok {
			continue
		}
		q := core.PathQueryOf(n, path)
		entry.Reachable = true
		entry.RTTMs = q.RTTMs
		entry.OneWayMs = q.OneWayMs
		entry.Hops = q.Hops
		if req.IncludeRoutes {
			entry.Route = q.Route
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// oracleCall is one in-flight singleflight oracle build.
type oracleCall struct {
	done chan struct{}
	o    *oracle.Oracle
	err  error
}

// oracleFor returns the distance oracle for key's snapshot n, building it at
// most once per key at a time: concurrent batches against the same cold
// snapshot elect one builder and share its result. A successful build is
// attached to the snapshot-cache entry (snapcache.Attach), so the oracle
// rides the snapshot's own LRU/TTL/generation lifecycle; the attach is a
// no-op if the entry was evicted or rebuilt meanwhile — the oracle still
// answers this request, it just isn't pinned.
//
// cached reports whether the oracle was found ready-made (attached by an
// earlier request or the background primer).
func (s *Server) oracleFor(ctx context.Context, key snapcache.Key, n *graph.Network) (o *oracle.Oracle, cached bool, err error) {
	if aux, net, ok := s.cache.Attachment(key); ok && net == n {
		if att, isOracle := aux.(*oracle.Oracle); isOracle && att.Valid(n) {
			s.oracleHits.Add(1)
			return att, true, nil
		}
	}
	s.oracleMu.Lock()
	if cl, inflight := s.oracleInflight[key]; inflight {
		s.oracleMu.Unlock()
		select {
		case <-cl.done:
			if cl.err == nil && !cl.o.Valid(n) {
				// The leader built against a different network instance (a
				// degraded fallback raced a rebuild). Rare: build our own,
				// unshared and unattached — correctness over reuse.
				return s.buildOracle(ctx, key, n, false)
			}
			return cl.o, false, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	cl := &oracleCall{done: make(chan struct{})}
	s.oracleInflight[key] = cl
	s.oracleMu.Unlock()
	go func() {
		// Detached from the leader's cancellation, like snapshot builds:
		// followers with live contexts still want the result, and the next
		// batch for this key certainly does.
		cl.o, _, cl.err = s.buildOracle(context.WithoutCancel(ctx), key, n, true)
		s.oracleMu.Lock()
		delete(s.oracleInflight, key)
		s.oracleMu.Unlock()
		close(cl.done)
	}()
	select {
	case <-cl.done:
		return cl.o, false, cl.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// buildOracle runs one oracle build and (when attach is set) pins the result
// to the snapshot-cache entry it was derived from.
func (s *Server) buildOracle(ctx context.Context, key snapcache.Key, n *graph.Network, attach bool) (*oracle.Oracle, bool, error) {
	start := time.Now()
	o, err := oracle.Build(ctx, n, oracle.Options{Landmarks: s.cfg.OracleLandmarks})
	if err != nil {
		telemetry.EmitEvent(ctx, telemetry.CatServe, telemetry.SevError,
			"oracle build failed",
			telemetry.Str("key", key.String()),
			telemetry.Str("err", err.Error()))
		return nil, false, err
	}
	s.oracleBuilds.Add(1)
	if attach {
		s.cache.Attach(key, n, o)
	}
	telemetry.EmitEvent(ctx, telemetry.CatServe, telemetry.SevInfo,
		"oracle built",
		telemetry.Str("key", key.String()),
		telemetry.Int64("durMs", time.Since(start).Milliseconds()),
		telemetry.Int64("sources", int64(o.Sources())))
	return o, false, nil
}
