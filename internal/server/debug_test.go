package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"leosim/internal/fault"
	"leosim/internal/telemetry"
)

func itoa(n uint64) string { return strconv.FormatUint(n, 10) }

// eventsView decodes the /debug/events payload on the client side (the
// telemetry.Event marshaller is one-way).
type eventsView struct {
	LastSeq uint64 `json:"lastSeq"`
	Events  []struct {
		Seq      uint64                 `json:"seq"`
		Category string                 `json:"category"`
		Severity string                 `json:"severity"`
		Trace    string                 `json:"trace"`
		Msg      string                 `json:"msg"`
		Attrs    map[string]interface{} `json:"attrs"`
	} `json:"events"`
}

// Every response carries an X-Trace-Id header, and error bodies echo it as
// traceId — the join key into /debug/events.
func TestResponsesCarryTraceID(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	s := newTestServer(t, Config{})

	rec := get(s, q("/v1/path", "src", "nowhere", "dst", "nowhere"))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	header := rec.Header().Get("X-Trace-Id")
	if len(header) != 16 {
		t.Fatalf("X-Trace-Id = %q, want 16 hex digits", header)
	}
	var body struct {
		TraceID string `json:"traceId"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != header {
		t.Errorf("body traceId %q != header %q", body.TraceID, header)
	}
}

// /debug/events serves the flight recorder with working since/category/
// severity/limit filters and rejects malformed ones.
func TestDebugEventsFilters(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	s := newTestServer(t, Config{
		Chaos: fault.NewChaos(7, 1.0, 0, 0), // every build fails
	})

	var before eventsView
	if rec := getJSON(t, s.Handler(), "/debug/events", &before); rec.Code != http.StatusOK {
		t.Fatalf("/debug/events: status %d", rec.Code)
	}
	if rec := get(s, chaosURL(t, s, 0, "bp")); rec.Code != http.StatusInternalServerError {
		t.Fatalf("chaos request: status %d, want 500", rec.Code)
	}

	var all eventsView
	getJSON(t, s.Handler(), q("/debug/events", "since", itoa(before.LastSeq)), &all)
	if len(all.Events) == 0 || all.LastSeq <= before.LastSeq {
		t.Fatalf("no new events after a failed build: %+v", all)
	}
	var sawBuildFail, sawInternal bool
	for _, e := range all.Events {
		if e.Seq <= before.LastSeq {
			t.Errorf("since filter leaked seq %d (cursor %d)", e.Seq, before.LastSeq)
		}
		switch {
		case e.Category == "build" && e.Msg == "build failed":
			sawBuildFail = true
		case e.Category == "serve" && e.Msg == "internal error":
			sawInternal = true
		}
	}
	if !sawBuildFail || !sawInternal {
		t.Errorf("missing build-failed (%v) or internal-error (%v) events: %+v",
			sawBuildFail, sawInternal, all.Events)
	}

	var errsOnly eventsView
	getJSON(t, s.Handler(), q("/debug/events", "since", itoa(before.LastSeq), "severity", "error"), &errsOnly)
	if len(errsOnly.Events) == 0 {
		t.Fatal("severity=error returned nothing")
	}
	for _, e := range errsOnly.Events {
		if e.Severity != "error" {
			t.Errorf("severity filter leaked %q", e.Severity)
		}
	}
	var buildOnly eventsView
	getJSON(t, s.Handler(), q("/debug/events", "since", itoa(before.LastSeq), "category", "build", "limit", "1"), &buildOnly)
	if len(buildOnly.Events) != 1 || buildOnly.Events[0].Category != "build" {
		t.Errorf("category+limit filter: %+v", buildOnly.Events)
	}

	for _, bad := range []string{
		q("/debug/events", "since", "not-a-number"),
		q("/debug/events", "category", "bogus"),
		q("/debug/events", "severity", "fatal"),
		q("/debug/events", "limit", "-3"),
	} {
		if rec := get(s, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}

// /debug/events degrades gracefully when telemetry is off: an empty event
// list, not a null or an error.
func TestDebugEventsTelemetryDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	telemetry.Disable()
	rec := get(s, "/debug/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"events": []`) {
		t.Errorf("disabled-telemetry body should carry an empty events array:\n%s", rec.Body.String())
	}
}

// /debug/trace captures a window and streams Perfetto-loadable trace_event
// JSON containing the requests served during the window.
func TestDebugTraceCapture(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	s := newTestServer(t, Config{})

	var captureRec *httptest.ResponseRecorder
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		captureRec = get(s, q("/debug/trace", "duration", "300ms"))
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !telemetry.TracingEnabled() {
		if time.Now().After(deadline) {
			t.Fatal("trace capture never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Served during the window → must appear as spans in the capture. A
	// concurrent capture attempt must be refused while the first holds the
	// exclusive tracer.
	if rec := get(s, chaosURL(t, s, 0, "bp")); rec.Code != http.StatusOK {
		t.Fatalf("request during capture: status %d", rec.Code)
	}
	if rec := get(s, q("/debug/trace", "duration", "1ms")); rec.Code != http.StatusConflict {
		t.Errorf("concurrent capture: status %d, want 409", rec.Code)
	}
	wg.Wait()

	if captureRec.Code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d: %s", captureRec.Code, captureRec.Body.String())
	}
	if ct := captureRec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(captureRec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace body is not valid JSON: %v", err)
	}
	var sawRequestSpan bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "http_path" {
			sawRequestSpan = true
		}
	}
	if !sawRequestSpan {
		t.Errorf("capture has no http_path span among %d events", len(doc.TraceEvents))
	}

	for _, bad := range []string{
		q("/debug/trace", "duration", "banana"),
		q("/debug/trace", "duration", "-2s"),
		q("/debug/trace", "duration", "2h"),
	} {
		if rec := get(s, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}

// With telemetry disabled /debug/trace cannot capture: 409, not a hang.
// (server.New enables process-global telemetry, so disable after it.)
func TestDebugTraceTelemetryDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	telemetry.Disable()
	if rec := get(s, q("/debug/trace", "duration", "10ms")); rec.Code != http.StatusConflict {
		t.Errorf("status %d, want 409", rec.Code)
	}
}

// /healthz reports the self-healing posture: ok on a healthy server, cache
// generation, an error budget — and "degraded" for a minute after a
// fallback serve.
func TestHealthzDegradedAndErrorBudget(t *testing.T) {
	telemetry.Disable()
	// Seed 10 draws ok, fail, ok: BP primes, the first hybrid build fails
	// and degrades onto the BP snapshot (same trick as the fallback test).
	s := newTestServer(t, Config{
		Chaos:            fault.NewChaos(10, 0.5, 0, 0),
		BreakerThreshold: -1,
	})

	type healthz struct {
		Status          string      `json:"status"`
		Breaker         breakerJSON `json:"breaker"`
		CacheGeneration uint64      `json:"cacheGeneration"`
		ErrorBudget     struct {
			Requests     int64   `json:"requests"`
			Errors5xx    int64   `json:"errors5xx"`
			Degraded     int64   `json:"degraded"`
			Availability float64 `json:"availability"`
		} `json:"errorBudget"`
	}
	var h healthz
	if rec := getJSON(t, s.Handler(), "/healthz", &h); rec.Code != http.StatusOK {
		t.Fatalf("/healthz: status %d", rec.Code)
	}
	if h.Status != "ok" || h.Breaker.State != "closed" {
		t.Fatalf("fresh server: status=%q breaker=%q, want ok/closed", h.Status, h.Breaker.State)
	}

	if rec := get(s, chaosURL(t, s, 0, "bp")); rec.Code != http.StatusOK {
		t.Fatalf("BP prime: status %d", rec.Code)
	}
	var resp pathResponse
	if rec := getJSON(t, s.Handler(), chaosURL(t, s, 0, "hybrid"), &resp); rec.Code != http.StatusOK || resp.Degraded == "" {
		t.Fatalf("hybrid: status %d degraded %q, want a 200 fallback", rec.Code, resp.Degraded)
	}

	h = healthz{}
	getJSON(t, s.Handler(), "/healthz", &h)
	if h.Status != "degraded" {
		t.Errorf("status after a fallback serve = %q, want degraded", h.Status)
	}
	if got := s.cache.Generation(); h.CacheGeneration != got {
		t.Errorf("cacheGeneration = %d, want the cache's %d", h.CacheGeneration, got)
	}
	eb := h.ErrorBudget
	if eb.Requests < 2 || eb.Degraded != 1 {
		t.Errorf("errorBudget = %+v, want ≥2 requests and 1 degraded", eb)
	}
	if eb.Availability <= 0 || eb.Availability > 1 {
		t.Errorf("availability = %v, want in (0,1]", eb.Availability)
	}
}

// /metrics?format=prometheus emits text exposition with the server families
// under the leosim_ prefix; the default stays JSON.
func TestMetricsPrometheusFormat(t *testing.T) {
	telemetry.Disable()
	s := newTestServer(t, Config{})
	if rec := get(s, chaosURL(t, s, 0, "bp")); rec.Code != http.StatusOK {
		t.Fatalf("prime: status %d", rec.Code)
	}

	rec := get(s, "/metrics?format=prometheus")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE leosim_requests counter",
		"# TYPE leosim_http_path_seconds histogram",
		"leosim_http_path_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "{") && !strings.Contains(out, `{le="`) {
		t.Errorf("unexpected labels in exposition:\n%s", out)
	}

	// JSON is still the default shape.
	var js map[string]interface{}
	if rec := getJSON(t, s.Handler(), "/metrics", &js); rec.Code != http.StatusOK {
		t.Fatalf("/metrics JSON: status %d", rec.Code)
	}
	if _, ok := js["server"]; !ok {
		t.Errorf("JSON /metrics lost its server block: %v", js)
	}
}
