package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leosim/internal/fault"
	"leosim/internal/telemetry"
)

// chaosURL builds the /v1/path query for one (snapshot, mode) cache key.
func chaosURL(t *testing.T, s *Server, snap int, mode string) string {
	t.Helper()
	sim := serverSim(t)
	return q("/v1/path",
		"src", sim.CityName(sim.Pairs[0].Src), "dst", sim.CityName(sim.Pairs[0].Dst),
		"snap", strconv.Itoa(snap), "mode", mode)
}

// get runs one request and returns the recorder.
func get(s *Server, url string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

// The chaos acceptance criterion: with seeded injection failing (or
// panicking) over a third of snapshot builds, a client retrying a handful of
// times must succeed ≥95% of the time — and once a key's snapshot is
// resident, it must never see a 5xx again, because stale-while-revalidate
// absorbs every background rebuild failure. The injector is seeded, so the
// fault stream is reproducible; the assertions hold for any goroutine
// interleaving, so the test is deterministic under -race as well.
func TestChaosStormServesResidentKeysWithoutErrors(t *testing.T) {
	chaos := fault.NewChaos(42, 0.30, 0.05, 0)
	s := newTestServer(t, Config{
		CacheTTL:        time.Millisecond, // nearly every storm request is past TTL
		CacheStaleFor:   time.Hour,        // but far from hard expiry
		BreakerCooldown: 50 * time.Millisecond,
		Chaos:           chaos,
		MaxInFlight:     64,
	})

	// Prime every (snapshot, mode) key, retrying through injected failures.
	// These pre-residency attempts are the only ones allowed to fail.
	var attempts, failures int
	urls := make([]string, 0, 4)
	for snap := 0; snap < 2; snap++ {
		for _, mode := range []string{"bp", "hybrid"} {
			url := chaosURL(t, s, snap, mode)
			urls = append(urls, url)
			primed := false
			for try := 0; try < 50 && !primed; try++ {
				attempts++
				switch code := get(s, url).Code; code {
				case http.StatusOK:
					primed = true
				case http.StatusInternalServerError, http.StatusServiceUnavailable:
					failures++
					time.Sleep(10 * time.Millisecond) // breaker cooldown headroom
				default:
					t.Fatalf("prime %s: unexpected status %d", url, code)
				}
			}
			if !primed {
				t.Fatalf("key %s not primed after 50 attempts", url)
			}
		}
	}

	// The storm: concurrent requests for primed keys only, with rebuilds
	// failing in the background the whole time.
	const workers, perWorker = 8, 25
	var non200 atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := get(s, urls[(w+i)%len(urls)])
				if rec.Code != http.StatusOK {
					non200.Add(1)
					t.Errorf("resident key: status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}()
	}
	wg.Wait()

	if non200.Load() != 0 {
		t.Fatalf("%d non-200 responses for resident keys, want 0", non200.Load())
	}
	total := attempts + workers*perWorker
	rate := float64(total-failures) / float64(total)
	if rate < 0.95 {
		t.Fatalf("success rate %.3f (%d/%d), want ≥ 0.95", rate, total-failures, total)
	}
	// The run must actually have been chaotic, and the resilience visible.
	if chaos.Fails() == 0 {
		t.Fatal("chaos injected no failures — the storm proved nothing")
	}
	if st := s.cache.Stats(); st.StaleServes == 0 {
		t.Errorf("no stale serves recorded during the storm: %+v", st)
	}
	var metrics struct {
		Server struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"server"`
	}
	if rec := getJSON(t, s.Handler(), "/metrics", &metrics); rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if metrics.Server.Counters["staleResponses"] == 0 {
		t.Errorf("staleResponses counter = 0 after a stale-serving storm")
	}
	t.Logf("chaos storm: %d requests, %d prime failures, rate %.3f, injector %d/%d fail/panic",
		total, failures, rate, chaos.Fails(), chaos.Panics())
}

// The chaos suite must self-explain: with 30% injected build failures,
// every single injection appears in /debug/events as a chaos event whose
// trace ID joins the request that triggered the build — and that request's
// own outcome (a 5xx, a stale serve, or a degraded fallback) is the
// response that absorbed it. An operator holding one X-Trace-Id from a bad
// response can pull the exact injected fault that caused it, and vice versa.
func TestChaosSelfExplainsInFlightRecorder(t *testing.T) {
	chaos := fault.NewChaos(99, 0.30, 0.05, 0)
	s := newTestServer(t, Config{
		CacheTTL:         time.Millisecond,
		CacheStaleFor:    time.Hour,
		BreakerThreshold: -1, // isolate the event join from breaker 503s
		Chaos:            chaos,
		MaxInFlight:      64,
	})
	// Scope to this storm. The cursor must be read after New, which enables
	// process-global telemetry (and with it the flight recorder) if needed.
	since := telemetry.LastEventSeq()

	// outcome is what one request experienced, keyed by its X-Trace-Id.
	type outcome struct {
		status   int
		stale    bool
		degraded bool
	}
	var mu sync.Mutex
	outcomes := map[string]outcome{}
	request := func(url string) int {
		rec := get(s, url)
		var body struct {
			Stale    bool   `json:"stale"`
			Degraded string `json:"degraded"`
		}
		json.Unmarshal(rec.Body.Bytes(), &body) //nolint:errcheck // error bodies lack the fields
		mu.Lock()
		outcomes[rec.Header().Get("X-Trace-Id")] = outcome{
			status: rec.Code, stale: body.Stale, degraded: body.Degraded != "",
		}
		mu.Unlock()
		return rec.Code
	}

	// Prime each key through the injected failures, then storm the resident
	// keys while background rebuilds keep failing.
	urls := make([]string, 0, 4)
	for snap := 0; snap < 2; snap++ {
		for _, mode := range []string{"bp", "hybrid"} {
			url := chaosURL(t, s, snap, mode)
			urls = append(urls, url)
			primed := false
			for try := 0; try < 50 && !primed; try++ {
				primed = request(url) == http.StatusOK
			}
			if !primed {
				t.Fatalf("key %s not primed after 50 attempts", url)
			}
		}
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				request(urls[(w+i)%len(urls)])
				// Pace past the TTL so revalidations (and their injected
				// failures) keep cycling instead of coalescing into one.
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()

	// Quiesce: background revalidation builds may still be landing their
	// events; poll until the recorder holds every injection. The registry is
	// process-global, so a straggler build from an earlier test can land a
	// foreign chaos event in the ring too — scope the join to events whose
	// trace belongs to this storm's requests. The scoping costs nothing: an
	// injection of OURS that lost its trace would drop out of the joined set
	// and fail the exact-count assertion below.
	injected := func() int64 { return chaos.Fails() + chaos.Panics() }
	joinedChaos := func() []telemetry.Event {
		mu.Lock()
		defer mu.Unlock()
		var ours []telemetry.Event
		for _, e := range telemetry.Events(telemetry.EventFilter{Cat: telemetry.CatChaos, Since: since}) {
			if _, ok := outcomes[e.Trace.String()]; ok {
				ours = append(ours, e)
			}
		}
		return ours
	}
	deadline := time.Now().Add(5 * time.Second)
	for int64(len(joinedChaos())) < injected() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	evs := joinedChaos()
	if int64(len(evs)) != injected() {
		t.Fatalf("flight recorder joins %d chaos events to this storm's requests, injector reports %d (fails=%d panics=%d)",
			len(evs), injected(), chaos.Fails(), chaos.Panics())
	}
	if injected() == 0 {
		t.Fatal("chaos injected nothing — the join proved nothing")
	}

	// Every injection joins a request, and that request's response absorbed
	// the failure: a 5xx, a stale serve, or a degraded fallback. (A 200
	// with neither marker would mean a failed build silently produced a
	// fresh answer — the one impossible outcome.)
	mu.Lock()
	defer mu.Unlock()
	for _, e := range evs {
		oc := outcomes[e.Trace.String()]
		if oc.status < 500 && !oc.stale && !oc.degraded {
			t.Errorf("chaos event %d trace %s joined a clean 200 (status=%d stale=%v degraded=%v)",
				e.Seq, e.Trace, oc.status, oc.stale, oc.degraded)
		}
	}

	// The join works in the other direction too: the injections surface as
	// build-failure events carrying the same trace IDs. (Universal
	// quantification is again off the table because of foreign stragglers.)
	var joinedBuildFails int
	for _, e := range telemetry.Events(telemetry.EventFilter{Cat: telemetry.CatBuild, MinSev: telemetry.SevError, Since: since}) {
		if _, ok := outcomes[e.Trace.String()]; ok {
			joinedBuildFails++
		}
	}
	if joinedBuildFails == 0 {
		t.Error("no build-failure event joins any of this storm's requests")
	}
	t.Logf("joined %d injected faults (%d fails, %d panics) across %d requests",
		injected(), chaos.Fails(), chaos.Panics(), len(outcomes))
}

// With every build failing, the breaker must trip after the configured
// streak and convert further misses from 500s into fast 503s that carry a
// cooldown-derived Retry-After.
func TestChaosBreakerOpensEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{
		Chaos:            fault.NewChaos(7, 1.0, 0, 0),
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	url := chaosURL(t, s, 0, "bp")

	for i := 0; i < 3; i++ {
		if rec := get(s, url); rec.Code != http.StatusInternalServerError {
			t.Fatalf("build %d: status %d, want 500 while the breaker is closed", i, rec.Code)
		}
	}
	rec := get(s, url)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-trip request: status %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 3600 {
		t.Fatalf("Retry-After = %q, want ≥ 3600s (the 1h cooldown)", rec.Header().Get("Retry-After"))
	}

	var metrics struct {
		Server struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
		} `json:"server"`
		Breaker breakerJSON `json:"breaker"`
	}
	if rec := getJSON(t, s.Handler(), "/metrics", &metrics); rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if metrics.Breaker.State != "open" || metrics.Breaker.FailureStreak < 3 || metrics.Breaker.Opens != 1 {
		t.Errorf("breaker block = %+v, want open with streak ≥ 3 and 1 open", metrics.Breaker)
	}
	if metrics.Server.Counters["breakerRejects"] < 1 {
		t.Errorf("breakerRejects counter = %d, want ≥ 1", metrics.Server.Counters["breakerRejects"])
	}
	if metrics.Server.Gauges["breaker_state"] != 2 || metrics.Server.Gauges["build_failure_streak"] < 3 {
		t.Errorf("breaker gauges = state %d streak %d, want state 2 (open), streak ≥ 3",
			metrics.Server.Gauges["breaker_state"], metrics.Server.Gauges["build_failure_streak"])
	}
}

// A hybrid-mode build failure with a resident BP snapshot for the same
// instant degrades to the BP copy (200 + degraded marker) instead of a 500.
// Seed 10 at FailRate 0.5 draws ok, fail, ok — so the BP prime succeeds, the
// first hybrid build fails, and the hybrid retry heals.
func TestChaosHybridDegradesToBPFallback(t *testing.T) {
	s := newTestServer(t, Config{
		Chaos:            fault.NewChaos(10, 0.5, 0, 0),
		BreakerThreshold: -1, // isolate the fallback ladder from breaker effects
	})

	if rec := get(s, chaosURL(t, s, 0, "bp")); rec.Code != http.StatusOK {
		t.Fatalf("BP prime: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp pathResponse
	rec := getJSON(t, s.Handler(), chaosURL(t, s, 0, "hybrid"), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("hybrid with failed build: status %d, want 200 via BP fallback: %s", rec.Code, rec.Body.String())
	}
	if resp.Degraded != "bp-fallback" {
		t.Fatalf("degraded = %q, want bp-fallback", resp.Degraded)
	}
	if resp.Path == nil || !resp.Path.Reachable {
		t.Fatal("degraded response lacks a usable path")
	}
	if got := s.degraded.Value(); got != 1 {
		t.Errorf("degradedResponses = %d, want 1", got)
	}

	// The third draw succeeds: the hybrid key heals and serves undegraded.
	resp = pathResponse{}
	if rec := getJSON(t, s.Handler(), chaosURL(t, s, 0, "hybrid"), &resp); rec.Code != http.StatusOK {
		t.Fatalf("hybrid retry: status %d", rec.Code)
	}
	if resp.Degraded != "" {
		t.Errorf("healed response still degraded: %q", resp.Degraded)
	}
}

// Retry-After is load- and breaker-derived with jitter — never the old
// hardcoded 1. On an idle server the base is 1s, jitter adds up to 50%.
func TestRetryAfterLoadDerivedAndJittered(t *testing.T) {
	s := newTestServer(t, Config{})
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		d := s.retryAfter(0)
		if d < time.Second || d > 1500*time.Millisecond {
			t.Fatalf("retryAfter = %v, want within [1s, 1.5s] on an idle server", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Error("retryAfter returned one constant value across 100 draws — jitter missing")
	}
	// A floor (e.g. the breaker's cooldown hint) raises the base.
	if d := s.retryAfter(10 * time.Second); d < 10*time.Second || d > 15*time.Second {
		t.Errorf("floored retryAfter = %v, want within [10s, 15s]", d)
	}
	for _, c := range []struct {
		d    time.Duration
		want string
	}{{0, "1"}, {time.Second, "1"}, {1400 * time.Millisecond, "2"}, {3 * time.Second, "3"}} {
		if got := retryAfterHeader(c.d); got != c.want {
			t.Errorf("retryAfterHeader(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
