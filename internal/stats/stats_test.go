package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 25); got != 2.5 {
		t.Errorf("interpolated P25 = %v, want 2.5", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Errorf("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 0, 1000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		xs = append(xs, rng.Float64()*100)
	}
	s := Summarize(xs)
	if s.N != 1000 {
		t.Errorf("N = %d", s.N)
	}
	if s.Min > s.P25 || s.P25 > s.Median || s.Median > s.P75 ||
		s.P75 > s.P90 || s.P90 > s.P95 || s.P95 > s.P99 ||
		s.P99 > s.P995 || s.P995 > s.Max {
		t.Errorf("summary order statistics not monotone: %+v", s)
	}
	if s.Mean < 45 || s.Mean > 55 {
		t.Errorf("uniform mean = %v", s.Mean)
	}
	if Summarize(nil).N != 0 {
		t.Errorf("empty summary should have N=0")
	}
	if Summarize(xs).String() == "" {
		t.Errorf("String should render")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{3, 1, 2}
	cdf := CDF(xs)
	if len(cdf) != 3 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].X != 1 || cdf[2].X != 3 {
		t.Errorf("CDF not sorted: %+v", cdf)
	}
	if cdf[2].F != 1 {
		t.Errorf("CDF must end at 1, got %v", cdf[2].F)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].F <= cdf[i-1].F {
			t.Errorf("CDF fractions not increasing")
		}
	}
	if CDF(nil) != nil {
		t.Errorf("empty CDF should be nil")
	}
}

func TestCCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cc := CCDF(xs)
	if cc[0].F != 0.75 || cc[3].F != 0 {
		t.Errorf("CCDF = %+v", cc)
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if f := CDFAt(xs, 2.5); f != 0.5 {
		t.Errorf("CDFAt(2.5) = %v", f)
	}
	if f := CDFAt(xs, 0); f != 0 {
		t.Errorf("CDFAt(0) = %v", f)
	}
	if f := CDFAt(xs, 9); f != 1 {
		t.Errorf("CDFAt(9) = %v", f)
	}
	if !math.IsNaN(CDFAt(nil, 1)) {
		t.Errorf("empty CDFAt should be NaN")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Errorf("empty mean should be NaN")
	}
}

// Percentile at p must sit between min and max, and P50 of a sorted
// symmetric set equals the median.
func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		for _, p := range []float64{0, 10, 50, 90, 99.5, 100} {
			v := Percentile(xs, p)
			if v < s[0] || v > s[len(s)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
