// Package stats provides the small statistical toolkit the experiments use:
// percentiles, empirical CDF/CCDF series, and summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It returns NaN for an empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	f := rank - float64(lo)
	return s[lo]*(1-f) + s[hi]*f
}

// Summary holds the summary statistics the experiment reports print.
type Summary struct {
	N                   int
	Min, Max, Mean      float64
	P25, Median, P75    float64
	P90, P95, P99, P995 float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary
// with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		P25:    percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		P75:    percentileSorted(s, 75),
		P90:    percentileSorted(s, 90),
		P95:    percentileSorted(s, 95),
		P99:    percentileSorted(s, 99),
		P995:   percentileSorted(s, 99.5),
	}
}

// String implements fmt.Stringer with a compact one-line rendering.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f p50=%.2f mean=%.2f p95=%.2f max=%.2f",
		s.N, s.Min, s.Median, s.Mean, s.P95, s.Max)
}

// CDFPoint is one point of an empirical distribution series.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction ≤ X
}

// CDF returns the empirical CDF of xs as a sorted point series, one point
// per sample (suitable for plotting the paper's Fig 2/6-style curves).
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, F: float64(i+1) / float64(len(s))}
	}
	return out
}

// CCDF returns the complementary CDF: fraction of samples strictly greater
// than X, evaluated at each sample.
func CCDF(xs []float64) []CDFPoint {
	cdf := CDF(xs)
	for i := range cdf {
		cdf[i].F = 1 - cdf[i].F
	}
	return cdf
}

// CDFAt evaluates the empirical CDF of xs at value x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
