package stats

import "sort"

// WeightedPercentile returns the p-th percentile (p in [0,100]) of xs under
// non-negative weights ws: the smallest x such that the cumulative weight of
// samples ≤ x reaches p% of the total. len(ws) must equal len(xs); zero total
// weight (or empty input) returns 0. The topo sweep uses it for
// demand-weighted latency, where a pair counts by its gravity weight rather
// than once.
func WeightedPercentile(xs, ws []float64, p float64) float64 {
	if len(xs) == 0 || len(xs) != len(ws) {
		return 0
	}
	type wv struct{ x, w float64 }
	s := make([]wv, 0, len(xs))
	var total float64
	for i, x := range xs {
		if ws[i] <= 0 {
			continue
		}
		s = append(s, wv{x: x, w: ws[i]})
		total += ws[i]
	}
	if total <= 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i].x < s[j].x })
	target := p / 100 * total
	var cum float64
	for _, e := range s {
		cum += e.w
		if cum >= target {
			return e.x
		}
	}
	return s[len(s)-1].x
}

// WeightedMedian is WeightedPercentile at p = 50.
func WeightedMedian(xs, ws []float64) float64 { return WeightedPercentile(xs, ws, 50) }
