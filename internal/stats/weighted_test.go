package stats

import "testing"

func TestWeightedMedian(t *testing.T) {
	// Uniform weights degrade to the plain (lower) median.
	if got := WeightedMedian([]float64{3, 1, 2}, []float64{1, 1, 1}); got != 2 {
		t.Errorf("uniform weighted median = %v, want 2", got)
	}
	// A dominant weight drags the median onto its sample.
	if got := WeightedMedian([]float64{1, 2, 100}, []float64{1, 1, 10}); got != 100 {
		t.Errorf("dominant-weight median = %v, want 100", got)
	}
	// Zero-weight samples are ignored entirely.
	if got := WeightedMedian([]float64{5, 1000}, []float64{1, 0}); got != 5 {
		t.Errorf("zero-weight median = %v, want 5", got)
	}
	if got := WeightedMedian(nil, nil); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
	if got := WeightedMedian([]float64{1}, []float64{1, 2}); got != 0 {
		t.Errorf("mismatched lengths = %v, want 0", got)
	}
	if got := WeightedPercentile([]float64{1, 2, 3, 4}, []float64{1, 1, 1, 1}, 100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
}
