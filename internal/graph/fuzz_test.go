package graph

import (
	"math"
	"testing"

	"leosim/internal/geo"
)

// Native fuzz targets: raw bytes are decoded directly into a graph topology
// (no PRNG indirection, so the fuzzer's mutations map straight onto
// structural edge cases — self-referential link lists, parallel links,
// isolated nodes, degenerate weights) and the kernel is held to the naive
// reference from differential_test.go, plus CSR structural invariants.

// fuzzNet decodes a byte stream into a small graph. Layout: byte 0 sizes the
// node set, byte 1 flags ground-side nodes, then each link consumes three
// bytes (endpoint, endpoint, quantized weight). Self-loops are skipped;
// parallel links are kept deliberately.
func fuzzNet(data []byte) *Network {
	if len(data) < 5 {
		return nil
	}
	nodes := 2 + int(data[0])%60
	n := &Network{}
	for i := 0; i < nodes; i++ {
		kind := NodeSatellite
		if data[1]&(1<<(i%8)) != 0 && i%3 == 0 {
			kind = NodeCity
		}
		n.AddNode(kind, geo.Vec3{}, "")
	}
	for i := 2; i+2 < len(data); i += 3 {
		a := int32(int(data[i]) % nodes)
		b := int32(int(data[i+1]) % nodes)
		if a == b {
			continue
		}
		w := 0.25 + 0.25*float64(data[i+2]%32)
		n.Links = append(n.Links, Link{A: a, B: b, Kind: LinkGSL, CapGbps: 1, OneWayMs: w})
	}
	n.csrValid.Store(false)
	return n
}

// FuzzSearch holds the allocation-free search kernel to the naive O(V²)
// reference on arbitrary decoded topologies: identical distances, identical
// predecessor links (pinning the (dist, node) tie-break), and an extracted
// path consistent with the distance label.
func FuzzSearch(f *testing.F) {
	f.Add([]byte{10, 0xAA, 0, 1, 3, 1, 2, 7, 2, 3, 1, 0, 3, 9}, uint8(0), uint8(3), uint8(0))
	f.Add([]byte{40, 0x0F, 5, 6, 2, 6, 7, 2, 7, 5, 2, 1, 2, 30}, uint8(5), uint8(7), uint8(3))
	f.Add([]byte{2, 1, 0, 1, 15}, uint8(1), uint8(0), uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, srcB, dstB, banB uint8) {
		n := fuzzNet(data)
		if n == nil || len(n.Links) == 0 {
			t.Skip()
		}
		src := int32(int(srcB) % n.N())
		dst := int32(int(dstB) % n.N())
		banned := map[int32]bool{}
		for li := range n.Links {
			if banB > 0 && li%int(banB) == 0 {
				banned[int32(li)] = true
			}
		}

		dist, prev := n.Dijkstra(src, banned)
		wantDist, wantPrev := naiveDijkstra(n, src, NoTarget, banned, nil, nil, nil)
		for v := range dist {
			if dist[v] != wantDist[v] || prev[v] != wantPrev[v] {
				t.Fatalf("node %d: kernel (%v, %d) vs reference (%v, %d)",
					v, dist[v], prev[v], wantDist[v], wantPrev[v])
			}
		}

		// Sat-transit restriction against the reference with the same expand.
		expand := func(v int32) bool { return !n.IsGroundSide(v) }
		gotD, gotP := n.DijkstraExpand(src, nil, expand)
		refD, refP := naiveDijkstra(n, src, NoTarget, nil, nil, expand, nil)
		for v := range gotD {
			if gotD[v] != refD[v] || gotP[v] != refP[v] {
				t.Fatalf("sat-transit node %d: kernel (%v, %d) vs reference (%v, %d)",
					v, gotD[v], gotP[v], refD[v], refP[v])
			}
		}

		// Extracted path must be continuous and priced exactly at dist[dst].
		if p, ok := n.ShortestPath(src, dst); ok {
			d, _ := n.Dijkstra(src, nil)
			if math.Abs(p.OneWayMs-d[dst]) > 1e-12*math.Max(1, d[dst]) {
				t.Fatalf("path delay %v vs dist %v", p.OneWayMs, d[dst])
			}
			at := src
			for i, li := range p.Links {
				l := n.Links[li]
				switch at {
				case l.A:
					at = l.B
				case l.B:
					at = l.A
				default:
					t.Fatalf("hop %d: link %d (%d-%d) does not touch %d", i, li, l.A, l.B, at)
				}
			}
			if at != dst {
				t.Fatalf("path ends at %d, want %d", at, dst)
			}
		}
	})
}

// FuzzBuildCSR checks the lazily built CSR adjacency against the flat link
// list on arbitrary topologies: every link appears exactly once per endpoint,
// degrees agree, and a RewriteLinks round-trip (the mutation path that
// invalidates the CSR) rebuilds it consistently.
func FuzzBuildCSR(f *testing.F) {
	f.Add([]byte{6, 0, 0, 1, 1, 1, 2, 1, 4, 5, 1, 0, 5, 1})
	f.Add([]byte{3, 0xFF, 0, 1, 1, 0, 1, 1, 1, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := fuzzNet(data)
		if n == nil {
			t.Skip()
		}
		verify := func(tag string) {
			seen := make(map[int32]int, len(n.Links))
			total := 0
			for v := int32(0); v < int32(n.N()); v++ {
				edges := n.Edges(v)
				if len(edges) != n.Degree(v) {
					t.Fatalf("%s: node %d: %d edges vs degree %d", tag, v, len(edges), n.Degree(v))
				}
				total += len(edges)
				for _, e := range edges {
					l := n.Links[e.Link]
					if l.A != v && l.B != v {
						t.Fatalf("%s: node %d lists link %d (%d-%d)", tag, v, e.Link, l.A, l.B)
					}
					if want := l.A + l.B - v; e.To != want {
						t.Fatalf("%s: link %d from %d: To=%d, want %d", tag, e.Link, v, e.To, want)
					}
					seen[e.Link]++
				}
			}
			if total != 2*len(n.Links) {
				t.Fatalf("%s: CSR holds %d half-edges for %d links", tag, total, len(n.Links))
			}
			for li := range n.Links {
				if seen[int32(li)] != 2 {
					t.Fatalf("%s: link %d appears %d times, want 2", tag, li, seen[int32(li)])
				}
			}
		}
		verify("initial")
		n.RewriteLinks(func(l Link) (Link, bool) { return l, true })
		verify("after rewrite")
	})
}
