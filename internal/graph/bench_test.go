package graph

import (
	"testing"

	"leosim/internal/geo"
	"leosim/internal/telemetry"
)

// benchGrid builds a rows×cols torus-grid network with nodes placed on a
// lat/lon lattice, so link delays vary with latitude (realistic, few exact
// ties) and every interior pair has ≥ 4 edge-disjoint paths. Corner nodes
// are cities, the rest satellites, so transit-restricted searches have work
// to do.
func benchGrid(rows, cols int) *Network {
	n := &Network{}
	node := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			lat := -60 + 120*float64(r)/float64(rows-1)
			lon := -180 + 360*float64(c)/float64(cols)
			kind := NodeSatellite
			alt := 550.0
			if (r == 0 || r == rows-1) && (c == 0 || c == cols-1) {
				kind = NodeCity
				alt = 0
			}
			n.AddNode(kind, geo.LatLon{Lat: lat, Lon: lon, Alt: alt}.ToECEF(), "")
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n.AddLink(node(r, c), node(r, (c+1)%cols), LinkISL, 100)
			if r+1 < rows {
				n.AddLink(node(r, c), node(r+1, c), LinkISL, 100)
			}
		}
	}
	return n
}

// BenchmarkDijkstra measures a full single-source search on an 8k-node grid
// — the primitive every experiment sweep runs thousands of times.
func BenchmarkDijkstra(b *testing.B) {
	n := benchGrid(80, 100)
	src := int32(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist, _ := n.Dijkstra(src, nil)
		if dist[int32(n.N()-1)] <= 0 {
			b.Fatal("unreachable")
		}
	}
}

// BenchmarkShortestPath measures the targeted (early-exit) search plus path
// extraction for a cross-grid pair.
func BenchmarkShortestPath(b *testing.B) {
	n := benchGrid(80, 100)
	src, dst := int32(0), int32(n.N()-1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := n.ShortestPath(src, dst)
		if !ok || p.Hops() == 0 {
			b.Fatal("no path")
		}
	}
}

// BenchmarkKDisjoint measures the §5 routing primitive: k=4 edge-disjoint
// shortest paths between opposite grid corners.
func BenchmarkKDisjoint(b *testing.B) {
	n := benchGrid(80, 100)
	// Interior nodes: torus columns + bounded rows give corners degree 3,
	// interior degree 4, so k=4 disjoint paths need an interior pair.
	src, dst := int32(40*100), int32(40*100+50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := n.KDisjointPaths(src, dst, 4)
		if len(paths) != 4 {
			b.Fatalf("got %d paths", len(paths))
		}
	}
}

// BenchmarkYen measures Yen's k-shortest loopless paths on a smaller grid
// (Yen runs O(k·|V|) spur searches).
func BenchmarkYen(b *testing.B) {
	n := benchGrid(12, 16)
	src, dst := int32(0), int32(n.N()-1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := n.KShortestPaths(src, dst, 8)
		if len(paths) != 8 {
			b.Fatalf("got %d paths", len(paths))
		}
	}
}

// BenchmarkSearch measures the raw kernel loop (pooled state, no slice
// materialization) with telemetry disabled — the configuration every batch
// run starts in. Its ns/op must stay within noise of the pre-telemetry
// kernel (BENCH_routing.json): the disabled-path cost is one atomic load.
func BenchmarkSearch(b *testing.B) {
	telemetry.Disable()
	n := benchGrid(80, 100)
	st := AcquireSearch()
	defer st.Release()
	spec := SearchSpec{Src: 0, Target: NoTarget}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.Search(st, spec) {
			b.Fatal("search stopped")
		}
	}
}

// BenchmarkSearchTelemetryEnabled is the same kernel loop with the metrics
// registry installed: the span observes one histogram bucket per search.
func BenchmarkSearchTelemetryEnabled(b *testing.B) {
	telemetry.Enable()
	defer telemetry.Disable()
	n := benchGrid(80, 100)
	st := AcquireSearch()
	defer st.Release()
	spec := SearchSpec{Src: 0, Target: NoTarget}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.Search(st, spec) {
			b.Fatal("search stopped")
		}
	}
}
