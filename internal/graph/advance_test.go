package graph

import (
	"fmt"
	"testing"
	"time"

	"leosim/internal/aircraft"
	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/ground"
)

// advSetup wires a builder over the real Phase 1 shell with a modest ground
// segment, optionally an aircraft fleet and a fault mask.
func advSetup(t testing.TB, isl, fleet bool, mask func(*Network)) *Builder {
	t.Helper()
	c, err := constellation.New([]constellation.Shell{constellation.StarlinkPhase1()},
		constellation.WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	cities, err := ground.Cities(25)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ground.NewSegment(cities, 6, 1500)
	if err != nil {
		t.Fatal(err)
	}
	var fl *aircraft.Fleet
	if fleet {
		if fl, err = aircraft.NewFleet(0.2); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultOptions()
	opts.ISL = isl
	opts.Mask = mask
	b, err := NewBuilder(c, seg, fl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// requireNetworksIdentical asserts got (an advanced network) is byte-for-byte
// the network want (a fresh At build): nodes, positions, the link list
// including float weights, and the frozen CSR layout.
func requireNetworksIdentical(t *testing.T, label string, got, want *Network) {
	t.Helper()
	if got.N() != want.N() || got.NumSat != want.NumSat || got.NumCity != want.NumCity ||
		got.NumRelay != want.NumRelay || got.NumAircraft != want.NumAircraft {
		t.Fatalf("%s: node layout differs: got %d/%d/%d/%d/%d want %d/%d/%d/%d/%d",
			label, got.N(), got.NumSat, got.NumCity, got.NumRelay, got.NumAircraft,
			want.N(), want.NumSat, want.NumCity, want.NumRelay, want.NumAircraft)
	}
	for i := range want.Pos {
		if got.Pos[i] != want.Pos[i] {
			t.Fatalf("%s: node %d position differs: %v vs %v", label, i, got.Pos[i], want.Pos[i])
		}
		if got.Kind[i] != want.Kind[i] || got.Name[i] != want.Name[i] {
			t.Fatalf("%s: node %d identity differs", label, i)
		}
	}
	if len(got.Links) != len(want.Links) {
		t.Fatalf("%s: link count %d vs %d", label, len(got.Links), len(want.Links))
	}
	for i := range want.Links {
		if got.Links[i] != want.Links[i] {
			t.Fatalf("%s: link %d differs:\n got %+v\nwant %+v", label, i, got.Links[i], want.Links[i])
		}
	}
	got.ensureCSR()
	want.ensureCSR()
	for i := range want.adjStart {
		if got.adjStart[i] != want.adjStart[i] {
			t.Fatalf("%s: CSR adjStart[%d] differs", label, i)
		}
	}
	for i := range want.adjEdges {
		if got.adjEdges[i] != want.adjEdges[i] {
			t.Fatalf("%s: CSR adjEdges[%d] differs", label, i)
		}
	}
}

// TestAdvanceDifferentialDay advances a hybrid network through a full
// simulated day in one-minute steps and checks it against fresh At rebuilds
// at sampled instants.
func TestAdvanceDifferentialDay(t *testing.T) {
	b := advSetup(t, true, false, nil)
	a := b.NewAdvancer(geo.Epoch)
	const step = time.Minute
	for i := 1; i <= 24*60; i++ {
		tt := geo.Epoch.Add(time.Duration(i) * step)
		d := a.Advance(tt)
		if d.FullRebuild {
			t.Fatalf("step %d unexpectedly fell back: %s", i, d.Reason)
		}
		if i%60 == 0 {
			requireNetworksIdentical(t, fmt.Sprintf("t=+%dmin", i), a.Net(), b.At(tt))
		}
	}
	st := a.Stats()
	if st.Steps != 24*60 || st.FullRebuilds != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Added == 0 || st.Removed == 0 {
		t.Fatalf("a simulated day should churn GSLs: %+v", st)
	}
	if st.Rechecked == 0 || st.CellCrossings == 0 {
		t.Fatalf("incremental machinery idle: %+v", st)
	}
}

// TestAdvanceDifferentialSeconds exercises the 1-second resolution the
// advancer exists for — deadline-gated rechecks skip most pairs on most
// steps — including aircraft, and compares against At every 20 seconds.
func TestAdvanceDifferentialSeconds(t *testing.T) {
	b := advSetup(t, true, true, nil)
	start := geo.Epoch.Add(3 * time.Hour)
	a := b.NewAdvancer(start)
	for i := 1; i <= 240; i++ {
		tt := start.Add(time.Duration(i) * time.Second)
		a.Advance(tt)
		if i%20 == 0 {
			requireNetworksIdentical(t, fmt.Sprintf("t=+%ds", i), a.Net(), b.At(tt))
		}
	}
	// The whole point at 1 s resolution: the deadline gate must spare the
	// bulk of the candidate evaluations. Rechecking every pair every step
	// would cost steps × (total candidate pairs); require at least a 2×
	// saving (in practice it is far larger).
	st := a.Stats()
	pairs := int64(0)
	for i := range a.terms {
		pairs += int64(len(a.terms[i].cands))
	}
	if budget := int64(st.Steps) * pairs / 2; st.Rechecked >= budget {
		t.Fatalf("deadline gate ineffective: %d rechecks over %d steps (budget %d)",
			st.Rechecked, st.Steps, budget)
	}
}

// TestAdvanceDifferentialMasked advances under an active fault mask (the
// fault.Outages contract: RewriteLinks only) and requires byte-identity with
// masked fresh rebuilds.
func TestAdvanceDifferentialMasked(t *testing.T) {
	mask := func(n *Network) {
		n.RewriteLinks(func(l Link) (Link, bool) {
			// Knock out every 37th satellite's links entirely and degrade
			// the GSL capacity of every 11th — deterministic, order-free.
			sat := l.A
			if n.Kind[sat] != NodeSatellite {
				sat = l.B
			}
			if n.Kind[sat] == NodeSatellite {
				if sat%37 == 0 {
					return l, false
				}
				if l.Kind == LinkGSL && sat%11 == 0 {
					l.CapGbps /= 2
				}
			}
			return l, true
		})
	}
	b := advSetup(t, true, false, mask)
	start := geo.Epoch.Add(12 * time.Hour)
	a := b.NewAdvancer(start)
	for i := 1; i <= 120; i++ {
		tt := start.Add(time.Duration(i) * 30 * time.Second)
		d := a.Advance(tt)
		if d.FullRebuild {
			t.Fatalf("step %d fell back: %s", i, d.Reason)
		}
		if i%15 == 0 {
			requireNetworksIdentical(t, fmt.Sprintf("masked t=+%ds", i*30), a.Net(), b.At(tt))
		}
	}
}

// TestAdvanceDeltaLogConsistency replays the per-step delta log against the
// previous GSL edge set and requires it to reproduce each step's network.
func TestAdvanceDeltaLogConsistency(t *testing.T) {
	b := advSetup(t, true, true, nil)
	start := geo.Epoch.Add(6 * time.Hour)
	a := b.NewAdvancer(start)
	gsl := gslSet(a.Net())
	epoch := a.Net().Epoch()
	for i := 1; i <= 90; i++ {
		tt := start.Add(time.Duration(i) * 2 * time.Second)
		d := a.Advance(tt)
		if d.Epoch != epoch+1 {
			t.Fatalf("step %d: epoch %d, want %d", i, d.Epoch, epoch+1)
		}
		epoch = d.Epoch
		if d.FullRebuild {
			// Rebuild steps (here: the aircraft set changed) carry no edge
			// diff; the log consumer resyncs from the fresh snapshot.
			if len(d.Added)+len(d.Removed) != 0 {
				t.Fatalf("step %d: rebuild delta carries edges", i)
			}
			gsl = gslSet(a.Net())
			continue
		}
		for _, e := range d.Removed {
			if !gsl[e] {
				t.Fatalf("step %d: removed absent edge %+v", i, e)
			}
			delete(gsl, e)
		}
		for _, e := range d.Added {
			if gsl[e] {
				t.Fatalf("step %d: added present edge %+v", i, e)
			}
			gsl[e] = true
		}
		now := gslSet(a.Net())
		if len(now) != len(gsl) {
			t.Fatalf("step %d: delta-replayed set has %d edges, network %d", i, len(gsl), len(now))
		}
		for e := range now {
			if !gsl[e] {
				t.Fatalf("step %d: edge %+v in network but not in replayed set", i, e)
			}
		}
	}
}

func gslSet(n *Network) map[GSLChange]bool {
	set := make(map[GSLChange]bool)
	for _, l := range n.Links {
		if l.Kind != LinkGSL {
			continue
		}
		term, sat := l.A, l.B
		if n.Kind[term] == NodeSatellite {
			term, sat = sat, term
		}
		set[GSLChange{Term: term, Sat: sat}] = true
	}
	return set
}

// TestAdvanceFallbacks covers every full-rebuild trigger and that the
// advancer recovers incrementally afterwards.
func TestAdvanceFallbacks(t *testing.T) {
	b := advSetup(t, false, false, nil)
	a := b.NewAdvancer(geo.Epoch)

	if d := a.Advance(geo.Epoch); d.FullRebuild || len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("zero-length step should be a no-op: %+v", d)
	}

	tt := geo.Epoch.Add(time.Second)
	if d := a.Advance(tt); d.FullRebuild {
		t.Fatalf("1s step fell back: %s", d.Reason)
	}

	big := tt.Add(MaxAdvanceStep + time.Second)
	if d := a.Advance(big); !d.FullRebuild || d.Reason != "large-jump" {
		t.Fatalf("jump past MaxAdvanceStep: %+v", d)
	}
	requireNetworksIdentical(t, "after large-jump", a.Net(), b.At(big))

	if d := a.Advance(big.Add(-time.Second)); !d.FullRebuild || d.Reason != "backwards-step" {
		t.Fatalf("backwards step: %+v", d)
	}

	// Recovery: the state is rebuilt lazily and the next small step is
	// incremental again, still byte-identical.
	back := big.Add(-time.Second)
	if d := a.Advance(back.Add(2 * time.Second)); d.FullRebuild {
		t.Fatalf("post-rebuild step fell back: %s", d.Reason)
	}
	requireNetworksIdentical(t, "post-rebuild incremental", a.Net(), b.At(back.Add(2*time.Second)))

	// Segment growth (EnsureCity's effect): terminal count changes force a
	// rebuild, after which incremental stepping resumes.
	grown := append([]ground.Terminal(nil), b.Seg.Terminals...)
	extra := ground.NewTerminal(len(grown), ground.KindCity, "extra-city",
		geo.LatLon{Lat: 1.3, Lon: 103.8}, b.Seg.NumCity)
	b.Seg.Terminals = append(grown, extra)
	b.Seg.NumCity++
	cur := back.Add(2 * time.Second)
	if d := a.Advance(cur.Add(time.Second)); !d.FullRebuild || d.Reason != "segment-growth" {
		t.Fatalf("segment growth: %+v", d)
	}
	cur = cur.Add(time.Second)
	if d := a.Advance(cur.Add(time.Second)); d.FullRebuild {
		t.Fatalf("post-growth step fell back: %s", d.Reason)
	}
	requireNetworksIdentical(t, "post-growth incremental", a.Net(), b.At(cur.Add(time.Second)))
}

// TestAdvanceOptionFallbacks: options whose link sets couple terminals
// globally (GSO arc avoidance, beam caps) force a rebuild every step — and
// still match At exactly.
func TestAdvanceOptionFallbacks(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mut    func(*BuildOptions)
		reason string
	}{
		{"gso", func(o *BuildOptions) { o.GSO = ground.StarlinkGSOPolicy() }, "gso-policy"},
		{"beamcap", func(o *BuildOptions) { o.MaxGSLsPerSatellite = 4 }, "beam-cap"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := advSetup(t, false, false, nil)
			tc.mut(&b.Opts)
			a := b.NewAdvancer(geo.Epoch)
			for i := 1; i <= 3; i++ {
				tt := geo.Epoch.Add(time.Duration(i) * time.Second)
				d := a.Advance(tt)
				if !d.FullRebuild || d.Reason != tc.reason {
					t.Fatalf("step %d: %+v", i, d)
				}
				requireNetworksIdentical(t, tc.name, a.Net(), b.At(tt))
			}
		})
	}
}

// TestAdvanceCloneIsolation: snapshots handed out via Clone must not change
// under later advances.
func TestAdvanceCloneIsolation(t *testing.T) {
	b := advSetup(t, true, false, nil)
	a := b.NewAdvancer(geo.Epoch)
	t1 := geo.Epoch.Add(time.Second)
	a.Advance(t1)
	snap := a.Net().Clone()
	for i := 2; i <= 60; i++ {
		a.Advance(geo.Epoch.Add(time.Duration(i) * time.Second))
	}
	requireNetworksIdentical(t, "clone after 59 more steps", snap, b.At(t1))
	if snap.Epoch() == a.Net().Epoch() {
		t.Fatal("epoch should have moved past the clone")
	}
}

// TestAdvanceAllocs pins the steady-state allocation budget of one advance
// step. The remaining allocations are the position fan-out goroutines; the
// candidate, index, link and CSR buffers must all be reused.
func TestAdvanceAllocs(t *testing.T) {
	b := advSetup(t, true, false, nil)
	a := b.NewAdvancer(geo.Epoch)
	tt := geo.Epoch
	for i := 0; i < 30; i++ { // settle buffers to steady state
		tt = tt.Add(time.Second)
		a.Advance(tt)
	}
	step := 0
	allocs := testing.AllocsPerRun(50, func() {
		step++
		a.Advance(tt.Add(time.Duration(step) * time.Second))
	})
	if allocs > 128 {
		t.Errorf("Advance allocates %.0f objects/step; budget is 128", allocs)
	}
}

// fullBenchSetup builds the paper-scale benchmark fixture: the full 1,000
// traffic cities over a 4° transit-relay grid (≈1,900 static terminals,
// ≈21k links) under Starlink phase 1 with ISLs. The snapshot-engine numbers
// in BENCH_snapshot.json are recorded against this fixture.
func fullBenchSetup(b *testing.B) *Builder {
	b.Helper()
	c, err := constellation.New([]constellation.Shell{constellation.StarlinkPhase1()},
		constellation.WithISLs())
	if err != nil {
		b.Fatal(err)
	}
	cities, err := ground.Cities(1000)
	if err != nil {
		b.Fatal(err)
	}
	seg, err := ground.NewSegment(cities, 4, 1500)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.ISL = true
	bld, err := NewBuilder(c, seg, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	return bld
}

// BenchmarkBuildAt is the baseline: one full snapshot rebuild per simulated
// second at paper scale. Compare with BenchmarkAdvance (BENCH_snapshot.json
// records both; scripts/bench.sh snapshot refreshes it).
func BenchmarkBuildAt(b *testing.B) {
	bld := fullBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bld.At(geo.Epoch.Add(time.Duration(i) * time.Second))
	}
}

// BenchmarkAdvance measures one incremental 1-second step against the same
// fixture as BenchmarkBuildAt.
func BenchmarkAdvance(b *testing.B) {
	bld := fullBenchSetup(b)
	a := bld.NewAdvancer(geo.Epoch)
	a.Advance(geo.Epoch.Add(time.Second)) // pay lazy state init outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Advance(geo.Epoch.Add(time.Duration(i+2) * time.Second))
	}
}
