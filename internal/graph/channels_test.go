package graph

import (
	"testing"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/ground"
)

func TestMaxGSLsPerSatellite(t *testing.T) {
	c, err := constellation.New([]constellation.Shell{constellation.StarlinkPhase1()})
	if err != nil {
		t.Fatal(err)
	}
	cities, err := ground.Cities(60)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ground.NewSegment(cities, 3, 1500)
	if err != nil {
		t.Fatal(err)
	}

	unlimited, err := NewBuilder(c, seg, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxGSLsPerSatellite = 4
	capped, err := NewBuilder(c, seg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	nu := unlimited.At(geo.Epoch)
	nc := capped.At(geo.Epoch)

	// The cap binds: fewer links overall, and no satellite above 4.
	if len(nc.Links) >= len(nu.Links) {
		t.Fatalf("cap did not reduce links: %d vs %d", len(nc.Links), len(nu.Links))
	}
	perSat := make([]int, nc.NumSat)
	for _, l := range nc.Links {
		sat := l.A
		if nc.Kind[sat] != NodeSatellite {
			sat = l.B
		}
		perSat[sat]++
	}
	for si, cnt := range perSat {
		if cnt > 4 {
			t.Fatalf("satellite %d serves %d terminals, cap is 4", si, cnt)
		}
	}

	// The kept links are the closest ones: for one loaded satellite, its
	// retained terminal distances are each ≤ every dropped distance.
	var satIdx int32 = -1
	for si, cnt := range perSat {
		if cnt == 4 {
			satIdx = int32(si)
			break
		}
	}
	if satIdx >= 0 {
		kept := map[int32]bool{}
		var maxKept float64
		for _, l := range nc.Links {
			term := l.A
			if term == satIdx {
				term = l.B
			} else if l.B != satIdx {
				continue
			}
			kept[term] = true
			if d := nc.Pos[term].Distance(nc.Pos[satIdx]); d > maxKept {
				maxKept = d
			}
		}
		for _, l := range nu.Links {
			term := l.A
			if term == satIdx {
				term = l.B
			} else if l.B != satIdx {
				continue
			}
			if !kept[term] {
				if d := nu.Pos[term].Distance(nu.Pos[satIdx]); d < maxKept-1e-9 {
					t.Fatalf("dropped a closer terminal (%.1f km) than a kept one (%.1f km)", d, maxKept)
				}
			}
		}
	}

	// Determinism.
	nc2 := capped.At(geo.Epoch)
	if len(nc2.Links) != len(nc.Links) {
		t.Fatalf("cap selection not deterministic")
	}
	for i := range nc.Links {
		if nc.Links[i] != nc2.Links[i] {
			t.Fatalf("link %d differs across builds", i)
		}
	}
}
