// Package graph builds and routes over per-snapshot network graphs: nodes
// are satellites, city terminals, grid relays and aircraft; edges are radio
// ground-satellite links (GSLs) and laser inter-satellite links (ISLs),
// weighted by propagation delay at the speed of light.
package graph

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"leosim/internal/geo"
	"leosim/internal/safe"
	"leosim/internal/telemetry"
)

// NodeKind classifies graph nodes.
type NodeKind uint8

const (
	// NodeSatellite is a constellation satellite.
	NodeSatellite NodeKind = iota
	// NodeCity is a city ground terminal (traffic source/sink + transit).
	NodeCity
	// NodeRelay is a transit-only grid relay terminal.
	NodeRelay
	// NodeAircraft is an over-water in-flight aircraft relay.
	NodeAircraft
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case NodeSatellite:
		return "sat"
	case NodeCity:
		return "city"
	case NodeRelay:
		return "relay"
	case NodeAircraft:
		return "aircraft"
	default:
		return fmt.Sprintf("node(%d)", uint8(k))
	}
}

// LinkKind classifies links.
type LinkKind uint8

const (
	// LinkGSL is a radio ground(or aircraft)-satellite link.
	LinkGSL LinkKind = iota
	// LinkISL is a laser inter-satellite link.
	LinkISL
	// LinkFiber is a terrestrial fiber link (fiber augmentation, §8).
	LinkFiber
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	switch k {
	case LinkGSL:
		return "gsl"
	case LinkISL:
		return "isl"
	case LinkFiber:
		return "fiber"
	default:
		return fmt.Sprintf("link(%d)", uint8(k))
	}
}

// Link is an undirected link between nodes A and B. Each direction has the
// full CapGbps available (full-duplex), matching how the paper assigns
// up/down-link and ISL capacities.
type Link struct {
	A, B    int32
	Kind    LinkKind
	CapGbps float64
	// OneWayMs is the propagation delay of the link.
	OneWayMs float64
}

// EdgeRef is one direction of a Link in the adjacency structure.
type EdgeRef struct {
	// To is the neighbour node.
	To int32
	// Link indexes Network.Links.
	Link int32
}

// Network is an immutable per-snapshot network graph.
type Network struct {
	// Kind and Pos describe the nodes; len(Kind) == len(Pos) == N().
	Kind []NodeKind
	Pos  []geo.Vec3
	// Name holds a human-readable label per node.
	Name []string
	// Links is the undirected link list; adjacency references it.
	Links []Link

	// Node-count metadata filled in by the Builder: nodes are laid out as
	// satellites, then cities, then relays, then aircraft.
	NumSat, NumCity, NumRelay, NumAircraft int

	// CSR adjacency, frozen from Links on first use after any mutation:
	// node v's edges are adjEdges[adjStart[v]:adjStart[v+1]], laid out
	// contiguously so the Dijkstra relax loop walks flat memory instead of
	// chasing per-node slices. adjStart has N()+1 entries.
	adjStart []int32
	adjEdges []EdgeRef
	csrValid atomic.Bool
	csrMu    sync.Mutex
	// csrNext is the counting-sort cursor scratch reused across freezes, so
	// the incremental advancer's periodic re-freezes stop allocating.
	csrNext []int32

	// epoch counts in-place mutations of this network by the incremental
	// advancer. Results computed against an earlier epoch (paths, pooled
	// search state reads) describe a topology that no longer exists.
	epoch uint64
}

// Epoch returns the network's mutation epoch. A freshly built snapshot is at
// epoch 0; every Advancer step that touches the network bumps it. Holders of
// derived results (paths, distances) across an Advance can compare epochs to
// detect staleness instead of trusting stale reads.
func (n *Network) Epoch() uint64 { return n.epoch }

// SatNode returns the node index of satellite i.
func (n *Network) SatNode(i int) int32 { return int32(i) }

// CityNode returns the node index of city i.
func (n *Network) CityNode(i int) int32 { return int32(n.NumSat + i) }

// IsGroundSide reports whether node v is any kind of terminal (city, relay
// or aircraft) as opposed to a satellite.
func (n *Network) IsGroundSide(v int32) bool { return n.Kind[v] != NodeSatellite }

// N returns the node count.
func (n *Network) N() int { return len(n.Kind) }

// AddNode appends a node and returns its index.
func (n *Network) AddNode(kind NodeKind, pos geo.Vec3, name string) int32 {
	n.Kind = append(n.Kind, kind)
	n.Pos = append(n.Pos, pos)
	n.Name = append(n.Name, name)
	n.csrValid.Store(false)
	return int32(len(n.Kind) - 1)
}

// AddLink connects a and b with the given kind and capacity; the propagation
// delay is derived from the node positions at speed c (or the fiber speed
// for fiber links). It returns the link index.
func (n *Network) AddLink(a, b int32, kind LinkKind, capGbps float64) int32 {
	dist := n.Pos[a].Distance(n.Pos[b])
	ms := dist * geo.MsPerKm
	if kind == LinkFiber {
		// Fiber follows terrestrial rights-of-way; apply the customary
		// ×1.5 path-stretch over the geodesic.
		ms = dist * 1.5 / geo.FiberSpeed * 1000
	}
	l := Link{A: a, B: b, Kind: kind, CapGbps: capGbps, OneWayMs: ms}
	idx := int32(len(n.Links))
	n.Links = append(n.Links, l)
	n.csrValid.Store(false)
	return idx
}

// RewriteLinks rebuilds the link set: fn receives each link and returns the
// (possibly modified) link plus whether to keep it. Dropped links disappear
// from the adjacency structure; kept links are re-indexed densely. This is
// the mutation primitive fault injection uses to knock out a node's links
// or degrade link capacities on a freshly built snapshot.
// The rewrite filters in place — the kept prefix reuses Links' backing
// array — so per-step re-masking on the incremental advance path does not
// allocate a link slice every step.
func (n *Network) RewriteLinks(fn func(Link) (Link, bool)) {
	kept := n.Links[:0]
	for _, l := range n.Links {
		if nl, keep := fn(l); keep {
			kept = append(kept, nl)
		}
	}
	n.Links = kept
	n.csrValid.Store(false)
}

// ensureCSR freezes the adjacency structure into CSR form if any mutation
// invalidated it. Safe for concurrent callers: the first one in rebuilds
// under a lock, everyone else observes the published layout via the atomic
// flag. Builder.At freezes eagerly so concurrent experiment workers never
// contend here.
func (n *Network) ensureCSR() {
	if n.csrValid.Load() {
		return
	}
	n.csrMu.Lock()
	defer n.csrMu.Unlock()
	if n.csrValid.Load() {
		return
	}
	// The span starts after the fast-path returns, so only real freezes —
	// once per network — are measured.
	sp := telemetry.StartStageSpan(telemetry.StageCSRFreeze)
	defer sp.End()
	// Buffers are reused across freezes when capacities allow: a network
	// that the incremental advancer re-freezes every few steps settles into
	// steady-state arrays instead of re-allocating the CSR each time.
	nn := len(n.Kind)
	start := n.csrStart(nn)
	for i := range start {
		start[i] = 0
	}
	for _, l := range n.Links {
		start[l.A+1]++
		start[l.B+1]++
	}
	n.freezeCSRLocked(start)
}

// csrStart returns the adjStart buffer resized (not zeroed) to nn+1.
func (n *Network) csrStart(nn int) []int32 {
	start := n.adjStart
	if cap(start) < nn+1 {
		start = make([]int32, nn+1)
	}
	return start[:nn+1]
}

// freezeCSRLocked finishes a CSR freeze from start, whose slot i+1 holds node
// i's degree: prefix-sums it, fills the edge array in link-index order, and
// publishes the result. Callers hold csrMu.
func (n *Network) freezeCSRLocked(start []int32) {
	nn := len(n.Kind)
	for i := 0; i < nn; i++ {
		start[i+1] += start[i]
	}
	edges := n.adjEdges
	if cap(edges) < 2*len(n.Links) {
		edges = make([]EdgeRef, 2*len(n.Links))
	} else {
		edges = edges[:2*len(n.Links)]
	}
	next := n.csrNext
	if cap(next) < nn {
		next = make([]int32, nn)
		n.csrNext = next
	} else {
		next = next[:nn]
	}
	copy(next, start[:nn])
	// Iterating Links in index order reproduces the append order the old
	// per-node slices had, so relaxation order — and with it every
	// tie-broken predecessor — is unchanged.
	for li, l := range n.Links {
		edges[next[l.A]] = EdgeRef{To: l.B, Link: int32(li)}
		next[l.A]++
		edges[next[l.B]] = EdgeRef{To: l.A, Link: int32(li)}
		next[l.B]++
	}
	n.adjStart, n.adjEdges = start, edges
	n.csrValid.Store(true)
}

// Clone returns an independent deep copy of the network with its CSR frozen.
// The incremental advancer mutates its network in place; handing a snapshot
// to anything that outlives the current step — the snapshot cache, a
// concurrent consumer — goes through Clone so later Advance calls can never
// rewrite topology under a reader.
func (n *Network) Clone() *Network {
	n.ensureCSR()
	c := &Network{
		Kind:        append([]NodeKind(nil), n.Kind...),
		Pos:         append([]geo.Vec3(nil), n.Pos...),
		Name:        append([]string(nil), n.Name...),
		Links:       append([]Link(nil), n.Links...),
		NumSat:      n.NumSat,
		NumCity:     n.NumCity,
		NumRelay:    n.NumRelay,
		NumAircraft: n.NumAircraft,
		adjStart:    append([]int32(nil), n.adjStart...),
		adjEdges:    append([]EdgeRef(nil), n.adjEdges...),
		epoch:       n.epoch,
	}
	c.csrValid.Store(true)
	return c
}

// Degree returns the number of links at node v.
func (n *Network) Degree(v int32) int {
	n.ensureCSR()
	return int(n.adjStart[v+1] - n.adjStart[v])
}

// Edges returns node v's adjacency list. The returned slice is owned by the
// network, must not be mutated, and is invalidated by AddLink/RewriteLinks.
func (n *Network) Edges(v int32) []EdgeRef {
	n.ensureCSR()
	return n.adjEdges[n.adjStart[v]:n.adjStart[v+1]]
}

// Path is a route through the network.
type Path struct {
	Nodes []int32
	// Links[i] is the link index between Nodes[i] and Nodes[i+1].
	Links []int32
	// OneWayMs is the total propagation delay.
	OneWayMs float64
}

// RTTMs returns the round-trip propagation time of the path.
func (p Path) RTTMs() float64 { return 2 * p.OneWayMs }

// Hops returns the hop count (number of links).
func (p Path) Hops() int { return len(p.Links) }

// Dijkstra computes shortest (delay) distances from src to every node.
// banned, if non-nil, marks link indices to skip. It returns per-node
// distance in ms (math.Inf(1) if unreachable) and the predecessor link per
// node (-1 at src/unreachable).
//
// This is the allocating convenience wrapper; hot loops should hold a
// pooled SearchState and call Network.Search directly.
func (n *Network) Dijkstra(src int32, banned map[int32]bool) (dist []float64, prevLink []int32) {
	return n.DijkstraExpand(src, banned, nil)
}

// DijkstraExpand generalizes Dijkstra: when expand is non-nil, edges are only
// relaxed out of nodes for which expand returns true (the source is always
// expanded). This implements transit restrictions — e.g. §6's "pure ISL
// path" model forbids ground terminals as intermediate hops, so expand
// returns false for every ground-side node.
func (n *Network) DijkstraExpand(src int32, banned map[int32]bool, expand func(int32) bool) (dist []float64, prevLink []int32) {
	st := AcquireSearch()
	defer st.Release()
	for li, b := range banned {
		if b {
			st.BanLink(li)
		}
	}
	n.Search(st, SearchSpec{Src: src, Target: NoTarget, Expand: expand})
	return st.materialize(n.N())
}

// extractPath walks predecessor links (as returned by Dijkstra) from dst
// back to src.
func (n *Network) extractPath(src, dst int32, dist []float64, prevLink []int32) (Path, bool) {
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	return n.walkPath(src, dst, func(v int32) int32 { return prevLink[v] }, dist[dst])
}

// ShortestPath returns the minimum-delay path from src to dst, or ok=false
// if disconnected.
func (n *Network) ShortestPath(src, dst int32) (Path, bool) {
	st := AcquireSearch()
	defer st.Release()
	n.Search(st, SearchSpec{Src: src, Target: dst})
	return st.Path(dst)
}

// ShortestPathSatTransit returns the minimum-delay path from src to dst that
// only transits satellites: ground-side nodes other than src may terminate
// the path but never forward traffic. This is the §6 "ISL path" model,
// which excludes GTs as intermediate hops.
func (n *Network) ShortestPathSatTransit(src, dst int32) (Path, bool) {
	st := AcquireSearch()
	defer st.Release()
	n.Search(st, SearchSpec{Src: src, Target: dst, Expand: func(v int32) bool {
		return !n.IsGroundSide(v)
	}})
	return st.Path(dst)
}

// KDisjointPaths returns up to k edge-disjoint minimum-delay paths from src
// to dst, computed by successively removing the links of each found path
// (the scheme §5 routes traffic over). Fewer than k paths are returned when
// the graph runs out of disjoint routes.
func (n *Network) KDisjointPaths(src, dst int32, k int) []Path {
	sp := telemetry.StartStageSpan(telemetry.StageKDisjoint)
	defer sp.End()
	st := AcquireSearch()
	defer st.Release()
	var out []Path
	for i := 0; i < k; i++ {
		n.Search(st, SearchSpec{Src: src, Target: dst})
		p, ok := st.Path(dst)
		if !ok {
			break
		}
		out = append(out, p)
		for _, li := range p.Links {
			st.BanLink(li)
		}
	}
	return out
}

// MultiSourceDistances runs Dijkstra from each source in parallel (bounded
// by GOMAXPROCS, panic-safe via internal/safe) and returns dist[i] for
// sources[i].
func (n *Network) MultiSourceDistances(sources []int32) [][]float64 {
	n.ensureCSR() // freeze once, before the fan-out
	out := make([][]float64, len(sources))
	g := safe.NewGroup(context.Background(), runtime.GOMAXPROCS(0))
	for i, src := range sources {
		i, src := i, src
		g.Go(func() error {
			st := AcquireSearch()
			defer st.Release()
			n.Search(st, SearchSpec{Src: src, Target: NoTarget})
			out[i] = st.materializeDist(n.N())
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		// Workers only fail by panicking; re-throw so callers' RecoverTo
		// (or the test harness) sees the original stack.
		panic(err)
	}
	return out
}

// WalkPath reconstructs the node/link sequence from dst back to src given a
// predecessor-link lookup and the already-known total delay. It is the
// exported form of the back-walk every in-package path extraction uses, for
// callers (the distance-oracle layer) that hold predecessor trees outside a
// SearchState. prevAt must return the predecessor link of a node as the
// kernel recorded it, or a negative value where no predecessor exists.
func (n *Network) WalkPath(src, dst int32, prevAt func(int32) int32, total float64) (Path, bool) {
	return n.walkPath(src, dst, prevAt, total)
}

// Components labels connected components (ignoring capacities) and returns
// the component ID per node and the component count.
func (n *Network) Components() (comp []int32, count int) {
	n.ensureCSR()
	nn := n.N()
	comp = make([]int32, nn)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	for v := 0; v < nn; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := int32(count)
		count++
		stack = append(stack[:0], int32(v))
		comp[v] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range n.adjEdges[n.adjStart[u]:n.adjStart[u+1]] {
				if comp[e.To] < 0 {
					comp[e.To] = id
					stack = append(stack, e.To)
				}
			}
		}
	}
	return comp, count
}
