package graph

import (
	"container/heap"
	"math"
	"sort"

	"leosim/internal/telemetry"
)

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing delay order, using Yen's algorithm. Unlike KDisjointPaths the
// results may share links; this supports routing studies that trade
// diversity for path quality. Fewer than k paths are returned when the graph
// has no more loopless alternatives.
func (n *Network) KShortestPaths(src, dst int32, k int) []Path {
	if k < 1 {
		return nil
	}
	sp := telemetry.StartStageSpan(telemetry.StageYen)
	defer sp.End()
	first, ok := n.ShortestPath(src, dst)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates candidateHeap
	st := AcquireSearch()
	defer st.Release()

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Each node of the previous path (except the last) spawns a spur.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootLinks := prev.Links[:i]

			// Ban links that would recreate an already-found path
			// sharing this root, and ban root nodes (except the spur) to
			// keep paths loopless — all epoch-stamped, no per-spur maps.
			st.ClearBans()
			for _, p := range paths {
				if len(p.Links) > i && equalPrefix(p.Nodes, rootNodes) {
					st.BanLink(p.Links[i])
				}
			}
			for _, v := range rootNodes[:len(rootNodes)-1] {
				st.BanNode(v)
			}

			spur, ok := n.spurPath(st, spurNode, dst)
			if !ok {
				continue
			}
			cand := concatPaths(n, rootNodes, rootLinks, spur)
			if !containsPath(paths, cand) && !containsCandidate(candidates, cand) {
				heap.Push(&candidates, cand)
			}
		}
		if candidates.Len() == 0 {
			break
		}
		paths = append(paths, heap.Pop(&candidates).(Path))
	}
	return paths
}

// spurPath is Dijkstra honouring st's banned links and blocked nodes.
func (n *Network) spurPath(st *SearchState, src, dst int32) (Path, bool) {
	if st.NodeBanned(dst) {
		return Path{}, false
	}
	n.Search(st, SearchSpec{Src: src, Target: dst})
	return st.Path(dst)
}

func equalPrefix(nodes, prefix []int32) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if nodes[i] != v {
			return false
		}
	}
	return true
}

func concatPaths(n *Network, rootNodes, rootLinks []int32, spur Path) Path {
	nodes := make([]int32, 0, len(rootNodes)+len(spur.Nodes)-1)
	nodes = append(nodes, rootNodes...)
	nodes = append(nodes, spur.Nodes[1:]...)
	links := make([]int32, 0, len(rootLinks)+len(spur.Links))
	links = append(links, rootLinks...)
	links = append(links, spur.Links...)
	total := spur.OneWayMs
	for _, li := range rootLinks {
		total += n.Links[li].OneWayMs
	}
	return Path{Nodes: nodes, Links: links, OneWayMs: total}
}

func samePath(a, b Path) bool {
	if len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}

func containsPath(paths []Path, p Path) bool {
	for _, q := range paths {
		if samePath(p, q) {
			return true
		}
	}
	return false
}

func containsCandidate(h candidateHeap, p Path) bool {
	for _, q := range h {
		if samePath(p, q) {
			return true
		}
	}
	return false
}

type candidateHeap []Path

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if h[i].OneWayMs != h[j].OneWayMs {
		return h[i].OneWayMs < h[j].OneWayMs
	}
	// Deterministic tie-break on link sequence.
	return lessLinks(h[i].Links, h[j].Links)
}
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(Path)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

func lessLinks(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// PathSetStats summarizes a set of alternative paths between one pair.
type PathSetStats struct {
	Count                  int
	MinMs, MaxMs, SpreadMs float64
	// SharedLinkFrac is the fraction of link slots shared with the best
	// path — 0 for fully disjoint alternatives.
	SharedLinkFrac float64
}

// StatsOfPaths summarizes alternatives relative to the first (best) path.
func StatsOfPaths(paths []Path) PathSetStats {
	st := PathSetStats{Count: len(paths)}
	if len(paths) == 0 {
		return st
	}
	st.MinMs = paths[0].OneWayMs
	st.MaxMs = paths[0].OneWayMs
	best := map[int32]bool{}
	for _, li := range paths[0].Links {
		best[li] = true
	}
	shared, total := 0, 0
	for _, p := range paths[1:] {
		st.MinMs = math.Min(st.MinMs, p.OneWayMs)
		st.MaxMs = math.Max(st.MaxMs, p.OneWayMs)
		for _, li := range p.Links {
			total++
			if best[li] {
				shared++
			}
		}
	}
	st.SpreadMs = st.MaxMs - st.MinMs
	if total > 0 {
		st.SharedLinkFrac = float64(shared) / float64(total)
	}
	// Keep results order-stable for callers that sort by delay.
	sort.SliceStable(paths, func(i, j int) bool { return paths[i].OneWayMs < paths[j].OneWayMs })
	return st
}
