package graph

import (
	"math"
	"testing"
	"time"

	"leosim/internal/aircraft"
	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/ground"
)

func testSetup(t *testing.T, isl bool) (*Builder, *Network) {
	t.Helper()
	c, err := constellation.New([]constellation.Shell{constellation.StarlinkPhase1()},
		constellation.WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	cities, err := ground.Cities(40)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ground.NewSegment(cities, 4, 1500)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := aircraft.NewFleet(0.3)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.ISL = isl
	b, err := NewBuilder(c, seg, fleet, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b, b.At(geo.Epoch.Add(6 * time.Hour))
}

func TestBuilderNodeLayout(t *testing.T) {
	_, n := testSetup(t, true)
	if n.NumSat != 1584 {
		t.Errorf("NumSat = %d", n.NumSat)
	}
	if n.NumCity != 40 {
		t.Errorf("NumCity = %d", n.NumCity)
	}
	if n.NumRelay == 0 || n.NumAircraft == 0 {
		t.Errorf("relays=%d aircraft=%d — both expected", n.NumRelay, n.NumAircraft)
	}
	if n.N() != n.NumSat+n.NumCity+n.NumRelay+n.NumAircraft {
		t.Errorf("node count mismatch")
	}
	for i := 0; i < n.NumSat; i++ {
		if n.Kind[i] != NodeSatellite {
			t.Fatalf("node %d should be a satellite", i)
		}
	}
	if n.Kind[n.CityNode(0)] != NodeCity {
		t.Errorf("CityNode(0) kind = %v", n.Kind[n.CityNode(0)])
	}
	if !n.IsGroundSide(n.CityNode(0)) || n.IsGroundSide(n.SatNode(0)) {
		t.Errorf("IsGroundSide misclassifies")
	}
}

func TestBuilderGSLGeometry(t *testing.T) {
	_, n := testSetup(t, false)
	sh := constellation.StarlinkPhase1()
	maxLen := sh.MaxGSLKm() + 30 // aircraft altitude slack
	gsl := 0
	for _, l := range n.Links {
		if l.Kind != LinkGSL {
			t.Fatalf("BP network has non-GSL link")
		}
		gsl++
		// One endpoint satellite, one terminal.
		if (n.Kind[l.A] == NodeSatellite) == (n.Kind[l.B] == NodeSatellite) {
			t.Fatalf("GSL between %v and %v", n.Kind[l.A], n.Kind[l.B])
		}
		d := n.Pos[l.A].Distance(n.Pos[l.B])
		if d > maxLen {
			t.Fatalf("GSL length %v km exceeds max %v", d, maxLen)
		}
		if l.CapGbps != 20 {
			t.Fatalf("GSL capacity = %v", l.CapGbps)
		}
		// Verify the elevation constraint holds exactly.
		term, sat := l.A, l.B
		if n.Kind[term] == NodeSatellite {
			term, sat = sat, term
		}
		if el := geo.Elevation(n.Pos[term], n.Pos[sat]); el < sh.MinElevationDeg-1e-6 {
			t.Fatalf("GSL below min elevation: %v", el)
		}
	}
	if gsl == 0 {
		t.Fatal("no GSLs built")
	}
}

func TestBuilderVisibilityMatchesBruteForce(t *testing.T) {
	// The spatial index must find exactly the satellites that brute-force
	// elevation checks find, for a sample of terminals.
	b, n := testSetup(t, false)
	sh := constellation.StarlinkPhase1()
	satPos := n.Pos[:n.NumSat]
	for ti := 0; ti < 10; ti++ {
		term := n.CityNode(ti)
		want := map[int32]bool{}
		for si, sp := range satPos {
			if geo.Elevation(n.Pos[term], sp) >= sh.MinElevationDeg {
				want[int32(si)] = true
			}
		}
		got := map[int32]bool{}
		for _, l := range n.Links {
			if l.A == term {
				got[l.B] = true
			} else if l.B == term {
				got[l.A] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("terminal %d: index found %d sats, brute force %d",
				ti, len(got), len(want))
		}
		for s := range want {
			if !got[s] {
				t.Fatalf("terminal %d: missed satellite %d", ti, s)
			}
		}
	}
	_ = b
}

func TestBuilderISLToggle(t *testing.T) {
	_, bp := testSetup(t, false)
	_, hy := testSetup(t, true)
	bpISL, hyISL := 0, 0
	for _, l := range bp.Links {
		if l.Kind == LinkISL {
			bpISL++
		}
	}
	for _, l := range hy.Links {
		if l.Kind == LinkISL {
			hyISL++
			if l.CapGbps != 100 {
				t.Fatalf("ISL capacity = %v", l.CapGbps)
			}
		}
	}
	if bpISL != 0 {
		t.Errorf("BP network has %d ISLs", bpISL)
	}
	if hyISL != 2*1584 {
		t.Errorf("hybrid network has %d ISLs, want %d", hyISL, 2*1584)
	}
}

func TestHybridConnectsEverything(t *testing.T) {
	_, hy := testSetup(t, true)
	comp, _ := hy.Components()
	// All satellites are one component via ISLs; all cities reach it.
	c0 := comp[0]
	for i := 0; i < hy.NumSat; i++ {
		if comp[i] != c0 {
			t.Fatalf("satellite %d outside ISL component", i)
		}
	}
	for i := 0; i < hy.NumCity; i++ {
		if comp[hy.CityNode(i)] != c0 {
			t.Errorf("city %d disconnected from constellation", i)
		}
	}
}

func TestBPDisconnectsSomeSatellites(t *testing.T) {
	// §5: with BP only, a large fraction of satellites (over oceans,
	// away from any GT) is disconnected.
	_, bp := testSetup(t, false)
	comp, _ := bp.Components()
	// Find the giant component via city 0.
	main := comp[bp.CityNode(0)]
	isolated := 0
	for i := 0; i < bp.NumSat; i++ {
		if comp[i] != main {
			isolated++
		}
	}
	if isolated == 0 {
		t.Errorf("BP graph connects every satellite — implausible")
	}
}

func TestBuilderEndToEndPath(t *testing.T) {
	_, hy := testSetup(t, true)
	// City 0 and city 1 are both attached; a path must exist and start/end
	// with GSLs.
	p, ok := hy.ShortestPath(hy.CityNode(0), hy.CityNode(1))
	if !ok {
		t.Fatal("no path between top cities on hybrid network")
	}
	if p.Hops() < 2 {
		t.Fatalf("path too short: %d hops", p.Hops())
	}
	if hy.Links[p.Links[0]].Kind != LinkGSL || hy.Links[p.Links[len(p.Links)-1]].Kind != LinkGSL {
		t.Errorf("path must start and end on radio hops")
	}
	// The RTT must beat neither the geodesic bound nor be absurd.
	a := geo.FromECEF(hy.Pos[hy.CityNode(0)])
	b := geo.FromECEF(hy.Pos[hy.CityNode(1)])
	cBound := geo.MinRTTOverSurface(a, b)
	if p.RTTMs() < cBound*0.95 {
		t.Errorf("RTT %v ms beats the geodesic c-bound %v ms", p.RTTMs(), cBound)
	}
	if p.RTTMs() > cBound*5+50 {
		t.Errorf("RTT %v ms absurdly above c-bound %v ms", p.RTTMs(), cBound)
	}
}

func TestBuilderGSOOption(t *testing.T) {
	c, _ := constellation.New([]constellation.Shell{constellation.TestShell()})
	// One equatorial city, no relays.
	seg, err := ground.NewSegment([]ground.City{{Name: "Quito-ish", Lat: 0, Lon: -78, Pop: 2}}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewBuilder(c, seg, nil, DefaultOptions())
	opts := DefaultOptions()
	opts.GSO = ground.StarlinkGSOPolicy()
	constrained, _ := NewBuilder(c, seg, nil, opts)
	// Count GSLs over a day: GSO avoidance must strictly reduce them.
	var nPlain, nCon int
	for h := 0; h < 24; h++ {
		at := geo.Epoch.Add(time.Duration(h) * time.Hour)
		nPlain += len(plain.At(at).Links)
		nCon += len(constrained.At(at).Links)
	}
	if nCon >= nPlain {
		t.Errorf("GSO constraint did not reduce equatorial GSLs: %d vs %d", nCon, nPlain)
	}
	if nCon == 0 {
		t.Errorf("GSO constraint removed all links — too aggressive")
	}
}

func TestBuilderElevationOverride(t *testing.T) {
	c, _ := constellation.New([]constellation.Shell{constellation.StarlinkPhase1()})
	cities, _ := ground.Cities(10)
	seg, _ := ground.NewSegment(cities, 0, 0)
	lo, _ := NewBuilder(c, seg, nil, DefaultOptions())
	opts := DefaultOptions()
	opts.MinElevationOverrideDeg = 40
	hi, _ := NewBuilder(c, seg, nil, opts)
	nLo := len(lo.At(geo.Epoch).Links)
	nHi := len(hi.At(geo.Epoch).Links)
	if nHi >= nLo {
		t.Errorf("40° min elevation should reduce GSLs: %d vs %d", nHi, nLo)
	}
}

func TestNewBuilderValidation(t *testing.T) {
	c, _ := constellation.New([]constellation.Shell{constellation.TestShell()})
	cities, _ := ground.Cities(5)
	seg, _ := ground.NewSegment(cities, 0, 0)
	if _, err := NewBuilder(nil, seg, nil, DefaultOptions()); err == nil {
		t.Errorf("nil constellation must fail")
	}
	if _, err := NewBuilder(c, nil, nil, DefaultOptions()); err == nil {
		t.Errorf("nil segment must fail")
	}
	bad := DefaultOptions()
	bad.GSLCapGbps = 0
	if _, err := NewBuilder(c, seg, nil, bad); err == nil {
		t.Errorf("zero GSL capacity must fail")
	}
	bad = DefaultOptions()
	bad.ISL = true
	bad.ISLCapGbps = -1
	if _, err := NewBuilder(c, seg, nil, bad); err == nil {
		t.Errorf("negative ISL capacity must fail")
	}
}

func TestSatIndexPolarTerminal(t *testing.T) {
	// A terminal near the pole must still find satellites (full-ring scan).
	c, _ := constellation.New([]constellation.Shell{constellation.PolarShell()})
	seg, _ := ground.NewSegment([]ground.City{{Name: "Alert-ish", Lat: 82, Lon: -60, Pop: 0.1}}, 0, 0)
	b, _ := NewBuilder(c, seg, nil, DefaultOptions())
	found := false
	for m := 0; m < 60 && !found; m += 5 {
		n := b.At(geo.Epoch.Add(time.Duration(m) * time.Minute))
		if len(n.Links) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("polar terminal never sees a polar-shell satellite")
	}
}

func TestGSLDelayConsistency(t *testing.T) {
	_, n := testSetup(t, false)
	for _, l := range n.Links[:min(200, len(n.Links))] {
		want := n.Pos[l.A].Distance(n.Pos[l.B]) / geo.LightSpeed * 1000
		if math.Abs(l.OneWayMs-want) > 1e-9 {
			t.Fatalf("link delay %v, want %v", l.OneWayMs, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
