package graph

import (
	"math"
	"testing"
)

// Failure injection: knock out every link of the satellites a path relies
// on and verify the hybrid network reroutes with bounded degradation —
// the +Grid mesh has no single point of failure.
func TestSatelliteFailureRerouting(t *testing.T) {
	_, hy := testSetup(t, true)
	src, dst := hy.CityNode(0), hy.CityNode(2)
	base, ok := hy.ShortestPath(src, dst)
	if !ok {
		t.Fatal("no baseline path")
	}

	// Fail every satellite on the baseline path.
	banned := map[int32]bool{}
	failed := map[int32]bool{}
	for _, v := range base.Nodes {
		if hy.Kind[v] == NodeSatellite {
			failed[v] = true
		}
	}
	if len(failed) == 0 {
		t.Fatal("baseline path uses no satellites?")
	}
	for li, l := range hy.Links {
		if failed[l.A] || failed[l.B] {
			banned[int32(li)] = true
		}
	}

	dist, prev := hy.Dijkstra(src, banned)
	if math.IsInf(dist[dst], 1) {
		t.Fatalf("failing %d satellites disconnected the pair — no mesh resilience", len(failed))
	}
	p, ok := hy.extractPath(src, dst, dist, prev)
	if !ok {
		t.Fatal("path extraction failed")
	}
	for _, v := range p.Nodes {
		if failed[v] {
			t.Fatalf("reroute still uses failed satellite %d", v)
		}
	}
	// Degradation bound: the reroute is longer but within 3× + slack of
	// the baseline (neighbouring orbits cover the same region).
	if p.OneWayMs > base.OneWayMs*3+20 {
		t.Errorf("reroute delay %v ms vs baseline %v ms — degradation too large",
			p.OneWayMs, base.OneWayMs)
	}
}

// Failing an entire orbital plane must still leave the +Grid mesh connected
// (cross-plane rings survive).
func TestPlaneFailureKeepsMeshConnected(t *testing.T) {
	b, hy := testSetup(t, true)
	// Ban all links touching plane 0 of shell 0.
	banned := map[int32]bool{}
	inPlane := map[int32]bool{}
	for _, s := range b.Const.Sats {
		if s.ShellIndex == 0 && s.Plane == 0 {
			inPlane[int32(s.Index)] = true
		}
	}
	for li, l := range hy.Links {
		if inPlane[l.A] || inPlane[l.B] {
			banned[int32(li)] = true
		}
	}
	src := hy.CityNode(0)
	dist, _ := hy.Dijkstra(src, banned)
	reached := 0
	for i := 0; i < hy.NumSat; i++ {
		if inPlane[int32(i)] {
			continue
		}
		if !math.IsInf(dist[i], 1) {
			reached++
		}
	}
	// All surviving satellites remain reachable through the mesh.
	if want := hy.NumSat - len(inPlane); reached < want {
		t.Errorf("only %d of %d surviving satellites reachable after plane failure",
			reached, want)
	}
}
