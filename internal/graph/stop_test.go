package graph

import (
	"math"
	"sync/atomic"
	"testing"

	"leosim/internal/geo"
)

// lineNet builds a path graph 0-1-2-…-(n-1) with unit-ish delays.
func lineNet(n int) *Network {
	net := &Network{}
	for i := 0; i < n; i++ {
		net.AddNode(NodeCity, geo.Vec3{X: 6371 + float64(i)}, "n")
	}
	for i := 0; i < n-1; i++ {
		net.AddLink(int32(i), int32(i+1), LinkFiber, 1)
	}
	return net
}

// A Stop hook that fires immediately abandons the search before anything
// settles, and Search reports the abandonment.
func TestSearchStopImmediately(t *testing.T) {
	n := lineNet(10)
	st := AcquireSearch()
	defer st.Release()
	done := n.Search(st, SearchSpec{Src: 0, Target: NoTarget, Stop: func() bool { return true }})
	if done {
		t.Fatal("Search with always-true Stop should report incompletion")
	}
}

// A Stop hook that never fires must not change any result relative to a
// plain search — the poll is observation only.
func TestSearchStopNeverFiringIsTransparent(t *testing.T) {
	n := lineNet(64)
	ref := AcquireSearch()
	defer ref.Release()
	if !n.Search(ref, SearchSpec{Src: 0, Target: NoTarget}) {
		t.Fatal("plain search should complete")
	}
	var polls atomic.Int64
	st := AcquireSearch()
	defer st.Release()
	done := n.Search(st, SearchSpec{Src: 0, Target: NoTarget, Stop: func() bool {
		polls.Add(1)
		return false
	}})
	if !done {
		t.Fatal("search with false Stop should complete")
	}
	if polls.Load() == 0 {
		t.Fatal("Stop was never polled")
	}
	for v := int32(0); v < int32(n.N()); v++ {
		if ref.Dist(v) != st.Dist(v) {
			t.Fatalf("node %d: dist %v != %v", v, st.Dist(v), ref.Dist(v))
		}
	}
}

// Stop firing mid-search (after the first poll window) leaves the far end
// unsettled: the kernel really did abandon work, not just report false.
func TestSearchStopMidway(t *testing.T) {
	n := lineNet(stopPollInterval * 3)
	var polls int
	st := AcquireSearch()
	defer st.Release()
	done := n.Search(st, SearchSpec{Src: 0, Target: NoTarget, Stop: func() bool {
		polls++
		return polls > 1 // allow the first window, stop at the second poll
	}})
	if done {
		t.Fatal("search should have been abandoned")
	}
	last := int32(n.N() - 1)
	if !math.IsInf(st.Dist(last), 1) {
		t.Fatalf("far node settled (dist %v) despite mid-search stop", st.Dist(last))
	}
}
