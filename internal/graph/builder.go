package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"leosim/internal/aircraft"
	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/ground"
	"leosim/internal/safe"
	"leosim/internal/telemetry"
)

// BuildOptions configure per-snapshot graph construction.
type BuildOptions struct {
	// ISL adds the constellation's inter-satellite links (hybrid
	// connectivity); without it the graph is bent-pipe only.
	ISL bool
	// GSLCapGbps is the capacity of each ground-satellite link direction
	// (paper default 20 Gbps).
	GSLCapGbps float64
	// ISLCapGbps is the capacity of each ISL direction (paper default
	// 100 Gbps).
	ISLCapGbps float64
	// GSO, when non-zero, applies the GSO arc-avoidance constraint to
	// city/relay terminals (§7).
	GSO ground.GSOPolicy
	// MinElevationOverrideDeg, when positive, replaces each shell's
	// minimum elevation angle (Fig 9 uses 40° for full deployment).
	MinElevationOverrideDeg float64
	// MaxGSLsPerSatellite, when positive, caps how many terminals a
	// satellite can serve simultaneously (closest first). §2 assumes
	// "careful frequency management alleviates interference" — i.e. no
	// cap; this knob quantifies what happens when the number of beams or
	// channels is finite. Dense relay deployments (BP) suffer first.
	MaxGSLsPerSatellite int
	// Mask, when non-nil, is applied to every built snapshot after
	// construction. Fault injection plugs in here: a realized
	// fault.Outages masks out the links of failed satellites, ground
	// sites and ISL lasers and degrades GSL capacities. The mask must be
	// deterministic and safe for concurrent snapshots (it receives a
	// network no other goroutine holds yet).
	Mask func(*Network)
}

// DefaultOptions returns the paper's §5 capacities with ISLs disabled.
func DefaultOptions() BuildOptions {
	return BuildOptions{GSLCapGbps: 20, ISLCapGbps: 100}
}

// Builder constructs per-snapshot Networks from a constellation, a ground
// segment, and optionally an aircraft fleet.
type Builder struct {
	Const *constellation.Constellation
	Seg   *ground.Segment
	Fleet *aircraft.Fleet // nil = no aircraft relays
	Opts  BuildOptions

	gsoMu sync.Mutex
	gso   []*ground.GSOChecker // per segment terminal, rebuilt on growth
}

// NewBuilder wires a builder. Fleet may be nil.
func NewBuilder(c *constellation.Constellation, seg *ground.Segment,
	fleet *aircraft.Fleet, opts BuildOptions) (*Builder, error) {
	if c == nil || seg == nil {
		return nil, fmt.Errorf("graph: constellation and segment are required")
	}
	if opts.GSLCapGbps <= 0 || (opts.ISL && opts.ISLCapGbps <= 0) {
		return nil, fmt.Errorf("graph: capacities must be positive (gsl=%v isl=%v)",
			opts.GSLCapGbps, opts.ISLCapGbps)
	}
	return &Builder{Const: c, Seg: seg, Fleet: fleet, Opts: opts}, nil
}

func (b *Builder) gsoCheckers() []*ground.GSOChecker {
	if b.Opts.GSO.SeparationDeg <= 0 {
		return nil
	}
	b.gsoMu.Lock()
	defer b.gsoMu.Unlock()
	// Rebuild when the segment grew (EnsureCity adds terminals after
	// construction); checkers for unchanged terminals are cheap enough to
	// recompute wholesale.
	if len(b.gso) != len(b.Seg.Terminals) {
		b.gso = make([]*ground.GSOChecker, len(b.Seg.Terminals))
		for i, t := range b.Seg.Terminals {
			b.gso[i] = ground.NewGSOChecker(t.Pos, b.Opts.GSO)
		}
	}
	return b.gso
}

// satCellDeg is the spatial-bucketing cell size of the satellite index,
// shared by At and the incremental advancer (whose candidate bookkeeping is
// keyed by these cells).
const satCellDeg = 4

// visibility resolves the per-shell minimum elevation angles and the
// conservative candidate-scan radius: the Earth-central angle of the widest
// shell's coverage cone, in degrees, plus slack for terminal altitude
// (aircraft). At and the incremental advancer share it verbatim so both
// derive identical link sets.
func (b *Builder) visibility() (minElev []float64, maxRadiusDeg float64) {
	minElev = make([]float64, len(b.Const.Shells))
	for i, sh := range b.Const.Shells {
		e := sh.MinElevationDeg
		if b.Opts.MinElevationOverrideDeg > 0 {
			e = b.Opts.MinElevationOverrideDeg
		}
		minElev[i] = e
		rd := geo.CoverageRadius(sh.AltitudeKm, e)/geo.EarthRadius*geo.Rad + 0.5
		if rd > maxRadiusDeg {
			maxRadiusDeg = rd
		}
	}
	return minElev, maxRadiusDeg
}

// satIndex spatially buckets satellites by sub-satellite point for fast
// visibility queries.
type satIndex struct {
	cellDeg float64
	cols    int
	rows    int
	cells   map[int][]int32
	subLat  []float64
	subLon  []float64
}

func newSatIndex(pos []geo.Vec3, cellDeg float64) *satIndex {
	idx := &satIndex{
		cellDeg: cellDeg,
		cols:    int(math.Ceil(360 / cellDeg)),
		rows:    int(math.Ceil(180 / cellDeg)),
		cells:   make(map[int][]int32),
		subLat:  make([]float64, len(pos)),
		subLon:  make([]float64, len(pos)),
	}
	for i, p := range pos {
		ll := geo.FromECEF(p)
		idx.subLat[i] = ll.Lat
		idx.subLon[i] = ll.Lon
		c := idx.cellOf(ll.Lat, ll.Lon)
		idx.cells[c] = append(idx.cells[c], int32(i))
	}
	return idx
}

func (x *satIndex) cellOf(lat, lon float64) int {
	r := int((lat + 90) / x.cellDeg)
	if r < 0 {
		r = 0
	} else if r >= x.rows {
		r = x.rows - 1
	}
	c := int((lon + 180) / x.cellDeg)
	c = ((c % x.cols) + x.cols) % x.cols
	return r*x.cols + c
}

// candidates returns satellites whose sub-satellite point lies within
// radiusDeg (central angle) of (lat, lon), conservatively (may include a few
// extras; never misses one).
func (x *satIndex) candidates(lat, lon, radiusDeg float64, out []int32) []int32 {
	out = out[:0]
	rCells := int(radiusDeg/x.cellDeg) + 1
	r0 := int((lat + 90) / x.cellDeg)
	for dr := -rCells; dr <= rCells; dr++ {
		r := r0 + dr
		if r < 0 || r >= x.rows {
			continue
		}
		cellLat := -90 + (float64(r)+0.5)*x.cellDeg
		cosLat := math.Cos(cellLat * geo.Deg)
		var cCells int
		if cosLat*float64(x.cols) <= 2*radiusDeg/x.cellDeg*2 || cosLat < 0.05 {
			cCells = x.cols / 2 // near poles scan the whole ring
		} else {
			cCells = int(radiusDeg/(x.cellDeg*cosLat)) + 1
		}
		c0 := int((lon + 180) / x.cellDeg)
		for dc := -cCells; dc <= cCells; dc++ {
			c := ((c0+dc)%x.cols + x.cols) % x.cols
			out = append(out, x.cells[r*x.cols+c]...)
		}
	}
	return out
}

// At builds the network snapshot for time t. Node layout: satellites
// [0,S), cities, relays, then over-water aircraft.
func (b *Builder) At(t time.Time) *Network {
	sp := telemetry.StartStageSpan(telemetry.StageGraphBuild)
	defer sp.End()
	satPos := b.Const.PositionsECEF(t)
	n := &Network{}
	n.NumSat = len(satPos)
	for i, p := range satPos {
		s := b.Const.Sats[i]
		n.AddNode(NodeSatellite, p, fmt.Sprintf("sat-%d/%d.%d", s.ShellIndex, s.Plane, s.Slot))
	}
	for _, term := range b.Seg.Terminals {
		kind := NodeCity
		if term.Kind == ground.KindRelay {
			kind = NodeRelay
		}
		n.AddNode(kind, term.ECEF, term.Name)
	}
	n.NumCity = b.Seg.NumCity
	n.NumRelay = b.Seg.NumRelay

	var air []aircraft.Aircraft
	if b.Fleet != nil {
		air = b.Fleet.OverWaterAt(t)
		for _, a := range air {
			n.AddNode(NodeAircraft, a.Pos.ToECEF(), a.Name)
		}
	}
	n.NumAircraft = len(air)

	minElev, maxRadiusDeg := b.visibility()

	idx := newSatIndex(satPos, satCellDeg)
	gso := b.gsoCheckers()

	// GSL edges for every terminal node (cities, relays, aircraft).
	type termJob struct {
		node int32
		pos  geo.Vec3
		ll   geo.LatLon
		gso  *ground.GSOChecker
	}
	jobs := make([]termJob, 0, len(b.Seg.Terminals)+len(air))
	for i, term := range b.Seg.Terminals {
		var ck *ground.GSOChecker
		if gso != nil {
			ck = gso[i]
		}
		jobs = append(jobs, termJob{
			node: int32(n.NumSat + i), pos: term.ECEF, ll: term.Pos, gso: ck,
		})
	}
	for i, a := range air {
		jobs = append(jobs, termJob{
			node: int32(n.NumSat + len(b.Seg.Terminals) + i),
			pos:  a.Pos.ToECEF(), ll: a.Pos,
		})
	}

	// Parallel visibility computation; link insertion is serialized after.
	type linkPair struct{ term, sat int32 }
	results := make([][]linkPair, len(jobs))
	parallelChunks(len(jobs), func(lo, hi int) {
		var cand []int32
		for j := lo; j < hi; j++ {
			job := jobs[j]
			cand = idx.candidates(job.ll.Lat, job.ll.Lon, maxRadiusDeg, cand)
			var mine []linkPair
			for _, si := range cand {
				e := minElev[b.Const.Sats[si].ShellIndex]
				if geo.Elevation(job.pos, satPos[si]) < e {
					continue
				}
				if !job.gso.Allowed(satPos[si]) {
					continue
				}
				mine = append(mine, linkPair{term: job.node, sat: si})
			}
			// Canonical per-terminal order: ascending satellite index, one
			// link per pair (the near-polar full-ring scan can report a
			// candidate twice). The incremental advancer materializes links
			// in exactly this order, so advanced and rebuilt snapshots agree
			// byte for byte — link indices included.
			sort.Slice(mine, func(a, b int) bool { return mine[a].sat < mine[b].sat })
			uniq := mine[:0]
			for k, lp := range mine {
				if k > 0 && lp.sat == mine[k-1].sat {
					continue
				}
				uniq = append(uniq, lp)
			}
			results[j] = uniq
		}
	})
	if lim := b.Opts.MaxGSLsPerSatellite; lim > 0 {
		// Keep only each satellite's lim closest terminals.
		type cand struct {
			term   int32
			distKm float64
		}
		perSat := make(map[int32][]cand)
		for _, mine := range results {
			for _, lp := range mine {
				perSat[lp.sat] = append(perSat[lp.sat], cand{
					term:   lp.term,
					distKm: n.Pos[lp.term].Distance(n.Pos[lp.sat]),
				})
			}
		}
		for sat := int32(0); sat < int32(n.NumSat); sat++ {
			cands, ok := perSat[sat]
			if !ok {
				continue
			}
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].distKm != cands[j].distKm {
					return cands[i].distKm < cands[j].distKm
				}
				return cands[i].term < cands[j].term
			})
			if len(cands) > lim {
				cands = cands[:lim]
			}
			// Deterministic link order: by terminal index.
			sort.Slice(cands, func(i, j int) bool { return cands[i].term < cands[j].term })
			for _, c := range cands {
				n.AddLink(c.term, sat, LinkGSL, b.Opts.GSLCapGbps)
			}
		}
	} else {
		for _, mine := range results {
			for _, lp := range mine {
				n.AddLink(lp.term, lp.sat, LinkGSL, b.Opts.GSLCapGbps)
			}
		}
	}

	if b.Opts.ISL {
		for _, l := range b.Const.ISLs {
			n.AddLink(int32(l.A), int32(l.B), LinkISL, b.Opts.ISLCapGbps)
		}
	}
	if b.Opts.Mask != nil {
		b.Opts.Mask(n)
	}
	// Freeze the adjacency into CSR now (after any fault mask rewrote the
	// link set) so concurrent experiment workers start routing on a
	// published layout instead of racing to build it lazily.
	n.ensureCSR()
	return n
}

// parallelChunks splits [0,n) into GOMAXPROCS-sized chunks run concurrently.
// A panic in a worker goroutine is recovered and re-thrown on the calling
// goroutine as a *safe.PanicError carrying the worker's stack, so callers
// (the experiment entry points defer safe.RecoverTo) see an error instead
// of a dead process.
func parallelChunks(n int, fn func(lo, hi int)) {
	workers := 8
	if n < workers*4 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicErr error
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicErr == nil {
						panicErr = safe.AsError(r)
					}
					panicMu.Unlock()
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicErr != nil {
		panic(panicErr)
	}
}
