package graph

import (
	"math"
	"sync"

	"leosim/internal/telemetry"
)

// SearchState is the reusable scratch memory of one shortest-path search:
// distance/predecessor arrays, the heap's backing storage, and epoch-stamped
// link/node ban masks. Acquire one with AcquireSearch, run any number of
// searches on a single network through Network.Search, and Release it when
// done; the allocation-free inner loop is what lets experiment sweeps run
// millions of searches without touching the garbage collector.
//
// A SearchState is not safe for concurrent use; acquire one per worker. It
// must be used with one network at a time — AcquireSearch clears ban masks,
// so reusing a pooled state on a different network is safe after Acquire.
type SearchState struct {
	net     *Network
	src     int32
	hasCost bool

	// dist/delay/prevLink are valid for node v iff stamp[v] == searchStamp;
	// stamping replaces the O(n) "fill with +Inf" re-initialization.
	dist     []float64
	delay    []float64
	prevLink []int32
	stamp    []uint32

	heap []heapEntry

	// linkBan/nodeBan mark a link or node banned iff the entry equals
	// banStamp. Bans persist across searches (KDisjointPaths accumulates
	// them) until ClearBans bumps the stamp — no map, no clearing loop.
	linkBan []uint32
	nodeBan []uint32

	searchStamp uint32
	banStamp    uint32
}

var searchPool = sync.Pool{New: func() interface{} { return &SearchState{} }}

// AcquireSearch returns a pooled SearchState with no bans set.
func AcquireSearch() *SearchState {
	st := searchPool.Get().(*SearchState)
	st.ClearBans()
	return st
}

// Release returns the state to the pool. The state must not be used (nor any
// value read from it) after Release.
func (st *SearchState) Release() {
	st.net = nil
	searchPool.Put(st)
}

// grow sizes the scratch arrays for a graph with nodes nodes and links
// links. Freshly grown regions hold zero stamps, which never match the
// current stamps (always ≥ 1), so grown entries start unreached/unbanned.
func (st *SearchState) grow(nodes, links int) {
	if len(st.dist) < nodes {
		st.dist = append(st.dist, make([]float64, nodes-len(st.dist))...)
		st.delay = append(st.delay, make([]float64, nodes-len(st.delay))...)
		st.prevLink = append(st.prevLink, make([]int32, nodes-len(st.prevLink))...)
		st.stamp = append(st.stamp, make([]uint32, nodes-len(st.stamp))...)
		st.nodeBan = append(st.nodeBan, make([]uint32, nodes-len(st.nodeBan))...)
	}
	if len(st.linkBan) < links {
		st.linkBan = append(st.linkBan, make([]uint32, links-len(st.linkBan))...)
	}
}

// begin starts a new search epoch on network n.
func (st *SearchState) begin(n *Network, spec SearchSpec) {
	st.net = n
	st.src = spec.Src
	st.hasCost = spec.Cost != nil
	st.grow(n.N(), len(n.Links))
	st.searchStamp++
	if st.searchStamp == 0 { // wrapped: stale stamps could collide
		for i := range st.stamp {
			st.stamp[i] = 0
		}
		st.searchStamp = 1
	}
	st.heap = st.heap[:0]
}

// ClearBans forgets every banned link and node.
func (st *SearchState) ClearBans() {
	st.banStamp++
	if st.banStamp == 0 { // wrapped: stale stamps could collide
		for i := range st.linkBan {
			st.linkBan[i] = 0
		}
		for i := range st.nodeBan {
			st.nodeBan[i] = 0
		}
		st.banStamp = 1
	}
}

// BanLink excludes link li from subsequent searches (until ClearBans).
func (st *SearchState) BanLink(li int32) {
	if int(li) >= len(st.linkBan) {
		st.linkBan = append(st.linkBan, make([]uint32, int(li)+1-len(st.linkBan))...)
	}
	st.linkBan[li] = st.banStamp
}

// BanNode excludes node v from forwarding in subsequent searches: like a
// transit restriction, v may still terminate a path but is never expanded.
func (st *SearchState) BanNode(v int32) {
	if int(v) >= len(st.nodeBan) {
		st.nodeBan = append(st.nodeBan, make([]uint32, int(v)+1-len(st.nodeBan))...)
	}
	st.nodeBan[v] = st.banStamp
}

// NodeBanned reports whether v is currently banned from forwarding.
func (st *SearchState) NodeBanned(v int32) bool {
	return int(v) < len(st.nodeBan) && st.nodeBan[v] == st.banStamp
}

// Dist returns the settled distance of node v from the last search's source
// (+Inf if unreached). Under a Cost hook this is total cost, not delay.
func (st *SearchState) Dist(v int32) float64 {
	if st.stamp[v] != st.searchStamp {
		return math.Inf(1)
	}
	return st.dist[v]
}

// Reached reports whether the last search reached node v.
func (st *SearchState) Reached(v int32) bool { return st.stamp[v] == st.searchStamp }

// PrevLink returns the predecessor link of node v in the last search (-1 at
// the source or if unreached).
func (st *SearchState) PrevLink(v int32) int32 {
	if st.stamp[v] != st.searchStamp {
		return -1
	}
	return st.prevLink[v]
}

// Path reconstructs the found route from the last search's source to dst.
func (st *SearchState) Path(dst int32) (Path, bool) {
	if st.stamp[dst] != st.searchStamp {
		return Path{}, false
	}
	total := st.dist[dst]
	if st.hasCost {
		total = st.delay[dst]
	}
	return st.net.walkPath(st.src, dst, func(v int32) int32 {
		if st.stamp[v] != st.searchStamp {
			return -1
		}
		return st.prevLink[v]
	}, total)
}

// materialize copies the search outcome into freshly allocated dist/prevLink
// slices with the legacy conventions (+Inf / -1 for unreached nodes).
func (st *SearchState) materialize(nn int) (dist []float64, prevLink []int32) {
	dist = make([]float64, nn)
	prevLink = make([]int32, nn)
	inf := math.Inf(1)
	for i := 0; i < nn; i++ {
		if st.stamp[i] == st.searchStamp {
			dist[i] = st.dist[i]
			prevLink[i] = st.prevLink[i]
		} else {
			dist[i] = inf
			prevLink[i] = -1
		}
	}
	return dist, prevLink
}

// materializeDist is materialize without the predecessor copy.
func (st *SearchState) materializeDist(nn int) []float64 {
	dist := make([]float64, nn)
	inf := math.Inf(1)
	for i := 0; i < nn; i++ {
		if st.stamp[i] == st.searchStamp {
			dist[i] = st.dist[i]
		} else {
			dist[i] = inf
		}
	}
	return dist
}

// heapEntry is one pending node in the priority queue. Entries are plain
// values in a flat slice — no interface boxing, no per-push allocation.
type heapEntry struct {
	node int32
	dist float64
}

// heapLess orders by (dist, node): the node tie-break makes settle order —
// and therefore predecessor choice on equal-distance ties — deterministic
// and identical to a linear-scan reference Dijkstra.
func heapLess(a, b heapEntry) bool {
	return a.dist < b.dist || (a.dist == b.dist && a.node < b.node)
}

// hpush pushes onto the 4-ary implicit heap. Quaternary beats binary here:
// sift-downs dominate Dijkstra's pop-heavy workload and a 4-ary heap halves
// their depth at the cost of a few extra comparisons per level, all within
// one cache line of heapEntry values.
func (st *SearchState) hpush(e heapEntry) {
	h := append(st.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !heapLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	st.heap = h
}

// hpop removes and returns the minimum entry.
func (st *SearchState) hpop() heapEntry {
	h := st.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if heapLess(h[j], h[best]) {
				best = j
			}
		}
		if !heapLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	st.heap = h
	return top
}

// SearchSpec parameterizes one run of the unified Dijkstra kernel.
type SearchSpec struct {
	// Src is the source node.
	Src int32
	// Target stops the search as soon as that node is settled (its distance
	// and predecessor are then final). Use NoTarget to settle every
	// reachable node. Note the zero value targets node 0.
	Target int32
	// Expand, when non-nil, restricts forwarding: edges are only relaxed
	// out of nodes for which Expand returns true (the source is always
	// expanded). This implements transit restrictions — e.g. §6's "pure
	// ISL path" model forbids ground terminals as intermediate hops.
	Expand func(int32) bool
	// Cost, when non-nil, replaces the link weight (default: propagation
	// delay). Returning +Inf excludes the link. The kernel then tracks
	// propagation delay separately so extracted paths still report true
	// OneWayMs; Dist returns accumulated cost.
	Cost func(int32) float64
	// Stop, when non-nil, is polled every stopPollInterval settled nodes
	// (and once before the first); returning true abandons the search,
	// making Search return false. This is how request-context cancellation
	// reaches the kernel: servers set Stop to poll ctx.Err. An abandoned
	// search leaves the state partially settled — treat its results as
	// invalid.
	Stop func() bool
}

// stopPollInterval spaces SearchSpec.Stop polls: frequent enough that a
// cancelled request dies within microseconds, rare enough that the hot
// relax loop never notices the check.
const stopPollInterval = 1024

// NoTarget makes Search settle every reachable node.
const NoTarget int32 = -1

// Search runs Dijkstra from spec.Src over the network's CSR adjacency into
// st, honouring st's link/node bans. It is the single kernel behind every
// routing entry point: plain and transit-restricted shortest paths, k
// edge-disjoint paths, Yen's algorithm, and the congestion-aware router.
// The inner loop performs no allocation and no hashing.
//
// Search reports whether it ran to completion: false means spec.Stop
// abandoned it and st holds partial, unusable results.
func (n *Network) Search(st *SearchState, spec SearchSpec) bool {
	// One span per search, outside the loop: with telemetry disabled this
	// is a single atomic load, preserving the kernel's allocation-free
	// profile (verified by BenchmarkSearch vs BENCH_telemetry.json).
	sp := telemetry.StartStageSpan(telemetry.StageSearch)
	defer sp.End()
	n.ensureCSR()
	st.begin(n, spec)
	st.dist[spec.Src] = 0
	st.prevLink[spec.Src] = -1
	if st.hasCost {
		st.delay[spec.Src] = 0
	}
	st.stamp[spec.Src] = st.searchStamp
	st.hpush(heapEntry{node: spec.Src})
	pops := 0
	for len(st.heap) > 0 {
		if spec.Stop != nil && pops%stopPollInterval == 0 && spec.Stop() {
			return false
		}
		pops++
		it := st.hpop()
		if it.dist > st.dist[it.node] {
			continue // stale entry
		}
		if it.node == spec.Target {
			break // settled: dist/prevLink for the target are final
		}
		if it.node != spec.Src {
			if st.nodeBan[it.node] == st.banStamp {
				continue
			}
			if spec.Expand != nil && !spec.Expand(it.node) {
				continue
			}
		}
		lo, hi := n.adjStart[it.node], n.adjStart[it.node+1]
		for _, e := range n.adjEdges[lo:hi] {
			if st.linkBan[e.Link] == st.banStamp {
				continue
			}
			var w float64
			if spec.Cost == nil {
				w = n.Links[e.Link].OneWayMs
			} else {
				w = spec.Cost(e.Link)
				if math.IsInf(w, 1) {
					continue
				}
			}
			nd := it.dist + w
			if st.stamp[e.To] == st.searchStamp && nd >= st.dist[e.To] {
				continue
			}
			st.dist[e.To] = nd
			st.prevLink[e.To] = e.Link
			st.stamp[e.To] = st.searchStamp
			if st.hasCost {
				st.delay[e.To] = st.delay[it.node] + n.Links[e.Link].OneWayMs
			}
			st.hpush(heapEntry{node: e.To, dist: nd})
		}
	}
	return true
}

// walkPath reconstructs the node/link sequence from dst back to src given a
// predecessor-link lookup, in one backward pass into exactly-sized slices.
// It is the one shared back-walk behind every path extraction (including the
// congestion-aware router's), with a cycle guard in case prevAt is
// inconsistent.
func (n *Network) walkPath(src, dst int32, prevAt func(int32) int32, total float64) (Path, bool) {
	hops := 0
	for at := dst; at != src; {
		li := prevAt(at)
		if li < 0 {
			return Path{}, false
		}
		if l := n.Links[li]; l.A == at {
			at = l.B
		} else {
			at = l.A
		}
		hops++
		if hops > n.N() {
			return Path{}, false // cycle guard
		}
	}
	nodes := make([]int32, hops+1)
	links := make([]int32, hops)
	at := dst
	for i := hops; i > 0; i-- {
		li := prevAt(at)
		nodes[i] = at
		links[i-1] = li
		if l := n.Links[li]; l.A == at {
			at = l.B
		} else {
			at = l.A
		}
	}
	nodes[0] = src
	return Path{Nodes: nodes, Links: links, OneWayMs: total}, true
}
