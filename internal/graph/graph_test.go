package graph

import (
	"math"
	"testing"

	"leosim/internal/geo"
)

// line builds a simple path graph 0-1-2-...-k with unit positions spaced
// so each hop has a known delay.
func lineNetwork(t *testing.T, k int) *Network {
	t.Helper()
	n := &Network{}
	for i := 0; i <= k; i++ {
		p := geo.LL(0, float64(i)).ToECEF()
		n.AddNode(NodeCity, p, "")
	}
	for i := 0; i < k; i++ {
		n.AddLink(int32(i), int32(i+1), LinkGSL, 10)
	}
	return n
}

func TestShortestPathLine(t *testing.T) {
	n := lineNetwork(t, 4)
	p, ok := n.ShortestPath(0, 4)
	if !ok {
		t.Fatal("path not found")
	}
	if p.Hops() != 4 {
		t.Errorf("hops = %d", p.Hops())
	}
	if len(p.Nodes) != 5 || p.Nodes[0] != 0 || p.Nodes[4] != 4 {
		t.Errorf("nodes = %v", p.Nodes)
	}
	// Each 1°-of-longitude hop at the Equator is ≈111.19 km → ≈0.371 ms.
	hopMs := 111.19 / geo.LightSpeed * 1000
	if math.Abs(p.OneWayMs-4*hopMs) > 0.01 {
		t.Errorf("delay = %v ms, want ≈%v", p.OneWayMs, 4*hopMs)
	}
	if math.Abs(p.RTTMs()-2*p.OneWayMs) > 1e-12 {
		t.Errorf("RTT should be twice one-way")
	}
}

func TestShortestPathPrefersLowDelay(t *testing.T) {
	// Triangle: 0-1 direct long hop vs 0-2-1 two short hops that sum
	// shorter (positions chosen so detour wins).
	n := &Network{}
	a := n.AddNode(NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(NodeCity, geo.LL(0, 40).ToECEF(), "b")
	// c sits slightly off the straight line; chord distances still make
	// a-c-b shorter than the direct a-b? No — straight line is shortest.
	// Instead make the direct link fiber (1.5× stretch, 2/3 c): slower.
	n.AddLink(a, b, LinkFiber, 10)
	c := n.AddNode(NodeSatellite, geo.LatLon{Lat: 0, Lon: 20, Alt: 550}.ToECEF(), "c")
	n.AddLink(a, c, LinkGSL, 10)
	n.AddLink(c, b, LinkGSL, 10)
	p, ok := n.ShortestPath(a, b)
	if !ok {
		t.Fatal("no path")
	}
	if p.Hops() != 2 {
		t.Errorf("should route via satellite: %v", p.Nodes)
	}
}

func TestDisconnected(t *testing.T) {
	n := lineNetwork(t, 2)
	iso := n.AddNode(NodeCity, geo.LL(10, 10).ToECEF(), "island")
	if _, ok := n.ShortestPath(0, iso); ok {
		t.Errorf("found path to isolated node")
	}
	dist, _ := n.Dijkstra(0, nil)
	if !math.IsInf(dist[iso], 1) {
		t.Errorf("distance to isolated node = %v", dist[iso])
	}
	comp, count := n.Components()
	if count != 2 {
		t.Errorf("components = %d, want 2", count)
	}
	if comp[0] == comp[iso] {
		t.Errorf("isolated node in main component")
	}
}

func TestKDisjointPaths(t *testing.T) {
	// Two node-disjoint routes between a and b via different satellites.
	n := &Network{}
	a := n.AddNode(NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(NodeCity, geo.LL(0, 30).ToECEF(), "b")
	s1 := n.AddNode(NodeSatellite, geo.LatLon{Lat: 0, Lon: 15, Alt: 550}.ToECEF(), "s1")
	s2 := n.AddNode(NodeSatellite, geo.LatLon{Lat: 8, Lon: 15, Alt: 550}.ToECEF(), "s2")
	n.AddLink(a, s1, LinkGSL, 10)
	n.AddLink(s1, b, LinkGSL, 10)
	n.AddLink(a, s2, LinkGSL, 10)
	n.AddLink(s2, b, LinkGSL, 10)
	paths := n.KDisjointPaths(a, b, 4)
	if len(paths) != 2 {
		t.Fatalf("got %d disjoint paths, want 2", len(paths))
	}
	// First path is the shorter (via s1, closer to the geodesic).
	if paths[0].OneWayMs > paths[1].OneWayMs {
		t.Errorf("paths not in increasing delay order")
	}
	// Edge-disjointness.
	used := map[int32]bool{}
	for _, p := range paths {
		for _, li := range p.Links {
			if used[li] {
				t.Fatalf("link %d reused", li)
			}
			used[li] = true
		}
	}
}

func TestKDisjointFewerThanK(t *testing.T) {
	n := lineNetwork(t, 3)
	paths := n.KDisjointPaths(0, 3, 5)
	if len(paths) != 1 {
		t.Errorf("line graph has exactly 1 disjoint path, got %d", len(paths))
	}
}

func TestDijkstraBannedLinks(t *testing.T) {
	n := lineNetwork(t, 2)
	banned := map[int32]bool{0: true}
	dist, _ := n.Dijkstra(0, banned)
	if !math.IsInf(dist[2], 1) {
		t.Errorf("banned link should disconnect: dist=%v", dist[2])
	}
}

func TestFiberLinkDelay(t *testing.T) {
	n := &Network{}
	a := n.AddNode(NodeCity, geo.LL(48.86, 2.35).ToECEF(), "paris")
	b := n.AddNode(NodeCity, geo.LL(49.44, 1.10).ToECEF(), "rouen")
	li := n.AddLink(a, b, LinkFiber, 100)
	chord := n.Pos[a].Distance(n.Pos[b])
	want := chord * 1.5 / geo.FiberSpeed * 1000
	if math.Abs(n.Links[li].OneWayMs-want) > 1e-9 {
		t.Errorf("fiber delay = %v, want %v", n.Links[li].OneWayMs, want)
	}
	// Fiber must be slower than a radio link over the same chord.
	radio := chord / geo.LightSpeed * 1000
	if n.Links[li].OneWayMs <= radio {
		t.Errorf("fiber should be slower than line-of-sight radio")
	}
}

func TestNodeLinkKindStrings(t *testing.T) {
	if NodeSatellite.String() != "sat" || NodeCity.String() != "city" ||
		NodeRelay.String() != "relay" || NodeAircraft.String() != "aircraft" {
		t.Errorf("node kind strings")
	}
	if LinkGSL.String() != "gsl" || LinkISL.String() != "isl" || LinkFiber.String() != "fiber" {
		t.Errorf("link kind strings")
	}
	if NodeKind(7).String() == "" || LinkKind(7).String() == "" {
		t.Errorf("unknown kinds should format")
	}
}

func TestMultiSourceDistances(t *testing.T) {
	n := lineNetwork(t, 3)
	d := n.MultiSourceDistances([]int32{0, 3})
	if len(d) != 2 {
		t.Fatalf("got %d results", len(d))
	}
	if d[0][3] != d[1][0] {
		t.Errorf("distance not symmetric on undirected graph")
	}
}
