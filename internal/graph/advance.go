package graph

import (
	"fmt"
	"math"
	"sort"
	"time"

	"leosim/internal/aircraft"
	"leosim/internal/geo"
	"leosim/internal/telemetry"
)

// MaxAdvanceStep is the largest forward time step Advance applies
// incrementally. Beyond it (and for any backwards step) the advancer falls
// back to a full rebuild: with most of the constellation having crossed
// index cells and most recheck deadlines expired, the delta machinery would
// redo a full visibility scan anyway, minus the clean slate.
const MaxAdvanceStep = 5 * time.Minute

// altSlackKm absorbs propagation-model altitude deviation from the nominal
// shell altitude (SGP4 short-period perturbations, e≈1e-4 eccentricity) in
// the elevation-rate bound. Kepler orbits are exactly circular; the slack
// only loosens the bound, never the correctness.
const altSlackKm = 25

// rateSafety further loosens the elevation-rate bound. Every other factor in
// the bound is already strictly conservative on its own — worst-case relative
// speed (fastest shell plus Earth rotation at padded radius) over a
// range-shrink lower bound, with the sine-space margin never exceeding the
// angular one — so this multiplier only has to absorb propagation-model drift
// beyond the circular Kepler + secular-J2 model (whose rate deviations the
// altSlackKm padding already dominates). 10% is ample; the differential suite
// exercises a full simulated day against fresh rebuilds to back it up.
const rateSafety = 1.1

// GSLChange names one ground-satellite link that appeared or disappeared
// during an Advance step.
type GSLChange struct {
	// Term is the terminal node index, Sat the satellite node index.
	Term, Sat int32
}

// Delta describes one Advance step. The slices are owned by the Advancer
// and reused; a Delta is valid until the next Advance call.
type Delta struct {
	// Epoch is the network's mutation epoch after this step.
	Epoch uint64
	// From and To bound the step.
	From, To time.Time
	// Added and Removed list the GSL edges that appeared/disappeared.
	// Empty on full-rebuild steps, where no per-edge diff is computed.
	Added, Removed []GSLChange
	// Reweighted counts links whose propagation delay was recomputed
	// (every link, each incremental step).
	Reweighted int
	// CellCrossings counts satellites whose footprint crossed an index
	// cell boundary; Rechecked counts candidate pairs whose elevation was
	// re-evaluated (the rest slept on their recheck deadlines).
	CellCrossings, Rechecked int
	// FullRebuild marks a step that rebuilt the snapshot from scratch
	// instead of advancing it; Reason says why ("large-jump",
	// "backwards-step", "aircraft-set-change", "segment-growth",
	// "gso-policy", "beam-cap").
	FullRebuild bool
	Reason      string
}

// AdvanceStats accumulate over an Advancer's lifetime.
type AdvanceStats struct {
	// Steps counts Advance calls; FullRebuilds how many fell back.
	Steps, FullRebuilds int
	// Added and Removed total the GSL edge changes across incremental
	// steps.
	Added, Removed int
	// CellCrossings and Rechecked total the per-step counters.
	CellCrossings, Rechecked int64
}

// advCand is one (terminal, satellite) candidate pair: the satellite's
// footprint cell is inside the terminal's scan region, so the pair may be
// linked. linked caches the last elevation verdict. The pair's recheck
// deadline — the UnixNano instant before which that verdict provably cannot
// flip, derived from the worst-case elevation rate — lives in the parallel
// advTerm.deadline slice: the per-step scan reads only deadlines for pairs
// still sleeping, so keeping them contiguous halves the scan's memory
// traffic.
type advCand struct {
	sat    int32
	linked bool
}

// advTerm is the advancer's per-static-terminal state.
type advTerm struct {
	node     int32
	cands    []advCand // sorted by sat
	deadline []int64   // deadline[i] is cands[i]'s recheck deadline (UnixNano)
	linked   []int32   // sats of currently linked cands, ascending (the GSL list)
	covered  []int32   // sorted cell ids of the terminal's candidate scan
	// minRecheck is the earliest deadline among cands (zero after a
	// candidate insertion); steps before it skip the terminal entirely.
	minRecheck int64
	// invNorm caches 1/|Pos[node]| — terminals never move, and the
	// sine-space elevation formula scales by it on every recheck.
	invNorm float64
}

// cellGuard is the angular margin (radians) of the trig-free same-cell test:
// a satellite at least this far inside its cached cell's boundaries provably
// maps to the same cell, so the exact (asin/atan2) recomputation is skipped.
// Float rounding in the exact path is ~1e-13 rad; 1e-9 is comfortably
// conservative and excludes only ~1 ns of simulated motion per boundary.
const cellGuard = 1e-9

// Advancer advances one snapshot network through time by per-step edge
// deltas instead of full rebuilds. It owns its Network exclusively: Advance
// mutates positions, link weights and — when visibility changed — the link
// set and CSR in place. Hand a snapshot to anything that outlives the step
// via Network.Clone.
//
// The incremental path requires options the delta bookkeeping can model;
// GSO arc avoidance and per-satellite beam caps (whose link sets couple
// terminals globally) force a full rebuild every step. Fault masks are
// supported: the canonical unmasked link set is advanced and the mask
// re-applied, reproducing Builder.At byte for byte. Masks must only rewrite
// links (fault.Outages' contract), never add nodes.
//
// An Advancer is not safe for concurrent use.
type Advancer struct {
	b   *Builder
	net *Network
	t   time.Time

	// full forces a rebuild on every step (options outside the incremental
	// model); reason labels the resulting deltas.
	full   bool
	reason string

	// stateValid marks the incremental bookkeeping as synchronized with
	// net at time t. Rebuilds invalidate it; the next incremental step
	// re-derives it lazily, so advancers used only for coarse sweeps never
	// pay for candidate bookkeeping.
	stateValid bool

	minElev      []float64
	sinMinElev   []float64 // sin of each shell's threshold, for sine-space verdicts
	invCosMin    []float64 // 1/cos of each threshold: linked-pair margin scale
	maxRadiusDeg float64
	// vMax bounds the ECEF-relative speed (km/s) of any satellite toward
	// any terminal; recheck hold times derive from it. nsPerKm is 1e9/vMax
	// — holds are conservative lower bounds, not part of the byte-identity
	// surface, and the ~1-ulp difference between multiplying by the
	// reciprocal and dividing vanishes inside the rateSafety margin, so the
	// recheck path trades the division for a multiply.
	vMax, nsPerKm float64

	// satShell is each satellite's shell index as a byte — the recheck loop
	// looks this up per expired pair, and the packed table stays cache-hot
	// where the constellation's Satellite records (interface-bearing, ~10×
	// wider) do not.
	satShell []uint8

	idx     *satIndex
	satCell []int32
	// Same-cell fast-path tables: guarded sin(latitude) bounds per index
	// row and the unit boundary direction per index column.
	rowSinLoG, rowSinHiG []float64
	colVec               [][2]float64

	nTerms    int
	terms     []advTerm
	cellTerms map[int][]int32
	// transCands caches, per ordered index-cell transition from→to, the
	// terminals whose scan region covers to but not from — exactly the
	// candidate sets a satellite crossing from→to enters (and, with the
	// roles swapped, leaves). Terminals are static while the incremental
	// state is valid, so entries never invalidate; satellites retrace the
	// same transitions step after step, so each list is filtered out of
	// cellTerms once and replayed thereafter instead of re-probing every
	// coverer's cell list on every crossing.
	transCands map[int64][]int32

	airNames   []string
	airCands   [][]int32
	airScratch []int32

	// baseLinks is the canonical unmasked link list. Without a mask,
	// net.Links aliases it; with one, net.Links is maskBuf (a masked copy).
	baseLinks []Link
	maskBuf   []Link
	// deg tracks every node's baseLinks endpoint count across edge deltas,
	// so unmasked re-freezes skip the CSR counting pass.
	deg []int32

	cand []int32

	delta Delta
	stats AdvanceStats
}

// NewAdvancer builds the snapshot at t and wraps it in an Advancer.
func (b *Builder) NewAdvancer(t time.Time) *Advancer {
	a := &Advancer{b: b, t: t, net: b.At(t)}
	switch {
	case b.Opts.GSO.SeparationDeg > 0:
		a.full, a.reason = true, "gso-policy"
	case b.Opts.MaxGSLsPerSatellite > 0:
		a.full, a.reason = true, "beam-cap"
	}
	return a
}

// Net returns the advancer's live network. It is only valid until the next
// Advance call; Clone it to keep a snapshot.
func (a *Advancer) Net() *Network { return a.net }

// Time returns the instant the network currently models.
func (a *Advancer) Time() time.Time { return a.t }

// Stats returns cumulative advance statistics.
func (a *Advancer) Stats() AdvanceStats { return a.stats }

// Advance moves the network from its current instant to t1 and returns the
// step's delta (owned by the advancer, valid until the next call). Small
// forward steps apply per-edge deltas; option constraints, aircraft-set
// changes, segment growth, backwards steps and jumps beyond MaxAdvanceStep
// fall back to a full rebuild (Delta.FullRebuild).
func (a *Advancer) Advance(t1 time.Time) *Delta {
	d := &a.delta
	*d = Delta{From: a.t, To: t1, Added: d.Added[:0], Removed: d.Removed[:0]}
	if t1.Equal(a.t) {
		d.Epoch = a.net.epoch
		return d
	}
	dt := t1.Sub(a.t)
	switch {
	case a.full:
		return a.rebuild(t1, a.reason)
	case dt < 0:
		return a.rebuild(t1, "backwards-step")
	case dt > MaxAdvanceStep:
		return a.rebuild(t1, "large-jump")
	case len(a.b.Seg.Terminals) != a.net.NumCity+a.net.NumRelay:
		return a.rebuild(t1, "segment-growth")
	}

	var air []aircraft.Aircraft
	if a.b.Fleet != nil {
		air = a.b.Fleet.OverWaterAt(t1)
		if !sameAircraft(air, a.airNamesAt()) {
			return a.rebuild(t1, "aircraft-set-change")
		}
	}
	if !a.stateValid {
		a.initState()
	}

	sp := telemetry.StartStageSpan(telemetry.StageAdvance)
	defer sp.End()
	n := a.net

	// 1. Move the satellites in place and migrate index cells. A crossing
	// updates exactly the candidate sets whose scan region gained or lost
	// the satellite's cell — the only terminals whose GSLs can appear or
	// disappear without an elevation recheck catching it below.
	a.b.Const.PositionsECEFInto(t1, n.Pos[:n.NumSat])
	membershipChanged := false
	for i := 0; i < n.NumSat; i++ {
		p := n.Pos[i]
		old := int(a.satCell[i])
		// Trig-free same-cell test: strictly inside the cached cell's
		// latitude band (compared in sine space) and longitude wedge
		// (2-D cross products against the boundary directions), each by a
		// cellGuard margin, proves cellOf would return the same cell —
		// skipping asin/atan2 for the vast majority of satellites that do
		// not cross a boundary this step. Near-boundary (and near-pole,
		// where the wedge test degenerates) satellites take the exact path.
		// Comparisons against |p|·guard run on squares (sign-aware), so the
		// fast path needs no square root either.
		rn2 := p.Dot(p)
		row := old / a.idx.cols
		if cmpSin(p.Z, rn2, a.rowSinLoG[row]) > 0 && cmpSin(p.Z, rn2, a.rowSinHiG[row]) < 0 {
			col := old - row*a.idx.cols
			lov := a.colVec[col]
			hiv := a.colVec[(col+1)%a.idx.cols]
			g2 := rn2 * (cellGuard * cellGuard)
			c1 := lov[0]*p.Y - lov[1]*p.X
			c2 := p.X*hiv[1] - p.Y*hiv[0]
			if c1 > 0 && c1*c1 > g2 && c2 > 0 && c2*c2 > g2 {
				continue
			}
		}
		ll := geo.FromECEF(p)
		a.idx.subLat[i], a.idx.subLon[i] = ll.Lat, ll.Lon
		c := a.idx.cellOf(ll.Lat, ll.Lon)
		if c == old {
			continue
		}
		d.CellCrossings++
		a.idx.move(int32(i), old, c)
		a.satCell[i] = int32(c)
		for _, ti := range a.transTerms(old, c) {
			insertCand(&a.terms[ti], int32(i))
		}
		for _, ti := range a.transTerms(c, old) {
			if wasLinked := removeCand(&a.terms[ti], int32(i)); wasLinked {
				d.Removed = append(d.Removed, GSLChange{Term: a.terms[ti].node, Sat: int32(i)})
				membershipChanged = true
			}
		}
	}

	// 2. Recheck candidate pairs whose deadline expired (fresh inserts
	// carry a zero deadline and are evaluated here too). Between deadline
	// and now the elevation cannot have drifted across the threshold, so
	// sleeping pairs keep last step's verdict exactly.
	t1ns := t1.UnixNano()
	// Loop locals keep the per-shell tables and scalars in registers across
	// the scan instead of re-loading them through the advancer each recheck.
	pos := n.Pos
	satShell := a.satShell
	sinMin := a.sinMinElev
	minElevT := a.minElev
	invCos := a.invCosMin
	nsPerKm := a.nsPerKm
	for ti := range a.terms {
		tm := &a.terms[ti]
		if tm.minRecheck > t1ns {
			continue // every pair of this terminal is still sleeping
		}
		minNext := int64(math.MaxInt64)
		obs := n.Pos[tm.node]
		dl := tm.deadline
		for ci := range dl {
			if dl[ci] > t1ns {
				if dl[ci] < minNext {
					minNext = dl[ci]
				}
				continue
			}
			cd := &tm.cands[ci]
			d.Rechecked++
			// Hand-inlined (*Advancer).checkPair: the compiler refuses
			// (cost 263 vs budget 80) and the call alone burns ~10 ns ×
			// thousands of rechecks per step. initState keeps calling the
			// named function; both must evaluate the identical expression
			// tree — the differential suites compare every verdict the
			// two produce, so any drift fails them.
			tgt := pos[cd.sat]
			shell := satShell[cd.sat]
			dv := tgt.Sub(obs)
			dn := dv.Norm()
			rx := dv.Dot(obs)*tm.invNorm - sinMin[shell]*dn
			x := rx / dn
			var linked bool
			switch {
			case x > sinBand:
				linked = true
			case x < -sinBand:
				linked = false
			default:
				linked = geo.Elevation(obs, tgt) >= minElevT[shell]
			}
			if x < 0 {
				x, rx = -x, -rx
			} else {
				x *= invCos[shell]
				rx *= invCos[shell]
			}
			var ns float64
			if x < 1 {
				ns = (rx - 0.5*rx*x) * nsPerKm
			} else {
				h := x + 0.5*x*x
				ns = dn * (h / (1 + h)) * nsPerKm
			}
			var hold int64
			if ns > 0 {
				hold = int64(ns)
			}
			dl[ci] = t1ns + hold
			if dl[ci] < minNext {
				minNext = dl[ci]
			}
			if linked != cd.linked {
				cd.linked = linked
				membershipChanged = true
				if linked {
					tm.linked = insertSorted(tm.linked, cd.sat)
					d.Added = append(d.Added, GSLChange{Term: tm.node, Sat: cd.sat})
				} else {
					tm.linked = removeSorted(tm.linked, cd.sat)
					d.Removed = append(d.Removed, GSLChange{Term: tm.node, Sat: cd.sat})
				}
			}
		}
		tm.minRecheck = minNext
	}

	// 3. Aircraft move every step, so their candidate sets are rescanned
	// wholesale (fleets are small next to the ground segment).
	airBase := n.NumSat + a.nTerms
	for ai := range air {
		node := int32(airBase + ai)
		n.Pos[node] = air[ai].Pos.ToECEF()
		list := a.scanAircraft(node, air[ai].Pos)
		if diffAirCands(d, node, a.airCands[ai], list) {
			membershipChanged = true
		}
		a.airCands[ai] = append(a.airCands[ai][:0], list...)
	}

	// 4. Weights always drift (everything moved); the link set only changed
	// if some visibility verdict flipped. Masked advances re-materialize
	// and re-mask every step — a mask may transform links arbitrarily, so
	// the masked list is always re-derived from the canonical base.
	for _, ch := range d.Added {
		a.deg[ch.Term]++
		a.deg[ch.Sat]++
	}
	for _, ch := range d.Removed {
		a.deg[ch.Term]--
		a.deg[ch.Sat]--
	}
	if membershipChanged || a.b.Opts.Mask != nil {
		if a.b.Opts.Mask != nil {
			// A mask rewrites links arbitrarily, so its degree counts are
			// unknowable here — the re-freeze keeps the counting pass.
			a.materializeLinks()
			a.maskBuf = append(a.maskBuf[:0], a.baseLinks...)
			n.Links = a.maskBuf
			n.csrValid.Store(false)
			a.b.Opts.Mask(n)
			n.ensureCSR()
		} else {
			a.materializeAndFreeze()
		}
	} else {
		for i := range n.Links {
			l := &n.Links[i]
			l.OneWayMs = n.Pos[l.A].Distance(n.Pos[l.B]) * geo.MsPerKm
		}
	}
	d.Reweighted = len(n.Links)

	a.t = t1
	n.epoch++
	d.Epoch = n.epoch
	a.stats.Steps++
	a.stats.Added += len(d.Added)
	a.stats.Removed += len(d.Removed)
	a.stats.CellCrossings += int64(d.CellCrossings)
	a.stats.Rechecked += int64(d.Rechecked)
	return d
}

// rebuild replaces the network with a fresh At build and invalidates the
// incremental bookkeeping (re-derived lazily on the next incremental step).
func (a *Advancer) rebuild(t1 time.Time, reason string) *Delta {
	telemetry.EmitEvent(nil, telemetry.CatAdvance, telemetry.SevInfo,
		"advancer full-rebuild fallback", telemetry.Str("reason", reason))
	epoch := a.net.epoch + 1
	a.net = a.b.At(t1)
	a.net.epoch = epoch
	a.t = t1
	a.stateValid = false
	d := &a.delta
	d.Epoch = epoch
	d.FullRebuild = true
	d.Reason = reason
	d.Reweighted = len(a.net.Links)
	a.stats.Steps++
	a.stats.FullRebuilds++
	return d
}

// airNamesAt returns the aircraft-name list the current network was built
// with (node layout: aircraft follow the segment terminals).
func (a *Advancer) airNamesAt() []string {
	base := a.net.NumSat + a.net.NumCity + a.net.NumRelay
	return a.net.Name[base:]
}

func sameAircraft(air []aircraft.Aircraft, names []string) bool {
	if len(air) != len(names) {
		return false
	}
	for i := range air {
		if air[i].Name != names[i] {
			return false
		}
	}
	return true
}

// initState derives the incremental bookkeeping — satellite index, per-
// terminal candidate sets, reverse cell subscriptions, the elevation-rate
// bound — from the current network at the current instant.
func (a *Advancer) initState() {
	n := a.net
	b := a.b
	a.minElev, a.maxRadiusDeg = b.visibility()
	a.sinMinElev = a.sinMinElev[:0]
	a.invCosMin = a.invCosMin[:0]
	for _, e := range a.minElev {
		a.sinMinElev = append(a.sinMinElev, math.Sin(e*geo.Deg))
		a.invCosMin = append(a.invCosMin, 1/math.Cos(e*geo.Deg))
	}
	a.idx = newSatIndex(n.Pos[:n.NumSat], satCellDeg)
	if cap(a.satCell) < n.NumSat {
		a.satCell = make([]int32, n.NumSat)
	}
	a.satCell = a.satCell[:n.NumSat]
	for i := 0; i < n.NumSat; i++ {
		a.satCell[i] = int32(a.idx.cellOf(a.idx.subLat[i], a.idx.subLon[i]))
	}

	// Same-cell fast-path tables: the guarded sine of each row's latitude
	// boundaries and the unit direction of each column's longitude boundary.
	// The guards shrink each cell by cellGuard so a satellite passing the
	// trig-free test is strictly inside it even after asin/atan2 rounding.
	if len(a.rowSinLoG) != a.idx.rows {
		a.rowSinLoG = make([]float64, a.idx.rows)
		a.rowSinHiG = make([]float64, a.idx.rows)
		for r := 0; r < a.idx.rows; r++ {
			a.rowSinLoG[r] = math.Sin((float64(r)*a.idx.cellDeg-90)*geo.Deg) + cellGuard
			a.rowSinHiG[r] = math.Sin((float64(r+1)*a.idx.cellDeg-90)*geo.Deg) - cellGuard
		}
	}
	if len(a.colVec) != a.idx.cols {
		a.colVec = make([][2]float64, a.idx.cols)
		for c := 0; c < a.idx.cols; c++ {
			s, co := math.Sincos((float64(c)*a.idx.cellDeg - 180) * geo.Deg)
			a.colVec[c] = [2]float64{co, s}
		}
	}

	// Worst-case closing speed between any satellite and any terminal: the
	// lowest shell's orbital velocity plus Earth rotation at the highest
	// shell's radius, padded by altSlackKm and rateSafety. Recheck deadlines
	// derive from it via flipDeadline.
	minAlt, maxAlt := b.Const.Shells[0].AltitudeKm, b.Const.Shells[0].AltitudeKm
	for _, sh := range b.Const.Shells[1:] {
		if sh.AltitudeKm < minAlt {
			minAlt = sh.AltitudeKm
		}
		if sh.AltitudeKm > maxAlt {
			maxAlt = sh.AltitudeKm
		}
	}
	a.vMax = (math.Sqrt(geo.EarthMu/(geo.EarthRadius+minAlt-altSlackKm)) +
		geo.EarthRotationRate*(geo.EarthRadius+maxAlt+altSlackKm)) * rateSafety
	a.nsPerKm = 1e9 / a.vMax

	if cap(a.satShell) < n.NumSat {
		a.satShell = make([]uint8, n.NumSat)
	}
	a.satShell = a.satShell[:n.NumSat]
	for i := 0; i < n.NumSat; i++ {
		a.satShell[i] = uint8(b.Const.Sats[i].ShellIndex)
	}

	a.nTerms = len(b.Seg.Terminals)
	a.terms = a.terms[:0]
	a.cellTerms = make(map[int][]int32, 4*a.nTerms)
	a.transCands = make(map[int64][]int32)
	for i, term := range b.Seg.Terminals {
		tm := advTerm{node: int32(n.NumSat + i)}
		tm.invNorm = 1 / n.Pos[tm.node].Norm()
		tm.covered = a.idx.coveredCells(term.Pos.Lat, term.Pos.Lon, a.maxRadiusDeg, nil)
		for _, c := range tm.covered {
			a.cellTerms[int(c)] = append(a.cellTerms[int(c)], int32(len(a.terms)))
		}
		a.cand = a.idx.candidates(term.Pos.Lat, term.Pos.Lon, a.maxRadiusDeg, a.cand)
		sortDedupe(&a.cand)
		for _, si := range a.cand {
			tm.cands = append(tm.cands, advCand{sat: si})
		}
		tm.deadline = make([]int64, len(tm.cands))
		a.terms = append(a.terms, tm)
	}

	// Evaluate every pair now so the candidate verdicts (and deadlines)
	// are synchronized with the network's link set.
	t0ns := a.t.UnixNano()
	for ti := range a.terms {
		tm := &a.terms[ti]
		minNext := int64(math.MaxInt64)
		tm.linked = tm.linked[:0]
		for ci := range tm.cands {
			cd := &tm.cands[ci]
			linked, hold := a.checkPair(n.Pos[tm.node], n.Pos[cd.sat], tm.invNorm, int(a.satShell[cd.sat]))
			cd.linked = linked
			if linked {
				tm.linked = append(tm.linked, cd.sat)
			}
			tm.deadline[ci] = t0ns + hold
			if tm.deadline[ci] < minNext {
				minNext = tm.deadline[ci]
			}
		}
		tm.minRecheck = minNext
	}

	a.airCands = a.airCands[:0]
	a.airNames = a.airNames[:0]
	if b.Fleet != nil {
		air := b.Fleet.OverWaterAt(a.t)
		airBase := n.NumSat + a.nTerms
		for ai := range air {
			list := a.scanAircraft(int32(airBase+ai), air[ai].Pos)
			a.airCands = append(a.airCands, append([]int32(nil), list...))
			a.airNames = append(a.airNames, air[ai].Name)
		}
	}

	// Canonical unmasked base links. Unmasked advancers adopt the network's
	// own list as the shared buffer; masked ones keep base and masked lists
	// separate (the network holds the masked copy built by At).
	if b.Opts.Mask == nil {
		a.baseLinks = n.Links
	} else {
		a.baseLinks = a.baseLinks[:0]
		a.materializeLinks()
		a.maskBuf = n.Links
	}

	if cap(a.deg) < len(n.Kind) {
		a.deg = make([]int32, len(n.Kind))
	}
	a.deg = a.deg[:len(n.Kind)]
	for i := range a.deg {
		a.deg[i] = 0
	}
	for _, l := range a.baseLinks {
		a.deg[l.A]++
		a.deg[l.B]++
	}
	a.stateValid = true
}

// cmpSin compares z against |p|·g (|p| = √rn2) without the square root:
// the sign of z − |p|·g is recovered from the operands' signs plus a
// squared-magnitude comparison. Returns >0, 0, or <0 like a three-way compare
// (0 only in the exact-tie case, which callers treat as "not strictly inside").
func cmpSin(z, rn2, g float64) int {
	zz, gg := z*z, g*g*rn2
	switch {
	case z >= 0 && g < 0:
		return 1
	case z < 0 && g >= 0:
		return -1
	case z >= 0: // g >= 0 too: larger magnitude wins
		if zz > gg {
			return 1
		} else if zz < gg {
			return -1
		}
		return 0
	default: // both negative: smaller magnitude wins
		if zz < gg {
			return 1
		} else if zz > gg {
			return -1
		}
		return 0
	}
}

// sinBand is the sine-space half-width inside which a verdict is decided by
// the exact geo.Elevation formula instead of the sine comparison. The
// combined rounding of asin, the degree conversion, and the threshold's own
// sine is below 1e-14 in sine space, so outside ±1e-12 the two predicates
// provably agree — and the band is hit with probability ~0, keeping the
// advance path byte-identical to Builder.At without its per-pair asin.
const sinBand = 1e-12

// checkPair evaluates the visibility predicate geo.Elevation(obs,tgt) ≥
// minElev[shell] without the arcsine, and bounds (in nanoseconds) how long
// the verdict provably holds.
//
// Verdict: elevation ≥ threshold iff sin(elev) ≥ sin(threshold) (both in
// [−90°,90°], where sine is monotonic). The margin x = sin(elev) −
// sin(threshold) is evaluated as (d·obs/|obs| − sin(threshold)·|d|)/|d| —
// one division instead of sinE's two. Knife-edge pairs within sinBand of
// the threshold — and degenerate zero vectors, whose comparisons go false
// through NaN — fall back to the exact formula.
//
// Hold time: the elevation drifts no faster than v/range(t) rad/s, and
// range(t) ≥ r0 − v·t, so the drift accumulated by time T is at most
// ln(r0/(r0−v·T)); solving drift = margin gives T = (r0/v)·(1 − e^−x). |x|
// lower-bounds the angular margin (asin only expands distances), and
// 1 − e^−x is lower-bounded by x − x²/2 on [0,1] (alternating series) —
// with r0·x at hand the common case costs no further division — and by
// h/(1+h), h = x + x²/2 (from e^x ≥ 1 + x + x²/2) beyond. v is the
// advancer's padded worst-case closing speed. No degenerate-geometry
// special case: r0 → 0 drives T → 0, and a NaN margin converts to a zero
// hold (recheck every step).
//
// The recheck loop in Advance carries a hand-inlined copy of this body (the
// call overhead is measurable at thousands of rechecks per step and the
// compiler's inline budget refuses a function this size); keep the two
// expression trees identical or the differential suites fail.
func (a *Advancer) checkPair(obs, tgt geo.Vec3, invNorm float64, shell int) (linked bool, holdNs int64) {
	dv := tgt.Sub(obs)
	dn := dv.Norm()
	rx := dv.Dot(obs)*invNorm - a.sinMinElev[shell]*dn // range·margin
	x := rx / dn                                       // sine-space margin
	switch {
	case x > sinBand:
		linked = true
	case x < -sinBand:
		linked = false
	default:
		linked = geo.Elevation(obs, tgt) >= a.minElev[shell]
	}
	if x < 0 {
		x, rx = -x, -rx
	} else {
		// A linked pair's elevation interval [minElev, e] lies where
		// cos ≤ cos(minElev), so the angular margin is at least
		// x/cos(minElev) — a provably longer hold for every linked pair.
		// (minElev = 90° degenerates through ∞·0 = NaN to a zero hold.)
		x *= a.invCosMin[shell]
		rx *= a.invCosMin[shell]
	}
	var ns float64
	if x < 1 {
		ns = (rx - 0.5*rx*x) * a.nsPerKm
	} else {
		h := x + 0.5*x*x
		ns = dn * (h / (1 + h)) * a.nsPerKm
	}
	if ns > 0 {
		return linked, int64(ns)
	}
	return linked, 0
}

// scanAircraft returns the sorted, deduplicated satellite list visible from
// an aircraft node (same rule Builder.At applies: candidate scan, then the
// per-shell elevation threshold; no GSO constraint for aircraft). The result
// aliases the advancer's scratch buffer.
func (a *Advancer) scanAircraft(node int32, ll geo.LatLon) []int32 {
	n := a.net
	a.cand = a.idx.candidates(ll.Lat, ll.Lon, a.maxRadiusDeg, a.cand)
	list := a.airScratch[:0]
	for _, si := range a.cand {
		if geo.Elevation(n.Pos[node], n.Pos[si]) >= a.minElev[a.b.Const.Sats[si].ShellIndex] {
			list = append(list, si)
		}
	}
	sortDedupe(&list)
	a.airScratch = list
	return list
}

// diffAirCands records GSL deltas between an aircraft's previous and new
// visible-satellite lists (both sorted) and reports whether they differ.
func diffAirCands(d *Delta, node int32, old, new []int32) bool {
	changed := false
	i, j := 0, 0
	for i < len(old) || j < len(new) {
		switch {
		case j == len(new) || (i < len(old) && old[i] < new[j]):
			d.Removed = append(d.Removed, GSLChange{Term: node, Sat: old[i]})
			changed = true
			i++
		case i == len(old) || new[j] < old[i]:
			d.Added = append(d.Added, GSLChange{Term: node, Sat: new[j]})
			changed = true
			j++
		default:
			i++
			j++
		}
	}
	return changed
}

// materializeLinks rewrites baseLinks as the canonical link list for the
// current positions and candidate verdicts: per terminal in node order, its
// linked satellites ascending, then aircraft, then ISLs — exactly the order
// (and delay arithmetic) of Builder.At after its per-terminal sort.
func (a *Advancer) materializeLinks() {
	n := a.net
	b := a.b
	links := a.baseLinks[:0]
	for ti := range a.terms {
		tm := &a.terms[ti]
		pt := n.Pos[tm.node]
		for _, sat := range tm.linked {
			links = append(links, Link{
				A: tm.node, B: sat, Kind: LinkGSL, CapGbps: b.Opts.GSLCapGbps,
				OneWayMs: pt.Distance(n.Pos[sat]) * geo.MsPerKm,
			})
		}
	}
	airBase := n.NumSat + a.nTerms
	for ai := range a.airCands {
		node := int32(airBase + ai)
		for _, si := range a.airCands[ai] {
			links = append(links, Link{
				A: node, B: si, Kind: LinkGSL, CapGbps: b.Opts.GSLCapGbps,
				OneWayMs: n.Pos[node].Distance(n.Pos[si]) * geo.MsPerKm,
			})
		}
	}
	if b.Opts.ISL {
		for _, l := range b.Const.ISLs {
			ia, ib := int32(l.A), int32(l.B)
			links = append(links, Link{
				A: ia, B: ib, Kind: LinkISL, CapGbps: b.Opts.ISLCapGbps,
				OneWayMs: n.Pos[ia].Distance(n.Pos[ib]) * geo.MsPerKm,
			})
		}
	}
	a.baseLinks = links
}

// materializeAndFreeze rebuilds the canonical link list and the network's
// CSR in one pass. The advancer's maintained degree counts give the CSR
// prefix sums up front, so each link's two edge slots are written the
// moment the link is appended — in link-index order, exactly the order
// freezeCSRLocked's fill pass produces — and the separate two-endpoint
// traversal over the finished link list disappears. Unmasked advances only:
// a mask rewrites links arbitrarily, so masked steps re-materialize,
// re-count and re-freeze instead.
func (a *Advancer) materializeAndFreeze() {
	n := a.net
	b := a.b
	n.csrMu.Lock()
	defer n.csrMu.Unlock()
	sp := telemetry.StartStageSpan(telemetry.StageCSRFreeze)
	defer sp.End()

	nn := len(n.Kind)
	start := n.csrStart(nn)
	start[0] = 0
	copy(start[1:], a.deg[:nn])
	for i := 0; i < nn; i++ {
		start[i+1] += start[i]
	}
	edges := n.adjEdges
	if cap(edges) < int(start[nn]) {
		edges = make([]EdgeRef, start[nn])
	} else {
		edges = edges[:start[nn]]
	}
	next := n.csrNext
	if cap(next) < nn {
		next = make([]int32, nn)
		n.csrNext = next
	} else {
		next = next[:nn]
	}
	copy(next, start[:nn])

	pos := n.Pos
	gslCap := b.Opts.GSLCapGbps
	links := a.baseLinks[:0]
	for ti := range a.terms {
		tm := &a.terms[ti]
		tn := tm.node
		pt := pos[tn]
		for _, sat := range tm.linked {
			li := int32(len(links))
			links = append(links, Link{
				A: tn, B: sat, Kind: LinkGSL, CapGbps: gslCap,
				OneWayMs: pt.Distance(pos[sat]) * geo.MsPerKm,
			})
			edges[next[tn]] = EdgeRef{To: sat, Link: li}
			next[tn]++
			edges[next[sat]] = EdgeRef{To: tn, Link: li}
			next[sat]++
		}
	}
	airBase := n.NumSat + a.nTerms
	for ai := range a.airCands {
		node := int32(airBase + ai)
		pa := pos[node]
		for _, si := range a.airCands[ai] {
			li := int32(len(links))
			links = append(links, Link{
				A: node, B: si, Kind: LinkGSL, CapGbps: gslCap,
				OneWayMs: pa.Distance(pos[si]) * geo.MsPerKm,
			})
			edges[next[node]] = EdgeRef{To: si, Link: li}
			next[node]++
			edges[next[si]] = EdgeRef{To: node, Link: li}
			next[si]++
		}
	}
	if b.Opts.ISL {
		islCap := b.Opts.ISLCapGbps
		for _, l := range b.Const.ISLs {
			ia, ib := int32(l.A), int32(l.B)
			li := int32(len(links))
			links = append(links, Link{
				A: ia, B: ib, Kind: LinkISL, CapGbps: islCap,
				OneWayMs: pos[ia].Distance(pos[ib]) * geo.MsPerKm,
			})
			edges[next[ia]] = EdgeRef{To: ib, Link: li}
			next[ia]++
			edges[next[ib]] = EdgeRef{To: ia, Link: li}
			next[ib]++
		}
	}
	a.baseLinks = links
	n.Links = links
	n.adjStart, n.adjEdges = start, edges
	n.csrValid.Store(true)
}

// move migrates one satellite between index cells (order within a cell is
// irrelevant: per-terminal candidate lists are kept sorted).
func (x *satIndex) move(sat int32, from, to int) {
	cell := x.cells[from]
	for i, s := range cell {
		if s == sat {
			cell[i] = cell[len(cell)-1]
			x.cells[from] = cell[:len(cell)-1]
			break
		}
	}
	x.cells[to] = append(x.cells[to], sat)
}

// coveredCells lists (sorted, deduplicated) the index cells candidates()
// scans for a point — the terminal's static subscription set. It must
// mirror candidates()'s iteration exactly: candidate membership is defined
// as "the satellite's cell is in this set".
func (x *satIndex) coveredCells(lat, lon, radiusDeg float64, out []int32) []int32 {
	out = out[:0]
	rCells := int(radiusDeg/x.cellDeg) + 1
	r0 := int((lat + 90) / x.cellDeg)
	for dr := -rCells; dr <= rCells; dr++ {
		r := r0 + dr
		if r < 0 || r >= x.rows {
			continue
		}
		cellLat := -90 + (float64(r)+0.5)*x.cellDeg
		cosLat := math.Cos(cellLat * geo.Deg)
		var cCells int
		if cosLat*float64(x.cols) <= 2*radiusDeg/x.cellDeg*2 || cosLat < 0.05 {
			cCells = x.cols / 2
		} else {
			cCells = int(radiusDeg/(x.cellDeg*cosLat)) + 1
		}
		c0 := int((lon + 180) / x.cellDeg)
		for dc := -cCells; dc <= cCells; dc++ {
			c := ((c0+dc)%x.cols + x.cols) % x.cols
			out = append(out, int32(r*x.cols+c))
		}
	}
	sortDedupe(&out)
	return out
}

// lowerBound returns the first index i with s[i] >= v. Hand-rolled
// sort.Search: the per-probe closure call is measurable in the crossing
// bookkeeping, which probes tiny per-terminal slices thousands of times a
// step, and this form inlines.
func lowerBound(s []int32, v int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBoundCand is lowerBound over a candidate list ordered by satellite.
func lowerBoundCand(c []advCand, sat int32) int {
	lo, hi := 0, len(c)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c[mid].sat < sat {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func containsCell(covered []int32, cell int32) bool {
	i := lowerBound(covered, cell)
	return i < len(covered) && covered[i] == cell
}

// transTerms returns the terminals whose scan region covers cell `to` but
// not cell `from` — the candidate sets gained by a satellite crossing
// from→to, and (called with the arguments swapped) the ones lost. Computed
// on first use per ordered pair and cached for the advancer's lifetime;
// terminal scan regions are static, so replay is exact. Works for any cell
// pair, so multi-cell jumps within MaxAdvanceStep need no special case.
func (a *Advancer) transTerms(from, to int) []int32 {
	key := int64(from)<<32 | int64(uint32(to))
	if l, ok := a.transCands[key]; ok {
		return l
	}
	l := []int32{}
	for _, ti := range a.cellTerms[to] {
		if !containsCell(a.terms[ti].covered, int32(from)) {
			l = append(l, ti)
		}
	}
	a.transCands[key] = l
	return l
}

// insertCand adds a candidate pair (no-op if present) with an immediate
// recheck deadline, keeping the list sorted by satellite. The terminal's
// min-deadline gate resets so the recheck loop visits the new pair this step.
func insertCand(tm *advTerm, sat int32) {
	i := lowerBoundCand(tm.cands, sat)
	if i < len(tm.cands) && tm.cands[i].sat == sat {
		return
	}
	tm.cands = append(tm.cands, advCand{})
	copy(tm.cands[i+1:], tm.cands[i:])
	tm.cands[i] = advCand{sat: sat}
	tm.deadline = append(tm.deadline, 0)
	copy(tm.deadline[i+1:], tm.deadline[i:])
	tm.deadline[i] = 0
	tm.minRecheck = 0
}

// removeCand drops a candidate pair (and its GSL, if linked), reporting
// whether it was linked.
func removeCand(tm *advTerm, sat int32) bool {
	i := lowerBoundCand(tm.cands, sat)
	if i >= len(tm.cands) || tm.cands[i].sat != sat {
		return false
	}
	wasLinked := tm.cands[i].linked
	tm.cands = append(tm.cands[:i], tm.cands[i+1:]...)
	tm.deadline = append(tm.deadline[:i], tm.deadline[i+1:]...)
	if wasLinked {
		tm.linked = removeSorted(tm.linked, sat)
	}
	return wasLinked
}

// insertSorted adds v to an ascending slice (no-op if present).
func insertSorted(s []int32, v int32) []int32 {
	i := lowerBound(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeSorted drops v from an ascending slice (no-op if absent).
func removeSorted(s []int32, v int32) []int32 {
	i := lowerBound(s, v)
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// sortDedupe sorts an int32 slice ascending and removes duplicates in
// place (allocation-free; the advance hot path calls it per aircraft).
func sortDedupe(s *[]int32) {
	v := *s
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	out := v[:0]
	for i, x := range v {
		if i > 0 && x == v[i-1] {
			continue
		}
		out = append(out, x)
	}
	*s = out
}

// String summarizes a delta for logs.
func (d *Delta) String() string {
	if d.FullRebuild {
		return fmt.Sprintf("delta epoch=%d full-rebuild (%s)", d.Epoch, d.Reason)
	}
	return fmt.Sprintf("delta epoch=%d +%d/-%d gsl, %d reweighted, %d crossings, %d rechecked",
		d.Epoch, len(d.Added), len(d.Removed), d.Reweighted, d.CellCrossings, d.Rechecked)
}
