package graph

import (
	"testing"

	"leosim/internal/geo"
)

// diamond: a→b with three routes of increasing delay:
// direct via s1 (short), via s2 (medium), via s3 (long).
func diamondNet() (*Network, int32, int32) {
	n := &Network{}
	a := n.AddNode(NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(NodeCity, geo.LL(0, 30).ToECEF(), "b")
	s1 := n.AddNode(NodeSatellite, geo.LatLon{Lat: 1, Lon: 15, Alt: 550}.ToECEF(), "s1")
	s2 := n.AddNode(NodeSatellite, geo.LatLon{Lat: 8, Lon: 15, Alt: 550}.ToECEF(), "s2")
	s3 := n.AddNode(NodeSatellite, geo.LatLon{Lat: 16, Lon: 15, Alt: 550}.ToECEF(), "s3")
	for _, s := range []int32{s1, s2, s3} {
		n.AddLink(a, s, LinkGSL, 20)
		n.AddLink(s, b, LinkGSL, 20)
	}
	return n, a, b
}

func TestKShortestOrdering(t *testing.T) {
	n, a, b := diamondNet()
	paths := n.KShortestPaths(a, b, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].OneWayMs < paths[i-1].OneWayMs {
			t.Fatalf("paths out of order: %v then %v", paths[i-1].OneWayMs, paths[i].OneWayMs)
		}
	}
	// First equals the plain shortest path.
	best, _ := n.ShortestPath(a, b)
	if !samePath(paths[0], best) {
		t.Errorf("first Yen path is not the shortest path")
	}
	// All distinct.
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if samePath(paths[i], paths[j]) {
				t.Fatalf("duplicate paths %d and %d", i, j)
			}
		}
	}
}

func TestKShortestExhaustsAlternatives(t *testing.T) {
	n, a, b := diamondNet()
	paths := n.KShortestPaths(a, b, 10)
	// Only 3 loopless simple routes exist in the diamond.
	if len(paths) != 3 {
		t.Errorf("got %d paths, want 3", len(paths))
	}
}

func TestKShortestSharedLinks(t *testing.T) {
	// A graph where the 2nd-shortest path shares the first hop with the
	// best one — Yen must find it, KDisjointPaths must not.
	n := &Network{}
	a := n.AddNode(NodeCity, geo.LL(0, 0).ToECEF(), "a")
	m := n.AddNode(NodeSatellite, geo.LatLon{Lat: 0, Lon: 10, Alt: 550}.ToECEF(), "m")
	b := n.AddNode(NodeCity, geo.LL(0, 30).ToECEF(), "b")
	x := n.AddNode(NodeSatellite, geo.LatLon{Lat: 6, Lon: 20, Alt: 550}.ToECEF(), "x")
	n.AddLink(a, m, LinkGSL, 20) // the only exit from a
	n.AddLink(m, b, LinkGSL, 20)
	n.AddLink(m, x, LinkISL, 100)
	n.AddLink(x, b, LinkGSL, 20)
	yen := n.KShortestPaths(a, b, 2)
	if len(yen) != 2 {
		t.Fatalf("yen found %d paths, want 2", len(yen))
	}
	if yen[1].Links[0] != yen[0].Links[0] {
		t.Errorf("second path should share the first hop")
	}
	disjoint := n.KDisjointPaths(a, b, 2)
	if len(disjoint) != 1 {
		t.Errorf("disjoint should find only 1 path, got %d", len(disjoint))
	}
}

func TestKShortestLoopless(t *testing.T) {
	n, a, b := diamondNet()
	for _, p := range n.KShortestPaths(a, b, 5) {
		seen := map[int32]bool{}
		for _, v := range p.Nodes {
			if seen[v] {
				t.Fatalf("loop through node %d in %v", v, p.Nodes)
			}
			seen[v] = true
		}
	}
}

func TestKShortestEdgeCases(t *testing.T) {
	n, a, b := diamondNet()
	if got := n.KShortestPaths(a, b, 0); got != nil {
		t.Errorf("k=0 should return nil")
	}
	iso := n.AddNode(NodeCity, geo.LL(50, 50).ToECEF(), "island")
	if got := n.KShortestPaths(a, iso, 3); got != nil {
		t.Errorf("unreachable target should return nil")
	}
	// Path to self: Dijkstra yields the empty path.
	self := n.KShortestPaths(a, a, 2)
	if len(self) == 0 || self[0].Hops() != 0 {
		t.Errorf("self path should be empty: %+v", self)
	}
}

func TestStatsOfPaths(t *testing.T) {
	n, a, b := diamondNet()
	paths := n.KShortestPaths(a, b, 3)
	st := StatsOfPaths(paths)
	if st.Count != 3 {
		t.Errorf("count = %d", st.Count)
	}
	if st.SpreadMs <= 0 {
		t.Errorf("spread = %v", st.SpreadMs)
	}
	if st.MinMs != paths[0].OneWayMs {
		t.Errorf("min = %v, want %v", st.MinMs, paths[0].OneWayMs)
	}
	// Diamond alternatives are fully disjoint from the best.
	if st.SharedLinkFrac != 0 {
		t.Errorf("shared fraction = %v, want 0", st.SharedLinkFrac)
	}
	if StatsOfPaths(nil).Count != 0 {
		t.Errorf("empty stats should be zero")
	}
}

func TestKShortestOnBuilderNetwork(t *testing.T) {
	// Integration: Yen on a real hybrid snapshot returns ordered,
	// loopless alternatives.
	_, hy := testSetup(t, true)
	src, dst := hy.CityNode(0), hy.CityNode(1)
	paths := hy.KShortestPaths(src, dst, 4)
	if len(paths) < 2 {
		t.Fatalf("only %d alternatives on a hybrid snapshot", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].OneWayMs+1e-9 < paths[i-1].OneWayMs {
			t.Fatalf("ordering violated")
		}
	}
}
