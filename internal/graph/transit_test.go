package graph

import (
	"testing"

	"leosim/internal/geo"
)

func TestShortestPathSatTransit(t *testing.T) {
	// a — s1 — r — s2 — b with an ISL s1—s2: the unrestricted shortest
	// path may bounce through relay r, but the satellite-transit-only
	// variant must stay in space.
	n := &Network{}
	s1 := n.AddNode(NodeSatellite, geo.LatLon{Lat: 0, Lon: 8, Alt: 550}.ToECEF(), "s1")
	s2 := n.AddNode(NodeSatellite, geo.LatLon{Lat: 0, Lon: 22, Alt: 550}.ToECEF(), "s2")
	n.NumSat = 2
	a := n.AddNode(NodeCity, geo.LL(0, 0).ToECEF(), "a")
	r := n.AddNode(NodeRelay, geo.LL(0, 15).ToECEF(), "r")
	b := n.AddNode(NodeCity, geo.LL(0, 30).ToECEF(), "b")
	n.AddLink(a, s1, LinkGSL, 20)
	n.AddLink(s1, r, LinkGSL, 20)
	n.AddLink(r, s2, LinkGSL, 20)
	n.AddLink(s2, b, LinkGSL, 20)
	n.AddLink(s1, s2, LinkISL, 100)

	unrestricted, ok := n.ShortestPath(a, b)
	if !ok {
		t.Fatal("no unrestricted path")
	}
	sat, ok := n.ShortestPathSatTransit(a, b)
	if !ok {
		t.Fatal("no satellite-transit path")
	}
	for _, v := range sat.Nodes[1 : len(sat.Nodes)-1] {
		if n.IsGroundSide(v) {
			t.Fatalf("sat-transit path crosses ground node %d", v)
		}
	}
	// The bounce through r is shorter in pure delay (it hugs the
	// geodesic), so the restriction must cost delay here.
	if sat.OneWayMs < unrestricted.OneWayMs-1e-9 {
		t.Errorf("restricted path cannot be faster")
	}

	// Degree/Edges accessors.
	if n.Degree(s1) != 3 {
		t.Errorf("deg(s1) = %d", n.Degree(s1))
	}
	if len(n.Edges(s1)) != 3 {
		t.Errorf("edges(s1) = %d", len(n.Edges(s1)))
	}
	for _, e := range n.Edges(a) {
		if e.To != s1 {
			t.Errorf("a's only neighbour should be s1")
		}
	}

	// If the destination's only access is via a ground bounce, the
	// sat-transit variant reports unreachable.
	c := n.AddNode(NodeCity, geo.LL(5, 45).ToECEF(), "c")
	r2 := n.AddNode(NodeRelay, geo.LL(0, 38).ToECEF(), "r2")
	s3 := n.AddNode(NodeSatellite, geo.LatLon{Lat: 0, Lon: 42, Alt: 550}.ToECEF(), "s3")
	n.AddLink(s2, r2, LinkGSL, 20) // reachable only by bouncing at r2
	n.AddLink(r2, s3, LinkGSL, 20)
	n.AddLink(s3, c, LinkGSL, 20)
	if _, ok := n.ShortestPathSatTransit(a, c); ok {
		t.Errorf("c requires a ground bounce; sat-transit must fail")
	}
	if _, ok := n.ShortestPath(a, c); !ok {
		t.Errorf("c reachable with bounces")
	}
}
