package graph

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"leosim/internal/geo"
)

// This file checks the allocation-free kernel against a deliberately naive
// reference Dijkstra (linear scan, no heap, no stamping, map-based bans) on
// randomized graphs. Link weights are quantized to small integers so
// equal-distance ties are common: the comparison is exact — distances,
// predecessor links, and extracted paths must be bit-identical, which pins
// down the kernel's (dist, node) tie-break as well as its correctness.

// naiveDijkstra mirrors the kernel's semantics with O(n²) linear scans:
// settle the unsettled reached node with minimal (dist, node); a settled
// non-source node forwards only if it is not banned and expand allows it;
// relaxation walks the link list in index order and accepts strict
// improvements only.
func naiveDijkstra(n *Network, src, target int32, bannedLinks, bannedNodes map[int32]bool,
	expand func(int32) bool, cost func(int32) float64) (dist []float64, prev []int32) {
	nn := n.N()
	dist = make([]float64, nn)
	prev = make([]int32, nn)
	settled := make([]bool, nn)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	for {
		v := int32(-1)
		for u := int32(0); u < int32(nn); u++ {
			if settled[u] || math.IsInf(dist[u], 1) {
				continue
			}
			if v < 0 || dist[u] < dist[v] {
				v = u
			}
		}
		if v < 0 {
			break
		}
		settled[v] = true
		if v == target {
			break
		}
		if v != src {
			if bannedNodes[v] {
				continue
			}
			if expand != nil && !expand(v) {
				continue
			}
		}
		for li := range n.Links {
			l := n.Links[li]
			var to int32
			switch v {
			case l.A:
				to = l.B
			case l.B:
				to = l.A
			default:
				continue
			}
			if bannedLinks[int32(li)] {
				continue
			}
			w := l.OneWayMs
			if cost != nil {
				w = cost(int32(li))
				if math.IsInf(w, 1) {
					continue
				}
			}
			if nd := dist[v] + w; nd < dist[to] {
				dist[to] = nd
				prev[to] = int32(li)
			}
		}
	}
	return dist, prev
}

// randomNet builds a connected random graph with quantized weights (1–4 ms in
// 0.5 ms steps) so shortest paths tie constantly. Roughly a third of the
// nodes are ground-side, exercising transit restrictions.
func randomNet(r *rand.Rand, nodes, extraLinks int) *Network {
	n := &Network{}
	for i := 0; i < nodes; i++ {
		kind := NodeSatellite
		if r.Intn(3) == 0 {
			kind = NodeCity
		}
		n.AddNode(kind, geo.Vec3{}, "")
	}
	addW := func(a, b int32, w float64) {
		n.Links = append(n.Links, Link{A: a, B: b, Kind: LinkGSL, CapGbps: 1 + r.Float64()*4, OneWayMs: w})
		n.csrValid.Store(false)
	}
	weight := func() float64 { return 1 + 0.5*float64(r.Intn(7)) }
	// A random spanning tree keeps the graph connected …
	for v := int32(1); v < int32(nodes); v++ {
		addW(v, int32(r.Intn(int(v))), weight())
	}
	// … plus extra random links (parallel links allowed — the kernel must
	// handle them, they arise from multi-beam GSLs).
	for i := 0; i < extraLinks; i++ {
		a, b := int32(r.Intn(nodes)), int32(r.Intn(nodes))
		if a == b {
			continue
		}
		addW(a, b, weight())
	}
	return n
}

func randomBans(r *rand.Rand, n *Network, frac float64) map[int32]bool {
	banned := map[int32]bool{}
	for li := range n.Links {
		if r.Float64() < frac {
			banned[int32(li)] = true
		}
	}
	return banned
}

func compareAll(t *testing.T, n *Network, dist, wantDist []float64, prev, wantPrev []int32, tag string) {
	t.Helper()
	for v := range dist {
		if dist[v] != wantDist[v] {
			t.Fatalf("%s: dist[%d] = %v, reference %v", tag, v, dist[v], wantDist[v])
		}
		if prev[v] != wantPrev[v] {
			t.Fatalf("%s: prevLink[%d] = %d, reference %d (dist %v)", tag, v, prev[v], wantPrev[v], dist[v])
		}
	}
}

func TestDifferentialDijkstra(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := randomNet(r, 30+r.Intn(40), 80)
		src := int32(r.Intn(n.N()))
		banned := randomBans(r, n, 0.15)

		dist, prev := n.Dijkstra(src, banned)
		wantDist, wantPrev := naiveDijkstra(n, src, NoTarget, banned, nil, nil, nil)
		compareAll(t, n, dist, wantDist, prev, wantPrev, "banned")

		// Same search through a reused state: stamping must fully isolate
		// consecutive epochs.
		st := AcquireSearch()
		for li := range banned {
			st.BanLink(li)
		}
		for rep := 0; rep < 3; rep++ {
			n.Search(st, SearchSpec{Src: src, Target: NoTarget})
			gotDist, gotPrev := st.materialize(n.N())
			compareAll(t, n, gotDist, wantDist, gotPrev, wantPrev, "reused state")
		}
		st.Release()
	}
}

func TestDifferentialExpand(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := randomNet(r, 40, 90)
		src := int32(r.Intn(n.N()))
		expand := func(v int32) bool { return !n.IsGroundSide(v) }

		dist, prev := n.DijkstraExpand(src, nil, expand)
		wantDist, wantPrev := naiveDijkstra(n, src, NoTarget, nil, nil, expand, nil)
		compareAll(t, n, dist, wantDist, prev, wantPrev, "sat-transit")

		// The restricted search must agree with ShortestPathSatTransit's
		// extracted route hop for hop.
		for dst := int32(0); dst < int32(n.N()); dst++ {
			p, ok := n.ShortestPathSatTransit(src, dst)
			wp, wok := n.extractPath(src, dst, wantDist, wantPrev)
			if ok != wok {
				t.Fatalf("seed %d: sat-transit %d→%d reachable=%v, reference %v", seed, src, dst, ok, wok)
			}
			if ok && !samePath(p, wp) {
				t.Fatalf("seed %d: sat-transit path %d→%d = %v, reference %v", seed, src, dst, p.Links, wp.Links)
			}
		}
	}
}

func TestDifferentialNodeBans(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := randomNet(r, 35, 70)
		src := int32(r.Intn(n.N()))
		bannedNodes := map[int32]bool{}
		for v := int32(0); v < int32(n.N()); v++ {
			if v != src && r.Intn(5) == 0 {
				bannedNodes[v] = true
			}
		}

		st := AcquireSearch()
		for v := range bannedNodes {
			st.BanNode(v)
		}
		n.Search(st, SearchSpec{Src: src, Target: NoTarget})
		dist, prev := st.materialize(n.N())
		st.Release()

		wantDist, wantPrev := naiveDijkstra(n, src, NoTarget, nil, bannedNodes, nil, nil)
		compareAll(t, n, dist, wantDist, prev, wantPrev, "node bans")
	}
}

func TestDifferentialKDisjoint(t *testing.T) {
	for seed := int64(300); seed < 315; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := randomNet(r, 40, 100)
		src, dst := int32(r.Intn(n.N())), int32(r.Intn(n.N()))
		if src == dst {
			continue
		}
		got := n.KDisjointPaths(src, dst, 4)

		// Reference: successive naive searches, banning each found path's
		// links — the exact peeling KDisjointPaths performs.
		banned := map[int32]bool{}
		var want []Path
		for i := 0; i < 4; i++ {
			wd, wp := naiveDijkstra(n, src, dst, banned, nil, nil, nil)
			p, ok := n.extractPath(src, dst, wd, wp)
			if !ok {
				break
			}
			want = append(want, p)
			for _, li := range p.Links {
				banned[li] = true
			}
		}

		if len(got) != len(want) {
			t.Fatalf("seed %d: KDisjointPaths found %d paths, reference %d", seed, len(got), len(want))
		}
		for i := range got {
			if !samePath(got[i], want[i]) {
				t.Fatalf("seed %d: disjoint path %d = %v, reference %v", seed, i, got[i].Links, want[i].Links)
			}
			if got[i].OneWayMs != want[i].OneWayMs {
				t.Fatalf("seed %d: disjoint path %d delay %v, reference %v", seed, i, got[i].OneWayMs, want[i].OneWayMs)
			}
		}
	}
}

func TestDifferentialCostHook(t *testing.T) {
	for seed := int64(400); seed < 412; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := randomNet(r, 35, 80)
		src := int32(r.Intn(n.N()))
		load := make([]float64, len(n.Links))
		for li := range load {
			load[li] = float64(r.Intn(4))
		}
		cost := func(li int32) float64 {
			l := n.Links[li]
			if load[li] >= 3 { // saturate some links entirely
				return math.Inf(1)
			}
			u := load[li] / l.CapGbps
			return l.OneWayMs * (1 + 8*u*u)
		}

		st := AcquireSearch()
		n.Search(st, SearchSpec{Src: src, Target: NoTarget, Cost: cost})
		dist, prev := st.materialize(n.N())
		wantDist, wantPrev := naiveDijkstra(n, src, NoTarget, nil, nil, nil, cost)
		compareAll(t, n, dist, wantDist, prev, wantPrev, "cost hook")

		// Under a cost hook, Dist is accumulated cost but extracted paths
		// must still report true propagation delay.
		for dst := int32(0); dst < int32(n.N()); dst++ {
			p, ok := st.Path(dst)
			if !ok {
				continue
			}
			var delay float64
			for _, li := range p.Links {
				delay += n.Links[li].OneWayMs
			}
			if math.Abs(p.OneWayMs-delay) > 1e-9 {
				t.Fatalf("seed %d: cost-hook path to %d reports %v ms, links sum to %v", seed, dst, p.OneWayMs, delay)
			}
		}
		st.Release()
	}
}

// TestSearchStatePoolConcurrent hammers pooled SearchState reuse from many
// goroutines against two different networks at once; run under -race it
// proves states never leak between workers and stale stamps never bleed
// across networks of different sizes.
func TestSearchStatePoolConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	big := randomNet(r, 120, 300)
	small := randomNet(r, 20, 40)
	nets := []*Network{big, small}

	type ref struct {
		dist []float64
		prev []int32
	}
	want := map[*Network][]ref{}
	for _, n := range nets {
		for src := int32(0); src < int32(n.N()); src++ {
			d, p := naiveDijkstra(n, src, NoTarget, nil, nil, nil, nil)
			want[n] = append(want[n], ref{d, p})
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 50; iter++ {
				n := nets[r.Intn(len(nets))]
				src := int32(r.Intn(n.N()))
				st := AcquireSearch()
				n.Search(st, SearchSpec{Src: src, Target: NoTarget})
				d, p := st.materialize(n.N())
				st.Release()
				rf := want[n][src]
				for v := range d {
					if d[v] != rf.dist[v] || p[v] != rf.prev[v] {
						t.Errorf("worker %d iter %d: src %d node %d: got (%v,%d) want (%v,%d)",
							w, iter, src, v, d[v], p[v], rf.dist[v], rf.prev[v])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
