package constellation

import (
	"fmt"
	"time"

	"leosim/internal/geo"
	"leosim/internal/orbit"
)

// Pass is one contact window between a ground terminal and a satellite: the
// interval during which the satellite is at or above the minimum elevation.
type Pass struct {
	// AOS and LOS are acquisition and loss of signal.
	AOS, LOS time.Time
	// MaxElevationDeg is the peak elevation during the pass.
	MaxElevationDeg float64
}

// Duration returns the pass length.
func (p Pass) Duration() time.Duration { return p.LOS.Sub(p.AOS) }

// PassWindows finds the contact windows of one satellite (via its
// propagator) over a terminal at pos, scanning [start, start+window] at the
// given step and refining AOS/LOS to within a second by bisection. §2 of
// the paper: "Each satellite is reachable from a GT for a few minutes, after
// which the GT must connect to a different satellite" — the tests pin that.
func PassWindows(prop orbit.Propagator, pos geo.LatLon, minElevDeg float64,
	start time.Time, window, step time.Duration) ([]Pass, error) {
	if step <= 0 || window <= 0 {
		return nil, fmt.Errorf("constellation: need positive window and step")
	}
	if step > window {
		return nil, fmt.Errorf("constellation: step %v exceeds window %v", step, window)
	}
	obs := pos.ToECEF()
	elevAt := func(t time.Time) float64 {
		return geo.Elevation(obs, prop.PositionECEF(t))
	}

	// refine locates the visibility boundary between lo (below) and hi
	// (above) — or vice versa — to within a second.
	refine := func(lo, hi time.Time, rising bool) time.Time {
		for hi.Sub(lo) > time.Second {
			mid := lo.Add(hi.Sub(lo) / 2)
			vis := elevAt(mid) >= minElevDeg
			if vis == rising {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}

	var passes []Pass
	var cur *Pass
	prevVis := false
	prevT := start
	end := start.Add(window)
	for t := start; !t.After(end); t = t.Add(step) {
		el := elevAt(t)
		vis := el >= minElevDeg
		switch {
		case vis && !prevVis:
			aos := t
			if t.After(start) {
				aos = refine(prevT, t, true)
			}
			cur = &Pass{AOS: aos, LOS: t, MaxElevationDeg: el}
		case vis && prevVis:
			if el > cur.MaxElevationDeg {
				cur.MaxElevationDeg = el
			}
			cur.LOS = t
		case !vis && prevVis:
			cur.LOS = refine(prevT, t, false)
			passes = append(passes, *cur)
			cur = nil
		}
		prevVis = vis
		prevT = t
	}
	if cur != nil { // pass still open at window end
		passes = append(passes, *cur)
	}
	return passes, nil
}

// PassStats summarizes a terminal's contact statistics against a whole
// constellation over a window.
type PassStats struct {
	// Passes counts completed contact windows.
	Passes int
	// MeanDuration and MaxDuration describe pass lengths.
	MeanDuration, MaxDuration time.Duration
	// MeanVisible is the time-averaged number of simultaneously visible
	// satellites.
	MeanVisible float64
}

// TerminalPassStats scans every satellite of c against a terminal at pos.
func TerminalPassStats(c *Constellation, pos geo.LatLon, minElevDeg float64,
	start time.Time, window, step time.Duration) (PassStats, error) {
	var st PassStats
	var totalDur time.Duration
	for _, sat := range c.Sats {
		passes, err := PassWindows(sat.Prop, pos, minElevDeg, start, window, step)
		if err != nil {
			return PassStats{}, err
		}
		for _, p := range passes {
			st.Passes++
			totalDur += p.Duration()
			if p.Duration() > st.MaxDuration {
				st.MaxDuration = p.Duration()
			}
		}
	}
	if st.Passes > 0 {
		st.MeanDuration = totalDur / time.Duration(st.Passes)
	}
	if window > 0 {
		st.MeanVisible = totalDur.Seconds() / window.Seconds()
	}
	return st, nil
}
