package constellation

// Shell presets matching §2 of the paper, which restricts the analysis to the
// first-phase shell of each constellation, with parameters from the FCC/ITU
// filings cited there.

// StarlinkPhase1 is SpaceX Starlink's first shell: 72 planes × 22 satellites
// at 550 km, 53° inclination, minimum elevation 25°.
func StarlinkPhase1() Shell {
	return Shell{
		Name:            "starlink-p1",
		Planes:          72,
		SatsPerPlane:    22,
		AltitudeKm:      550,
		InclinationDeg:  53,
		WalkerF:         1,
		RAANSpreadDeg:   360,
		MinElevationDeg: 25,
	}
}

// KuiperPhase1 is Amazon Kuiper's first shell: 34 planes × 34 satellites at
// 630 km, 51.9° inclination, minimum elevation 30°.
func KuiperPhase1() Shell {
	return Shell{
		Name:            "kuiper-p1",
		Planes:          34,
		SatsPerPlane:    34,
		AltitudeKm:      630,
		InclinationDeg:  51.9,
		WalkerF:         1,
		RAANSpreadDeg:   360,
		MinElevationDeg: 30,
	}
}

// PolarShell is a small polar (90°) star shell used for the §8 cross-shell
// BP-augmentation experiment (Fig 10), loosely modeled on the polar shells in
// Starlink's later phases.
func PolarShell() Shell {
	return Shell{
		Name:            "polar",
		Planes:          6,
		SatsPerPlane:    58,
		AltitudeKm:      560,
		InclinationDeg:  90,
		WalkerF:         1,
		RAANSpreadDeg:   180,
		MinElevationDeg: 25,
	}
}

// StarlinkGen1 returns the five shells of SpaceX's 2019-modified first
// generation (approximate parameters from the FCC modification [44]): the
// phase-1 inclined shell plus a second 540 km inclined shell, two
// higher-inclination shells and a polar shell. The paper restricts its
// quantitative analysis to phase 1; the full set exists for multi-shell
// studies (§8).
func StarlinkGen1() []Shell {
	return []Shell{
		StarlinkPhase1(),
		{
			Name: "starlink-s2", Planes: 72, SatsPerPlane: 22,
			AltitudeKm: 540, InclinationDeg: 53.2, WalkerF: 1,
			RAANSpreadDeg: 360, MinElevationDeg: 25,
		},
		{
			Name: "starlink-s3", Planes: 36, SatsPerPlane: 20,
			AltitudeKm: 570, InclinationDeg: 70, WalkerF: 1,
			RAANSpreadDeg: 360, MinElevationDeg: 25,
		},
		{
			Name: "starlink-s4", Planes: 6, SatsPerPlane: 58,
			AltitudeKm: 560, InclinationDeg: 97.6, WalkerF: 1,
			RAANSpreadDeg: 180, MinElevationDeg: 25,
		},
		{
			Name: "starlink-s5", Planes: 4, SatsPerPlane: 43,
			AltitudeKm: 560, InclinationDeg: 97.6, WalkerF: 1,
			RAANSpreadDeg: 180, MinElevationDeg: 25,
		},
	}
}

// TestShell is a deliberately small shell (8 planes × 8 satellites) sharing
// Starlink's altitude/inclination, used to keep unit tests and reduced-scale
// benchmarks fast while exercising identical code paths.
func TestShell() Shell {
	return Shell{
		Name:            "test-8x8",
		Planes:          8,
		SatsPerPlane:    8,
		AltitudeKm:      550,
		InclinationDeg:  53,
		WalkerF:         1,
		RAANSpreadDeg:   360,
		MinElevationDeg: 25,
	}
}
