package constellation

import (
	"math"
	"testing"

	"leosim/internal/geo"
)

// Property: for any Walker phasing factor F, the +Grid topology (including
// the seam with its F-slot shift) yields cross-plane ISLs whose lengths stay
// within a small factor of the interior cross-plane spacing — i.e. the seam
// absorption works for every F, not just the presets' F=1.
func TestWalkerPhasingSeamProperty(t *testing.T) {
	base := Shell{
		Name: "phasing", Planes: 12, SatsPerPlane: 18,
		AltitudeKm: 550, InclinationDeg: 53,
		RAANSpreadDeg: 360, MinElevationDeg: 25,
	}
	for _, f := range []int{0, 1, 2, 3, 5} {
		sh := base
		sh.WalkerF = f
		c, err := New([]Shell{sh}, WithISLs())
		if err != nil {
			t.Fatalf("F=%d: %v", f, err)
		}
		s := c.SnapshotAt(geo.Epoch)

		// Gather cross-plane link lengths, split into seam/interior.
		var interiorMax, seamMax float64
		for _, l := range c.ISLs {
			pa, pb := c.Sats[l.A].Plane, c.Sats[l.B].Plane
			if pa == pb {
				continue // intra-plane ring
			}
			d := ISLLengthKm(s, l)
			wrap := (pa == 0 && pb == sh.Planes-1) || (pb == 0 && pa == sh.Planes-1)
			if wrap {
				seamMax = math.Max(seamMax, d)
			} else {
				interiorMax = math.Max(interiorMax, d)
			}
		}
		if interiorMax == 0 || seamMax == 0 {
			t.Fatalf("F=%d: missing cross-plane links (interior %v, seam %v)",
				f, interiorMax, seamMax)
		}
		// The seam must not degenerate into trans-constellation chords:
		// same order of magnitude as interior cross-plane links.
		if seamMax > 2.5*interiorMax {
			t.Errorf("F=%d: seam links up to %v km vs interior max %v km — seam shift broken",
				f, seamMax, interiorMax)
		}
		// Degrees stay exactly 4 for every satellite regardless of F.
		deg := make([]int, c.Size())
		for _, l := range c.ISLs {
			deg[l.A]++
			deg[l.B]++
		}
		for i, d := range deg {
			if d != 4 {
				t.Fatalf("F=%d: sat %d has degree %d", f, i, d)
			}
		}
	}
}
