package constellation

import (
	"fmt"
	"math"
	"time"
)

// §8 argues that cross-shell ISL connectivity is non-trivial: "because of
// the different satellite trajectories across shells, such links will not be
// as long-lived as those within a shell, and thus require frequent teardown
// and setup". ChurnStats quantifies that claim: it tracks, for each
// satellite of one shell, its nearest neighbour in another shell over time
// and measures how often that pairing changes. Intra-shell +Grid partners
// never change (lifetime = the whole window), so any finite cross-shell
// lifetime is pure overhead an operator would pay.
type ChurnStats struct {
	// MeanLifetime is the average duration a nearest-neighbour pairing
	// survives before switching.
	MeanLifetime time.Duration
	// SwitchesPerSatPerHour is the mean partner-change rate.
	SwitchesPerSatPerHour float64
	// MeanRangeKm is the average distance of the tracked pairings.
	MeanRangeKm float64
	// Samples counts (satellite, snapshot) observations.
	Samples int
}

// CrossShellChurn measures nearest-neighbour churn from shell indexA toward
// shell indexB of constellation c, sampling n snapshots every step from
// start. The step should be much shorter than an orbital period (minutes)
// for a faithful lifetime estimate.
func CrossShellChurn(c *Constellation, indexA, indexB int, start time.Time, step time.Duration, n int) (ChurnStats, error) {
	if indexA < 0 || indexA >= len(c.Shells) || indexB < 0 || indexB >= len(c.Shells) {
		return ChurnStats{}, fmt.Errorf("constellation: shell index out of range")
	}
	if indexA == indexB {
		return ChurnStats{}, fmt.Errorf("constellation: churn needs two distinct shells")
	}
	if n < 2 || step <= 0 {
		return ChurnStats{}, fmt.Errorf("constellation: need ≥ 2 snapshots and positive step")
	}
	shA, shB := c.Shells[indexA], c.Shells[indexB]
	offA := c.shellOffset[indexA]
	offB := c.shellOffset[indexB]
	sizeA, sizeB := shA.Size(), shB.Size()

	prev := make([]int, sizeA)
	for i := range prev {
		prev[i] = -1
	}
	switches := 0
	var rangeSum float64
	samples := 0

	for si := 0; si < n; si++ {
		pos := c.PositionsECEF(start.Add(time.Duration(si) * step))
		for a := 0; a < sizeA; a++ {
			pa := pos[offA+a]
			best := -1
			bestD := math.Inf(1)
			for b := 0; b < sizeB; b++ {
				if d := pa.Distance(pos[offB+b]); d < bestD {
					bestD = d
					best = b
				}
			}
			if prev[a] >= 0 && prev[a] != best {
				switches++
			}
			prev[a] = best
			rangeSum += bestD
			samples++
		}
	}

	window := step * time.Duration(n-1)
	st := ChurnStats{
		MeanRangeKm: rangeSum / float64(samples),
		Samples:     samples,
	}
	totalSatHours := float64(sizeA) * window.Hours()
	if totalSatHours > 0 {
		st.SwitchesPerSatPerHour = float64(switches) / totalSatHours
	}
	if switches > 0 {
		st.MeanLifetime = time.Duration(float64(window) * float64(sizeA) / float64(switches))
	} else {
		st.MeanLifetime = window
	}
	return st, nil
}
