package constellation

import (
	"testing"
	"time"

	"leosim/internal/geo"
)

func TestStarlinkGen1(t *testing.T) {
	shells := StarlinkGen1()
	if len(shells) != 5 {
		t.Fatalf("gen1 has %d shells, want 5", len(shells))
	}
	names := map[string]bool{}
	total := 0
	for _, sh := range shells {
		if err := sh.Validate(); err != nil {
			t.Errorf("%s: %v", sh.Name, err)
		}
		if names[sh.Name] {
			t.Errorf("duplicate shell name %q", sh.Name)
		}
		names[sh.Name] = true
		total += sh.Size()
	}
	// Gen1 totals ≈4,400 satellites.
	if total < 4000 || total > 4800 {
		t.Errorf("gen1 total = %d satellites, want ≈4400", total)
	}
	// The full constellation builds, with ISLs intra-shell only.
	c, err := New(shells, WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != total {
		t.Errorf("constellation size %d, want %d", c.Size(), total)
	}
	for _, l := range c.ISLs {
		if c.Sats[l.A].ShellIndex != c.Sats[l.B].ShellIndex {
			t.Fatalf("cross-shell ISL %+v — +Grid must stay intra-shell", l)
		}
	}
}

func TestShellGeometryHelpers(t *testing.T) {
	sh := StarlinkPhase1()
	if r := sh.CoverageRadiusKm(); r < 900 || r > 980 {
		t.Errorf("coverage radius = %v", r)
	}
	if g := sh.MaxGSLKm(); g < 1000 || g > 1200 {
		t.Errorf("max GSL = %v", g)
	}
	// Both consistent with geo-level primitives.
	if sh.CoverageRadiusKm() != geo.CoverageRadius(sh.AltitudeKm, sh.MinElevationDeg) {
		t.Errorf("CoverageRadiusKm disagrees with geo.CoverageRadius")
	}
}

func TestWithEpoch(t *testing.T) {
	late := geo.Epoch.Add(6 * time.Hour)
	a, err := New([]Shell{TestShell()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]Shell{TestShell()}, WithEpoch(late))
	if err != nil {
		t.Fatal(err)
	}
	// At the late epoch, the epoch-shifted constellation is at its initial
	// geometry while the default one has moved — but in the rotating ECEF
	// frame both must still be valid LEO positions.
	pa := a.PositionsECEF(late)
	pb := b.PositionsECEF(late)
	if pa[0].Distance(pb[0]) < 1 {
		t.Errorf("epoch shift had no effect")
	}
	for _, p := range pb {
		alt := p.Norm() - geo.EarthRadius
		if alt < 540 || alt > 560 {
			t.Fatalf("altitude %v after epoch shift", alt)
		}
	}
}
