package constellation

import (
	"testing"
	"time"

	"leosim/internal/geo"
)

func TestCrossShellChurn(t *testing.T) {
	// A 53° test shell against a polar shell: trajectories diverge, so
	// nearest-neighbour pairings must churn on the timescale §8 worries
	// about (minutes, far shorter than the simulated hour).
	c, err := New([]Shell{TestShell(), PolarShell()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := CrossShellChurn(c, 0, 1, geo.Epoch, time.Minute, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != TestShell().Size()*30 {
		t.Errorf("samples = %d", st.Samples)
	}
	if st.SwitchesPerSatPerHour <= 1 {
		t.Errorf("cross-shell pairings should churn: %v switches/sat/hour",
			st.SwitchesPerSatPerHour)
	}
	if st.MeanLifetime >= 29*time.Minute {
		t.Errorf("cross-shell lifetime %v ≈ whole window — §8 premise violated",
			st.MeanLifetime)
	}
	if st.MeanRangeKm <= 0 || st.MeanRangeKm > 4000 {
		t.Errorf("mean nearest range = %v km", st.MeanRangeKm)
	}
}

func TestCrossShellChurnSameInclination(t *testing.T) {
	// Two shells with identical inclination and altitude but offset RAAN
	// patterns still churn, but the direction of the comparison in the
	// main test is the point; here only check determinism and validity.
	c, err := New([]Shell{TestShell(), PolarShell()})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := CrossShellChurn(c, 0, 1, geo.Epoch, time.Minute, 10)
	b, _ := CrossShellChurn(c, 0, 1, geo.Epoch, time.Minute, 10)
	if a != b {
		t.Errorf("churn not deterministic: %+v vs %+v", a, b)
	}
}

func TestCrossShellChurnValidation(t *testing.T) {
	c, err := New([]Shell{TestShell(), PolarShell()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CrossShellChurn(c, 0, 0, geo.Epoch, time.Minute, 10); err == nil {
		t.Errorf("same shell must fail")
	}
	if _, err := CrossShellChurn(c, 0, 5, geo.Epoch, time.Minute, 10); err == nil {
		t.Errorf("bad index must fail")
	}
	if _, err := CrossShellChurn(c, 0, 1, geo.Epoch, time.Minute, 1); err == nil {
		t.Errorf("single snapshot must fail")
	}
	if _, err := CrossShellChurn(c, 0, 1, geo.Epoch, 0, 10); err == nil {
		t.Errorf("zero step must fail")
	}
}
