package constellation

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"leosim/internal/geo"
	"leosim/internal/orbit"
)

// Constellation is one or more orbital shells with per-satellite propagators
// and an ISL topology.
type Constellation struct {
	Shells []Shell
	Sats   []Satellite
	// ISLs is the list of inter-satellite links, empty for BP-only
	// operation. Indices refer to Sats.
	ISLs []ISL

	// shellOffset[i] is the index in Sats of the first satellite of shell i.
	shellOffset []int

	// batch is the hoisted-constants fast path for all-Kepler fleets
	// (bit-identical to per-satellite propagation); nil under SGP4.
	batch *orbit.KeplerBatch
}

// Option configures constellation construction.
type Option func(*config)

type config struct {
	epoch      time.Time
	isls       bool
	omitSeam   bool
	sgp4       bool
	islBuilder func(*Constellation) []ISL
}

// WithEpoch sets the constellation epoch (default geo.Epoch).
func WithEpoch(t time.Time) Option { return func(c *config) { c.epoch = t } }

// WithISLs enables generation of the +Grid ISL topology for every shell.
// Cross-shell ISLs are never generated (§8: Starlink's four ISLs per
// satellite are all used within a shell).
func WithISLs() Option { return func(c *config) { c.isls = true } }

// WithISLTopology replaces the default +Grid generator with a custom one: the
// builder receives the fully propagated constellation (satellites, shells,
// indices) and returns the ISL set, which must be OrderISL-canonical,
// duplicate-free and intra-shell. Implies WithISLs. The topology lab
// (internal/topo) threads its pluggable motifs through here.
func WithISLTopology(build func(*Constellation) []ISL) Option {
	return func(c *config) {
		c.isls = true
		c.islBuilder = build
	}
}

// WithoutSeamISLs omits the cross-plane wrap links between the last and
// first plane of each Walker-delta (RAANSpreadDeg == 360) shell, leaving the
// plane ring open at an arbitrary point — the ablation for operators that
// skip those links. Walker-star shells (RAANSpreadDeg < 360) have a physical
// seam — their first and last planes counter-rotate — so they never get wrap
// links, with or without this option (see PlusGridISLs for the geometry).
func WithoutSeamISLs() Option { return func(c *config) { c.omitSeam = true } }

// WithSGP4 propagates satellites with the SGP4 propagator initialized from
// generated TLEs instead of the J2-secular Kepler propagator. Slower; used
// by the propagator ablation.
func WithSGP4() Option { return func(c *config) { c.sgp4 = true } }

// New builds a constellation from the given shells.
func New(shells []Shell, opts ...Option) (*Constellation, error) {
	cfg := config{epoch: geo.Epoch}
	for _, o := range opts {
		o(&cfg)
	}
	if len(shells) == 0 {
		return nil, fmt.Errorf("constellation: no shells")
	}
	c := &Constellation{Shells: shells}
	for si, sh := range shells {
		if err := sh.Validate(); err != nil {
			return nil, err
		}
		c.shellOffset = append(c.shellOffset, len(c.Sats))
		for plane := 0; plane < sh.Planes; plane++ {
			for slot := 0; slot < sh.SatsPerPlane; slot++ {
				el := sh.elements(plane, slot, cfg.epoch)
				var prop orbit.Propagator
				if cfg.sgp4 {
					p, err := sgp4For(el, cfg.epoch)
					if err != nil {
						return nil, err
					}
					prop = p
				} else {
					prop = orbit.NewKepler(el)
				}
				c.Sats = append(c.Sats, Satellite{
					Index:      len(c.Sats),
					ShellIndex: si,
					Plane:      plane,
					Slot:       slot,
					Prop:       prop,
				})
			}
		}
	}
	if cfg.isls {
		if cfg.islBuilder != nil {
			c.ISLs = cfg.islBuilder(c)
		} else {
			c.ISLs = PlusGridISLs(c, cfg.omitSeam)
		}
	}
	props := make([]orbit.Propagator, len(c.Sats))
	for i := range c.Sats {
		props[i] = c.Sats[i].Prop
	}
	c.batch, _ = orbit.NewKeplerBatch(props)
	return c, nil
}

// Analytic reports whether every satellite uses the analytic (J2-secular
// Kepler) propagator, under which circular-orbit radii are exact and the
// invariant checker can hold ISL geometry to closed-form values. SGP4
// constellations get looser tolerance bounds instead.
func (c *Constellation) Analytic() bool {
	for _, s := range c.Sats {
		if _, ok := s.Prop.(*orbit.KeplerPropagator); !ok {
			return false
		}
	}
	return true
}

func sgp4For(el orbit.Elements, epoch time.Time) (*orbit.SGP4, error) {
	n := 86400 / (2 * 3.141592653589793) * el.MeanMotion()
	tle := orbit.TLE{
		SatNum:         1,
		Epoch:          epoch,
		InclinationDeg: el.InclinationRad * geo.Rad,
		RAANDeg:        el.RAANRad * geo.Rad,
		Eccentricity:   0.0001,
		ArgPerigeeDeg:  el.ArgPerigeeRad * geo.Rad,
		MeanAnomalyDeg: el.MeanAnomalyRad * geo.Rad,
		MeanMotion:     n,
	}
	return orbit.NewSGP4(tle)
}

// Size returns the total satellite count.
func (c *Constellation) Size() int { return len(c.Sats) }

// SatIndex returns the constellation-wide index of (shell, plane, slot).
func (c *Constellation) SatIndex(shell, plane, slot int) int {
	sh := c.Shells[shell]
	return c.shellOffset[shell] + plane*sh.SatsPerPlane + slot
}

// ShellOf returns the shell parameters of satellite i.
func (c *Constellation) ShellOf(i int) Shell {
	return c.Shells[c.Sats[i].ShellIndex]
}

// PositionsECEF returns the ECEF position of every satellite at time t, in
// satellite-index order. Computation is parallelized across cores.
func (c *Constellation) PositionsECEF(t time.Time) []geo.Vec3 {
	return c.PositionsECEFInto(t, nil)
}

// PositionsECEFInto is PositionsECEF writing into dst when its capacity
// suffices, so per-step callers (the incremental snapshot advancer) reuse
// one buffer instead of allocating a position slice every step. The filled
// slice is returned; it aliases dst unless dst was too small.
func (c *Constellation) PositionsECEFInto(t time.Time, dst []geo.Vec3) []geo.Vec3 {
	if cap(dst) < len(c.Sats) {
		dst = make([]geo.Vec3, len(c.Sats))
	}
	dst = dst[:len(c.Sats)]
	if c.batch != nil {
		// All-Kepler fleets take the batched propagator: per-plane rotation
		// matrices and hoisted secular rates, same bits, ~half the work.
		parallelRanges(len(c.Sats), func(lo, hi int) {
			c.batch.PositionsECEFRange(t, lo, hi, dst)
		})
		return dst
	}
	// Rotate once: compute ECI in parallel, then apply the shared GMST
	// rotation, rather than recomputing GMST per satellite.
	theta := -geo.GMST(t)
	parallelFor(len(c.Sats), func(i int) {
		dst[i] = geo.RotateZ(c.Sats[i].Prop.PositionECI(t), theta)
	})
	return dst
}

// parallelRanges splits [0,n) into GOMAXPROCS contiguous chunks run
// concurrently, falling back to one inline call on single-core hosts (no
// goroutine spawn on the per-step advance path).
func parallelRanges(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 64 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Snapshot bundles satellite positions at one instant.
type Snapshot struct {
	Time time.Time
	// ECEF position per satellite, same order as Constellation.Sats.
	Pos []geo.Vec3
}

// SnapshotAt computes a position snapshot at time t.
func (c *Constellation) SnapshotAt(t time.Time) Snapshot {
	return Snapshot{Time: t, Pos: c.PositionsECEF(t)}
}

// Snapshots computes n snapshots starting at start, spaced by step.
func (c *Constellation) Snapshots(start time.Time, step time.Duration, n int) []Snapshot {
	out := make([]Snapshot, n)
	for i := range out {
		out[i] = c.SnapshotAt(start.Add(time.Duration(i) * step))
	}
	return out
}
