package constellation

import (
	"math"
	"testing"
	"time"

	"leosim/internal/geo"
	"leosim/internal/orbit"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPresetSizes(t *testing.T) {
	if n := StarlinkPhase1().Size(); n != 1584 {
		t.Errorf("Starlink phase 1 = %d sats, want 1584", n)
	}
	if n := KuiperPhase1().Size(); n != 1156 {
		t.Errorf("Kuiper phase 1 = %d sats, want 1156", n)
	}
	for _, sh := range []Shell{StarlinkPhase1(), KuiperPhase1(), PolarShell(), TestShell()} {
		if err := sh.Validate(); err != nil {
			t.Errorf("%s: %v", sh.Name, err)
		}
	}
}

func TestShellValidate(t *testing.T) {
	bad := StarlinkPhase1()
	bad.Planes = 0
	if bad.Validate() == nil {
		t.Errorf("zero planes must fail")
	}
	bad = StarlinkPhase1()
	bad.AltitudeKm = 2500
	if bad.Validate() == nil {
		t.Errorf("altitude above LEO must fail")
	}
	bad = StarlinkPhase1()
	bad.MinElevationDeg = 95
	if bad.Validate() == nil {
		t.Errorf("bad elevation must fail")
	}
}

func TestNewConstellation(t *testing.T) {
	c, err := New([]Shell{TestShell()}, WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 64 {
		t.Fatalf("size = %d, want 64", c.Size())
	}
	// +Grid: 2 ISLs per satellite (each link shared by 2) → 2N links.
	if got, want := len(c.ISLs), 2*64; got != want {
		t.Errorf("ISL count = %d, want %d", got, want)
	}
	// Every satellite has exactly 4 ISLs.
	deg := make(map[int]int)
	for _, l := range c.ISLs {
		deg[l.A]++
		deg[l.B]++
		if l.A >= l.B {
			t.Fatalf("ISL not ordered: %+v", l)
		}
	}
	for i := 0; i < c.Size(); i++ {
		if deg[i] != 4 {
			t.Errorf("sat %d has %d ISLs, want 4", i, deg[i])
		}
	}
}

func TestNewWithoutISLs(t *testing.T) {
	c, err := New([]Shell{TestShell()})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ISLs) != 0 {
		t.Errorf("BP constellation must have no ISLs")
	}
}

func TestSeamOmission(t *testing.T) {
	with, _ := New([]Shell{TestShell()}, WithISLs())
	without, _ := New([]Shell{TestShell()}, WithISLs(), WithoutSeamISLs())
	// Omitting the seam removes SatsPerPlane cross-plane links.
	if got, want := len(with.ISLs)-len(without.ISLs), TestShell().SatsPerPlane; got != want {
		t.Errorf("seam links removed = %d, want %d", got, want)
	}
}

func TestPolarShellNoSeam(t *testing.T) {
	// A 180° star shell never wraps plane ISLs around the seam.
	c, err := New([]Shell{PolarShell()}, WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	sh := PolarShell()
	last := sh.Planes - 1
	for _, l := range c.ISLs {
		pa := c.Sats[l.A].Plane
		pb := c.Sats[l.B].Plane
		if (pa == 0 && pb == last) || (pa == last && pb == 0) {
			t.Fatalf("star shell has seam link %+v", l)
		}
	}
}

func TestSatIndexRoundTrip(t *testing.T) {
	c, err := New([]Shell{TestShell(), PolarShell()})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Sats {
		if got := c.SatIndex(s.ShellIndex, s.Plane, s.Slot); got != s.Index {
			t.Fatalf("SatIndex(%d,%d,%d) = %d, want %d",
				s.ShellIndex, s.Plane, s.Slot, got, s.Index)
		}
	}
	if c.ShellOf(0).Name != "test-8x8" {
		t.Errorf("ShellOf(0) = %q", c.ShellOf(0).Name)
	}
	if c.ShellOf(c.Size()-1).Name != "polar" {
		t.Errorf("ShellOf(last) = %q", c.ShellOf(c.Size()-1).Name)
	}
}

func TestPositionsAltitudeAndSpread(t *testing.T) {
	c, err := New([]Shell{TestShell()})
	if err != nil {
		t.Fatal(err)
	}
	pos := c.PositionsECEF(geo.Epoch.Add(31 * time.Minute))
	for i, p := range pos {
		alt := p.Norm() - geo.EarthRadius
		if !almostEq(alt, 550, 2) {
			t.Fatalf("sat %d altitude = %v", i, alt)
		}
	}
	// Satellites must be spread out, not bunched: min pairwise distance of
	// a healthy Walker shell is hundreds of km.
	min := math.Inf(1)
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			min = math.Min(min, pos[i].Distance(pos[j]))
		}
	}
	if min < 100 {
		t.Errorf("min satellite separation = %v km — shell is bunched", min)
	}
}

func TestStarlinkISLGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("full Starlink shell in -short mode")
	}
	c, err := New([]Shell{StarlinkPhase1()}, WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	st := c.StatsAt(geo.Epoch)
	if st.Count != 2*1584 {
		t.Errorf("ISL count = %d, want %d", st.Count, 2*1584)
	}
	// Intra-plane neighbor spacing at 550 km: 2·(R+h)·sin(π/22) ≈ 986 km.
	wantIntra := 2 * (geo.EarthRadius + 550) * math.Sin(math.Pi/22)
	if st.MaxKm < wantIntra-50 || st.MaxKm > 2100 {
		t.Errorf("max ISL length = %v km", st.MaxKm)
	}
	if st.MinKm < 20 {
		t.Errorf("min ISL length = %v km, implausibly short", st.MinKm)
	}
	// §2: +Grid ISLs easily stay above the lower atmosphere (~80 km).
	if st.LinksBelowAtmosphereKm != 0 {
		t.Errorf("%d ISLs dip below 80 km", st.LinksBelowAtmosphereKm)
	}
	if st.MinLinkAltitudeKm < 400 {
		t.Errorf("min ISL altitude = %v km, want ≥ 400", st.MinLinkAltitudeKm)
	}
}

func TestSnapshotsAdvanceSatellites(t *testing.T) {
	c, err := New([]Shell{TestShell()})
	if err != nil {
		t.Fatal(err)
	}
	snaps := c.Snapshots(geo.Epoch, 15*time.Minute, 3)
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	if !snaps[1].Time.Equal(geo.Epoch.Add(15 * time.Minute)) {
		t.Errorf("snapshot time = %v", snaps[1].Time)
	}
	// Satellites move ~7.6 km/s → ≈6,800 km in 15 min.
	d := snaps[0].Pos[0].Distance(snaps[1].Pos[0])
	if d < 4000 || d > 9000 {
		t.Errorf("satellite moved %v km in 15 min", d)
	}
}

func TestWithSGP4MatchesKeplerCoarsely(t *testing.T) {
	kep, err := New([]Shell{TestShell()})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := New([]Shell{TestShell()}, WithSGP4())
	if err != nil {
		t.Fatal(err)
	}
	at := geo.Epoch.Add(10 * time.Minute)
	pk := kep.PositionsECEF(at)
	ps := sg.PositionsECEF(at)
	for i := range pk {
		if d := pk[i].Distance(ps[i]); d > 100 {
			t.Fatalf("sat %d: SGP4 vs Kepler %v km apart after 10 min", i, d)
		}
	}
}

func TestShellTLEs(t *testing.T) {
	sh := TestShell()
	lines := sh.TLEs(100, geo.Epoch)
	if len(lines) != 2*sh.Size() {
		t.Fatalf("got %d lines, want %d", len(lines), 2*sh.Size())
	}
	tle, err := orbit.ParseTLE(lines[0], lines[1])
	if err != nil {
		t.Fatalf("generated TLE does not parse: %v", err)
	}
	if tle.SatNum != 100 {
		t.Errorf("satnum = %d", tle.SatNum)
	}
	if _, err := orbit.NewSGP4(tle); err != nil {
		t.Errorf("generated TLE does not initialize SGP4: %v", err)
	}
}

func TestSegmentMinAltitude(t *testing.T) {
	// Two satellites on opposite sides: the chord passes through the Earth.
	a := geo.LatLon{Lat: 0, Lon: 0, Alt: 550}.ToECEF()
	b := geo.LatLon{Lat: 0, Lon: 180, Alt: 550}.ToECEF()
	if alt := geo.SegmentMinAltitudeKm(a, b); alt > -6000 {
		t.Errorf("antipodal chord min altitude = %v, want ≈ −6371", alt)
	}
	// Adjacent satellites: chord stays near orbital altitude.
	c := geo.LatLon{Lat: 0, Lon: 5, Alt: 550}.ToECEF()
	if alt := geo.SegmentMinAltitudeKm(a, c); alt < 500 || alt > 551 {
		t.Errorf("neighbor chord min altitude = %v", alt)
	}
	// Degenerate: both endpoints equal.
	if alt := geo.SegmentMinAltitudeKm(a, a); !almostEq(alt, 550, 1e-6) {
		t.Errorf("degenerate chord altitude = %v", alt)
	}
}

func TestNewRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Errorf("empty shell list must fail")
	}
	bad := TestShell()
	bad.AltitudeKm = -5
	if _, err := New([]Shell{bad}); err == nil {
		t.Errorf("invalid shell must fail")
	}
}

func TestStatsAtNoISLs(t *testing.T) {
	c, err := New([]Shell{TestShell()})
	if err != nil {
		t.Fatal(err)
	}
	st := c.StatsAt(geo.Epoch)
	if st.Count != 0 || st.MinKm != 0 || st.MinLinkAltitudeKm != 0 {
		t.Errorf("BP constellation ISL stats should be zero: %+v", st)
	}
}

func TestISLLengthAndAltitudeHelpers(t *testing.T) {
	c, err := New([]Shell{TestShell()}, WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	s := c.SnapshotAt(geo.Epoch)
	l := c.ISLs[0]
	if d := ISLLengthKm(s, l); d <= 0 || d > 12000 {
		t.Errorf("ISL length = %v", d)
	}
	// The sparse 8-per-plane test shell legitimately dips its intra-plane
	// chords near the surface (45° spacing); only consistency with the
	// chord helper is asserted here — the ≥80 km atmosphere constraint is
	// checked on the real Starlink shell in TestStarlinkISLGeometry.
	if a := ISLMinAltitudeKm(s, l); !almostEq(a, geo.SegmentMinAltitudeKm(s.Pos[l.A], s.Pos[l.B]), 1e-9) {
		t.Errorf("ISLMinAltitudeKm inconsistent with geo.SegmentMinAltitudeKm")
	}
}
