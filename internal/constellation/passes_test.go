package constellation

import (
	"testing"
	"time"

	"leosim/internal/geo"
	"leosim/internal/orbit"
)

func TestPassWindowsSingleSatellite(t *testing.T) {
	// A satellite passing directly over the terminal's longitude.
	el := orbit.Circular(550, 53, 0, 0, geo.Epoch)
	prop := orbit.NewKepler(el)
	pos := geo.LL(30, 0)
	passes, err := PassWindows(prop, pos, 25, geo.Epoch, 24*time.Hour, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) == 0 {
		t.Fatal("no passes in 24 hours — implausible for a 95-minute orbit")
	}
	for _, p := range passes {
		d := p.Duration()
		// §2: "reachable from a GT for a few minutes". At e=25°/550 km a
		// pass lasts at most ~4.3 min (chord through the coverage cone).
		if d <= 0 || d > 5*time.Minute {
			t.Errorf("pass duration %v outside (0, 5min]", d)
		}
		if p.MaxElevationDeg < 25 || p.MaxElevationDeg > 90 {
			t.Errorf("max elevation %v", p.MaxElevationDeg)
		}
		if !p.LOS.After(p.AOS) {
			t.Errorf("LOS %v not after AOS %v", p.LOS, p.AOS)
		}
	}
	// Consecutive passes are separated (no overlapping windows).
	for i := 1; i < len(passes); i++ {
		if passes[i].AOS.Before(passes[i-1].LOS) {
			t.Errorf("passes overlap")
		}
	}
}

func TestPassWindowsRefinement(t *testing.T) {
	// AOS/LOS refined to ≈1 s: the elevation at AOS is within a small
	// tolerance of the threshold.
	el := orbit.Circular(550, 53, 0, 0, geo.Epoch)
	prop := orbit.NewKepler(el)
	pos := geo.LL(30, 0)
	passes, err := PassWindows(prop, pos, 25, geo.Epoch, 3*time.Hour, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) == 0 {
		t.Skip("no pass in refinement window")
	}
	obs := pos.ToECEF()
	for _, p := range passes {
		elAOS := geo.Elevation(obs, prop.PositionECEF(p.AOS))
		// Elevation changes < 0.2°/s; 1 s refinement → within ~0.3°.
		if elAOS < 24.5 || elAOS > 26 {
			t.Errorf("elevation at refined AOS = %v, want ≈25", elAOS)
		}
	}
}

func TestPassWindowsValidation(t *testing.T) {
	el := orbit.Circular(550, 53, 0, 0, geo.Epoch)
	prop := orbit.NewKepler(el)
	if _, err := PassWindows(prop, geo.LL(0, 0), 25, geo.Epoch, 0, time.Second); err == nil {
		t.Errorf("zero window must fail")
	}
	if _, err := PassWindows(prop, geo.LL(0, 0), 25, geo.Epoch, time.Minute, 0); err == nil {
		t.Errorf("zero step must fail")
	}
	if _, err := PassWindows(prop, geo.LL(0, 0), 25, geo.Epoch, time.Minute, time.Hour); err == nil {
		t.Errorf("step > window must fail")
	}
}

func TestTerminalPassStats(t *testing.T) {
	c, err := New([]Shell{TestShell()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := TerminalPassStats(c, geo.LL(40, -75), 25, geo.Epoch, 2*time.Hour, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes == 0 {
		t.Fatal("no passes for a 64-satellite shell in 2 h")
	}
	if st.MeanDuration <= 0 || st.MeanDuration > 5*time.Minute {
		t.Errorf("mean pass duration %v — §2 says 'a few minutes'", st.MeanDuration)
	}
	if st.MaxDuration < st.MeanDuration {
		t.Errorf("max %v below mean %v", st.MaxDuration, st.MeanDuration)
	}
	if st.MeanVisible < 0 {
		t.Errorf("mean visible %v", st.MeanVisible)
	}
}

func TestStarlinkPassStatsMatchSection2(t *testing.T) {
	if testing.Short() {
		t.Skip("full shell scan in -short mode")
	}
	c, err := New([]Shell{StarlinkPhase1()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := TerminalPassStats(c, geo.LL(51.5, -0.13), 25, geo.Epoch, time.Hour, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// §2's qualitative claims quantified for London: passes last a few
	// minutes and many satellites are simultaneously visible.
	if st.MeanDuration < time.Minute || st.MeanDuration > 5*time.Minute {
		t.Errorf("mean pass = %v, want a few minutes", st.MeanDuration)
	}
	if st.MeanVisible < 10 || st.MeanVisible > 30 {
		t.Errorf("mean visible satellites = %v, want ≈15-20 for Starlink", st.MeanVisible)
	}
}
