package constellation

import (
	"math"
	"time"

	"leosim/internal/geo"
)

// ISL is a static point-to-point laser link between two satellites,
// identified by constellation-wide indices with A < B.
type ISL struct {
	A, B int
}

// plusGrid builds the standard +Grid ISL topology (§2): each satellite links
// to its two neighbours in the same orbit and to the satellite in the same
// slot of each adjacent plane, yielding 4 ISLs per satellite. Links are
// intra-shell only.
func plusGrid(c *Constellation, omitSeam bool) []ISL {
	var isls []ISL
	for si, sh := range c.Shells {
		for plane := 0; plane < sh.Planes; plane++ {
			for slot := 0; slot < sh.SatsPerPlane; slot++ {
				a := c.SatIndex(si, plane, slot)
				// Intra-plane: successor in the same orbit (ring).
				if sh.SatsPerPlane > 1 {
					b := c.SatIndex(si, plane, (slot+1)%sh.SatsPerPlane)
					if a != b {
						isls = append(isls, orderISL(a, b))
					}
				}
				// Cross-plane: same slot, next plane (ring over planes).
				if sh.Planes > 1 {
					next := plane + 1
					tgtSlot := slot
					if next == sh.Planes {
						if omitSeam || sh.RAANSpreadDeg < 360 {
							continue
						}
						next = 0
						// Wrapping the plane ring accumulates a
						// mean-anomaly shift of exactly WalkerF slot
						// spacings; connect to the slot that absorbs it
						// so seam links stay as short as interior ones.
						tgtSlot = ((slot+sh.WalkerF)%sh.SatsPerPlane + sh.SatsPerPlane) % sh.SatsPerPlane
					}
					b := c.SatIndex(si, next, tgtSlot)
					if a != b {
						isls = append(isls, orderISL(a, b))
					}
				}
			}
		}
	}
	return dedupISLs(isls)
}

func orderISL(a, b int) ISL {
	if a > b {
		a, b = b, a
	}
	return ISL{A: a, B: b}
}

func dedupISLs(in []ISL) []ISL {
	seen := make(map[ISL]struct{}, len(in))
	out := in[:0]
	for _, l := range in {
		if _, ok := seen[l]; ok {
			continue
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	return out
}

// ISLLengthKm returns the instantaneous length of ISL l at snapshot s.
func ISLLengthKm(s Snapshot, l ISL) float64 {
	return s.Pos[l.A].Distance(s.Pos[l.B])
}

// ISLMinAltitudeKm returns the minimum altitude above the (spherical) Earth
// surface reached by the straight-line link l at snapshot s. ISLs must stay
// above the lower atmosphere (~80 km, §2) to be unaffected by weather.
func ISLMinAltitudeKm(s Snapshot, l ISL) float64 {
	return geo.SegmentMinAltitudeKm(s.Pos[l.A], s.Pos[l.B])
}

// ISLStats summarizes the geometry of a constellation's ISLs at an instant.
type ISLStats struct {
	Count                  int
	MinKm, MaxKm, MeanKm   float64
	MinLinkAltitudeKm      float64
	LinksBelowAtmosphereKm int // links dipping below 80 km
}

// StatsAt computes ISL geometry statistics for snapshot s.
func (c *Constellation) StatsAt(t time.Time) ISLStats {
	s := c.SnapshotAt(t)
	st := ISLStats{MinKm: math.Inf(1), MinLinkAltitudeKm: math.Inf(1)}
	var sum float64
	for _, l := range c.ISLs {
		d := ISLLengthKm(s, l)
		sum += d
		st.MinKm = math.Min(st.MinKm, d)
		st.MaxKm = math.Max(st.MaxKm, d)
		alt := ISLMinAltitudeKm(s, l)
		st.MinLinkAltitudeKm = math.Min(st.MinLinkAltitudeKm, alt)
		if alt < 80 {
			st.LinksBelowAtmosphereKm++
		}
	}
	st.Count = len(c.ISLs)
	if st.Count > 0 {
		st.MeanKm = sum / float64(st.Count)
	} else {
		st.MinKm, st.MinLinkAltitudeKm = 0, 0
	}
	return st
}
