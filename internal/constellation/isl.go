package constellation

import (
	"math"
	"time"

	"leosim/internal/geo"
)

// ISL is a static point-to-point laser link between two satellites,
// identified by constellation-wide indices with A < B.
type ISL struct {
	A, B int
}

// PlusGridISLs builds the standard +Grid ISL topology (§2): each satellite
// links to its two neighbours in the same orbit and to the satellite in the
// same slot of each adjacent plane, yielding 4 ISLs per satellite. Links are
// intra-shell only.
//
// Seam handling distinguishes Walker deltas from Walker stars:
//
//   - A Walker-delta shell (RAANSpreadDeg == 360, e.g. Starlink/Kuiper)
//     spreads its planes over the full RAAN circle, so plane P−1 and plane 0
//     are as adjacent as any interior pair and the plane ring closes with a
//     wrap link. Wrapping the ring accumulates a mean-anomaly shift of
//     exactly WalkerF slot spacings, so the wrap connects slot j of the last
//     plane to slot j+WalkerF of plane 0, keeping seam links as short as
//     interior ones. omitSeam (WithoutSeamISLs) drops this wrap — the
//     ablation modelling operators that leave the delta ring open.
//
//   - A Walker-star shell (RAANSpreadDeg < 360, e.g. polar shells at 180°)
//     has a physical seam: the first and last planes are co-located in RAAN
//     but ascending on opposite sides of the Earth, so satellites there
//     counter-rotate and a laser link could not track. The wrap is never
//     generated for star shells, regardless of omitSeam.
//
// The generation order (plane-major, slot-minor, intra-plane before
// cross-plane) is part of the contract: graph building appends ISLs in this
// order, and the topo regression suite pins the exact byte sequence.
func PlusGridISLs(c *Constellation, omitSeam bool) []ISL {
	var isls []ISL
	for si, sh := range c.Shells {
		for plane := 0; plane < sh.Planes; plane++ {
			for slot := 0; slot < sh.SatsPerPlane; slot++ {
				a := c.SatIndex(si, plane, slot)
				// Intra-plane: successor in the same orbit (ring).
				if sh.SatsPerPlane > 1 {
					b := c.SatIndex(si, plane, (slot+1)%sh.SatsPerPlane)
					if a != b {
						isls = append(isls, OrderISL(a, b))
					}
				}
				// Cross-plane: same slot, next plane (ring over planes).
				if sh.Planes > 1 {
					next := plane + 1
					tgtSlot := slot
					if next == sh.Planes {
						// Star shells never close the plane ring (the seam
						// planes counter-rotate); delta shells do unless the
						// seam ablation asked otherwise.
						if omitSeam || sh.RAANSpreadDeg < 360 {
							continue
						}
						next = 0
						// Wrapping the plane ring accumulates a
						// mean-anomaly shift of exactly WalkerF slot
						// spacings; connect to the slot that absorbs it
						// so seam links stay as short as interior ones.
						tgtSlot = ((slot+sh.WalkerF)%sh.SatsPerPlane + sh.SatsPerPlane) % sh.SatsPerPlane
					}
					b := c.SatIndex(si, next, tgtSlot)
					if a != b {
						isls = append(isls, OrderISL(a, b))
					}
				}
			}
		}
	}
	return DedupISLs(isls)
}

// OrderISL returns the canonical representation of an ISL between satellites
// a and b: endpoints ordered so A < B.
func OrderISL(a, b int) ISL {
	if a > b {
		a, b = b, a
	}
	return ISL{A: a, B: b}
}

// DedupISLs removes duplicate links in place, keeping first occurrences in
// their original order (links must already be OrderISL-canonical for
// duplicates to be recognized).
func DedupISLs(in []ISL) []ISL {
	seen := make(map[ISL]struct{}, len(in))
	out := in[:0]
	for _, l := range in {
		if _, ok := seen[l]; ok {
			continue
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	return out
}

// ISLLengthKm returns the instantaneous length of ISL l at snapshot s.
func ISLLengthKm(s Snapshot, l ISL) float64 {
	return s.Pos[l.A].Distance(s.Pos[l.B])
}

// ISLMinAltitudeKm returns the minimum altitude above the (spherical) Earth
// surface reached by the straight-line link l at snapshot s. ISLs must stay
// above the lower atmosphere (~80 km, §2) to be unaffected by weather.
func ISLMinAltitudeKm(s Snapshot, l ISL) float64 {
	return geo.SegmentMinAltitudeKm(s.Pos[l.A], s.Pos[l.B])
}

// ISLStats summarizes the geometry of a constellation's ISLs at an instant.
type ISLStats struct {
	Count                  int
	MinKm, MaxKm, MeanKm   float64
	MinLinkAltitudeKm      float64
	LinksBelowAtmosphereKm int // links dipping below 80 km
}

// StatsAt computes ISL geometry statistics for snapshot s.
func (c *Constellation) StatsAt(t time.Time) ISLStats {
	s := c.SnapshotAt(t)
	st := ISLStats{MinKm: math.Inf(1), MinLinkAltitudeKm: math.Inf(1)}
	var sum float64
	for _, l := range c.ISLs {
		d := ISLLengthKm(s, l)
		sum += d
		st.MinKm = math.Min(st.MinKm, d)
		st.MaxKm = math.Max(st.MaxKm, d)
		alt := ISLMinAltitudeKm(s, l)
		st.MinLinkAltitudeKm = math.Min(st.MinLinkAltitudeKm, alt)
		if alt < 80 {
			st.LinksBelowAtmosphereKm++
		}
	}
	st.Count = len(c.ISLs)
	if st.Count > 0 {
		st.MeanKm = sum / float64(st.Count)
	} else {
		st.MinKm, st.MinLinkAltitudeKm = 0, 0
	}
	return st
}
