// Package constellation generates LEO mega-constellation geometry: Walker
// orbital shells, per-satellite propagators, the +Grid inter-satellite link
// topology, and position snapshots over time.
package constellation

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"leosim/internal/geo"
	"leosim/internal/orbit"
)

// Shell describes one orbital shell: a set of "parallel" orbital planes that
// share an altitude and inclination and cross the Equator at uniform
// separation (§2 of the paper).
type Shell struct {
	// Name identifies the shell in reports, e.g. "starlink-p1".
	Name string
	// Planes is the number of orbital planes.
	Planes int
	// SatsPerPlane is the number of satellites per plane.
	SatsPerPlane int
	// AltitudeKm is the operating altitude above the surface.
	AltitudeKm float64
	// InclinationDeg is the plane inclination.
	InclinationDeg float64
	// WalkerF is the Walker-delta phasing factor F in the i:T/P/F
	// notation: satellites of successive planes are offset in mean
	// anomaly by F·360°/T (T = Planes·SatsPerPlane). Any integer F keeps
	// the pattern globally consistent — in particular the anomaly shift
	// accumulated around the full plane ring is exactly F slot spacings,
	// which the +Grid seam links absorb by connecting slot j to slot j+F.
	WalkerF int
	// RAANSpreadDeg is the total right-ascension span the planes are
	// spread over: 360 for a Walker delta (inclined shells like Starlink
	// and Kuiper), 180 for a polar star configuration.
	RAANSpreadDeg float64
	// RAANOffsetDeg rotates the whole shell about the Earth's axis: plane p
	// gets RAAN = RAANOffsetDeg + p·RAANSpreadDeg/Planes. Zero (the
	// default) reproduces the historical layout; the invariant suite uses
	// it to verify that rotating the entire system leaves the physics
	// unchanged.
	RAANOffsetDeg float64
	// MinElevationDeg is the minimum elevation angle at which ground
	// terminals can communicate with satellites of this shell.
	MinElevationDeg float64
}

// Size returns the number of satellites in the shell.
func (s Shell) Size() int { return s.Planes * s.SatsPerPlane }

// Validate checks the shell parameters.
func (s Shell) Validate() error {
	if s.Planes <= 0 || s.SatsPerPlane <= 0 {
		return fmt.Errorf("constellation: shell %q needs positive planes×sats, got %d×%d",
			s.Name, s.Planes, s.SatsPerPlane)
	}
	if s.AltitudeKm <= 0 || s.AltitudeKm > 2000 {
		return fmt.Errorf("constellation: shell %q altitude %.0f km outside LEO (0,2000]",
			s.Name, s.AltitudeKm)
	}
	if s.InclinationDeg < 0 || s.InclinationDeg > 180 {
		return fmt.Errorf("constellation: shell %q inclination %.1f out of range",
			s.Name, s.InclinationDeg)
	}
	if s.MinElevationDeg < 0 || s.MinElevationDeg >= 90 {
		return fmt.Errorf("constellation: shell %q min elevation %.1f out of range",
			s.Name, s.MinElevationDeg)
	}
	if s.RAANSpreadDeg <= 0 || s.RAANSpreadDeg > 360 {
		return fmt.Errorf("constellation: shell %q RAAN spread %.1f out of range",
			s.Name, s.RAANSpreadDeg)
	}
	return nil
}

// CoverageRadiusKm returns the ground coverage radius of one satellite.
func (s Shell) CoverageRadiusKm() float64 {
	return geo.CoverageRadius(s.AltitudeKm, s.MinElevationDeg)
}

// MaxGSLKm returns the maximum ground-satellite link length.
func (s Shell) MaxGSLKm() float64 {
	return geo.MaxGSLLength(s.AltitudeKm, s.MinElevationDeg)
}

// Satellite identifies one satellite of a constellation and carries its
// propagator.
type Satellite struct {
	// Index is the satellite's position in the constellation-wide array.
	Index int
	// ShellIndex, Plane and Slot locate the satellite in its shell.
	ShellIndex, Plane, Slot int
	// Prop yields positions over time.
	Prop orbit.Propagator
}

// elements computes the Keplerian elements of satellite (plane, slot) in the
// shell at the given epoch.
func (s Shell) elements(plane, slot int, epoch time.Time) orbit.Elements {
	raan := s.RAANOffsetDeg + s.RAANSpreadDeg/float64(s.Planes)*float64(plane)
	slotSpacing := 360.0 / float64(s.SatsPerPlane)
	ma := slotSpacing*float64(slot) +
		float64(s.WalkerF)*360.0/float64(s.Size())*float64(plane)
	ma = math.Mod(ma, 360)
	return orbit.Circular(s.AltitudeKm, s.InclinationDeg, raan, ma, epoch)
}

// TLEs generates a formatted two-line element set per satellite of the
// shell, numbered from firstSatNum. The TLEs round-trip through
// orbit.ParseTLE/NewSGP4, enabling SGP4-based propagation of the shell.
func (s Shell) TLEs(firstSatNum int, epoch time.Time) []string {
	lines := make([]string, 0, 2*s.Size())
	for plane := 0; plane < s.Planes; plane++ {
		for slot := 0; slot < s.SatsPerPlane; slot++ {
			el := s.elements(plane, slot, epoch)
			n := 86400 / (2 * math.Pi) * el.MeanMotion() // rev/day
			tle := orbit.TLE{
				SatNum:         firstSatNum + plane*s.SatsPerPlane + slot,
				Epoch:          epoch,
				InclinationDeg: s.InclinationDeg,
				RAANDeg:        el.RAANRad * geo.Rad,
				Eccentricity:   0.0001,
				MeanAnomalyDeg: el.MeanAnomalyRad * geo.Rad,
				MeanMotion:     n,
			}
			l1, l2 := tle.Format()
			lines = append(lines, l1, l2)
		}
	}
	return lines
}

// parallelFor runs fn(i) for i in [0,n) across GOMAXPROCS workers.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
