package constellation

import "testing"

// hasISL reports whether the constellation carries the (canonical) link a–b.
func hasISL(c *Constellation, a, b int) bool {
	want := OrderISL(a, b)
	for _, l := range c.ISLs {
		if l == want {
			return true
		}
	}
	return false
}

// crossPlaneLinks counts links whose endpoints sit in different planes of
// shell 0, bucketed by whether they wrap the plane ring (last plane ↔ plane
// 0) or join interior neighbours.
func crossPlaneLinks(c *Constellation) (interior, wrap int) {
	sh := c.Shells[0]
	for _, l := range c.ISLs {
		pa, pb := c.Sats[l.A].Plane, c.Sats[l.B].Plane
		switch {
		case pa == pb:
		case (pa == 0 && pb == sh.Planes-1) || (pa == sh.Planes-1 && pb == 0):
			wrap++
		default:
			interior++
		}
	}
	return interior, wrap
}

// A Walker-delta shell closes its plane ring with wrap links, and the wrap
// absorbs the accumulated WalkerF phasing: slot j of the last plane connects
// to slot j+F of plane 0.
func TestPlusGridDeltaSeamWrap(t *testing.T) {
	sh := TestShell() // 8×8 delta, WalkerF=1, RAANSpreadDeg=360
	c, err := New([]Shell{sh}, WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	interior, wrap := crossPlaneLinks(c)
	if wrap != sh.SatsPerPlane {
		t.Fatalf("delta shell: %d wrap links, want %d (one per slot)", wrap, sh.SatsPerPlane)
	}
	if want := (sh.Planes - 1) * sh.SatsPerPlane; interior != want {
		t.Fatalf("delta shell: %d interior cross-plane links, want %d", interior, want)
	}
	for j := 0; j < sh.SatsPerPlane; j++ {
		a := c.SatIndex(0, sh.Planes-1, j)
		b := c.SatIndex(0, 0, (j+sh.WalkerF)%sh.SatsPerPlane)
		if !hasISL(c, a, b) {
			t.Errorf("delta seam: missing wrap link (plane %d, slot %d)–(plane 0, slot %d)",
				sh.Planes-1, j, (j+sh.WalkerF)%sh.SatsPerPlane)
		}
		// The naive same-slot wrap would be WalkerF slots out of phase and
		// must not exist (unless F ≡ 0 makes them the same link).
		if sh.WalkerF%sh.SatsPerPlane != 0 {
			if hasISL(c, a, c.SatIndex(0, 0, j)) {
				t.Errorf("delta seam: unexpected same-slot wrap at slot %d (ignores WalkerF shift)", j)
			}
		}
	}
}

// WithoutSeamISLs removes exactly the delta shell's wrap links and nothing
// else.
func TestPlusGridDeltaSeamOmitted(t *testing.T) {
	sh := TestShell()
	c, err := New([]Shell{sh}, WithISLs(), WithoutSeamISLs())
	if err != nil {
		t.Fatal(err)
	}
	interior, wrap := crossPlaneLinks(c)
	if wrap != 0 {
		t.Fatalf("WithoutSeamISLs: %d wrap links remain", wrap)
	}
	if want := (sh.Planes - 1) * sh.SatsPerPlane; interior != want {
		t.Fatalf("WithoutSeamISLs: %d interior cross-plane links, want %d", interior, want)
	}
	full, err := New([]Shell{sh}, WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(c.ISLs), len(full.ISLs)-sh.SatsPerPlane; got != want {
		t.Fatalf("WithoutSeamISLs removed %d links, want exactly the %d wraps",
			len(full.ISLs)-got, sh.SatsPerPlane)
	}
}

// A Walker-star shell (RAANSpreadDeg < 360) never wraps its plane ring: the
// first and last planes counter-rotate across the physical seam. Both option
// branches must agree.
func TestPlusGridStarSeamNeverWraps(t *testing.T) {
	sh := PolarShell() // 180° star
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"default", []Option{WithISLs()}},
		{"withoutSeam", []Option{WithISLs(), WithoutSeamISLs()}},
	} {
		c, err := New([]Shell{sh}, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		interior, wrap := crossPlaneLinks(c)
		if wrap != 0 {
			t.Errorf("%s: star shell has %d wrap links across the seam", tc.name, wrap)
		}
		if want := (sh.Planes - 1) * sh.SatsPerPlane; interior != want {
			t.Errorf("%s: star shell has %d interior cross-plane links, want %d",
				tc.name, interior, want)
		}
	}
}
