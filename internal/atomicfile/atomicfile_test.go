package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := []byte(`{"ok":true}`)
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("old old old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q, want %q", got, "new")
	}
}

// Abort — the crash stand-in — must leave neither the destination nor any
// temp litter behind.
func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-writ")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after Abort (err=%v)", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("temp litter after Abort: %v", ents)
	}
}

// A committed file must be invisible at the destination until Commit — the
// "no truncated files" guarantee is precisely that readers only ever see
// the pre-write state or the complete post-write state.
func TestInvisibleUntilCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Abort()
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("destination appeared before Commit")
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("after Commit: %q, %v", got, err)
	}
	// Abort after Commit is a no-op; the committed file survives.
	f.Abort()
	if _, err := os.ReadFile(path); err != nil {
		t.Fatalf("Abort after Commit removed the file: %v", err)
	}
}

func TestDoubleCommitFails(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err == nil || !strings.Contains(err.Error(), "already") {
		t.Fatalf("second Commit err = %v, want already-spent error", err)
	}
}
