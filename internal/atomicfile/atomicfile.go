// Package atomicfile writes files that either appear complete or not at
// all. Every write goes to a temporary file in the destination directory,
// is fsynced, and is renamed over the target in one step — a crash, OOM
// kill or Ctrl-C mid-write can never leave a truncated profile, trace,
// benchmark record or journal behind for a later run to choke on.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically with the given permissions.
// It is the drop-in replacement for os.WriteFile on outputs that other
// tools parse (JSON records, journals).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	if err := f.Chmod(perm); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// File is a write handle whose contents only appear at the destination
// path on Commit. Until then — and forever, if Abort is called or the
// process dies — the destination is untouched.
type File struct {
	f    *os.File
	path string
	done bool
}

// Create opens a temporary file next to path (same directory, so the final
// rename cannot cross filesystems). Write to it as usual, then Commit.
func Create(path string) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("atomicfile: %w", err)
	}
	return &File{f: f, path: path}, nil
}

// Write appends to the temporary file.
func (a *File) Write(p []byte) (int, error) { return a.f.Write(p) }

// Chmod sets the mode the committed file will carry.
func (a *File) Chmod(perm os.FileMode) error { return a.f.Chmod(perm) }

// Name returns the destination path the file will commit to.
func (a *File) Name() string { return a.path }

// Commit makes the written contents durable and visible at the destination
// path: fsync, close, rename. After Commit the handle is spent.
func (a *File) Commit() error {
	if a.done {
		return fmt.Errorf("atomicfile: %s already committed or aborted", a.path)
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return fmt.Errorf("atomicfile: sync %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return fmt.Errorf("atomicfile: close %s: %w", a.path, err)
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}

// Abort discards the temporary file, leaving the destination untouched.
// Safe to defer alongside Commit: after a Commit it is a no-op.
func (a *File) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}
