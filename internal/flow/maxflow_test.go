package flow

import (
	"testing"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

func TestMaxFlowClassic(t *testing.T) {
	// The textbook 6-node instance with max flow 23.
	m := NewMaxFlowNet(6)
	s, a, b, c, d, tt := int32(0), int32(1), int32(2), int32(3), int32(4), int32(5)
	m.AddArc(s, a, 16)
	m.AddArc(s, b, 13)
	m.AddArc(a, b, 10)
	m.AddArc(b, a, 4)
	m.AddArc(a, c, 12)
	m.AddArc(c, b, 9)
	m.AddArc(b, d, 14)
	m.AddArc(d, c, 7)
	m.AddArc(c, tt, 20)
	m.AddArc(d, tt, 4)
	f, err := m.Solve(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f, 23, 1e-9) {
		t.Errorf("max flow = %v, want 23", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	m := NewMaxFlowNet(3)
	m.AddArc(0, 1, 5)
	f, err := m.Solve(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("flow to disconnected sink = %v", f)
	}
}

func TestMaxFlowValidation(t *testing.T) {
	m := NewMaxFlowNet(2)
	if _, err := m.Solve(0, 0); err == nil {
		t.Errorf("s == t must fail")
	}
	if _, err := m.Solve(0, 9); err == nil {
		t.Errorf("out-of-range sink must fail")
	}
}

func TestMaxFlowUndirectedEdge(t *testing.T) {
	// s —10— m —10— t via an undirected chain: flow 10.
	net := NewMaxFlowNet(3)
	net.AddEdge(0, 1, 10)
	net.AddEdge(1, 2, 10)
	f, err := net.Solve(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f, 10, 1e-9) {
		t.Errorf("chain flow = %v", f)
	}
}

func TestBuildMaxFlowSatellitePools(t *testing.T) {
	// Two terminals each see the same satellite at 20 Gbps links; the
	// uplink pool (20) must cap their combined ingress.
	n := &graph.Network{}
	sat := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 10, Alt: 550}.ToECEF(), "s")
	n.NumSat = 1
	a := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(graph.NodeCity, geo.LL(0, 20).ToECEF(), "b")
	c := n.AddNode(graph.NodeCity, geo.LL(5, 10).ToECEF(), "c")
	n.NumCity = 3
	n.AddLink(a, sat, graph.LinkGSL, 20)
	n.AddLink(b, sat, graph.LinkGSL, 20)
	n.AddLink(sat, c, graph.LinkGSL, 20)

	// Without pools: a and b together could push 40 into the satellite,
	// but the single downlink to c caps at 20.
	m, _ := BuildMaxFlow(n, 0)
	src := m.AddNode()
	m.AddArc(src, a, 1e9)
	m.AddArc(src, b, 1e9)
	f, err := m.Solve(src, c)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f, 20, 1e-9) {
		t.Errorf("no-pool flow = %v, want 20 (downlink cap)", f)
	}

	// With pools and TWO downlink terminals, the uplink pool becomes the
	// binding constraint at 20 even though 2×20 of downlink exists.
	d := n.AddNode(graph.NodeCity, geo.LL(-5, 10).ToECEF(), "d")
	n.NumCity = 4
	n.AddLink(sat, d, graph.LinkGSL, 20)
	m2, _ := BuildMaxFlow(n, 20)
	src2 := m2.AddNode()
	sink2 := m2.AddNode()
	m2.AddArc(src2, a, 1e9)
	m2.AddArc(src2, b, 1e9)
	m2.AddArc(c, sink2, 1e9)
	m2.AddArc(d, sink2, 1e9)
	f2, err := m2.Solve(src2, sink2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f2, 20, 1e-9) {
		t.Errorf("pooled flow = %v, want 20 (uplink pool)", f2)
	}

	// Same instance without pools: 40 flows (2 uplinks × 2 downlinks).
	m3, _ := BuildMaxFlow(n, 0)
	src3 := m3.AddNode()
	sink3 := m3.AddNode()
	m3.AddArc(src3, a, 1e9)
	m3.AddArc(src3, b, 1e9)
	m3.AddArc(c, sink3, 1e9)
	m3.AddArc(d, sink3, 1e9)
	f3, err := m3.Solve(src3, sink3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f3, 40, 1e-9) {
		t.Errorf("unpooled flow = %v, want 40", f3)
	}
}

func TestMaxFlowMonotoneInLinks(t *testing.T) {
	// Adding a fiber link can only raise (or keep) the max flow — the
	// property the Fig 11 capacity metric relies on.
	n := &graph.Network{}
	sat := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 5, Alt: 550}.ToECEF(), "s")
	n.NumSat = 1
	metro := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "metro")
	nb := n.AddNode(graph.NodeCity, geo.LL(1, 0).ToECEF(), "neighbor")
	dst := n.AddNode(graph.NodeCity, geo.LL(0, 10).ToECEF(), "dst")
	n.NumCity = 3
	n.AddLink(metro, sat, graph.LinkGSL, 20)
	n.AddLink(nb, sat, graph.LinkGSL, 20)
	n.AddLink(sat, dst, graph.LinkGSL, 40)

	base, _ := BuildMaxFlow(n, 0)
	fBase, _ := base.Solve(metro, dst)

	n.AddLink(metro, nb, graph.LinkFiber, 200)
	aug, _ := BuildMaxFlow(n, 0)
	fAug, _ := aug.Solve(metro, dst)
	if fAug < fBase {
		t.Fatalf("fiber reduced max flow: %v → %v", fBase, fAug)
	}
	if !almostEq(fBase, 20, 1e-9) || !almostEq(fAug, 40, 1e-9) {
		t.Errorf("flows = %v → %v, want 20 → 40", fBase, fAug)
	}
}
