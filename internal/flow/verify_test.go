package flow

import (
	"math"
	"math/rand"
	"testing"
)

// symmetricProblem builds an allocation instance saturated with equal fair
// shares: every edge has the same capacity and flow count, so the
// progressive-filling heap is all ties. Any order-dependence in the solver
// (map-seeded heap, history-dependent tie-breaks) shows up here as run-to-run
// drift in the float accumulation.
func symmetricProblem(edges, flowsPerEdge int) *Problem {
	caps := make([]float64, edges)
	for i := range caps {
		caps[i] = 10
	}
	p := NewProblem(caps)
	for f := 0; f < flowsPerEdge; f++ {
		for e := 0; e < edges; e++ {
			// Each flow crosses two adjacent edges of the ring.
			p.AddFlow([]int32{int32(e), int32((e + 1) % edges)})
		}
	}
	return p
}

// TestMaxMinFairDeterministic is the regression test for the map-iteration
// nondeterminism the differential JSON suite surfaced: repeated solves of a
// tie-heavy instance must agree bit for bit.
func TestMaxMinFairDeterministic(t *testing.T) {
	p := symmetricProblem(16, 5)
	want, err := p.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 50; rep++ {
		got, err := p.MaxMinFair()
		if err != nil {
			t.Fatal(err)
		}
		for fi := range want {
			if got[fi] != want[fi] {
				t.Fatalf("rep %d: flow %d allocated %v, first run %v", rep, fi, got[fi], want[fi])
			}
		}
	}
	if vs := p.VerifyMaxMin(want, 1e-9); len(vs) != 0 {
		t.Fatalf("symmetric allocation not max-min fair: %v", vs)
	}
}

func TestVerifyMaxMinAcceptsExactSolution(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		caps := make([]float64, 12)
		for i := range caps {
			caps[i] = 1 + 9*r.Float64()
		}
		p := NewProblem(caps)
		for f := 0; f < 18; f++ {
			hops := 1 + r.Intn(4)
			es := make([]int32, hops)
			for h := range es {
				es[h] = int32(r.Intn(len(caps)))
			}
			p.AddFlow(es)
		}
		alloc, err := p.MaxMinFair()
		if err != nil {
			t.Fatal(err)
		}
		if vs := p.VerifyMaxMin(alloc, 1e-9); len(vs) != 0 {
			t.Fatalf("trial %d: exact solution rejected: %v", trial, vs)
		}
	}
}

func TestVerifyMaxMinCatchesOversubscription(t *testing.T) {
	p := NewProblem([]float64{10})
	p.AddFlow([]int32{0})
	p.AddFlow([]int32{0})
	vs := p.VerifyMaxMin([]float64{8, 8}, 1e-9)
	found := false
	for _, v := range vs {
		if v.Kind == "oversubscription" {
			found = true
		}
	}
	if !found {
		t.Fatalf("16 over a 10-capacity edge not flagged: %v", vs)
	}
}

// TestVerifyMaxMinCatchesUnderAllocation pins the oracle's power against the
// one-shot BottleneckApprox: on this instance the approximation strands
// capacity (flow 0 could grow on its unsaturated edge), which the bottleneck
// condition must flag — while the exact solver's answer passes.
func TestVerifyMaxMinCatchesUnderAllocation(t *testing.T) {
	p := NewProblem([]float64{10, 2})
	p.AddFlow([]int32{0})    // flow 0: wide edge only
	p.AddFlow([]int32{0, 1}) // flow 1: throttled by the narrow edge
	approx, err := p.BottleneckApprox()
	if err != nil {
		t.Fatal(err)
	}
	// Approximation: both flows see edge 0's 10/2 = 5; flow 1 additionally
	// capped at 2. Edge 0 then carries 7 of 10 — flow 0 should be at 8.
	if approx[0] != 5 || approx[1] != 2 {
		t.Fatalf("approx = %v, want [5 2]", approx)
	}
	vs := p.VerifyMaxMin(approx, 1e-9)
	found := false
	for _, v := range vs {
		if v.Kind == "no-bottleneck" {
			found = true
		}
	}
	if !found {
		t.Fatalf("under-allocation not flagged: %v", vs)
	}

	exact, err := p.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	if exact[0] != 8 || exact[1] != 2 {
		t.Fatalf("exact = %v, want [8 2]", exact)
	}
	if vs := p.VerifyMaxMin(exact, 1e-9); len(vs) != 0 {
		t.Fatalf("exact solution rejected: %v", vs)
	}
}

func TestVerifyMaxMinShapeChecks(t *testing.T) {
	p := NewProblem([]float64{5})
	p.AddFlow([]int32{0})
	if vs := p.VerifyMaxMin([]float64{1, 2}, 0); len(vs) != 1 || vs[0].Kind != "shape" {
		t.Fatalf("length mismatch: %v", vs)
	}
	if vs := p.VerifyMaxMin([]float64{math.NaN()}, 0); len(vs) != 1 || vs[0].Kind != "shape" {
		t.Fatalf("NaN rate: %v", vs)
	}
	if vs := p.VerifyMaxMin([]float64{-1}, 0); len(vs) != 1 || vs[0].Kind != "shape" {
		t.Fatalf("negative rate: %v", vs)
	}
}

// Zero-capacity edges and pathless flows are conventions, not violations.
func TestVerifyMaxMinZeroCapacityAndPathless(t *testing.T) {
	p := NewProblem([]float64{0, 4})
	p.AddFlow([]int32{0, 1}) // crosses the dead edge: rate 0
	p.AddFlow([]int32{1})
	p.AddFlow(nil) // pathless: rate 0 by convention
	alloc, err := p.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 0 || alloc[1] != 4 || alloc[2] != 0 {
		t.Fatalf("alloc = %v, want [0 4 0]", alloc)
	}
	if vs := p.VerifyMaxMin(alloc, 1e-9); len(vs) != 0 {
		t.Fatalf("conventional zeros rejected: %v", vs)
	}
}
