// Package flow implements routed-flow throughput allocation — the
// functional equivalent of the floodns simulator the paper uses in §5. Flows
// follow fixed paths; link capacity is shared by the simple max-min
// fair-share algorithm [Nace et al.]: iteratively find the most congested
// link, share its remaining capacity equally among the unfrozen flows
// crossing it, freeze them, and repeat.
package flow

import (
	"container/heap"
	"fmt"
	"math"

	"leosim/internal/telemetry"
)

// Problem is a max-min fair allocation instance over directed edges.
type Problem struct {
	cap       []float64
	flowEdges [][]int32

	// validated lazily by MaxMinFair.
	err error
}

// NewProblem creates an instance with the given per-directed-edge capacities
// (Gbps or any consistent unit).
func NewProblem(capacities []float64) *Problem {
	c := make([]float64, len(capacities))
	copy(c, capacities)
	return &Problem{cap: c}
}

// AddFlow registers a flow crossing the given directed edges and returns its
// flow ID. Edges out of range poison the problem; MaxMinFair reports the
// error.
func (p *Problem) AddFlow(edges []int32) int {
	for _, e := range edges {
		if e < 0 || int(e) >= len(p.cap) {
			p.err = fmt.Errorf("flow: edge %d out of range [0,%d)", e, len(p.cap))
		}
	}
	es := make([]int32, len(edges))
	copy(es, edges)
	p.flowEdges = append(p.flowEdges, es)
	return len(p.flowEdges) - 1
}

// NumFlows returns the number of registered flows.
func (p *Problem) NumFlows() int { return len(p.flowEdges) }

type shareItem struct {
	edge  int32
	share float64
}

type shareHeap []shareItem

func (h shareHeap) Len() int { return len(h) }

// Less orders by share, then by edge index: equal fair shares are common
// (symmetric topologies, quantized capacities) and the freeze order they
// induce must not depend on heap insertion history, or same-seed runs
// diverge in the last float bits of the allocation.
func (h shareHeap) Less(i, j int) bool {
	if h[i].share != h[j].share {
		return h[i].share < h[j].share
	}
	return h[i].edge < h[j].edge
}
func (h shareHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *shareHeap) Push(x interface{}) { *h = append(*h, x.(shareItem)) }
func (h *shareHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MaxMinFair computes the max-min fair allocation and returns the rate per
// flow. Flows crossing a zero-capacity edge get rate 0. The implementation
// is the exact progressive-filling algorithm with a lazy heap over link fair
// shares (correct because fair shares are non-decreasing as flows freeze).
func (p *Problem) MaxMinFair() ([]float64, error) {
	if p.err != nil {
		return nil, p.err
	}
	sp := telemetry.StartStageSpan(telemetry.StageMaxMin)
	defer sp.End()
	nf := len(p.flowEdges)
	alloc := make([]float64, nf)
	if nf == 0 {
		return alloc, nil
	}

	// Per-edge state: remaining capacity and the unfrozen flows crossing.
	// Indexed by edge (not map-keyed) so every iteration below runs in
	// ascending edge order — the allocation must be a pure function of the
	// problem, bit for bit.
	used := make([]float64, len(p.cap))
	edgeFlows := make([][]int32, len(p.cap))
	unfrozenCount := make([]int32, len(p.cap))
	for fi, edges := range p.flowEdges {
		seen := map[int32]bool{}
		for _, e := range edges {
			if seen[e] {
				continue // a flow crossing an edge twice still counts once
			}
			seen[e] = true
			edgeFlows[e] = append(edgeFlows[e], int32(fi))
			unfrozenCount[e]++
		}
	}

	frozen := make([]bool, nf)
	share := func(e int32) float64 {
		n := unfrozenCount[e]
		if n == 0 {
			return math.Inf(1)
		}
		rem := p.cap[e] - used[e]
		if rem < 0 {
			rem = 0
		}
		return rem / float64(n)
	}

	h := make(shareHeap, 0, len(edgeFlows))
	for e := int32(0); e < int32(len(edgeFlows)); e++ {
		if len(edgeFlows[e]) > 0 {
			h = append(h, shareItem{edge: e, share: share(e)})
		}
	}
	heap.Init(&h)

	remaining := nf
	// Flows with no edges are unconstrained; give them +Inf? The paper's
	// model always has at least one GSL per flow, but be safe: treat a
	// pathless flow as rate 0 (it transports nothing through the network).
	for fi, edges := range p.flowEdges {
		if len(edges) == 0 {
			frozen[fi] = true
			remaining--
		}
	}

	for remaining > 0 && h.Len() > 0 {
		it := heap.Pop(&h).(shareItem)
		cur := share(it.edge)
		if math.IsInf(cur, 1) {
			continue // all flows on this edge already frozen
		}
		if cur > it.share+1e-15 && h.Len() > 0 && cur > h[0].share {
			// Stale entry: share grew; reinsert with the fresh value.
			heap.Push(&h, shareItem{edge: it.edge, share: cur})
			continue
		}
		// Freeze every unfrozen flow crossing this bottleneck at cur.
		for _, fi := range edgeFlows[it.edge] {
			if frozen[fi] {
				continue
			}
			frozen[fi] = true
			remaining--
			alloc[fi] = cur
			seen := map[int32]bool{}
			for _, e := range p.flowEdges[fi] {
				if seen[e] {
					continue
				}
				seen[e] = true
				used[e] += cur
				unfrozenCount[e]--
			}
		}
	}
	return alloc, nil
}

// BottleneckApprox computes the one-shot approximation used as an ablation
// baseline: each flow gets min over its edges of cap/flows-crossing, without
// iterating. It under-allocates relative to exact max-min fairness.
func (p *Problem) BottleneckApprox() ([]float64, error) {
	if p.err != nil {
		return nil, p.err
	}
	count := make([]int32, len(p.cap))
	for _, edges := range p.flowEdges {
		seen := map[int32]bool{}
		for _, e := range edges {
			if !seen[e] {
				seen[e] = true
				count[e]++
			}
		}
	}
	alloc := make([]float64, len(p.flowEdges))
	for fi, edges := range p.flowEdges {
		if len(edges) == 0 {
			continue
		}
		m := math.Inf(1)
		for _, e := range edges {
			s := p.cap[e] / float64(count[e])
			if s < m {
				m = s
			}
		}
		alloc[fi] = m
	}
	return alloc, nil
}

// Sum returns the total of an allocation — the aggregate network throughput
// the paper's Fig 4/5 report.
func Sum(alloc []float64) float64 {
	var s float64
	for _, a := range alloc {
		s += a
	}
	return s
}

// MaxMinViolation is one breach of the max-min optimality conditions found
// by VerifyMaxMin.
type MaxMinViolation struct {
	// Kind is "shape", "oversubscription" or "no-bottleneck".
	Kind string
	// Detail is a human-readable description of the breach.
	Detail string
}

// VerifyMaxMin checks an allocation against the two conditions that exactly
// characterize the max-min fair solution for fixed single-path flows
// [Bertsekas & Gallager, §6.5.2]:
//
//  1. Feasibility: no directed edge carries more than its capacity.
//  2. Bottleneck condition: every flow with a non-empty path crosses at
//     least one saturated edge on which its rate is maximal among the flows
//     crossing that edge — i.e. the flow cannot be increased without
//     decreasing a flow of smaller-or-equal rate.
//
// It is an independent oracle for MaxMinFair (and a detector for
// under-allocating approximations like BottleneckApprox): it never runs the
// progressive-filling algorithm, only checks its defining property. tol
// absorbs floating-point noise in both saturation and rate comparisons.
// Returns nil when the allocation is exactly max-min fair.
func (p *Problem) VerifyMaxMin(alloc []float64, tol float64) []MaxMinViolation {
	var out []MaxMinViolation
	if len(alloc) != len(p.flowEdges) {
		return append(out, MaxMinViolation{Kind: "shape",
			Detail: fmt.Sprintf("allocation length %d, want %d flows", len(alloc), len(p.flowEdges))})
	}
	for fi, a := range alloc {
		if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
			out = append(out, MaxMinViolation{Kind: "shape",
				Detail: fmt.Sprintf("flow %d has non-physical rate %v", fi, a)})
		}
	}
	if len(out) > 0 {
		return out
	}

	// Directed-edge load and the maximum rate crossing each edge.
	used := make([]float64, len(p.cap))
	maxOn := make([]float64, len(p.cap))
	for fi, edges := range p.flowEdges {
		seen := map[int32]bool{}
		for _, e := range edges {
			if seen[e] {
				continue
			}
			seen[e] = true
			used[e] += alloc[fi]
			if alloc[fi] > maxOn[e] {
				maxOn[e] = alloc[fi]
			}
		}
	}
	for e, u := range used {
		if u > p.cap[e]+tol {
			out = append(out, MaxMinViolation{Kind: "oversubscription",
				Detail: fmt.Sprintf("edge %d carries %v over capacity %v", e, u, p.cap[e])})
		}
	}
	for fi, edges := range p.flowEdges {
		if len(edges) == 0 {
			continue // pathless flows carry nothing by convention
		}
		bottlenecked := false
		for _, e := range edges {
			saturated := used[e] >= p.cap[e]-tol
			if saturated && alloc[fi] >= maxOn[e]-tol {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			out = append(out, MaxMinViolation{Kind: "no-bottleneck",
				Detail: fmt.Sprintf("flow %d at rate %v has no saturated edge where it is maximal (rate could grow)", fi, alloc[fi])})
		}
	}
	return out
}

// Validate checks an allocation against capacities: no directed edge may be
// oversubscribed beyond tol. Used by tests and as a debugging guard.
func (p *Problem) Validate(alloc []float64, tol float64) error {
	if len(alloc) != len(p.flowEdges) {
		return fmt.Errorf("flow: allocation length %d, want %d", len(alloc), len(p.flowEdges))
	}
	used := make([]float64, len(p.cap))
	for fi, edges := range p.flowEdges {
		seen := map[int32]bool{}
		for _, e := range edges {
			if !seen[e] {
				seen[e] = true
				used[e] += alloc[fi]
			}
		}
	}
	for e, u := range used {
		if u > p.cap[e]+tol {
			return fmt.Errorf("flow: edge %d oversubscribed: %v > %v", e, u, p.cap[e])
		}
	}
	return nil
}
