package flow

import (
	"fmt"

	"leosim/internal/graph"
)

// DirectedEdges converts a routed path on a network into the directed-edge
// IDs a Problem uses: each undirected link li yields edges 2·li (A→B) and
// 2·li+1 (B→A). Both directions of a link carry the full link capacity
// (full-duplex), matching the paper's capacity model.
func DirectedEdges(n *graph.Network, p graph.Path) ([]int32, error) {
	if len(p.Nodes) != len(p.Links)+1 {
		return nil, fmt.Errorf("flow: malformed path: %d nodes, %d links",
			len(p.Nodes), len(p.Links))
	}
	out := make([]int32, len(p.Links))
	for i, li := range p.Links {
		l := n.Links[li]
		u := p.Nodes[i]
		switch u {
		case l.A:
			out[i] = 2 * li
		case l.B:
			out[i] = 2*li + 1
		default:
			return nil, fmt.Errorf("flow: path node %d not on link %d", u, li)
		}
	}
	return out, nil
}

// ProblemFromNetwork creates an allocation Problem whose directed-edge
// capacities mirror the network's links.
func ProblemFromNetwork(n *graph.Network) *Problem {
	caps := make([]float64, 2*len(n.Links))
	for i, l := range n.Links {
		caps[2*i] = l.CapGbps
		caps[2*i+1] = l.CapGbps
	}
	return NewProblem(caps)
}

// AddPathFlow registers the directed flow along path p and returns its ID.
func AddPathFlow(pr *Problem, n *graph.Network, p graph.Path) (int, error) {
	edges, err := DirectedEdges(n, p)
	if err != nil {
		return 0, err
	}
	return pr.AddFlow(edges), nil
}
