package flow

import (
	"fmt"
	"math"

	"leosim/internal/graph"
)

// MaxFlowNet is a directed flow network solved with Dinic's algorithm. It
// backs the capacity-oriented experiments (Fig 11's "distributed GTs"),
// where the question is how much traffic *can* enter the constellation from
// a metro — a quantity that, unlike shortest-path max-min throughput, is
// monotone in added links, so fiber augmentation can never look harmful by
// a routing artifact.
type MaxFlowNet struct {
	head []int32   // first arc per node (-1)
	next []int32   // next arc in node's list
	to   []int32   // arc head
	cap_ []float64 // residual capacity

	level []int32
	iter  []int32
}

// NewMaxFlowNet creates a network with n nodes and no arcs.
func NewMaxFlowNet(n int) *MaxFlowNet {
	h := make([]int32, n)
	for i := range h {
		h[i] = -1
	}
	return &MaxFlowNet{head: h}
}

// Nodes returns the node count.
func (m *MaxFlowNet) Nodes() int { return len(m.head) }

// AddNode appends a node and returns its index.
func (m *MaxFlowNet) AddNode() int32 {
	m.head = append(m.head, -1)
	return int32(len(m.head) - 1)
}

// AddArc inserts a directed arc u→v with the given capacity (and its zero-
// capacity reverse arc for the residual network).
func (m *MaxFlowNet) AddArc(u, v int32, capacity float64) {
	m.pushArc(u, v, capacity)
	m.pushArc(v, u, 0)
}

// AddEdge inserts both directions with the full capacity each (a full-duplex
// link).
func (m *MaxFlowNet) AddEdge(u, v int32, capacity float64) {
	m.pushArc(u, v, capacity)
	m.pushArc(v, u, capacity)
}

func (m *MaxFlowNet) pushArc(u, v int32, c float64) {
	m.to = append(m.to, v)
	m.cap_ = append(m.cap_, c)
	m.next = append(m.next, m.head[u])
	m.head[u] = int32(len(m.to) - 1)
}

// Solve computes the maximum s→t flow (Dinic). The network's residual
// capacities are consumed; call on a fresh build per query.
func (m *MaxFlowNet) Solve(s, t int32) (float64, error) {
	n := len(m.head)
	if int(s) >= n || int(t) >= n || s < 0 || t < 0 {
		return 0, fmt.Errorf("flow: source/sink out of range")
	}
	if s == t {
		return 0, fmt.Errorf("flow: source equals sink")
	}
	m.level = make([]int32, n)
	m.iter = make([]int32, n)
	var total float64
	for m.bfs(s, t) {
		copy(m.iter, m.head)
		for {
			f := m.dfs(s, t, math.Inf(1))
			if f <= 0 {
				break
			}
			total += f
		}
	}
	return total, nil
}

func (m *MaxFlowNet) bfs(s, t int32) bool {
	for i := range m.level {
		m.level[i] = -1
	}
	queue := make([]int32, 0, len(m.level))
	queue = append(queue, s)
	m.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for a := m.head[u]; a >= 0; a = m.next[a] {
			v := m.to[a]
			if m.cap_[a] > 1e-12 && m.level[v] < 0 {
				m.level[v] = m.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return m.level[t] >= 0
}

func (m *MaxFlowNet) dfs(u, t int32, f float64) float64 {
	if u == t {
		return f
	}
	for ; m.iter[u] >= 0; m.iter[u] = m.next[m.iter[u]] {
		a := m.iter[u]
		v := m.to[a]
		if m.cap_[a] > 1e-12 && m.level[v] == m.level[u]+1 {
			d := m.dfs(v, t, math.Min(f, m.cap_[a]))
			if d > 0 {
				m.cap_[a] -= d
				m.cap_[a^1] += d // paired reverse arc
				return d
			}
		}
	}
	return 0
}

// BuildMaxFlow converts a snapshot network into a max-flow instance with the
// same capacity semantics as NetworkProblem: every link is full-duplex at
// CapGbps, and when satPoolGbps > 0 each satellite's ground-facing traffic
// passes through an uplink gate (terminal→satellite) and a downlink gate
// (satellite→terminal) of that capacity, while ISLs attach to the satellite
// node directly. It returns the instance and the mapping from network node
// to max-flow node.
func BuildMaxFlow(n *graph.Network, satPoolGbps float64) (*MaxFlowNet, []int32) {
	m := NewMaxFlowNet(n.N())
	nodeOf := make([]int32, n.N())
	for i := range nodeOf {
		nodeOf[i] = int32(i)
	}

	var upGate, dnGate []int32
	if satPoolGbps > 0 {
		upGate = make([]int32, n.NumSat)
		dnGate = make([]int32, n.NumSat)
		for s := 0; s < n.NumSat; s++ {
			upGate[s] = m.AddNode()
			dnGate[s] = m.AddNode()
			// gate → satellite (uplink pool), satellite → gate (downlink).
			m.AddArc(upGate[s], int32(s), satPoolGbps)
			m.AddArc(int32(s), dnGate[s], satPoolGbps)
		}
	}

	for _, l := range n.Links {
		switch {
		case l.Kind != graph.LinkGSL || satPoolGbps <= 0:
			m.AddEdge(l.A, l.B, l.CapGbps)
		default:
			term, sat := l.A, l.B
			if n.Kind[term] == graph.NodeSatellite {
				term, sat = sat, term
			}
			// Terminal → up gate → satellite, and satellite → down gate
			// → terminal, each leg at link capacity; the gate arcs cap
			// the per-satellite aggregate.
			m.AddArc(term, upGate[sat], l.CapGbps)
			m.AddArc(dnGate[sat], term, l.CapGbps)
		}
	}
	return m, nodeOf
}
