package flow

import (
	"testing"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

// buildBounceNet creates a network where two terminals each see the same two
// satellites, to exercise the per-satellite aggregate pools:
//
//	a ── s1 ── b          a ── s2 ── b
func buildBounceNet() (*graph.Network, []graph.Path) {
	n := &graph.Network{}
	s1 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 2, Lon: 10, Alt: 550}.ToECEF(), "s1")
	s2 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: -2, Lon: 10, Alt: 550}.ToECEF(), "s2")
	n.NumSat = 2
	a := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(graph.NodeCity, geo.LL(0, 20).ToECEF(), "b")
	n.NumCity = 2
	l1 := n.AddLink(a, s1, graph.LinkGSL, 20)
	l2 := n.AddLink(s1, b, graph.LinkGSL, 20)
	l3 := n.AddLink(a, s2, graph.LinkGSL, 20)
	l4 := n.AddLink(s2, b, graph.LinkGSL, 20)
	return n, []graph.Path{
		{Nodes: []int32{a, s1, b}, Links: []int32{l1, l2}},
		{Nodes: []int32{a, s2, b}, Links: []int32{l3, l4}},
	}
}

func TestNetworkProblemNoSatCap(t *testing.T) {
	n, paths := buildBounceNet()
	pr := NewNetworkProblem(n, 0)
	for _, p := range paths {
		if _, err := pr.AddPath(p); err != nil {
			t.Fatal(err)
		}
	}
	alloc, err := pr.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	// Without satellite pools, each path is limited by its 20 Gbps links.
	if !almostEq(alloc[0], 20, 1e-9) || !almostEq(alloc[1], 20, 1e-9) {
		t.Errorf("alloc = %v, want [20 20]", alloc)
	}
}

func TestNetworkProblemSatPoolBindsSharedSatellite(t *testing.T) {
	n, paths := buildBounceNet()
	// Two flows through satellite s1: its 20 Gbps uplink pool must split.
	pr := NewNetworkProblem(n, 20)
	for i := 0; i < 2; i++ {
		if _, err := pr.AddPath(paths[0]); err != nil {
			t.Fatal(err)
		}
	}
	alloc, err := pr.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(alloc[0], 10, 1e-9) || !almostEq(alloc[1], 10, 1e-9) {
		t.Errorf("alloc = %v, want [10 10] (satellite pool shared)", alloc)
	}
}

func TestNetworkProblemBPPaysPerBounce(t *testing.T) {
	// A BP-style path bouncing through TWO satellites and an intermediate
	// relay competes for two uplink pools; an ISL-style path between the
	// same satellites uses each pool once and the laser in between.
	n := &graph.Network{}
	s1 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 8, Alt: 550}.ToECEF(), "s1")
	s2 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 22, Alt: 550}.ToECEF(), "s2")
	s3 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 4, Lon: 22, Alt: 550}.ToECEF(), "s3")
	n.NumSat = 3
	a := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	r := n.AddNode(graph.NodeRelay, geo.LL(0, 15).ToECEF(), "r")
	b := n.AddNode(graph.NodeCity, geo.LL(0, 30).ToECEF(), "b")
	b2 := n.AddNode(graph.NodeCity, geo.LL(4, 30).ToECEF(), "b2")
	n.NumCity = 3
	up1 := n.AddLink(a, s1, graph.LinkGSL, 20)
	dn1 := n.AddLink(s1, r, graph.LinkGSL, 20)
	up2 := n.AddLink(r, s2, graph.LinkGSL, 20)
	dn2 := n.AddLink(s2, b, graph.LinkGSL, 20)
	isl := n.AddLink(s1, s3, graph.LinkISL, 100)
	dn3 := n.AddLink(s3, b2, graph.LinkGSL, 20)

	bp := graph.Path{Nodes: []int32{a, s1, r, s2, b}, Links: []int32{up1, dn1, up2, dn2}}
	hy := graph.Path{Nodes: []int32{a, s1, s3, b2}, Links: []int32{up1, isl, dn3}}

	pr := NewNetworkProblem(n, 20)
	bpID, err := pr.AddPath(bp)
	if err != nil {
		t.Fatal(err)
	}
	hyID, err := pr.AddPath(hy)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := pr.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	// Both flows cross s1's uplink pool (20) → 10 each at the first
	// bottleneck; the BP flow additionally loads s2's uplink and both
	// downlink pools but nothing binds tighter, so both end at 10. The
	// point of this test is the edge sets, checked via Validate.
	if err := pr.Validate(alloc, 1e-9); err != nil {
		t.Fatal(err)
	}
	if !almostEq(alloc[bpID], 10, 1e-9) || !almostEq(alloc[hyID], 10, 1e-9) {
		t.Errorf("alloc = %v", alloc)
	}
	// Now saturate s2's uplink pool with two more relay-sourced flows: the
	// BP flow competes there, the ISL flow does not.
	rel := graph.Path{Nodes: []int32{r, s2, b}, Links: []int32{up2, dn2}}
	pr2 := NewNetworkProblem(n, 20)
	bpID, _ = pr2.AddPath(bp)
	hyID, _ = pr2.AddPath(hy)
	r1, _ := pr2.AddPath(rel)
	r2, _ := pr2.AddPath(rel)
	alloc, err = pr2.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	if err := pr2.Validate(alloc, 1e-9); err != nil {
		t.Fatal(err)
	}
	// s2 uplink pool (20) is shared by bp, r1, r2 → ~6.67 each, while the
	// hybrid flow escapes with the rest of s1's pool (20 − 6.67 = 13.33).
	if alloc[bpID] >= alloc[hyID] {
		t.Errorf("BP %v should be squeezed below hybrid %v at the shared bounce",
			alloc[bpID], alloc[hyID])
	}
	if !almostEq(alloc[r1], alloc[r2], 1e-9) {
		t.Errorf("relay flows unequal: %v vs %v", alloc[r1], alloc[r2])
	}
}

func TestSetISLCapacity(t *testing.T) {
	n := &graph.Network{}
	s1 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 8, Alt: 550}.ToECEF(), "s1")
	s2 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 22, Alt: 550}.ToECEF(), "s2")
	n.NumSat = 2
	a := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(graph.NodeCity, geo.LL(0, 30).ToECEF(), "b")
	n.NumCity = 2
	up := n.AddLink(a, s1, graph.LinkGSL, 20)
	isl := n.AddLink(s1, s2, graph.LinkISL, 100)
	dn := n.AddLink(s2, b, graph.LinkGSL, 20)
	p := graph.Path{Nodes: []int32{a, s1, s2, b}, Links: []int32{up, isl, dn}}

	pr := NewNetworkProblem(n, 0)
	id, err := pr.AddPath(p)
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := pr.MaxMinFair()
	if !almostEq(alloc[id], 20, 1e-9) {
		t.Fatalf("baseline alloc = %v", alloc[id])
	}
	// Squeeze the ISL below the GSLs and re-solve the same problem.
	pr.SetISLCapacity(5)
	alloc, _ = pr.MaxMinFair()
	if !almostEq(alloc[id], 5, 1e-9) {
		t.Errorf("after SetISLCapacity(5): %v", alloc[id])
	}
	// And restore.
	pr.SetISLCapacity(100)
	alloc, _ = pr.MaxMinFair()
	if !almostEq(alloc[id], 20, 1e-9) {
		t.Errorf("after restore: %v", alloc[id])
	}
}

func TestNetworkProblemRejectsGroundGSL(t *testing.T) {
	n := &graph.Network{}
	n.NumSat = 0
	a := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	b := n.AddNode(graph.NodeCity, geo.LL(0, 1).ToECEF(), "b")
	li := n.AddLink(a, b, graph.LinkGSL, 20) // malformed: GSL between GTs
	pr := NewNetworkProblem(n, 20)
	if _, err := pr.AddPath(graph.Path{Nodes: []int32{a, b}, Links: []int32{li}}); err == nil {
		t.Errorf("GSL between two ground nodes must be rejected")
	}
}
