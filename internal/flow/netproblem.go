package flow

import (
	"fmt"

	"leosim/internal/graph"
)

// NetworkProblem couples a max-min Problem to a network's edge layout and
// optionally enforces per-satellite aggregate GSL capacity.
//
// The paper's §2 notes that each satellite shares its up-down radio capacity
// across the multiple GTs it serves simultaneously; §5's result that BP
// "uses up more constrained capacity at these links" follows from satellites
// being the constrained radio resource. With SatAggGbps > 0, every satellite
// gets a virtual uplink pool (traffic arriving from any terminal) and a
// virtual downlink pool (traffic leaving to any terminal), each of that
// capacity, in addition to the per-link capacities. BP paths debit a pool at
// every bounce; ISL paths only at the first and last hop — which is exactly
// the asymmetry §5 describes.
type NetworkProblem struct {
	*Problem
	n *graph.Network
	// satBase is the directed-edge index of satellite 0's uplink pool, or
	// -1 when aggregate constraints are disabled.
	satBase int
}

// NewNetworkProblem builds the allocation problem for n. satAggGbps > 0
// enables the per-satellite aggregate pools.
func NewNetworkProblem(n *graph.Network, satAggGbps float64) *NetworkProblem {
	nLink := len(n.Links)
	caps := make([]float64, 2*nLink, 2*nLink+2*n.NumSat)
	for i, l := range n.Links {
		caps[2*i] = l.CapGbps
		caps[2*i+1] = l.CapGbps
	}
	satBase := -1
	if satAggGbps > 0 {
		satBase = len(caps)
		for i := 0; i < n.NumSat; i++ {
			caps = append(caps, satAggGbps, satAggGbps) // up pool, down pool
		}
	}
	return &NetworkProblem{Problem: NewProblem(caps), n: n, satBase: satBase}
}

// SetISLCapacity rewrites the capacity of every ISL-link edge (both
// directions). Flows already added keep their routes; the problem can be
// re-solved with MaxMinFair — which is how the Fig 5 capacity sweep reuses
// one set of shortest paths across ISL capacities.
func (np *NetworkProblem) SetISLCapacity(gbps float64) {
	for i, l := range np.n.Links {
		if l.Kind == graph.LinkISL {
			np.cap[2*i] = gbps
			np.cap[2*i+1] = gbps
		}
	}
}

// AddPath registers a flow along path p, debiting link capacities and (when
// enabled) the satellite pools it bounces through. It returns the flow ID.
func (np *NetworkProblem) AddPath(p graph.Path) (int, error) {
	edges, err := DirectedEdges(np.n, p)
	if err != nil {
		return 0, err
	}
	if np.satBase >= 0 {
		for i, li := range p.Links {
			l := np.n.Links[li]
			if l.Kind != graph.LinkGSL {
				continue
			}
			from, to := p.Nodes[i], p.Nodes[i+1]
			switch {
			case np.n.Kind[to] == graph.NodeSatellite:
				// Terminal → satellite: uplink pool of the satellite.
				edges = append(edges, int32(np.satBase+2*int(to)))
			case np.n.Kind[from] == graph.NodeSatellite:
				// Satellite → terminal: downlink pool.
				edges = append(edges, int32(np.satBase+2*int(from)+1))
			default:
				return 0, fmt.Errorf("flow: GSL between two ground nodes")
			}
		}
	}
	return np.AddFlow(edges), nil
}
