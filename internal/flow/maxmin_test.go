package flow

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleLinkFairShare(t *testing.T) {
	// Three flows across one link of capacity 3 → 1 each.
	p := NewProblem([]float64{3})
	for i := 0; i < 3; i++ {
		p.AddFlow([]int32{0})
	}
	alloc, err := p.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range alloc {
		if !almostEq(a, 1, 1e-12) {
			t.Errorf("flow %d = %v, want 1", i, a)
		}
	}
	if !almostEq(Sum(alloc), 3, 1e-12) {
		t.Errorf("sum = %v", Sum(alloc))
	}
}

func TestClassicTwoLink(t *testing.T) {
	// Flow A crosses link0 (cap 1) and link1 (cap 10); flow B only link1.
	// Max-min: A = 1 (bottleneck link0), B = 9.
	p := NewProblem([]float64{1, 10})
	a := p.AddFlow([]int32{0, 1})
	b := p.AddFlow([]int32{1})
	alloc, err := p.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(alloc[a], 1, 1e-12) {
		t.Errorf("A = %v, want 1", alloc[a])
	}
	if !almostEq(alloc[b], 9, 1e-12) {
		t.Errorf("B = %v, want 9", alloc[b])
	}
	if err := p.Validate(alloc, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestParkingLot(t *testing.T) {
	// Parking-lot topology: long flow over links 0,1,2 (cap 1 each), and a
	// short flow on each link. Max-min: every flow gets 0.5.
	p := NewProblem([]float64{1, 1, 1})
	long := p.AddFlow([]int32{0, 1, 2})
	shorts := []int{p.AddFlow([]int32{0}), p.AddFlow([]int32{1}), p.AddFlow([]int32{2})}
	alloc, err := p.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(alloc[long], 0.5, 1e-12) {
		t.Errorf("long = %v", alloc[long])
	}
	for _, s := range shorts {
		if !almostEq(alloc[s], 0.5, 1e-12) {
			t.Errorf("short %d = %v", s, alloc[s])
		}
	}
}

func TestHeterogeneousBottlenecks(t *testing.T) {
	// link0 cap 2 shared by f0,f1; link1 cap 10 shared by f1,f2.
	// f0=1, f1=1 (link0 bottleneck); f2 = 9.
	p := NewProblem([]float64{2, 10})
	f0 := p.AddFlow([]int32{0})
	f1 := p.AddFlow([]int32{0, 1})
	f2 := p.AddFlow([]int32{1})
	alloc, _ := p.MaxMinFair()
	if !almostEq(alloc[f0], 1, 1e-12) || !almostEq(alloc[f1], 1, 1e-12) ||
		!almostEq(alloc[f2], 9, 1e-12) {
		t.Errorf("alloc = %v, want [1 1 9]", alloc)
	}
}

func TestZeroCapacityAndEmptyFlow(t *testing.T) {
	p := NewProblem([]float64{0, 5})
	dead := p.AddFlow([]int32{0, 1})
	live := p.AddFlow([]int32{1})
	empty := p.AddFlow(nil)
	alloc, err := p.MaxMinFair()
	if err != nil {
		t.Fatal(err)
	}
	if alloc[dead] != 0 {
		t.Errorf("flow over zero-capacity edge = %v", alloc[dead])
	}
	if !almostEq(alloc[live], 5, 1e-12) {
		t.Errorf("live flow = %v", alloc[live])
	}
	if alloc[empty] != 0 {
		t.Errorf("pathless flow = %v", alloc[empty])
	}
}

func TestRepeatedEdgeCountsOnce(t *testing.T) {
	// A flow listed twice on the same edge must not double-count.
	p := NewProblem([]float64{4})
	f0 := p.AddFlow([]int32{0, 0})
	f1 := p.AddFlow([]int32{0})
	alloc, _ := p.MaxMinFair()
	if !almostEq(alloc[f0], 2, 1e-12) || !almostEq(alloc[f1], 2, 1e-12) {
		t.Errorf("alloc = %v, want [2 2]", alloc)
	}
}

func TestInvalidEdge(t *testing.T) {
	p := NewProblem([]float64{1})
	p.AddFlow([]int32{5})
	if _, err := p.MaxMinFair(); err == nil {
		t.Errorf("out-of-range edge must error")
	}
	if _, err := p.BottleneckApprox(); err == nil {
		t.Errorf("out-of-range edge must error in approx too")
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(nil)
	alloc, err := p.MaxMinFair()
	if err != nil || len(alloc) != 0 {
		t.Errorf("empty problem: %v %v", alloc, err)
	}
}

func TestBottleneckApproxUnderestimates(t *testing.T) {
	p := NewProblem([]float64{1, 10})
	p.AddFlow([]int32{0, 1})
	p.AddFlow([]int32{1})
	exact, _ := p.MaxMinFair()
	approx, _ := p.BottleneckApprox()
	if Sum(approx) > Sum(exact)+1e-12 {
		t.Errorf("approx %v exceeds exact %v", Sum(approx), Sum(exact))
	}
	// Approx flow B: min(10/2)=5 < 9.
	if !almostEq(approx[1], 5, 1e-12) {
		t.Errorf("approx B = %v, want 5", approx[1])
	}
}

// Property: max-min fair allocations never oversubscribe any edge and are
// Pareto-efficient on every flow's bottleneck (no flow can be increased
// without an edge exceeding capacity).
func TestMaxMinFairProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ne := 2 + rng.Intn(20)
		caps := make([]float64, ne)
		for i := range caps {
			caps[i] = 1 + rng.Float64()*20
		}
		p := NewProblem(caps)
		nf := 1 + rng.Intn(30)
		for i := 0; i < nf; i++ {
			l := 1 + rng.Intn(4)
			edges := make([]int32, l)
			for j := range edges {
				edges[j] = int32(rng.Intn(ne))
			}
			p.AddFlow(edges)
		}
		alloc, err := p.MaxMinFair()
		if err != nil {
			return false
		}
		if err := p.Validate(alloc, 1e-6); err != nil {
			return false
		}
		// Pareto check: every flow has at least one saturated edge.
		used := make([]float64, ne)
		for fi, edges := range p.flowEdges {
			seen := map[int32]bool{}
			for _, e := range edges {
				if !seen[e] {
					seen[e] = true
					used[e] += alloc[fi]
				}
			}
		}
		for fi, edges := range p.flowEdges {
			saturated := false
			for _, e := range edges {
				if used[e] >= caps[e]-1e-6 {
					saturated = true
					break
				}
			}
			if !saturated {
				_ = fi
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: water-filling allocations are "fair": sorted allocation vector
// lexicographically dominates the single-pass approximation's.
func TestExactDominatesApprox(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ne := 2 + rng.Intn(10)
		caps := make([]float64, ne)
		for i := range caps {
			caps[i] = 1 + rng.Float64()*10
		}
		p := NewProblem(caps)
		for i := 0; i < 1+rng.Intn(15); i++ {
			edges := []int32{int32(rng.Intn(ne))}
			if rng.Intn(2) == 0 {
				edges = append(edges, int32(rng.Intn(ne)))
			}
			p.AddFlow(edges)
		}
		exact, _ := p.MaxMinFair()
		approx, _ := p.BottleneckApprox()
		a := append([]float64(nil), exact...)
		b := append([]float64(nil), approx...)
		sort.Float64s(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] < b[i]-1e-9 {
				return false
			}
			if a[i] > b[i]+1e-9 {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedEdgesBridge(t *testing.T) {
	n := &graph.Network{}
	a := n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	s := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 5, Alt: 550}.ToECEF(), "s")
	b := n.AddNode(graph.NodeCity, geo.LL(0, 10).ToECEF(), "b")
	n.AddLink(a, s, graph.LinkGSL, 20)
	n.AddLink(s, b, graph.LinkGSL, 20)
	p, ok := n.ShortestPath(a, b)
	if !ok {
		t.Fatal("no path")
	}
	edges, err := DirectedEdges(n, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	// Link 0 traversed A→B (a is link.A) → id 0; link 1 traversed A→B
	// (s is link.A) → id 2.
	if edges[0] != 0 || edges[1] != 2 {
		t.Errorf("edges = %v, want [0 2]", edges)
	}
	// Reverse path uses the opposite directions.
	rp, _ := n.ShortestPath(b, a)
	redges, _ := DirectedEdges(n, rp)
	if redges[0] != 3 || redges[1] != 1 {
		t.Errorf("reverse edges = %v, want [3 1]", redges)
	}

	pr := ProblemFromNetwork(n)
	if len(pr.cap) != 4 {
		t.Fatalf("problem has %d directed edges", len(pr.cap))
	}
	id, err := AddPathFlow(pr, n, p)
	if err != nil || id != 0 {
		t.Fatalf("AddPathFlow: %v %v", id, err)
	}
	alloc, _ := pr.MaxMinFair()
	if !almostEq(alloc[0], 20, 1e-12) {
		t.Errorf("single flow gets full capacity, got %v", alloc[0])
	}
}

func TestDirectedEdgesMalformed(t *testing.T) {
	n := &graph.Network{}
	n.AddNode(graph.NodeCity, geo.LL(0, 0).ToECEF(), "a")
	bad := graph.Path{Nodes: []int32{0}, Links: []int32{0}}
	if _, err := DirectedEdges(n, bad); err == nil {
		t.Errorf("malformed path must error")
	}
}

func TestProblemAccessors(t *testing.T) {
	pr := NewProblem([]float64{1, 2})
	if pr.NumFlows() != 0 {
		t.Errorf("fresh problem has %d flows", pr.NumFlows())
	}
	pr.AddFlow([]int32{0})
	pr.AddFlow([]int32{1})
	if pr.NumFlows() != 2 {
		t.Errorf("NumFlows = %d", pr.NumFlows())
	}
}

func TestMaxFlowNodes(t *testing.T) {
	m := NewMaxFlowNet(3)
	if m.Nodes() != 3 {
		t.Errorf("Nodes = %d", m.Nodes())
	}
	if id := m.AddNode(); id != 3 || m.Nodes() != 4 {
		t.Errorf("AddNode = %d, Nodes = %d", id, m.Nodes())
	}
}
