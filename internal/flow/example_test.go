package flow_test

import (
	"fmt"

	"leosim/internal/flow"
)

// ExampleProblem_MaxMinFair reproduces the classic two-link fairness
// example: the long flow is bottlenecked at 1, freeing 9 for the short one.
func ExampleProblem_MaxMinFair() {
	p := flow.NewProblem([]float64{1, 10})
	long := p.AddFlow([]int32{0, 1})
	short := p.AddFlow([]int32{1})
	alloc, err := p.MaxMinFair()
	if err != nil {
		panic(err)
	}
	fmt.Printf("long=%.0f short=%.0f total=%.0f\n",
		alloc[long], alloc[short], flow.Sum(alloc))
	// Output: long=1 short=9 total=10
}
