// Package oracle precomputes per-snapshot distance oracles over frozen CSR
// snapshot graphs, trading a one-time build per snapshot epoch for
// microsecond path queries afterwards — the serving-scale layer ROADMAP
// calls for: `leosim serve` pays ~2 ms of Dijkstra per (pair, snapshot)
// cache miss, which caps it far below planetary-scale query volumes.
//
// Two cooperating structures, both exact:
//
//   - Hub labels: one full shortest-path tree per city terminal (the query
//     endpoints of the serving API), computed by the very same Dijkstra
//     kernel (graph.Network.Search) the uncached path answers run through.
//     Sharing the kernel is what makes the oracle *provably* exact rather
//     than approximately so: distances are bit-identical and the stored
//     predecessor trees reconstruct the identical tie-broken path, byte for
//     byte (the differential battery in oracle_test.go pins this across
//     motifs, fault masks and presets).
//   - ALT landmarks: a handful of city sites chosen by farthest-point
//     selection whose trees double as triangle-inequality lower bounds
//     |d(l,u) − d(l,v)| ≤ d(u,v). The bounds are admissible and consistent,
//     so they drive an exact goal-directed A* (PathBetween) for pairs the
//     labels don't cover — arbitrary node pairs, not just cities — and give
//     the property tests an invariant to hold the label arrays against.
//
// An Oracle is immutable after Build and safe for unbounded concurrent
// readers; it is pinned to the exact *graph.Network instance (and mutation
// epoch) it was built from. The snapshot cache carries oracles alongside
// their snapshots (snapcache.Attach), so an oracle rides the same
// LRU/TTL/generation lifecycle as its graph and can never outlive it.
package oracle

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"leosim/internal/graph"
	"leosim/internal/safe"
	"leosim/internal/telemetry"
)

// DefaultLandmarks is the ALT landmark count when Options leaves it zero.
// Eight is the classic sweet spot: bounds tighten quickly with the first few
// well-spread landmarks and flatten long before memory cost does.
const DefaultLandmarks = 8

// Options tunes Build.
type Options struct {
	// Landmarks is the number of ALT landmarks selected from the city
	// sites (default DefaultLandmarks, capped at the city count).
	Landmarks int
	// Parallelism bounds the build fan-out (default GOMAXPROCS).
	Parallelism int
}

// Stats describes a built oracle.
type Stats struct {
	// Sources is the number of hub-label trees (one per city).
	Sources int
	// Landmarks is the number of ALT landmarks selected.
	Landmarks int
	// Nodes is the node count of the underlying snapshot graph.
	Nodes int
	// BuildDuration is the wall time Build spent.
	BuildDuration time.Duration
	// Bytes approximates resident label memory (dist + prev arrays).
	Bytes int64
}

// Oracle answers exact shortest-path queries over one frozen snapshot graph.
type Oracle struct {
	net   *graph.Network
	epoch uint64
	nn    int // node count
	ncity int

	// dist/prev are the per-city trees, row-major: row i (the tree rooted
	// at city i's node) occupies [i*nn, (i+1)*nn). dist holds +Inf at
	// unreached nodes; prev holds -1 at the root and unreached nodes.
	dist []float64
	prev []int32

	// landmarks indexes the chosen landmark cities (rows into dist).
	landmarks []int

	buildTime time.Duration
}

// Build constructs the oracle for n: one shortest-path tree per city, run in
// parallel through the shared Dijkstra kernel, plus ALT landmark selection.
// The context cancels the fan-out between sources; a cancelled build returns
// ctx.Err() and no oracle.
func Build(ctx context.Context, n *graph.Network, opts Options) (*Oracle, error) {
	sp := telemetry.StartStageSpan(telemetry.StageOracleBuild)
	defer sp.End()
	start := time.Now()
	nn := n.N()
	ncity := n.NumCity
	if ncity == 0 {
		return nil, fmt.Errorf("oracle: network has no city terminals to label")
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	o := &Oracle{
		net:   n,
		epoch: n.Epoch(),
		nn:    nn,
		ncity: ncity,
		dist:  make([]float64, ncity*nn),
		prev:  make([]int32, ncity*nn),
	}
	// Freeze the CSR once before the fan-out (Degree forces it) so workers
	// never contend on the freeze lock.
	if nn > 0 {
		n.Degree(0)
	}
	g := safe.NewGroup(ctx, par)
	for city := 0; city < ncity; city++ {
		city := city
		g.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			st := graph.AcquireSearch()
			defer st.Release()
			n.Search(st, graph.SearchSpec{Src: n.CityNode(city), Target: graph.NoTarget})
			dist := o.dist[city*nn : (city+1)*nn]
			prev := o.prev[city*nn : (city+1)*nn]
			inf := math.Inf(1)
			for v := int32(0); v < int32(nn); v++ {
				if st.Reached(v) {
					dist[v] = st.Dist(v)
					prev[v] = st.PrevLink(v)
				} else {
					dist[v] = inf
					prev[v] = -1
				}
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	o.landmarks = selectLandmarks(o, opts.Landmarks)
	o.buildTime = time.Since(start)
	return o, nil
}

// selectLandmarks picks k landmark cities by farthest-point (maxmin)
// selection over the already-computed label rows: start from city 0 (the
// most populous — a natural ground hub), then repeatedly add the city
// maximizing its minimum distance to the chosen set. Disconnected cities
// (infinite distance to every chosen landmark) are skipped — a landmark that
// cannot see the main component bounds nothing.
func selectLandmarks(o *Oracle, k int) []int {
	if k <= 0 {
		k = DefaultLandmarks
	}
	if k > o.ncity {
		k = o.ncity
	}
	chosen := make([]int, 0, k)
	chosen = append(chosen, 0)
	minDist := make([]float64, o.ncity)
	for c := range minDist {
		minDist[c] = o.cityDist(0, c)
	}
	for len(chosen) < k {
		best, bestD := -1, -1.0
		for c := 0; c < o.ncity; c++ {
			d := minDist[c]
			if math.IsInf(d, 1) || d <= 0 {
				continue // unreachable from the chosen set, or already chosen
			}
			if d > bestD {
				best, bestD = c, d
			}
		}
		if best < 0 {
			break // every remaining city is co-located or disconnected
		}
		chosen = append(chosen, best)
		for c := 0; c < o.ncity; c++ {
			if d := o.cityDist(best, c); d < minDist[c] {
				minDist[c] = d
			}
		}
	}
	return chosen
}

// cityDist reads the labelled distance from city src's tree to city dst's
// node.
func (o *Oracle) cityDist(src, dst int) float64 {
	return o.dist[src*o.nn+int(o.net.CityNode(dst))]
}

// Valid reports whether the oracle still describes n: the same network
// instance at the same mutation epoch. A snapshot the incremental advancer
// has stepped past (or a rebuilt cache entry) fails this check, and callers
// must rebuild rather than serve answers about a topology that no longer
// exists.
func (o *Oracle) Valid(n *graph.Network) bool {
	return o.net == n && o.epoch == n.Epoch()
}

// Stats summarizes the built oracle.
func (o *Oracle) Stats() Stats {
	return Stats{
		Sources:       o.ncity,
		Landmarks:     len(o.landmarks),
		Nodes:         o.nn,
		BuildDuration: o.buildTime,
		Bytes:         int64(len(o.dist))*8 + int64(len(o.prev))*4,
	}
}

// Sources returns the number of labelled sources (cities).
func (o *Oracle) Sources() int { return o.ncity }

// Landmarks returns the landmark cities' indices (for tests and metrics).
func (o *Oracle) Landmarks() []int { return append([]int(nil), o.landmarks...) }

// DistMs returns the exact one-way shortest-path delay between two cities
// in milliseconds, +Inf when the pair is disconnected at this snapshot. It
// is a single array read.
func (o *Oracle) DistMs(srcCity, dstCity int) float64 {
	return o.cityDist(srcCity, dstCity)
}

// Query returns the exact shortest path between two cities, reconstructed
// from city srcCity's stored predecessor tree — node for node and link for
// link the path the Dijkstra kernel would find, including equal-distance
// tie-breaks (the kernel's (dist, node) settle order is deterministic and
// the tree stores its choices). ok is false when the pair is disconnected.
func (o *Oracle) Query(srcCity, dstCity int) (graph.Path, bool) {
	sp := telemetry.StartStageSpan(telemetry.StageOracleQuery)
	defer sp.End()
	src := o.net.CityNode(srcCity)
	dst := o.net.CityNode(dstCity)
	total := o.dist[srcCity*o.nn+int(dst)]
	if math.IsInf(total, 1) {
		return graph.Path{}, false
	}
	row := o.prev[srcCity*o.nn : (srcCity+1)*o.nn]
	return o.net.WalkPath(src, dst, func(v int32) int32 { return row[v] }, total)
}

// Bound returns an admissible lower bound on the one-way delay between any
// two nodes via the ALT triangle inequality over the landmark trees:
// |d(l,u) − d(l,v)| ≤ d(u,v) for every landmark l. A +Inf bound proves the
// pair disconnected (one endpoint is in a landmark's component, the other is
// not — in an undirected graph that separates them). The bound never
// exceeds the true distance (property-tested).
func (o *Oracle) Bound(u, v int32) float64 {
	if u == v {
		return 0
	}
	bound := 0.0
	for _, lc := range o.landmarks {
		row := o.dist[lc*o.nn : (lc+1)*o.nn]
		du, dv := row[u], row[v]
		uInf, vInf := math.IsInf(du, 1), math.IsInf(dv, 1)
		if uInf != vInf {
			return math.Inf(1) // provably separated components
		}
		if uInf {
			continue // landmark sees neither endpoint: no information
		}
		if b := math.Abs(du - dv); b > bound {
			bound = b
		}
	}
	return bound
}

// PathBetween returns an exact shortest path between two arbitrary nodes,
// found by ALT-guided A* over the frozen CSR graph with Bound as the
// heuristic. The landmark bounds are consistent, so the first settle of dst
// is optimal: the returned delay equals the Dijkstra kernel's exactly (the
// differential tests check it). The path itself is a shortest path, though
// equal-cost ties may break differently from plain Dijkstra — callers who
// need the kernel's byte-identical tie-breaks should use Query, which covers
// every serving endpoint pair. ok is false when the pair is disconnected.
//
// This is the non-precomputed escape hatch — satellite-to-satellite
// diagnostics, relay probes — not the batched serving hot path, so it
// allocates its own scratch per call.
func (o *Oracle) PathBetween(src, dst int32) (graph.Path, bool) {
	if math.IsInf(o.Bound(src, dst), 1) {
		return graph.Path{}, false // separated components: skip the search
	}
	n := o.net
	nn := o.nn
	dist := make([]float64, nn)
	prev := make([]int32, nn)
	settled := make([]bool, nn)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	h := &astarHeap{}
	h.push(astarEntry{node: src, f: o.Bound(src, dst)})
	for h.len() > 0 {
		it := h.pop()
		if settled[it.node] {
			continue
		}
		settled[it.node] = true
		if it.node == dst {
			break
		}
		for _, e := range n.Edges(it.node) {
			w := n.Links[e.Link].OneWayMs
			nd := dist[it.node] + w
			if nd >= dist[e.To] {
				continue
			}
			dist[e.To] = nd
			prev[e.To] = e.Link
			hb := o.Bound(e.To, dst)
			if math.IsInf(hb, 1) {
				continue // provably cannot reach dst
			}
			h.push(astarEntry{node: e.To, f: nd + hb})
		}
	}
	if math.IsInf(dist[dst], 1) {
		return graph.Path{}, false
	}
	return n.WalkPath(src, dst, func(v int32) int32 { return prev[v] }, dist[dst])
}

// astarEntry is one pending node in the A* frontier, keyed by f = g + h.
type astarEntry struct {
	node int32
	f    float64
}

// astarHeap is a minimal binary min-heap of astarEntry values; ties break on
// node index for determinism, mirroring the kernel's convention.
type astarHeap struct{ s []astarEntry }

func (h *astarHeap) len() int { return len(h.s) }

func astarLess(a, b astarEntry) bool {
	return a.f < b.f || (a.f == b.f && a.node < b.node)
}

func (h *astarHeap) push(e astarEntry) {
	h.s = append(h.s, e)
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !astarLess(h.s[i], h.s[p]) {
			break
		}
		h.s[i], h.s[p] = h.s[p], h.s[i]
		i = p
	}
}

func (h *astarHeap) pop() astarEntry {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.s) && astarLess(h.s[l], h.s[best]) {
			best = l
		}
		if r < len(h.s) && astarLess(h.s[r], h.s[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.s[i], h.s[best] = h.s[best], h.s[i]
		i = best
	}
	return top
}
