package oracle

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"

	"leosim/internal/core"
	"leosim/internal/fault"
	"leosim/internal/graph"
	"leosim/internal/topo"
)

// Sims are cached per (motif, scale): constellation construction dominates
// test time, and every test only reads the sim.
var (
	simMu   sync.Mutex
	simPool = map[string]*core.Sim{}
)

func motifSim(t testing.TB, id topo.ID, scale core.Scale, scaleName string) *core.Sim {
	t.Helper()
	key := string(id) + "/" + scaleName
	simMu.Lock()
	defer simMu.Unlock()
	if s, ok := simPool[key]; ok {
		return s
	}
	s, err := core.NewSim(core.Starlink, scale, core.WithMotifID(id))
	if err != nil {
		t.Fatalf("NewSim(%s): %v", id, err)
	}
	simPool[key] = s
	return s
}

// outagesFor realizes a "scenario:fraction:seed" fault fingerprint against
// sim — the same deterministic realization the serving layer uses.
func outagesFor(t testing.TB, s *core.Sim, mask string) *fault.Outages {
	t.Helper()
	if mask == "" {
		return nil
	}
	parts := strings.Split(mask, ":")
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.ForScenario(fault.Scenario(parts[0]), frac, seed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Realize(s.Const, len(s.Seg.Terminals))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func buildNet(t testing.TB, s *core.Sim, mode core.Mode, mask string) *graph.Network {
	t.Helper()
	n, err := s.BuildNetworkAt(context.Background(), s.SnapshotTimes()[0], mode, outagesFor(t, s, mask))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func buildOracle(t testing.TB, n *graph.Network, landmarks int) *Oracle {
	t.Helper()
	o, err := Build(context.Background(), n, Options{Landmarks: landmarks})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// kernelTree runs the reference full Dijkstra from city src — the exact
// computation the oracle's label row for src froze at build time.
func kernelTree(n *graph.Network, src int) *graph.SearchState {
	st := graph.AcquireSearch()
	n.Search(st, graph.SearchSpec{Src: n.CityNode(src), Target: graph.NoTarget})
	return st
}

// samePath requires byte-identical paths: same nodes, same links, same
// accumulated delay — the tie-break-exact guarantee Query documents.
func samePath(t *testing.T, label string, want, got graph.Path) {
	t.Helper()
	if want.OneWayMs != got.OneWayMs {
		t.Fatalf("%s: delay %v != kernel %v", label, got.OneWayMs, want.OneWayMs)
	}
	if len(want.Nodes) != len(got.Nodes) || len(want.Links) != len(got.Links) {
		t.Fatalf("%s: shape (%d nodes, %d links) != kernel (%d nodes, %d links)",
			label, len(got.Nodes), len(got.Links), len(want.Nodes), len(want.Links))
	}
	for i := range want.Nodes {
		if want.Nodes[i] != got.Nodes[i] {
			t.Fatalf("%s: node[%d] = %d != kernel %d", label, i, got.Nodes[i], want.Nodes[i])
		}
	}
	for i := range want.Links {
		if want.Links[i] != got.Links[i] {
			t.Fatalf("%s: link[%d] = %d != kernel %d", label, i, got.Links[i], want.Links[i])
		}
	}
}

// diffBattery runs the differential check for one built network: seeded
// random city pairs, oracle answers vs the live kernel, distances exact and
// paths byte-identical.
func diffBattery(t *testing.T, n *graph.Network, pairs int, seed int64) {
	o := buildOracle(t, n, 4)
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < pairs; k++ {
		src := rng.Intn(n.NumCity)
		dst := rng.Intn(n.NumCity)
		if src == dst {
			continue
		}
		label := fmt.Sprintf("pair %d→%d", src, dst)
		st := kernelTree(n, src)
		want, reachable := st.Path(n.CityNode(dst))
		got, ok := o.Query(src, dst)
		if ok != reachable {
			t.Fatalf("%s: oracle reachable=%v, kernel says %v", label, ok, reachable)
		}
		if !reachable {
			if !math.IsInf(o.DistMs(src, dst), 1) {
				t.Fatalf("%s: disconnected pair has finite DistMs %v", label, o.DistMs(src, dst))
			}
			st.Release()
			continue
		}
		if d := o.DistMs(src, dst); d != want.OneWayMs {
			t.Fatalf("%s: DistMs %v != kernel %v", label, d, want.OneWayMs)
		}
		samePath(t, label, want, got)
		st.Release()
	}
}

// TestOracleMatchesKernel is the core differential battery: every motif,
// both modes, fault masks including nonzero ones, tiny preset always and the
// reduced preset when not -short. Distances must be bit-identical and paths
// byte-identical to the live Dijkstra kernel.
func TestOracleMatchesKernel(t *testing.T) {
	masks := []string{"", "sat:0.1:1", "isl:0.2:2"}
	for _, id := range topo.IDs() {
		sim := motifSim(t, id, core.TinyScale(), "tiny")
		for _, mode := range []core.Mode{core.BP, core.Hybrid} {
			for mi, mask := range masks {
				name := fmt.Sprintf("%s/%s/mask=%s", id, mode, mask)
				t.Run(name, func(t *testing.T) {
					n := buildNet(t, sim, mode, mask)
					diffBattery(t, n, 30, int64(mi+1))
				})
			}
		}
	}
	if testing.Short() {
		return
	}
	// Reduced preset: one motif is enough to exercise the larger graph —
	// the per-motif structure is covered above.
	sim := motifSim(t, topo.PlusGrid, core.ReducedScale(), "reduced")
	for _, mode := range []core.Mode{core.BP, core.Hybrid} {
		t.Run(fmt.Sprintf("reduced/%s", mode), func(t *testing.T) {
			n := buildNet(t, sim, mode, "sat:0.1:1")
			diffBattery(t, n, 20, 7)
		})
	}
}

// TestLandmarkBoundAdmissible property-tests the ALT triangle inequality:
// Bound(u,v) never exceeds the true shortest-path delay, and a +Inf bound
// only appears for genuinely disconnected pairs.
func TestLandmarkBoundAdmissible(t *testing.T) {
	sim := motifSim(t, topo.PlusGrid, core.TinyScale(), "tiny")
	n := buildNet(t, sim, core.BP, "sat:0.2:3")
	o := buildOracle(t, n, 6)
	rng := rand.New(rand.NewSource(11))
	// Float rounding in the label sums can push |d(l,u)-d(l,v)| a few ulps
	// past the true distance; admissibility holds to this tolerance.
	const relTol = 1e-9
	for k := 0; k < 200; k++ {
		u := int32(rng.Intn(n.N()))
		v := int32(rng.Intn(n.N()))
		bound := o.Bound(u, v)
		st := graph.AcquireSearch()
		n.Search(st, graph.SearchSpec{Src: u, Target: graph.NoTarget})
		if !st.Reached(v) {
			st.Release()
			continue // unreachable: any bound (including +Inf) is admissible
		}
		d := st.Dist(v)
		st.Release()
		if math.IsInf(bound, 1) {
			t.Fatalf("Bound(%d,%d) = +Inf but kernel reaches v at %v ms", u, v, d)
		}
		if bound > d*(1+relTol)+relTol {
			t.Fatalf("Bound(%d,%d) = %v exceeds true distance %v", u, v, bound, d)
		}
	}
}

// TestLabelSymmetry property-tests the undirected graph invariant: the
// delay labelled src→dst equals dst→src (to float-accumulation-order
// tolerance — the two trees sum the same path in opposite directions).
func TestLabelSymmetry(t *testing.T) {
	sim := motifSim(t, topo.PlusGrid, core.TinyScale(), "tiny")
	n := buildNet(t, sim, core.Hybrid, "")
	o := buildOracle(t, n, 4)
	for src := 0; src < n.NumCity; src++ {
		for dst := src + 1; dst < n.NumCity; dst++ {
			a, b := o.DistMs(src, dst), o.DistMs(dst, src)
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("pair %d,%d: reachability asymmetric (%v vs %v)", src, dst, a, b)
			}
			if math.IsInf(a, 1) {
				continue
			}
			if diff := math.Abs(a - b); diff > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("pair %d,%d: %v != %v (diff %v)", src, dst, a, b, diff)
			}
		}
	}
}

// TestMaskMonotonic property-tests fault monotonicity: removing links can
// only lengthen (or disconnect) city-pair distances, never shorten them.
func TestMaskMonotonic(t *testing.T) {
	sim := motifSim(t, topo.PlusGrid, core.TinyScale(), "tiny")
	clean := buildOracle(t, buildNet(t, sim, core.BP, ""), 4)
	masked := buildOracle(t, buildNet(t, sim, core.BP, "sat:0.3:5"), 4)
	for src := 0; src < clean.Sources(); src++ {
		for dst := 0; dst < clean.Sources(); dst++ {
			if src == dst {
				continue
			}
			dc, dm := clean.DistMs(src, dst), masked.DistMs(src, dst)
			if dm < dc-1e-9*(1+dc) {
				t.Fatalf("pair %d→%d: masked distance %v shorter than clean %v", src, dst, dm, dc)
			}
		}
	}
}

// TestPathBetweenMatchesKernel checks the ALT-guided A* escape hatch on
// arbitrary node pairs: distance-exact against the kernel (tie-broken paths
// may differ; the delay may not).
func TestPathBetweenMatchesKernel(t *testing.T) {
	sim := motifSim(t, topo.Nearest, core.TinyScale(), "tiny")
	n := buildNet(t, sim, core.BP, "sat:0.1:1")
	o := buildOracle(t, n, 6)
	rng := rand.New(rand.NewSource(23))
	for k := 0; k < 60; k++ {
		u := int32(rng.Intn(n.N()))
		v := int32(rng.Intn(n.N()))
		if u == v {
			continue
		}
		st := graph.AcquireSearch()
		n.Search(st, graph.SearchSpec{Src: u, Target: graph.NoTarget})
		reached := st.Reached(v)
		var want float64
		if reached {
			want = st.Dist(v)
		}
		st.Release()
		p, ok := o.PathBetween(u, v)
		if ok != reached {
			t.Fatalf("pair %d→%d: A* reachable=%v, kernel says %v", u, v, ok, reached)
		}
		if !reached {
			continue
		}
		if diff := math.Abs(p.OneWayMs - want); diff > 1e-9*(1+want) {
			t.Fatalf("pair %d→%d: A* delay %v != kernel %v", u, v, p.OneWayMs, want)
		}
		// The path must really exist and really cost what it claims.
		var sum float64
		for _, l := range p.Links {
			sum += n.Links[l].OneWayMs
		}
		if math.Abs(sum-p.OneWayMs) > 1e-9*(1+sum) {
			t.Fatalf("pair %d→%d: path links sum to %v, path claims %v", u, v, sum, p.OneWayMs)
		}
	}
}

// TestBuildValidity pins the lifecycle contract: an oracle is valid only for
// the exact network instance it was built from.
func TestBuildValidity(t *testing.T) {
	sim := motifSim(t, topo.PlusGrid, core.TinyScale(), "tiny")
	n1 := buildNet(t, sim, core.BP, "")
	n2 := buildNet(t, sim, core.BP, "")
	o := buildOracle(t, n1, 2)
	if !o.Valid(n1) {
		t.Fatal("oracle invalid for its own network")
	}
	if o.Valid(n2) {
		t.Fatal("oracle valid for a different network instance")
	}
	st := o.Stats()
	if st.Sources != n1.NumCity || st.Nodes != n1.N() {
		t.Fatalf("stats %+v disagree with network (%d cities, %d nodes)", st, n1.NumCity, n1.N())
	}
	if st.Landmarks != 2 || len(o.Landmarks()) != 2 {
		t.Fatalf("want 2 landmarks, got stats=%d method=%d", st.Landmarks, len(o.Landmarks()))
	}
	if st.Bytes <= 0 || st.BuildDuration <= 0 {
		t.Fatalf("degenerate stats %+v", st)
	}
}

// TestBuildCancelled pins cancellation: a dead context yields an error, not
// a partial oracle.
func TestBuildCancelled(t *testing.T) {
	sim := motifSim(t, topo.PlusGrid, core.TinyScale(), "tiny")
	n := buildNet(t, sim, core.BP, "")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if o, err := Build(ctx, n, Options{}); err == nil || o != nil {
		t.Fatalf("cancelled build returned (%v, %v), want error", o, err)
	}
}

func benchOracle(b *testing.B) (*graph.Network, *Oracle) {
	sim := motifSim(b, topo.PlusGrid, core.TinyScale(), "tiny")
	n := buildNet(b, sim, core.BP, "")
	return n, buildOracle(b, n, DefaultLandmarks)
}

// BenchmarkOracleBuild measures the one-time per-snapshot build cost the
// serving layer amortizes (reported alongside query latency in bench.sh).
func BenchmarkOracleBuild(b *testing.B) {
	sim := motifSim(b, topo.PlusGrid, core.TinyScale(), "tiny")
	n := buildNet(b, sim, core.BP, "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(context.Background(), n, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleQuery measures the pure distance lookup — one array read.
func BenchmarkOracleQuery(b *testing.B) {
	_, o := benchOracle(b)
	ncity := o.Sources()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += o.DistMs(i%ncity, (i*7+1)%ncity)
	}
	_ = sink
}

// BenchmarkOracleBatch measures the full batched serving unit of work: path
// reconstruction from the stored tree for a stream of Zipf-ish repeating
// pairs — the per-pair cost behind POST /v1/paths (the p99 < 100µs
// acceptance bar).
func BenchmarkOracleBatch(b *testing.B) {
	_, o := benchOracle(b)
	ncity := o.Sources()
	rng := rand.New(rand.NewSource(1))
	type pair struct{ src, dst int }
	pairs := make([]pair, 1024)
	for i := range pairs {
		s, d := rng.Intn(ncity), rng.Intn(ncity)
		if s == d {
			d = (d + 1) % ncity
		}
		pairs[i] = pair{s, d}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		o.Query(p.src, p.dst)
	}
}
