package itur

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func kuLink(lat, lon, elev float64) LinkParams {
	return LinkParams{
		LatDeg: lat, LonDeg: lon, ElevationDeg: elev,
		FreqGHz: 14.25, Pol: PolCircular,
	}
}

func TestClimatologyShape(t *testing.T) {
	// Wet tropics, drier mid-latitudes, dry poles.
	tropics := RainRate001(5, 100)
	midlat := RainRate001(48, 10)
	polar := RainRate001(80, 0)
	if !(tropics > midlat && midlat > polar) {
		t.Errorf("rain rates not ordered: %v %v %v", tropics, midlat, polar)
	}
	if tropics < 50 || tropics > 120 {
		t.Errorf("tropical R0.01 = %v, want 50–120 mm/h", tropics)
	}
	if polar > 15 {
		t.Errorf("polar R0.01 = %v, want small", polar)
	}
	// Rain height flat in tropics, decreasing poleward.
	if RainHeightKm(0) != RainHeightKm(20) {
		t.Errorf("tropical rain height should be flat")
	}
	if RainHeightKm(60) >= RainHeightKm(30) {
		t.Errorf("rain height should decrease poleward")
	}
	if RainHeightKm(89) < 0.5-1e-9 {
		t.Errorf("rain height floor violated")
	}
	// Vapour, temperature, Nwet all decrease with |lat|.
	for _, f := range []func(float64) float64{WaterVapourDensity, SurfaceTempK, WetRefractivity} {
		if !(f(0) > f(45) && f(45) > f(85)) {
			t.Errorf("climatology profile not decreasing with latitude")
		}
	}
}

func TestColumnarCloudWater(t *testing.T) {
	// More cloud water at smaller exceedance probabilities.
	if ColumnarCloudWater(10, 0, 0.1) <= ColumnarCloudWater(10, 0, 1) {
		t.Errorf("cloud water must grow as p shrinks")
	}
	// Capped.
	if ColumnarCloudWater(0, 0, 0.0001) > 6 {
		t.Errorf("cloud water cap violated")
	}
}

func TestRainCoefficients(t *testing.T) {
	// Table endpoints reproduce exactly.
	k, a := RainCoefficients(12, PolH)
	if !almostEq(k, 0.02386, 1e-9) || !almostEq(a, 1.1825, 1e-9) {
		t.Errorf("12 GHz H: k=%v α=%v", k, a)
	}
	// Interpolated values are bracketed by neighbors.
	k13, _ := RainCoefficients(13.5, PolH)
	k12, _ := RainCoefficients(12, PolH)
	k15, _ := RainCoefficients(15, PolH)
	if !(k12 < k13 && k13 < k15) {
		t.Errorf("k not monotone across 12–15 GHz: %v %v %v", k12, k13, k15)
	}
	// Circular polarization sits between H and V.
	kh, _ := RainCoefficients(14.25, PolH)
	kv, _ := RainCoefficients(14.25, PolV)
	kc, _ := RainCoefficients(14.25, PolCircular)
	lo, hi := math.Min(kh, kv), math.Max(kh, kv)
	if kc < lo || kc > hi {
		t.Errorf("circular k=%v outside [%v,%v]", kc, lo, hi)
	}
	// Clamping outside [1,100].
	kLow, _ := RainCoefficients(0.1, PolH)
	k1, _ := RainCoefficients(1, PolH)
	if kLow != k1 {
		t.Errorf("frequency clamp low failed")
	}
}

func TestRainSpecificAttenuationMagnitude(t *testing.T) {
	// Ku-band at tropical rain rates: single-digit dB/km.
	g := RainSpecificAttenuation(14.25, PolCircular, 90)
	if g < 2 || g > 12 {
		t.Errorf("γ_R(14.25 GHz, 90 mm/h) = %v dB/km, want ≈ 2–12", g)
	}
	// Higher frequency → more attenuation.
	if RainSpecificAttenuation(30, PolCircular, 50) <= RainSpecificAttenuation(11.7, PolCircular, 50) {
		t.Errorf("Ka must attenuate more than Ku")
	}
}

func TestRainAttenuationBehaviour(t *testing.T) {
	lp := kuLink(5, 100, 40) // tropical link
	a05, err := RainAttenuation(lp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a001, _ := RainAttenuation(lp, 0.01)
	a5, _ := RainAttenuation(lp, 5)
	if !(a001 > a05 && a05 > a5) {
		t.Errorf("rain attenuation not decreasing in p: %v %v %v", a001, a05, a5)
	}
	if a05 < 0.5 || a05 > 40 {
		t.Errorf("tropical Ku A(0.5%%) = %v dB — implausible", a05)
	}
	// Dry high latitude link attenuates much less.
	dry := kuLink(65, 20, 40)
	aDry, _ := RainAttenuation(dry, 0.5)
	if aDry >= a05 {
		t.Errorf("dry link %v ≥ tropical %v", aDry, a05)
	}
	// Lower elevation → longer path through rain → more attenuation.
	steep := kuLink(5, 100, 80)
	aSteep, _ := RainAttenuation(steep, 0.5)
	if aSteep >= a05 {
		t.Errorf("steeper link should attenuate less: %v vs %v", aSteep, a05)
	}
}

func TestRainAttenuationAircraftAboveRain(t *testing.T) {
	lp := kuLink(5, 100, 40)
	lp.StationHeightKm = 11
	a, err := RainAttenuation(lp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Errorf("aircraft above rain height should see no rain attenuation, got %v", a)
	}
	c, _ := CloudAttenuation(lp, 0.5)
	if c != 0 {
		t.Errorf("aircraft above clouds should see no cloud attenuation, got %v", c)
	}
	s, _ := ScintillationAttenuation(lp, 0.5)
	if s != 0 {
		t.Errorf("aircraft should see no tropospheric scintillation, got %v", s)
	}
}

func TestRainAttenuationValidation(t *testing.T) {
	lp := kuLink(5, 100, 40)
	if _, err := RainAttenuation(lp, 50); err == nil {
		t.Errorf("p=50 outside range must error")
	}
	bad := lp
	bad.FreqGHz = 0
	if _, err := RainAttenuation(bad, 0.5); err == nil {
		t.Errorf("zero frequency must error")
	}
	bad = lp
	bad.ElevationDeg = 0
	if _, err := TotalAttenuation(bad, 0.5); err == nil {
		t.Errorf("zero elevation must error")
	}
}

func TestGaseousAttenuationMagnitude(t *testing.T) {
	a, err := GaseousAttenuation(kuLink(5, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	// Ku-band gaseous attenuation at 40° elevation: tenths of a dB.
	if a < 0.05 || a > 2 {
		t.Errorf("gaseous attenuation = %v dB", a)
	}
	// Near the 22 GHz water line it grows.
	wet := kuLink(5, 100, 40)
	wet.FreqGHz = 22.2
	aw, _ := GaseousAttenuation(wet)
	if aw <= a {
		t.Errorf("22 GHz should exceed 14 GHz gaseous attenuation")
	}
}

func TestScintillationMagnitude(t *testing.T) {
	s, err := ScintillationAttenuation(kuLink(5, 100, 40), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.05 || s > 3 {
		t.Errorf("scintillation = %v dB at p=0.5%%", s)
	}
	// Lower elevation → stronger scintillation.
	s10, _ := ScintillationAttenuation(kuLink(5, 100, 25), 0.5)
	if s10 <= s {
		t.Errorf("lower elevation should scintillate more")
	}
}

func TestTotalAttenuationCombination(t *testing.T) {
	lp := kuLink(5, 100, 40)
	total, err := TotalAttenuation(lp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ag, _ := GaseousAttenuation(lp)
	ar, _ := RainAttenuation(lp, 0.5)
	ac, _ := CloudAttenuation(lp, 0.5)
	// Total must be at least gas + rain and at most the plain sum of all.
	if total < ag+ar-1e-9 {
		t.Errorf("total %v < gas+rain %v", total, ag+ar)
	}
	as, _ := ScintillationAttenuation(lp, 0.5)
	if total > ag+ar+ac+as+1e-9 {
		t.Errorf("total %v exceeds the linear sum", total)
	}
}

func TestReceivedPowerFraction(t *testing.T) {
	// §6: 1 dB ≈ 11% reduction → 79.4% received... wait: 1 dB → 10^-0.1 = 0.794.
	// The paper's "11% reduction in received power" refers to ≈0.5 dB; the
	// function itself must match the dB definition exactly.
	if !almostEq(ReceivedPowerFraction(1), 0.7943, 1e-3) {
		t.Errorf("1 dB → %v", ReceivedPowerFraction(1))
	}
	if !almostEq(ReceivedPowerFraction(3), 0.5012, 1e-3) {
		t.Errorf("3 dB → %v", ReceivedPowerFraction(3))
	}
	if ReceivedPowerFraction(0) != 1 {
		t.Errorf("0 dB → %v", ReceivedPowerFraction(0))
	}
	// §6 Fig 8: 5 dB → ≈32% received... no: 10^-0.5 = 0.316. The paper says
	// 5 dB ⇒ 44%+? It reports power fractions per link; we just pin dB math.
	if !almostEq(ReceivedPowerFraction(5), 0.3162, 1e-3) {
		t.Errorf("5 dB → %v", ReceivedPowerFraction(5))
	}
}

func TestCurveMonotoneProperty(t *testing.T) {
	f := func(latRaw, lonRaw, elevRaw float64) bool {
		lat := math.Mod(math.Abs(latRaw), 70)
		lon := math.Mod(lonRaw, 180)
		elev := 10 + math.Mod(math.Abs(elevRaw), 79)
		if math.IsNaN(lat) || math.IsNaN(lon) || math.IsNaN(elev) {
			return true
		}
		c, err := NewCurve(kuLink(lat, lon, elev))
		if err != nil {
			return false
		}
		for i := 1; i < len(c.A); i++ {
			if c.A[i] > c.A[i-1]+1e-9 {
				return false
			}
			if c.A[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCurveAtAndInverse(t *testing.T) {
	c, err := NewCurve(kuLink(5, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	// At() reproduces grid points.
	for i, p := range c.P {
		if !almostEq(c.At(p), c.A[i], 1e-9) {
			t.Errorf("At(%v) = %v, want %v", p, c.At(p), c.A[i])
		}
	}
	// Inverse round-trips within the grid.
	for _, p := range []float64{0.05, 0.5, 1, 3} {
		x := c.At(p)
		back := c.ExceedanceAt(x)
		if math.Abs(math.Log(back/p)) > 0.25 {
			t.Errorf("inverse(%v dB) = %v%%, want ≈%v%%", x, back, p)
		}
	}
	// Clamping beyond the grid.
	if c.At(0.0001) != c.A[0] {
		t.Errorf("At below grid should clamp")
	}
	if c.ExceedanceAt(c.A[0]+100) != c.P[0] {
		t.Errorf("huge attenuation exceeded only at min p")
	}
	if c.ExceedanceAt(-1) != c.P[len(c.P)-1] {
		t.Errorf("negative attenuation exceeded at max p")
	}
}

func TestWorstOf(t *testing.T) {
	wet, _ := NewCurve(kuLink(5, 100, 25))
	dry, _ := NewCurve(kuLink(65, 20, 80))
	w := WorstOf(wet, dry)
	for i, p := range w.P {
		want := math.Max(wet.At(p), dry.At(p))
		if !almostEq(w.A[i], want, 1e-9) {
			t.Errorf("WorstOf at %v%% = %v, want %v", p, w.A[i], want)
		}
	}
	// Zero curve is the identity element.
	same := WorstOf(wet, ZeroCurve())
	for i := range same.A {
		if !almostEq(same.A[i], wet.A[i], 1e-9) {
			t.Errorf("WorstOf with zero changed the curve")
		}
	}
}

func TestCombineOverTimeIdentical(t *testing.T) {
	c, _ := NewCurve(kuLink(5, 100, 40))
	comb := CombineOverTime([]Curve{c, c, c})
	// Combining identical snapshots returns (approximately) the same curve.
	for _, p := range []float64{0.1, 0.5, 1, 3} {
		if math.Abs(comb.At(p)-c.At(p)) > 0.15*c.At(p)+0.05 {
			t.Errorf("combine of identical curves at %v%%: %v vs %v", p, comb.At(p), c.At(p))
		}
	}
}

func TestCombineOverTimeMixture(t *testing.T) {
	wet, _ := NewCurve(kuLink(5, 100, 25))
	dry, _ := NewCurve(kuLink(65, 20, 80))
	comb := CombineOverTime([]Curve{wet, dry})
	// The mixture sits between the two at every probability.
	for _, p := range []float64{0.1, 0.5, 1} {
		lo := math.Min(wet.At(p), dry.At(p))
		hi := math.Max(wet.At(p), dry.At(p))
		got := comb.At(p)
		if got < lo-0.2 || got > hi+0.2 {
			t.Errorf("mixture at %v%% = %v outside [%v,%v]", p, got, lo, hi)
		}
	}
	if len(CombineOverTime(nil).A) == 0 {
		t.Errorf("empty combine should return zero curve")
	}
}

func TestRainAttenuationLowElevation(t *testing.T) {
	// Below 5° elevation the slant-path formula switches to the low-angle
	// branch; it must remain finite, positive and larger than at 10°.
	low := kuLink(5, 100, 3)
	a3, err := RainAttenuation(low, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a10, _ := RainAttenuation(kuLink(5, 100, 10), 0.5)
	if a3 <= a10 {
		t.Errorf("3° attenuation %v should exceed 10° %v", a3, a10)
	}
	if a3 > 100 || math.IsNaN(a3) || math.IsInf(a3, 0) {
		t.Errorf("low-elevation attenuation degenerate: %v", a3)
	}
}

func TestClampF(t *testing.T) {
	if clampF(-1, 0, 5) != 0 || clampF(9, 0, 5) != 5 || clampF(3, 0, 5) != 3 {
		t.Errorf("clampF branches wrong")
	}
}

func TestHighLatitudeStationAboveRain(t *testing.T) {
	// A high-latitude station above the local rain height sees no rain.
	lp := kuLink(88, 0, 40)
	lp.StationHeightKm = 1.0 // rain height floor is 0.5 km at the poles
	a, err := RainAttenuation(lp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Errorf("station above rain height should see 0, got %v", a)
	}
}

func TestScaleRainAttenuationFrequency(t *testing.T) {
	// Identity cases.
	if a, err := ScaleRainAttenuationFrequency(5, 14.25, 14.25); err != nil || a != 5 {
		t.Errorf("same-frequency scaling: %v %v", a, err)
	}
	if a, err := ScaleRainAttenuationFrequency(0, 14.25, 28.5); err != nil || a != 0 {
		t.Errorf("zero attenuation scaling: %v %v", a, err)
	}
	// Ku → Ka grows substantially (factor ≈2–4 at a few dB).
	a, err := ScaleRainAttenuationFrequency(3, 14.25, 28.5)
	if err != nil {
		t.Fatal(err)
	}
	if a < 6 || a > 14 {
		t.Errorf("3 dB at Ku scales to %v dB at Ka, want ≈6–14", a)
	}
	// Downscaling is the inverse direction (smaller).
	down, err := ScaleRainAttenuationFrequency(a, 28.5, 14.25)
	if err != nil {
		t.Fatal(err)
	}
	if down >= a {
		t.Errorf("downscaling should shrink: %v from %v", down, a)
	}
	// Monotone in target frequency.
	a20, _ := ScaleRainAttenuationFrequency(3, 14.25, 20)
	a30, _ := ScaleRainAttenuationFrequency(3, 14.25, 30)
	if !(3 < a20 && a20 < a30) {
		t.Errorf("scaling not monotone: 3 → %v → %v", a20, a30)
	}
	// Validation.
	if _, err := ScaleRainAttenuationFrequency(-1, 14, 20); err == nil {
		t.Errorf("negative attenuation accepted")
	}
	if _, err := ScaleRainAttenuationFrequency(3, 2, 20); err == nil {
		t.Errorf("out-of-range frequency accepted")
	}
	// Consistency with the direct model: scaling the Ku prediction lands
	// within a factor ~2 of the direct Ka prediction on the same link.
	lp := kuLink(5, 100, 40)
	ku, _ := RainAttenuation(lp, 0.5)
	ka := lp
	ka.FreqGHz = 28.5
	kaDirect, _ := RainAttenuation(ka, 0.5)
	scaled, _ := ScaleRainAttenuationFrequency(ku, 14.25, 28.5)
	ratio := scaled / kaDirect
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("frequency scaling vs direct model ratio %v (scaled %v, direct %v)",
			ratio, scaled, kaDirect)
	}
}
