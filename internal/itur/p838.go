package itur

import (
	"math"
	"sort"
)

// Polarization of the radio link.
type Polarization uint8

const (
	// PolH is horizontal linear polarization.
	PolH Polarization = iota
	// PolV is vertical linear polarization.
	PolV
	// PolCircular is circular polarization (the customary 45° tilt
	// average of H and V coefficients).
	PolCircular
)

// p838Row holds the rain specific-attenuation regression coefficients at one
// frequency: γ_R = k·R^α (dB/km, R in mm/h). Values follow ITU-R P.838-3
// (tabulated to the precision the experiments need; intermediate frequencies
// are interpolated log-log in k and linearly in log f for α, as the
// recommendation prescribes).
type p838Row struct {
	f                      float64
	kH, alphaH, kV, alphaV float64
}

var p838Table = []p838Row{
	{1, 0.0000259, 0.9691, 0.0000308, 0.8592},
	{2, 0.0000847, 1.0664, 0.0000998, 0.9490},
	{4, 0.0001071, 1.6009, 0.0002461, 1.2476},
	{6, 0.0007056, 1.5900, 0.0004878, 1.5728},
	{8, 0.004115, 1.3905, 0.003450, 1.3797},
	{10, 0.01217, 1.2571, 0.01129, 1.2156},
	{12, 0.02386, 1.1825, 0.02455, 1.1216},
	{15, 0.04481, 1.1233, 0.05008, 1.0440},
	{20, 0.09164, 1.0568, 0.09611, 0.9847},
	{25, 0.1571, 0.9991, 0.1533, 0.9491},
	{30, 0.2403, 0.9485, 0.2291, 0.9129},
	{35, 0.3374, 0.9047, 0.3224, 0.8761},
	{40, 0.4431, 0.8673, 0.4274, 0.8421},
	{50, 0.6600, 0.8084, 0.6472, 0.7871},
	{60, 0.8606, 0.7656, 0.8515, 0.7486},
	{70, 1.0315, 0.7345, 1.0253, 0.7215},
	{80, 1.1704, 0.7115, 1.1668, 0.7021},
	{100, 1.3671, 0.6765, 1.3680, 0.6712},
}

// RainCoefficients returns the P.838 coefficients (k, α) at frequency f GHz
// for the given polarization. Frequencies outside [1,100] GHz are clamped.
func RainCoefficients(fGHz float64, pol Polarization) (k, alpha float64) {
	if fGHz < p838Table[0].f {
		fGHz = p838Table[0].f
	}
	if fGHz > p838Table[len(p838Table)-1].f {
		fGHz = p838Table[len(p838Table)-1].f
	}
	i := sort.Search(len(p838Table), func(i int) bool { return p838Table[i].f >= fGHz })
	if i == 0 {
		i = 1
	}
	lo, hi := p838Table[i-1], p838Table[i]
	// Interpolate in log f: k log-log, α linear.
	t := 0.0
	if hi.f != lo.f {
		t = (math.Log(fGHz) - math.Log(lo.f)) / (math.Log(hi.f) - math.Log(lo.f))
	}
	interpK := func(a, b float64) float64 {
		return math.Exp(math.Log(a)*(1-t) + math.Log(b)*t)
	}
	interpA := func(a, b float64) float64 { return a*(1-t) + b*t }

	kh := interpK(lo.kH, hi.kH)
	kv := interpK(lo.kV, hi.kV)
	ah := interpA(lo.alphaH, hi.alphaH)
	av := interpA(lo.alphaV, hi.alphaV)
	switch pol {
	case PolH:
		return kh, ah
	case PolV:
		return kv, av
	default:
		// Circular (45° tilt, horizontal path): k = (kH+kV)/2,
		// α = (kH·αH + kV·αV)/(kH+kV).
		k := (kh + kv) / 2
		return k, (kh*ah + kv*av) / (kh + kv)
	}
}

// RainSpecificAttenuation returns γ_R = k·R^α in dB/km for rain rate R mm/h.
func RainSpecificAttenuation(fGHz float64, pol Polarization, rainRate float64) float64 {
	k, a := RainCoefficients(fGHz, pol)
	return k * math.Pow(rainRate, a)
}
