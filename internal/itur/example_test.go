package itur_test

import (
	"fmt"

	"leosim/internal/itur"
)

// ExampleTotalAttenuation computes the §6-style attenuation of a tropical
// Ku-band uplink at the 99.5th percentile of time.
func ExampleTotalAttenuation() {
	link := itur.LinkParams{
		LatDeg: 1.35, LonDeg: 103.82, // Singapore
		ElevationDeg: 40,
		FreqGHz:      14.25,
		Pol:          itur.PolCircular,
	}
	a, err := itur.TotalAttenuation(link, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("attenuation exceeded 0.5%% of time: %.1f dB (%.0f%% power received)\n",
		a, itur.ReceivedPowerFraction(a)*100)
	// Output: attenuation exceeded 0.5% of time: 4.3 dB (37% power received)
}

// ExampleCurve shows exceedance-curve algebra: the worst link of a path and
// the combination of two time snapshots.
func ExampleCurve() {
	wet, _ := itur.NewCurve(itur.LinkParams{LatDeg: 5, LonDeg: 100, ElevationDeg: 30, FreqGHz: 14.25})
	dry, _ := itur.NewCurve(itur.LinkParams{LatDeg: 60, LonDeg: 20, ElevationDeg: 60, FreqGHz: 14.25})
	worst := itur.WorstOf(wet, dry)
	fmt.Printf("worst-link A(1%%) equals wet link: %v\n", worst.At(1) == wet.At(1))
	combined := itur.CombineOverTime([]itur.Curve{wet, dry})
	fmt.Printf("time-mixture A(1%%) between the two: %v\n",
		combined.At(1) >= dry.At(1)-0.2 && combined.At(1) <= wet.At(1)+0.2)
	// Output:
	// worst-link A(1%) equals wet link: true
	// time-mixture A(1%) between the two: true
}
