package itur

import (
	"math"
	"sort"

	"leosim/internal/telemetry"
)

// Curve is an attenuation exceedance curve: A(p) in dB as a monotone
// non-increasing function of the exceedance probability p (% of time),
// sampled at fixed probability points.
type Curve struct {
	P []float64 // exceedance probabilities, % (increasing)
	A []float64 // attenuation exceeded p% of time, dB
}

// DefaultPGrid is the probability grid (in %) curves are sampled on: the
// P.618 validity range [0.01, 5] with log spacing, fine enough to resolve
// the 0.5% and 1% operating points of §6.
var DefaultPGrid = []float64{
	0.01, 0.02, 0.03, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7,
	1, 1.5, 2, 3, 5,
}

// NewCurve samples the total attenuation of a link over the default grid.
func NewCurve(lp LinkParams) (Curve, error) {
	sp := telemetry.StartStageSpan(telemetry.StageWeather)
	defer sp.End()
	c := Curve{P: DefaultPGrid, A: make([]float64, len(DefaultPGrid))}
	for i, p := range c.P {
		a, err := TotalAttenuation(lp, p)
		if err != nil {
			return Curve{}, err
		}
		c.A[i] = a
	}
	// Numerical safety: enforce monotone non-increasing A.
	for i := 1; i < len(c.A); i++ {
		if c.A[i] > c.A[i-1] {
			c.A[i] = c.A[i-1]
		}
	}
	return c, nil
}

// ZeroCurve is an all-zero curve (a path segment with no radio hop through
// weather).
func ZeroCurve() Curve {
	return Curve{P: DefaultPGrid, A: make([]float64, len(DefaultPGrid))}
}

// At returns A(p) by log-linear interpolation on the grid; p is clamped to
// the grid range.
func (c Curve) At(p float64) float64 {
	if len(c.P) == 0 {
		return 0
	}
	if p <= c.P[0] {
		return c.A[0]
	}
	if p >= c.P[len(c.P)-1] {
		return c.A[len(c.A)-1]
	}
	i := sort.SearchFloat64s(c.P, p)
	lo, hi := i-1, i
	t := (math.Log(p) - math.Log(c.P[lo])) / (math.Log(c.P[hi]) - math.Log(c.P[lo]))
	return c.A[lo]*(1-t) + c.A[hi]*t
}

// ExceedanceAt inverts the curve: the probability (% of time) that
// attenuation exceeds x dB. Values above A(pMin) return pMin; values below
// A(pMax) return pMax (the curve cannot resolve beyond its grid).
func (c Curve) ExceedanceAt(x float64) float64 {
	if len(c.P) == 0 {
		return DefaultPGrid[len(DefaultPGrid)-1]
	}
	if x >= c.A[0] {
		return c.P[0]
	}
	last := len(c.A) - 1
	if x <= c.A[last] {
		return c.P[last]
	}
	// A is non-increasing; find the bracketing segment.
	for i := 1; i <= last; i++ {
		if x >= c.A[i] {
			// Flat segments make the inverse ambiguous; exceedance of x
			// is the LARGEST p with A(p) ≥ x, so skip over ties.
			for i < last && c.A[i+1] >= x {
				i++
			}
			aHi, aLo := c.A[i-1], c.A[i]
			if aHi == aLo {
				return c.P[i]
			}
			t := (aHi - x) / (aHi - aLo)
			return math.Exp(math.Log(c.P[i-1])*(1-t) + math.Log(c.P[i])*t)
		}
	}
	return c.P[last]
}

// WorstOf returns the pointwise maximum of the curves — the attenuation of a
// multi-hop path when the reported metric is the worst link attenuation
// (§6: "we find the worst attenuation seen across all links in the path";
// the model assumes regeneration at each GT, so attenuations do not
// multiply).
func WorstOf(curves ...Curve) Curve {
	out := ZeroCurve()
	for i := range out.P {
		for _, c := range curves {
			if a := c.At(out.P[i]); a > out.A[i] {
				out.A[i] = a
			}
		}
	}
	return out
}

// CombineOverTime merges per-snapshot curves into the overall
// time-and-weather exceedance curve: for each attenuation level x, the
// combined exceedance is the mean over snapshots of each snapshot's
// conditional exceedance of x. The result is resampled onto the default
// probability grid.
func CombineOverTime(snapshots []Curve) Curve {
	if len(snapshots) == 0 {
		return ZeroCurve()
	}
	// Collect candidate attenuation levels across snapshots.
	var levels []float64
	for _, c := range snapshots {
		levels = append(levels, c.A...)
	}
	sort.Float64s(levels)
	levels = dedupFloats(levels)

	// Combined exceedance at each level.
	exc := make([]float64, len(levels))
	for i, x := range levels {
		var sum float64
		for _, c := range snapshots {
			sum += c.ExceedanceAt(x)
		}
		exc[i] = sum / float64(len(snapshots))
	}

	// Invert back onto the default grid: for target p, find the largest x
	// with exceedance ≥ p (levels ascending → exceedance non-increasing).
	out := ZeroCurve()
	for i, p := range out.P {
		// Binary search the first level whose exceedance < p.
		lo, hi := 0, len(levels)
		for lo < hi {
			mid := (lo + hi) / 2
			if exc[mid] >= p*(1-1e-9) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			out.A[i] = levels[0]
		} else {
			out.A[i] = levels[lo-1]
		}
	}
	for i := 1; i < len(out.A); i++ {
		if out.A[i] > out.A[i-1] {
			out.A[i] = out.A[i-1]
		}
	}
	return out
}

func dedupFloats(s []float64) []float64 {
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}
