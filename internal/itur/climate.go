// Package itur ports the ITU-R recommendation formulas the paper drives
// through the ITU-Rpy library [12] to model atmospheric attenuation on
// slant paths: rain (P.618/P.838/P.839), clouds (P.840), gases (P.676) and
// tropospheric scintillation (P.618 §2.4). Attenuation due to free-space
// path loss is deliberately not modeled, matching §6.
//
// Substitution note: the recommendations' proprietary digital climate maps
// (rain rate, columnar cloud water, wet refractivity) are replaced by a
// smooth synthetic climatology that reproduces the global pattern the
// experiments depend on — an ITCZ-peaked wet tropics, moderate mid-latitude
// storm tracks, and dry poles. The formula structure on top of the maps is
// the ITU one.
package itur

import "math"

// RainRate001 returns the synthetic rainfall rate R0.01 (mm/h exceeded 0.01%
// of an average year) at the given location. Peaks of ≈90 mm/h in the ITCZ
// band, a secondary mid-latitude ridge, and a gentle longitudinal modulation
// so paths crossing different regions differ.
func RainRate001(latDeg, lonDeg float64) float64 {
	itcz := 7.0 // mean ITCZ latitude
	tropics := 85 * math.Exp(-sq((latDeg-itcz)/13))
	midlat := 28 * math.Exp(-sq((math.Abs(latDeg)-42)/16))
	base := tropics + midlat + 6
	// Longitudinal texture (monsoon basins vs subsidence zones).
	mod := 1 + 0.18*math.Sin(lonDeg*math.Pi/90+latDeg*math.Pi/60)
	r := base * mod
	if r < 2 {
		r = 2
	}
	if r > 120 {
		r = 120
	}
	return r
}

// RainHeightKm returns the mean rain height above sea level (P.839-style
// latitude model: the 0 °C isotherm plus 0.36 km, flattened in the tropics).
func RainHeightKm(latDeg float64) float64 {
	a := math.Abs(latDeg)
	h := 5.0
	if a > 23 {
		h = 5.0 - 0.075*(a-23)
	}
	if h < 0.5 {
		h = 0.5
	}
	return h
}

// WaterVapourDensity returns the surface water-vapour density ρ in g/m³
// (tropics ≈ 22, mid-latitudes ≈ 8, poles ≈ 3).
func WaterVapourDensity(latDeg float64) float64 {
	return 19*math.Exp(-sq(latDeg/35)) + 3
}

// SurfaceTempK returns the mean surface temperature in kelvin.
func SurfaceTempK(latDeg float64) float64 {
	return 300 - 32*math.Pow(math.Abs(latDeg)/90, 1.6)
}

// WetRefractivity returns N_wet, the wet term of the surface radio
// refractivity, used by the scintillation model (tropics ≈ 100, poles ≈ 20).
func WetRefractivity(latDeg float64) float64 {
	return 85*math.Exp(-sq(latDeg/40)) + 20
}

// ColumnarCloudWater returns the total columnar content of cloud liquid
// water L (kg/m²) exceeded p% of an average year (P.840-style). The 1%
// climatological value is scaled to other probabilities with a power law.
func ColumnarCloudWater(latDeg, lonDeg, p float64) float64 {
	l1 := 1.8*math.Exp(-sq(latDeg/45)) + 0.3
	l1 *= 1 + 0.15*math.Sin(lonDeg*math.Pi/120)
	if p <= 0 {
		p = 0.001
	}
	l := l1 * math.Pow(1/p, 0.45)
	if l > 6 {
		l = 6
	}
	return l
}

func sq(x float64) float64 { return x * x }
