package itur

import (
	"testing"
)

// Property tests for the P.618/P.838 models: physics fixes the sign of these
// derivatives (heavier rain attenuates more; a steeper path crosses less
// troposphere), so a violation anywhere on the grid is a model-coding bug,
// not a tolerance issue.

var propFreqsGHz = []float64{7, 11.7, 14.25, 20, 30, 40, 55}

// TestRainSpecificAttenuationMonotoneInRate: γ_R = k·R^α with k, α > 0 must
// be strictly increasing in rain rate at every frequency and polarization.
func TestRainSpecificAttenuationMonotoneInRate(t *testing.T) {
	rates := []float64{0.25, 1, 2, 5, 10, 22, 35, 60, 95, 150}
	for _, f := range propFreqsGHz {
		for _, pol := range []Polarization{PolH, PolV, PolCircular} {
			prev := 0.0
			for i, r := range rates {
				g := RainSpecificAttenuation(f, pol, r)
				if g <= 0 {
					t.Fatalf("f=%v pol=%v R=%v: γ=%v not positive", f, pol, r, g)
				}
				if i > 0 && g <= prev {
					t.Errorf("f=%v pol=%v: γ(R=%v)=%v not above γ(R=%v)=%v",
						f, pol, r, g, rates[i-1], prev)
				}
				prev = g
			}
		}
	}
}

// Elevation monotonicity. Raising the elevation shortens the slant path
// through the troposphere, so attenuation should fall. P.618's empirical
// vertical-adjustment factor (v0.01, with its −0.45√sinθ term) genuinely
// breaks strict monotonicity toward zenith (el ≳ 55° in heavy-rain climates)
// and above ~20 GHz — that is the recommendation's empirical fit, probed and
// confirmed term by term against the other components, not a coding bug. So
// the properties are split: strict monotonicity over the paper's Ku/K
// frequencies on [5°, 55°], and for the full grid up to 55 GHz and 90° a
// weaker envelope — no elevation may attenuate more than the 5° worst case.
var monotoneFreqsGHz = []float64{7, 11.7, 14.25, 20}

var propSites = []struct{ lat, lon float64 }{
	{51.5, -0.1}, // London: temperate
	{1.3, 103.8}, // Singapore: tropical, heavy R001
	{28.6, 77.2}, // Delhi: |lat| < 36 engages the β term
}

var propElevations = []float64{5, 10, 15, 20, 25, 30, 40, 55, 70, 85, 90}

// propElevationsStrict is the range where strict monotonicity holds in every
// climate; the envelope test covers the zenith tail.
var propElevationsStrict = []float64{5, 10, 15, 20, 25, 30, 40, 55}

func TestRainAttenuationMonotoneInElevation(t *testing.T) {
	for _, f := range monotoneFreqsGHz {
		for _, site := range propSites {
			for _, p := range []float64{0.01, 0.1, 1} {
				prev := -1.0
				for i, el := range propElevationsStrict {
					lp := LinkParams{LatDeg: site.lat, LonDeg: site.lon,
						ElevationDeg: el, FreqGHz: f}
					a, err := RainAttenuation(lp, p)
					if err != nil {
						t.Fatalf("f=%v el=%v p=%v: %v", f, el, p, err)
					}
					if a < 0 {
						t.Fatalf("f=%v el=%v p=%v: negative attenuation %v", f, el, p, a)
					}
					if i > 0 && a > prev+1e-9 {
						t.Errorf("f=%v site=%v p=%v: A(el=%v)=%v dB above A(el=%v)=%v dB",
							f, site, p, el, a, propElevationsStrict[i-1], prev)
					}
					prev = a
				}
			}
		}
	}
}

// TestRainAttenuationLowElevationWorstCase is the envelope property that
// survives up to 55 GHz: whatever the v0.01 wiggle does at high elevations,
// the near-horizon path must remain the deepest fade.
func TestRainAttenuationLowElevationWorstCase(t *testing.T) {
	for _, f := range propFreqsGHz {
		for _, site := range propSites {
			lp := LinkParams{LatDeg: site.lat, LonDeg: site.lon,
				ElevationDeg: 5, FreqGHz: f}
			worst, err := RainAttenuation(lp, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			for _, el := range propElevations[1:] {
				lp.ElevationDeg = el
				a, err := RainAttenuation(lp, 0.1)
				if err != nil {
					t.Fatal(err)
				}
				if a > worst+1e-9 {
					t.Errorf("f=%v site=%v: A(el=%v)=%v dB above the 5° fade %v dB",
						f, site, el, a, worst)
				}
			}
		}
	}
}

// TestTotalAttenuationMonotoneInElevation: on the strict-monotone frequency
// range, every term (gas, cloud, rain, scintillation) scales with the air
// mass along the path, so the combined total must be non-increasing too.
func TestTotalAttenuationMonotoneInElevation(t *testing.T) {
	elevations := []float64{5, 10, 20, 30, 45, 55}
	for _, f := range monotoneFreqsGHz {
		prev := -1.0
		for i, el := range elevations {
			lp := LinkParams{LatDeg: 40.7, LonDeg: -74.0, ElevationDeg: el, FreqGHz: f}
			a, err := TotalAttenuation(lp, 0.1)
			if err != nil {
				t.Fatalf("f=%v el=%v: %v", f, el, err)
			}
			if i > 0 && a > prev+1e-9 {
				t.Errorf("f=%v: total A(el=%v)=%v dB above A(el=%v)=%v dB",
					f, el, a, elevations[i-1], prev)
			}
			prev = a
		}
	}
}

// TestRainAttenuationMonotoneInExceedance: A(p) is an exceedance curve — a
// fade exceeded 1%% of the time cannot be deeper than one exceeded 0.01%%.
func TestRainAttenuationMonotoneInExceedance(t *testing.T) {
	ps := []float64{0.001, 0.01, 0.1, 0.5, 1, 3, 5}
	for _, f := range propFreqsGHz {
		prev := -1.0
		for i, p := range ps {
			lp := LinkParams{LatDeg: 51.5, LonDeg: -0.1, ElevationDeg: 35, FreqGHz: f}
			a, err := RainAttenuation(lp, p)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && a > prev+1e-9 {
				t.Errorf("f=%v: A(p=%v)=%v dB above A(p=%v)=%v dB", f, p, a, ps[i-1], prev)
			}
			prev = a
		}
	}
}
