package itur

import (
	"fmt"
	"math"
)

// LinkParams describe one ground(or aircraft)-satellite radio link for
// attenuation purposes.
type LinkParams struct {
	// LatDeg, LonDeg locate the ground end of the slant path.
	LatDeg, LonDeg float64
	// ElevationDeg is the link elevation angle at the ground terminal.
	ElevationDeg float64
	// FreqGHz is the carrier frequency.
	FreqGHz float64
	// Pol is the polarization (default PolCircular).
	Pol Polarization
	// StationHeightKm is the terminal altitude above sea level. Aircraft
	// relays at cruise altitude sit above the rain and most of the
	// troposphere, which this model honors.
	StationHeightKm float64
	// AntennaDiameterM is the ground antenna diameter for scintillation
	// averaging; zero defaults to 0.6 m (user-terminal scale).
	AntennaDiameterM float64
}

// validate clamps and sanity-checks parameters.
func (lp *LinkParams) validate() error {
	if lp.FreqGHz <= 0 {
		return fmt.Errorf("itur: frequency must be positive, got %v", lp.FreqGHz)
	}
	if lp.ElevationDeg <= 0 || lp.ElevationDeg > 90 {
		return fmt.Errorf("itur: elevation %v° outside (0,90]", lp.ElevationDeg)
	}
	if lp.AntennaDiameterM == 0 {
		lp.AntennaDiameterM = 0.6
	}
	return nil
}

// GaseousAttenuation returns the gaseous (oxygen + water vapour) slant-path
// attenuation in dB. It uses the classic P.676 approximation for sea-level
// specific attenuations with equivalent heights, divided by sin(elevation).
// Gaseous attenuation is essentially deterministic (no exceedance
// probability).
func GaseousAttenuation(lp LinkParams) (float64, error) {
	if err := lp.validate(); err != nil {
		return 0, err
	}
	f := lp.FreqGHz
	rho := WaterVapourDensity(lp.LatDeg)
	// Oxygen specific attenuation (dB/km), valid f < 54 GHz.
	gammaO := (7.2/(f*f+0.34) + 0.62/(math.Pow(54-f, 1.16)+0.83)) * f * f * 1e-3
	// Water vapour specific attenuation (dB/km), f < 350 GHz.
	gammaW := (0.067 + 3/(sq(f-22.3)+7.3) + 9/(sq(f-183.3)+6) +
		4.3/(sq(f-323.8)+10)) * f * f * rho * 1e-4
	const hO, hW = 6.0, 2.0 // equivalent heights, km
	// Terminals above the equivalent layer see an exponentially thinner
	// column.
	attO := gammaO * hO * math.Exp(-lp.StationHeightKm/hO)
	attW := gammaW * hW * math.Exp(-lp.StationHeightKm/hW)
	return (attO + attW) / sinDeg(lp.ElevationDeg), nil
}

// CloudAttenuation returns cloud attenuation in dB exceeded p% of the time
// (P.840-style: columnar liquid water times a frequency-dependent specific
// coefficient, over sin(elevation)).
func CloudAttenuation(lp LinkParams, p float64) (float64, error) {
	if err := lp.validate(); err != nil {
		return 0, err
	}
	// Aircraft at cruise altitude are above the liquid-water cloud deck.
	if lp.StationHeightKm >= 6 {
		return 0, nil
	}
	l := ColumnarCloudWater(lp.LatDeg, lp.LonDeg, p)
	kl := 0.0007 * math.Pow(lp.FreqGHz, 1.9) // simplified Rayleigh fit, 0 °C
	return l * kl / sinDeg(lp.ElevationDeg), nil
}

// RainAttenuation returns rain attenuation in dB exceeded p% of an average
// year, implementing the P.618 §2.2.1.1 slant-path procedure on top of the
// synthetic R0.01 climatology. Valid for p in [0.001, 5].
func RainAttenuation(lp LinkParams, p float64) (float64, error) {
	if err := lp.validate(); err != nil {
		return 0, err
	}
	if p < 0.001 || p > 5 {
		return 0, fmt.Errorf("itur: rain exceedance p=%v%% outside [0.001,5]", p)
	}
	theta := lp.ElevationDeg
	sinT := sinDeg(theta)
	hs := lp.StationHeightKm
	hr := RainHeightKm(lp.LatDeg)
	if hr <= hs {
		return 0, nil // terminal above the rain (aircraft)
	}
	// Slant path length below rain height.
	var ls float64
	if theta >= 5 {
		ls = (hr - hs) / sinT
	} else {
		ls = 2 * (hr - hs) /
			(math.Sqrt(sinT*sinT+2*(hr-hs)/8500) + sinT)
	}
	lg := ls * cosDeg(theta)
	r001 := RainRate001(lp.LatDeg, lp.LonDeg)
	gammaR := RainSpecificAttenuation(lp.FreqGHz, lp.Pol, r001)
	f := lp.FreqGHz

	// Horizontal reduction factor.
	hrf := 1 / (1 + 0.78*math.Sqrt(lg*gammaR/f) - 0.38*(1-math.Exp(-2*lg)))
	// Vertical adjustment factor.
	zeta := math.Atan2(hr-hs, lg*hrf) * 180 / math.Pi
	var lr float64
	if zeta > theta {
		lr = lg * hrf / cosDeg(theta)
	} else {
		lr = (hr - hs) / sinT
	}
	chi := 0.0
	if a := math.Abs(lp.LatDeg); a < 36 {
		chi = 36 - a
	}
	v001 := 1 / (1 + math.Sqrt(sinT)*
		(31*(1-math.Exp(-theta/(1+chi)))*math.Sqrt(lr*gammaR)/(f*f)-0.45))
	le := lr * v001
	a001 := gammaR * le
	if a001 <= 0 {
		return 0, nil
	}

	// Scale from 0.01% to p%.
	var beta float64
	absLat := math.Abs(lp.LatDeg)
	switch {
	case p >= 1 || absLat >= 36:
		beta = 0
	case theta >= 25:
		beta = -0.005 * (absLat - 36)
	default:
		beta = -0.005*(absLat-36) + 1.8 - 4.25*sinT
	}
	exp := -(0.655 + 0.033*math.Log(p) - 0.045*math.Log(a001) -
		beta*(1-p)*sinT)
	return a001 * math.Pow(p/0.01, exp), nil
}

// ScintillationAttenuation returns the tropospheric scintillation fade depth
// in dB exceeded p% of the time (P.618 §2.4.1). Valid for p in [0.01, 50].
func ScintillationAttenuation(lp LinkParams, p float64) (float64, error) {
	if err := lp.validate(); err != nil {
		return 0, err
	}
	if p < 0.01 || p > 50 {
		return 0, fmt.Errorf("itur: scintillation p=%v%% outside [0.01,50]", p)
	}
	// Scintillation arises in the first few km of troposphere; airborne
	// terminals skip it.
	if lp.StationHeightKm >= 6 {
		return 0, nil
	}
	nwet := WetRefractivity(lp.LatDeg)
	sigmaRef := 3.6e-3 + 1e-4*nwet // dB
	f := lp.FreqGHz
	sinT := sinDeg(lp.ElevationDeg)
	const hL = 1000.0                                    // turbulence height, m
	lM := 2 * hL / (math.Sqrt(sinT*sinT+2.35e-4) + sinT) // effective path, m
	// Antenna averaging: x = 1.22·D_eff²·(f/L), f in GHz, L in m.
	dEff := math.Sqrt(0.55) * lp.AntennaDiameterM // aperture efficiency 0.55
	xArg := 1.22 * dEff * dEff * f / lM
	g := math.Sqrt(math.Abs(3.86*math.Pow(xArg*xArg+1, 11.0/12.0)*
		math.Sin(11.0/6.0*math.Atan(1/xArg)) - 7.08*math.Pow(xArg, 5.0/6.0)))
	if math.IsNaN(g) || g > 1 {
		g = 1
	}
	sigma := sigmaRef * math.Pow(f, 7.0/12.0) * g / math.Pow(sinT, 1.2)
	lp10 := math.Log10(p)
	aP := -0.061*lp10*lp10*lp10 + 0.072*lp10*lp10 - 1.71*lp10 + 3.0
	if aP < 0 {
		aP = 0
	}
	return aP * sigma, nil
}

// TotalAttenuation returns the combined attenuation in dB exceeded p% of the
// time, using the P.618 §2.5 combination:
//
//	A(p) = A_gas + sqrt((A_rain(p)+A_cloud(p))² + A_scint(p)²).
func TotalAttenuation(lp LinkParams, p float64) (float64, error) {
	if err := lp.validate(); err != nil {
		return 0, err
	}
	ag, err := GaseousAttenuation(lp)
	if err != nil {
		return 0, err
	}
	ar, err := RainAttenuation(lp, clampF(p, 0.001, 5))
	if err != nil {
		return 0, err
	}
	ac, err := CloudAttenuation(lp, p)
	if err != nil {
		return 0, err
	}
	as, err := ScintillationAttenuation(lp, clampF(p, 0.01, 50))
	if err != nil {
		return 0, err
	}
	return ag + math.Sqrt(sq(ar+ac)+sq(as)), nil
}

// ScaleRainAttenuationFrequency applies the P.618 §2.2.1.2 long-term
// frequency-scaling rule: given rain attenuation a1 (dB) measured or
// predicted at frequency f1 (GHz), estimate the attenuation at f2 on the
// same path. Valid for 7–55 GHz; used to transfer beacon measurements
// between bands (e.g. the Ku→Ka comparison §6 alludes to).
func ScaleRainAttenuationFrequency(a1, f1GHz, f2GHz float64) (float64, error) {
	if a1 < 0 {
		return 0, fmt.Errorf("itur: negative attenuation %v", a1)
	}
	if f1GHz < 7 || f1GHz > 55 || f2GHz < 7 || f2GHz > 55 {
		return 0, fmt.Errorf("itur: frequency scaling valid for 7–55 GHz, got %v→%v", f1GHz, f2GHz)
	}
	if a1 == 0 || f1GHz == f2GHz {
		return a1, nil
	}
	phi := func(f float64) float64 { return f * f / (1 + 1e-4*f*f) }
	p1, p2 := phi(f1GHz), phi(f2GHz)
	h := 1.12e-3 * math.Sqrt(p2/p1) * math.Pow(p1*a1, 0.55)
	return a1 * math.Pow(p2/p1, 1-h), nil
}

// ReceivedPowerFraction converts attenuation in dB to the fraction of power
// received (e.g. 1 dB → ≈0.794, the "11% reduction" of §6).
func ReceivedPowerFraction(dB float64) float64 {
	return math.Pow(10, -dB/10)
}

func sinDeg(d float64) float64 { return math.Sin(d * math.Pi / 180) }
func cosDeg(d float64) float64 { return math.Cos(d * math.Pi / 180) }

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
