package linkbudget

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLadderConsistency(t *testing.T) {
	// Within one modulation family, higher thresholds buy higher
	// efficiency; and overall efficiency spans the DVB-S2 range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, mc := range DVBS2Ladder {
		if mc.SpectralEff <= 0 {
			t.Errorf("%s has non-positive efficiency", mc.Name)
		}
		lo = math.Min(lo, mc.SpectralEff)
		hi = math.Max(hi, mc.SpectralEff)
	}
	if lo > 0.5 || hi < 4 {
		t.Errorf("ladder range [%v,%v] not DVB-S2-like", lo, hi)
	}
}

func TestSelectMonotone(t *testing.T) {
	b := StarlinkKuBudget()
	prevEff := 0.0
	for snr := -5.0; snr <= 20; snr += 0.25 {
		mc, ok := b.Select(snr)
		if !ok {
			if snr >= -2.4 {
				t.Fatalf("link should close at %v dB", snr)
			}
			continue
		}
		if mc.SpectralEff < prevEff {
			t.Fatalf("efficiency decreased with SNR at %v dB: %v < %v",
				snr, mc.SpectralEff, prevEff)
		}
		prevEff = mc.SpectralEff
	}
	// Below the lowest rung: outage.
	if _, ok := b.Select(-10); ok {
		t.Errorf("should be in outage at −10 dB")
	}
	// At the top: the best rung.
	mc, _ := b.Select(100)
	if mc.Name != "32APSK 8/9" {
		t.Errorf("best rung = %s", mc.Name)
	}
}

func TestStarlinkCalibration(t *testing.T) {
	b := StarlinkKuBudget()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Clear sky at max slant range ≈ 20 Gbps (§5's GSL capacity).
	r := b.RateGbps(1123, 0)
	if r < 18 || r > 22 {
		t.Errorf("clear-sky rate at max range = %v Gbps, want ≈20", r)
	}
	// Closer satellites (shorter slant range) never do worse.
	if b.RateGbps(600, 0) < r {
		t.Errorf("shorter range should not reduce rate")
	}
}

func TestWeatherDegradation(t *testing.T) {
	b := StarlinkKuBudget()
	// A few dB of rain fade forces a lower MODCOD → lower rate.
	clear := b.RateGbps(1123, 0)
	faded := b.RateGbps(1123, 5)
	if faded >= clear {
		t.Errorf("5 dB fade should reduce rate: %v vs %v", faded, clear)
	}
	if faded <= 0 {
		t.Errorf("5 dB fade should not cause outage at 16 dB clear-sky")
	}
	// Deep fade → outage.
	if r := b.RateGbps(1123, 25); r != 0 {
		t.Errorf("25 dB fade should be outage, got %v Gbps", r)
	}
	// Retention is in [0,1] and decreasing in attenuation.
	prev := 1.0
	for a := 0.0; a <= 25; a += 0.5 {
		ret := b.CapacityRetention(1123, a)
		if ret < 0 || ret > 1+1e-9 {
			t.Fatalf("retention %v out of range", ret)
		}
		if ret > prev+1e-9 {
			t.Fatalf("retention increased with attenuation at %v dB", a)
		}
		prev = ret
	}
}

func TestSNRRangeScaling(t *testing.T) {
	b := StarlinkKuBudget()
	// Doubling the range costs 6.02 dB of spreading loss.
	d := b.SNRdB(1123, 0) - b.SNRdB(2246, 0)
	if math.Abs(d-6.02) > 0.01 {
		t.Errorf("range doubling cost %v dB, want ≈6.02", d)
	}
}

func TestValidate(t *testing.T) {
	bad := StarlinkKuBudget()
	bad.BandwidthMHz = 0
	if bad.Validate() == nil {
		t.Errorf("zero bandwidth must fail")
	}
	bad = StarlinkKuBudget()
	bad.Ladder = []ModCod{}
	if bad.Validate() == nil {
		t.Errorf("empty ladder must fail")
	}
	bad.Ladder = []ModCod{{Name: "x", MinSNRdB: 0, SpectralEff: -1}}
	if bad.Validate() == nil {
		t.Errorf("negative efficiency must fail")
	}
}

// Property: rate is monotone non-increasing in attenuation for any range.
func TestRateMonotoneProperty(t *testing.T) {
	b := StarlinkKuBudget()
	f := func(rangeRaw, a1Raw, a2Raw float64) bool {
		rng := 300 + math.Mod(math.Abs(rangeRaw), 2000)
		a1 := math.Mod(math.Abs(a1Raw), 30)
		a2 := math.Mod(math.Abs(a2Raw), 30)
		if math.IsNaN(rng) || math.IsNaN(a1) || math.IsNaN(a2) {
			return true
		}
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		return b.RateGbps(rng, a1) >= b.RateGbps(rng, a2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
