// Package linkbudget turns atmospheric attenuation into capacity: §6 notes
// that "higher attenuation has to be dealt with by appropriate design for
// modulation and error correction schemes (MODCOD), and trades off bandwidth
// for reliability". This package provides that trade-off: a DVB-S2-style
// adaptive MODCOD ladder maps link SNR (clear-sky budget minus rain/cloud/
// gas/scintillation attenuation) to spectral efficiency, and therefore to
// the achievable rate of a ground-satellite link under weather.
package linkbudget

import (
	"fmt"
	"math"
)

// ModCod is one rung of the adaptive coding-and-modulation ladder.
type ModCod struct {
	// Name is the modulation + code-rate label.
	Name string
	// MinSNRdB is the Es/N0 threshold at which the rung is usable.
	MinSNRdB float64
	// SpectralEff is the efficiency in bit/s/Hz.
	SpectralEff float64
}

// DVBS2Ladder is an approximate DVB-S2 MODCOD ladder (threshold values to
// the precision the capacity-retention analysis needs; real systems add
// implementation margins).
var DVBS2Ladder = []ModCod{
	{"QPSK 1/4", -2.4, 0.49},
	{"QPSK 1/3", -1.2, 0.66},
	{"QPSK 2/5", -0.3, 0.79},
	{"QPSK 1/2", 1.0, 0.99},
	{"QPSK 3/5", 2.2, 1.19},
	{"QPSK 2/3", 3.1, 1.32},
	{"QPSK 3/4", 4.0, 1.49},
	{"QPSK 4/5", 4.7, 1.59},
	{"QPSK 5/6", 5.2, 1.65},
	{"8PSK 3/5", 5.5, 1.78},
	{"8PSK 2/3", 6.6, 1.98},
	{"8PSK 3/4", 7.9, 2.23},
	{"8PSK 5/6", 9.4, 2.48},
	{"16APSK 2/3", 9.0, 2.64},
	{"16APSK 3/4", 10.2, 2.97},
	{"16APSK 4/5", 11.0, 3.17},
	{"16APSK 5/6", 11.6, 3.30},
	{"16APSK 8/9", 12.9, 3.52},
	{"32APSK 3/4", 12.7, 3.70},
	{"32APSK 4/5", 13.6, 3.95},
	{"32APSK 5/6", 14.3, 4.12},
	{"32APSK 8/9", 15.7, 4.40},
}

// Budget describes one adaptive radio link.
type Budget struct {
	// ClearSkySNRdB is the Es/N0 at the reference slant range with no
	// atmospheric attenuation.
	ClearSkySNRdB float64
	// RefRangeKm is the slant range the clear-sky SNR is quoted at;
	// longer ranges lose 20·log10(d/ref) dB of free-space spreading.
	RefRangeKm float64
	// BandwidthMHz is the occupied bandwidth determining the absolute
	// rate (rate = efficiency × bandwidth).
	BandwidthMHz float64
	// Ladder is the MODCOD ladder; nil uses DVBS2Ladder.
	Ladder []ModCod
}

// StarlinkKuBudget returns a budget calibrated so a clear-sky link at the
// maximum Starlink slant range (≈1,123 km at e=25°) achieves ≈20 Gbps —
// the paper's §5 GT-satellite capacity — on the DVB-S2 ladder.
func StarlinkKuBudget() Budget {
	return Budget{
		// 16 dB at max range: 32APSK 8/9 usable with a small margin.
		ClearSkySNRdB: 16,
		RefRangeKm:    1123,
		// 4.40 bit/s/Hz × 4,545 MHz ≈ 20 Gbps.
		BandwidthMHz: 4545,
	}
}

// SNRdB returns the link SNR at slant range rangeKm with attenuation
// attenDB of excess atmospheric loss.
func (b Budget) SNRdB(rangeKm, attenDB float64) float64 {
	snr := b.ClearSkySNRdB - attenDB
	if rangeKm > 0 && b.RefRangeKm > 0 {
		snr -= 20 * math.Log10(rangeKm/b.RefRangeKm)
	}
	return snr
}

// Select returns the highest MODCOD usable at the given SNR, or ok=false
// when even the most robust rung cannot close the link (outage).
func (b Budget) Select(snrDB float64) (ModCod, bool) {
	ladder := b.Ladder
	if ladder == nil {
		ladder = DVBS2Ladder
	}
	best := -1
	for i, mc := range ladder {
		if snrDB >= mc.MinSNRdB && (best < 0 || mc.SpectralEff > ladder[best].SpectralEff) {
			best = i
		}
	}
	if best < 0 {
		return ModCod{}, false
	}
	return ladder[best], true
}

// RateGbps returns the achievable rate at slant range rangeKm under
// attenDB of atmospheric attenuation. Zero means outage.
func (b Budget) RateGbps(rangeKm, attenDB float64) float64 {
	mc, ok := b.Select(b.SNRdB(rangeKm, attenDB))
	if !ok {
		return 0
	}
	return mc.SpectralEff * b.BandwidthMHz * 1e6 / 1e9
}

// CapacityRetention returns the fraction of clear-sky rate retained under
// attenDB of attenuation at the same range.
func (b Budget) CapacityRetention(rangeKm, attenDB float64) float64 {
	clear := b.RateGbps(rangeKm, 0)
	if clear <= 0 {
		return 0
	}
	return b.RateGbps(rangeKm, attenDB) / clear
}

// Validate checks the budget parameters.
func (b Budget) Validate() error {
	if b.BandwidthMHz <= 0 {
		return fmt.Errorf("linkbudget: bandwidth must be positive")
	}
	if b.RefRangeKm < 0 {
		return fmt.Errorf("linkbudget: negative reference range")
	}
	ladder := b.Ladder
	if ladder == nil {
		ladder = DVBS2Ladder
	}
	if len(ladder) == 0 {
		return fmt.Errorf("linkbudget: empty MODCOD ladder")
	}
	for _, mc := range ladder {
		if mc.SpectralEff <= 0 {
			return fmt.Errorf("linkbudget: MODCOD %q has non-positive efficiency", mc.Name)
		}
	}
	return nil
}
