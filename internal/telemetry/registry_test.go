package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// Counters, gauges and histograms must tolerate concurrent registration
// and update (run under -race) without losing increments.
func TestRegistryConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Counter("requests").Inc()
				reg.Gauge("inflight").Add(1)
				reg.Histogram("latency").Observe(time.Microsecond)
				reg.Gauge("inflight").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("requests").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := reg.Gauge("inflight").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := reg.Histogram("latency").Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests").Add(7)
	reg.Gauge("inflight").Set(2)
	reg.RegisterGaugeFunc("cache_hits", func() int64 { return 41 })
	reg.Histogram("http_request").Observe(5 * time.Millisecond)
	reg.StageHistogram(StageSearch).Observe(time.Millisecond)

	snap := reg.Snapshot()
	if snap.Counters["requests"] != 7 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["inflight"] != 2 || snap.Gauges["cache_hits"] != 41 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if snap.Histograms["http_request"].Count != 1 {
		t.Errorf("histograms = %v", snap.Histograms)
	}
	if snap.Stages["search"].Count != 1 {
		t.Errorf("stages = %v", snap.Stages)
	}
	// Empty stages must be omitted, and the whole snapshot must marshal.
	if _, ok := snap.Stages["maxmin_alloc"]; ok {
		t.Error("empty stage appeared in snapshot")
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	for _, want := range []string{`"search"`, `"p50Ms"`, `"cache_hits"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("snapshot JSON lacks %s: %s", want, buf.String())
		}
	}
}

func TestSampleRuntime(t *testing.T) {
	rs := SampleRuntime()
	if rs.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", rs.Goroutines)
	}
	if rs.HeapLiveBytes <= 0 {
		t.Errorf("heap = %d, want > 0", rs.HeapLiveBytes)
	}
	if rs.GCPauseP50Ms < 0 || rs.GCPauseMaxMs < rs.GCPauseP50Ms {
		t.Errorf("gc pauses p50=%v max=%v inconsistent", rs.GCPauseP50Ms, rs.GCPauseMaxMs)
	}
}

func TestProgressLinesAndETA(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep", 4)
	if p == nil {
		t.Fatal("NewProgress returned nil for a live writer")
	}
	p.interval = 0 // no throttling in the test
	p.Step(1)
	p.Step(1)
	p.Step(2)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "sweep 1/4 (25%)") || !strings.Contains(lines[0], "eta") {
		t.Errorf("first line %q lacks progress/eta", lines[0])
	}
	if !strings.Contains(lines[2], "4/4 (100%)") || strings.Contains(lines[2], "eta") {
		t.Errorf("final line %q should be complete without eta", lines[2])
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Step(1) // must not panic
	p.Finish()
	if NewProgress(nil, "x", 10) != nil {
		t.Error("nil writer should yield nil Progress")
	}
}
