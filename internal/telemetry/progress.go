package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress emits rate-limited progress/ETA lines for a sweep with a known
// number of steps (snapshots of a day-long run, fractions of a fault
// sweep). A nil *Progress is a valid no-op, so callers write
//
//	prog := telemetry.NewProgress(w, "fig2a", len(times))
//	...
//	prog.Step(1)
//	...
//	prog.Finish()
//
// and pass w == nil to silence the whole thing.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	label    string
	total    int
	done     int
	start    time.Time
	interval time.Duration
	lastEmit time.Time
	finished bool
	now      func() time.Time // injectable clock (tests)
}

// NewProgress starts a progress report of total steps written to w; a nil
// writer (or non-positive total) returns nil, which every method accepts.
// Lines are throttled to one per second, plus a final line from Finish.
func NewProgress(w io.Writer, label string, total int) *Progress {
	if w == nil || total <= 0 {
		return nil
	}
	return &Progress{
		w: w, label: label, total: total,
		start: time.Now(), interval: time.Second,
		now: time.Now,
	}
}

// Step advances the done count by n, emitting a progress/ETA line when the
// throttle interval has passed (or on the final step).
func (p *Progress) Step(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done += n
	if p.done > p.total {
		p.done = p.total
	}
	now := p.now()
	if p.done < p.total && now.Sub(p.lastEmit) < p.interval {
		return
	}
	p.lastEmit = now
	p.emit(now)
}

// Finish emits the final line unless the last Step already did (the sweep
// completed); safe to defer unconditionally, including on partial runs.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished {
		return
	}
	p.emit(p.now())
}

// emit writes one "label 12/96 (12%) elapsed 31s eta 3m42s" line; callers
// hold p.mu.
func (p *Progress) emit(now time.Time) {
	if p.done == p.total {
		p.finished = true
	}
	elapsed := now.Sub(p.start)
	line := fmt.Sprintf("%s %d/%d (%.0f%%) elapsed %s",
		p.label, p.done, p.total,
		100*float64(p.done)/float64(p.total),
		elapsed.Round(time.Second))
	if p.done > 0 && p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
}
