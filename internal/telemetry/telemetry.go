// Package telemetry is the unified observability layer shared by batch
// experiment runs and the query server: a metrics registry (atomic counters,
// gauges, fixed-bucket latency histograms with p50/p90/p99 snapshots, and a
// runtime/metrics sampler), lightweight trace spans instrumenting every
// pipeline stage, and a per-run stage-time Recorder carried through
// context.Context.
//
// The package is stdlib-only and built around one hard constraint: when
// telemetry is disabled (the default), the instrumented hot paths — most of
// all the allocation-free Dijkstra kernel — must pay essentially nothing.
// Every span start is gated on a single atomic pointer load; a disabled span
// is the zero Span value, its End a nil check. Nothing allocates on either
// the enabled or the disabled path: Span is a small value, histograms are
// fixed arrays of atomic counters, and the Recorder is a fixed array indexed
// by Stage.
//
// Collection surfaces compose:
//
//   - The process-global active Registry (Enable/Disable) receives per-stage
//     latency histograms from the packages that own each stage — the graph
//     builder and Dijkstra kernel, the max-min allocator, the ITU-R curve
//     sampler, the fault realizer, the snapshot cache. /metrics and the
//     batch -v summaries read it with Snapshot.
//   - A Recorder, attached to a context with WithRecorder, accumulates
//     per-stage wall-clock totals for ONE run or ONE request: experiment
//     JSON envelopes emit it as the stage_times breakdown, the server logs
//     it per request. Stages may nest (a k-disjoint computation contains
//     many searches), so stage totals are per-stage wall time, not a
//     partition of the run.
//   - A Progress reporter turns per-snapshot steps of a long sweep into
//     rate-limited progress/ETA lines.
//   - A flight recorder (EmitEvent / Events / DumpEvents): a fixed ring of
//     structured events — build failures, breaker transitions, degraded
//     serves, chaos injections — served at /debug/events and dumped to
//     stderr on panic or SIGQUIT, so "what happened, in what order" is
//     answerable after the fact.
//   - Per-request tracing (TraceID / StartTracing): spans under a traced
//     context export as Chrome trace_event JSON, one track per request or
//     batch snapshot, viewable in Perfetto.
//   - Prometheus text exposition (Registry.WritePrometheus), so the same
//     registry scrapes into standard dashboards.
package telemetry

import (
	"sync/atomic"
)

// active is the process-global registry; nil means telemetry is disabled
// and every span start returns the zero Span after one atomic load.
var active atomic.Pointer[Registry]

// Enable turns on process-global telemetry, installing (and returning) a
// registry. If telemetry is already enabled the existing registry is kept.
func Enable() *Registry {
	for {
		if r := active.Load(); r != nil {
			return r
		}
		r := NewRegistry()
		if active.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable turns process-global telemetry off again (tests, benchmarks).
func Disable() { active.Store(nil) }

// Active returns the process-global registry, or nil when disabled.
func Active() *Registry { return active.Load() }

// Enabled reports whether process-global telemetry is on.
func Enabled() bool { return active.Load() != nil }
