package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// The flight recorder: a fixed-size ring buffer of structured events that
// records *what happened* — build failures, breaker transitions, degraded
// serves, chaos injections, rebuild fallbacks — where the metrics registry
// records only *how many*. Diagnosing "breakerOpens: 3" needs the order and
// identity of the three failures; the recorder keeps the last few thousand
// events resident so a crash dump, a SIGQUIT, or GET /debug/events can
// reconstruct the failure sequence post hoc.
//
// Emission sits behind the same atomic.Pointer gate as spans: with
// telemetry disabled an EmitEvent is one atomic load; enabled, it copies a
// fixed-size Event value into a preallocated slot under a mutex — O(1), no
// per-event heap allocation (proven by BenchmarkEventEnabled).

// Category classifies an event by the subsystem that emitted it. The set is
// closed so /debug/events can filter without string matching.
type Category uint8

const (
	// CatBuild is the snapshot-build lifecycle: start, finish, failure,
	// timeout, late adoption.
	CatBuild Category = iota
	// CatBreaker is a circuit-breaker transition (open, half-open, close).
	CatBreaker
	// CatServe is a request-path degradation: stale serve, fallback serve,
	// load shed, breaker reject, internal error.
	CatServe
	// CatChaos is an injected fault from the chaos injector.
	CatChaos
	// CatAdvance is an incremental-advancer event (full-rebuild fallback).
	CatAdvance
	// CatJournal is a crash-recovery event (resume replays).
	CatJournal
	// NumCategories bounds the enum; not a category itself.
	NumCategories
	// CatAll is the filter wildcard accepted by EventFilter.
	CatAll Category = 255
)

var categoryNames = [NumCategories]string{
	"build", "breaker", "serve", "chaos", "advance", "journal",
}

// String returns the stable category name used in /debug/events filters and
// JSON output.
func (c Category) String() string {
	if c < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// ParseCategory resolves a category name ("" means CatAll).
func ParseCategory(name string) (Category, error) {
	if name == "" {
		return CatAll, nil
	}
	for i, n := range categoryNames {
		if n == name {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown event category %q", name)
}

// Severity grades an event.
type Severity uint8

const (
	// SevInfo is normal operation worth recording (build done, replay).
	SevInfo Severity = iota
	// SevWarn is a degradation the system absorbed (stale serve, timeout).
	SevWarn
	// SevError is a failure (build failed, breaker opened).
	SevError
)

var severityNames = [3]string{"info", "warn", "error"}

func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// ParseSeverity resolves a severity name ("" means SevInfo — no floor).
func ParseSeverity(name string) (Severity, error) {
	if name == "" {
		return SevInfo, nil
	}
	for i, n := range severityNames {
		if n == name {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown severity %q", name)
}

// maxEventAttrs bounds per-event attributes so an Event is a fixed-size
// value: appending one to the ring copies, never allocates.
const maxEventAttrs = 4

// Attr is one event attribute. Construct with Str or Int64; the two-field
// shape keeps integer attrs from being formatted (allocating) at emission
// time — rendering happens only when the event is dumped or served.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	isInt bool
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int64 builds an integer attribute without formatting it.
func Int64(key string, val int64) Attr { return Attr{Key: key, Int: val, isInt: true} }

// Value returns the attribute's value for JSON rendering.
func (a Attr) Value() interface{} {
	if a.isInt {
		return a.Int
	}
	return a.Str
}

func (a Attr) appendText(b []byte) []byte {
	b = append(b, a.Key...)
	b = append(b, '=')
	if a.isInt {
		return fmt.Appendf(b, "%d", a.Int)
	}
	return append(b, a.Str...)
}

// Event is one flight-recorder record: when, what subsystem, how bad, which
// request (trace), and a handful of attributes. It is a fixed-size value.
type Event struct {
	// Seq is the global emission sequence number (1-based, monotonic);
	// /debug/events?since= filters on it.
	Seq  uint64
	Time time.Time
	Cat  Category
	Sev  Severity
	// Trace joins the event to the request or run that caused it (zero when
	// none was in scope).
	Trace TraceID
	// Msg is the event's static description ("build failed", "stale serve").
	Msg string

	attrs  [maxEventAttrs]Attr
	nattrs uint8
}

// Attrs returns the event's attributes (a view of the fixed array).
func (e *Event) Attrs() []Attr { return e.attrs[:e.nattrs] }

// MarshalJSON renders the event for /debug/events.
func (e Event) MarshalJSON() ([]byte, error) {
	attrs := map[string]interface{}{}
	for _, a := range e.Attrs() {
		attrs[a.Key] = a.Value()
	}
	view := struct {
		Seq      uint64                 `json:"seq"`
		Time     time.Time              `json:"time"`
		Category string                 `json:"category"`
		Severity string                 `json:"severity"`
		Trace    string                 `json:"trace,omitempty"`
		Msg      string                 `json:"msg"`
		Attrs    map[string]interface{} `json:"attrs,omitempty"`
	}{
		Seq: e.Seq, Time: e.Time,
		Category: e.Cat.String(), Severity: e.Sev.String(),
		Msg: e.Msg, Attrs: attrs,
	}
	if e.Trace != 0 {
		view.Trace = e.Trace.String()
	}
	return json.Marshal(view)
}

// appendText renders one dump line:
// "12:04:05.123 ERROR build   build failed key=... err=...".
func (e *Event) appendText(b []byte) []byte {
	b = e.Time.AppendFormat(b, "15:04:05.000")
	b = fmt.Appendf(b, " %-5s %-7s ", e.Sev.String(), e.Cat.String())
	if e.Trace != 0 {
		b = fmt.Appendf(b, "[%s] ", e.Trace.String())
	}
	b = append(b, e.Msg...)
	for _, a := range e.Attrs() {
		b = append(b, ' ')
		b = a.appendText(b)
	}
	return append(b, '\n')
}

// DefaultEventCapacity is the flight-recorder ring size installed by
// Enable. At a few hundred bytes per slot the resident cost is ~1 MiB —
// hours of failure history at realistic event rates.
const DefaultEventCapacity = 4096

// EventRing is the fixed-capacity ring. All methods are safe for concurrent
// use; append is O(1) and allocation-free (the buffer is preallocated and
// events are copied by value).
type EventRing struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // total events ever emitted; buf[(seq-1) % cap] is newest
}

// newEventRing allocates a ring of the given capacity (minimum 16).
func newEventRing(capacity int) *EventRing {
	if capacity < 16 {
		capacity = 16
	}
	return &EventRing{buf: make([]Event, capacity)}
}

func (r *EventRing) emit(e Event) {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	r.buf[(r.seq-1)%uint64(len(r.buf))] = e
	r.mu.Unlock()
}

// LastSeq returns the sequence number of the newest event (0 if none).
func (r *EventRing) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// EventFilter selects events from the ring.
type EventFilter struct {
	// Since drops events with Seq <= Since (0 = from the oldest retained).
	Since uint64
	// Cat keeps one category, or CatAll for every category.
	Cat Category
	// MinSev drops events below this severity.
	MinSev Severity
	// Limit bounds the result (0 = no bound beyond ring capacity). When
	// more events match, the *newest* Limit are returned.
	Limit int
}

// Snapshot copies the matching events out of the ring, oldest first.
func (r *EventRing) Snapshot(f EventFilter) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	capacity := uint64(len(r.buf))
	lo := uint64(0)
	if r.seq > capacity {
		lo = r.seq - capacity // oldest retained seq - 1
	}
	if f.Since > lo {
		lo = f.Since
	}
	var out []Event
	for s := lo + 1; s <= r.seq; s++ {
		e := &r.buf[(s-1)%capacity]
		if f.Cat != CatAll && e.Cat != f.Cat {
			continue
		}
		if e.Sev < f.MinSev {
			continue
		}
		out = append(out, *e)
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// EmitEvent records one event on the active registry's flight recorder.
// Disabled telemetry makes it one atomic load; enabled, it reads the trace
// ID from ctx and copies the event into the ring — no heap allocation when
// msg and the attrs are preexisting values. A nil ctx is allowed.
func EmitEvent(ctx context.Context, cat Category, sev Severity, msg string, attrs ...Attr) {
	reg := active.Load()
	if reg == nil {
		return
	}
	e := Event{Time: time.Now(), Cat: cat, Sev: sev, Msg: msg}
	if ctx != nil {
		e.Trace = TraceIDFrom(ctx)
	}
	n := copy(e.attrs[:], attrs)
	e.nattrs = uint8(n)
	reg.events.emit(e)
}

// Events snapshots the active registry's flight recorder (nil when
// telemetry is disabled).
func Events(f EventFilter) []Event {
	reg := active.Load()
	if reg == nil {
		return nil
	}
	return reg.events.Snapshot(f)
}

// LastEventSeq returns the newest event sequence number on the active
// registry (0 when disabled or empty) — the cursor for incremental reads.
func LastEventSeq() uint64 {
	reg := active.Load()
	if reg == nil {
		return 0
	}
	return reg.events.LastSeq()
}

// dumpLimit bounds a crash dump so a panic report stays readable.
const dumpLimit = 256

// DumpEvents writes the newest retained events (up to 256) to w as text,
// oldest first — the post-mortem view wired to panic recovery and SIGQUIT.
// A no-op when telemetry is disabled or nothing was recorded.
func DumpEvents(w io.Writer) {
	reg := active.Load()
	if reg == nil {
		return
	}
	evs := reg.events.Snapshot(EventFilter{Cat: CatAll, Limit: dumpLimit})
	if len(evs) == 0 {
		return
	}
	var b []byte
	b = fmt.Appendf(b, "--- flight recorder: last %d events ---\n", len(evs))
	for i := range evs {
		b = evs[i].appendText(b)
	}
	b = append(b, "--- end flight recorder ---\n"...)
	w.Write(b) //nolint:errcheck // best-effort crash dump
}
