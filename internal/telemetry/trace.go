package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Per-request tracing: every serve request and every traced batch snapshot
// gets a TraceID; spans started under a context carrying one are routed into
// the active Tracer (when a capture is running) and exported as Chrome
// trace_event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each trace renders as its own named track, so one
// request's graph-build → search → cache-lookup timeline reads left to
// right.
//
// Capture is explicitly bounded: StartTracing installs one Tracer on the
// active registry (`-tracefile` arms it for a whole batch run; GET
// /debug/trace?duration= for a serve window); when no Tracer is installed a
// span's only tracing cost is one atomic load.

// TraceID identifies one request or one traced batch snapshot. IDs are
// unique within a process run (a random 32-bit epoch plus a counter), and
// render as 16 hex digits.
type TraceID uint64

// String renders the ID as it appears in logs, response headers and events.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

var (
	// traceEpoch distinguishes runs: restarted processes never reuse IDs
	// within a log-retention window.
	traceEpoch = uint64(rand.Int63()) << 32 //nolint:gosec // uniqueness, not secrecy
	traceSeq   atomic.Uint64
)

// NewTraceID allocates a fresh process-unique trace ID.
func NewTraceID() TraceID {
	return TraceID(traceEpoch | (traceSeq.Add(1) & 0xffffffff))
}

type traceIDKey struct{}

// WithTraceID attaches id to ctx. context.WithoutCancel (the snapshot
// cache's detached builds) preserves the attachment, which is what joins a
// background build failure to the request that triggered it.
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the trace ID attached to ctx, or zero.
func TraceIDFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceIDKey{}).(TraceID)
	return id
}

// traceEvent is one completed span in a capture.
type traceEvent struct {
	name  string
	trace TraceID
	start time.Time
	dur   time.Duration
}

// DefaultTraceCapacity bounds a capture's retained spans; past it, new
// spans are dropped (and counted) rather than growing without bound.
const DefaultTraceCapacity = 1 << 20

// Tracer accumulates completed spans for one capture window.
type Tracer struct {
	mu      sync.Mutex
	started time.Time
	events  []traceEvent
	max     int
	dropped int64
}

// NewTracer creates a detached tracer (max <= 0 uses DefaultTraceCapacity).
// Most callers want StartTracing, which also installs it on the registry.
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultTraceCapacity
	}
	return &Tracer{started: time.Now(), max: max}
}

// Add records one completed span. Spans without a trace ID (id == 0) land
// on a shared "untraced" track rather than being lost.
func (t *Tracer) Add(name string, id TraceID, start time.Time, dur time.Duration) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, traceEvent{name: name, trace: id, start: start, dur: dur})
	}
	t.mu.Unlock()
}

// Len returns the number of captured spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many spans were discarded over capacity.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one trace_event record. Complete events (ph "X") carry ts
// and dur in microseconds; metadata events (ph "M") name the tracks.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  uint32                 `json:"tid"`
	Ts   float64                `json:"ts,omitempty"`
	Dur  float64                `json:"dur,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// tid folds a TraceID onto a Chrome thread id: each trace is one track.
func (id TraceID) tid() uint32 { return uint32(id) }

// WriteChrome renders the capture as Chrome trace_event JSON (the
// {"traceEvents": [...]} envelope Perfetto and chrome://tracing load
// directly). Spans are emitted in capture order with timestamps relative to
// the capture start; every distinct trace gets a thread_name metadata
// record so tracks are labeled by trace ID.
func (t *Tracer) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	events := t.events
	started := t.started
	dropped := t.dropped
	t.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	emit := func(first bool, ev chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(raw)
		return err
	}
	first := true
	seen := map[TraceID]bool{}
	for i := range events {
		ev := &events[i]
		if !seen[ev.trace] {
			seen[ev.trace] = true
			name := "untraced"
			if ev.trace != 0 {
				name = "trace " + ev.trace.String()
			}
			if err := emit(first, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: ev.trace.tid(),
				Args: map[string]interface{}{"name": name},
			}); err != nil {
				return err
			}
			first = false
		}
		ce := chromeEvent{
			Name: ev.name, Ph: "X", Pid: 1, Tid: ev.trace.tid(),
			Ts:  float64(ev.start.Sub(started)) / 1e3,
			Dur: float64(ev.dur) / 1e3,
		}
		if ev.trace != 0 {
			ce.Args = map[string]interface{}{"trace": ev.trace.String()}
		}
		if err := emit(first, ce); err != nil {
			return err
		}
		first = false
	}
	if _, err := fmt.Fprintf(bw, "\n],\"otherData\":{\"droppedEvents\":%d}}\n", dropped); err != nil {
		return err
	}
	return bw.Flush()
}

// StartTracing installs a fresh Tracer on the active registry and returns
// it. It fails when telemetry is disabled or a capture is already running —
// captures are exclusive so two /debug/trace windows cannot steal each
// other's spans.
func StartTracing(max int) (*Tracer, error) {
	reg := active.Load()
	if reg == nil {
		return nil, fmt.Errorf("telemetry: tracing requires telemetry enabled")
	}
	tr := NewTracer(max)
	if !reg.tracer.CompareAndSwap(nil, tr) {
		return nil, fmt.Errorf("telemetry: a trace capture is already running")
	}
	return tr, nil
}

// StopTracing uninstalls and returns the running capture (nil when none).
func StopTracing() *Tracer {
	reg := active.Load()
	if reg == nil {
		return nil
	}
	return reg.tracer.Swap(nil)
}

// TracingEnabled reports whether a capture is currently running — the gate
// callers use before paying for per-snapshot trace IDs.
func TracingEnabled() bool {
	reg := active.Load()
	return reg != nil && reg.tracer.Load() != nil
}

// AddTraceSpan records one explicitly-delimited span (a whole HTTP request,
// a whole experiment) into the running capture, if any.
func AddTraceSpan(name string, id TraceID, start time.Time, dur time.Duration) {
	reg := active.Load()
	if reg == nil {
		return
	}
	if tr := reg.tracer.Load(); tr != nil {
		tr.Add(name, id, start, dur)
	}
}
