package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock drives a Progress deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func lines(buf *bytes.Buffer) []string {
	s := strings.TrimSpace(buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func newFakeProgress(buf *bytes.Buffer, label string, total int, clk *fakeClock) *Progress {
	p := NewProgress(buf, label, total)
	p.now = clk.now
	p.start = clk.t
	return p
}

// Steps inside the one-second throttle window stay silent; a step after the
// window emits one line; the final step always emits.
func TestProgressCadence(t *testing.T) {
	var buf bytes.Buffer
	clk := newFakeClock()
	p := newFakeProgress(&buf, "fig2a", 10, clk)

	p.Step(1) // lastEmit is zero time → first step emits
	if got := lines(&buf); len(got) != 1 || !strings.HasPrefix(got[0], "fig2a 1/10 (10%)") {
		t.Fatalf("first step: %q", got)
	}
	clk.advance(300 * time.Millisecond)
	p.Step(1)
	clk.advance(300 * time.Millisecond)
	p.Step(1)
	if got := lines(&buf); len(got) != 1 {
		t.Fatalf("throttled steps emitted: %q", got)
	}
	clk.advance(time.Second)
	p.Step(1)
	got := lines(&buf)
	if len(got) != 2 {
		t.Fatalf("step after interval did not emit: %q", got)
	}
	if !strings.HasPrefix(got[1], "fig2a 4/10 (40%)") || !strings.Contains(got[1], "eta") {
		t.Errorf("progress line = %q, want count 4/10 with an eta", got[1])
	}

	clk.advance(10 * time.Millisecond)
	p.Step(6) // reaches total inside the throttle window — must still emit
	got = lines(&buf)
	if len(got) != 3 || !strings.HasPrefix(got[2], "fig2a 10/10 (100%)") {
		t.Fatalf("final step: %q", got)
	}
	if strings.Contains(got[2], "eta") {
		t.Errorf("final line carries an eta: %q", got[2])
	}

	// Finish after the final step already emitted must not duplicate it.
	p.Finish()
	if got := lines(&buf); len(got) != 3 {
		t.Errorf("Finish after completion re-emitted: %q", got)
	}
}

// Finish on a partial run flushes one final line even inside the throttle
// window — a crash-interrupted sweep still reports where it stopped.
func TestProgressFinishFlushesPartial(t *testing.T) {
	var buf bytes.Buffer
	clk := newFakeClock()
	p := newFakeProgress(&buf, "sweep", 100, clk)
	p.Step(1)
	clk.advance(100 * time.Millisecond)
	p.Step(41)
	if got := lines(&buf); len(got) != 1 {
		t.Fatalf("throttled step emitted: %q", got)
	}
	p.Finish()
	got := lines(&buf)
	if len(got) != 2 || !strings.HasPrefix(got[1], "sweep 42/100 (42%)") {
		t.Fatalf("Finish did not flush the partial count: %q", got)
	}
}

// Step must clamp over-counted totals rather than report 11/10.
func TestProgressClampsOvershoot(t *testing.T) {
	var buf bytes.Buffer
	clk := newFakeClock()
	p := newFakeProgress(&buf, "x", 10, clk)
	p.Step(15)
	got := lines(&buf)
	if len(got) != 1 || !strings.HasPrefix(got[0], "x 10/10 (100%)") {
		t.Fatalf("overshoot: %q", got)
	}
}

// A nil writer (or nonsense total) disables the reporter entirely: NewProgress
// returns nil and every method on a nil *Progress is a safe no-op.
func TestProgressQuietSuppression(t *testing.T) {
	if p := NewProgress(nil, "quiet", 10); p != nil {
		t.Fatalf("NewProgress(nil writer) = %v, want nil", p)
	}
	var buf bytes.Buffer
	if p := NewProgress(&buf, "empty", 0); p != nil {
		t.Fatalf("NewProgress(total=0) = %v, want nil", p)
	}
	var p *Progress
	p.Step(3) // must not panic
	p.Finish()
	if buf.Len() != 0 {
		t.Errorf("nil progress wrote %q", buf.String())
	}
}
