package telemetry

import (
	"context"
	"testing"
	"time"
)

// The disabled span path is the contract the routing kernel depends on:
// one atomic load, no allocation, single-digit nanoseconds.
func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartStageSpan(StageSearch)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	Enable()
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartStageSpan(StageSearch)
		sp.End()
	}
}

func BenchmarkSpanEnabledWithRecorder(b *testing.B) {
	Enable()
	defer Disable()
	ctx := WithRecorder(context.Background(), NewRecorder())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(ctx, StageSearch)
		sp.End()
	}
}

// The disabled event path shares the span contract: one atomic load, no
// allocation — emitters stay in the serve and build hot paths unconditionally.
func BenchmarkEventDisabled(b *testing.B) {
	Disable()
	key := Str("key", "bp@snap0")
	dur := Int64("durMs", 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EmitEvent(nil, CatBuild, SevInfo, "build done", key, dur)
	}
}

// Enabled, an emit copies one fixed-size Event into the preallocated ring
// under a mutex: O(1), no per-event heap allocation.
func BenchmarkEventEnabled(b *testing.B) {
	Enable()
	defer Disable()
	key := Str("key", "bp@snap0")
	dur := Int64("durMs", 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EmitEvent(nil, CatBuild, SevInfo, "build done", key, dur)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}
