package telemetry

import (
	"context"
	"testing"
	"time"
)

// The disabled span path is the contract the routing kernel depends on:
// one atomic load, no allocation, single-digit nanoseconds.
func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartStageSpan(StageSearch)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	Enable()
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartStageSpan(StageSearch)
		sp.End()
	}
}

func BenchmarkSpanEnabledWithRecorder(b *testing.B) {
	Enable()
	defer Disable()
	ctx := WithRecorder(context.Background(), NewRecorder())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(ctx, StageSearch)
		sp.End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}
