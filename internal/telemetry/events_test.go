package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseCategory(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
	if got, err := ParseCategory(""); err != nil || got != CatAll {
		t.Errorf("ParseCategory(\"\") = %v, %v; want CatAll", got, err)
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("ParseCategory(bogus): want error")
	}
}

func TestParseSeverity(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarn, SevError} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if got, err := ParseSeverity(""); err != nil || got != SevInfo {
		t.Errorf("ParseSeverity(\"\") = %v, %v; want SevInfo", got, err)
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal): want error")
	}
}

// The ring keeps exactly the newest `capacity` events: after overflow the
// snapshot starts at seq total-capacity+1 and stays oldest-first.
func TestEventRingWraparound(t *testing.T) {
	r := newEventRing(16)
	for i := 0; i < 40; i++ {
		r.emit(Event{Cat: CatBuild, Msg: "e"})
	}
	if got := r.LastSeq(); got != 40 {
		t.Fatalf("LastSeq = %d, want 40", got)
	}
	evs := r.Snapshot(EventFilter{Cat: CatAll})
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	for i, e := range evs {
		if want := uint64(25 + i); e.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
}

func TestEventRingFilters(t *testing.T) {
	r := newEventRing(64)
	r.emit(Event{Cat: CatBuild, Sev: SevInfo, Msg: "build done"})
	r.emit(Event{Cat: CatBuild, Sev: SevError, Msg: "build failed"})
	r.emit(Event{Cat: CatServe, Sev: SevWarn, Msg: "stale serve"})
	r.emit(Event{Cat: CatBreaker, Sev: SevError, Msg: "breaker open"})

	if evs := r.Snapshot(EventFilter{Cat: CatBuild}); len(evs) != 2 {
		t.Errorf("Cat=build: %d events, want 2", len(evs))
	}
	if evs := r.Snapshot(EventFilter{Cat: CatAll, MinSev: SevError}); len(evs) != 2 {
		t.Errorf("MinSev=error: %d events, want 2", len(evs))
	}
	if evs := r.Snapshot(EventFilter{Cat: CatAll, Since: 3}); len(evs) != 1 || evs[0].Seq != 4 {
		t.Errorf("Since=3: %+v, want just seq 4", evs)
	}
	// Limit keeps the newest N of the matches.
	if evs := r.Snapshot(EventFilter{Cat: CatAll, Limit: 2}); len(evs) != 2 || evs[1].Seq != 4 {
		t.Errorf("Limit=2: %+v, want seqs 3,4", evs)
	}
}

func TestEmitEventDisabled(t *testing.T) {
	Disable()
	EmitEvent(context.Background(), CatBuild, SevError, "into the void")
	if evs := Events(EventFilter{Cat: CatAll}); evs != nil {
		t.Errorf("Events while disabled = %v, want nil", evs)
	}
	if seq := LastEventSeq(); seq != 0 {
		t.Errorf("LastEventSeq while disabled = %d, want 0", seq)
	}
	var buf bytes.Buffer
	DumpEvents(&buf)
	if buf.Len() != 0 {
		t.Errorf("DumpEvents while disabled wrote %q", buf.String())
	}
}

// An event emitted under a traced context carries the trace ID — including
// through context.WithoutCancel, which is how detached snapshot builds join
// back to the request that triggered them.
func TestEmitEventCarriesTraceID(t *testing.T) {
	Enable()
	defer Disable()
	id := NewTraceID()
	ctx := WithTraceID(context.Background(), id)
	detached := context.WithoutCancel(ctx)
	since := LastEventSeq()
	EmitEvent(detached, CatChaos, SevWarn, "chaos injected build failure", Str("key", "k"), Int64("draw", 7))
	EmitEvent(nil, CatAdvance, SevInfo, "no context at all")

	evs := Events(EventFilter{Cat: CatAll, Since: since})
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Trace != id {
		t.Errorf("event trace = %v, want %v (value must survive WithoutCancel)", evs[0].Trace, id)
	}
	if evs[1].Trace != 0 {
		t.Errorf("nil-ctx event trace = %v, want 0", evs[1].Trace)
	}
	attrs := evs[0].Attrs()
	if len(attrs) != 2 || attrs[0].Key != "key" || attrs[0].Str != "k" || attrs[1].Int != 7 {
		t.Errorf("attrs = %+v", attrs)
	}
}

func TestEventMarshalJSON(t *testing.T) {
	e := Event{
		Seq: 3, Time: time.Unix(0, 0).UTC(), Cat: CatServe, Sev: SevWarn,
		Trace: TraceID(0xabc), Msg: "stale serve",
	}
	e.attrs[0] = Str("key", "bp@snap0")
	e.attrs[1] = Int64("ageMs", 1500)
	e.nattrs = 2
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]interface{}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got["category"] != "serve" || got["severity"] != "warn" || got["msg"] != "stale serve" {
		t.Errorf("marshalled = %v", got)
	}
	if got["trace"] != TraceID(0xabc).String() {
		t.Errorf("trace = %v, want %v", got["trace"], TraceID(0xabc).String())
	}
	attrs, _ := got["attrs"].(map[string]interface{})
	if attrs["key"] != "bp@snap0" || attrs["ageMs"] != float64(1500) {
		t.Errorf("attrs = %v", attrs)
	}
}

func TestDumpEvents(t *testing.T) {
	Enable()
	defer Disable()
	EmitEvent(nil, CatBreaker, SevError, "breaker open: consecutive build failures crossed threshold",
		Int64("streak", 5))
	var buf bytes.Buffer
	DumpEvents(&buf)
	out := buf.String()
	for _, want := range []string{"flight recorder", "error", "breaker", "streak=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// Concurrent emitters and readers must be race-clean and never lose the
// sequence invariant (this test is most useful under -race).
func TestEventRingConcurrent(t *testing.T) {
	Enable()
	defer Disable()
	const workers, per = 8, 200
	start := LastEventSeq()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				EmitEvent(nil, CatBuild, SevInfo, "concurrent", Int64("i", int64(i)))
				if i%50 == 0 {
					Events(EventFilter{Cat: CatBuild, Limit: 8})
				}
			}
		}()
	}
	wg.Wait()
	if got := LastEventSeq(); got != start+workers*per {
		t.Errorf("LastEventSeq = %d, want %d", got, start+workers*per)
	}
}

// The enabled emit path must not allocate per event: Event is a fixed-size
// value copied into a preallocated slot, and integer attrs are not formatted
// at emission time.
func TestEmitEventZeroAlloc(t *testing.T) {
	Enable()
	defer Disable()
	key := Str("key", "bp@snap0")
	dur := Int64("durMs", 12)
	allocs := testing.AllocsPerRun(1000, func() {
		EmitEvent(nil, CatBuild, SevInfo, "build done", key, dur)
	})
	if allocs != 0 {
		t.Errorf("EmitEvent allocates %.1f per call, want 0", allocs)
	}
}
