package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (the version 0.0.4 format every scraper
// speaks), stdlib-only: counters and gauges render as single samples,
// histograms as cumulative `_bucket{le="..."}` series with `_sum` and
// `_count`. Durations are converted to seconds per Prometheus convention —
// a histogram registered as "http_path_ms" exports as
// "<prefix>http_path_seconds".

// promName sanitizes a metric name into the exposition grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): every illegal rune becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if legal {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promHistName maps a registry histogram name to its exported seconds name:
// a trailing "_ms" is replaced by "_seconds", otherwise "_seconds" appends.
func promHistName(name string) string {
	return promName(strings.TrimSuffix(name, "_ms")) + "_seconds"
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePromHistogram renders one Histogram as a cumulative-bucket series.
// The bucket grid is the histogram's own power-of-two microsecond grid,
// expressed in seconds; +Inf equals the bucket-count total, so bucket
// monotonicity and the count invariant hold by construction even while
// concurrent Observes land mid-scrape.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if i == numBuckets-1 {
			// The last bucket is unbounded above; its cumulative count IS
			// the +Inf sample.
			break
		}
		le := promFloat(float64(bucketUpperNs(i)) / 1e9)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(float64(h.sumNs.Load())/1e9)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
	return err
}

// WritePrometheus renders the registry — counters, gauges (including
// pull-style gauge funcs), named histograms, and the per-stage histograms
// that saw at least one span — in Prometheus text exposition format, every
// metric name prefixed (e.g. "leosim_"). Output order is deterministic:
// families sorted by name within each kind.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	bw := bufio.NewWriter(w)

	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		gaugeFuncs[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	// Gauge funcs run unlocked: they may re-enter other components' locks.
	for name, fn := range gaugeFuncs {
		gauges[name] = fn()
	}

	for _, name := range sortedKeys(counters) {
		full := prefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", full, full, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		full := prefix + promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", full, full, gauges[name])
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		if err := writePromHistogram(bw, prefix+promHistName(name), hists[name]); err != nil {
			return err
		}
	}
	if err := r.writePromStages(bw, prefix); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePrometheusStages renders only the per-stage histograms that saw at
// least one span, as "<prefix>stage_<name>_seconds" families. The serve
// path uses it to append the process-global pipeline-stage histograms to a
// per-server registry's exposition without duplicating any family.
func (r *Registry) WritePrometheusStages(w io.Writer, prefix string) error {
	bw := bufio.NewWriter(w)
	if err := r.writePromStages(bw, prefix); err != nil {
		return err
	}
	return bw.Flush()
}

func (r *Registry) writePromStages(w io.Writer, prefix string) error {
	for s := Stage(0); s < NumStages; s++ {
		h := r.stages[s]
		if h.Count() == 0 {
			continue
		}
		if err := writePromHistogram(w, prefix+"stage_"+promName(s.String())+"_seconds", h); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
