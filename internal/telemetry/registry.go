package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable level (in-flight requests, resident
// entries).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics plus the fixed per-stage
// histograms. Registration takes a lock; metric updates are lock-free.
// One registry is installed process-globally with Enable; components that
// must not share a namespace (test servers) create their own with
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram

	// stages is indexed by Stage — the span fast path does no map lookup.
	stages [NumStages]*Histogram

	// events is the flight recorder: a fixed ring of structured events
	// (build failures, breaker transitions, degraded serves, …).
	events *EventRing
	// tracer, when non-nil, is the running trace capture; spans under a
	// traced context are routed into it.
	tracer atomic.Pointer[Tracer]
}

// NewRegistry returns an empty registry with all stage histograms and the
// flight-recorder ring ready.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() int64{},
		hists:      map[string]*Histogram{},
		events:     newEventRing(DefaultEventCapacity),
	}
	for i := range r.stages {
		r.stages[i] = &Histogram{}
	}
	return r
}

// EventRing returns the registry's flight recorder.
func (r *Registry) EventRing() *EventRing { return r.events }

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RegisterGaugeFunc registers a pull-style gauge: fn is evaluated at
// Snapshot time. It replaces any previous function under the same name —
// the idiom for surfacing another component's atomic stats (the snapshot
// cache) without copying them on every update.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// StageHistogram returns the fixed histogram of one pipeline stage.
func (r *Registry) StageHistogram(s Stage) *Histogram { return r.stages[s] }

// RegistrySnapshot is the JSON-ready view of a registry: every counter and
// gauge by name, every named histogram, and the per-stage histograms that
// saw at least one span.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Stages     map[string]HistogramSnapshot `json:"stages,omitempty"`
}

// Snapshot captures the registry. Counters and gauges are read atomically
// per metric; the snapshot as a whole is a monitoring view, not a
// consistent cut.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges)+len(r.gaugeFuncs) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
		for name, fn := range r.gaugeFuncs {
			s.Gauges[name] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	for i, h := range r.stages {
		if h.Count() == 0 {
			continue
		}
		if s.Stages == nil {
			s.Stages = make(map[string]HistogramSnapshot)
		}
		s.Stages[Stage(i).String()] = h.Snapshot()
	}
	return s
}

// RuntimeStats samples the Go runtime through runtime/metrics: live heap,
// total allocation, GC activity and pause quantiles, goroutine count.
type RuntimeStats struct {
	Goroutines      int64   `json:"goroutines"`
	HeapLiveBytes   int64   `json:"heapLiveBytes"`
	TotalAllocBytes int64   `json:"totalAllocBytes"`
	GCCycles        int64   `json:"gcCycles"`
	GCPauseP50Ms    float64 `json:"gcPauseP50Ms"`
	GCPauseMaxMs    float64 `json:"gcPauseMaxMs"`
}

var runtimeSamples = []metrics.Sample{
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/heap/allocs:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/gc/pauses:seconds"},
}

// SampleRuntime reads the runtime/metrics sampler set. It allocates a fresh
// sample slice per call — it is a snapshot-time operation, never on a hot
// path.
func SampleRuntime() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSamples))
	copy(samples, runtimeSamples)
	metrics.Read(samples)
	var rs RuntimeStats
	rs.Goroutines = int64(samples[0].Value.Uint64())
	rs.HeapLiveBytes = int64(samples[1].Value.Uint64())
	rs.TotalAllocBytes = int64(samples[2].Value.Uint64())
	rs.GCCycles = int64(samples[3].Value.Uint64())
	if h := samples[4].Value.Float64Histogram(); h != nil {
		rs.GCPauseP50Ms = runtimeHistQuantile(h, 0.50) * 1e3
		rs.GCPauseMaxMs = runtimeHistQuantile(h, 1.0) * 1e3
	}
	return rs
}

// runtimeHistQuantile estimates the q-th quantile of a runtime/metrics
// Float64Histogram (bucket midpoint of the bucket holding the target rank).
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	last := 0.0
	for i, c := range h.Counts {
		cum += c
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		if c > 0 {
			last = hi
		}
		if cum >= target {
			return (lo + hi) / 2
		}
	}
	return last
}
