package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Stage names one instrumented pipeline stage. The set is fixed so that the
// hot paths index arrays instead of hashing strings.
type Stage uint8

const (
	// StageGraphBuild is one snapshot graph construction (Builder.At).
	StageGraphBuild Stage = iota
	// StageCSRFreeze is the adjacency freeze into CSR form.
	StageCSRFreeze
	// StageSearch is one run of the Dijkstra kernel (Network.Search).
	StageSearch
	// StageKDisjoint is one k-edge-disjoint-paths computation.
	StageKDisjoint
	// StageYen is one Yen k-shortest-paths computation.
	StageYen
	// StageMaxMin is one max-min fair allocation.
	StageMaxMin
	// StageWeather is one ITU-R attenuation curve realization.
	StageWeather
	// StageFaultRealize is one fault-plan realization into outages.
	StageFaultRealize
	// StageCacheHit is a snapshot-cache lookup served from memory.
	StageCacheHit
	// StageCacheMiss is a snapshot-cache lookup that led the build.
	StageCacheMiss
	// StageCacheWait is a snapshot-cache lookup that waited on another
	// caller's in-flight build (singleflight share).
	StageCacheWait
	// StageAdvance is one incremental snapshot advance (Advancer.Advance),
	// the per-step delta alternative to a full StageGraphBuild.
	StageAdvance
	// StageOracleBuild is one per-snapshot distance-oracle construction
	// (oracle.Build): the one-time cost the batched query path amortizes.
	StageOracleBuild
	// StageOracleQuery is one oracle-answered path query — the precomputed
	// alternative to a full StageSearch.
	StageOracleQuery
	// NumStages bounds the Stage enum; not a stage itself.
	NumStages
)

var stageNames = [NumStages]string{
	"graph_build", "csr_freeze", "search", "kdisjoint", "yen",
	"maxmin_alloc", "weather", "fault_realize",
	"cache_hit", "cache_miss", "cache_wait", "advance",
	"oracle_build", "oracle_query",
}

// String returns the stable snake_case stage name used in /metrics keys,
// stage_times breakdowns, and log attributes.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Span measures one stage execution. It is a small value — returned and
// passed by value, never allocated — and the zero Span (disabled telemetry)
// makes End a no-op after a couple of nil/zero checks.
type Span struct {
	rec    *Recorder
	stage  Stage
	toHist bool
	// trace routes the completed span into the running trace capture; zero
	// (no capture running, or no trace ID on the context) skips the tracer.
	trace TraceID
	start time.Time
}

// StartStageSpan opens a span that records only into the active registry's
// per-stage histogram. It is the form used by the packages that own each
// stage (graph, flow, itur, fault) — call sites without a context. When
// telemetry is disabled it costs one atomic load and returns the zero Span.
func StartStageSpan(stage Stage) Span {
	if active.Load() == nil {
		return Span{}
	}
	return Span{stage: stage, toHist: true, start: time.Now()}
}

// StartSpan opens a span that records into both the active registry's stage
// histogram and the Recorder carried by ctx (if any). Use it where a stage
// is observed exactly once per execution and a context is at hand (the
// snapshot cache).
func StartSpan(ctx context.Context, stage Stage) Span {
	reg := active.Load()
	if reg == nil {
		return Span{}
	}
	sp := Span{rec: FromContext(ctx), stage: stage, toHist: true, start: time.Now()}
	if reg.tracer.Load() != nil {
		sp.trace = TraceIDFrom(ctx)
	}
	return sp
}

// RecordSpan opens a span that records only into the Recorder carried by
// ctx. This is the coarse attribution form: experiment and server code wraps
// calls into packages that already feed the registry histograms themselves,
// so wrapping never double-counts /metrics.
func RecordSpan(ctx context.Context, stage Stage) Span {
	reg := active.Load()
	if reg == nil {
		return Span{}
	}
	rec := FromContext(ctx)
	traced := reg.tracer.Load() != nil
	if rec == nil && !traced {
		return Span{}
	}
	sp := Span{rec: rec, stage: stage, start: time.Now()}
	if traced {
		sp.trace = TraceIDFrom(ctx)
	}
	return sp
}

// End finishes the span under the stage it was started with.
func (sp Span) End() { sp.EndAs(sp.stage) }

// EndAs finishes the span attributing it to stage instead of the one it was
// started with — for call sites that learn the outcome only at the end
// (cache hit vs miss vs singleflight wait).
func (sp Span) EndAs(stage Stage) {
	if !sp.toHist && sp.rec == nil && sp.trace == 0 {
		return
	}
	d := time.Since(sp.start)
	if sp.toHist {
		if reg := active.Load(); reg != nil {
			reg.stages[stage].Observe(d)
		}
	}
	if sp.rec != nil {
		sp.rec.observe(stage, d)
	}
	if sp.trace != 0 {
		AddTraceSpan(stage.String(), sp.trace, sp.start, d)
	}
}

// Recorder accumulates per-stage wall-clock totals for one run or one
// request. It is safe for concurrent spans (parallel experiment workers all
// attribute into the same run recorder). Stages nest — a kdisjoint span
// contains many search spans — so totals are per-stage wall time, not a
// partition of the run.
type Recorder struct {
	nanos  [NumStages]atomic.Int64
	counts [NumStages]atomic.Int64
}

// NewRecorder returns an empty per-run recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) observe(stage Stage, d time.Duration) {
	r.nanos[stage].Add(int64(d))
	r.counts[stage].Add(1)
}

// Total returns the accumulated wall time of one stage.
func (r *Recorder) Total(stage Stage) time.Duration {
	return time.Duration(r.nanos[stage].Load())
}

// Count returns how many spans of one stage ended on this recorder.
func (r *Recorder) Count(stage Stage) int64 { return r.counts[stage].Load() }

// StageTime is one stage's entry in a run breakdown.
type StageTime struct {
	Count   int64   `json:"count"`
	TotalMs float64 `json:"totalMs"`
}

// Breakdown returns the non-empty stages as a name → StageTime map, the
// shape embedded into experiment JSON envelopes as stage_times. It returns
// nil when nothing was recorded, so an empty breakdown marshals as absent.
func (r *Recorder) Breakdown() map[string]StageTime {
	if r == nil {
		return nil
	}
	var out map[string]StageTime
	for s := Stage(0); s < NumStages; s++ {
		c := r.counts[s].Load()
		if c == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]StageTime)
		}
		out[s.String()] = StageTime{
			Count:   c,
			TotalMs: float64(r.nanos[s].Load()) / 1e6,
		}
	}
	return out
}

// Summary renders the breakdown as one compact "stage=12.3ms×4" list,
// sorted by descending total — the form request logs carry.
func (r *Recorder) Summary() string {
	bd := r.Breakdown()
	if len(bd) == 0 {
		return ""
	}
	type kv struct {
		name string
		st   StageTime
	}
	items := make([]kv, 0, len(bd))
	for name, st := range bd {
		items = append(items, kv{name, st})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].st.TotalMs > items[j].st.TotalMs })
	var b strings.Builder
	for i, it := range items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.2fms×%d", it.name, it.st.TotalMs, it.st.Count)
	}
	return b.String()
}

type recorderKey struct{}

// WithRecorder attaches rec to ctx; spans started with StartSpan/RecordSpan
// under the returned context attribute to it. context.WithoutCancel (the
// snapshot cache's detached builds) preserves the attachment.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, rec)
}

// FromContext returns the Recorder attached to ctx, or nil.
func FromContext(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}
