package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers 1µs → ~9m in powers of two, plus an underflow bucket
// (index 0, < 1µs) and an implicit overflow (the last bucket is unbounded
// above). Bucket i (i ≥ 1) holds durations in [2^(i-1)µs, 2^i µs).
const numBuckets = 31

// bucketUpperNs returns the exclusive upper bound of bucket i in
// nanoseconds; the last bucket has no upper bound.
func bucketUpperNs(i int) int64 {
	return int64(1000) << uint(i)
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe: per-bucket atomic counters on a power-of-two microsecond grid.
// Quantiles are estimated by linear interpolation inside the bucket holding
// the target rank, so an estimate is always within one bucket (a factor of
// two) of the exact sample quantile.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

// Observe records one duration. Allocation-free; a handful of atomic adds.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// bits.Len64 of the duration in µs is the index of the first bucket
	// whose upper bound exceeds it: sub-µs → 0, [1µs,2µs) → 1, ...
	idx := bits.Len64(uint64(ns / 1000))
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-th (0..1) sample quantile in nanoseconds.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(q*float64(total-1)) + 1 // rank in [1, total]
	cum := int64(0)
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo := float64(0)
			if i > 0 {
				lo = float64(bucketUpperNs(i - 1))
			}
			hi := float64(bucketUpperNs(i))
			if i == numBuckets-1 {
				// Unbounded overflow bucket: clamp to the observed max.
				hi = float64(h.maxNs.Load())
				if hi < lo {
					hi = lo
				}
			}
			frac := (float64(target-cum) - 0.5) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return float64(h.maxNs.Load())
}

// HistogramSnapshot is a point-in-time, JSON-ready summary of a Histogram.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// Snapshot summarizes the histogram. Concurrent Observes may land between
// field reads; the snapshot is a monitoring view, not a consistent cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	n := h.count.Load()
	s := HistogramSnapshot{Count: n}
	if n == 0 {
		return s
	}
	s.MeanMs = float64(h.sumNs.Load()) / float64(n) / 1e6
	s.P50Ms = h.Quantile(0.50) / 1e6
	s.P90Ms = h.Quantile(0.90) / 1e6
	s.P99Ms = h.Quantile(0.99) / 1e6
	s.MaxMs = float64(h.maxNs.Load()) / 1e6
	return s
}
