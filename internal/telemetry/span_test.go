package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// withEnabled runs fn with process-global telemetry on, restoring the
// disabled default afterwards so other tests (and the overhead benchmarks)
// see a clean slate.
func withEnabled(t *testing.T, fn func(reg *Registry)) {
	t.Helper()
	reg := Enable()
	defer Disable()
	fn(reg)
}

func TestSpanDisabledIsZero(t *testing.T) {
	Disable()
	sp := StartStageSpan(StageSearch)
	if sp != (Span{}) {
		t.Fatalf("disabled StartStageSpan = %+v, want zero Span", sp)
	}
	sp.End() // must be a no-op, not a panic
	ctx := WithRecorder(context.Background(), NewRecorder())
	if sp := RecordSpan(ctx, StageSearch); sp != (Span{}) {
		t.Fatalf("disabled RecordSpan = %+v, want zero Span", sp)
	}
}

func TestStageSpanFeedsActiveRegistry(t *testing.T) {
	withEnabled(t, func(reg *Registry) {
		sp := StartStageSpan(StageMaxMin)
		time.Sleep(time.Millisecond)
		sp.End()
		h := reg.StageHistogram(StageMaxMin)
		if h.Count() != 1 {
			t.Fatalf("stage histogram count = %d, want 1", h.Count())
		}
		if snap := h.Snapshot(); snap.MaxMs < 0.5 {
			t.Errorf("recorded %v ms, want ≥ 0.5 (slept 1ms)", snap.MaxMs)
		}
	})
}

// Nested spans of different stages must attribute to their own stage, and
// an outer span's total must cover its inner spans' wall time.
func TestSpanNestingAttribution(t *testing.T) {
	withEnabled(t, func(reg *Registry) {
		rec := NewRecorder()
		ctx := WithRecorder(context.Background(), rec)

		outer := RecordSpan(ctx, StageKDisjoint)
		for i := 0; i < 3; i++ {
			inner := RecordSpan(ctx, StageSearch)
			time.Sleep(time.Millisecond)
			inner.End()
		}
		outer.End()

		if got := rec.Count(StageSearch); got != 3 {
			t.Errorf("search count = %d, want 3", got)
		}
		if got := rec.Count(StageKDisjoint); got != 1 {
			t.Errorf("kdisjoint count = %d, want 1", got)
		}
		if rec.Total(StageKDisjoint) < rec.Total(StageSearch) {
			t.Errorf("outer stage total %v < summed inner %v",
				rec.Total(StageKDisjoint), rec.Total(StageSearch))
		}
		bd := rec.Breakdown()
		if len(bd) != 2 {
			t.Fatalf("breakdown has %d stages, want 2: %v", len(bd), bd)
		}
		if bd["search"].Count != 3 || bd["search"].TotalMs <= 0 {
			t.Errorf("breakdown[search] = %+v", bd["search"])
		}
		sum := rec.Summary()
		if !strings.Contains(sum, "kdisjoint=") || !strings.Contains(sum, "search=") {
			t.Errorf("Summary = %q, want both stages", sum)
		}
		// RecordSpan never feeds the registry histograms — the owning
		// package does that — so the stage hist must stay empty.
		if c := reg.StageHistogram(StageSearch).Count(); c != 0 {
			t.Errorf("RecordSpan leaked %d observations into the registry", c)
		}
	})
}

// EndAs reattributes a span decided late (cache hit vs miss).
func TestSpanEndAs(t *testing.T) {
	withEnabled(t, func(reg *Registry) {
		rec := NewRecorder()
		ctx := WithRecorder(context.Background(), rec)
		sp := StartSpan(ctx, StageCacheHit)
		sp.EndAs(StageCacheMiss)
		if got := rec.Count(StageCacheHit); got != 0 {
			t.Errorf("cache_hit count = %d, want 0", got)
		}
		if got := rec.Count(StageCacheMiss); got != 1 {
			t.Errorf("cache_miss count = %d, want 1", got)
		}
		if c := reg.StageHistogram(StageCacheMiss).Count(); c != 1 {
			t.Errorf("registry cache_miss count = %d, want 1 (StartSpan feeds both)", c)
		}
	})
}

// A recorder shared by parallel workers (the experiment fan-outs) must not
// race and must not lose spans. Run under -race.
func TestRecorderConcurrent(t *testing.T) {
	withEnabled(t, func(*Registry) {
		rec := NewRecorder()
		ctx := WithRecorder(context.Background(), rec)
		const workers, per = 8, 500
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					sp := RecordSpan(ctx, StageSearch)
					sp.End()
				}
			}()
		}
		wg.Wait()
		if got := rec.Count(StageSearch); got != workers*per {
			t.Errorf("count = %d, want %d", got, workers*per)
		}
	})
}

func TestRecorderSurvivesWithoutCancel(t *testing.T) {
	withEnabled(t, func(*Registry) {
		rec := NewRecorder()
		ctx := WithRecorder(context.Background(), rec)
		detached := context.WithoutCancel(ctx)
		sp := RecordSpan(detached, StageGraphBuild)
		sp.End()
		if got := rec.Count(StageGraphBuild); got != 1 {
			t.Errorf("recorder not reachable through WithoutCancel: count = %d", got)
		}
	})
}

func TestNilRecorderBreakdown(t *testing.T) {
	var rec *Recorder
	if bd := rec.Breakdown(); bd != nil {
		t.Errorf("nil recorder breakdown = %v, want nil", bd)
	}
	if bd := NewRecorder().Breakdown(); bd != nil {
		t.Errorf("empty recorder breakdown = %v, want nil (omitted from JSON)", bd)
	}
}

func TestStageNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		if name == "" || strings.HasPrefix(name, "stage(") {
			t.Errorf("stage %d has no name", s)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
}
