package telemetry

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"requests":      "requests",
		"shed429":       "shed429",
		"cache.hits":    "cache_hits",
		"9lives":        "_lives", // leading digit is illegal
		"über-metric":   "_ber_metric",
		"":              "_",
		"stage:rebuild": "stage:rebuild",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promHistName("http_path_ms"); got != "http_path_seconds" {
		t.Errorf("promHistName(http_path_ms) = %q", got)
	}
	if got := promHistName("queue_depth"); got != "queue_depth_seconds" {
		t.Errorf("promHistName(queue_depth) = %q", got)
	}
}

// Exposition-format grammar for the lines WritePrometheus emits: either a
// # TYPE comment or "name[{le="..."}] value".
var promLineRE = regexp.MustCompile(
	`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|` +
		`[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [-+0-9.eE]+(e[-+][0-9]+)?|` +
		`[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="\+Inf"\}) [0-9]+)$`)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(42)
	r.Gauge("inflight").Set(3)
	r.RegisterGaugeFunc("cacheEntries", func() int64 { return 7 })
	h := r.Histogram("http_path_ms")
	for _, d := range []time.Duration{500 * time.Nanosecond, 3 * time.Microsecond,
		90 * time.Microsecond, 2 * time.Millisecond, 40 * time.Millisecond} {
		h.Observe(d)
	}
	r.StageHistogram(StageSearch).Observe(120 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "leosim_"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !promLineRE.MatchString(line) {
			t.Errorf("line violates exposition grammar: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE leosim_requests counter",
		"leosim_requests 42",
		"# TYPE leosim_inflight gauge",
		"leosim_inflight 3",
		"leosim_cacheEntries 7",
		"# TYPE leosim_http_path_seconds histogram",
		"# TYPE leosim_stage_search_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative (monotone non-decreasing in le
	// order as emitted) and the +Inf bucket must equal _count.
	var last int64 = -1
	var inf, count int64 = -1, -1
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "leosim_http_path_seconds_bucket{le=\"+Inf\"}"):
			inf = promSampleValue(t, line)
		case strings.HasPrefix(line, "leosim_http_path_seconds_bucket"):
			v := promSampleValue(t, line)
			if v < last {
				t.Errorf("bucket series not monotone: %d after %d (%s)", v, last, line)
			}
			last = v
		case strings.HasPrefix(line, "leosim_http_path_seconds_count"):
			count = promSampleValue(t, line)
		}
	}
	if inf != 5 || count != 5 {
		t.Errorf("+Inf bucket = %d, _count = %d, want both 5", inf, count)
	}
	if inf < last {
		t.Errorf("+Inf bucket %d below last finite bucket %d", inf, last)
	}
}

// A second registry rendering only stages must not duplicate any family of
// the first render — the serve path composes per-server metrics with the
// process-global stage histograms this way.
func TestWritePrometheusStagesCompose(t *testing.T) {
	serverReg := NewRegistry()
	serverReg.Counter("requests").Inc()
	globalReg := NewRegistry()
	globalReg.StageHistogram(StageGraphBuild).Observe(time.Millisecond)

	var buf bytes.Buffer
	if err := serverReg.WritePrometheus(&buf, "leosim_"); err != nil {
		t.Fatal(err)
	}
	if err := globalReg.WritePrometheusStages(&buf, "leosim_"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	seen := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seen[strings.Fields(line)[2]]++
		}
	}
	for family, n := range seen {
		if n > 1 {
			t.Errorf("family %s declared %d times", family, n)
		}
	}
	if seen["leosim_stage_graph_build_seconds"] != 1 {
		t.Errorf("stage family missing from composed output:\n%s", out)
	}
}

func promSampleValue(t *testing.T, line string) int64 {
	t.Helper()
	fields := strings.Fields(line)
	v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("bad sample line %q: %v", line, err)
	}
	return v
}
