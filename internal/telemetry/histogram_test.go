package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// Histogram quantiles must agree with an exact sorted-sample reference to
// within one bucket (the power-of-two grid guarantees a factor-of-two
// worst case; we assert the estimate lands inside the bucket containing
// the true quantile).
func TestHistogramQuantileVsSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dist := range []struct {
		name string
		draw func() time.Duration
	}{
		{"uniform", func() time.Duration {
			return time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		}},
		{"lognormal", func() time.Duration {
			return time.Duration(math.Exp(rng.NormFloat64()*1.5+12)) * time.Nanosecond
		}},
		{"bimodal", func() time.Duration {
			if rng.Intn(10) == 0 {
				return time.Duration(1+rng.Int63n(100)) * time.Millisecond
			}
			return time.Duration(1+rng.Int63n(200)) * time.Microsecond
		}},
	} {
		t.Run(dist.name, func(t *testing.T) {
			h := &Histogram{}
			samples := make([]float64, 0, 10000)
			for i := 0; i < 10000; i++ {
				d := dist.draw()
				h.Observe(d)
				samples = append(samples, float64(d))
			}
			sort.Float64s(samples)
			for _, q := range []float64{0.5, 0.9, 0.99} {
				exact := samples[int(q*float64(len(samples)-1))]
				est := h.Quantile(q)
				// Bucket bounds containing the exact quantile.
				lo, hi := bucketBoundsOf(exact)
				if est < lo || est > hi {
					t.Errorf("q=%.2f: estimate %.0fns outside bucket [%.0f, %.0f] of exact %.0fns",
						q, est, lo, hi, exact)
				}
			}
			if c := h.Count(); c != 10000 {
				t.Errorf("Count = %d, want 10000", c)
			}
		})
	}
}

// bucketBoundsOf returns the histogram bucket bounds (ns) holding value ns.
func bucketBoundsOf(ns float64) (lo, hi float64) {
	for i := 0; i < numBuckets; i++ {
		hi = float64(bucketUpperNs(i))
		if ns < hi || i == numBuckets-1 {
			return lo, hi
		}
		lo = hi
	}
	return lo, hi
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if s := h.Snapshot(); s.Count != 0 || s.P99Ms != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d, want 1", s.Count)
	}
	// One 3 ms observation: every quantile must land in its bucket [2,4)ms.
	for _, q := range []float64{s.P50Ms, s.P90Ms, s.P99Ms} {
		if q < 2 || q >= 4 {
			t.Errorf("quantile %v ms outside the 3 ms observation's bucket", q)
		}
	}
	if s.MaxMs != 3 {
		t.Errorf("MaxMs = %v, want 3", s.MaxMs)
	}
}

// Concurrent observers must neither race (run under -race) nor lose counts.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
			}
		}(int64(w))
	}
	wg.Wait()
	if c := h.Count(); c != workers*per {
		t.Errorf("Count = %d, want %d", c, workers*per)
	}
	if max := h.Snapshot().MaxMs; max > 10 {
		t.Errorf("MaxMs = %v, want ≤ 10", max)
	}
}
