package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"testing"
	"time"
)

func TestTraceIDString(t *testing.T) {
	if got := TraceID(0xab).String(); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("TraceID.String() = %q, want 16 hex digits", got)
	}
	a, b := NewTraceID(), NewTraceID()
	if a == b || a == 0 || b == 0 {
		t.Errorf("NewTraceID not unique: %v %v", a, b)
	}
}

func TestTraceIDContext(t *testing.T) {
	id := NewTraceID()
	ctx := WithTraceID(context.Background(), id)
	if got := TraceIDFrom(ctx); got != id {
		t.Errorf("TraceIDFrom = %v, want %v", got, id)
	}
	if got := TraceIDFrom(context.Background()); got != 0 {
		t.Errorf("TraceIDFrom(empty) = %v, want 0", got)
	}
}

// Captures are exclusive and require telemetry: StartTracing fails when
// disabled, succeeds once, and fails again until StopTracing releases it.
func TestStartStopTracingExclusive(t *testing.T) {
	Disable()
	if _, err := StartTracing(0); err == nil {
		t.Fatal("StartTracing with telemetry disabled: want error")
	}
	Enable()
	defer Disable()
	tr, err := StartTracing(0)
	if err != nil {
		t.Fatal(err)
	}
	if !TracingEnabled() {
		t.Error("TracingEnabled = false during a capture")
	}
	if _, err := StartTracing(0); err == nil {
		t.Error("second StartTracing during a capture: want error")
	}
	if got := StopTracing(); got != tr {
		t.Errorf("StopTracing returned %p, want the running capture %p", got, tr)
	}
	if StopTracing() != nil {
		t.Error("StopTracing with no capture: want nil")
	}
	if TracingEnabled() {
		t.Error("TracingEnabled = true after StopTracing")
	}
}

// A span started under a traced context during a capture lands in the
// tracer; spans without a trace ID land on the shared untraced track; no
// capture running means no tracer cost at all.
func TestSpanRoutesIntoTracer(t *testing.T) {
	Enable()
	defer Disable()
	tr, err := StartTracing(0)
	if err != nil {
		t.Fatal(err)
	}
	defer StopTracing()

	ctx := WithTraceID(context.Background(), NewTraceID())
	sp := StartSpan(ctx, StageSearch)
	sp.End()
	if got := tr.Len(); got != 1 {
		t.Fatalf("tracer captured %d spans after traced StartSpan, want 1", got)
	}
	// RecordSpan (no recorder attached) still routes into the capture.
	sp = RecordSpan(ctx, StageKDisjoint)
	sp.End()
	if got := tr.Len(); got != 2 {
		t.Fatalf("tracer captured %d spans after traced RecordSpan, want 2", got)
	}
	AddTraceSpan("http_path", TraceIDFrom(ctx), time.Now(), time.Millisecond)
	if got := tr.Len(); got != 3 {
		t.Fatalf("tracer captured %d spans after AddTraceSpan, want 3", got)
	}
}

func TestTracerCapacity(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Add("s", 0, time.Now(), time.Microsecond)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2 (bounded)", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
}

// WriteChrome must emit the {"traceEvents": [...]} envelope Perfetto loads:
// one thread_name metadata record per distinct trace, complete ("X") events
// with microsecond timestamps, and the drop count in otherData.
func TestWriteChrome(t *testing.T) {
	tr := NewTracer(8)
	base := time.Now()
	idA, idB := NewTraceID(), NewTraceID()
	tr.Add("graph_build", idA, base, 3*time.Millisecond)
	tr.Add("search", idA, base.Add(3*time.Millisecond), time.Millisecond)
	tr.Add("snapshot[0]", idB, base, 2*time.Millisecond)
	tr.Add("orphan", 0, base, time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  uint32                 `json:"tid"`
			Dur  float64                `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		OtherData struct {
			DroppedEvents int64 `json:"droppedEvents"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	tracks := map[uint32]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			tracks[ev.Tid] = true
			if ev.Name != "thread_name" {
				t.Errorf("metadata event named %q", ev.Name)
			}
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Errorf("complete event %q has dur %v", ev.Name, ev.Dur)
			}
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
	}
	// Three distinct tracks (trace A, trace B, untraced), four spans.
	if meta != 3 || complete != 4 {
		t.Errorf("got %d metadata + %d complete events, want 3 + 4", meta, complete)
	}
	if !tracks[idA.tid()] || !tracks[idB.tid()] || !tracks[0] {
		t.Errorf("missing a track: %v", tracks)
	}
	if doc.OtherData.DroppedEvents != 0 {
		t.Errorf("droppedEvents = %d, want 0", doc.OtherData.DroppedEvents)
	}
}
