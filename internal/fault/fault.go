// Package fault provides deterministic, seeded failure scenarios for the
// constellation and ground segment: random and per-plane-correlated
// satellite outages, ground-site (city/relay) failures, ISL laser failures,
// and GSL capacity degradation. A Plan is realized once against a
// constellation into an Outages set, whose Mask is plugged into the graph
// builder (graph.BuildOptions.Mask) so every snapshot built afterwards
// reflects the same persistent failures. The same seed always realizes the
// same outages, making resilience sweeps byte-reproducible.
package fault

import (
	"fmt"
	"math/rand"

	"leosim/internal/constellation"
	"leosim/internal/graph"
	"leosim/internal/telemetry"
)

// Scenario names one failure dimension a resilience sweep varies.
type Scenario string

const (
	// SatOutage fails a fraction of satellites, chosen uniformly.
	SatOutage Scenario = "sat"
	// PlaneOutage fails a fraction of whole orbital planes (correlated
	// failures: a launch-batch defect or a plane-wide software rollout).
	PlaneOutage Scenario = "plane"
	// SiteOutage fails a fraction of ground sites (cities and relays
	// alike: fiber cuts, power loss, weather shutdowns).
	SiteOutage Scenario = "site"
	// ISLOutage fails a fraction of individual ISL lasers (pointing or
	// terminal hardware faults) without killing their satellites.
	ISLOutage Scenario = "isl"
	// GSLDegrade scales every GSL's capacity down by the fraction (rain
	// fade or interference backing off the modulation fleet-wide).
	GSLDegrade Scenario = "gslcap"
)

// Scenarios lists every supported scenario in a fixed order.
func Scenarios() []Scenario {
	return []Scenario{SatOutage, PlaneOutage, SiteOutage, ISLOutage, GSLDegrade}
}

// Valid reports whether s is a known scenario.
func (s Scenario) Valid() bool {
	for _, k := range Scenarios() {
		if s == k {
			return true
		}
	}
	return false
}

// Plan describes a failure scenario before it is tied to a concrete
// constellation. Fractions are in [0,1]; the zero Plan is a no-op.
type Plan struct {
	// Seed drives every random choice; the same seed realizes the same
	// outages for the same constellation and segment sizes.
	Seed int64
	// SatFraction of satellites fail independently at random.
	SatFraction float64
	// PlaneFraction of whole orbital planes fail (correlated outages).
	PlaneFraction float64
	// SiteFraction of ground sites (cities + relays) fail.
	SiteFraction float64
	// ISLFraction of ISL lasers fail.
	ISLFraction float64
	// GSLCapFactor multiplies every surviving GSL's capacity; 0 and 1
	// both mean nominal capacity (so the zero Plan stays a no-op).
	GSLCapFactor float64
}

// ForScenario builds the plan that fails `fraction` of the scenario's
// resource. For GSLDegrade the fraction is the capacity *lost*, i.e. the
// factor applied is 1-fraction.
func ForScenario(sc Scenario, fraction float64, seed int64) (Plan, error) {
	if fraction < 0 || fraction > 1 {
		return Plan{}, fmt.Errorf("fault: fraction %v outside [0,1]", fraction)
	}
	p := Plan{Seed: seed}
	switch sc {
	case SatOutage:
		p.SatFraction = fraction
	case PlaneOutage:
		p.PlaneFraction = fraction
	case SiteOutage:
		p.SiteFraction = fraction
	case ISLOutage:
		p.ISLFraction = fraction
	case GSLDegrade:
		p.GSLCapFactor = 1 - fraction
	default:
		return Plan{}, fmt.Errorf("fault: unknown scenario %q (want one of %v)", sc, Scenarios())
	}
	return p, nil
}

// Validate checks the plan's fractions.
func (p Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"SatFraction", p.SatFraction},
		{"PlaneFraction", p.PlaneFraction},
		{"SiteFraction", p.SiteFraction},
		{"ISLFraction", p.ISLFraction},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0,1]", f.name, f.v)
		}
	}
	if p.GSLCapFactor < 0 || p.GSLCapFactor > 1 {
		return fmt.Errorf("fault: GSLCapFactor = %v outside [0,1]", p.GSLCapFactor)
	}
	return nil
}

// IsZero reports whether the plan injects no fault at all.
func (p Plan) IsZero() bool {
	return p.SatFraction == 0 && p.PlaneFraction == 0 && p.SiteFraction == 0 &&
		p.ISLFraction == 0 && (p.GSLCapFactor == 0 || p.GSLCapFactor == 1)
}

// Outages is a Plan realized against one constellation and ground segment:
// the concrete set of failed satellites, sites and lasers. Outages persist
// across snapshots — an outage does not heal as satellites move.
type Outages struct {
	// FailedSats holds failed satellite indices (== their node indices,
	// since satellites occupy nodes [0, S) in every snapshot).
	FailedSats map[int32]bool
	// FailedSites holds failed ground-segment terminal indices (cities
	// then relays, matching ground.Segment.Terminals order).
	FailedSites map[int32]bool
	// failedISL keys canonical (min,max) satellite-index pairs of failed
	// lasers.
	failedISL map[int64]bool
	// GSLCapFactor scales surviving GSL capacities (0 and 1 = nominal).
	GSLCapFactor float64
}

func islKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(b)
}

// pickFrac deterministically samples round(frac*n) distinct ints in [0,n).
func pickFrac(rng *rand.Rand, n int, frac float64) []int {
	k := int(frac*float64(n) + 0.5)
	if k > n {
		k = n
	}
	return rng.Perm(n)[:k]
}

// Realize ties the plan to a constellation and a ground segment of
// numTerminals sites (cities + relays). The draw order is fixed —
// satellites, planes, sites, ISLs — so a given (plan, topology) always
// yields the same outages.
func (p Plan) Realize(c *constellation.Constellation, numTerminals int) (*Outages, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sp := telemetry.StartStageSpan(telemetry.StageFaultRealize)
	defer sp.End()
	if c == nil {
		return nil, fmt.Errorf("fault: constellation is required")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	o := &Outages{
		FailedSats:   map[int32]bool{},
		FailedSites:  map[int32]bool{},
		failedISL:    map[int64]bool{},
		GSLCapFactor: p.GSLCapFactor,
	}

	// Independent satellite outages.
	for _, i := range pickFrac(rng, c.Size(), p.SatFraction) {
		o.FailedSats[int32(i)] = true
	}

	// Correlated per-plane outages: enumerate planes in (shell, plane)
	// order, fail a fraction of them wholesale.
	var planeOf [][2]int // (shell, plane) per plane index
	for si, sh := range c.Shells {
		for pl := 0; pl < sh.Planes; pl++ {
			planeOf = append(planeOf, [2]int{si, pl})
		}
	}
	failedPlane := map[[2]int]bool{}
	for _, i := range pickFrac(rng, len(planeOf), p.PlaneFraction) {
		failedPlane[planeOf[i]] = true
	}
	if len(failedPlane) > 0 {
		for _, sat := range c.Sats {
			if failedPlane[[2]int{sat.ShellIndex, sat.Plane}] {
				o.FailedSats[int32(sat.Index)] = true
			}
		}
	}

	// Ground-site outages.
	for _, i := range pickFrac(rng, numTerminals, p.SiteFraction) {
		o.FailedSites[int32(i)] = true
	}

	// ISL laser outages.
	for _, i := range pickFrac(rng, len(c.ISLs), p.ISLFraction) {
		l := c.ISLs[i]
		o.failedISL[islKey(int32(l.A), int32(l.B))] = true
	}
	return o, nil
}

// IsZero reports whether the outages mask nothing.
func (o *Outages) IsZero() bool {
	return o == nil || (len(o.FailedSats) == 0 && len(o.FailedSites) == 0 &&
		len(o.failedISL) == 0 && (o.GSLCapFactor == 0 || o.GSLCapFactor == 1))
}

// NumFailedSats returns the failed-satellite count (random + plane).
func (o *Outages) NumFailedSats() int { return len(o.FailedSats) }

// NumFailedSites returns the failed ground-site count.
func (o *Outages) NumFailedSites() int { return len(o.FailedSites) }

// NumFailedISLs returns the failed laser count.
func (o *Outages) NumFailedISLs() int { return len(o.failedISL) }

// ISLFailed reports whether the laser between satellites a and b failed.
func (o *Outages) ISLFailed(a, b int32) bool {
	return o != nil && o.failedISL[islKey(a, b)]
}

// Mask applies the outages to a freshly built snapshot: all links of failed
// satellites and ground sites are removed, failed ISL lasers are removed,
// and surviving GSL capacities are scaled by GSLCapFactor. Satellites keep
// their nodes (they still exist, just dark), so node indexing — and with it
// the per-snapshot layout every experiment assumes — is unchanged. Mask on
// a nil or zero Outages is a no-op, which keeps the 0%-failure sweep point
// byte-identical to the healthy baseline.
func (o *Outages) Mask(n *graph.Network) {
	if o.IsZero() {
		return
	}
	factor := o.GSLCapFactor
	if factor == 0 {
		factor = 1
	}
	n.RewriteLinks(func(l graph.Link) (graph.Link, bool) {
		switch l.Kind {
		case graph.LinkISL:
			if o.FailedSats[l.A] || o.FailedSats[l.B] || o.failedISL[islKey(l.A, l.B)] {
				return l, false
			}
		case graph.LinkGSL:
			sat, term := l.A, l.B
			if n.Kind[sat] != graph.NodeSatellite {
				sat, term = term, sat
			}
			if o.FailedSats[sat] {
				return l, false
			}
			// Terminal nodes follow the satellites; aircraft follow the
			// segment terminals and are not subject to site outages.
			if ti := term - int32(n.NumSat); ti >= 0 && o.FailedSites[ti] {
				return l, false
			}
			l.CapGbps *= factor
		}
		return l, true
	})
}
