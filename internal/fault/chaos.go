package fault

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"leosim/internal/telemetry"
)

// InjectedError marks a failure the chaos injector manufactured, so test
// assertions (and operators reading logs) can tell injected faults from
// real ones.
type InjectedError struct {
	// Key names the operation that was failed (e.g. a snapshot-cache key).
	Key string
	// N is the injector's draw counter at the time of the failure, which
	// makes every injected error unique and traceable to its draw.
	N int64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected build failure #%d for %s", e.N, e.Key)
}

// Chaos is a seeded process-level fault injector for the serve path: it
// fails, delays, or panics snapshot builds with configured probabilities.
// Draws come from one seeded stream, so a given (seed, call sequence)
// always injects the same faults — chaos tests are reproducible, not
// merely random. The zero value injects nothing.
//
// Unlike Plan/Outages (which model the *constellation* failing), Chaos
// models the *software* failing: transient build errors, slow dependencies
// and crashed workers that the self-healing serve path must absorb.
type Chaos struct {
	// FailRate is the probability in [0,1] that a hooked operation returns
	// an InjectedError.
	FailRate float64
	// PanicRate is the probability in [0,1] that a hooked operation panics
	// (exercising the recover paths downstream).
	PanicRate float64
	// Delay is added before every hooked operation completes (injected
	// build latency; combine with a build timeout to exercise it).
	Delay time.Duration

	// Sleep overrides time.Sleep for tests; nil uses time.Sleep.
	Sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand

	draws, fails, panics atomic.Int64
}

// NewChaos creates an injector whose draws are driven by seed.
func NewChaos(seed int64, failRate, panicRate float64, delay time.Duration) *Chaos {
	return &Chaos{
		FailRate:  failRate,
		PanicRate: panicRate,
		Delay:     delay,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// BuildHook is the snapshot-build injection point: sleep the configured
// delay, then panic or fail according to the seeded draw. Matches
// snapcache's Options.BuildHook signature via a closure over Key.String().
// Every injection lands in the flight recorder under CatChaos, carrying the
// trace ID from ctx so injected faults join to the requests that hit them.
func (c *Chaos) BuildHook(ctx context.Context, key string) error {
	if c == nil {
		return nil
	}
	if c.Delay > 0 {
		sleep := c.Sleep
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(c.Delay)
	}
	if c.FailRate <= 0 && c.PanicRate <= 0 {
		return nil
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	draw := c.rng.Float64()
	c.mu.Unlock()
	n := c.draws.Add(1)
	switch {
	case draw < c.PanicRate:
		c.panics.Add(1)
		telemetry.EmitEvent(ctx, telemetry.CatChaos, telemetry.SevWarn,
			"chaos injected build panic",
			telemetry.Str("key", key), telemetry.Int64("draw", n))
		panic(fmt.Sprintf("fault: injected build panic #%d for %s", n, key))
	case draw < c.PanicRate+c.FailRate:
		c.fails.Add(1)
		telemetry.EmitEvent(ctx, telemetry.CatChaos, telemetry.SevWarn,
			"chaos injected build failure",
			telemetry.Str("key", key), telemetry.Int64("draw", n))
		return &InjectedError{Key: key, N: n}
	}
	return nil
}

// Draws returns how many injection decisions have been made.
func (c *Chaos) Draws() int64 { return c.draws.Load() }

// Fails returns how many errors were injected.
func (c *Chaos) Fails() int64 { return c.fails.Load() }

// Panics returns how many panics were injected.
func (c *Chaos) Panics() int64 { return c.panics.Load() }
