package fault

import (
	"reflect"
	"testing"
	"time"

	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/ground"
)

func testShell() constellation.Shell {
	return constellation.Shell{
		Name: "test", Planes: 6, SatsPerPlane: 8,
		AltitudeKm: 550, InclinationDeg: 53,
		RAANSpreadDeg: 360, MinElevationDeg: 25,
	}
}

func testConst(t *testing.T) *constellation.Constellation {
	t.Helper()
	c, err := constellation.New([]constellation.Shell{testShell()}, constellation.WithISLs())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testNetwork(t *testing.T, c *constellation.Constellation, mask func(*graph.Network)) (*graph.Network, int) {
	t.Helper()
	cities, err := ground.Cities(12)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ground.NewSegment(cities, 10, 1500)
	if err != nil {
		t.Fatal(err)
	}
	opts := graph.DefaultOptions()
	opts.ISL = true
	opts.Mask = mask
	b, err := graph.NewBuilder(c, seg, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b.At(geo.Epoch.Add(3 * time.Hour)), len(seg.Terminals)
}

// Same seed, same topology → byte-for-byte identical outages.
func TestRealizeDeterministic(t *testing.T) {
	c := testConst(t)
	p := Plan{Seed: 42, SatFraction: 0.2, PlaneFraction: 0.2, SiteFraction: 0.25,
		ISLFraction: 0.1, GSLCapFactor: 0.5}
	a, err := p.Realize(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Realize(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan realized differently:\n%+v\n%+v", a, b)
	}
	if a.NumFailedSats() == 0 || a.NumFailedSites() == 0 || a.NumFailedISLs() == 0 {
		t.Fatalf("plan with positive fractions failed nothing: %+v", a)
	}
	// A different seed must (for these sizes) pick a different set.
	p2 := p
	p2.Seed = 43
	d, err := p2.Realize(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.FailedSats, d.FailedSats) && reflect.DeepEqual(a.FailedSites, d.FailedSites) {
		t.Errorf("different seeds realized identical outages")
	}
}

// Fraction 0 masks nothing: the network is identical to an unmasked build.
func TestZeroPlanIsNoOp(t *testing.T) {
	if !(Plan{}).IsZero() {
		t.Fatal("zero Plan not IsZero")
	}
	c := testConst(t)
	o, err := Plan{Seed: 7}.Realize(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !o.IsZero() {
		t.Fatalf("zero plan realized outages: %+v", o)
	}
	base, _ := testNetwork(t, c, nil)
	masked, _ := testNetwork(t, c, o.Mask)
	if !reflect.DeepEqual(base.Links, masked.Links) {
		t.Errorf("zero-plan mask changed the link set: %d vs %d links",
			len(base.Links), len(masked.Links))
	}
}

// Plane outages are correlated: whole planes fail, nothing else.
func TestPlaneOutageCorrelated(t *testing.T) {
	c := testConst(t)
	sh := testShell()
	// 2 of 6 planes.
	o, err := Plan{Seed: 1, PlaneFraction: 2.0 / 6.0}.Realize(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := o.NumFailedSats(), 2*sh.SatsPerPlane; got != want {
		t.Fatalf("failed sats = %d, want %d (2 whole planes)", got, want)
	}
	// Every failed satellite's entire plane must be failed.
	for idx := range o.FailedSats {
		sat := c.Sats[idx]
		for slot := 0; slot < sh.SatsPerPlane; slot++ {
			j := c.SatIndex(sat.ShellIndex, sat.Plane, slot)
			if !o.FailedSats[int32(j)] {
				t.Fatalf("plane %d only partially failed (slot %d alive)", sat.Plane, slot)
			}
		}
	}
}

func TestFractionCounts(t *testing.T) {
	c := testConst(t) // 48 satellites
	o, err := Plan{Seed: 3, SatFraction: 0.25}.Realize(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.NumFailedSats(); got != 12 {
		t.Errorf("25%% of 48 sats = %d failed, want 12", got)
	}
	o, err = Plan{Seed: 3, SiteFraction: 0.5}.Realize(c, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.NumFailedSites(); got != 5 { // round(4.5) = 5
		t.Errorf("50%% of 9 sites = %d failed, want 5", got)
	}
}

// Mask removes every link of failed satellites and sites, drops failed
// lasers, and scales surviving GSL capacities.
func TestMaskRemovesFailures(t *testing.T) {
	c := testConst(t)
	p := Plan{Seed: 11, SatFraction: 0.2, SiteFraction: 0.2, ISLFraction: 0.2,
		GSLCapFactor: 0.5}
	var numTerms int
	_, numTerms = testNetwork(t, c, nil)
	o, err := p.Realize(c, numTerms)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := testNetwork(t, c, nil)
	masked, _ := testNetwork(t, c, o.Mask)
	if len(masked.Links) >= len(base.Links) {
		t.Fatalf("mask removed nothing: %d -> %d links", len(base.Links), len(masked.Links))
	}
	for _, l := range masked.Links {
		switch l.Kind {
		case graph.LinkISL:
			if o.FailedSats[l.A] || o.FailedSats[l.B] {
				t.Fatalf("ISL %d-%d survives a failed satellite", l.A, l.B)
			}
			if o.ISLFailed(l.A, l.B) {
				t.Fatalf("failed laser %d-%d survives", l.A, l.B)
			}
		case graph.LinkGSL:
			sat, term := l.A, l.B
			if sat >= int32(masked.NumSat) {
				sat, term = term, sat
			}
			if o.FailedSats[sat] {
				t.Fatalf("GSL to failed satellite %d survives", sat)
			}
			if ti := term - int32(masked.NumSat); ti >= 0 && o.FailedSites[ti] {
				t.Fatalf("GSL to failed site %d survives", ti)
			}
			if want := graph.DefaultOptions().GSLCapGbps * 0.5; l.CapGbps != want {
				t.Fatalf("GSL capacity %v, want %v", l.CapGbps, want)
			}
		}
	}
	// Degree of failed satellites must be zero.
	for idx := range o.FailedSats {
		if d := masked.Degree(idx); d != 0 {
			t.Fatalf("failed satellite %d still has degree %d", idx, d)
		}
	}
}

func TestForScenario(t *testing.T) {
	for _, sc := range Scenarios() {
		if !sc.Valid() {
			t.Errorf("scenario %q not Valid", sc)
		}
		p, err := ForScenario(sc, 0.1, 5)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if p.IsZero() {
			t.Errorf("%s at 10%% is a zero plan", sc)
		}
		z, err := ForScenario(sc, 0, 5)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if !z.IsZero() {
			t.Errorf("%s at 0%% is not a zero plan: %+v", sc, z)
		}
	}
	if _, err := ForScenario("meteor", 0.1, 5); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ForScenario(SatOutage, 1.5, 5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if err := (Plan{SatFraction: -0.1}).Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
	if err := (Plan{GSLCapFactor: 2}).Validate(); err == nil {
		t.Error("cap factor > 1 accepted")
	}
	if _, err := (Plan{SatFraction: 2}).Realize(testConst(t), 0); err == nil {
		t.Error("Realize accepted an invalid plan")
	}
	if _, err := (Plan{}).Realize(nil, 0); err == nil {
		t.Error("Realize accepted a nil constellation")
	}
}
