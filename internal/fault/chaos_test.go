package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Same seed, same sequence of injected outcomes — the property every chaos
// test leans on.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	outcomes := func() []bool {
		c := NewChaos(42, 0.3, 0, 0)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, c.BuildHook(context.Background(), "k") != nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverges between same-seed runs", i)
		}
	}
}

func TestChaosFailRateRoughlyHonored(t *testing.T) {
	c := NewChaos(7, 0.3, 0, 0)
	fails := 0
	const N = 2000
	for i := 0; i < N; i++ {
		if c.BuildHook(context.Background(), "k") != nil {
			fails++
		}
	}
	got := float64(fails) / N
	if got < 0.25 || got > 0.35 {
		t.Fatalf("observed fail rate %.3f, want ≈0.30", got)
	}
	if c.Fails() != int64(fails) || c.Draws() != N {
		t.Fatalf("counters fails=%d draws=%d, want %d/%d", c.Fails(), c.Draws(), fails, N)
	}
}

func TestChaosInjectedErrorIsTyped(t *testing.T) {
	c := NewChaos(1, 1.0, 0, 0)
	err := c.BuildHook(context.Background(), "snap@t0")
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InjectedError", err)
	}
	if ie.Key != "snap@t0" || ie.N != 1 {
		t.Fatalf("InjectedError = %+v", ie)
	}
}

func TestChaosPanics(t *testing.T) {
	c := NewChaos(1, 0, 1.0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("PanicRate=1 hook did not panic")
		}
		if c.Panics() != 1 {
			t.Fatalf("Panics() = %d, want 1", c.Panics())
		}
	}()
	c.BuildHook(context.Background(), "k")
}

func TestChaosDelayUsesInjectedSleep(t *testing.T) {
	c := NewChaos(1, 0, 0, 50*time.Millisecond)
	var slept time.Duration
	c.Sleep = func(d time.Duration) { slept += d }
	if err := c.BuildHook(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if slept != 50*time.Millisecond {
		t.Fatalf("slept %v, want 50ms", slept)
	}
}

// A nil injector must be safe to call — the serve path uses one hook
// variable whether or not chaos is configured.
func TestNilChaosIsNoop(t *testing.T) {
	var c *Chaos
	if err := c.BuildHook(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
}
