// Package version exposes the build's identity: a semantic version that can
// be stamped at link time and the VCS revision Go embeds into binaries built
// from a git checkout. `leosim -version` prints it and the serving
// subsystem reports it from /healthz, so a fleet of query servers can be
// audited for what they are actually running.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the semantic release version. Stamp it at build time with
//
//	go build -ldflags "-X leosim/internal/version.Version=v1.2.3" ./cmd/leosim
//
// It stays "dev" for plain `go build` / `go run` invocations.
var Version = "dev"

// Info describes one build.
type Info struct {
	// Version is the stamped release version ("dev" if unstamped).
	Version string `json:"version"`
	// Revision is the VCS commit hash the binary was built from, empty
	// outside version control (e.g. test binaries from a module cache).
	Revision string `json:"revision,omitempty"`
	// Time is the commit timestamp (RFC3339), when known.
	Time string `json:"time,omitempty"`
	// Modified marks a build from a dirty working tree.
	Modified bool `json:"modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
}

// Get assembles the build info, merging the link-time Version with the
// VCS metadata debug.ReadBuildInfo embeds.
func Get() Info {
	info := Info{Version: Version, GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			info.Revision = kv.Value
		case "vcs.time":
			info.Time = kv.Value
		case "vcs.modified":
			info.Modified = kv.Value == "true"
		}
	}
	return info
}

// String renders a one-line identity, e.g.
// "leosim dev (rev 44f868d*, go1.24.0)".
func (i Info) String() string {
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "unknown"
	}
	dirty := ""
	if i.Modified {
		dirty = "*"
	}
	return fmt.Sprintf("leosim %s (rev %s%s, %s)", i.Version, rev, dirty, i.GoVersion)
}
