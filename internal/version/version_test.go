package version

import (
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	i := Get()
	if i.Version == "" {
		t.Error("Version must never be empty")
	}
	if i.GoVersion == "" || !strings.HasPrefix(i.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a go toolchain version", i.GoVersion)
	}
}

func TestString(t *testing.T) {
	i := Info{Version: "v1.2.3", Revision: "0123456789abcdef", Modified: true, GoVersion: "go1.24.0"}
	got := i.String()
	want := "leosim v1.2.3 (rev 0123456789ab*, go1.24.0)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	bare := Info{Version: "dev", GoVersion: "go1.24.0"}
	if got := bare.String(); got != "leosim dev (rev unknown, go1.24.0)" {
		t.Errorf("String() = %q", got)
	}
}
