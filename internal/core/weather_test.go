package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/itur"
	"leosim/internal/stats"
)

func TestPathCurveZigZagVsISL(t *testing.T) {
	// Hand-built path: city → sat → relay (tropics) → sat → city.
	n := &graph.Network{}
	src := n.AddNode(graph.NodeCity, geo.LL(28.7, 77.1).ToECEF(), "delhi")
	s1 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 20, Lon: 85, Alt: 550}.ToECEF(), "s1")
	wet := n.AddNode(graph.NodeRelay, geo.LL(5, 95).ToECEF(), "wet-relay")
	s2 := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: -10, Lon: 110, Alt: 550}.ToECEF(), "s2")
	dst := n.AddNode(graph.NodeCity, geo.LL(-33.9, 151.2).ToECEF(), "sydney")
	n.NumSat = 0 // node layout irrelevant here
	links := []int32{
		n.AddLink(src, s1, graph.LinkGSL, 20),
		n.AddLink(s1, wet, graph.LinkGSL, 20),
		n.AddLink(wet, s2, graph.LinkGSL, 20),
		n.AddLink(s2, dst, graph.LinkGSL, 20),
	}
	zig := graph.Path{Nodes: []int32{src, s1, wet, s2, dst}, Links: links}
	zigCurve, err := pathCurve(n, zig, KuBand)
	if err != nil {
		t.Fatal(err)
	}

	// ISL-style path: city → sat → sat → city (middle hop is a laser).
	isl := n.AddLink(s1, s2, graph.LinkISL, 100)
	pure := graph.Path{Nodes: []int32{src, s1, s2, dst}, Links: []int32{links[0], isl, links[3]}}
	pureCurve, err := pathCurve(n, pure, KuBand)
	if err != nil {
		t.Fatal(err)
	}

	// The zig-zag transits the wet tropics; its worst-link attenuation
	// must exceed the endpoints-only ISL path at the operating point.
	if zigCurve.At(0.5) <= pureCurve.At(0.5) {
		t.Errorf("zig-zag %v dB should exceed ISL path %v dB at p=0.5%%",
			zigCurve.At(0.5), pureCurve.At(0.5))
	}
}

func TestPathCurveNoRadioHops(t *testing.T) {
	n := &graph.Network{}
	a := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 0, Alt: 550}.ToECEF(), "a")
	b := n.AddNode(graph.NodeSatellite, geo.LatLon{Lat: 0, Lon: 5, Alt: 550}.ToECEF(), "b")
	li := n.AddLink(a, b, graph.LinkISL, 100)
	c, err := pathCurve(n, graph.Path{Nodes: []int32{a, b}, Links: []int32{li}}, KuBand)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range c.A {
		if x != 0 {
			t.Fatalf("ISL-only path has attenuation %v", x)
		}
	}
}

func TestRunWeatherTiny(t *testing.T) {
	s := getTinySim(t)
	r, err := RunWeather(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.PairsUsed == 0 {
		t.Fatal("no pairs used")
	}
	if len(r.P995BP) != r.PairsUsed || len(r.P995ISL) != r.PairsUsed {
		t.Fatalf("lengths inconsistent")
	}
	for i := range r.P995BP {
		if r.P995BP[i] < 0 || r.P995ISL[i] < 0 {
			t.Fatalf("negative attenuation")
		}
		if r.P995BP[i] > 60 || r.P995ISL[i] > 60 {
			t.Fatalf("absurd attenuation: bp=%v isl=%v", r.P995BP[i], r.P995ISL[i])
		}
	}
	// §6 direction: BP attenuation distribution dominates ISL's (median).
	if adv := r.MedianAdvantageDB(); adv < 0 {
		t.Errorf("median ISL advantage = %v dB, want ≥ 0", adv)
	}
	var buf bytes.Buffer
	WriteWeatherReport(&buf, r, 8)
	if !strings.Contains(buf.String(), "fig6") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestRunPairWeatherDelhiSydney(t *testing.T) {
	// Private sim: EnsureCity mutates the city set. The tiny 60-city set
	// has no Australian city, so no relay grid reaches Australia and BP
	// cannot route there; use enough cities and relay density to bridge
	// the Indonesia→Australia gap the way the full-scale run does.
	scale := TinyScale()
	scale.NumCities = 150
	scale.RelaySpacingDeg = 2
	scale.RelayMaxKm = 2000
	scale.AircraftDensity = 1
	scale.NumSnapshots = 3
	s, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := RunPairWeather(context.Background(), s, "Delhi", "Sydney")
	if err != nil {
		t.Fatal(err)
	}
	bpDB, islDB, bpPow, islPow := pw.At1Percent()
	if bpDB <= 0 || islDB <= 0 {
		t.Fatalf("attenuations must be positive: %v %v", bpDB, islDB)
	}
	// Fig 8: the BP path transits the wet tropics, the ISL path does not.
	if bpDB <= islDB {
		t.Errorf("BP %v dB should exceed ISL %v dB at 1%% of time", bpDB, islDB)
	}
	if bpPow >= islPow {
		t.Errorf("BP received power %v should be below ISL %v", bpPow, islPow)
	}
	var buf bytes.Buffer
	WritePairWeatherReport(&buf, pw)
	if !strings.Contains(buf.String(), "fig8") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestKaBandWorseThanKu(t *testing.T) {
	// §6: Ka band is affected more by weather. Run the same tiny sim at
	// both bands and compare median 99.5th-percentile attenuations.
	s := getTinySim(t)
	ku, err := RunWeatherBand(context.Background(), s, KuBand)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := RunWeatherBand(context.Background(), s, KaBand)
	if err != nil {
		t.Fatal(err)
	}
	kuMed := stats.Percentile(ku.P995BP, 50)
	kaMed := stats.Percentile(ka.P995BP, 50)
	if kaMed <= kuMed {
		t.Errorf("Ka median %v dB should exceed Ku %v dB", kaMed, kuMed)
	}
	// And the ISL advantage persists at Ka.
	if ka.MedianAdvantageDB() <= 0 {
		t.Errorf("ISL advantage vanished at Ka: %v", ka.MedianAdvantageDB())
	}
}

func TestCurveSanityOnRealLink(t *testing.T) {
	// A Delhi-area uplink at Ku band: attenuation at 0.5% exceedance in a
	// plausible band (rain-dominated, not absurd).
	lp := itur.LinkParams{
		LatDeg: 28.7, LonDeg: 77.1, ElevationDeg: 40,
		FreqGHz: UplinkGHz, Pol: itur.PolCircular,
	}
	c, err := itur.NewCurve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if a := c.At(0.5); a < 0.2 || a > 25 {
		t.Errorf("Delhi Ku A(0.5%%) = %v dB", a)
	}
}
