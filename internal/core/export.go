package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"leosim/internal/telemetry"
)

// JSONEnvelope wraps an experiment result with enough metadata to interpret
// it standalone (which constellation, which scale, which experiment).
type JSONEnvelope struct {
	Tool          string `json:"tool"`
	Paper         string `json:"paper"`
	Experiment    string `json:"experiment"`
	Constellation string `json:"constellation"`
	Scale         string `json:"scale"`
	// Partial marks an envelope flushed after a cancelled (e.g. Ctrl-C)
	// run: Data covers the completed prefix of the experiment only.
	Partial bool `json:"partial,omitempty"`
	// StageTimes breaks the run's wall time down by pipeline stage (graph
	// build, search, allocation, …) when the run carried a telemetry
	// recorder; absent otherwise.
	StageTimes map[string]telemetry.StageTime `json:"stage_times,omitempty"`
	Data       interface{}                    `json:"data"`
}

// WriteJSON emits an experiment result as an indented JSON envelope.
func WriteJSON(w io.Writer, experiment string, s *Sim, data interface{}) error {
	return WriteJSONStages(w, experiment, s, data, false, nil)
}

// WriteJSONPartial is WriteJSON with an explicit partial flag, used when a
// cancelled run flushes the snapshots it completed.
func WriteJSONPartial(w io.Writer, experiment string, s *Sim, data interface{}, partial bool) error {
	return WriteJSONStages(w, experiment, s, data, partial, nil)
}

// WriteJSONStages is WriteJSONPartial with the run's telemetry recorder: a
// non-nil rec with observed spans adds the per-stage time breakdown to the
// envelope.
func WriteJSONStages(w io.Writer, experiment string, s *Sim, data interface{}, partial bool, rec *telemetry.Recorder) error {
	env := JSONEnvelope{
		Tool:       "leosim",
		Paper:      "Hauri et al., 'Internet from Space' without Inter-satellite Links?, HotNets 2020",
		Experiment: experiment,
		Partial:    partial,
		StageTimes: rec.Breakdown(),
		Data:       data,
	}
	if s != nil {
		env.Constellation = s.Choice.String()
		env.Scale = s.Scale.Name
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("core: encoding %s result: %w", experiment, err)
	}
	return nil
}

// MarshalJSON renders the per-mode maps with readable keys.
func (r *LatencyResult) MarshalJSON() ([]byte, error) {
	type modeSeries struct {
		BP     []float64 `json:"bp"`
		Hybrid []float64 `json:"hybrid"`
	}
	med, p95 := r.Headline()
	return json.Marshal(struct {
		MinRTTMs             modeSeries `json:"minRttMs"`
		RangeRTTMs           modeSeries `json:"rangeRttMs"`
		ReachablePairs       int        `json:"reachablePairs"`
		Excluded             int        `json:"excludedPairs"`
		SnapshotsDone        int        `json:"snapshotsDone"`
		Partial              bool       `json:"partial,omitempty"`
		MaxMinRTTGapMs       float64    `json:"maxMinRttGapMs"`
		MedianVariationIncPc float64    `json:"medianVariationIncreasePct"`
		P95VariationIncPc    float64    `json:"p95VariationIncreasePct"`
	}{
		MinRTTMs:             modeSeries{BP: r.MinRTT[BP], Hybrid: r.MinRTT[Hybrid]},
		RangeRTTMs:           modeSeries{BP: r.RangeRTT[BP], Hybrid: r.RangeRTT[Hybrid]},
		ReachablePairs:       r.ReachablePairs,
		Excluded:             r.Excluded,
		SnapshotsDone:        r.SnapshotsDone,
		Partial:              r.Partial,
		MaxMinRTTGapMs:       r.MaxMinRTTGapMs(),
		MedianVariationIncPc: med,
		P95VariationIncPc:    p95,
	})
}

// MarshalJSON names the mode and adds derived fields.
func (r *ThroughputResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Mode          string  `json:"mode"`
		K             int     `json:"k"`
		AggregateGbps float64 `json:"aggregateGbps"`
		PathsFound    int     `json:"pathsFound"`
		PathsMissing  int     `json:"pathsMissing"`
	}{r.Mode.String(), r.K, r.AggregateGbps, r.PathsFound, r.PathsMissing})
}

// MarshalJSON names constellation and mode.
func (r Fig4Row) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Constellation string  `json:"constellation"`
		Mode          string  `json:"mode"`
		K             int     `json:"k"`
		AggregateGbps float64 `json:"aggregateGbps"`
	}{r.Constellation.String(), r.Mode.String(), r.K, r.AggregateGbps})
}

// MarshalJSON adds the derived headline numbers to the weather result.
func (r *WeatherResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		P995BPdB          []float64 `json:"p995BpDb"`
		P995ISLdB         []float64 `json:"p995IslDb"`
		PairsUsed         int       `json:"pairsUsed"`
		MedianAdvantageDB float64   `json:"medianIslAdvantageDb"`
	}{r.P995BP, r.P995ISL, r.PairsUsed, r.MedianAdvantageDB()})
}

// MarshalJSON names the modes in the churn map.
func (r *PathChurnResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		BP        []float64 `json:"bpChangeFrac"`
		Hybrid    []float64 `json:"hybridChangeFrac"`
		BPMean    float64   `json:"bpMeanChangeFrac"`
		HyMean    float64   `json:"hybridMeanChangeFrac"`
		PairsUsed int       `json:"pairsUsed"`
	}{
		BP: r.ChangeFrac[BP], Hybrid: r.ChangeFrac[Hybrid],
		BPMean: r.MeanChangeFrac(BP), HyMean: r.MeanChangeFrac(Hybrid),
		PairsUsed: r.PairsUsed,
	})
}

// MarshalJSON names the mode and summarizes the load distribution.
func (r *UtilizationResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Mode          string    `json:"mode"`
		PerSatGbps    []float64 `json:"perSatGbps"`
		IdleFrac      float64   `json:"idleFrac"`
		Gini          float64   `json:"gini"`
		AggregateGbps float64   `json:"aggregateGbps"`
	}{r.Mode.String(), r.PerSatGbps, r.IdleFrac, r.Gini, r.AggregateGbps})
}

// MarshalJSON names the mode of a beam-sweep point.
func (p BeamPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		MaxGSLs       int     `json:"maxGslsPerSat"`
		Mode          string  `json:"mode"`
		AggregateGbps float64 `json:"aggregateGbps"`
	}{p.MaxGSLs, p.Mode.String(), p.AggregateGbps})
}

// MarshalJSON names the mode of a TE comparison.
func (r *TEResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Mode            string  `json:"mode"`
		K               int     `json:"k"`
		ShortestGbps    float64 `json:"shortestGbps"`
		TEGbps          float64 `json:"teGbps"`
		ShortestDelayMs float64 `json:"shortestDelayMs"`
		TEDelayMs       float64 `json:"teDelayMs"`
		TEMaxUtil       float64 `json:"teMaxUtil"`
		GainFrac        float64 `json:"gainFrac"`
	}{r.Mode.String(), r.K, r.ShortestGbps, r.TEGbps,
		r.ShortestDelayMs, r.TEDelayMs, r.TEMaxUtil, r.ThroughputGainFrac()})
}

// MarshalJSON names motif and mode of a topology-lab cell.
func (c TopoCell) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Motif                string   `json:"motif"`
		Mode                 string   `json:"mode"`
		ISLCount             int      `json:"islCount"`
		MeanISLKm            float64  `json:"meanIslKm"`
		MedianRTTMs          *float64 `json:"medianRttMs"`
		P99RTTMs             *float64 `json:"p99RttMs"`
		DemandWeightedMedian *float64 `json:"demandWeightedMedianRttMs"`
		UnreachableFrac      float64  `json:"unreachableFrac"`
		ThroughputGbps       float64  `json:"throughputGbps"`
		FaultMedianRTTMs     *float64 `json:"faultMedianRttMs"`
		FaultUnreachableFrac float64  `json:"faultUnreachableFrac"`
		ThroughputRetention  float64  `json:"throughputRetention"`
		RouteChangesPerMin   float64  `json:"routeChangesPerMin"`
		FullRebuilds         int      `json:"fullRebuilds"`
	}{
		Motif: c.Motif.String(), Mode: c.Mode.String(),
		ISLCount: c.ISLCount, MeanISLKm: c.MeanISLKm,
		MedianRTTMs: finiteOrNil(c.MedianRTTMs), P99RTTMs: finiteOrNil(c.P99RTTMs),
		DemandWeightedMedian: finiteOrNil(c.DemandWeightedMedianRTTMs),
		UnreachableFrac:      c.UnreachableFrac,
		ThroughputGbps:       c.ThroughputGbps,
		FaultMedianRTTMs:     finiteOrNil(c.FaultMedianRTTMs),
		FaultUnreachableFrac: c.FaultUnreachableFrac,
		ThroughputRetention:  c.ThroughputRetention,
		RouteChangesPerMin:   c.RouteChangesPerMin,
		FullRebuilds:         c.FullRebuilds,
	})
}

// MarshalJSON names the sweep configuration of the topology-lab result.
func (r *TopoResult) MarshalJSON() ([]byte, error) {
	motifs := make([]string, len(r.Motifs))
	for i, m := range r.Motifs {
		motifs[i] = m.String()
	}
	return json.Marshal(struct {
		Motifs          []string   `json:"motifs"`
		K               int        `json:"k"`
		FaultScenario   string     `json:"faultScenario"`
		FaultFraction   float64    `json:"faultFraction"`
		FaultSeed       int64      `json:"faultSeed"`
		ChurnStep       string     `json:"churnStep"`
		ChurnWindow     string     `json:"churnWindow"`
		SnapshotsUsed   int        `json:"snapshotsUsed"`
		DemandAdvantage float64    `json:"demandVsPlusGridAdvantagePct"`
		Cells           []TopoCell `json:"cells"`
	}{
		Motifs: motifs, K: r.K,
		FaultScenario: string(r.FaultScenario), FaultFraction: r.FaultFraction,
		FaultSeed: r.FaultSeed,
		ChurnStep: r.ChurnStep.String(), ChurnWindow: r.ChurnWindow.String(),
		SnapshotsUsed:   r.SnapshotsUsed,
		DemandAdvantage: r.DemandAdvantagePct(),
		Cells:           r.Cells,
	})
}

// finiteOrNil maps non-finite floats (unreachable medians, infinite
// inflation) to JSON null, which encoding/json cannot represent otherwise.
func finiteOrNil(x float64) *float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return nil
	}
	return &x
}

// MarshalJSON names scenario and modes of the resilience sweep.
func (r *ResilienceResult) MarshalJSON() ([]byte, error) {
	type point struct {
		Fraction            float64  `json:"fraction"`
		Mode                string   `json:"mode"`
		FailedSats          int      `json:"failedSats"`
		FailedSites         int      `json:"failedSites"`
		FailedISLs          int      `json:"failedIsls"`
		MedianRTTMs         *float64 `json:"medianRttMs"`
		P99RTTMs            *float64 `json:"p99RttMs"`
		MedianInflationPct  *float64 `json:"medianInflationPct"`
		P99InflationPct     *float64 `json:"p99InflationPct"`
		UnreachableFrac     float64  `json:"unreachableFrac"`
		ThroughputGbps      float64  `json:"throughputGbps"`
		ThroughputRetention float64  `json:"throughputRetention"`
	}
	pts := make([]point, len(r.Points))
	for i, p := range r.Points {
		pts[i] = point{
			Fraction: p.Fraction, Mode: p.Mode.String(),
			FailedSats: p.FailedSats, FailedSites: p.FailedSites, FailedISLs: p.FailedISLs,
			MedianRTTMs: finiteOrNil(p.MedianRTTMs), P99RTTMs: finiteOrNil(p.P99RTTMs),
			MedianInflationPct: finiteOrNil(p.MedianInflationPct),
			P99InflationPct:    finiteOrNil(p.P99InflationPct),
			UnreachableFrac:    p.UnreachableFrac,
			ThroughputGbps:     p.ThroughputGbps, ThroughputRetention: p.ThroughputRetention,
		}
	}
	return json.Marshal(struct {
		Scenario      string    `json:"scenario"`
		Seed          int64     `json:"seed"`
		Fractions     []float64 `json:"fractions"`
		SnapshotsUsed int       `json:"snapshotsUsed"`
		Partial       bool      `json:"partial,omitempty"`
		Points        []point   `json:"points"`
	}{string(r.Scenario), r.Seed, r.Fractions, r.SnapshotsUsed, r.Partial, pts})
}

// MarshalJSON renders both exceedance curves plus the 1%-of-time headline.
func (p *PairWeather) MarshalJSON() ([]byte, error) {
	bpDB, islDB, bpPow, islPow := p.At1Percent()
	type curve struct {
		P []float64 `json:"pPercent"`
		A []float64 `json:"attenuationDb"`
	}
	return json.Marshal(struct {
		Src         string  `json:"src"`
		Dst         string  `json:"dst"`
		BP          curve   `json:"bp"`
		ISL         curve   `json:"isl"`
		BPAt1PctDB  float64 `json:"bpAt1pctDb"`
		ISLAt1PctDB float64 `json:"islAt1pctDb"`
		BPPower     float64 `json:"bpReceivedPowerFrac"`
		ISLPower    float64 `json:"islReceivedPowerFrac"`
	}{
		Src: p.SrcCity, Dst: p.DstCity,
		BP:         curve{P: p.BPCurve.P, A: p.BPCurve.A},
		ISL:        curve{P: p.ISLCurve.P, A: p.ISLCurve.A},
		BPAt1PctDB: bpDB, ISLAt1PctDB: islDB,
		BPPower: bpPow, ISLPower: islPow,
	})
}
