package core

import (
	"context"
	"fmt"
	"io"
	"math"

	"leosim/internal/stats"
)

// RelayPoint is one cell of the relay-density sweep: how BP fares as the
// transit-relay grid coarsens. The paper's premise (following [21], which
// argued dense ground relays could substitute for ISLs) is that its 0.5°
// grid is "the highest density of GTs tested in prior work"; this sweep
// shows what each step away from that density costs BP — and that hybrid
// barely notices.
type RelayPoint struct {
	SpacingDeg float64
	// MedianMinRTT per mode (ms), over pairs reachable at every snapshot.
	MedianMinRTTBP, MedianMinRTTHybrid float64
	// ReachableFracBP is the fraction of sampled pairs BP can serve at
	// every snapshot (hybrid serves essentially all).
	ReachableFracBP float64
	// DisconnectedSatFrac is the §5 stranded-satellite fraction under BP.
	DisconnectedSatFrac float64
}

// RunRelayDensitySweep evaluates latency and reachability across relay grid
// spacings. Each spacing rebuilds the full simulation at the given base
// scale (slow: one sim per point).
func RunRelayDensitySweep(ctx context.Context, choice ConstellationChoice, base Scale, spacings []float64) ([]RelayPoint, error) {
	var out []RelayPoint
	for _, sp := range spacings {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if sp <= 0 {
			return nil, fmt.Errorf("core: relay spacing must be positive, got %v", sp)
		}
		scale := base
		scale.Name = fmt.Sprintf("%s-relay%.1f", base.Name, sp)
		scale.RelaySpacingDeg = sp
		s, err := NewSim(choice, scale)
		if err != nil {
			return nil, err
		}
		lat, err := RunLatency(ctx, s)
		if err != nil {
			// All pairs unreachable under BP at this sparsity still
			// yields a data point: RunLatency fails only when NO pair is
			// reachable in every snapshot under BOTH modes, which a
			// functioning hybrid prevents; treat other errors as real.
			return nil, fmt.Errorf("spacing %v: %w", sp, err)
		}
		disc, err := RunDisconnected(ctx, s)
		if err != nil {
			return nil, err
		}
		pt := RelayPoint{
			SpacingDeg:          sp,
			MedianMinRTTBP:      stats.Percentile(lat.MinRTT[BP], 50),
			MedianMinRTTHybrid:  stats.Percentile(lat.MinRTT[Hybrid], 50),
			ReachableFracBP:     float64(lat.ReachablePairs) / float64(len(s.Pairs)),
			DisconnectedSatFrac: disc.Mean,
		}
		if math.IsNaN(pt.MedianMinRTTBP) {
			pt.MedianMinRTTBP = math.Inf(1)
		}
		out = append(out, pt)
	}
	return out, nil
}

// WriteRelayReport renders the sweep.
func WriteRelayReport(w io.Writer, points []RelayPoint) {
	fmt.Fprintf(w, "relays spacing  bp-medRTT  hybrid-medRTT  bp-reach  bp-stranded\n")
	for _, p := range points {
		fmt.Fprintf(w, "relays %5.1f°  %8.1fms  %12.1fms  %7.0f%%  %10.0f%%\n",
			p.SpacingDeg, p.MedianMinRTTBP, p.MedianMinRTTHybrid,
			p.ReachableFracBP*100, p.DisconnectedSatFrac*100)
	}
}
