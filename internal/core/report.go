package core

import (
	"fmt"
	"io"

	"leosim/internal/stats"
)

// WriteLatencyReport renders the Fig 2 results: summary rows plus CDF series
// for minimum RTT (2a) and RTT range (2b).
func WriteLatencyReport(w io.Writer, r *LatencyResult, cdfPoints int) {
	minBP, minHy, rngBP, rngHy := r.Summaries()
	fmt.Fprintf(w, "pairs=%d excluded=%d\n", r.ReachablePairs, r.Excluded)
	if r.Partial {
		fmt.Fprintf(w, "fig2 PARTIAL: aggregated over the %d snapshots completed before cancellation\n", r.SnapshotsDone)
	}
	fmt.Fprintf(w, "fig2a min-RTT (ms):   bp[%s]\n", minBP)
	fmt.Fprintf(w, "fig2a min-RTT (ms): hybr[%s]\n", minHy)
	fmt.Fprintf(w, "fig2a max BP-hybrid gap: %.1f ms\n", r.MaxMinRTTGapMs())
	fmt.Fprintf(w, "fig2b RTT-range (ms):   bp[%s]\n", rngBP)
	fmt.Fprintf(w, "fig2b RTT-range (ms): hybr[%s]\n", rngHy)
	med, p95 := r.Headline()
	fmt.Fprintf(w, "headline: eschewing ISLs raises RTT variation by %.0f%% (median), %.0f%% (95th-p)\n", med, p95)
	writeCDF(w, "fig2a-cdf bp", r.MinRTT[BP], cdfPoints)
	writeCDF(w, "fig2a-cdf hybrid", r.MinRTT[Hybrid], cdfPoints)
	writeCDF(w, "fig2b-cdf bp", r.RangeRTT[BP], cdfPoints)
	writeCDF(w, "fig2b-cdf hybrid", r.RangeRTT[Hybrid], cdfPoints)
}

func writeCDF(w io.Writer, label string, xs []float64, points int) {
	if points <= 0 {
		return
	}
	cdf := stats.CDF(xs)
	if len(cdf) == 0 {
		return
	}
	stride := len(cdf) / points
	if stride < 1 {
		stride = 1
	}
	fmt.Fprintf(w, "%s:", label)
	for i := 0; i < len(cdf); i += stride {
		fmt.Fprintf(w, " (%.1f,%.3f)", cdf[i].X, cdf[i].F)
	}
	fmt.Fprintf(w, " (%.1f,1.000)\n", cdf[len(cdf)-1].X)
}

// WriteFig4Report renders the throughput table with the paper's derived
// ratios: hybrid/BP improvement per k, and the multipath gain per mode.
func WriteFig4Report(w io.Writer, rows []Fig4Row) {
	get := func(m Mode, k int) float64 {
		for _, r := range rows {
			if r.Mode == m && r.K == k {
				return r.AggregateGbps
			}
		}
		return 0
	}
	for _, r := range rows {
		fmt.Fprintf(w, "fig4 %s %-6s k=%d: %8.0f Gbps\n",
			r.Constellation, r.Mode, r.K, r.AggregateGbps)
	}
	if b1, h1 := get(BP, 1), get(Hybrid, 1); b1 > 0 {
		fmt.Fprintf(w, "fig4 hybrid/bp k=1: %.2fx\n", h1/b1)
	}
	if b4, h4 := get(BP, 4), get(Hybrid, 4); b4 > 0 {
		fmt.Fprintf(w, "fig4 hybrid/bp k=4: %.2fx\n", h4/b4)
	}
	if b1, b4 := get(BP, 1), get(BP, 4); b1 > 0 {
		fmt.Fprintf(w, "fig4 multipath gain bp: %.2fx\n", b4/b1)
	}
	if h1, h4 := get(Hybrid, 1), get(Hybrid, 4); h1 > 0 {
		fmt.Fprintf(w, "fig4 multipath gain hybrid: %.2fx\n", h4/h1)
	}
}

// WriteFig5Report renders the ISL capacity sweep.
func WriteFig5Report(w io.Writer, points []Fig5Point, bpGbps float64) {
	fmt.Fprintf(w, "fig5 bp baseline (k=4): %8.0f Gbps\n", bpGbps)
	for _, p := range points {
		ratio := 0.0
		if bpGbps > 0 {
			ratio = p.AggregateGbps / bpGbps
		}
		fmt.Fprintf(w, "fig5 isl=%.1fx gsl: %8.0f Gbps (%.2fx bp)\n",
			p.ISLCapRatio, p.AggregateGbps, ratio)
	}
}

// WriteWeatherReport renders Fig 6.
func WriteWeatherReport(w io.Writer, r *WeatherResult, cdfPoints int) {
	fmt.Fprintf(w, "pairs=%d\n", r.PairsUsed)
	fmt.Fprintf(w, "fig6 99.5th-pct attenuation (dB):  bp[%s]\n", stats.Summarize(r.P995BP))
	fmt.Fprintf(w, "fig6 99.5th-pct attenuation (dB): isl[%s]\n", stats.Summarize(r.P995ISL))
	fmt.Fprintf(w, "fig6 median ISL advantage: %.2f dB\n", r.MedianAdvantageDB())
	writeCDF(w, "fig6-cdf bp", r.P995BP, cdfPoints)
	writeCDF(w, "fig6-cdf isl", r.P995ISL, cdfPoints)
}

// WritePairWeatherReport renders Fig 8.
func WritePairWeatherReport(w io.Writer, p *PairWeather) {
	fmt.Fprintf(w, "fig8 %s–%s attenuation exceedance:\n", p.SrcCity, p.DstCity)
	fmt.Fprintf(w, "  p%%      bp(dB)  isl(dB)\n")
	for i, pp := range p.BPCurve.P {
		fmt.Fprintf(w, "  %-6.2f %7.2f %8.2f\n", pp, p.BPCurve.A[i], p.ISLCurve.A[i])
	}
	bpDB, islDB, bpPow, islPow := p.At1Percent()
	fmt.Fprintf(w, "fig8 at 1%% of time: bp %.1f dB (%.0f%% power) vs isl %.1f dB (%.0f%% power)\n",
		bpDB, bpPow*100, islDB, islPow*100)
	if bpPow > 0 {
		fmt.Fprintf(w, "fig8 ISL reduces weather power loss by %.0f%%\n",
			(islPow-bpPow)/islPow*100)
	}
}

// WriteTEReport renders the traffic-engineering comparison.
func WriteTEReport(w io.Writer, r *TEResult) {
	fmt.Fprintf(w, "te %s k=%d shortest-delay: %8.0f Gbps at %.2f ms mean path delay\n",
		r.Mode, r.K, r.ShortestGbps, r.ShortestDelayMs)
	fmt.Fprintf(w, "te %s k=%d min-max-util:   %8.0f Gbps at %.2f ms mean path delay (max util %.2f)\n",
		r.Mode, r.K, r.TEGbps, r.TEDelayMs, r.TEMaxUtil)
	fmt.Fprintf(w, "te throughput gain: %.0f%%; latency cost: %+.2f ms\n",
		r.ThroughputGainFrac()*100, r.TEDelayMs-r.ShortestDelayMs)
}

// WriteDisconnectReport renders the §5 disconnected-satellite statistic.
func WriteDisconnectReport(w io.Writer, r *DisconnectResult) {
	fmt.Fprintf(w, "disconnected satellites under BP: min=%.1f%% max=%.1f%% mean=%.1f%%\n",
		r.Min*100, r.Max*100, r.Mean*100)
	if r.Partial {
		fmt.Fprintf(w, "disconnected PARTIAL: %d snapshots completed before cancellation\n",
			len(r.FractionPerSnapshot))
	}
}

// WriteGSOReport renders Fig 9.
func WriteGSOReport(w io.Writer, rows []GSORow) {
	fmt.Fprintf(w, "fig9 GSO arc avoidance (22° separation):\n")
	fmt.Fprintf(w, "  lat    FoV-blocked  sats-free  sats-constrained\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %5.1f  %10.1f%%  %9.2f  %16.2f\n",
			r.LatitudeDeg, r.FOVBlockedFrac*100, r.VisibleSatsFree, r.VisibleSatsGSO)
	}
}

// WriteCrossShellReport renders Fig 10.
func WriteCrossShellReport(w io.Writer, r *CrossShellResult) {
	ms, frac := r.Improvement()
	fmt.Fprintf(w, "fig10 %s–%s: single-shell mean RTT %.1f ms, two-shell (BP transition) %.1f ms\n",
		r.SrcCity, r.DstCity, stats.Mean(r.SingleShellRTTs), stats.Mean(r.TwoShellRTTs))
	fmt.Fprintf(w, "fig10 improvement: %.1f ms (%.1f%%)\n", ms, frac*100)
}

// WriteFiberReport renders Fig 11.
func WriteFiberReport(w io.Writer, r *FiberResult) {
	fmt.Fprintf(w, "fig11 %s + %d fiber neighbors:\n", r.Metro, len(r.Nearby))
	fmt.Fprintf(w, "  visible satellites: %.0f alone → %.0f with fiber union\n",
		r.MetroVisible, r.UnionVisible)
	fmt.Fprintf(w, "  first-hop capacity: %.0f → %.0f Gbps\n",
		r.MetroUplinkGbps, r.UnionUplinkGbps)
	fmt.Fprintf(w, "  metro-sourced egress capacity gain (max-flow): %.0f%%\n",
		r.ThroughputGainFrac*100)
}
