package core

import (
	"context"
	"fmt"
	"time"

	"leosim/internal/fault"
	"leosim/internal/graph"
	"leosim/internal/safe"
)

// This file is the snapshot-granular evaluation surface: where the Run*
// experiments sweep a whole simulated day, these entry points answer one
// question about one snapshot, under an optional fault mask, with the
// caller's context propagated all the way into the routing kernel. The
// serving subsystem (internal/server) is built entirely on them.

// FindCity returns the pair-sampling index of the named city, or ok=false
// if it is outside the sim's city set.
func (s *Sim) FindCity(name string) (int, bool) {
	for i, c := range s.Cities {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// CityName returns the name of city i.
func (s *Sim) CityName(i int) string { return s.Cities[i].Name }

// NumCities returns the number of traffic cities in the sim.
func (s *Sim) NumCities() int { return len(s.Cities) }

// BuildNetworkAt builds a fresh snapshot network for mode at time t, with
// an optional fault mask applied — the uncached, side-effect-free build the
// serving cache (internal/snapcache) wraps. Unlike NetworkAt it never
// touches the sim's own snapshot cache, so callers own the returned network
// exclusively and may key it however they like. Cancellation is honoured at
// the build boundary.
func (s *Sim) BuildNetworkAt(ctx context.Context, t time.Time, mode Mode, outages *fault.Outages) (n *graph.Network, err error) {
	defer safe.RecoverTo(&err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if mode != BP && mode != Hybrid {
		return nil, fmt.Errorf("core: unknown mode %d", mode)
	}
	b, err := s.builderWith(mode, func(o *graph.BuildOptions) {
		if outages != nil {
			o.Mask = outages.Mask
		}
	})
	if err != nil {
		return nil, err
	}
	return b.At(t), nil
}

// PathQuery is the answer to one pair × snapshot path question.
type PathQuery struct {
	// Reachable is false when the pair is disconnected at this snapshot;
	// the remaining fields are then zero.
	Reachable bool    `json:"reachable"`
	RTTMs     float64 `json:"rttMs"`
	OneWayMs  float64 `json:"oneWayMs"`
	Hops      int     `json:"hops"`
	// Route lists the node names along the path, source to destination.
	Route []string `json:"route,omitempty"`
	// AircraftHops/RelayHops/CityHops count intermediate relays by kind.
	AircraftHops int `json:"aircraftHops"`
	RelayHops    int `json:"relayHops"`
	CityHops     int `json:"cityHops"`
}

// PathAt routes city src → city dst over snapshot network n. The context
// reaches the Dijkstra kernel itself (polled between settle batches), so a
// cancelled request abandons even a single in-flight search.
func (s *Sim) PathAt(ctx context.Context, n *graph.Network, src, dst int) (*PathQuery, error) {
	if src < 0 || src >= len(s.Cities) || dst < 0 || dst >= len(s.Cities) {
		return nil, fmt.Errorf("core: city index out of range (%d, %d of %d)", src, dst, len(s.Cities))
	}
	st := graph.AcquireSearch()
	defer st.Release()
	spec := graph.SearchSpec{
		Src:    n.CityNode(src),
		Target: n.CityNode(dst),
		Stop:   func() bool { return ctx.Err() != nil },
	}
	if !n.Search(st, spec) {
		return nil, ctx.Err()
	}
	p, ok := st.Path(n.CityNode(dst))
	if !ok {
		return &PathQuery{}, nil
	}
	return PathQueryOf(n, p), nil
}

// PathQueryOf converts a found path over n into the serving PathQuery
// envelope: RTT, hop count, the named route, and the per-kind relay hop
// breakdown. It is the single classification step behind PathAt and the
// oracle-served batch path endpoint, so both produce identical envelopes
// for identical paths.
func PathQueryOf(n *graph.Network, p graph.Path) *PathQuery {
	q := &PathQuery{
		Reachable: true,
		RTTMs:     p.RTTMs(),
		OneWayMs:  p.OneWayMs,
		Hops:      p.Hops(),
		Route:     make([]string, 0, len(p.Nodes)),
	}
	for i, node := range p.Nodes {
		q.Route = append(q.Route, n.Name[node])
		if i == 0 || i == len(p.Nodes)-1 {
			continue
		}
		switch n.Kind[node] {
		case graph.NodeAircraft:
			q.AircraftHops++
		case graph.NodeRelay:
			q.RelayHops++
		case graph.NodeCity:
			q.CityHops++
		}
	}
	return q
}

// ReachabilityQuery summarizes one snapshot's connectivity.
type ReachabilityQuery struct {
	// Components counts connected components of the whole graph.
	Components int `json:"components"`
	// StrandedSats counts satellites outside the main (city-bearing)
	// component — useless for networking at this snapshot; StrandedFrac is
	// the fraction of the fleet.
	StrandedSats int     `json:"strandedSats"`
	StrandedFrac float64 `json:"strandedFrac"`
	// ReachableCities counts cities reachable from the source city
	// (including itself); it is TotalCities when Src was not given (< 0).
	ReachableCities int `json:"reachableCities"`
	TotalCities     int `json:"totalCities"`
}

// ReachabilityAt summarizes snapshot network n: component structure,
// stranded satellites, and — when src ≥ 0 — how many cities that source can
// reach. Cancellation reaches the kernel as in PathAt.
func (s *Sim) ReachabilityAt(ctx context.Context, n *graph.Network, src int) (*ReachabilityQuery, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	comp, count := n.Components()
	q := &ReachabilityQuery{Components: count, TotalCities: len(s.Cities)}

	// The main component is the one holding the most cities.
	cityCount := map[int32]int{}
	for i := 0; i < n.NumCity; i++ {
		cityCount[comp[n.CityNode(i)]]++
	}
	main, best := int32(-1), -1
	for c, cnt := range cityCount {
		if cnt > best {
			best, main = cnt, c
		}
	}
	for i := 0; i < n.NumSat; i++ {
		if comp[i] != main {
			q.StrandedSats++
		}
	}
	if n.NumSat > 0 {
		q.StrandedFrac = float64(q.StrandedSats) / float64(n.NumSat)
	}

	if src < 0 {
		q.ReachableCities = q.TotalCities
		return q, nil
	}
	if src >= len(s.Cities) {
		return nil, fmt.Errorf("core: city index %d out of range (%d cities)", src, len(s.Cities))
	}
	st := graph.AcquireSearch()
	defer st.Release()
	done := n.Search(st, graph.SearchSpec{
		Src:    n.CityNode(src),
		Target: graph.NoTarget,
		Stop:   func() bool { return ctx.Err() != nil },
	})
	if !done {
		return nil, ctx.Err()
	}
	for i := 0; i < len(s.Cities); i++ {
		if st.Reached(n.CityNode(i)) {
			q.ReachableCities++
		}
	}
	return q, nil
}
