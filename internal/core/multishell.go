package core

import (
	"context"
	"fmt"
	"math"

	"leosim/internal/constellation"
	"leosim/internal/safe"
	"leosim/internal/stats"
)

// CrossShellResult is the Fig 10 experiment output: RTTs between one city
// pair on a single inclined shell versus a two-shell constellation where BP
// hops act as "transition points" between shells (no cross-shell ISLs).
type CrossShellResult struct {
	SrcCity, DstCity string
	// SingleShellRTTs and TwoShellRTTs are per-snapshot RTTs (ms);
	// unreachable snapshots are omitted.
	SingleShellRTTs, TwoShellRTTs []float64
}

// RunCrossShell quantifies §8's BP augmentation (Fig 10: Brisbane–Tokyo):
// it compares hybrid-connectivity RTTs on the inclined shell alone against
// a constellation that adds a polar shell, where paths may switch shells
// only through a ground terminal (intra-shell ISLs only — exactly what the
// +Grid generator produces).
func RunCrossShell(ctx context.Context, s *Sim, srcName, dstName string) (res *CrossShellResult, err error) {
	defer safe.RecoverTo(&err)
	if err := s.EnsureCity(srcName); err != nil {
		return nil, err
	}
	if err := s.EnsureCity(dstName); err != nil {
		return nil, err
	}
	// Build the two-shell sim sharing this sim's scale and segment shape.
	two, err := NewSim(s.Choice, s.Scale, WithExtraShells(constellation.PolarShell()))
	if err != nil {
		return nil, err
	}
	if err := two.EnsureCity(srcName); err != nil {
		return nil, err
	}
	if err := two.EnsureCity(dstName); err != nil {
		return nil, err
	}

	find := func(sim *Sim, name string) int {
		for i, c := range sim.Cities {
			if c.Name == name {
				return i
			}
		}
		return -1
	}
	res = &CrossShellResult{SrcCity: srcName, DstCity: dstName}
	for _, t := range s.SnapshotTimes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		one := s.NetworkAt(t, Hybrid)
		if p, ok := one.ShortestPath(one.CityNode(find(s, srcName)), one.CityNode(find(s, dstName))); ok {
			res.SingleShellRTTs = append(res.SingleShellRTTs, p.RTTMs())
		}
		tw := two.NetworkAt(t, Hybrid)
		if p, ok := tw.ShortestPath(tw.CityNode(find(two, srcName)), tw.CityNode(find(two, dstName))); ok {
			res.TwoShellRTTs = append(res.TwoShellRTTs, p.RTTMs())
		}
	}
	if len(res.SingleShellRTTs) == 0 || len(res.TwoShellRTTs) == 0 {
		return nil, fmt.Errorf("core: %s–%s unreachable in one of the configurations", srcName, dstName)
	}
	return res, nil
}

// Improvement summarizes the latency benefit of the second shell: mean RTT
// reduction in ms and as a fraction.
func (r *CrossShellResult) Improvement() (meanMs, frac float64) {
	m1 := stats.Mean(r.SingleShellRTTs)
	m2 := stats.Mean(r.TwoShellRTTs)
	if math.IsNaN(m1) || math.IsNaN(m2) || m1 == 0 {
		return 0, 0
	}
	return m1 - m2, (m1 - m2) / m1
}
