package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"leosim/internal/geo"
)

// Every Run* entry point must be a pure function of (constellation, scale,
// seed): two runs from identically constructed sims must serialize to
// byte-identical JSON envelopes. This pins down iteration-order leaks
// (map-ordered merges, nondeterministic worker interleavings, unseeded
// randomness) anywhere in the pipeline — the paper's numbers are only
// reproducible if the pipeline is.

// detScale trims the test scale so the full entry-point table stays fast.
func detScale() Scale {
	sc := TinyScale()
	sc.NumSnapshots = 2
	sc.NumPairs = 24
	return sc
}

func TestRunEntryPointsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full entry-point sweep in -short mode")
	}
	// The tiny 60-city set has no Australian city, so BP cannot route
	// Delhi–Sydney there; the pairweather case bridges the gap the way
	// TestRunPairWeatherDelhiSydney does.
	australiaScale := func() Scale {
		sc := detScale()
		sc.NumCities = 150
		sc.RelaySpacingDeg = 2
		sc.RelayMaxKm = 2000
		sc.AircraftDensity = 1
		return sc
	}
	cases := []struct {
		name   string
		scale  func() Scale // nil = detScale
		cities []string     // EnsureCity before running
		run    func(ctx context.Context, s *Sim) (interface{}, error)
	}{
		{"latency", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunLatency(ctx, s)
		}},
		{"pathtrace", nil, []string{"Maceió", "Durban"}, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunPathTrace(ctx, s, "Maceió", "Durban", BP)
		}},
		{"throughput", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunThroughput(ctx, s, Hybrid, 1, Epoch())
		}},
		{"fig4", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunFig4(ctx, s)
		}},
		{"fig5", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			pts, bp, err := RunFig5(ctx, s, []float64{0.5, 2})
			return struct {
				BP     float64
				Points []Fig5Point
			}{bp, pts}, err
		}},
		{"disconnected", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunDisconnected(ctx, s)
		}},
		{"weather", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunWeather(ctx, s)
		}},
		{"weather-ka", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunWeatherBand(ctx, s, KaBand)
		}},
		{"pairweather", australiaScale, []string{"Delhi", "Sydney"}, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunPairWeather(ctx, s, "Delhi", "Sydney")
		}},
		{"heatmap", nil, []string{"Delhi", "Sydney"}, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunHeatmap(ctx, s, "Delhi", "Sydney", 4)
		}},
		{"gsoarc", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunGSOArc(ctx, s, 40, []float64{0, 30, 60})
		}},
		{"gsoimpact", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunGSOImpact(ctx, s)
		}},
		{"crossshell", nil, []string{"Brisbane", "Tokyo"}, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunCrossShell(ctx, s, "Brisbane", "Tokyo")
		}},
		{"fiber", nil, []string{"Paris", "Rouen", "Orléans"}, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunFiberAugmentation(ctx, s, "Paris", []string{"Rouen", "Orléans"}, 200, Epoch())
		}},
		{"te", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunTrafficEngineering(ctx, s, Hybrid, 4, Epoch())
		}},
		{"modcod", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunWeatherCapacity(ctx, s)
		}},
		{"utilization", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunUtilization(ctx, s, Hybrid, Epoch())
		}},
		{"pathchurn", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunPathChurn(ctx, s)
		}},
		{"churn", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunChurn(ctx, s, ChurnOptions{Step: 2 * time.Second, Window: 10 * time.Second})
		}},
		{"beams", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunBeamSweep(ctx, s, []int{4, 0}, Epoch())
		}},
		{"relays", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunRelayDensitySweep(ctx, s.Choice, s.Scale, []float64{s.Scale.RelaySpacingDeg})
		}},
		{"resilience", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunResilience(ctx, s, "sat", []float64{0, 0.1})
		}},
		{"check", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunCheck(ctx, s, CheckOptions{Snapshots: 1, PairSample: 8, OptimalitySample: 2})
		}},
		{"topo", nil, nil, func(ctx context.Context, s *Sim) (interface{}, error) {
			return RunTopo(ctx, s, TopoOptions{
				ChurnStep:   2 * time.Second,
				ChurnWindow: 10 * time.Second,
			})
		}},
	}

	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out [2][]byte
			for rep := 0; rep < 2; rep++ {
				scale := detScale
				if tc.scale != nil {
					scale = tc.scale
				}
				s, err := NewSim(Starlink, scale())
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range tc.cities {
					if err := s.EnsureCity(c); err != nil {
						t.Fatal(err)
					}
				}
				res, err := tc.run(ctx, s)
				if err != nil {
					t.Fatalf("run %d: %v", rep, err)
				}
				var buf bytes.Buffer
				if err := WriteJSON(&buf, tc.name, s, res); err != nil {
					t.Fatalf("run %d: %v", rep, err)
				}
				out[rep] = buf.Bytes()
			}
			if !bytes.Equal(out[0], out[1]) {
				a, b := out[0], out[1]
				i := 0
				for i < len(a) && i < len(b) && a[i] == b[i] {
					i++
				}
				lo := i - 120
				if lo < 0 {
					lo = 0
				}
				hiA, hiB := i+120, i+120
				if hiA > len(a) {
					hiA = len(a)
				}
				if hiB > len(b) {
					hiB = len(b)
				}
				t.Fatalf("same-seed runs diverge at byte %d:\nrun0 …%s…\nrun1 …%s…",
					i, a[lo:hiA], b[lo:hiB])
			}
		})
	}
}

// Epoch is the fixed snapshot time the single-snapshot cases above share.
func Epoch() time.Time { return geo.Epoch }
