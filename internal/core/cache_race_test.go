package core

import (
	"sync"
	"testing"
	"time"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

// The network cache predates the serving subsystem and was only ever hit by
// one experiment goroutine at a time. The concurrency audit found that
// NetworkAt read s.builders[mode] without holding the lock WithISLCapacity
// writes it under — a data race once queries run concurrently with capacity
// sweeps. The cache now routes every builder access through builderFor and
// every snapshot build through the singleflight snapcache; this test hits
// both paths from many goroutines and relies on -race to flag regressions.
func TestNetworkCacheConcurrentAccess(t *testing.T) {
	scale := TinyScale()
	scale.NumSnapshots = 2
	s, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	times := []time.Time{geo.Epoch, geo.Epoch.Add(time.Hour)}

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				mode := BP
				if (w+i)%2 == 0 {
					mode = Hybrid
				}
				n := s.NetworkAt(times[i%len(times)], mode)
				if n == nil || n.N() == 0 {
					t.Error("NetworkAt returned an unusable network")
					return
				}
			}
		}()
	}
	// Concurrent builder swaps: the access pattern that raced before.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := s.WithISLCapacity(float64(1 + i%3)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

// Concurrent NetworkAt calls for one (time, mode) key must share a single
// build: the serving acceptance criterion, asserted at the sim layer.
func TestNetworkAtSingleBuildUnderConcurrency(t *testing.T) {
	scale := TinyScale()
	scale.NumSnapshots = 1
	s, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	base := s.NetworkCacheStats().Builds

	const N = 100
	nets := make([]interface{}, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			nets[i] = s.NetworkAt(geo.Epoch, BP)
		}()
	}
	wg.Wait()
	if got := s.NetworkCacheStats().Builds - base; got != 1 {
		t.Fatalf("%d concurrent NetworkAt calls ran %d builds, want 1", N, got)
	}
	for i := 1; i < N; i++ {
		if nets[i] != nets[0] {
			t.Fatalf("caller %d got a different network instance", i)
		}
	}
}

// A builder swap mid-build must not let the stale network re-enter the
// cache: after WithISLCapacity, a fresh NetworkAt reflects the new builder.
func TestWithISLCapacityInvalidatesConcurrentBuilds(t *testing.T) {
	scale := TinyScale()
	scale.NumSnapshots = 1
	s, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.NetworkAt(geo.Epoch, Hybrid)
		}()
	}
	if err := s.WithISLCapacity(7); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	n := s.NetworkAt(geo.Epoch, Hybrid)
	for _, l := range n.Links {
		if l.Kind == graph.LinkISL && l.CapGbps != 7 {
			t.Fatalf("post-swap network has ISL capacity %v, want 7", l.CapGbps)
		}
	}
}
