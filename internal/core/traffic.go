package core

import (
	"fmt"
	"math/rand"

	"leosim/internal/geo"
	"leosim/internal/ground"
)

// Pair is a traffic demand between two cities (indices into Sim.Cities).
type Pair struct {
	Src, Dst int
	// GeodesicKm caches the great-circle separation.
	GeodesicKm float64
}

// SamplePairs reproduces the paper's traffic matrix: among all city pairs
// separated by more than minKm along the geodesic, pick n uniformly at
// random (without replacement), deterministically from seed. If fewer than n
// eligible pairs exist, all of them are returned.
func SamplePairs(cities []ground.City, n int, minKm float64, seed int64) ([]Pair, error) {
	if len(cities) < 2 {
		return nil, fmt.Errorf("core: need at least 2 cities")
	}
	var eligible []Pair
	for i := 0; i < len(cities); i++ {
		pi := cities[i].Position()
		for j := i + 1; j < len(cities); j++ {
			d := geo.GreatCircleKm(pi, cities[j].Position())
			if d > minKm {
				eligible = append(eligible, Pair{Src: i, Dst: j, GeodesicKm: d})
			}
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("core: no city pairs farther than %.0f km", minKm)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(eligible), func(a, b int) {
		eligible[a], eligible[b] = eligible[b], eligible[a]
	})
	if n > len(eligible) {
		n = len(eligible)
	}
	out := make([]Pair, n)
	copy(out, eligible[:n])
	return out, nil
}

// UniqueSources returns the sorted distinct source-city indices of pairs —
// the Dijkstra roots the experiments run from.
func UniqueSources(pairs []Pair) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range pairs {
		if !seen[p.Src] {
			seen[p.Src] = true
			out = append(out, p.Src)
		}
	}
	return out
}
