package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/safe"
	"leosim/internal/telemetry"
)

// ChurnOptions configures the seconds-scale churn experiment. The zero value
// means 1-second steps over a 60-second window starting at the simulation
// epoch — resolution the 15-minute snapshot grid cannot see, and exactly the
// regime the incremental advancer makes affordable.
type ChurnOptions struct {
	// Start is the first instant (zero = geo.Epoch).
	Start time.Time
	// Step is the time between consecutive instants (zero = 1s).
	Step time.Duration
	// Window is the total simulated span (zero = 60s); the experiment
	// evaluates Window/Step transitions.
	Window time.Duration
}

// ChurnModeStats is one mode's route-stability picture over the window.
// Rates are per pair per minute of simulated time, averaged over the pairs
// reachable at every evaluated instant.
type ChurnModeStats struct {
	// PairsUsed counts pairs reachable at every instant in this mode.
	PairsUsed int `json:"pairsUsed"`
	// RouteChangesPerMin is how often a pair's shortest path changes at all
	// (any node differs — satellite handovers included, unlike pathchurn's
	// ground-sequence view).
	RouteChangesPerMin float64 `json:"routeChangesPerMin"`
	// UplinkHandoversPerMin / DownlinkHandoversPerMin count changes of the
	// first satellite after the source and the last before the destination.
	UplinkHandoversPerMin   float64 `json:"uplinkHandoversPerMin"`
	DownlinkHandoversPerMin float64 `json:"downlinkHandoversPerMin"`
}

// ChurnResult is the seconds-scale link- and route-dynamics report: GSL edge
// turnover straight from the advancer's delta log, and per-mode route-change
// and handover rates.
type ChurnResult struct {
	Start  time.Time     `json:"start"`
	Step   time.Duration `json:"step"`
	Window time.Duration `json:"window"`
	// Steps is the number of evaluated transitions.
	Steps int `json:"steps"`
	// GSLAppearPerStep / GSLVanishPerStep are constellation-wide GSL edge
	// births/deaths per step, from the BP walker's delta log (GSL edges are
	// identical across modes; ISLs never churn under +Grid).
	GSLAppearPerStep float64 `json:"gslAppearPerStep"`
	GSLVanishPerStep float64 `json:"gslVanishPerStep"`
	// FullRebuilds counts steps where a walker fell back to a full rebuild
	// (no delta recorded for those steps).
	FullRebuilds int                     `json:"fullRebuilds"`
	Modes        map[Mode]ChurnModeStats `json:"modes"`
}

// RunChurn measures link and route churn at seconds-scale resolution under
// both connectivity modes. It walks the time axis with the incremental
// advancer — the experiment the snapshot-grid rebuild cost used to rule out:
// Window/Step+1 instants per mode, each a per-step delta rather than a full
// build. Deterministic: the same sim and options always produce the same
// result.
func RunChurn(ctx context.Context, s *Sim, opt ChurnOptions) (res *ChurnResult, err error) {
	defer safe.RecoverTo(&err)
	if opt.Start.IsZero() {
		opt.Start = geo.Epoch
	}
	if opt.Step <= 0 {
		opt.Step = time.Second
	}
	if opt.Window <= 0 {
		opt.Window = time.Minute
	}
	steps := int(opt.Window / opt.Step)
	if steps < 1 {
		return nil, fmt.Errorf("core: churn window %v shorter than step %v", opt.Window, opt.Step)
	}
	nPairs := len(s.Pairs)
	res = &ChurnResult{
		Start: opt.Start, Step: opt.Step, Window: opt.Window,
		Steps: steps, Modes: map[Mode]ChurnModeStats{},
	}
	perMin := float64(time.Minute) / float64(opt.Step)

	prog := telemetry.NewProgress(Progress, "churn", 2*(steps+1))
	defer prog.Finish()
	for _, mode := range []Mode{BP, Hybrid} {
		w := s.NewWalker(mode)
		prevSig := make([]uint64, nPairs)
		prevUp := make([]int32, nPairs)
		prevDown := make([]int32, nPairs)
		routeChanges, upChanges, downChanges := 0, 0, 0
		valid := make([]bool, nPairs)
		for i := range valid {
			valid[i] = true
		}
		var appeared, vanished int
		for si := 0; si <= steps; si++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			n := w.At(opt.Start.Add(time.Duration(si) * opt.Step))
			if d := w.LastDelta(); d != nil {
				if d.FullRebuild {
					res.FullRebuilds++
				} else if mode == BP {
					appeared += len(d.Added)
					vanished += len(d.Removed)
				}
			}
			for pi, pair := range s.Pairs {
				if !valid[pi] {
					continue
				}
				p, ok := n.ShortestPath(n.CityNode(pair.Src), n.CityNode(pair.Dst))
				if !ok || len(p.Nodes) < 3 {
					valid[pi] = false
					continue
				}
				sig := pathSignature(p)
				up, down := p.Nodes[1], p.Nodes[len(p.Nodes)-2]
				if si > 0 {
					if sig != prevSig[pi] {
						routeChanges++
					}
					if up != prevUp[pi] {
						upChanges++
					}
					if down != prevDown[pi] {
						downChanges++
					}
				}
				prevSig[pi], prevUp[pi], prevDown[pi] = sig, up, down
			}
			prog.Step(1)
		}
		used := 0
		for _, v := range valid {
			if v {
				used++
			}
		}
		if used == 0 {
			return nil, fmt.Errorf("core: no pair reachable across the churn window under %s", mode)
		}
		norm := float64(used) * float64(steps)
		res.Modes[mode] = ChurnModeStats{
			PairsUsed:               used,
			RouteChangesPerMin:      float64(routeChanges) / norm * perMin,
			UplinkHandoversPerMin:   float64(upChanges) / norm * perMin,
			DownlinkHandoversPerMin: float64(downChanges) / norm * perMin,
		}
		if mode == BP {
			res.GSLAppearPerStep = float64(appeared) / float64(steps)
			res.GSLVanishPerStep = float64(vanished) / float64(steps)
		}
	}
	return res, nil
}

// pathSignature hashes a path's full node sequence (FNV-1a). Node indices
// are stable for satellites and static terminals across advances, so equal
// signatures at adjacent instants mean the same route.
func pathSignature(p graph.Path) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range p.Nodes {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// WriteChurnReport renders the seconds-scale churn comparison.
func WriteChurnReport(w io.Writer, r *ChurnResult) {
	fmt.Fprintf(w, "churn window=%v step=%v steps=%d rebuild-fallbacks=%d\n",
		r.Window, r.Step, r.Steps, r.FullRebuilds)
	fmt.Fprintf(w, "churn GSL edges: +%.1f/-%.1f per step (constellation-wide)\n",
		r.GSLAppearPerStep, r.GSLVanishPerStep)
	for _, m := range []Mode{BP, Hybrid} {
		st := r.Modes[m]
		fmt.Fprintf(w, "churn %-6s: %.2f route changes, %.2f uplink + %.2f downlink handovers per pair-minute (pairs=%d)\n",
			m, st.RouteChangesPerMin, st.UplinkHandoversPerMin, st.DownlinkHandoversPerMin, st.PairsUsed)
	}
}
