package core

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"leosim/internal/topo"
)

// TestRunCheckCleanReferenceScenarios is the "no violations" acceptance
// test: the invariant sweep must come back clean on both reference
// constellations. Anything it flags here is a real bug in the pipeline (or
// in a checker — either way it must not ship).
func TestRunCheckCleanReferenceScenarios(t *testing.T) {
	for _, choice := range []ConstellationChoice{Starlink, Kuiper} {
		s, err := NewSim(choice, TinyScale())
		if err != nil {
			t.Fatalf("%v: %v", choice, err)
		}
		rep, err := RunCheck(context.Background(), s, CheckOptions{Snapshots: 2})
		if err != nil {
			t.Fatalf("%v: RunCheck: %v", choice, err)
		}
		if !rep.OK() {
			for _, v := range rep.Violations() {
				t.Errorf("%v: [%s %s/%s] %s", choice, v.Class, v.Snapshot, v.Mode, v.Detail)
			}
			t.Fatalf("%v: %s", choice, rep.Summary())
		}
		for _, counter := range []string{"gsl-links", "isl-links", "paths",
			"symmetry-pairs", "dominance-pairs", "optimality-pairs", "flow-allocations"} {
			if rep.CheckedCount(counter) == 0 {
				t.Errorf("%v: coverage counter %q is zero — check did not run", choice, counter)
			}
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("%v: marshal: %v", choice, err)
		}
		var decoded struct {
			OK bool `json:"ok"`
		}
		if err := json.Unmarshal(raw, &decoded); err != nil || !decoded.OK {
			t.Fatalf("%v: bad report JSON: %v (%s)", choice, err, raw)
		}
	}
}

// TestRunCheckHonorsCancellation verifies the sweep aborts between
// snapshots when the context dies.
func TestRunCheckHonorsCancellation(t *testing.T) {
	s, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCheck(ctx, s, CheckOptions{}); err == nil {
		t.Fatal("cancelled RunCheck returned nil error")
	}
}

// TestRunCheckSGP4 exercises the loosened-tolerance path: the SGP4 ablation
// must also sweep clean (its radii and ISL lengths wobble, and the checker's
// bounds are widened to admit exactly that).
func TestRunCheckSGP4(t *testing.T) {
	if testing.Short() {
		t.Skip("SGP4 propagation is slow")
	}
	s, err := NewSim(Starlink, TinyScale(), WithSGP4Propagation())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunCheck(context.Background(), s, CheckOptions{
		Snapshots: 1, PairSample: 8, OptimalitySample: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, v := range rep.Violations() {
			t.Errorf("[%s %s/%s] %s", v.Class, v.Snapshot, v.Mode, v.Detail)
		}
		t.Fatalf("SGP4 sweep: %s", rep.Summary())
	}
}

// TestRunCheckEpochAwareMotif pins the per-snapshot re-placement of
// epoch-aware motifs: a nearest-neighbour matching frozen at the epoch
// drifts until its chords cut through the Earth (kuiper tiny flagged 892
// isl-geometry violations at t+2h before the snapshot builder learned to
// call LinksAt per build instant). The sweep must come back clean on both
// reference constellations, and concurrent snapshot builds must not race on
// the live ISL swap.
func TestRunCheckEpochAwareMotif(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-snapshot invariant sweeps in -short mode")
	}
	for _, choice := range []ConstellationChoice{Starlink, Kuiper} {
		s, err := NewSim(choice, TinyScale(), WithMotifID(topo.Nearest))
		if err != nil {
			t.Fatalf("%v: %v", choice, err)
		}
		// Concurrent builds across distinct late instants: the epoch-aware
		// swap serializes them; -race keeps it honest.
		times := s.SnapshotTimes()
		var wg sync.WaitGroup
		for _, at := range []time.Time{times[0], times[len(times)/2], times[len(times)-1]} {
			for _, mode := range []Mode{BP, Hybrid} {
				wg.Add(1)
				go func(at time.Time, mode Mode) {
					defer wg.Done()
					s.NetworkAt(at, mode)
				}(at, mode)
			}
		}
		wg.Wait()
		rep, err := RunCheck(context.Background(), s, CheckOptions{Snapshots: 3})
		if err != nil {
			t.Fatalf("%v: RunCheck: %v", choice, err)
		}
		if !rep.OK() {
			for _, v := range rep.Violations() {
				t.Errorf("%v: [%s %s/%s] %s", choice, v.Class, v.Snapshot, v.Mode, v.Detail)
			}
			t.Fatalf("%v: %s", choice, rep.Summary())
		}
	}
}
