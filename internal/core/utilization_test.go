package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunUtilization(t *testing.T) {
	s := getTinySim(t)
	t0 := s.SnapshotTimes()[0]
	bp, err := RunUtilization(context.Background(), s, BP, t0)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := RunUtilization(context.Background(), s, Hybrid, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.PerSatGbps) != 1584 || len(hy.PerSatGbps) != 1584 {
		t.Fatalf("per-sat lengths: %d / %d", len(bp.PerSatGbps), len(hy.PerSatGbps))
	}
	// §5: BP leaves a much larger fraction of satellites unused.
	if bp.IdleFrac <= hy.IdleFrac {
		t.Errorf("BP idle %v should exceed hybrid idle %v", bp.IdleFrac, hy.IdleFrac)
	}
	if bp.IdleFrac < 0.2 {
		t.Errorf("BP idle fraction %v implausibly low at tiny scale", bp.IdleFrac)
	}
	// Gini in [0,1]; load concentrated in both modes but valid.
	for _, r := range []*UtilizationResult{bp, hy} {
		if r.Gini < 0 || r.Gini > 1 {
			t.Errorf("%s Gini = %v", r.Mode, r.Gini)
		}
		if r.AggregateGbps <= 0 {
			t.Errorf("%s aggregate = %v", r.Mode, r.AggregateGbps)
		}
		var sum float64
		for _, g := range r.PerSatGbps {
			if g < 0 {
				t.Fatalf("negative satellite load")
			}
			sum += g
		}
		// Every unit of allocated rate touches ≥1 satellite.
		if sum < r.AggregateGbps {
			t.Errorf("%s: satellite-attributed load %v below aggregate %v",
				r.Mode, sum, r.AggregateGbps)
		}
	}
	var buf bytes.Buffer
	WriteUtilizationReport(&buf, bp, hy)
	if !strings.Contains(buf.String(), "idle") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestGini(t *testing.T) {
	if g := gini([]float64{1, 1, 1, 1}); g > 1e-9 {
		t.Errorf("uniform Gini = %v, want 0", g)
	}
	// All load on one of many: Gini → (n-1)/n.
	if g := gini([]float64{0, 0, 0, 10}); g < 0.7 {
		t.Errorf("concentrated Gini = %v, want ≈0.75", g)
	}
	if g := gini(nil); g != 0 {
		t.Errorf("empty Gini = %v", g)
	}
	if g := gini([]float64{0, 0}); g != 0 {
		t.Errorf("all-zero Gini = %v", g)
	}
}

func TestRunPathChurn(t *testing.T) {
	s := getTinySim(t)
	r, err := RunPathChurn(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.PairsUsed == 0 {
		t.Fatal("no pairs")
	}
	for _, m := range []Mode{BP, Hybrid} {
		if len(r.ChangeFrac[m]) != r.PairsUsed {
			t.Fatalf("length mismatch for %v", m)
		}
		for _, f := range r.ChangeFrac[m] {
			if f < 0 || f > 1 {
				t.Fatalf("change fraction %v out of [0,1]", f)
			}
		}
	}
	// §4/Fig 3 direction: BP's ground-hop sequences churn at least as much
	// as hybrid's (hybrid's ground signature is usually empty — endpoints
	// only — so it almost never changes).
	if r.MeanChangeFrac(BP) < r.MeanChangeFrac(Hybrid) {
		t.Errorf("BP churn %v below hybrid churn %v",
			r.MeanChangeFrac(BP), r.MeanChangeFrac(Hybrid))
	}
	var buf bytes.Buffer
	WritePathChurnReport(&buf, r)
	if !strings.Contains(buf.String(), "pathchurn") {
		t.Errorf("report:\n%s", buf.String())
	}
	// Needs ≥ 2 snapshots.
	bad := TinyScale()
	bad.NumSnapshots = 1
	one, err := NewSim(Starlink, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPathChurn(context.Background(), one); err == nil {
		t.Errorf("single snapshot must fail")
	}
}
