package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"

	"leosim/internal/atomicfile"
)

// Journal is a crash-safe record of sweep progress: per-experiment,
// per-snapshot completion records plus final experiment outputs, persisted
// as a JSONL sidecar. Every append rewrites the whole file atomically
// (temp + fsync + rename), so a crash — or a kill -9 — at any instant
// leaves either the previous complete journal or the new complete journal,
// never a torn one. A truncated trailing line (a crash mid-write of a
// non-atomic writer, or a copied file) is tolerated on load and dropped.
//
// The journal is keyed to one configuration: OpenJournal records a
// description (sim + output flags) in a header record and refuses to reuse
// a journal written under a different one, so resumed runs can never
// splice together results from incompatible sweeps.
type Journal struct {
	path string
	desc string

	mu      sync.Mutex
	records []journalRecord
}

// journalRecord is one JSONL line.
type journalRecord struct {
	// Kind is "header" (first line: configuration fingerprint), "step"
	// (one completed unit — snapshot, fraction, baseline — of one
	// experiment), or "done" (one experiment's complete rendered output).
	Kind       string          `json:"kind"`
	Desc       string          `json:"desc,omitempty"`       // header
	Experiment string          `json:"experiment,omitempty"` // step, done
	State      json.RawMessage `json:"state,omitempty"`      // step
	Output     []byte          `json:"output,omitempty"`     // done
}

// OpenJournal opens (or creates) the journal at path for runs described by
// desc. An existing journal must carry the same desc in its header.
func OpenJournal(path, desc string) (*Journal, error) {
	j := &Journal{path: path, desc: desc}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		j.records = []journalRecord{{Kind: "header", Desc: desc}}
		if err := j.flushLocked(); err != nil {
			return nil, err
		}
		return j, nil
	case err != nil:
		return nil, fmt.Errorf("core: journal: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 64<<20) // step states carry whole per-snapshot RTT arrays
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn trailing line is the expected crash artifact; a torn
			// line in the middle means the file is not ours.
			if len(j.records) > 0 && !sc.Scan() {
				break
			}
			return nil, fmt.Errorf("core: journal %s: corrupt record: %w", path, err)
		}
		j.records = append(j.records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: journal %s: %w", path, err)
	}
	if len(j.records) == 0 || j.records[0].Kind != "header" {
		return nil, fmt.Errorf("core: journal %s: missing header record", path)
	}
	if j.records[0].Desc != desc {
		return nil, fmt.Errorf("core: journal %s was written by a different run configuration (%q, want %q)",
			path, j.records[0].Desc, desc)
	}
	return j, nil
}

// flushLocked rewrites the whole journal atomically. Callers hold j.mu (or
// have exclusive access during construction).
func (j *Journal) flushLocked() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range j.records {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("core: journal: %w", err)
		}
	}
	if err := atomicfile.WriteFile(j.path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: journal: %w", err)
	}
	return nil
}

// Step appends one completed unit of work for experiment, with state as its
// replayable payload, and persists the journal before returning. After Step
// returns, a crash cannot lose that unit.
func (j *Journal) Step(experiment string, state interface{}) error {
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("core: journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = append(j.records, journalRecord{Kind: "step", Experiment: experiment, State: raw})
	return j.flushLocked()
}

// Steps returns the recorded step payloads for experiment, in append order.
func (j *Journal) Steps(experiment string) []json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []json.RawMessage
	for _, rec := range j.records {
		if rec.Kind == "step" && rec.Experiment == experiment {
			out = append(out, rec.State)
		}
	}
	return out
}

// MarkDone records experiment as complete with its full rendered output,
// which a resumed run replays instead of recomputing.
func (j *Journal) MarkDone(experiment string, output []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = append(j.records, journalRecord{Kind: "done", Experiment: experiment, Output: output})
	return j.flushLocked()
}

// DoneOutput returns the stored output of a completed experiment.
func (j *Journal) DoneOutput(experiment string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, rec := range j.records {
		if rec.Kind == "done" && rec.Experiment == experiment {
			return rec.Output, true
		}
	}
	return nil, false
}

// Len reports the number of records (header included) — a cheap progress
// fingerprint for tests and logs.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.records)
}

// journalCtxKey carries a *Journal through the experiment runners.
type journalCtxKey struct{}

// WithJournal returns a context whose experiment runs record per-snapshot
// progress into j and skip units j already holds.
func WithJournal(ctx context.Context, j *Journal) context.Context {
	return context.WithValue(ctx, journalCtxKey{}, j)
}

// JournalFrom extracts the journal, or nil when the run is unjournaled.
func JournalFrom(ctx context.Context) *Journal {
	j, _ := ctx.Value(journalCtxKey{}).(*Journal)
	return j
}

// ---- nullable-float plumbing --------------------------------------------
//
// Step payloads must round-trip non-finite float64s (unreachable pairs are
// +Inf), which encoding/json cannot represent. Journal payloads therefore
// store *float64 with nil ⇔ +Inf; finite values round-trip exactly because
// Go's float64 JSON encoding uses the shortest representation that parses
// back to the identical bits.

// infOrVal maps a journal float back to the in-memory convention.
func infOrVal(p *float64) float64 {
	if p == nil {
		return math.Inf(1)
	}
	return *p
}
