package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"leosim/internal/flow"
	"leosim/internal/graph"
	"leosim/internal/safe"
	"leosim/internal/stats"
)

// UtilizationResult quantifies §5's observation that BP "is unable to
// utilize a large fraction of the satellites for networking at all": the
// distribution of max-min-allocated traffic across satellites under each
// connectivity mode.
type UtilizationResult struct {
	Mode Mode
	// PerSatGbps is the traffic carried by each satellite (sum of
	// allocated rates of flows transiting it).
	PerSatGbps []float64
	// IdleFrac is the fraction of satellites carrying (essentially) no
	// traffic — disconnected ones plus connected-but-unused ones.
	IdleFrac float64
	// Gini is the Gini coefficient of the load distribution (0 = all
	// satellites equally used, →1 = all load on a few).
	Gini float64
	// AggregateGbps is the total allocated throughput (as in Fig 4).
	AggregateGbps float64
}

// RunUtilization routes the traffic matrix (k=4 paths, max-min allocation)
// at snapshot t and attributes each flow's rate to every satellite on its
// path.
func RunUtilization(ctx context.Context, s *Sim, mode Mode, t time.Time) (res *UtilizationResult, err error) {
	defer safe.RecoverTo(&err)
	n := s.NetworkAt(t, mode)
	paths, err := computePairPaths(ctx, s, n, 4)
	if err != nil {
		return nil, err
	}
	pr := flow.NewNetworkProblem(n, s.SatCapGbps)
	var flat []graph.Path
	for _, pp := range paths {
		for _, p := range pp {
			if _, err := pr.AddPath(p); err != nil {
				return nil, err
			}
			flat = append(flat, p)
		}
	}
	alloc, err := pr.MaxMinFair()
	if err != nil {
		return nil, err
	}

	res = &UtilizationResult{Mode: mode, PerSatGbps: make([]float64, n.NumSat)}
	for fi, p := range flat {
		rate := alloc[fi]
		res.AggregateGbps += rate
		for _, node := range p.Nodes {
			if node < int32(n.NumSat) {
				res.PerSatGbps[node] += rate
			}
		}
	}

	idle := 0
	for _, g := range res.PerSatGbps {
		if g < 1e-9 {
			idle++
		}
	}
	res.IdleFrac = float64(idle) / float64(len(res.PerSatGbps))
	res.Gini = gini(res.PerSatGbps)
	return res, nil
}

// gini computes the Gini coefficient of non-negative values.
func gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var cum, total float64
	for i, x := range s {
		cum += x * float64(2*(i+1)-len(s)-1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(len(s)) * total)
}

// WriteUtilizationReport renders the satellite-load comparison.
func WriteUtilizationReport(w io.Writer, results ...*UtilizationResult) {
	for _, r := range results {
		fmt.Fprintf(w, "util %-6s: %4.1f%% satellites idle, Gini %.2f, aggregate %.0f Gbps [%s]\n",
			r.Mode, r.IdleFrac*100, r.Gini, r.AggregateGbps,
			stats.Summarize(r.PerSatGbps))
	}
}
