package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/safe"
)

// numSources counts distinct pair sources: pairRTTs calls the test hook
// exactly once per source per snapshot evaluation.
func numSources(s *Sim) int {
	seen := map[int]bool{}
	for _, p := range s.Pairs {
		seen[p.Src] = true
	}
	return len(seen)
}

// Cancelling during the second snapshot must return the first snapshot's
// aggregates as a Partial result alongside the context error — not lose the
// completed work, and not run the remaining snapshots.
func TestRunLatencyCancelPartial(t *testing.T) {
	s := getTinySim(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Snapshot 1 makes exactly 2×numSources hook calls (BP then Hybrid);
	// the next call is inside snapshot 2, so cancelling there is
	// deterministic.
	perSnapshot := int64(2 * numSources(s))
	var calls atomic.Int64
	pairRTTsTestHook = func(int) {
		if calls.Add(1) == perSnapshot+1 {
			cancel()
		}
	}
	defer func() { pairRTTsTestHook = nil }()

	res, err := RunLatency(ctx, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation after a completed snapshot must return a partial result")
	}
	if !res.Partial {
		t.Errorf("Partial not set on truncated result")
	}
	// "Within one snapshot of cancellation": snapshot 1 finished, snapshot 2
	// may or may not have raced to completion, 3 and 4 must not have run.
	if res.SnapshotsDone < 1 || res.SnapshotsDone > 2 {
		t.Errorf("SnapshotsDone = %d, want 1 or 2 of %d", res.SnapshotsDone, s.Scale.NumSnapshots)
	}
	if res.ReachablePairs == 0 {
		t.Errorf("partial result carries no pairs")
	}
}

// A context cancelled before the run starts must fail fast with the context
// error and no result.
func TestRunLatencyPreCancelled(t *testing.T) {
	s := getTinySim(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunLatency(ctx, s)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// A panicking worker inside the per-pair fan-out must surface as a returned
// *safe.PanicError carrying the worker's stack, not crash the process.
func TestRunLatencyWorkerPanic(t *testing.T) {
	s := getTinySim(t)
	pairRTTsTestHook = func(int) { panic("injected worker failure") }
	defer func() { pairRTTsTestHook = nil }()

	res, err := RunLatency(context.Background(), s)
	if res != nil || err == nil {
		t.Fatalf("got (%v, %v), want a panic error", res, err)
	}
	var pe *safe.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *safe.PanicError", err, err)
	}
	if !strings.Contains(err.Error(), "injected worker failure") {
		t.Errorf("panic value lost: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Errorf("panic stack not captured")
	}
}

// A sim whose snapshot count was zeroed out must get an explanatory error
// from RunDisconnected, not a NaN-filled result.
func TestRunDisconnectedZeroSnapshots(t *testing.T) {
	scale := TinyScale()
	scale.NumSnapshots = 1
	s, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	s.Scale.NumSnapshots = 0
	res, err := RunDisconnected(context.Background(), s)
	if res != nil || err == nil {
		t.Fatalf("got (%v, %v), want an error", res, err)
	}
	if !strings.Contains(err.Error(), "no snapshots") {
		t.Errorf("err = %v, want a 'no snapshots' explanation", err)
	}
}

// The snapshot cache must stay bounded and evict least-recently-used, so a
// freshly re-touched snapshot survives an insertion but the coldest does not.
func TestNetworkAtLRUEviction(t *testing.T) {
	scale := TinyScale()
	scale.NumSnapshots = 1
	s, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]time.Time, networkCacheSize+1)
	for i := range times {
		times[i] = geo.Epoch.Add(time.Duration(i) * time.Minute)
	}

	built := make([]*graph.Network, networkCacheSize)
	for i := 0; i < networkCacheSize; i++ {
		built[i] = s.NetworkAt(times[i], BP)
	}
	if got := s.cachedNetworks(); got != networkCacheSize {
		t.Fatalf("cache holds %d networks, want %d", got, networkCacheSize)
	}

	// Touch the oldest entry so the second-oldest becomes the LRU victim.
	if s.NetworkAt(times[0], BP) != built[0] {
		t.Fatalf("cached snapshot was rebuilt on re-access")
	}
	s.NetworkAt(times[networkCacheSize], BP)
	if got := s.cachedNetworks(); got != networkCacheSize {
		t.Errorf("cache grew to %d networks, want bound %d", got, networkCacheSize)
	}
	if s.NetworkAt(times[0], BP) != built[0] {
		t.Errorf("recently-used snapshot was evicted")
	}
	if s.NetworkAt(times[1], BP) == built[1] {
		t.Errorf("LRU snapshot was not evicted")
	}
}

// WithISLCapacity must only change ISL capacities: an elevation override the
// sim was created with has to survive the builder swap (it used to be
// silently dropped, adding GSLs back below the configured elevation).
func TestWithISLCapacityPreservesOptions(t *testing.T) {
	scale := TinyScale()
	scale.NumSnapshots = 1
	strict, err := NewSim(Starlink, scale, WithMinElevation(40))
	if err != nil {
		t.Fatal(err)
	}
	t0 := strict.SnapshotTimes()[0]
	before := strict.NetworkAt(t0, Hybrid)

	if err := strict.WithISLCapacity(2.5); err != nil {
		t.Fatal(err)
	}
	after := strict.NetworkAt(t0, Hybrid)
	if len(after.Links) != len(before.Links) {
		t.Errorf("topology changed across capacity swap: %d → %d links (elevation override dropped?)",
			len(before.Links), len(after.Links))
	}
	isls := 0
	for _, l := range after.Links {
		if l.Kind == graph.LinkISL {
			isls++
			if l.CapGbps != 2.5 {
				t.Fatalf("ISL capacity = %v, want 2.5", l.CapGbps)
			}
		}
	}
	if isls == 0 {
		t.Errorf("no ISLs in hybrid network")
	}
}
