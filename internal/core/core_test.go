package core

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"leosim/internal/geo"
	"leosim/internal/ground"
)

// shared tiny sim, built once: most tests only read from it.
var (
	tinyOnce sync.Once
	tinySim  *Sim
	tinyErr  error
)

func getTinySim(t *testing.T) *Sim {
	t.Helper()
	tinyOnce.Do(func() {
		tinySim, tinyErr = NewSim(Starlink, TinyScale())
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinySim
}

func TestScaleValidate(t *testing.T) {
	for _, s := range []Scale{FullScale(), ReducedScale(), TinyScale()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := TinyScale()
	bad.NumCities = 1
	if bad.Validate() == nil {
		t.Errorf("1 city must fail")
	}
	bad = TinyScale()
	bad.NumSnapshots = 0
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "NumSnapshots") {
		t.Errorf("0 snapshots: want a NumSnapshots error, got %v", err)
	}
	bad = TinyScale()
	bad.SnapshotStep = 0
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "SnapshotStep") {
		t.Errorf("zero step: want a SnapshotStep error, got %v", err)
	}
	bad = TinyScale()
	bad.SnapshotStep = -time.Minute
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "SnapshotStep") {
		t.Errorf("negative step: want a SnapshotStep error, got %v", err)
	}
	bad = TinyScale()
	bad.SnapshotStep = 900 * time.Second * 1000 // a "seconds as Duration-units" slip
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "week") {
		t.Errorf("week-long schedule: want a span error, got %v", err)
	}
}

func TestModeAndChoiceStrings(t *testing.T) {
	if BP.String() != "bp" || Hybrid.String() != "hybrid" {
		t.Errorf("mode strings")
	}
	if Starlink.String() != "starlink" || Kuiper.String() != "kuiper" {
		t.Errorf("choice strings")
	}
	if Starlink.Shell().Name != "starlink-p1" || Kuiper.Shell().Name != "kuiper-p1" {
		t.Errorf("shell presets")
	}
}

func TestSamplePairs(t *testing.T) {
	cities, err := ground.Cities(50)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := SamplePairs(cities, 100, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p.GeodesicKm <= 2000 {
			t.Fatalf("pair %v closer than 2000 km (%v)", p, p.GeodesicKm)
		}
		key := [2]int{p.Src, p.Dst}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
		got := geo.GreatCircleKm(cities[p.Src].Position(), cities[p.Dst].Position())
		if math.Abs(got-p.GeodesicKm) > 1e-9 {
			t.Fatalf("cached geodesic wrong")
		}
	}
	// Deterministic under the same seed, different under another.
	again, _ := SamplePairs(cities, 100, 2000, 7)
	if pairs[0] != again[0] || pairs[50] != again[50] {
		t.Errorf("sampling not deterministic")
	}
	other, _ := SamplePairs(cities, 100, 2000, 8)
	same := true
	for i := range pairs {
		if pairs[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds gave identical samples")
	}
}

func TestSamplePairsEdgeCases(t *testing.T) {
	cities, _ := ground.Cities(5)
	// Requesting more pairs than exist returns all eligible.
	pairs, err := SamplePairs(cities, 10000, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 || len(pairs) > 10 {
		t.Errorf("got %d pairs from 5 cities", len(pairs))
	}
	// Impossible distance threshold errors.
	if _, err := SamplePairs(cities, 10, 1e9, 1); err == nil {
		t.Errorf("impossible threshold must fail")
	}
	if _, err := SamplePairs(cities[:1], 10, 0, 1); err == nil {
		t.Errorf("single city must fail")
	}
}

func TestUniqueSources(t *testing.T) {
	pairs := []Pair{{Src: 3}, {Src: 1}, {Src: 3}, {Src: 2}}
	u := UniqueSources(pairs)
	if len(u) != 3 {
		t.Errorf("unique sources = %v", u)
	}
}

func TestNewSimBasics(t *testing.T) {
	s := getTinySim(t)
	if s.Const.Size() != 1584 {
		t.Errorf("satellite count = %d", s.Const.Size())
	}
	if len(s.Cities) != TinyScale().NumCities {
		t.Errorf("city count = %d", len(s.Cities))
	}
	if len(s.Pairs) != TinyScale().NumPairs {
		t.Errorf("pair count = %d", len(s.Pairs))
	}
	if got := len(s.SnapshotTimes()); got != TinyScale().NumSnapshots {
		t.Errorf("snapshots = %d", got)
	}
	if !strings.Contains(s.String(), "starlink") {
		t.Errorf("String() = %q", s.String())
	}
	bad := TinyScale()
	bad.NumPairs = 0
	if _, err := NewSim(Starlink, bad); err == nil {
		t.Errorf("invalid scale must fail")
	}
}

func TestNetworkAtCaching(t *testing.T) {
	s := getTinySim(t)
	t0 := s.SnapshotTimes()[0]
	a := s.NetworkAt(t0, BP)
	b := s.NetworkAt(t0, BP)
	if a != b {
		t.Errorf("same snapshot should be cached")
	}
	h := s.NetworkAt(t0, Hybrid)
	if h == a {
		t.Errorf("modes must not share networks")
	}
	// BP has no ISLs; hybrid does.
	for _, l := range a.Links {
		if l.Kind.String() == "isl" {
			t.Fatalf("BP network contains ISLs")
		}
	}
	islSeen := false
	for _, l := range h.Links {
		if l.Kind.String() == "isl" {
			islSeen = true
			break
		}
	}
	if !islSeen {
		t.Errorf("hybrid network has no ISLs")
	}
}

func TestRunLatencyTiny(t *testing.T) {
	s := getTinySim(t)
	r, err := RunLatency(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReachablePairs == 0 {
		t.Fatal("no reachable pairs")
	}
	if len(r.MinRTT[BP]) != r.ReachablePairs || len(r.RangeRTT[Hybrid]) != r.ReachablePairs {
		t.Fatalf("result lengths inconsistent")
	}
	nBetter := 0
	for i := range r.MinRTT[BP] {
		// Hybrid min RTT is never worse than BP: the hybrid graph is a
		// strict superset of the BP graph.
		if r.MinRTT[Hybrid][i] > r.MinRTT[BP][i]+1e-9 {
			t.Fatalf("pair %d: hybrid %v > bp %v", i, r.MinRTT[Hybrid][i], r.MinRTT[BP][i])
		}
		if r.MinRTT[Hybrid][i] < r.MinRTT[BP][i]-1e-9 {
			nBetter++
		}
		if r.RangeRTT[BP][i] < 0 || r.RangeRTT[Hybrid][i] < 0 {
			t.Fatalf("negative RTT range")
		}
	}
	if nBetter == 0 {
		t.Errorf("hybrid never strictly better — ISLs not helping?")
	}
	// Headline direction: BP varies at least as much as hybrid on median.
	med, p95 := r.Headline()
	if med < -20 {
		t.Errorf("median variation increase = %v%% — BP should vary more", med)
	}
	_ = p95
	if gap := r.MaxMinRTTGapMs(); gap < 0 {
		t.Errorf("negative max gap %v", gap)
	}

	var buf bytes.Buffer
	WriteLatencyReport(&buf, r, 10)
	out := buf.String()
	for _, want := range []string{"fig2a", "fig2b", "headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunThroughputTiny(t *testing.T) {
	s := getTinySim(t)
	t0 := s.SnapshotTimes()[0]
	bp1, err := RunThroughput(context.Background(), s, BP, 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	hy1, err := RunThroughput(context.Background(), s, Hybrid, 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	hy4, err := RunThroughput(context.Background(), s, Hybrid, 4, t0)
	if err != nil {
		t.Fatal(err)
	}
	if bp1.AggregateGbps <= 0 || hy1.AggregateGbps <= 0 {
		t.Fatalf("throughput must be positive: bp=%v hy=%v", bp1.AggregateGbps, hy1.AggregateGbps)
	}
	// §5: hybrid beats BP.
	if hy1.AggregateGbps <= bp1.AggregateGbps {
		t.Errorf("hybrid (%v) should beat BP (%v) at k=1", hy1.AggregateGbps, bp1.AggregateGbps)
	}
	// Multipath helps the hybrid network.
	if hy4.AggregateGbps < hy1.AggregateGbps {
		t.Errorf("k=4 (%v) should not lose to k=1 (%v)", hy4.AggregateGbps, hy1.AggregateGbps)
	}
	if hy4.PathsFound <= hy1.PathsFound {
		t.Errorf("k=4 should find more paths")
	}
	if _, err := RunThroughput(context.Background(), s, BP, 0, t0); err == nil {
		t.Errorf("k=0 must fail")
	}
}

func TestRunFig4AndFig5Reports(t *testing.T) {
	s := getTinySim(t)
	rows, err := RunFig4(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("fig4 rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteFig4Report(&buf, rows)
	if !strings.Contains(buf.String(), "hybrid/bp k=1") {
		t.Errorf("fig4 report:\n%s", buf.String())
	}

	pts, bp, err := RunFig5(context.Background(), s, []float64{0.5, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || bp <= 0 {
		t.Fatalf("fig5: %v, bp=%v", pts, bp)
	}
	// Throughput is non-decreasing in ISL capacity.
	for i := 1; i < len(pts); i++ {
		if pts[i].AggregateGbps < pts[i-1].AggregateGbps-1e-6 {
			t.Errorf("fig5 not monotone: %v", pts)
		}
	}
	buf.Reset()
	WriteFig5Report(&buf, pts, bp)
	if !strings.Contains(buf.String(), "fig5") {
		t.Errorf("fig5 report:\n%s", buf.String())
	}
}

func TestRunDisconnectedTiny(t *testing.T) {
	s := getTinySim(t)
	r, err := RunDisconnected(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FractionPerSnapshot) != s.Scale.NumSnapshots {
		t.Fatalf("snapshot count mismatch")
	}
	// §5: a substantial fraction of satellites is disconnected under BP
	// (25–31% at paper scale; the tiny scale has sparser relays so the
	// fraction can be larger, but must be strictly between 0 and 1).
	if r.Min <= 0 || r.Max >= 1 {
		t.Errorf("disconnected fraction out of range: min=%v max=%v", r.Min, r.Max)
	}
	if r.Mean < r.Min || r.Mean > r.Max {
		t.Errorf("mean outside [min,max]")
	}
	var buf bytes.Buffer
	WriteDisconnectReport(&buf, r)
	if !strings.Contains(buf.String(), "disconnected") {
		t.Errorf("report: %s", buf.String())
	}
}

func TestRunGSOArcTiny(t *testing.T) {
	s := getTinySim(t)
	rows, err := RunGSOArc(context.Background(), s, 40, []float64{0, 30, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Equatorial terminals lose the most.
	if rows[0].FOVBlockedFrac <= rows[2].FOVBlockedFrac {
		t.Errorf("FoV blocking should decrease with latitude: %+v", rows)
	}
	for _, r := range rows {
		if r.VisibleSatsGSO > r.VisibleSatsFree {
			t.Errorf("constraint cannot add satellites: %+v", r)
		}
	}
	eq, mid := GSOConnectivityLoss(s, 25, s.SnapshotTimes()[0])
	if eq < mid {
		t.Errorf("equatorial loss %v < mid-latitude loss %v", eq, mid)
	}
	var buf bytes.Buffer
	WriteGSOReport(&buf, rows)
	if !strings.Contains(buf.String(), "fig9") {
		t.Errorf("report: %s", buf.String())
	}
}

func TestEnsureCity(t *testing.T) {
	// Use a private sim: EnsureCity mutates.
	s, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	before := s.Seg.NumCity
	if err := s.EnsureCity("Maceió"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range s.Cities {
		if c.Name == "Maceió" {
			found = true
		}
	}
	if !found {
		t.Fatal("Maceió not added")
	}
	// Idempotent.
	if err := s.EnsureCity("Maceió"); err != nil {
		t.Fatal(err)
	}
	if s.Seg.NumCity > before+1 {
		t.Errorf("EnsureCity not idempotent: %d → %d", before, s.Seg.NumCity)
	}
	if err := s.EnsureCity("Atlantis"); err == nil {
		t.Errorf("unknown city must fail")
	}
	// The new city terminal is wired into built networks.
	n := s.NetworkAt(s.SnapshotTimes()[0], Hybrid)
	if n.NumCity != s.Seg.NumCity {
		t.Errorf("network city count %d, segment %d", n.NumCity, s.Seg.NumCity)
	}
}

func TestSatelliteCapacityModel(t *testing.T) {
	// The default per-satellite pool (20 Gbps) must constrain throughput
	// strictly harder than the per-link-only ablation, and it must hurt
	// BP (which bounces through many satellites) relatively more.
	pool, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if pool.SatCapGbps != 20 {
		t.Fatalf("default SatCapGbps = %v, want 20", pool.SatCapGbps)
	}
	linkOnly, err := NewSim(Starlink, TinyScale(), WithSatelliteCapacity(0))
	if err != nil {
		t.Fatal(err)
	}
	t0 := pool.SnapshotTimes()[0]
	get := func(s *Sim, m Mode) float64 {
		r, err := RunThroughput(context.Background(), s, m, 4, t0)
		if err != nil {
			t.Fatal(err)
		}
		return r.AggregateGbps
	}
	bpPool, hyPool := get(pool, BP), get(pool, Hybrid)
	bpLink, hyLink := get(linkOnly, BP), get(linkOnly, Hybrid)
	if bpPool >= bpLink || hyPool >= hyLink {
		t.Errorf("pool model should constrain harder: bp %v/%v hy %v/%v",
			bpPool, bpLink, hyPool, hyLink)
	}
	if hyPool/bpPool <= hyLink/bpLink {
		t.Errorf("pool model should widen the hybrid advantage: %.2fx vs %.2fx",
			hyPool/bpPool, hyLink/bpLink)
	}
}

func TestWithISLCapacity(t *testing.T) {
	s, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WithISLCapacity(40); err != nil {
		t.Fatal(err)
	}
	n := s.NetworkAt(s.SnapshotTimes()[0], Hybrid)
	for _, l := range n.Links {
		if l.Kind.String() == "isl" && l.CapGbps != 40 {
			t.Fatalf("ISL capacity = %v, want 40", l.CapGbps)
		}
	}
}
