package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path, "sim-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Step("latency", disconnectJournalStep{Frac: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := j.Step("latency", disconnectJournalStep{Frac: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.MarkDone("fig3", []byte("fig3 output\n")); err != nil {
		t.Fatal(err)
	}

	// Reopen — the crash/restart path.
	j2, err := OpenJournal(path, "sim-a")
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Steps("latency"); len(got) != 2 {
		t.Fatalf("Steps = %d, want 2", len(got))
	}
	if got := j2.Steps("disconnected"); len(got) != 0 {
		t.Fatalf("unrelated experiment has %d steps", len(got))
	}
	out, ok := j2.DoneOutput("fig3")
	if !ok || string(out) != "fig3 output\n" {
		t.Fatalf("DoneOutput = %q, %v", out, ok)
	}
	if _, ok := j2.DoneOutput("fig4"); ok {
		t.Fatal("fig4 reported done")
	}
	if j2.Len() != 4 { // header + 2 steps + 1 done
		t.Fatalf("Len = %d, want 4", j2.Len())
	}
}

func TestJournalRefusesForeignConfiguration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	if _, err := OpenJournal(path, "starlink/reduced json=true"); err != nil {
		t.Fatal(err)
	}
	_, err := OpenJournal(path, "kuiper/tiny json=false")
	if err == nil || !strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("err = %v, want configuration mismatch", err)
	}
}

func TestJournalToleratesTruncatedTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path, "sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Step("latency", disconnectJournalStep{Frac: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a non-atomic writer dying mid-line.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(data, []byte(`{"kind":"step","exp`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, "sim")
	if err != nil {
		t.Fatalf("truncated trailing line rejected: %v", err)
	}
	if got := j2.Steps("latency"); len(got) != 1 {
		t.Fatalf("Steps = %d, want 1 (torn record dropped)", len(got))
	}
}

func TestJournalFromContext(t *testing.T) {
	if JournalFrom(context.Background()) != nil {
		t.Fatal("journal in empty context")
	}
	j := &Journal{}
	if JournalFrom(WithJournal(context.Background(), j)) != j {
		t.Fatal("journal did not round-trip through context")
	}
}

// Non-finite floats must survive the journal: +Inf ⇔ null.
func TestJournalFloatRoundTrip(t *testing.T) {
	inf := math.Inf(1)
	vals := []float64{0, 1.5, 123.456789012345, inf, 1e-300}
	ptrs := make([]*float64, len(vals))
	for i, v := range vals {
		ptrs[i] = finiteOrNil(v)
	}
	for i, p := range ptrs {
		if got := infOrVal(p); got != vals[i] {
			t.Fatalf("value %g round-tripped to %g", vals[i], got)
		}
	}
}
