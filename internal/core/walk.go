package core

import (
	"context"
	"fmt"
	"time"

	"leosim/internal/fault"
	"leosim/internal/graph"
	"leosim/internal/telemetry"
)

// Walker is a forward time cursor over one connectivity mode's network. The
// first At anchors a graph.Advancer with a full build; every later At applies
// an incremental per-step delta instead of rebuilding, which at seconds-scale
// steps is an order of magnitude cheaper (see BENCH_snapshot.json). The
// advanced network is byte-identical to a fresh build at the same instant, so
// sweeps that switch from repeated BuildNetworkAt calls to a Walker produce
// the same results.
//
// The *graph.Network returned by At is owned by the walker and mutated in
// place by the next At call: callers that need a snapshot to outlive the next
// step must Clone it. A Walker is not safe for concurrent use; create one per
// goroutine.
type Walker struct {
	b    *graph.Builder
	adv  *graph.Advancer
	last *graph.Delta
}

// NewWalker returns a time cursor over mode's network using the sim's
// current builder (capacity sweeps swap builders; a walker keeps the one it
// started with for its whole sweep, which is what in-order experiments want).
func (s *Sim) NewWalker(mode Mode) *Walker {
	return &Walker{b: s.builderFor(mode)}
}

// NewFaultedWalker is NewWalker with an outage mask applied, built from the
// sim's base options through the same path as BuildNetworkAt — the §5
// resilience sweep's walker.
func (s *Sim) NewFaultedWalker(mode Mode, outages *fault.Outages) (*Walker, error) {
	b, err := s.builderWith(mode, func(o *graph.BuildOptions) {
		if outages != nil {
			o.Mask = outages.Mask
		}
	})
	if err != nil {
		return nil, err
	}
	return &Walker{b: b}, nil
}

// At positions the cursor at t and returns the network there. The first call
// performs a full build; subsequent calls advance incrementally when t is
// within graph.MaxAdvanceStep ahead of the cursor and fall back to a full
// rebuild otherwise (recorded in the step's Delta).
func (w *Walker) At(t time.Time) *graph.Network {
	if w.adv == nil {
		w.adv = w.b.NewAdvancer(t)
		w.last = nil
		return w.adv.Net()
	}
	w.last = w.adv.Advance(t)
	return w.adv.Net()
}

// LastDelta returns the edge delta of the most recent At, or nil if the
// cursor has taken no step yet (the anchoring build has no delta). The delta
// is valid until the next At call.
func (w *Walker) LastDelta() *graph.Delta { return w.last }

// Stats returns the cursor's accumulated advance statistics.
func (w *Walker) Stats() graph.AdvanceStats {
	if w.adv == nil {
		return graph.AdvanceStats{}
	}
	return w.adv.Stats()
}

// Walk sweeps mode's network over times in order, calling visit at each
// instant. The network passed to visit is reused across steps (see Walker.At);
// visit must not retain it. Walk stops at the first visit error or context
// cancellation, returning that error.
func (s *Sim) Walk(ctx context.Context, mode Mode, times []time.Time, visit func(t time.Time, n *graph.Network) error) error {
	w := s.NewWalker(mode)
	for i, t := range times {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, endSnap := traceSnapshot(ctx, i)
		err := visit(t, w.At(t))
		endSnap()
		if err != nil {
			return err
		}
	}
	return nil
}

// traceSnapshot opens one per-snapshot trace envelope when a trace capture
// is running: it returns a context carrying a fresh trace ID — spans
// recorded under it join the snapshot's own track in the exported trace —
// and a close function. With no capture running it returns ctx unchanged
// and a no-op, so untraced sweeps pay one atomic load per snapshot.
func traceSnapshot(ctx context.Context, index int) (context.Context, func()) {
	if !telemetry.TracingEnabled() {
		return ctx, func() {}
	}
	id := telemetry.NewTraceID()
	name := fmt.Sprintf("snapshot[%d]", index)
	start := time.Now()
	return telemetry.WithTraceID(ctx, id), func() {
		telemetry.AddTraceSpan(name, id, start, time.Since(start))
	}
}
