package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONEnvelope(t *testing.T) {
	s := getTinySim(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "fig4", s, []Fig4Row{{Constellation: Starlink, Mode: BP, K: 1, AggregateGbps: 42}}); err != nil {
		t.Fatal(err)
	}
	var env map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if env["experiment"] != "fig4" || env["constellation"] != "starlink" || env["scale"] != "tiny" {
		t.Errorf("envelope metadata: %v", env)
	}
	rows := env["data"].([]interface{})
	row := rows[0].(map[string]interface{})
	if row["mode"] != "bp" || row["aggregateGbps"].(float64) != 42 {
		t.Errorf("row = %v", row)
	}
	// Nil sim still works (metadata omitted).
	buf.Reset()
	if err := WriteJSON(&buf, "x", nil, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyResultJSON(t *testing.T) {
	r := &LatencyResult{
		MinRTT:         map[Mode][]float64{BP: {10, 20}, Hybrid: {9, 18}},
		RangeRTT:       map[Mode][]float64{BP: {4, 6}, Hybrid: {2, 3}},
		ReachablePairs: 2,
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"bp":[10,20]`, `"hybrid":[9,18]`,
		`"reachablePairs":2`, `"medianVariationIncreasePct"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestThroughputAndWeatherJSON(t *testing.T) {
	tr := &ThroughputResult{Mode: Hybrid, K: 4, AggregateGbps: 123.5, PathsFound: 9}
	b, _ := json.Marshal(tr)
	if !strings.Contains(string(b), `"mode":"hybrid"`) {
		t.Errorf("throughput JSON: %s", b)
	}
	wr := &WeatherResult{P995BP: []float64{3, 4}, P995ISL: []float64{1, 2}, PairsUsed: 2}
	b, _ = json.Marshal(wr)
	if !strings.Contains(string(b), `"medianIslAdvantageDb":2`) {
		t.Errorf("weather JSON: %s", b)
	}
}

func TestPairWeatherJSON(t *testing.T) {
	s := getTinySim(t)
	// Reuse a real curve via the weather machinery on one sampled pair.
	bp, isl, err := weatherCurves(context.Background(), s, s.Pairs[:1], KuBand)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp[0]) == 0 || len(isl[0]) == 0 {
		t.Skip("first pair unroutable at tiny scale")
	}
	pw := &PairWeather{SrcCity: "A", DstCity: "B"}
	pw.BPCurve = bp[0][0]
	pw.ISLCurve = isl[0][0]
	b, err := json.Marshal(pw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"pPercent"`) || !strings.Contains(string(b), `"bpAt1pctDb"`) {
		t.Errorf("pair weather JSON: %s", b)
	}
}

func TestExtensionResultJSON(t *testing.T) {
	pc := &PathChurnResult{
		ChangeFrac: map[Mode][]float64{BP: {1, 0.5}, Hybrid: {0.1, 0.2}},
		PairsUsed:  2,
	}
	b, err := json.Marshal(pc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"bpChangeFrac":[1,0.5]`) {
		t.Errorf("path churn JSON: %s", b)
	}
	u := &UtilizationResult{Mode: Hybrid, PerSatGbps: []float64{1}, Gini: 0.5}
	b, _ = json.Marshal(u)
	if !strings.Contains(string(b), `"mode":"hybrid"`) {
		t.Errorf("utilization JSON: %s", b)
	}
	bp := BeamPoint{MaxGSLs: 4, Mode: BP, AggregateGbps: 7}
	b, _ = json.Marshal([]BeamPoint{bp})
	if !strings.Contains(string(b), `"maxGslsPerSat":4`) {
		t.Errorf("beam JSON: %s", b)
	}
	te := &TEResult{Mode: Hybrid, K: 4, ShortestGbps: 10, TEGbps: 11}
	b, _ = json.Marshal(te)
	if !strings.Contains(string(b), `"gainFrac":0.1`) {
		t.Errorf("te JSON: %s", b)
	}
}
