package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunRelayDensitySweep(t *testing.T) {
	base := TinyScale()
	base.NumSnapshots = 2
	points, err := RunRelayDensitySweep(context.Background(), Starlink, base, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	dense, sparse := points[0], points[1]
	// Sparser relays strand more satellites and serve fewer pairs.
	if sparse.DisconnectedSatFrac < dense.DisconnectedSatFrac {
		t.Errorf("sparser grid should strand more satellites: %v vs %v",
			sparse.DisconnectedSatFrac, dense.DisconnectedSatFrac)
	}
	if sparse.ReachableFracBP > dense.ReachableFracBP+1e-9 {
		t.Errorf("sparser grid should not reach more pairs: %v vs %v",
			sparse.ReachableFracBP, dense.ReachableFracBP)
	}
	// Hybrid latency is insensitive to relay density (ISLs carry transit);
	// allow a small tolerance for the changing reachable-pair population.
	if dense.MedianMinRTTHybrid <= 0 || sparse.MedianMinRTTHybrid <= 0 {
		t.Errorf("hybrid medians must be positive")
	}
	var buf bytes.Buffer
	WriteRelayReport(&buf, points)
	if !strings.Contains(buf.String(), "relays") {
		t.Errorf("report:\n%s", buf.String())
	}
	if _, err := RunRelayDensitySweep(context.Background(), Starlink, base, []float64{0}); err == nil {
		t.Errorf("zero spacing must fail")
	}
}

func TestRunGSOImpact(t *testing.T) {
	s := getTinySim(t)
	r, err := RunGSOImpact(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.EquatorialPairs == 0 {
		t.Fatal("no equatorial pairs in tiny sample")
	}
	// §7: the constraint hurts; inflations are non-negative in both modes
	// and BP suffers at least as much as hybrid on either metric.
	if r.MedianInflationBPMs < -1e-6 || r.MedianInflationHybridMs < -1e-6 {
		t.Errorf("negative inflation: bp=%v hy=%v",
			r.MedianInflationBPMs, r.MedianInflationHybridMs)
	}
	// §7's robust claim is about connectivity: the hybrid graph strictly
	// contains the BP graph, so the constraint can never disconnect more
	// hybrid pairs than BP pairs (small tolerance for the per-mode
	// eligible-pair populations differing).
	if r.UnreachableFracBP+0.05 < r.UnreachableFracHybrid {
		t.Errorf("BP unreachable %v below hybrid %v — contradicts graph containment",
			r.UnreachableFracBP, r.UnreachableFracHybrid)
	}
	var buf bytes.Buffer
	WriteGSOImpactReport(&buf, r)
	if !strings.Contains(buf.String(), "gso-impact") {
		t.Errorf("report:\n%s", buf.String())
	}
}
