package core

import (
	"context"
	"math"
	"testing"
)

func TestWithMinElevationOption(t *testing.T) {
	scale := TinyScale()
	scale.NumSnapshots = 1
	base, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := NewSim(Starlink, scale, WithMinElevation(40))
	if err != nil {
		t.Fatal(err)
	}
	t0 := base.SnapshotTimes()[0]
	nb := len(base.NetworkAt(t0, BP).Links)
	ns := len(strict.NetworkAt(t0, BP).Links)
	if ns >= nb {
		t.Errorf("40° min elevation should remove GSLs: %d vs %d", ns, nb)
	}
}

func TestWithSGP4PropagationOption(t *testing.T) {
	scale := TinyScale()
	scale.NumSnapshots = 1
	kep, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	sgp, err := NewSim(Starlink, scale, WithSGP4Propagation())
	if err != nil {
		t.Fatal(err)
	}
	t0 := kep.SnapshotTimes()[0]
	// Positions differ slightly (J2 short-period terms) but the networks
	// remain structurally comparable.
	pk := kep.Const.PositionsECEF(t0)
	ps := sgp.Const.PositionsECEF(t0)
	var maxD float64
	for i := range pk {
		if d := pk[i].Distance(ps[i]); d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		t.Errorf("SGP4 option had no effect")
	}
	if maxD > 100 {
		t.Errorf("SGP4 vs Kepler diverged %v km at epoch+0 — implausible", maxD)
	}
	if r, err := RunThroughput(context.Background(), sgp, Hybrid, 1, t0); err != nil || r.AggregateGbps <= 0 {
		t.Errorf("SGP4-propagated sim cannot run experiments: %v %v", r, err)
	}
}

func TestPctIncrease(t *testing.T) {
	if v := pctIncrease(100, 180); v != 80 {
		t.Errorf("pctIncrease(100,180) = %v", v)
	}
	if v := pctIncrease(0, 0); v != 0 {
		t.Errorf("pctIncrease(0,0) = %v", v)
	}
	if v := pctIncrease(0, 5); !math.IsInf(v, 1) {
		t.Errorf("pctIncrease(0,5) = %v, want +Inf", v)
	}
	if v := pctIncrease(-1, 5); !math.IsInf(v, 1) {
		t.Errorf("pctIncrease(-1,5) = %v, want +Inf", v)
	}
}

func TestTEGainFracEdge(t *testing.T) {
	r := &TEResult{ShortestGbps: 0, TEGbps: 5}
	if r.ThroughputGainFrac() != 0 {
		t.Errorf("zero baseline gain should be 0")
	}
	r = &TEResult{ShortestGbps: 100, TEGbps: 110}
	if g := r.ThroughputGainFrac(); math.Abs(g-0.1) > 1e-12 {
		t.Errorf("gain = %v", g)
	}
}
