package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"leosim/internal/graph"
	"leosim/internal/ground"
	"leosim/internal/safe"
)

// HopTrace describes one snapshot's path between a city pair.
type HopTrace struct {
	Time  time.Time
	RTTMs float64
	Hops  int
	// AircraftHops counts intermediate aircraft relays; RelayHops counts
	// grid relays; CityHops counts intermediate city GTs.
	AircraftHops, RelayHops, CityHops int
	// Route is a compact rendering of the hop sequence.
	Route string
	// Reachable is false when the pair was disconnected at this snapshot.
	Reachable bool
}

// MarshalJSON renders an unreachable snapshot's RTT (internally +Inf, which
// encoding/json rejects) as null instead of failing the whole envelope.
func (h HopTrace) MarshalJSON() ([]byte, error) {
	var rtt *float64
	if h.Reachable && !math.IsInf(h.RTTMs, 0) {
		rtt = &h.RTTMs
	}
	return json.Marshal(struct {
		Time         time.Time `json:"time"`
		RTTMs        *float64  `json:"rttMs"`
		Hops         int       `json:"hops"`
		AircraftHops int       `json:"aircraftHops"`
		RelayHops    int       `json:"relayHops"`
		CityHops     int       `json:"cityHops"`
		Route        string    `json:"route,omitempty"`
		Reachable    bool      `json:"reachable"`
	}{h.Time, rtt, h.Hops, h.AircraftHops, h.RelayHops, h.CityHops, h.Route, h.Reachable})
}

// PathTraceResult is the Fig 3 output: the BP path between one city pair
// across the day, showing how it flaps with aircraft availability.
type PathTraceResult struct {
	SrcCity, DstCity string
	Mode             Mode
	Traces           []HopTrace
}

// RunPathTrace traces the path between two named cities across the day under
// the given mode (§4 Fig 3 uses Maceió→Durban on BP).
func RunPathTrace(ctx context.Context, s *Sim, srcName, dstName string, mode Mode) (res *PathTraceResult, err error) {
	defer safe.RecoverTo(&err)
	src, dst := -1, -1
	for i, c := range s.Cities {
		if c.Name == srcName {
			src = i
		}
		if c.Name == dstName {
			dst = i
		}
	}
	if src < 0 || dst < 0 {
		return nil, fmt.Errorf("core: cities %q/%q not in the %d-city set", srcName, dstName, len(s.Cities))
	}
	res = &PathTraceResult{SrcCity: srcName, DstCity: dstName, Mode: mode}
	for _, t := range s.SnapshotTimes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := s.NetworkAt(t, mode)
		p, okPath := n.ShortestPath(n.CityNode(src), n.CityNode(dst))
		tr := HopTrace{Time: t, Reachable: okPath}
		if okPath {
			tr.RTTMs = p.RTTMs()
			tr.Hops = p.Hops()
			tr.Route = renderRoute(n, p)
			for _, node := range p.Nodes[1 : len(p.Nodes)-1] {
				switch n.Kind[node] {
				case graph.NodeAircraft:
					tr.AircraftHops++
				case graph.NodeRelay:
					tr.RelayHops++
				case graph.NodeCity:
					tr.CityHops++
				}
			}
		} else {
			tr.RTTMs = math.Inf(1)
		}
		res.Traces = append(res.Traces, tr)
	}
	return res, nil
}

func renderRoute(n *graph.Network, p graph.Path) string {
	var b strings.Builder
	for i, node := range p.Nodes {
		if i > 0 {
			b.WriteString("→")
		}
		switch n.Kind[node] {
		case graph.NodeSatellite:
			b.WriteString("s")
		case graph.NodeAircraft:
			b.WriteString("✈")
		case graph.NodeRelay:
			b.WriteString("r")
		case graph.NodeCity:
			b.WriteString("C")
		}
	}
	return b.String()
}

// RTTInflationMs returns max−min RTT across reachable snapshots (Fig 3
// reports ≈100 ms for Maceió–Durban under BP).
func (r *PathTraceResult) RTTInflationMs() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, tr := range r.Traces {
		if !tr.Reachable {
			continue
		}
		lo = math.Min(lo, tr.RTTMs)
		hi = math.Max(hi, tr.RTTMs)
	}
	if math.IsInf(lo, 1) {
		return math.Inf(1)
	}
	return hi - lo
}

// UsesAircraftEver reports whether any snapshot's path transits an aircraft.
func (r *PathTraceResult) UsesAircraftEver() bool {
	for _, tr := range r.Traces {
		if tr.AircraftHops > 0 {
			return true
		}
	}
	return false
}

// EnsureCity adds a named anchor city to the sim's city set if absent, so a
// trace can target cities outside the top-N population cut. It extends the
// ground segment terminals accordingly and must be called before any
// NetworkAt (it does not invalidate built networks).
func (s *Sim) EnsureCity(name string) error {
	for _, c := range s.Cities {
		if c.Name == name {
			return nil
		}
	}
	c, err := ground.CityByName(name)
	if err != nil {
		return err
	}
	// Append as a city terminal; it participates as source/sink/transit.
	s.Cities = append(s.Cities, c)
	s.Seg.Cities = s.Cities
	id := len(s.Seg.Terminals)
	// City terminals must stay contiguous before relays: rebuild the
	// terminal list with the new city inserted after the existing cities.
	terms := make([]ground.Terminal, 0, len(s.Seg.Terminals)+1)
	terms = append(terms, s.Seg.Terminals[:s.Seg.NumCity]...)
	terms = append(terms, ground.NewTerminal(s.Seg.NumCity, ground.KindCity, c.Name, c.Position(), s.Seg.NumCity))
	for _, t := range s.Seg.Terminals[s.Seg.NumCity:] {
		t.ID++
		terms = append(terms, t)
	}
	s.Seg.Terminals = terms
	s.Seg.NumCity++
	_ = id
	// Invalidate cached networks: node layout changed.
	s.mu.Lock()
	s.dropCaches()
	s.mu.Unlock()
	return nil
}
