package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leosim/internal/flow"
	"leosim/internal/graph"
	"leosim/internal/safe"
	"leosim/internal/telemetry"
)

// ThroughputResult holds one §5 data point: the max-min fair aggregate
// throughput of the 5,000-pair traffic matrix.
type ThroughputResult struct {
	Mode Mode
	K    int
	// AggregateGbps is the sum of all flow allocations (Fig 4's bars).
	AggregateGbps float64
	// PathsFound is the total number of sub-flows that got a path;
	// PathsMissing counts pair-slots with no (further) disjoint path.
	PathsFound, PathsMissing int
}

// RunThroughput computes aggregate throughput for the given mode and
// multipath degree k at snapshot time t, routing each pair over its k
// edge-disjoint shortest paths and applying max-min fair allocation
// (the floodns-style routed-flow model of §5).
func RunThroughput(ctx context.Context, s *Sim, mode Mode, k int, t time.Time) (res *ThroughputResult, err error) {
	defer safe.RecoverTo(&err)
	if k < 1 {
		return nil, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	n := s.NetworkAtCtx(ctx, t, mode)
	res, err = throughputOn(ctx, s, n, k)
	if err != nil {
		return nil, err
	}
	res.Mode = mode
	return res, nil
}

// throughputOn runs the routed-flow throughput model on an already-built
// network. RunResilience uses it directly to evaluate fault-masked
// snapshots that never enter the sim's cache.
func throughputOn(ctx context.Context, s *Sim, n *graph.Network, k int) (*ThroughputResult, error) {
	paths, err := computePairPaths(ctx, s, n, k)
	if err != nil {
		return nil, err
	}
	pr := flow.NewNetworkProblem(n, s.SatCapGbps)
	res := &ThroughputResult{K: k}
	for _, pp := range paths {
		res.PathsFound += len(pp)
		res.PathsMissing += k - len(pp)
		for _, p := range pp {
			if _, err := pr.AddPath(p); err != nil {
				return nil, err
			}
		}
	}
	asp := telemetry.RecordSpan(ctx, telemetry.StageMaxMin)
	alloc, err := pr.MaxMinFair()
	asp.End()
	if err != nil {
		return nil, err
	}
	res.AggregateGbps = flow.Sum(alloc)
	return res, nil
}

// Progress, when non-nil, receives coarse progress lines from long-running
// experiment phases (the CLI points it at stderr for full-scale runs).
var Progress io.Writer

var progressMu sync.Mutex

func progressf(format string, args ...interface{}) {
	if Progress == nil {
		return
	}
	progressMu.Lock()
	fmt.Fprintf(Progress, format, args...)
	progressMu.Unlock()
}

// computePairPaths finds k edge-disjoint shortest paths per pair, in
// parallel across pairs. Cancellation stops scheduling further pairs and
// returns the context's error; a worker panic returns as a *safe.PanicError.
func computePairPaths(ctx context.Context, s *Sim, n *graph.Network, k int) ([][]graph.Path, error) {
	defer telemetry.RecordSpan(ctx, telemetry.StageKDisjoint).End()
	out := make([][]graph.Path, len(s.Pairs))
	var done int64
	g := safe.NewGroup(ctx, runtime.GOMAXPROCS(0))
	for pi := range s.Pairs {
		pi := pi
		g.Go(func() error {
			p := s.Pairs[pi]
			out[pi] = n.KDisjointPaths(n.CityNode(p.Src), n.CityNode(p.Dst), k)
			if d := atomic.AddInt64(&done, 1); d%1000 == 0 {
				progressf("  ... %d/%d pairs routed\n", d, len(s.Pairs))
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4Row is one row of the Fig 4 table: a constellation × mode × k cell.
type Fig4Row struct {
	Constellation ConstellationChoice
	Mode          Mode
	K             int
	AggregateGbps float64
}

// RunFig4 evaluates the full Fig 4 matrix on this sim's constellation:
// {BP, Hybrid} × {k=1, k=4} at the first snapshot.
func RunFig4(ctx context.Context, s *Sim) ([]Fig4Row, error) {
	t := s.SnapshotTimes()[0]
	var rows []Fig4Row
	for _, mode := range []Mode{BP, Hybrid} {
		for _, k := range []int{1, 4} {
			r, err := RunThroughput(ctx, s, mode, k, t)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig4Row{
				Constellation: s.Choice, Mode: mode, K: k,
				AggregateGbps: r.AggregateGbps,
			})
		}
	}
	return rows, nil
}

// Fig5Point is one point of the Fig 5 sweep: hybrid throughput as ISL
// capacity varies relative to the 20 Gbps GSL capacity.
type Fig5Point struct {
	ISLCapRatio   float64 // ISL capacity / GSL capacity
	AggregateGbps float64
}

// RunFig5 sweeps ISL capacity over ratio×GSL for k=4 on the hybrid network
// (Fig 5), and also returns the BP baseline at k=4. Paths are shortest-delay
// and therefore capacity-independent, so they are computed once and the
// allocation re-run per capacity point.
func RunFig5(ctx context.Context, s *Sim, ratios []float64) (points []Fig5Point, bpGbps float64, err error) {
	defer safe.RecoverTo(&err)
	t := s.SnapshotTimes()[0]
	const k = 4
	bp, err := RunThroughput(ctx, s, BP, k, t)
	if err != nil {
		return nil, 0, err
	}
	n := s.NetworkAtCtx(ctx, t, Hybrid)
	paths, err := computePairPaths(ctx, s, n, k)
	if err != nil {
		return nil, 0, err
	}
	pr := flow.NewNetworkProblem(n, s.SatCapGbps)
	for _, pp := range paths {
		for _, p := range pp {
			if _, err := pr.AddPath(p); err != nil {
				return nil, 0, err
			}
		}
	}
	const gslCap = 20.0
	for _, ratio := range ratios {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		pr.SetISLCapacity(gslCap * ratio)
		alloc, err := pr.MaxMinFair()
		if err != nil {
			return nil, 0, err
		}
		points = append(points, Fig5Point{ISLCapRatio: ratio, AggregateGbps: flow.Sum(alloc)})
	}
	return points, bp.AggregateGbps, nil
}
