package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"leosim/internal/stats"
)

func TestRunPathTraceMaceioDurban(t *testing.T) {
	s, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureCity("Maceió"); err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureCity("Durban"); err != nil {
		t.Fatal(err)
	}
	r, err := RunPathTrace(context.Background(), s, "Maceió", "Durban", BP)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) != s.Scale.NumSnapshots {
		t.Fatalf("traces = %d", len(r.Traces))
	}
	reachable := 0
	for _, tr := range r.Traces {
		if tr.Reachable {
			reachable++
			if tr.Hops < 2 {
				t.Fatalf("BP path with %d hops", tr.Hops)
			}
			if tr.Route == "" {
				t.Fatalf("empty route rendering")
			}
			// A transoceanic BP path must zig-zag: intermediate ground
			// hops of some kind appear.
			if tr.AircraftHops+tr.RelayHops+tr.CityHops == 0 {
				t.Errorf("no intermediate ground hop in %s", tr.Route)
			}
		}
	}
	if reachable == 0 {
		t.Fatal("Maceió–Durban never reachable under BP")
	}
	// Fig 3's point: the south-Atlantic BP path is volatile. At tiny
	// scale we only assert the trace machinery: inflation is finite and
	// non-negative when ≥2 snapshots connect.
	if reachable >= 2 {
		if inf := r.RTTInflationMs(); inf < 0 {
			t.Errorf("negative inflation %v", inf)
		}
	}
	// South Atlantic crossing relies on aircraft relays (no land within
	// GSL range mid-ocean).
	if !r.UsesAircraftEver() {
		t.Logf("note: no aircraft used at tiny scale (sparse schedule)")
	}
	if _, err := RunPathTrace(context.Background(), s, "Maceió", "Nowhere", BP); err == nil {
		t.Errorf("unknown city must fail")
	}
}

func TestHybridPathStabler(t *testing.T) {
	s, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureCity("Maceió"); err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureCity("Durban"); err != nil {
		t.Fatal(err)
	}
	bp, err := RunPathTrace(context.Background(), s, "Maceió", "Durban", BP)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := RunPathTrace(context.Background(), s, "Maceió", "Durban", Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid is reachable at every snapshot and at lower RTT than BP
	// whenever both connect.
	var bpR, hyR []float64
	for i := range bp.Traces {
		if !hy.Traces[i].Reachable {
			t.Fatalf("hybrid unreachable at snapshot %d", i)
		}
		hyR = append(hyR, hy.Traces[i].RTTMs)
		if bp.Traces[i].Reachable {
			bpR = append(bpR, bp.Traces[i].RTTMs)
			if hy.Traces[i].RTTMs > bp.Traces[i].RTTMs+1e-9 {
				t.Errorf("snapshot %d: hybrid %v > bp %v",
					i, hy.Traces[i].RTTMs, bp.Traces[i].RTTMs)
			}
		}
	}
	if len(bpR) >= 2 && stats.Mean(hyR) >= stats.Mean(bpR) {
		t.Errorf("hybrid mean RTT %v not below BP %v", stats.Mean(hyR), stats.Mean(bpR))
	}
}

func TestCrossShellBrisbaneTokyo(t *testing.T) {
	s, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunCrossShell(context.Background(), s, "Brisbane", "Tokyo")
	if err != nil {
		t.Fatal(err)
	}
	// The two-shell constellation (with BP transition points) can never
	// be slower on average: it strictly contains the single-shell graph.
	meanMs, frac := r.Improvement()
	if meanMs < -1e-6 {
		t.Errorf("two shells slower by %v ms — impossible", -meanMs)
	}
	_ = frac
	var buf bytes.Buffer
	WriteCrossShellReport(&buf, r)
	if !strings.Contains(buf.String(), "fig10") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestFiberAugmentationParis(t *testing.T) {
	s, err := NewSim(Starlink, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	nearby := []string{"Rouen", "Orléans", "Reims", "Amiens", "Le Mans"}
	r, err := RunFiberAugmentation(context.Background(), s, "Paris", nearby, 200, s.SnapshotTimes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.MetroVisible <= 0 {
		t.Fatalf("Paris sees no satellites")
	}
	// Fig 11: fiber neighbors expand the reachable satellite set.
	if r.UnionVisible < r.MetroVisible {
		t.Errorf("union %v < metro alone %v", r.UnionVisible, r.MetroVisible)
	}
	if r.UnionUplinkGbps < r.MetroUplinkGbps {
		t.Errorf("union capacity below metro capacity")
	}
	if r.ThroughputGainFrac < -1e-9 {
		t.Errorf("fiber made throughput worse: %v", r.ThroughputGainFrac)
	}
	var buf bytes.Buffer
	WriteFiberReport(&buf, r)
	if !strings.Contains(buf.String(), "fig11") {
		t.Errorf("report:\n%s", buf.String())
	}
}

// An unreachable snapshot stores +Inf RTT internally, which encoding/json
// rejects; the custom marshaller must render it as null so -json output of a
// partially disconnected trace stays valid.
func TestHopTraceJSONUnreachable(t *testing.T) {
	r := &PathTraceResult{Traces: []HopTrace{
		{RTTMs: math.Inf(1)},
		{RTTMs: 42.5, Reachable: true},
	}}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal with unreachable trace: %v", err)
	}
	s := string(raw)
	for _, want := range []string{`"rttMs":null`, `"rttMs":42.5`, `"reachable":false`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s in %s", want, s)
		}
	}
}
