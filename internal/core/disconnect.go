package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"leosim/internal/graph"
	"leosim/internal/safe"
	"leosim/internal/telemetry"
)

// disconnectJournalStep is one journaled snapshot of the disconnected sweep.
type disconnectJournalStep struct {
	Frac float64 `json:"frac"`
}

// DisconnectResult is the §5 satellite-utilization statistic: the fraction
// of satellites entirely disconnected from the rest of the network under BP
// connectivity, across the day (paper: varies between 25.1% and 31.5% for
// Starlink).
type DisconnectResult struct {
	// FractionPerSnapshot is the disconnected-satellite fraction at each
	// snapshot.
	FractionPerSnapshot []float64
	Min, Max, Mean      float64
	// Partial marks a result cut short by cancellation.
	Partial bool
}

// RunDisconnected measures, per snapshot, how many satellites cannot reach
// the giant (city-containing) component of the BP network — i.e. satellites
// with no ground terminal in view, useless for networking without ISLs.
// Cancellation after at least one snapshot returns the completed prefix
// with Partial set alongside ctx.Err().
func RunDisconnected(ctx context.Context, s *Sim) (res *DisconnectResult, err error) {
	defer safe.RecoverTo(&err)
	times := s.SnapshotTimes()
	if len(times) == 0 {
		return nil, fmt.Errorf("core: no snapshots to simulate (NumSnapshots = %d)",
			s.Scale.NumSnapshots)
	}
	res = &DisconnectResult{Min: math.Inf(1), Max: math.Inf(-1)}
	prog := telemetry.NewProgress(Progress, "disconnected", len(times))
	defer prog.Finish()
	var sum float64
	aggregate := func(frac float64) {
		res.FractionPerSnapshot = append(res.FractionPerSnapshot, frac)
		res.Min = math.Min(res.Min, frac)
		res.Max = math.Max(res.Max, frac)
		sum += frac
		prog.Step(1)
	}
	// Replay snapshots a journaled previous run already completed.
	jour := JournalFrom(ctx)
	if jour != nil {
		for _, raw := range jour.Steps("disconnected") {
			var st disconnectJournalStep
			if jerr := json.Unmarshal(raw, &st); jerr != nil {
				return nil, fmt.Errorf("core: journal disconnected step: %w", jerr)
			}
			aggregate(st.Frac)
			if len(res.FractionPerSnapshot) == len(times) {
				break
			}
		}
		if replayed := len(res.FractionPerSnapshot); replayed > 0 {
			telemetry.EmitEvent(ctx, telemetry.CatJournal, telemetry.SevInfo,
				"journal replay: snapshots restored from previous run",
				telemetry.Str("experiment", "disconnected"),
				telemetry.Int64("snapshots", int64(replayed)))
		}
	}
	for _, t := range times[len(res.FractionPerSnapshot):] {
		if ctx.Err() != nil {
			break
		}
		n := s.NetworkAtCtx(ctx, t, BP)
		frac := disconnectedSatFraction(n)
		if jour != nil {
			if jerr := jour.Step("disconnected", disconnectJournalStep{Frac: frac}); jerr != nil {
				return nil, jerr
			}
		}
		aggregate(frac)
	}
	if len(res.FractionPerSnapshot) == 0 {
		return nil, ctx.Err()
	}
	res.Mean = sum / float64(len(res.FractionPerSnapshot))
	if res.Partial = len(res.FractionPerSnapshot) < len(times); res.Partial {
		return res, ctx.Err()
	}
	return res, nil
}

func disconnectedSatFraction(n *graph.Network) float64 {
	comp, _ := n.Components()
	// The "network" component is the one holding the most cities.
	cityCount := map[int32]int{}
	for i := 0; i < n.NumCity; i++ {
		cityCount[comp[n.CityNode(i)]]++
	}
	main := int32(-1)
	best := -1
	for c, cnt := range cityCount {
		if cnt > best {
			best, main = cnt, c
		}
	}
	isolated := 0
	for i := 0; i < n.NumSat; i++ {
		if comp[i] != main {
			isolated++
		}
	}
	return float64(isolated) / float64(n.NumSat)
}
