package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"leosim/internal/safe"
	"leosim/internal/stats"
	"leosim/internal/telemetry"
)

// LatencyResult holds the Fig 2 experiment output: per-pair minimum RTT and
// RTT range (max − min across snapshots) for both connectivity modes.
type LatencyResult struct {
	// MinRTT[mode][i] is the minimum RTT (ms) of pair i across snapshots.
	MinRTT map[Mode][]float64
	// RangeRTT[mode][i] is max−min RTT (ms) of pair i across snapshots.
	RangeRTT map[Mode][]float64
	// ReachablePairs counts pairs reachable in every snapshot under both
	// modes (the population the CDFs are over); Excluded counts the rest.
	ReachablePairs, Excluded int
	// SnapshotsDone counts snapshots fully aggregated; Partial marks a
	// result cut short by cancellation (SnapshotsDone < requested).
	SnapshotsDone int
	Partial       bool
}

// RunLatency runs the §4 experiment: simulate the day, find shortest paths
// for every pair at every snapshot under BP-only and hybrid connectivity,
// and report minimum RTTs (Fig 2a) and RTT variation (Fig 2b).
//
// Cancelling ctx stops the run at the next snapshot boundary. If at least
// one snapshot completed, the result over the completed snapshots is
// returned with Partial set, alongside ctx.Err(); with none completed only
// the error is returned.
func RunLatency(ctx context.Context, s *Sim) (res *LatencyResult, err error) {
	defer safe.RecoverTo(&err)
	times := s.SnapshotTimes()
	nPairs := len(s.Pairs)

	minRTT := map[Mode][]float64{}
	maxRTT := map[Mode][]float64{}
	for _, m := range []Mode{BP, Hybrid} {
		minRTT[m] = fill(nPairs, math.Inf(1))
		maxRTT[m] = fill(nPairs, math.Inf(-1))
	}
	ok := make([]bool, nPairs)
	for i := range ok {
		ok[i] = true
	}

	prog := telemetry.NewProgress(Progress, "latency", len(times))
	defer prog.Finish()
	done := 0
	aggregate := func(snap map[Mode][]float64) {
		for _, m := range []Mode{BP, Hybrid} {
			for i, r := range snap[m] {
				if math.IsInf(r, 1) {
					ok[i] = false
					continue
				}
				if r < minRTT[m][i] {
					minRTT[m][i] = r
				}
				if r > maxRTT[m][i] {
					maxRTT[m][i] = r
				}
			}
		}
		done++
		prog.Step(1)
	}
	// A journaled run replays the snapshots a previous (crashed or killed)
	// run already completed, then computes only the remainder. Replayed
	// aggregation is identical to live aggregation: journal floats
	// round-trip exactly.
	jour := JournalFrom(ctx)
	if jour != nil {
		for _, raw := range jour.Steps("latency") {
			snap, jerr := latencySnapFromJournal(raw, nPairs)
			if jerr != nil {
				return nil, jerr
			}
			aggregate(snap)
			if done == len(times) {
				break
			}
		}
		if done > 0 {
			telemetry.EmitEvent(ctx, telemetry.CatJournal, telemetry.SevInfo,
				"journal replay: snapshots restored from previous run",
				telemetry.Str("experiment", "latency"),
				telemetry.Int64("snapshots", int64(done)))
		}
	}
	// Each mode's walker advances snapshot to snapshot incrementally instead
	// of rebuilding (journal replay above needs no networks, so the walkers
	// anchor at the first live snapshot). The walker's network is reused in
	// place across steps; pairRTTs consumes it before the next At.
	walk := map[Mode]*Walker{BP: s.NewWalker(BP), Hybrid: s.NewWalker(Hybrid)}
	for _, t := range times[done:] {
		if ctx.Err() != nil {
			break
		}
		// Under a running trace capture each snapshot gets its own trace ID:
		// the exported Chrome trace shows one track per snapshot, its search
		// fan-out spans nested inside the envelope.
		sctx, endSnap := traceSnapshot(ctx, done)
		// Compute both modes for this snapshot before aggregating, so a
		// cancellation mid-snapshot never leaves one mode's extremes a
		// snapshot ahead of the other's.
		snap := map[Mode][]float64{}
		for _, m := range []Mode{BP, Hybrid} {
			n := walk[m].At(t)
			rtts, rerr := s.pairRTTs(sctx, n, false)
			if rerr != nil {
				if ctx.Err() != nil && done > 0 {
					snap = nil
					break
				}
				return nil, rerr
			}
			snap[m] = rtts
		}
		endSnap()
		if snap == nil {
			break
		}
		if jour != nil {
			if jerr := jour.Step("latency", latencySnapToJournal(snap)); jerr != nil {
				return nil, jerr
			}
		}
		aggregate(snap)
	}
	if done == 0 {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("core: no snapshots to simulate")
	}

	res = &LatencyResult{
		MinRTT:        map[Mode][]float64{BP: nil, Hybrid: nil},
		RangeRTT:      map[Mode][]float64{BP: nil, Hybrid: nil},
		SnapshotsDone: done,
		Partial:       done < len(times),
	}
	for i := 0; i < nPairs; i++ {
		if !ok[i] {
			res.Excluded++
			continue
		}
		res.ReachablePairs++
		for _, m := range []Mode{BP, Hybrid} {
			res.MinRTT[m] = append(res.MinRTT[m], minRTT[m][i])
			res.RangeRTT[m] = append(res.RangeRTT[m], maxRTT[m][i]-minRTT[m][i])
		}
	}
	if res.ReachablePairs == 0 {
		return nil, fmt.Errorf("core: no pair reachable in every snapshot; scale too small?")
	}
	if res.Partial {
		return res, ctx.Err()
	}
	return res, nil
}

// latencyJournalStep is one journaled snapshot of the latency sweep: both
// modes' per-pair RTTs, with nil standing in for +Inf (unreachable).
type latencyJournalStep struct {
	BP     []*float64 `json:"bp"`
	Hybrid []*float64 `json:"hybrid"`
}

func latencySnapToJournal(snap map[Mode][]float64) latencyJournalStep {
	conv := func(rtts []float64) []*float64 {
		out := make([]*float64, len(rtts))
		for i, r := range rtts {
			out[i] = finiteOrNil(r)
		}
		return out
	}
	return latencyJournalStep{BP: conv(snap[BP]), Hybrid: conv(snap[Hybrid])}
}

func latencySnapFromJournal(raw json.RawMessage, nPairs int) (map[Mode][]float64, error) {
	var st latencyJournalStep
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("core: journal latency step: %w", err)
	}
	if len(st.BP) != nPairs || len(st.Hybrid) != nPairs {
		return nil, fmt.Errorf("core: journal latency step has %d/%d pairs, sim has %d — journal from a different run?",
			len(st.BP), len(st.Hybrid), nPairs)
	}
	conv := func(rtts []*float64) []float64 {
		out := make([]float64, len(rtts))
		for i, r := range rtts {
			out[i] = infOrVal(r)
		}
		return out
	}
	return map[Mode][]float64{BP: conv(st.BP), Hybrid: conv(st.Hybrid)}, nil
}

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// Headline computes the paper's headline latency-variation claims: the
// percentage increase of RTT variation when eschewing ISLs, at the median
// and 95th percentile across pairs (§1: +80% and +422%).
func (r *LatencyResult) Headline() (medianIncreasePct, p95IncreasePct float64) {
	bp := stats.Summarize(r.RangeRTT[BP])
	hy := stats.Summarize(r.RangeRTT[Hybrid])
	medianIncreasePct = pctIncrease(hy.Median, bp.Median)
	p95IncreasePct = pctIncrease(hy.P95, bp.P95)
	return
}

func pctIncrease(base, val float64) float64 {
	if base <= 0 {
		if val <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (val - base) / base * 100
}

// MaxMinRTTGapMs returns the largest per-pair difference between BP and
// hybrid minimum RTTs (the paper reports a 57 ms tail gap in Fig 2a).
func (r *LatencyResult) MaxMinRTTGapMs() float64 {
	gap := 0.0
	for i := range r.MinRTT[BP] {
		if d := r.MinRTT[BP][i] - r.MinRTT[Hybrid][i]; d > gap {
			gap = d
		}
	}
	return gap
}

// Summaries returns per-mode summaries of minimum RTT and RTT range.
func (r *LatencyResult) Summaries() (minBP, minHy, rngBP, rngHy stats.Summary) {
	return stats.Summarize(r.MinRTT[BP]), stats.Summarize(r.MinRTT[Hybrid]),
		stats.Summarize(r.RangeRTT[BP]), stats.Summarize(r.RangeRTT[Hybrid])
}
