package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteSnapshotGeoJSON(t *testing.T) {
	s := getTinySim(t)
	var buf bytes.Buffer
	if err := WriteSnapshotGeoJSON(&buf, s, 0, s.SnapshotTimes()[0]); err != nil {
		t.Fatal(err)
	}
	var col struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string          `json:"type"`
				Coordinates json.RawMessage `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]interface{} `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(buf.Bytes(), &col); err != nil {
		t.Fatalf("invalid GeoJSON: %v", err)
	}
	if col.Type != "FeatureCollection" {
		t.Errorf("type = %q", col.Type)
	}
	sats, cities, paths := 0, 0, 0
	for _, f := range col.Features {
		switch f.Properties["kind"] {
		case "satellite":
			sats++
			if f.Geometry.Type != "Point" {
				t.Fatalf("satellite geometry %q", f.Geometry.Type)
			}
			var c []float64
			if err := json.Unmarshal(f.Geometry.Coordinates, &c); err != nil || len(c) != 2 {
				t.Fatalf("bad point coordinates: %s", f.Geometry.Coordinates)
			}
			if c[0] < -180 || c[0] > 180 || c[1] < -90 || c[1] > 90 {
				t.Fatalf("coordinates out of range: %v", c)
			}
		case "city":
			cities++
		case "path":
			paths++
			if f.Geometry.Type != "LineString" {
				t.Fatalf("path geometry %q", f.Geometry.Type)
			}
			var cs [][]float64
			if err := json.Unmarshal(f.Geometry.Coordinates, &cs); err != nil || len(cs) < 2 {
				t.Fatalf("bad line coordinates")
			}
			if f.Properties["rttMs"].(float64) <= 0 {
				t.Fatalf("path without RTT")
			}
		}
	}
	if sats != 1584 {
		t.Errorf("satellite features = %d", sats)
	}
	if cities != 2 {
		t.Errorf("city features = %d", cities)
	}
	if paths == 0 {
		t.Errorf("no path features")
	}
	if err := WriteSnapshotGeoJSON(&buf, s, 1<<20, s.SnapshotTimes()[0]); err == nil {
		t.Errorf("out-of-range pair must fail")
	}
}
