package core

import (
	"context"
	"fmt"
	"io"

	"leosim/internal/linkbudget"
	"leosim/internal/stats"
)

// ModcodResult extends §6 to capacity: the fraction of clear-sky link rate
// an adaptive DVB-S2-style MODCOD retains under each path's worst-link
// attenuation (at the 99.5th percentile of time), for BP vs ISL paths. This
// quantifies the paper's remark that attenuation "trades off bandwidth for
// reliability".
type ModcodResult struct {
	// RetentionBP and RetentionISL are per-pair capacity retention
	// fractions in [0,1].
	RetentionBP, RetentionISL []float64
	// OutageBP and OutageISL count pairs whose worst link cannot close at
	// all (retention 0).
	OutageBP, OutageISL int
}

// RunWeatherCapacity converts the Fig 6 attenuation comparison into a
// capacity comparison using the calibrated Starlink Ku budget. The slant
// range is taken at the shell's maximum (conservative: every link evaluated
// at its weakest geometry).
func RunWeatherCapacity(ctx context.Context, s *Sim) (*ModcodResult, error) {
	weather, err := RunWeather(ctx, s)
	if err != nil {
		return nil, err
	}
	budget := linkbudget.StarlinkKuBudget()
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	maxRange := s.Choice.Shell().MaxGSLKm()
	res := &ModcodResult{}
	for i := range weather.P995BP {
		rb := budget.CapacityRetention(maxRange, weather.P995BP[i])
		ri := budget.CapacityRetention(maxRange, weather.P995ISL[i])
		res.RetentionBP = append(res.RetentionBP, rb)
		res.RetentionISL = append(res.RetentionISL, ri)
		if rb == 0 {
			res.OutageBP++
		}
		if ri == 0 {
			res.OutageISL++
		}
	}
	if len(res.RetentionBP) == 0 {
		return nil, fmt.Errorf("core: no pairs for capacity analysis")
	}
	return res, nil
}

// MedianRetention returns the medians of both distributions.
func (r *ModcodResult) MedianRetention() (bp, isl float64) {
	return stats.Percentile(r.RetentionBP, 50), stats.Percentile(r.RetentionISL, 50)
}

// WriteModcodReport renders the capacity-retention comparison.
func WriteModcodReport(w io.Writer, r *ModcodResult) {
	bp, isl := r.MedianRetention()
	fmt.Fprintf(w, "modcod capacity retention at 99.5th-pct weather:\n")
	fmt.Fprintf(w, "  bp : median %.0f%%  [%s]\n", bp*100, stats.Summarize(r.RetentionBP))
	fmt.Fprintf(w, "  isl: median %.0f%%  [%s]\n", isl*100, stats.Summarize(r.RetentionISL))
	fmt.Fprintf(w, "  outages: bp %d, isl %d (of %d pairs)\n",
		r.OutageBP, r.OutageISL, len(r.RetentionBP))
}
