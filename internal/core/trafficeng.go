package core

import (
	"context"
	"time"

	"leosim/internal/flow"
	"leosim/internal/routing"
	"leosim/internal/safe"
)

// TEResult compares shortest-delay multipath routing (the paper's scheme)
// against the minimum-maximum-utilization routing §5 leaves to future work,
// on the same snapshot and traffic matrix.
type TEResult struct {
	Mode Mode
	K    int
	// ShortestGbps and TEGbps are the max-min aggregate throughputs.
	ShortestGbps, TEGbps float64
	// ShortestDelayMs and TEDelayMs are the mean one-way path delays —
	// the latency price of traffic engineering.
	ShortestDelayMs, TEDelayMs float64
	// TEMaxUtil is the nominal max link utilization after TE routing.
	TEMaxUtil float64
}

// ThroughputGainFrac returns the relative throughput improvement of TE.
func (r *TEResult) ThroughputGainFrac() float64 {
	if r.ShortestGbps <= 0 {
		return 0
	}
	return (r.TEGbps - r.ShortestGbps) / r.ShortestGbps
}

// RunTrafficEngineering evaluates the §5 prediction: congestion-aware
// routing raises aggregate throughput over shortest-delay multipath at the
// cost of longer paths.
func RunTrafficEngineering(ctx context.Context, s *Sim, mode Mode, k int, t time.Time) (res *TEResult, err error) {
	defer safe.RecoverTo(&err)
	n := s.NetworkAt(t, mode)
	res = &TEResult{Mode: mode, K: k}

	// Baseline: shortest-delay k edge-disjoint multipath.
	basePaths, err := computePairPaths(ctx, s, n, k)
	if err != nil {
		return nil, err
	}
	basePr := flow.NewNetworkProblem(n, s.SatCapGbps)
	var delaySum float64
	var delayN int
	for _, pp := range basePaths {
		for _, p := range pp {
			if _, err := basePr.AddPath(p); err != nil {
				return nil, err
			}
			delaySum += p.OneWayMs
			delayN++
		}
	}
	alloc, err := basePr.MaxMinFair()
	if err != nil {
		return nil, err
	}
	res.ShortestGbps = flow.Sum(alloc)
	if delayN > 0 {
		res.ShortestDelayMs = delaySum / float64(delayN)
	}

	// TE: congestion-aware routing over the same demands.
	demands := make([]routing.Demand, len(s.Pairs))
	for i, pair := range s.Pairs {
		demands[i] = routing.Demand{
			Src: n.CityNode(pair.Src), Dst: n.CityNode(pair.Dst), K: k,
		}
	}
	opts := routing.DefaultOptions()
	asgs, err := routing.MinMaxUtilization(n, demands, opts)
	if err != nil {
		return nil, err
	}
	tePr := flow.NewNetworkProblem(n, s.SatCapGbps)
	for _, asg := range asgs {
		for _, p := range asg.Paths {
			if _, err := tePr.AddPath(p); err != nil {
				return nil, err
			}
		}
	}
	teAlloc, err := tePr.MaxMinFair()
	if err != nil {
		return nil, err
	}
	res.TEGbps = flow.Sum(teAlloc)
	res.TEDelayMs = routing.MeanPathDelayMs(asgs)
	res.TEMaxUtil = routing.MaxUtilization(n, asgs, opts.UnitGbps)
	return res, nil
}
