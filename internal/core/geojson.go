package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"leosim/internal/geo"
	"leosim/internal/graph"
)

// GeoJSON export: snapshots and routed paths as a FeatureCollection that
// drops straight into geojson.io, kepler.gl, QGIS or Leaflet, for visual
// inspection of the BP zig-zag versus the ISL path (the Fig 1/3/7 pictures).

type geoJSONFeature struct {
	Type       string                 `json:"type"`
	Geometry   geoJSONGeometry        `json:"geometry"`
	Properties map[string]interface{} `json:"properties,omitempty"`
}

type geoJSONGeometry struct {
	Type        string      `json:"type"`
	Coordinates interface{} `json:"coordinates"`
}

type geoJSONCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

func pointFeature(ll geo.LatLon, props map[string]interface{}) geoJSONFeature {
	return geoJSONFeature{
		Type: "Feature",
		Geometry: geoJSONGeometry{
			Type:        "Point",
			Coordinates: []float64{round5(ll.Lon), round5(ll.Lat)},
		},
		Properties: props,
	}
}

func lineFeature(coords [][]float64, props map[string]interface{}) geoJSONFeature {
	return geoJSONFeature{
		Type:       "Feature",
		Geometry:   geoJSONGeometry{Type: "LineString", Coordinates: coords},
		Properties: props,
	}
}

func round5(x float64) float64 {
	return float64(int64(x*1e5+0.5*sign(x))) / 1e5
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// WriteSnapshotGeoJSON emits a snapshot of the network for one pair: every
// satellite as a point, the pair's cities, and the shortest paths under both
// modes as LineStrings (split at the antimeridian is NOT performed; viewers
// handle it).
func WriteSnapshotGeoJSON(w io.Writer, s *Sim, pairIdx int, t time.Time) error {
	if pairIdx < 0 || pairIdx >= len(s.Pairs) {
		return fmt.Errorf("core: pair index %d out of range", pairIdx)
	}
	pair := s.Pairs[pairIdx]
	col := geoJSONCollection{Type: "FeatureCollection"}

	hy := s.NetworkAt(t, Hybrid)
	for i := 0; i < hy.NumSat; i++ {
		ll := geo.FromECEF(hy.Pos[i])
		col.Features = append(col.Features, pointFeature(ll, map[string]interface{}{
			"kind": "satellite", "name": hy.Name[i],
		}))
	}
	for _, ci := range []int{pair.Src, pair.Dst} {
		col.Features = append(col.Features, pointFeature(
			s.Cities[ci].Position(), map[string]interface{}{
				"kind": "city", "name": s.Cities[ci].Name,
			}))
	}
	for _, mode := range []Mode{BP, Hybrid} {
		n := s.NetworkAt(t, mode)
		p, ok := n.ShortestPath(n.CityNode(pair.Src), n.CityNode(pair.Dst))
		if !ok {
			continue
		}
		col.Features = append(col.Features, lineFeature(pathCoords(n, p),
			map[string]interface{}{
				"kind": "path", "mode": mode.String(),
				"rttMs": p.RTTMs(), "hops": p.Hops(),
			}))
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(col)
}

func pathCoords(n *graph.Network, p graph.Path) [][]float64 {
	out := make([][]float64, 0, len(p.Nodes))
	for _, v := range p.Nodes {
		ll := geo.FromECEF(n.Pos[v])
		out = append(out, []float64{round5(ll.Lon), round5(ll.Lat)})
	}
	return out
}
