package core

import (
	"context"
	"fmt"
	"time"

	"leosim/internal/flow"
	"leosim/internal/graph"
	"leosim/internal/safe"
)

// FiberResult quantifies Fig 11's "distributed GTs" idea: a congested metro
// offloads some ground-satellite traffic through terrestrial fiber to nearby
// cities, multiplying the satellites its traffic can enter through.
type FiberResult struct {
	Metro  string
	Nearby []string
	// MetroVisible is the mean number of satellites the metro alone can
	// reach; UnionVisible counts distinct satellites reachable by the
	// metro or any fiber-connected neighbor.
	MetroVisible, UnionVisible float64
	// UplinkCapGbps are the aggregate first-hop capacities without and
	// with the fiber-attached neighbors, for the metro's own traffic.
	MetroUplinkGbps, UnionUplinkGbps float64
	// ThroughputGainFrac is the relative gain in the metro's achievable
	// egress capacity (max-flow from the metro to a set of far
	// destinations) once fiber links are added. Max-flow is used rather
	// than shortest-path max-min throughput because it is monotone in
	// added links — the capacity question Fig 11 poses, free of
	// path-selection artifacts.
	ThroughputGainFrac float64
}

// RunFiberAugmentation evaluates §8's fiber augmentation for a metro and a
// set of nearby cities at one snapshot. It adds fiber links metro↔neighbor
// (capacity fiberGbps each) and measures the growth in reachable satellites
// and in max-min throughput for a set of metro-sourced flows.
func RunFiberAugmentation(ctx context.Context, s *Sim, metro string, nearby []string, fiberGbps float64, t time.Time) (res *FiberResult, err error) {
	defer safe.RecoverTo(&err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.EnsureCity(metro); err != nil {
		return nil, err
	}
	for _, n := range nearby {
		if err := s.EnsureCity(n); err != nil {
			return nil, err
		}
	}
	idx := func(name string) int {
		for i, c := range s.Cities {
			if c.Name == name {
				return i
			}
		}
		return -1
	}
	mi := idx(metro)

	n := s.NetworkAt(t, Hybrid)
	res = &FiberResult{Metro: metro, Nearby: nearby}

	visible := func(city int) map[int32]bool {
		out := map[int32]bool{}
		node := n.CityNode(city)
		for _, l := range n.Links {
			if l.Kind != graph.LinkGSL {
				continue
			}
			if l.A == node {
				out[l.B] = true
			} else if l.B == node {
				out[l.A] = true
			}
		}
		return out
	}
	metroSats := visible(mi)
	union := map[int32]bool{}
	for s := range metroSats {
		union[s] = true
	}
	res.MetroVisible = float64(len(metroSats))
	res.MetroUplinkGbps = float64(len(metroSats)) * 20
	for _, nb := range nearby {
		for s := range visible(idx(nb)) {
			union[s] = true
		}
	}
	res.UnionVisible = float64(len(union))
	res.UnionUplinkGbps = float64(len(union)) * 20

	// Throughput for metro-sourced demand: route the metro to a sample of
	// far destinations over k=4 disjoint paths, without and with fiber.
	var dsts []int
	for _, p := range s.Pairs {
		if len(dsts) >= 12 {
			break
		}
		if p.Src != mi && p.Dst != mi {
			dsts = append(dsts, p.Dst)
		}
	}
	if len(dsts) == 0 {
		return nil, fmt.Errorf("core: no destinations available for fiber experiment")
	}
	base, err := metroCapacity(s, n, mi, dsts)
	if err != nil {
		return nil, err
	}

	// Rebuild the snapshot and splice in fiber links metro↔neighbors.
	aug := s.builders[Hybrid].At(t)
	for _, nb := range nearby {
		aug.AddLink(aug.CityNode(mi), aug.CityNode(idx(nb)), graph.LinkFiber, fiberGbps)
	}
	with, err := metroCapacity(s, aug, mi, dsts)
	if err != nil {
		return nil, err
	}
	if with < base-1e-6 {
		return nil, fmt.Errorf("core: fiber reduced max-flow (%v → %v) — impossible", base, with)
	}
	if base > 0 {
		res.ThroughputGainFrac = (with - base) / base
	}
	return res, nil
}

// metroCapacity computes the maximum traffic the metro can push to the given
// destination set (single-commodity max-flow with the per-satellite pool
// semantics).
func metroCapacity(s *Sim, n *graph.Network, metro int, dsts []int) (float64, error) {
	m, _ := flow.BuildMaxFlow(n, s.SatCapGbps)
	sink := m.AddNode()
	for _, d := range dsts {
		m.AddArc(n.CityNode(d), sink, 1e12)
	}
	return m.Solve(n.CityNode(metro), sink)
}
