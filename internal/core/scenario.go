// Package core implements the paper's contribution: the comparison of
// bent-pipe (BP) and hybrid (BP+ISL) connectivity for LEO mega-constellations
// across latency and its variability (§4), network-wide throughput (§5), and
// resilience to weather (§6), plus the quantified extensions of §7–§8.
package core

import (
	"fmt"
	"time"

	"leosim/internal/constellation"
)

// Mode selects the connectivity model under test.
type Mode uint8

const (
	// BP is bent-pipe-only connectivity: every path bounces between
	// satellites and ground terminals; no ISLs.
	BP Mode = iota
	// Hybrid adds +Grid laser ISLs to BP connectivity.
	Hybrid
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == BP {
		return "bp"
	}
	return "hybrid"
}

// MarshalText renders the mode name so Mode-keyed maps serialize to JSON
// as "bp"/"hybrid" rather than raw ints.
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText accepts the names produced by MarshalText.
func (m *Mode) UnmarshalText(b []byte) error {
	switch string(b) {
	case "bp":
		*m = BP
	case "hybrid":
		*m = Hybrid
	default:
		return fmt.Errorf("core: unknown mode %q (want bp or hybrid)", b)
	}
	return nil
}

// Scale bundles the experiment sizing knobs so tests, benchmarks and the
// full paper-scale CLI runs share every code path and differ only in size.
type Scale struct {
	Name string
	// NumCities is the number of traffic source/sink cities (paper: 1000).
	NumCities int
	// NumPairs is the number of sampled city pairs (paper: 5000).
	NumPairs int
	// MinPairKm is the minimum geodesic separation of a pair (paper:
	// 2000 km — closer pairs are served terrestrially).
	MinPairKm float64
	// RelaySpacingDeg is the transit-relay grid spacing (paper: 0.5°);
	// zero disables grid relays.
	RelaySpacingDeg float64
	// RelayMaxKm is the maximum relay distance from a city (paper: 2000).
	RelayMaxKm float64
	// AircraftDensity scales the synthetic flight schedule (1 = full).
	AircraftDensity float64
	// SnapshotStep and NumSnapshots define the simulated day (paper:
	// 15 min × 96).
	SnapshotStep time.Duration
	// NumSnapshots counts snapshots.
	NumSnapshots int
	// Seed drives pair sampling.
	Seed int64
}

// FullScale reproduces the paper's experiment sizing.
func FullScale() Scale {
	return Scale{
		Name:            "full",
		NumCities:       1000,
		NumPairs:        5000,
		MinPairKm:       2000,
		RelaySpacingDeg: 0.5,
		RelayMaxKm:      2000,
		AircraftDensity: 1,
		SnapshotStep:    15 * time.Minute,
		NumSnapshots:    96,
		Seed:            1,
	}
}

// LargeScale approaches the paper's contention level (more pairs sharing
// links) while staying tractable on a single core: minutes per experiment.
func LargeScale() Scale {
	return Scale{
		Name:            "large",
		NumCities:       400,
		NumPairs:        1200,
		MinPairKm:       2000,
		RelaySpacingDeg: 1.0,
		RelayMaxKm:      2000,
		AircraftDensity: 1,
		SnapshotStep:    30 * time.Minute,
		NumSnapshots:    24,
		Seed:            1,
	}
}

// ReducedScale runs the same pipeline in tens of seconds on a laptop.
func ReducedScale() Scale {
	return Scale{
		Name:            "reduced",
		NumCities:       150,
		NumPairs:        250,
		MinPairKm:       2000,
		RelaySpacingDeg: 2.5,
		RelayMaxKm:      2000,
		AircraftDensity: 0.5,
		SnapshotStep:    time.Hour,
		NumSnapshots:    12,
		Seed:            1,
	}
}

// TinyScale keeps unit tests fast.
func TinyScale() Scale {
	return Scale{
		Name:            "tiny",
		NumCities:       60,
		NumPairs:        60,
		MinPairKm:       2000,
		RelaySpacingDeg: 5,
		RelayMaxKm:      1500,
		AircraftDensity: 0.3,
		SnapshotStep:    2 * time.Hour,
		NumSnapshots:    4,
		Seed:            1,
	}
}

// Validate checks scale parameters.
func (s Scale) Validate() error {
	if s.NumCities < 2 {
		return fmt.Errorf("core: need ≥ 2 cities, got %d", s.NumCities)
	}
	if s.NumPairs < 1 {
		return fmt.Errorf("core: need ≥ 1 pair, got %d", s.NumPairs)
	}
	if s.SnapshotStep <= 0 {
		return fmt.Errorf("core: SnapshotStep must be positive, got %v", s.SnapshotStep)
	}
	if s.NumSnapshots < 1 {
		return fmt.Errorf("core: NumSnapshots must be ≥ 1, got %d", s.NumSnapshots)
	}
	// A schedule longer than a simulated week is almost certainly a unit
	// mistake (e.g. seconds where a Duration was meant): the experiments
	// model one day, and the constellation's ~95-minute orbits make longer
	// sweeps pure repetition.
	if span := time.Duration(s.NumSnapshots-1) * s.SnapshotStep; span > 7*24*time.Hour {
		return fmt.Errorf("core: snapshot schedule spans %v (%d × %v) — more than a simulated week; check SnapshotStep units",
			span, s.NumSnapshots, s.SnapshotStep)
	}
	if s.MinPairKm < 0 || s.AircraftDensity < 0 {
		return fmt.Errorf("core: negative scale parameter")
	}
	return nil
}

// ConstellationChoice selects which shell preset an experiment runs on.
type ConstellationChoice uint8

const (
	// Starlink is the 72×22 / 550 km / 53° phase-1 shell.
	Starlink ConstellationChoice = iota
	// Kuiper is the 34×34 / 630 km / 51.9° phase-1 shell.
	Kuiper
)

// String implements fmt.Stringer.
func (c ConstellationChoice) String() string {
	if c == Starlink {
		return "starlink"
	}
	return "kuiper"
}

// Shell returns the preset shell for the choice.
func (c ConstellationChoice) Shell() constellation.Shell {
	if c == Starlink {
		return constellation.StarlinkPhase1()
	}
	return constellation.KuiperPhase1()
}

// Band is a frequency plan for the weather experiments.
type Band struct {
	// Name labels the band in reports.
	Name string
	// UpGHz is the GT→satellite carrier frequency.
	UpGHz float64
	// DownGHz is the satellite→GT carrier frequency.
	DownGHz float64
}

// Frequency plans for §6.
var (
	// KuBand uses the Ku frequencies from Starlink's FCC filing
	// (14.25 GHz up, 11.7 GHz down) — the paper's §6 setting.
	KuBand = Band{Name: "ku", UpGHz: 14.25, DownGHz: 11.7}
	// KaBand is the gateway band §6 flags as more weather-affected
	// (typical 28.5 GHz up, 18.5 GHz down).
	KaBand = Band{Name: "ka", UpGHz: 28.5, DownGHz: 18.5}
)

// Ku-band frequencies retained as named constants for direct use.
const (
	// UplinkGHz is the Ku GT→satellite carrier frequency.
	UplinkGHz = 14.25
	// DownlinkGHz is the Ku satellite→GT carrier frequency.
	DownlinkGHz = 11.7
)
