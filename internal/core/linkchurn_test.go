package core

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRunChurnDeterministic(t *testing.T) {
	s := getTinySim(t)
	opt := ChurnOptions{Step: 2 * time.Second, Window: 20 * time.Second}
	r1, err := RunChurn(context.Background(), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunChurn(context.Background(), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("churn not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestRunChurnShape(t *testing.T) {
	s := getTinySim(t)
	r, err := RunChurn(context.Background(), s, ChurnOptions{Step: 2 * time.Second, Window: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps != 10 {
		t.Fatalf("steps = %d, want 10", r.Steps)
	}
	for _, m := range []Mode{BP, Hybrid} {
		st, ok := r.Modes[m]
		if !ok || st.PairsUsed == 0 {
			t.Fatalf("mode %s missing or empty: %+v", m, st)
		}
		if st.RouteChangesPerMin < st.UplinkHandoversPerMin {
			t.Fatalf("%s: uplink handovers (%.2f/min) exceed route changes (%.2f/min) — a handover is a route change",
				m, st.UplinkHandoversPerMin, st.RouteChangesPerMin)
		}
	}
	if r.GSLAppearPerStep < 0 || r.GSLVanishPerStep < 0 {
		t.Fatalf("negative GSL rates: %+v", r)
	}

	var sb strings.Builder
	WriteChurnReport(&sb, r)
	out := sb.String()
	for _, want := range []string{"churn window=", "GSL edges", "bp", "hybrid"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunChurnValidation(t *testing.T) {
	s := getTinySim(t)
	if _, err := RunChurn(context.Background(), s, ChurnOptions{Step: time.Minute, Window: time.Second}); err == nil {
		t.Fatal("window shorter than step accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunChurn(ctx, s, ChurnOptions{}); err != context.Canceled {
		t.Fatalf("cancelled churn returned %v", err)
	}
}
