package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunHeatmapDelhiSydney(t *testing.T) {
	scale := TinyScale()
	scale.NumCities = 150
	scale.RelaySpacingDeg = 2
	scale.RelayMaxKm = 2000
	scale.AircraftDensity = 1
	scale.NumSnapshots = 2
	s, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunHeatmap(context.Background(), s, "Delhi", "Sydney", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 10 || len(r.Rows[0]) < 10 {
		t.Fatalf("map too small: %d×%d", len(r.Rows), len(r.Rows[0]))
	}
	// The region spans both endpoints.
	if r.LatMin > -33.9 || r.LatMax < 28.7 {
		t.Errorf("latitude span [%v,%v] misses endpoints", r.LatMin, r.LatMax)
	}
	// Tropical cells attenuate more than the subtropical corners: find
	// max and min over the map and require a real gradient.
	lo, hi := r.Rows[0][0], r.Rows[0][0]
	for _, row := range r.Rows {
		for _, a := range row {
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
	}
	if hi-lo < 1 {
		t.Errorf("no attenuation gradient across the map: [%v,%v]", lo, hi)
	}
	// The BP path has intermediate ground hops; the ISL path has only
	// its two endpoints.
	if len(r.BPGroundHops) < 3 {
		t.Errorf("BP path should zig-zag: %d ground hops", len(r.BPGroundHops))
	}
	if len(r.ISLGroundHops) != 2 {
		t.Errorf("ISL path should touch ground only at endpoints, got %d", len(r.ISLGroundHops))
	}
	// Fig 7's point: some BP intermediate hop sits in a worse cell than
	// both endpoints.
	worstHop, worstEnd := r.MaxAlongBP()
	if worstHop <= worstEnd {
		t.Logf("note: BP hops avoided the wet band this snapshot (%v vs %v)", worstHop, worstEnd)
	}
	var buf bytes.Buffer
	WriteHeatmapReport(&buf, r)
	out := buf.String()
	if !strings.Contains(out, "fig7 heatmap") || !strings.Contains(out, "o") {
		t.Errorf("report missing map or hops:\n%s", out)
	}
	if _, err := RunHeatmap(context.Background(), s, "Delhi", "Sydney", 0); err == nil {
		t.Errorf("zero step must fail")
	}
	if _, err := RunHeatmap(context.Background(), s, "Delhi", "Nowhere", 3); err == nil {
		t.Errorf("unknown city must fail")
	}
}
