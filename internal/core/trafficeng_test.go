package core

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

func TestRunTrafficEngineering(t *testing.T) {
	s := getTinySim(t)
	r, err := RunTrafficEngineering(context.Background(), s, Hybrid, 4, s.SnapshotTimes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.ShortestGbps <= 0 || r.TEGbps <= 0 {
		t.Fatalf("throughputs must be positive: %+v", r)
	}
	// The greedy TE heuristic may win or lose a little at light load, but
	// must never collapse relative to the baseline.
	if r.TEGbps < 0.8*r.ShortestGbps {
		t.Errorf("TE throughput %v collapsed vs shortest %v", r.TEGbps, r.ShortestGbps)
	}
	// TE spreads load: nominal max utilization stays finite and sane.
	if r.TEMaxUtil <= 0 || math.IsInf(r.TEMaxUtil, 1) {
		t.Errorf("max utilization = %v", r.TEMaxUtil)
	}
	// TE never shortens paths below the delay-optimal baseline.
	if r.TEDelayMs < r.ShortestDelayMs-1e-9 {
		t.Errorf("TE mean delay %v below shortest-path %v — impossible",
			r.TEDelayMs, r.ShortestDelayMs)
	}
	if g := r.ThroughputGainFrac(); g < -0.2 || g > 10 {
		t.Errorf("gain fraction %v out of band", g)
	}
	var buf bytes.Buffer
	WriteTEReport(&buf, r)
	if !strings.Contains(buf.String(), "min-max-util") {
		t.Errorf("report:\n%s", buf.String())
	}
}
