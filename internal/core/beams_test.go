package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunBeamSweep(t *testing.T) {
	s := getTinySim(t)
	t0 := s.SnapshotTimes()[0]
	points, err := RunBeamSweep(context.Background(), s, []int{2, 8, 0}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	get := func(beams int, m Mode) float64 {
		for _, p := range points {
			if p.MaxGSLs == beams && p.Mode == m {
				return p.AggregateGbps
			}
		}
		t.Fatalf("missing point %d/%v", beams, m)
		return 0
	}
	// Starving beams must cost real throughput versus unlimited. (Between
	// intermediate budgets mild non-monotonicity is possible — restricting
	// the graph changes which shortest paths the router picks, a
	// Braess-like artifact — so only the starved-vs-unlimited comparison
	// is asserted.)
	for _, m := range []Mode{BP, Hybrid} {
		if get(2, m) >= get(0, m) {
			t.Errorf("%v: 2-beam throughput %v not below unlimited %v",
				m, get(2, m), get(0, m))
		}
	}
	// The starved regime hurts BP relatively more: the hybrid/BP ratio is
	// at least as high at 2 beams as unlimited.
	r2 := get(2, Hybrid) / get(2, BP)
	rInf := get(0, Hybrid) / get(0, BP)
	if r2 < rInf*0.95 {
		t.Errorf("beam scarcity should favor hybrid: ratio %v at 2 beams vs %v unlimited", r2, rInf)
	}
	var buf bytes.Buffer
	WriteBeamReport(&buf, points)
	if !strings.Contains(buf.String(), "beams") || !strings.Contains(buf.String(), "∞") {
		t.Errorf("report:\n%s", buf.String())
	}
	if _, err := RunBeamSweep(context.Background(), s, []int{-1}, t0); err == nil {
		t.Errorf("negative cap must fail")
	}
}
