package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"sync/atomic"
	"testing"

	"leosim/internal/fault"
)

// The sweep must be a pure function of (sim, scenario, fractions): two runs
// produce identical structs and byte-identical reports.
func TestRunResilienceDeterministic(t *testing.T) {
	s := getTinySim(t)
	fractions := []float64{0, 0.2}
	r1, err := RunResilience(context.Background(), s, fault.SatOutage, fractions)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunResilience(context.Background(), s, fault.SatOutage, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same sim and scenario produced different sweeps:\n%+v\n%+v", r1, r2)
	}
	var b1, b2 bytes.Buffer
	WriteResilienceReport(&b1, r1)
	WriteResilienceReport(&b2, r2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("reports differ:\n%s\n%s", b1.String(), b2.String())
	}

	// Shape: fraction-major, BP before Hybrid.
	if len(r1.Points) != 2*len(fractions) {
		t.Fatalf("points = %d, want %d", len(r1.Points), 2*len(fractions))
	}
	if r1.Points[0].Mode != BP || r1.Points[1].Mode != Hybrid {
		t.Errorf("mode order: %v %v", r1.Points[0].Mode, r1.Points[1].Mode)
	}

	// 0% failures goes through the same masked-builder path as the baseline,
	// so its row must match the healthy run exactly.
	for _, mode := range []Mode{BP, Hybrid} {
		p, ok := r1.PointAt(0, mode)
		if !ok {
			t.Fatalf("no 0%% point for %v", mode)
		}
		if p.FailedSats != 0 || p.FailedSites != 0 || p.FailedISLs != 0 {
			t.Errorf("%v: 0%% plan realized outages: %+v", mode, p)
		}
		if p.MedianInflationPct != 0 || p.P99InflationPct != 0 {
			t.Errorf("%v: 0%% inflation = %v / %v, want exactly 0", mode, p.MedianInflationPct, p.P99InflationPct)
		}
		if p.ThroughputRetention != 1 {
			t.Errorf("%v: 0%% retention = %v, want exactly 1", mode, p.ThroughputRetention)
		}
	}

	// 20% satellite outages must actually fail satellites and keep the
	// metrics in range.
	for _, mode := range []Mode{BP, Hybrid} {
		p, ok := r1.PointAt(0.2, mode)
		if !ok {
			t.Fatalf("no 20%% point for %v", mode)
		}
		if p.FailedSats == 0 {
			t.Errorf("%v: 20%% outage failed no satellites", mode)
		}
		if p.UnreachableFrac < 0 || p.UnreachableFrac > 1 {
			t.Errorf("%v: unreachable fraction %v", mode, p.UnreachableFrac)
		}
		if p.ThroughputRetention < 0 {
			t.Errorf("%v: negative retention %v", mode, p.ThroughputRetention)
		}
	}

	// The JSON path must survive possibly-infinite medians.
	if err := WriteJSON(io.Discard, "resilience", s, r1); err != nil {
		t.Errorf("JSON export: %v", err)
	}
}

func TestRunResilienceBadInput(t *testing.T) {
	s := getTinySim(t)
	if _, err := RunResilience(context.Background(), s, fault.Scenario("meteor"), nil); err == nil {
		t.Errorf("unknown scenario accepted")
	}
	if _, err := RunResilience(context.Background(), s, fault.SatOutage, []float64{}); err == nil {
		t.Errorf("empty fraction list accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := RunResilience(ctx, s, fault.SatOutage, nil); res != nil || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled sweep: got (%v, %v)", res, err)
	}
}

// Cancelling mid-sweep must return the completed fractions with Partial set.
func TestRunResilienceCancelPartial(t *testing.T) {
	s := getTinySim(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Per evaluated mode the hook fires snapshots×numSources times; the
	// baseline plus the 0% fraction are 4 evaluations. Cancelling on the
	// next call lands inside the 20% fraction, so exactly one fraction
	// completes.
	snaps := s.Scale.NumSnapshots
	if snaps > resilienceMaxSnapshots {
		snaps = resilienceMaxSnapshots
	}
	perEval := int64(snaps * numSources(s))
	var calls atomic.Int64
	pairRTTsTestHook = func(int) {
		if calls.Add(1) == 4*perEval+1 {
			cancel()
		}
	}
	defer func() { pairRTTsTestHook = nil }()

	res, err := RunResilience(ctx, s, fault.SatOutage, []float64{0, 0.2, 0.3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation after a completed fraction must return a partial sweep")
	}
	if !res.Partial {
		t.Errorf("Partial not set")
	}
	if len(res.Fractions) != 1 || res.Fractions[0] != 0 {
		t.Errorf("completed fractions = %v, want [0]", res.Fractions)
	}
	// Points must only ever hold complete fractions — never an orphan BP
	// row whose Hybrid evaluation was cancelled.
	if len(res.Points) != 2*len(res.Fractions) {
		t.Errorf("points = %d, want %d (both modes of each completed fraction)",
			len(res.Points), 2*len(res.Fractions))
	}
}
