package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"leosim/internal/fault"
)

// truncateJournal rewrites the journal keeping only the first keep records
// after the header — the deterministic stand-in for a run killed after
// exactly keep completed units.
func truncateJournal(t *testing.T, path string, keep int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < keep+1 {
		t.Fatalf("journal has %d lines, cannot keep header+%d", len(lines), keep)
	}
	if err := os.WriteFile(path, bytes.Join(lines[:keep+1], nil), 0o644); err != nil {
		t.Fatal(err)
	}
}

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// A latency run resumed from a partially-complete journal must reproduce
// the uninterrupted result exactly — same aggregation, no recomputation of
// journaled snapshots (detected here by the step count not growing past
// the snapshot count).
func TestRunLatencyResumesFromJournal(t *testing.T) {
	s := getTinySim(t)
	ctx := context.Background()
	want, err := RunLatency(ctx, s)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.journal")
	if _, err := RunLatency(WithJournal(ctx, openTestJournal(t, path)), s); err != nil {
		t.Fatal(err)
	}
	truncateJournal(t, path, 2) // "crash" after two snapshots

	j := openTestJournal(t, path)
	got, err := RunLatency(WithJournal(ctx, j), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed result differs from uninterrupted result:\n got %+v\nwant %+v", got, want)
	}
	if steps := len(j.Steps("latency")); steps != len(s.SnapshotTimes()) {
		t.Fatalf("journal holds %d latency steps, want %d (2 replayed + remainder)", steps, len(s.SnapshotTimes()))
	}
}

func TestRunDisconnectedResumesFromJournal(t *testing.T) {
	s := getTinySim(t)
	ctx := context.Background()
	want, err := RunDisconnected(ctx, s)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.journal")
	if _, err := RunDisconnected(WithJournal(ctx, openTestJournal(t, path)), s); err != nil {
		t.Fatal(err)
	}
	truncateJournal(t, path, 1)

	got, err := RunDisconnected(WithJournal(ctx, openTestJournal(t, path)), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed result differs:\n got %+v\nwant %+v", got, want)
	}
}

// The resilience sweep journals its baseline and whole fractions; resuming
// after a mid-sweep "crash" must replay both without drift — including the
// +Inf ⇔ null float round-trip for unreachable medians.
func TestRunResilienceResumesFromJournal(t *testing.T) {
	s := getTinySim(t)
	ctx := context.Background()
	fractions := []float64{0, 0.5}
	want, err := RunResilience(ctx, s, fault.SatOutage, fractions)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.journal")
	if _, err := RunResilience(WithJournal(ctx, openTestJournal(t, path)), s, fault.SatOutage, fractions); err != nil {
		t.Fatal(err)
	}
	truncateJournal(t, path, 2) // keep baseline + first fraction

	j := openTestJournal(t, path)
	got, err := RunResilience(WithJournal(ctx, j), s, fault.SatOutage, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed result differs:\n got %+v\nwant %+v", got, want)
	}
	if steps := len(j.Steps("resilience/" + string(fault.SatOutage))); steps != 1+len(fractions) {
		t.Fatalf("journal holds %d resilience steps, want %d", steps, 1+len(fractions))
	}

	// A sweep with different fractions must refuse the journal, not splice.
	if _, err := RunResilience(WithJournal(ctx, openTestJournal(t, path)), s, fault.SatOutage, []float64{0, 0.25}); err == nil {
		t.Fatal("mismatched fractions accepted from journal")
	}
}
