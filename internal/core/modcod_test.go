package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunWeatherCapacity(t *testing.T) {
	s := getTinySim(t)
	r, err := RunWeatherCapacity(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RetentionBP) == 0 || len(r.RetentionBP) != len(r.RetentionISL) {
		t.Fatalf("lengths: %d vs %d", len(r.RetentionBP), len(r.RetentionISL))
	}
	for i := range r.RetentionBP {
		if r.RetentionBP[i] < 0 || r.RetentionBP[i] > 1 ||
			r.RetentionISL[i] < 0 || r.RetentionISL[i] > 1 {
			t.Fatalf("retention out of [0,1] at %d", i)
		}
	}
	// §6 direction, translated to capacity: ISL paths retain at least as
	// much of their clear-sky rate as BP paths, on the median.
	bp, isl := r.MedianRetention()
	if isl < bp {
		t.Errorf("ISL median retention %v below BP %v", isl, bp)
	}
	// At Ku band with a 16 dB budget nobody should be in full outage.
	if r.OutageISL > r.OutageBP {
		t.Errorf("ISL outages %d exceed BP %d", r.OutageISL, r.OutageBP)
	}
	var buf bytes.Buffer
	WriteModcodReport(&buf, r)
	if !strings.Contains(buf.String(), "capacity retention") {
		t.Errorf("report:\n%s", buf.String())
	}
}
