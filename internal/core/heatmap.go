package core

import (
	"context"
	"fmt"
	"io"

	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/itur"
	"leosim/internal/safe"
)

// HeatmapResult is the Fig 7 output: a latitude-longitude grid of the
// 99.5th-percentile uplink attenuation over a region, plus the ground hops
// of a BP path and its ISL counterpart at a chosen instant, showing that the
// BP path is forced through high-attenuation cells the ISL path overflies.
type HeatmapResult struct {
	// LatMin/LatMax/LonMin/LonMax bound the mapped region.
	LatMin, LatMax, LonMin, LonMax float64
	// StepDeg is the cell size.
	StepDeg float64
	// Rows hold attenuation in dB, row-major from LatMin northward.
	Rows [][]float64
	// BPGroundHops and ISLGroundHops list (lat, lon) of each path's
	// ground-side nodes (endpoints included).
	BPGroundHops, ISLGroundHops [][2]float64
	// BPHopDelayMs gives, per BP ground hop (aligned with BPGroundHops),
	// the one-way propagation delay from the source and to the destination
	// city — where along the route each vulnerable ground bounce sits.
	BPHopDelayMs [][2]float64
}

// RunHeatmap computes the Fig 7 map for the region spanned by the named
// pair's geodesic (with margin), at the first snapshot. The paper uses
// Delhi–Sydney over south-east Asia.
func RunHeatmap(ctx context.Context, s *Sim, srcName, dstName string, stepDeg float64) (res *HeatmapResult, err error) {
	defer safe.RecoverTo(&err)
	if stepDeg <= 0 {
		return nil, fmt.Errorf("core: heatmap step must be positive")
	}
	if err := s.EnsureCity(srcName); err != nil {
		return nil, err
	}
	if err := s.EnsureCity(dstName); err != nil {
		return nil, err
	}
	src, dst := -1, -1
	for i, c := range s.Cities {
		if c.Name == srcName {
			src = i
		}
		if c.Name == dstName {
			dst = i
		}
	}
	a, b := s.Cities[src], s.Cities[dst]
	res = &HeatmapResult{
		LatMin: minF(a.Lat, b.Lat) - 5, LatMax: maxF(a.Lat, b.Lat) + 5,
		LonMin: minF(a.Lon, b.Lon) - 5, LonMax: maxF(a.Lon, b.Lon) + 5,
		StepDeg: stepDeg,
	}

	// The map: 99.5th-percentile total attenuation of a representative
	// uplink (40° elevation) from each cell.
	for lat := res.LatMin; lat <= res.LatMax; lat += stepDeg {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var row []float64
		for lon := res.LonMin; lon <= res.LonMax; lon += stepDeg {
			aDB, err := itur.TotalAttenuation(itur.LinkParams{
				LatDeg: lat, LonDeg: lon, ElevationDeg: 40,
				FreqGHz: UplinkGHz, Pol: itur.PolCircular,
			}, 0.5)
			if err != nil {
				return nil, err
			}
			row = append(row, aDB)
		}
		res.Rows = append(res.Rows, row)
	}

	// The paths at the first snapshot.
	t := s.SnapshotTimes()[0]
	bpNet := s.NetworkAt(t, BP)
	if p, ok := bpNet.ShortestPath(bpNet.CityNode(src), bpNet.CityNode(dst)); ok {
		res.BPGroundHops = groundHops(bpNet, p)
		res.BPHopDelayMs = hopDelays(bpNet, p)
	}
	hyNet := s.NetworkAt(t, Hybrid)
	if p, ok := hyNet.ShortestPathSatTransit(hyNet.CityNode(src), hyNet.CityNode(dst)); ok {
		res.ISLGroundHops = groundHops(hyNet, p)
	}
	if res.BPGroundHops == nil && res.ISLGroundHops == nil {
		return nil, fmt.Errorf("core: %s–%s unroutable at the first snapshot", srcName, dstName)
	}
	return res, nil
}

func groundHops(n *graph.Network, p graph.Path) [][2]float64 {
	var out [][2]float64
	for _, v := range p.Nodes {
		if n.IsGroundSide(v) {
			ll := geo.FromECEF(n.Pos[v])
			out = append(out, [2]float64{ll.Lat, ll.Lon})
		}
	}
	return out
}

// hopDelays annotates each ground hop of p with its one-way delay from both
// path endpoints, via one parallel two-source sweep.
func hopDelays(n *graph.Network, p graph.Path) [][2]float64 {
	ends := []int32{p.Nodes[0], p.Nodes[len(p.Nodes)-1]}
	d := n.MultiSourceDistances(ends)
	var out [][2]float64
	for _, v := range p.Nodes {
		if n.IsGroundSide(v) {
			out = append(out, [2]float64{d[0][v], d[1][v]})
		}
	}
	return out
}

// MaxAlongBP returns the worst map attenuation at the BP path's ground hops
// versus at the two endpoints — the Fig 7 story in two numbers.
func (r *HeatmapResult) MaxAlongBP() (worstHopDB, worstEndpointDB float64) {
	at := func(lat, lon float64) float64 {
		ri := int((lat - r.LatMin) / r.StepDeg)
		ci := int((lon - r.LonMin) / r.StepDeg)
		if ri < 0 || ri >= len(r.Rows) || ci < 0 || ci >= len(r.Rows[0]) {
			return 0
		}
		return r.Rows[ri][ci]
	}
	for i, hop := range r.BPGroundHops {
		a := at(hop[0], hop[1])
		if i == 0 || i == len(r.BPGroundHops)-1 {
			if a > worstEndpointDB {
				worstEndpointDB = a
			}
			continue
		}
		if a > worstHopDB {
			worstHopDB = a
		}
	}
	return worstHopDB, worstEndpointDB
}

// WriteHeatmapReport renders a coarse ASCII map with the BP ground hops
// overlaid, plus the numeric summary.
func WriteHeatmapReport(w io.Writer, r *HeatmapResult) {
	// Bucket attenuation into glyphs.
	glyph := func(a float64) byte {
		switch {
		case a < 2:
			return '.'
		case a < 3:
			return '-'
		case a < 4:
			return '+'
		case a < 5:
			return '*'
		default:
			return '#'
		}
	}
	hop := map[[2]int]bool{}
	for _, h := range r.BPGroundHops {
		hop[[2]int{int((h[0] - r.LatMin) / r.StepDeg), int((h[1] - r.LonMin) / r.StepDeg)}] = true
	}
	fmt.Fprintf(w, "fig7 heatmap (99.5th-pct uplink attenuation; . <2dB, - <3, + <4, * <5, # ≥5; o = BP ground hop):\n")
	for ri := len(r.Rows) - 1; ri >= 0; ri-- { // north at the top
		line := make([]byte, len(r.Rows[ri]))
		for ci, a := range r.Rows[ri] {
			if hop[[2]int{ri, ci}] {
				line[ci] = 'o'
			} else {
				line[ci] = glyph(a)
			}
		}
		fmt.Fprintf(w, "  %s\n", line)
	}
	worstHop, worstEnd := r.MaxAlongBP()
	fmt.Fprintf(w, "fig7 worst BP intermediate-hop cell: %.1f dB vs worst endpoint cell: %.1f dB\n",
		worstHop, worstEnd)
	fmt.Fprintf(w, "fig7 BP ground hops: %d, ISL ground hops: %d (endpoints only)\n",
		len(r.BPGroundHops), len(r.ISLGroundHops))
	if len(r.BPHopDelayMs) > 2 {
		fmt.Fprintf(w, "fig7 BP intermediate hops (one-way ms from src → to dst):")
		for _, hd := range r.BPHopDelayMs[1 : len(r.BPHopDelayMs)-1] {
			fmt.Fprintf(w, " %.1f→%.1f", hd[0], hd[1])
		}
		fmt.Fprintln(w)
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
