package core

import (
	"context"
	"fmt"
	"io"

	"leosim/internal/graph"
	"leosim/internal/safe"
	"leosim/internal/stats"
)

// PathChurnResult quantifies §4's premise that "end-to-end paths and their
// latencies change continually": the rate at which each pair's shortest path
// changes between consecutive snapshots, per mode. BP paths change for two
// reasons — satellite motion and relay/aircraft availability — and so churn
// harder than hybrid paths, which only track satellite motion.
type PathChurnResult struct {
	// ChangeFrac[mode][i] is the fraction of snapshot transitions at which
	// pair i's path changed (ground-hop sequence differs).
	ChangeFrac map[Mode][]float64
	// PairsUsed counts pairs reachable at every snapshot in both modes.
	PairsUsed int
}

// RunPathChurn traces every pair's shortest path across the day under both
// modes and measures how often the path's relay sequence changes.
func RunPathChurn(ctx context.Context, s *Sim) (res *PathChurnResult, err error) {
	defer safe.RecoverTo(&err)
	times := s.SnapshotTimes()
	if len(times) < 2 {
		return nil, fmt.Errorf("core: path churn needs ≥ 2 snapshots")
	}
	type sig = string
	prev := map[Mode][]sig{
		BP:     make([]sig, len(s.Pairs)),
		Hybrid: make([]sig, len(s.Pairs)),
	}
	changes := map[Mode][]int{
		BP:     make([]int, len(s.Pairs)),
		Hybrid: make([]int, len(s.Pairs)),
	}
	valid := make([]bool, len(s.Pairs))
	for i := range valid {
		valid[i] = true
	}

	// One incremental time cursor per mode: the sweep visits snapshots in
	// order, so each step is a cheap delta rather than a rebuild. Paths are
	// signature-extracted before the next At mutates the network in place.
	walk := map[Mode]*Walker{BP: s.NewWalker(BP), Hybrid: s.NewWalker(Hybrid)}
	for si, t := range times {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, mode := range []Mode{BP, Hybrid} {
			n := walk[mode].At(t)
			for pi, pair := range s.Pairs {
				if !valid[pi] {
					continue
				}
				p, ok := n.ShortestPath(n.CityNode(pair.Src), n.CityNode(pair.Dst))
				if !ok {
					valid[pi] = false
					continue
				}
				sg := groundSignature(n, p)
				if si > 0 && sg != prev[mode][pi] {
					changes[mode][pi]++
				}
				prev[mode][pi] = sg
			}
		}
	}

	res = &PathChurnResult{ChangeFrac: map[Mode][]float64{BP: nil, Hybrid: nil}}
	transitions := float64(len(times) - 1)
	for pi := range s.Pairs {
		if !valid[pi] {
			continue
		}
		res.PairsUsed++
		for _, mode := range []Mode{BP, Hybrid} {
			res.ChangeFrac[mode] = append(res.ChangeFrac[mode],
				float64(changes[mode][pi])/transitions)
		}
	}
	if res.PairsUsed == 0 {
		return nil, fmt.Errorf("core: no pair reachable across all snapshots")
	}
	return res, nil
}

// groundSignature identifies a path by its sequence of ground-side
// intermediate hops (relays, aircraft, transit cities). Satellite handovers
// alone — inevitable in any LEO design — do not count as a path change;
// what §4 and Fig 3 care about is the ground infrastructure the path leans
// on.
func groundSignature(n *graph.Network, p graph.Path) string {
	out := make([]byte, 0, 64)
	for _, v := range p.Nodes[1 : len(p.Nodes)-1] {
		if n.IsGroundSide(v) {
			out = append(out, n.Name[v]...)
			out = append(out, '|')
		}
	}
	return string(out)
}

// MeanChangeFrac returns the mean per-transition change rate per mode.
func (r *PathChurnResult) MeanChangeFrac(m Mode) float64 {
	return stats.Mean(r.ChangeFrac[m])
}

// WritePathChurnReport renders the churn comparison.
func WritePathChurnReport(w io.Writer, r *PathChurnResult) {
	fmt.Fprintf(w, "pathchurn pairs=%d\n", r.PairsUsed)
	for _, m := range []Mode{BP, Hybrid} {
		fmt.Fprintf(w, "pathchurn %-6s: ground-hop sequence changes on %.0f%% of transitions [%s]\n",
			m, r.MeanChangeFrac(m)*100, stats.Summarize(r.ChangeFrac[m]))
	}
}
