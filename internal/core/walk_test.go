package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"leosim/internal/fault"
	"leosim/internal/geo"
	"leosim/internal/graph"
)

// requireSameTopology asserts the walker's in-place network matches a fresh
// build on the identity surface: nodes, positions, names and the full link
// list (kind, endpoints, capacity, delay).
func requireSameTopology(t *testing.T, label string, got, want *graph.Network) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: node count %d, fresh build has %d", label, got.N(), want.N())
	}
	if !reflect.DeepEqual(got.Kind, want.Kind) || !reflect.DeepEqual(got.Name, want.Name) {
		t.Fatalf("%s: node sets differ from fresh build", label)
	}
	if !reflect.DeepEqual(got.Pos, want.Pos) {
		t.Fatalf("%s: node positions differ from fresh build", label)
	}
	if !reflect.DeepEqual(got.Links, want.Links) {
		t.Fatalf("%s: links differ from fresh build (%d vs %d)",
			label, len(got.Links), len(want.Links))
	}
}

// TestWalkerMatchesFreshBuilds drives a walker at seconds-scale steps (far
// below the scenario's snapshot step) and at snapshot-scale jumps, checking
// every visited instant against an independent fresh build.
func TestWalkerMatchesFreshBuilds(t *testing.T) {
	s := getTinySim(t)
	for _, mode := range []Mode{BP, Hybrid} {
		w := s.NewWalker(mode)
		fresh, err := s.builderWith(mode, nil)
		if err != nil {
			t.Fatal(err)
		}
		times := []time.Time{
			geo.Epoch,
			geo.Epoch.Add(1 * time.Second),
			geo.Epoch.Add(2 * time.Second),
			geo.Epoch.Add(30 * time.Second),
			geo.Epoch.Add(graph.MaxAdvanceStep + 31*time.Second), // falls back
			geo.Epoch.Add(graph.MaxAdvanceStep + 32*time.Second),
		}
		for _, tm := range times {
			requireSameTopology(t, mode.String()+"@"+tm.Format("15:04:05"),
				w.At(tm), fresh.At(tm))
		}
		if d := w.LastDelta(); d == nil {
			t.Fatal("no delta after the final step")
		}
		st := w.Stats()
		if st.Steps != len(times)-1 {
			t.Fatalf("stats: %d steps, want %d", st.Steps, len(times)-1)
		}
		// The jump past MaxAdvanceStep must have fallen back (the tiny
		// scale's aircraft schedule may force additional rebuilds at other
		// steps — that is the advancer's call, identity is what matters).
		if st.FullRebuilds < 1 {
			t.Fatal("stats: the large jump did not register a full rebuild")
		}
	}
}

// TestFaultedWalkerMatchesBuildNetworkAt checks the resilience sweep's
// walker: a masked advance must equal a masked fresh build.
func TestFaultedWalkerMatchesBuildNetworkAt(t *testing.T) {
	s := getTinySim(t)
	plan, err := fault.ForScenario(fault.SatOutage, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	outages, err := plan.Realize(s.Const, len(s.Seg.Terminals))
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.NewFaultedWalker(Hybrid, outages)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tm := geo.Epoch.Add(time.Duration(i) * 10 * time.Second)
		want, err := s.BuildNetworkAt(context.Background(), tm, Hybrid, outages)
		if err != nil {
			t.Fatal(err)
		}
		requireSameTopology(t, "masked@"+tm.Format("15:04:05"), w.At(tm), want)
	}
}

// TestWalkerLastDelta checks the delta surface experiments consume: nil
// before any step, populated after incremental steps, flagged on fallbacks.
func TestWalkerLastDelta(t *testing.T) {
	s := getTinySim(t)
	w := s.NewWalker(BP)
	if w.LastDelta() != nil {
		t.Fatal("LastDelta non-nil before the first At")
	}
	if st := w.Stats(); st != (graph.AdvanceStats{}) {
		t.Fatalf("zero-value walker has stats %+v", st)
	}
	w.At(geo.Epoch)
	if w.LastDelta() != nil {
		t.Fatal("LastDelta non-nil after the anchoring build")
	}
	w.At(geo.Epoch.Add(time.Second))
	d := w.LastDelta()
	if d == nil || d.FullRebuild {
		t.Fatalf("seconds-scale step: delta %+v, want incremental", d)
	}
	if d.From != geo.Epoch || d.To != geo.Epoch.Add(time.Second) {
		t.Fatalf("delta bounds [%v, %v] don't match the step", d.From, d.To)
	}
	w.At(geo.Epoch) // backwards: must fall back, not corrupt
	d = w.LastDelta()
	if d == nil || !d.FullRebuild || d.Reason != "backwards-step" {
		t.Fatalf("backwards step: delta %+v, want full rebuild", d)
	}
}

// TestWalkVisitsInOrder checks Sim.Walk's contract: every instant visited in
// order, cancellation honoured between steps, visit errors propagated.
func TestWalkVisitsInOrder(t *testing.T) {
	s := getTinySim(t)
	times := s.SnapshotTimes()[:3]
	var visited []time.Time
	err := s.Walk(context.Background(), Hybrid, times, func(tm time.Time, n *graph.Network) error {
		if n == nil || n.N() == 0 {
			t.Fatalf("empty network at %v", tm)
		}
		visited = append(visited, tm)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(visited, times) {
		t.Fatalf("visited %v, want %v", visited, times)
	}

	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err = s.Walk(ctx, BP, times, func(time.Time, *graph.Network) error {
		calls++
		cancel()
		return nil
	})
	if err != context.Canceled || calls != 1 {
		t.Fatalf("cancelled walk: err=%v calls=%d, want context.Canceled after 1", err, calls)
	}
}
