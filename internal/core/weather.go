package core

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/itur"
	"leosim/internal/safe"
	"leosim/internal/stats"
	"leosim/internal/telemetry"
)

// WeatherResult holds the §6 experiment output.
type WeatherResult struct {
	// P995BP and P995ISL are, per pair, the attenuation (dB) exceeded
	// 0.5% of the time (the "99.5th percentile attenuation"), combining
	// the weather statistics of the links the path actually used across
	// the day's snapshots. BP paths report the worst radio link of the
	// zig-zag; ISL paths report the worse of the first/last hop only.
	P995BP, P995ISL []float64
	// PairsUsed counts pairs reachable in both models in ≥ 1 snapshot.
	PairsUsed int
}

// pathCurve computes the attenuation exceedance curve of a routed path: the
// pointwise-worst curve over its radio (GSL) links. ISLs contribute nothing
// (lasers above the atmosphere); the model assumes signal regeneration at
// each GT (§6), so attenuations do not accumulate multiplicatively.
//
// Direction matters for frequency: hops from a terminal up to a satellite
// use the uplink frequency, hops down use the downlink frequency, evaluated
// at the terminal end's location and elevation.
func pathCurve(n *graph.Network, p graph.Path, band Band) (itur.Curve, error) {
	curves := make([]itur.Curve, 0, len(p.Links))
	for i, li := range p.Links {
		l := n.Links[li]
		if l.Kind != graph.LinkGSL {
			continue
		}
		from := p.Nodes[i]
		to := p.Nodes[i+1]
		term, sat := from, to
		freq := band.UpGHz // terminal transmits up
		if n.Kind[from] == graph.NodeSatellite {
			term, sat = to, from
			freq = band.DownGHz // satellite transmits down to the terminal
		}
		tll := geo.FromECEF(n.Pos[term])
		lp := itur.LinkParams{
			LatDeg:          tll.Lat,
			LonDeg:          tll.Lon,
			ElevationDeg:    math.Max(geo.Elevation(n.Pos[term], n.Pos[sat]), 5),
			FreqGHz:         freq,
			Pol:             itur.PolCircular,
			StationHeightKm: math.Max(tll.Alt, 0),
		}
		c, err := itur.NewCurve(lp)
		if err != nil {
			return itur.Curve{}, err
		}
		curves = append(curves, c)
	}
	if len(curves) == 0 {
		return itur.ZeroCurve(), nil
	}
	return itur.WorstOf(curves...), nil
}

// weatherCurves computes, for each pair, the per-snapshot path attenuation
// curves under the BP model (worst link of the zig-zag shortest path) and
// the pure-ISL model (worst of first/last hop of the satellite-transit-only
// shortest path). The snapshot loop is outermost so each network is built
// exactly once.
func weatherCurves(ctx context.Context, s *Sim, pairs []Pair, band Band) (bp, isl [][]itur.Curve, err error) {
	defer safe.RecoverTo(&err)
	bp = make([][]itur.Curve, len(pairs))
	isl = make([][]itur.Curve, len(pairs))
	times := s.SnapshotTimes()
	prog := telemetry.NewProgress(Progress, "weather", len(times))
	defer prog.Finish()
	for _, t := range times {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		bpNet := s.NetworkAtCtx(ctx, t, BP)
		hyNet := s.NetworkAtCtx(ctx, t, Hybrid)
		// Recorder-only span over the per-snapshot curve fan-out; the
		// per-curve cost feeds the registry histogram from itur.NewCurve.
		sp := telemetry.RecordSpan(ctx, telemetry.StageWeather)
		g := safe.NewGroup(ctx, runtime.GOMAXPROCS(0))
		for pi := range pairs {
			pi := pi
			g.Go(func() error {
				pair := pairs[pi]
				if p, found := bpNet.ShortestPath(bpNet.CityNode(pair.Src), bpNet.CityNode(pair.Dst)); found {
					c, cerr := pathCurve(bpNet, p, band)
					if cerr != nil {
						return cerr
					}
					bp[pi] = append(bp[pi], c) // pi is this worker's slot
				}
				if p, found := hyNet.ShortestPathSatTransit(hyNet.CityNode(pair.Src), hyNet.CityNode(pair.Dst)); found {
					c, cerr := pathCurve(hyNet, p, band)
					if cerr != nil {
						return cerr
					}
					isl[pi] = append(isl[pi], c)
				}
				return nil
			})
		}
		err := g.Wait()
		sp.End()
		if err != nil {
			return nil, nil, err
		}
		prog.Step(1)
	}
	return bp, isl, nil
}

// RunWeather runs the Fig 6 experiment at Ku band: for every pair, the
// 99.5th percentile attenuation (A at p=0.5%) of BP versus ISL paths.
func RunWeather(ctx context.Context, s *Sim) (*WeatherResult, error) {
	return RunWeatherBand(ctx, s, KuBand)
}

// RunWeatherBand runs Fig 6 at an arbitrary frequency plan. §6 notes the
// difference "would be even higher for Ka-band communication (intended for
// use for larger terrestrial gateways), which is affected more by weather";
// pass KaBand to quantify that.
func RunWeatherBand(ctx context.Context, s *Sim, band Band) (*WeatherResult, error) {
	bp, isl, err := weatherCurves(ctx, s, s.Pairs, band)
	if err != nil {
		return nil, err
	}
	res := &WeatherResult{}
	for pi := range s.Pairs {
		if len(bp[pi]) == 0 || len(isl[pi]) == 0 {
			continue
		}
		res.PairsUsed++
		res.P995BP = append(res.P995BP, itur.CombineOverTime(bp[pi]).At(0.5))
		res.P995ISL = append(res.P995ISL, itur.CombineOverTime(isl[pi]).At(0.5))
	}
	if res.PairsUsed == 0 {
		return nil, fmt.Errorf("core: no pair routable in both weather models")
	}
	return res, nil
}

// MedianAdvantageDB returns how many dB lower the ISL median attenuation is
// (§6: "the median with ISLs is more than 1 dB lower").
func (r *WeatherResult) MedianAdvantageDB() float64 {
	return stats.Percentile(r.P995BP, 50) - stats.Percentile(r.P995ISL, 50)
}

// PairWeather is the Fig 7/8 output for one named pair (Delhi–Sydney in the
// paper): full day-combined exceedance curves for both models.
type PairWeather struct {
	SrcCity, DstCity  string
	BPCurve, ISLCurve itur.Curve
}

// RunPairWeather computes the Fig 8 curves for one named city pair. Both
// cities are added to the sim's city set if missing (the paper notes
// Delhi–Sydney is not among the sampled pairs).
func RunPairWeather(ctx context.Context, s *Sim, srcName, dstName string) (*PairWeather, error) {
	if err := s.EnsureCity(srcName); err != nil {
		return nil, err
	}
	if err := s.EnsureCity(dstName); err != nil {
		return nil, err
	}
	src, dst := -1, -1
	for i, c := range s.Cities {
		if c.Name == srcName {
			src = i
		}
		if c.Name == dstName {
			dst = i
		}
	}
	bp, isl, err := weatherCurves(ctx, s, []Pair{{Src: src, Dst: dst}}, KuBand)
	if err != nil {
		return nil, err
	}
	if len(bp[0]) == 0 || len(isl[0]) == 0 {
		return nil, fmt.Errorf("core: %s–%s unroutable in one of the models", srcName, dstName)
	}
	return &PairWeather{
		SrcCity: srcName, DstCity: dstName,
		BPCurve:  itur.CombineOverTime(bp[0]),
		ISLCurve: itur.CombineOverTime(isl[0]),
	}, nil
}

// At1Percent reports the attenuations exceeded 1% of the time and the
// implied received-power fractions (§6 Fig 8: BP 5 dB vs ISL 2.2 dB at 1%
// of the time on Delhi–Sydney).
func (p *PairWeather) At1Percent() (bpDB, islDB, bpPower, islPower float64) {
	bpDB = p.BPCurve.At(1)
	islDB = p.ISLCurve.At(1)
	return bpDB, islDB, itur.ReceivedPowerFraction(bpDB), itur.ReceivedPowerFraction(islDB)
}
