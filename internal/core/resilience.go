package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"leosim/internal/fault"
	"leosim/internal/safe"
	"leosim/internal/stats"
	"leosim/internal/telemetry"
)

// resilienceMaxSnapshots caps how many snapshots each sweep point evaluates:
// enough to average over constellation motion without multiplying the sweep
// cost by the full day.
const resilienceMaxSnapshots = 4

// resilienceK is the multipath degree of the throughput model (§5's k=4).
const resilienceK = 4

// DefaultFaultFractions is the 0–30% failure sweep the resilience
// experiment runs by default.
func DefaultFaultFractions() []float64 {
	return []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
}

// ResiliencePoint is one cell of the sweep: one failure fraction under one
// connectivity mode.
type ResiliencePoint struct {
	Fraction float64
	Mode     Mode
	// FailedSats/FailedSites/FailedISLs count the concrete outages the
	// seeded plan realized at this fraction.
	FailedSats, FailedSites, FailedISLs int
	// MedianRTTMs and P99RTTMs summarize per-pair best RTTs over the
	// evaluated snapshots (reachable pairs only).
	MedianRTTMs, P99RTTMs float64
	// MedianInflationPct and P99InflationPct are the percentage increases
	// over this mode's 0%-failure baseline.
	MedianInflationPct, P99InflationPct float64
	// UnreachableFrac is the fraction of sampled pairs with no path in any
	// evaluated snapshot.
	UnreachableFrac float64
	// ThroughputGbps is the max-min aggregate at the first snapshot;
	// ThroughputRetention is its ratio to the mode's healthy baseline.
	ThroughputGbps, ThroughputRetention float64
}

// ResilienceResult is the fault-injection sweep output: how BP and Hybrid
// connectivity degrade as a growing fraction of a resource fails.
type ResilienceResult struct {
	Scenario  fault.Scenario
	Seed      int64
	Fractions []float64
	// Points is fraction-major, BP before Hybrid within each fraction.
	Points []ResiliencePoint
	// SnapshotsUsed is how many snapshots each point averaged over.
	SnapshotsUsed int
	// Partial marks a sweep cut short by cancellation: Points holds the
	// completed fractions only.
	Partial bool
}

// resilienceSeed derives the outage seed for sweep point i so each fraction
// draws an independent (but reproducible) failure set.
func resilienceSeed(base int64, i int) int64 {
	return base*1_000_003 + int64(i)
}

// modeEval holds one mode's aggregate metrics at one sweep point.
type modeEval struct {
	median, p99, unreachable, tput float64
}

// RunResilience sweeps a failure scenario over the given fractions (nil =
// DefaultFaultFractions) and reports, per fraction and mode, latency
// inflation, unreachable-pair fraction and throughput retention relative to
// the healthy baseline. The baseline itself is evaluated through the same
// masked-builder path with a zero fault plan, so the 0% row is identical to
// an unfaulted run by construction. Outages are drawn deterministically from
// the sim's scale seed: the same sim and scenario always produce the same
// sweep, byte for byte.
//
// Cancelling ctx stops the sweep at the next fraction boundary; completed
// fractions are returned with Partial set, alongside ctx.Err().
func RunResilience(ctx context.Context, s *Sim, scenario fault.Scenario, fractions []float64) (res *ResilienceResult, err error) {
	defer safe.RecoverTo(&err)
	if !scenario.Valid() {
		return nil, fmt.Errorf("core: unknown fault scenario %q (want one of %v)",
			scenario, fault.Scenarios())
	}
	if fractions == nil {
		fractions = DefaultFaultFractions()
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("core: no failure fractions to sweep")
	}
	times := s.SnapshotTimes()
	if len(times) == 0 {
		return nil, fmt.Errorf("core: no snapshots to simulate (NumSnapshots = %d)",
			s.Scale.NumSnapshots)
	}
	if len(times) > resilienceMaxSnapshots {
		times = times[:resilienceMaxSnapshots]
	}

	res = &ResilienceResult{
		Scenario:      scenario,
		Seed:          s.Scale.Seed,
		SnapshotsUsed: len(times),
	}

	// A journaled run replays the baseline and completed fractions from a
	// previous (crashed or killed) run. Only whole fractions are journaled,
	// mirroring the live invariant that Points never holds half a fraction.
	jour := JournalFrom(ctx)
	jkey := "resilience/" + string(scenario)
	var steps []json.RawMessage
	if jour != nil {
		steps = jour.Steps(jkey)
		if len(steps) > 0 {
			telemetry.EmitEvent(ctx, telemetry.CatJournal, telemetry.SevInfo,
				"journal replay: steps restored from previous run",
				telemetry.Str("experiment", jkey),
				telemetry.Int64("steps", int64(len(steps))))
		}
	}

	// Healthy baseline through the identical code path (zero plan).
	baseline := map[Mode]modeEval{}
	if len(steps) > 0 {
		b, jerr := resilienceBaselineFromJournal(steps[0])
		if jerr != nil {
			return nil, jerr
		}
		baseline = b
		steps = steps[1:]
	} else {
		for _, mode := range []Mode{BP, Hybrid} {
			ev, err := s.evalFaulted(ctx, mode, nil, times)
			if err != nil {
				return nil, err
			}
			baseline[mode] = *ev
		}
		if jour != nil {
			if jerr := jour.Step(jkey, resilienceBaselineToJournal(baseline)); jerr != nil {
				return nil, jerr
			}
		}
	}

	prog := telemetry.NewProgress(Progress, "resilience", len(fractions))
	defer prog.Finish()
	start := 0
	for _, raw := range steps {
		if start >= len(fractions) {
			break
		}
		pts, frac, jerr := resilienceFractionFromJournal(raw)
		if jerr != nil {
			return nil, jerr
		}
		if frac != fractions[start] {
			return nil, fmt.Errorf("core: journal resilience fraction %g, sweep expects %g — journal from a different sweep?",
				frac, fractions[start])
		}
		res.Points = append(res.Points, pts...)
		res.Fractions = append(res.Fractions, frac)
		start++
		prog.Step(1)
	}
	for i := start; i < len(fractions); i++ {
		frac := fractions[i]
		if ctx.Err() != nil && len(res.Fractions) > 0 {
			res.Partial = true
			return res, ctx.Err()
		}
		plan, err := fault.ForScenario(scenario, frac, resilienceSeed(s.Scale.Seed, i))
		if err != nil {
			return nil, err
		}
		fsp := telemetry.RecordSpan(ctx, telemetry.StageFaultRealize)
		outages, err := plan.Realize(s.Const, len(s.Seg.Terminals))
		fsp.End()
		if err != nil {
			return nil, err
		}
		progressf("resilience %s %.0f%%: %d sats, %d sites, %d lasers down\n",
			scenario, frac*100, outages.NumFailedSats(), outages.NumFailedSites(),
			outages.NumFailedISLs())
		for _, mode := range []Mode{BP, Hybrid} {
			ev, err := s.evalFaulted(ctx, mode, outages, times)
			if err != nil {
				if ctx.Err() != nil && len(res.Fractions) > 0 {
					// Drop this fraction's already-evaluated modes so
					// Points only ever holds complete fractions.
					res.Points = res.Points[:2*len(res.Fractions)]
					res.Partial = true
					return res, ctx.Err()
				}
				return nil, err
			}
			base := baseline[mode]
			res.Points = append(res.Points, ResiliencePoint{
				Fraction:            frac,
				Mode:                mode,
				FailedSats:          outages.NumFailedSats(),
				FailedSites:         outages.NumFailedSites(),
				FailedISLs:          outages.NumFailedISLs(),
				MedianRTTMs:         ev.median,
				P99RTTMs:            ev.p99,
				MedianInflationPct:  pctIncrease(base.median, ev.median),
				P99InflationPct:     pctIncrease(base.p99, ev.p99),
				UnreachableFrac:     ev.unreachable,
				ThroughputGbps:      ev.tput,
				ThroughputRetention: retention(ev.tput, base.tput),
			})
		}
		if jour != nil {
			if jerr := jour.Step(jkey, resilienceFractionToJournal(frac, res.Points[len(res.Points)-2:])); jerr != nil {
				return nil, jerr
			}
		}
		res.Fractions = append(res.Fractions, frac)
		prog.Step(1)
	}
	return res, nil
}

// ---- journal payloads ----------------------------------------------------
//
// Journal floats use *float64 with nil ⇔ +Inf (see journal.go); modes are
// stored as their integer values for exact round-trips.

type resilienceEvalJSON struct {
	Median      *float64 `json:"median"`
	P99         *float64 `json:"p99"`
	Unreachable float64  `json:"unreachable"`
	Tput        float64  `json:"tput"`
}

type resiliencePointJSON struct {
	Fraction            float64  `json:"fraction"`
	Mode                int      `json:"mode"`
	FailedSats          int      `json:"failedSats"`
	FailedSites         int      `json:"failedSites"`
	FailedISLs          int      `json:"failedIsls"`
	MedianRTTMs         *float64 `json:"medianRttMs"`
	P99RTTMs            *float64 `json:"p99RttMs"`
	MedianInflationPct  *float64 `json:"medianInflationPct"`
	P99InflationPct     *float64 `json:"p99InflationPct"`
	UnreachableFrac     float64  `json:"unreachableFrac"`
	ThroughputGbps      float64  `json:"throughputGbps"`
	ThroughputRetention float64  `json:"throughputRetention"`
}

type resilienceJournalStep struct {
	// Baseline is set on the sweep's first step only.
	BaselineBP     *resilienceEvalJSON `json:"baselineBp,omitempty"`
	BaselineHybrid *resilienceEvalJSON `json:"baselineHybrid,omitempty"`
	// Fraction/Points describe one completed sweep fraction (both modes).
	Fraction *float64              `json:"fraction,omitempty"`
	Points   []resiliencePointJSON `json:"points,omitempty"`
}

func resilienceBaselineToJournal(baseline map[Mode]modeEval) resilienceJournalStep {
	conv := func(ev modeEval) *resilienceEvalJSON {
		return &resilienceEvalJSON{
			Median: finiteOrNil(ev.median), P99: finiteOrNil(ev.p99),
			Unreachable: ev.unreachable, Tput: ev.tput,
		}
	}
	bp, hy := baseline[BP], baseline[Hybrid]
	return resilienceJournalStep{BaselineBP: conv(bp), BaselineHybrid: conv(hy)}
}

func resilienceBaselineFromJournal(raw json.RawMessage) (map[Mode]modeEval, error) {
	var st resilienceJournalStep
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("core: journal resilience baseline: %w", err)
	}
	if st.BaselineBP == nil || st.BaselineHybrid == nil {
		return nil, fmt.Errorf("core: journal resilience sweep is missing its baseline step")
	}
	conv := func(e *resilienceEvalJSON) modeEval {
		return modeEval{
			median: infOrVal(e.Median), p99: infOrVal(e.P99),
			unreachable: e.Unreachable, tput: e.Tput,
		}
	}
	return map[Mode]modeEval{BP: conv(st.BaselineBP), Hybrid: conv(st.BaselineHybrid)}, nil
}

func resilienceFractionToJournal(frac float64, pts []ResiliencePoint) resilienceJournalStep {
	st := resilienceJournalStep{Fraction: &frac}
	for _, p := range pts {
		st.Points = append(st.Points, resiliencePointJSON{
			Fraction: p.Fraction, Mode: int(p.Mode),
			FailedSats: p.FailedSats, FailedSites: p.FailedSites, FailedISLs: p.FailedISLs,
			MedianRTTMs: finiteOrNil(p.MedianRTTMs), P99RTTMs: finiteOrNil(p.P99RTTMs),
			MedianInflationPct: finiteOrNil(p.MedianInflationPct),
			P99InflationPct:    finiteOrNil(p.P99InflationPct),
			UnreachableFrac:    p.UnreachableFrac,
			ThroughputGbps:     p.ThroughputGbps, ThroughputRetention: p.ThroughputRetention,
		})
	}
	return st
}

func resilienceFractionFromJournal(raw json.RawMessage) ([]ResiliencePoint, float64, error) {
	var st resilienceJournalStep
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, 0, fmt.Errorf("core: journal resilience step: %w", err)
	}
	if st.Fraction == nil || len(st.Points) != 2 {
		return nil, 0, fmt.Errorf("core: journal resilience step is not a completed fraction")
	}
	pts := make([]ResiliencePoint, len(st.Points))
	for i, p := range st.Points {
		pts[i] = ResiliencePoint{
			Fraction: p.Fraction, Mode: Mode(p.Mode),
			FailedSats: p.FailedSats, FailedSites: p.FailedSites, FailedISLs: p.FailedISLs,
			MedianRTTMs: infOrVal(p.MedianRTTMs), P99RTTMs: infOrVal(p.P99RTTMs),
			MedianInflationPct: infOrVal(p.MedianInflationPct),
			P99InflationPct:    infOrVal(p.P99InflationPct),
			UnreachableFrac:    p.UnreachableFrac,
			ThroughputGbps:     p.ThroughputGbps, ThroughputRetention: p.ThroughputRetention,
		}
	}
	return pts, *st.Fraction, nil
}

func retention(val, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return val / base
}

// evalFaulted evaluates one mode under one outage set (nil = healthy): it
// walks masked snapshots derived from the sim's base options, measures
// per-pair best RTTs and reachability across the snapshots, and runs the §5
// throughput model at the first one.
func (s *Sim) evalFaulted(ctx context.Context, mode Mode, outages *fault.Outages, times []time.Time) (*modeEval, error) {
	w, err := s.NewFaultedWalker(mode, outages)
	if err != nil {
		return nil, err
	}
	best := fill(len(s.Pairs), math.Inf(1))
	ev := &modeEval{}
	for si, t := range times {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := w.At(t)
		// The walker mutates its network in place on the next step, so the
		// first snapshot's throughput model must run before advancing — it
		// can no longer be deferred past the loop.
		if si == 0 {
			tp, err := throughputOn(ctx, s, n, resilienceK)
			if err != nil {
				return nil, err
			}
			ev.tput = tp.AggregateGbps
		}
		rtts, err := s.pairRTTs(ctx, n, false)
		if err != nil {
			return nil, err
		}
		for i, r := range rtts {
			if r < best[i] {
				best[i] = r
			}
		}
	}
	var reachable []float64
	for _, r := range best {
		if math.IsInf(r, 1) {
			continue
		}
		reachable = append(reachable, r)
	}
	ev.unreachable = 1 - float64(len(reachable))/float64(len(best))
	if len(reachable) > 0 {
		ev.median = stats.Percentile(reachable, 50)
		ev.p99 = stats.Percentile(reachable, 99)
	} else {
		ev.median, ev.p99 = math.Inf(1), math.Inf(1)
	}
	return ev, nil
}

// BPPoint and HybridPoint fetch the two rows of one fraction (helpers for
// reports and tests); ok is false if the fraction is absent.
func (r *ResilienceResult) PointAt(frac float64, mode Mode) (ResiliencePoint, bool) {
	for _, p := range r.Points {
		if p.Fraction == frac && p.Mode == mode {
			return p, true
		}
	}
	return ResiliencePoint{}, false
}

// WriteResilienceReport renders the BP-vs-Hybrid degradation table.
func WriteResilienceReport(w io.Writer, r *ResilienceResult) {
	fmt.Fprintf(w, "resilience scenario=%s seed=%d snapshots=%d\n",
		r.Scenario, r.Seed, r.SnapshotsUsed)
	if r.Partial {
		fmt.Fprintf(w, "resilience PARTIAL: %d of requested fractions completed\n", len(r.Fractions))
	}
	fmt.Fprintf(w, "resilience  frac  mode    medRTT    p99RTT   med-infl   p99-infl  unreach  tput-Gbps  retention\n")
	for _, p := range r.Points {
		fmt.Fprintf(w, "resilience %4.0f%%  %-6s %7.1fms %8.1fms %+9.1f%% %+9.1f%%  %6.1f%%  %9.1f  %8.0f%%\n",
			p.Fraction*100, p.Mode, p.MedianRTTMs, p.P99RTTMs,
			p.MedianInflationPct, p.P99InflationPct, p.UnreachableFrac*100,
			p.ThroughputGbps, p.ThroughputRetention*100)
	}
}
