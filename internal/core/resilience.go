package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"leosim/internal/fault"
	"leosim/internal/graph"
	"leosim/internal/safe"
	"leosim/internal/stats"
	"leosim/internal/telemetry"
)

// resilienceMaxSnapshots caps how many snapshots each sweep point evaluates:
// enough to average over constellation motion without multiplying the sweep
// cost by the full day.
const resilienceMaxSnapshots = 4

// resilienceK is the multipath degree of the throughput model (§5's k=4).
const resilienceK = 4

// DefaultFaultFractions is the 0–30% failure sweep the resilience
// experiment runs by default.
func DefaultFaultFractions() []float64 {
	return []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
}

// ResiliencePoint is one cell of the sweep: one failure fraction under one
// connectivity mode.
type ResiliencePoint struct {
	Fraction float64
	Mode     Mode
	// FailedSats/FailedSites/FailedISLs count the concrete outages the
	// seeded plan realized at this fraction.
	FailedSats, FailedSites, FailedISLs int
	// MedianRTTMs and P99RTTMs summarize per-pair best RTTs over the
	// evaluated snapshots (reachable pairs only).
	MedianRTTMs, P99RTTMs float64
	// MedianInflationPct and P99InflationPct are the percentage increases
	// over this mode's 0%-failure baseline.
	MedianInflationPct, P99InflationPct float64
	// UnreachableFrac is the fraction of sampled pairs with no path in any
	// evaluated snapshot.
	UnreachableFrac float64
	// ThroughputGbps is the max-min aggregate at the first snapshot;
	// ThroughputRetention is its ratio to the mode's healthy baseline.
	ThroughputGbps, ThroughputRetention float64
}

// ResilienceResult is the fault-injection sweep output: how BP and Hybrid
// connectivity degrade as a growing fraction of a resource fails.
type ResilienceResult struct {
	Scenario  fault.Scenario
	Seed      int64
	Fractions []float64
	// Points is fraction-major, BP before Hybrid within each fraction.
	Points []ResiliencePoint
	// SnapshotsUsed is how many snapshots each point averaged over.
	SnapshotsUsed int
	// Partial marks a sweep cut short by cancellation: Points holds the
	// completed fractions only.
	Partial bool
}

// resilienceSeed derives the outage seed for sweep point i so each fraction
// draws an independent (but reproducible) failure set.
func resilienceSeed(base int64, i int) int64 {
	return base*1_000_003 + int64(i)
}

// modeEval holds one mode's aggregate metrics at one sweep point.
type modeEval struct {
	median, p99, unreachable, tput float64
}

// RunResilience sweeps a failure scenario over the given fractions (nil =
// DefaultFaultFractions) and reports, per fraction and mode, latency
// inflation, unreachable-pair fraction and throughput retention relative to
// the healthy baseline. The baseline itself is evaluated through the same
// masked-builder path with a zero fault plan, so the 0% row is identical to
// an unfaulted run by construction. Outages are drawn deterministically from
// the sim's scale seed: the same sim and scenario always produce the same
// sweep, byte for byte.
//
// Cancelling ctx stops the sweep at the next fraction boundary; completed
// fractions are returned with Partial set, alongside ctx.Err().
func RunResilience(ctx context.Context, s *Sim, scenario fault.Scenario, fractions []float64) (res *ResilienceResult, err error) {
	defer safe.RecoverTo(&err)
	if !scenario.Valid() {
		return nil, fmt.Errorf("core: unknown fault scenario %q (want one of %v)",
			scenario, fault.Scenarios())
	}
	if fractions == nil {
		fractions = DefaultFaultFractions()
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("core: no failure fractions to sweep")
	}
	times := s.SnapshotTimes()
	if len(times) == 0 {
		return nil, fmt.Errorf("core: no snapshots to simulate (NumSnapshots = %d)",
			s.Scale.NumSnapshots)
	}
	if len(times) > resilienceMaxSnapshots {
		times = times[:resilienceMaxSnapshots]
	}

	res = &ResilienceResult{
		Scenario:      scenario,
		Seed:          s.Scale.Seed,
		SnapshotsUsed: len(times),
	}

	// Healthy baseline through the identical code path (zero plan).
	baseline := map[Mode]modeEval{}
	for _, mode := range []Mode{BP, Hybrid} {
		ev, err := s.evalFaulted(ctx, mode, nil, times)
		if err != nil {
			return nil, err
		}
		baseline[mode] = *ev
	}

	prog := telemetry.NewProgress(Progress, "resilience", len(fractions))
	defer prog.Finish()
	for i, frac := range fractions {
		if ctx.Err() != nil && len(res.Fractions) > 0 {
			res.Partial = true
			return res, ctx.Err()
		}
		plan, err := fault.ForScenario(scenario, frac, resilienceSeed(s.Scale.Seed, i))
		if err != nil {
			return nil, err
		}
		fsp := telemetry.RecordSpan(ctx, telemetry.StageFaultRealize)
		outages, err := plan.Realize(s.Const, len(s.Seg.Terminals))
		fsp.End()
		if err != nil {
			return nil, err
		}
		progressf("resilience %s %.0f%%: %d sats, %d sites, %d lasers down\n",
			scenario, frac*100, outages.NumFailedSats(), outages.NumFailedSites(),
			outages.NumFailedISLs())
		for _, mode := range []Mode{BP, Hybrid} {
			ev, err := s.evalFaulted(ctx, mode, outages, times)
			if err != nil {
				if ctx.Err() != nil && len(res.Fractions) > 0 {
					// Drop this fraction's already-evaluated modes so
					// Points only ever holds complete fractions.
					res.Points = res.Points[:2*len(res.Fractions)]
					res.Partial = true
					return res, ctx.Err()
				}
				return nil, err
			}
			base := baseline[mode]
			res.Points = append(res.Points, ResiliencePoint{
				Fraction:            frac,
				Mode:                mode,
				FailedSats:          outages.NumFailedSats(),
				FailedSites:         outages.NumFailedSites(),
				FailedISLs:          outages.NumFailedISLs(),
				MedianRTTMs:         ev.median,
				P99RTTMs:            ev.p99,
				MedianInflationPct:  pctIncrease(base.median, ev.median),
				P99InflationPct:     pctIncrease(base.p99, ev.p99),
				UnreachableFrac:     ev.unreachable,
				ThroughputGbps:      ev.tput,
				ThroughputRetention: retention(ev.tput, base.tput),
			})
		}
		res.Fractions = append(res.Fractions, frac)
		prog.Step(1)
	}
	return res, nil
}

func retention(val, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return val / base
}

// evalFaulted evaluates one mode under one outage set (nil = healthy): it
// builds masked snapshots from the sim's base options, measures per-pair
// best RTTs and reachability across the snapshots, and runs the §5
// throughput model at the first one.
func (s *Sim) evalFaulted(ctx context.Context, mode Mode, outages *fault.Outages, times []time.Time) (*modeEval, error) {
	b, err := s.builderWith(mode, func(o *graph.BuildOptions) {
		if outages != nil {
			o.Mask = outages.Mask
		}
	})
	if err != nil {
		return nil, err
	}
	best := fill(len(s.Pairs), math.Inf(1))
	var first *graph.Network
	for _, t := range times {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := b.At(t)
		if first == nil {
			first = n
		}
		rtts, err := s.pairRTTs(ctx, n, false)
		if err != nil {
			return nil, err
		}
		for i, r := range rtts {
			if r < best[i] {
				best[i] = r
			}
		}
	}
	ev := &modeEval{}
	var reachable []float64
	for _, r := range best {
		if math.IsInf(r, 1) {
			continue
		}
		reachable = append(reachable, r)
	}
	ev.unreachable = 1 - float64(len(reachable))/float64(len(best))
	if len(reachable) > 0 {
		ev.median = stats.Percentile(reachable, 50)
		ev.p99 = stats.Percentile(reachable, 99)
	} else {
		ev.median, ev.p99 = math.Inf(1), math.Inf(1)
	}
	tp, err := throughputOn(ctx, s, first, resilienceK)
	if err != nil {
		return nil, err
	}
	ev.tput = tp.AggregateGbps
	return ev, nil
}

// BPPoint and HybridPoint fetch the two rows of one fraction (helpers for
// reports and tests); ok is false if the fraction is absent.
func (r *ResilienceResult) PointAt(frac float64, mode Mode) (ResiliencePoint, bool) {
	for _, p := range r.Points {
		if p.Fraction == frac && p.Mode == mode {
			return p, true
		}
	}
	return ResiliencePoint{}, false
}

// WriteResilienceReport renders the BP-vs-Hybrid degradation table.
func WriteResilienceReport(w io.Writer, r *ResilienceResult) {
	fmt.Fprintf(w, "resilience scenario=%s seed=%d snapshots=%d\n",
		r.Scenario, r.Seed, r.SnapshotsUsed)
	if r.Partial {
		fmt.Fprintf(w, "resilience PARTIAL: %d of requested fractions completed\n", len(r.Fractions))
	}
	fmt.Fprintf(w, "resilience  frac  mode    medRTT    p99RTT   med-infl   p99-infl  unreach  tput-Gbps  retention\n")
	for _, p := range r.Points {
		fmt.Fprintf(w, "resilience %4.0f%%  %-6s %7.1fms %8.1fms %+9.1f%% %+9.1f%%  %6.1f%%  %9.1f  %8.0f%%\n",
			p.Fraction*100, p.Mode, p.MedianRTTMs, p.P99RTTMs,
			p.MedianInflationPct, p.P99InflationPct, p.UnreachableFrac*100,
			p.ThroughputGbps, p.ThroughputRetention*100)
	}
}
