package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"leosim/internal/aircraft"
	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/ground"
)

// Sim owns the simulation state for one constellation at one scale: the
// constellation (with +Grid ISLs generated; whether they are *used* depends
// on the Mode), the ground segment, the aircraft fleet, and the traffic
// matrix.
type Sim struct {
	Scale  Scale
	Choice ConstellationChoice
	Const  *constellation.Constellation
	Seg    *ground.Segment
	Fleet  *aircraft.Fleet
	Cities []ground.City
	Pairs  []Pair

	// SatCapGbps is the aggregate GSL capacity pool per satellite and
	// direction (§2: satellites share their up-down capacity across the
	// GTs they serve). The default 20 Gbps matches §5; 0 disables the
	// constraint (per-link capacities only — the ablation model).
	SatCapGbps float64

	builders map[Mode]*graph.Builder

	mu    sync.Mutex
	cache map[cacheKey]*graph.Network
}

type cacheKey struct {
	t    time.Time
	mode Mode
}

// SimOption tweaks simulation construction.
type SimOption func(*simConfig)

type simConfig struct {
	gso          ground.GSOPolicy
	elevOverride float64
	extraShells  []constellation.Shell
	sgp4         bool
	satCap       float64
	satCapSet    bool
}

// WithSatelliteCapacity sets the per-satellite aggregate GSL capacity pool
// (per direction); 0 disables the constraint so only per-link capacities
// apply. The default is the paper's 20 Gbps.
func WithSatelliteCapacity(gbps float64) SimOption {
	return func(c *simConfig) { c.satCap, c.satCapSet = gbps, true }
}

// WithGSOAvoidance applies the §7 GSO arc-avoidance constraint to ground
// terminals.
func WithGSOAvoidance(p ground.GSOPolicy) SimOption {
	return func(c *simConfig) { c.gso = p }
}

// WithMinElevation overrides each shell's minimum elevation angle.
func WithMinElevation(deg float64) SimOption {
	return func(c *simConfig) { c.elevOverride = deg }
}

// WithExtraShells adds shells beyond the chosen preset (Fig 10).
func WithExtraShells(shells ...constellation.Shell) SimOption {
	return func(c *simConfig) { c.extraShells = shells }
}

// WithSGP4Propagation propagates satellites with SGP4 (ablation).
func WithSGP4Propagation() SimOption {
	return func(c *simConfig) { c.sgp4 = true }
}

// NewSim assembles a simulation.
func NewSim(choice ConstellationChoice, scale Scale, opts ...SimOption) (*Sim, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	var cfg simConfig
	for _, o := range opts {
		o(&cfg)
	}

	shells := append([]constellation.Shell{choice.Shell()}, cfg.extraShells...)
	constOpts := []constellation.Option{constellation.WithISLs()}
	if cfg.sgp4 {
		constOpts = append(constOpts, constellation.WithSGP4())
	}
	c, err := constellation.New(shells, constOpts...)
	if err != nil {
		return nil, err
	}
	cities, err := ground.Cities(scale.NumCities)
	if err != nil {
		return nil, err
	}
	seg, err := ground.NewSegment(cities, scale.RelaySpacingDeg, scale.RelayMaxKm)
	if err != nil {
		return nil, err
	}
	var fleet *aircraft.Fleet
	if scale.AircraftDensity > 0 {
		fleet, err = aircraft.NewFleet(scale.AircraftDensity)
		if err != nil {
			return nil, err
		}
	}
	pairs, err := SamplePairs(cities, scale.NumPairs, scale.MinPairKm, scale.Seed)
	if err != nil {
		return nil, err
	}

	satCap := 20.0
	if cfg.satCapSet {
		satCap = cfg.satCap
	}
	s := &Sim{
		Scale:      scale,
		SatCapGbps: satCap,
		Choice:     choice,
		Const:      c,
		Seg:        seg,
		Fleet:      fleet,
		Cities:     cities,
		Pairs:      pairs,
		builders:   map[Mode]*graph.Builder{},
		cache:      map[cacheKey]*graph.Network{},
	}
	for _, mode := range []Mode{BP, Hybrid} {
		o := graph.DefaultOptions()
		o.ISL = mode == Hybrid
		o.GSO = cfg.gso
		o.MinElevationOverrideDeg = cfg.elevOverride
		b, err := graph.NewBuilder(c, seg, fleet, o)
		if err != nil {
			return nil, err
		}
		s.builders[mode] = b
	}
	return s, nil
}

// SnapshotTimes returns the simulated-day sampling instants.
func (s *Sim) SnapshotTimes() []time.Time {
	out := make([]time.Time, s.Scale.NumSnapshots)
	for i := range out {
		out[i] = geo.Epoch.Add(time.Duration(i) * s.Scale.SnapshotStep)
	}
	return out
}

// NetworkAt returns the (cached) network snapshot for mode at time t.
func (s *Sim) NetworkAt(t time.Time, mode Mode) *graph.Network {
	key := cacheKey{t: t, mode: mode}
	s.mu.Lock()
	if n, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return n
	}
	s.mu.Unlock()
	n := s.builders[mode].At(t)
	s.mu.Lock()
	// Keep the cache bounded: one network per (snapshot, mode) is fine at
	// reduced scale but too large at full scale; evict everything once it
	// exceeds a handful of entries.
	if len(s.cache) >= 8 {
		s.cache = map[cacheKey]*graph.Network{}
	}
	s.cache[key] = n
	s.mu.Unlock()
	return n
}

// WithISLCapacity rebuilds the Hybrid builder with a different ISL capacity
// (Fig 5). It returns an error if the sim has no hybrid builder.
func (s *Sim) WithISLCapacity(gbps float64) error {
	o := graph.DefaultOptions()
	o.ISL = true
	o.ISLCapGbps = gbps
	b, err := graph.NewBuilder(s.Const, s.Seg, s.Fleet, o)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.builders[Hybrid] = b
	s.cache = map[cacheKey]*graph.Network{}
	s.mu.Unlock()
	return nil
}

// pairRTTs computes, for one snapshot network, the round-trip time in ms for
// every pair (indexed like s.Pairs). Unreachable pairs get +Inf. noGround
// restricts transit to satellites (used by the §6 "pure ISL path" model).
func (s *Sim) pairRTTs(n *graph.Network, noGroundTransit bool) []float64 {
	bySrc := map[int][]int{}
	for pi, p := range s.Pairs {
		bySrc[p.Src] = append(bySrc[p.Src], pi)
	}
	sources := make([]int, 0, len(bySrc))
	for src := range bySrc {
		sources = append(sources, src)
	}
	out := make([]float64, len(s.Pairs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, src := range sources {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var dist []float64
			if noGroundTransit {
				dist, _ = n.DijkstraExpand(n.CityNode(src), nil,
					func(v int32) bool { return !n.IsGroundSide(v) })
			} else {
				dist, _ = n.Dijkstra(n.CityNode(src), nil)
			}
			for _, pi := range bySrc[src] {
				out[pi] = 2 * dist[n.CityNode(s.Pairs[pi].Dst)]
			}
		}(src)
	}
	wg.Wait()
	return out
}

// String summarizes the sim.
func (s *Sim) String() string {
	return fmt.Sprintf("%s/%s: %d sats, %d cities, %d relays, %d pairs, %d snapshots",
		s.Choice, s.Scale.Name, s.Const.Size(), s.Seg.NumCity, s.Seg.NumRelay,
		len(s.Pairs), s.Scale.NumSnapshots)
}
