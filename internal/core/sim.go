package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"leosim/internal/aircraft"
	"leosim/internal/constellation"
	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/ground"
	"leosim/internal/safe"
	"leosim/internal/snapcache"
	"leosim/internal/telemetry"
	"leosim/internal/topo"
)

// Sim owns the simulation state for one constellation at one scale: the
// constellation (with +Grid ISLs generated; whether they are *used* depends
// on the Mode), the ground segment, the aircraft fleet, and the traffic
// matrix.
type Sim struct {
	Scale  Scale
	Choice ConstellationChoice
	Const  *constellation.Constellation
	Seg    *ground.Segment
	Fleet  *aircraft.Fleet
	Cities []ground.City
	Pairs  []Pair

	// Motif is the ISL topology strategy the constellation was built with;
	// nil means the default +Grid. Epoch-aware motifs are re-placed for
	// every snapshot build (Const.ISLs holds the most recently built
	// instant's links).
	Motif topo.Motif

	// SatCapGbps is the aggregate GSL capacity pool per satellite and
	// direction (§2: satellites share their up-down capacity across the
	// GTs they serve). The default 20 Gbps matches §5; 0 disables the
	// constraint (per-link capacities only — the ablation model).
	SatCapGbps float64

	// baseOpts are the build options NewSim resolved from its SimOptions
	// (GSO policy, elevation override, capacities). Every builder rebuild
	// — WithISLCapacity, beam sweeps, fault masking — starts from these,
	// so a rebuild never silently drops an option the sim was created
	// with.
	baseOpts graph.BuildOptions

	// mu guards builders: WithISLCapacity swaps the Hybrid builder while
	// concurrent NetworkAt calls read the map, so every access goes through
	// builderFor / the swap below. (Reading the map without mu was the
	// unsynchronized access the serving work flushed out.)
	mu       sync.Mutex
	builders map[Mode]*graph.Builder

	// snap caches built snapshot networks, one per (mode, time).
	// snapcache's singleflight means concurrent NetworkAt calls for the
	// same snapshot — the serving workload — build it exactly once.
	snap *snapcache.Cache
}

// networkCacheSize bounds how many snapshot networks a Sim keeps alive.
// Experiments sweep snapshots in order per mode, so a small LRU keeps the
// both-modes working set of the current snapshot resident without pinning
// the whole day at full scale.
const networkCacheSize = 8

// SimOption tweaks simulation construction.
type SimOption func(*simConfig)

type simConfig struct {
	gso          ground.GSOPolicy
	elevOverride float64
	extraShells  []constellation.Shell
	sgp4         bool
	satCap       float64
	satCapSet    bool
	motif        topo.Motif
	motifID      topo.ID
	motifIDSet   bool
}

// WithSatelliteCapacity sets the per-satellite aggregate GSL capacity pool
// (per direction); 0 disables the constraint so only per-link capacities
// apply. The default is the paper's 20 Gbps.
func WithSatelliteCapacity(gbps float64) SimOption {
	return func(c *simConfig) { c.satCap, c.satCapSet = gbps, true }
}

// WithGSOAvoidance applies the §7 GSO arc-avoidance constraint to ground
// terminals.
func WithGSOAvoidance(p ground.GSOPolicy) SimOption {
	return func(c *simConfig) { c.gso = p }
}

// WithMinElevation overrides each shell's minimum elevation angle.
func WithMinElevation(deg float64) SimOption {
	return func(c *simConfig) { c.elevOverride = deg }
}

// WithExtraShells adds shells beyond the chosen preset (Fig 10).
func WithExtraShells(shells ...constellation.Shell) SimOption {
	return func(c *simConfig) { c.extraShells = shells }
}

// WithSGP4Propagation propagates satellites with SGP4 (ablation).
func WithSGP4Propagation() SimOption {
	return func(c *simConfig) { c.sgp4 = true }
}

// WithMotif replaces the default +Grid ISL topology with a motif from the
// topology lab (internal/topo). Epoch-aware motifs (nearest, demand) are
// recomputed for every snapshot build; static motifs keep the link set
// placed at construction. A nil motif keeps the default.
func WithMotif(m topo.Motif) SimOption {
	return func(c *simConfig) { c.motif = m }
}

// WithMotifID is WithMotif resolving a built-in motif by ID inside NewSim,
// where the sim's own city set is available — so the demand-aware motif
// optimizes for the same demand model the experiments sample traffic from.
// This is the path the -motif CLI flag takes.
func WithMotifID(id topo.ID) SimOption {
	return func(c *simConfig) { c.motifID, c.motifIDSet = id, true }
}

// NewSim assembles a simulation.
func NewSim(choice ConstellationChoice, scale Scale, opts ...SimOption) (*Sim, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	var cfg simConfig
	for _, o := range opts {
		o(&cfg)
	}

	// Cities load before the constellation so a motif resolved by ID can
	// optimize for the sim's own demand model.
	cities, err := ground.Cities(scale.NumCities)
	if err != nil {
		return nil, err
	}
	if cfg.motifIDSet {
		m, err := topo.Build(cfg.motifID, topo.Config{Cities: cities})
		if err != nil {
			return nil, err
		}
		cfg.motif = m
	}

	shells := append([]constellation.Shell{choice.Shell()}, cfg.extraShells...)
	constOpts := []constellation.Option{constellation.WithISLs()}
	if cfg.motif != nil {
		constOpts = append(constOpts, topo.Option(cfg.motif))
	}
	if cfg.sgp4 {
		constOpts = append(constOpts, constellation.WithSGP4())
	}
	c, err := constellation.New(shells, constOpts...)
	if err != nil {
		return nil, err
	}
	seg, err := ground.NewSegment(cities, scale.RelaySpacingDeg, scale.RelayMaxKm)
	if err != nil {
		return nil, err
	}
	var fleet *aircraft.Fleet
	if scale.AircraftDensity > 0 {
		fleet, err = aircraft.NewFleet(scale.AircraftDensity)
		if err != nil {
			return nil, err
		}
	}
	pairs, err := SamplePairs(cities, scale.NumPairs, scale.MinPairKm, scale.Seed)
	if err != nil {
		return nil, err
	}

	satCap := 20.0
	if cfg.satCapSet {
		satCap = cfg.satCap
	}
	baseOpts := graph.DefaultOptions()
	baseOpts.GSO = cfg.gso
	baseOpts.MinElevationOverrideDeg = cfg.elevOverride
	s := &Sim{
		Scale:      scale,
		SatCapGbps: satCap,
		Choice:     choice,
		Motif:      cfg.motif,
		Const:      c,
		Seg:        seg,
		Fleet:      fleet,
		Cities:     cities,
		Pairs:      pairs,
		baseOpts:   baseOpts,
		builders:   map[Mode]*graph.Builder{},
	}
	for _, mode := range []Mode{BP, Hybrid} {
		b, err := s.builderWith(mode, nil)
		if err != nil {
			return nil, err
		}
		s.builders[mode] = b
	}
	ea, epochAware := cfg.motif.(topo.EpochAware)
	var motifMu sync.Mutex
	s.snap = snapcache.New(func(_ context.Context, key snapcache.Key) (*graph.Network, error) {
		mode := BP
		if key.Scenario == Hybrid.String() {
			mode = Hybrid
		}
		if epochAware && mode == Hybrid {
			// Epoch-aware motifs re-place their links for the build
			// instant — a matching frozen at the epoch drifts until its
			// chords cut the atmosphere (the invariant checker catches
			// exactly that). The builder reads c.ISLs live, so the swap
			// and the build are serialized; BP builds never read ISLs.
			motifMu.Lock()
			defer motifMu.Unlock()
			c.ISLs = ea.LinksAt(c, key.Time)
		}
		return s.builderFor(mode).At(key.Time), nil
	}, snapcache.Options{Capacity: networkCacheSize})
	return s, nil
}

// builderFor reads the current builder for mode under the lock, so a
// concurrent WithISLCapacity swap is never observed half-written.
func (s *Sim) builderFor(mode Mode) *graph.Builder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builders[mode]
}

// builderWith constructs a builder for mode from the sim's base options,
// optionally mutated. This is the single path every builder (re)build goes
// through, so GSO policy and elevation overrides survive capacity sweeps
// and fault injection.
func (s *Sim) builderWith(mode Mode, mutate func(*graph.BuildOptions)) (*graph.Builder, error) {
	o := s.baseOpts
	o.ISL = mode == Hybrid
	if mutate != nil {
		mutate(&o)
	}
	return graph.NewBuilder(s.Const, s.Seg, s.Fleet, o)
}

// SnapshotTimes returns the simulated-day sampling instants.
func (s *Sim) SnapshotTimes() []time.Time {
	out := make([]time.Time, s.Scale.NumSnapshots)
	for i := range out {
		out[i] = geo.Epoch.Add(time.Duration(i) * s.Scale.SnapshotStep)
	}
	return out
}

// NetworkAt returns the (cached) network snapshot for mode at time t.
// Concurrent callers asking for the same snapshot share one build.
func (s *Sim) NetworkAt(t time.Time, mode Mode) *graph.Network {
	return s.NetworkAtCtx(context.Background(), t, mode)
}

// NetworkAtCtx is NetworkAt with the caller's context values — notably a
// telemetry recorder — carried into the snapshot cache, so cache hits,
// singleflight waits and build time are attributed to the run that incurred
// them. Cancellation is deliberately stripped: experiments poll their
// context at snapshot boundaries, and a build, once started, is never
// abandoned (snapcache's contract).
func (s *Sim) NetworkAtCtx(ctx context.Context, t time.Time, mode Mode) *graph.Network {
	n, err := s.snap.Get(context.WithoutCancel(ctx), snapcache.Key{
		Scenario: mode.String(),
		Time:     t,
	})
	if err != nil {
		// The build function cannot fail and the context never cancels,
		// so the only way here is a builder panic the cache converted to
		// an error; re-throw it for the experiment's safe.RecoverTo.
		panic(err)
	}
	return n
}

// NetworkCacheStats snapshots the sim's network-cache counters (hits,
// misses, builds, evictions) — observability for the serving layer and the
// concurrency tests.
func (s *Sim) NetworkCacheStats() snapcache.Stats { return s.snap.Stats() }

// cachedNetworks reports how many snapshots are currently cached (tests).
func (s *Sim) cachedNetworks() int { return s.snap.Len() }

// dropCaches empties the snapshot cache after a builder swap. In-flight
// builds against the old builder complete for their waiters but are not
// re-inserted (snapcache's generation guard).
func (s *Sim) dropCaches() { s.snap.Purge() }

// WithISLCapacity rebuilds the Hybrid builder with a different ISL capacity
// (Fig 5), preserving every other option the sim was created with (GSO
// policy, elevation override).
func (s *Sim) WithISLCapacity(gbps float64) error {
	b, err := s.builderWith(Hybrid, func(o *graph.BuildOptions) {
		o.ISLCapGbps = gbps
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.builders[Hybrid] = b
	s.dropCaches()
	s.mu.Unlock()
	return nil
}

// pairRTTsTestHook, when non-nil, runs inside every pairRTTs worker. Tests
// inject panics here to verify worker failures surface as errors.
var pairRTTsTestHook func(src int)

// pairRTTs computes, for one snapshot network, the round-trip time in ms for
// every pair (indexed like s.Pairs). Unreachable pairs get +Inf. noGround
// restricts transit to satellites (used by the §6 "pure ISL path" model).
// Cancellation of ctx stops the fan-out between sources and returns the
// context's error; a worker panic comes back as a *safe.PanicError.
func (s *Sim) pairRTTs(ctx context.Context, n *graph.Network, noGroundTransit bool) ([]float64, error) {
	// Recorder-only span: the per-search kernel time already feeds the
	// registry histogram from graph.Search; this attributes the whole
	// fan-out's wall time to the run.
	defer telemetry.RecordSpan(ctx, telemetry.StageSearch).End()
	bySrc := map[int][]int{}
	for pi, p := range s.Pairs {
		bySrc[p.Src] = append(bySrc[p.Src], pi)
	}
	sources := make([]int, 0, len(bySrc))
	for src := range bySrc {
		sources = append(sources, src)
	}
	out := make([]float64, len(s.Pairs))
	g := safe.NewGroup(ctx, runtime.GOMAXPROCS(0))
	for _, src := range sources {
		src := src
		g.Go(func() error {
			if pairRTTsTestHook != nil {
				pairRTTsTestHook(src)
			}
			// Pooled scratch state: the whole search runs allocation-free
			// and distances are read back without materializing slices.
			st := graph.AcquireSearch()
			defer st.Release()
			spec := graph.SearchSpec{Src: n.CityNode(src), Target: graph.NoTarget}
			if noGroundTransit {
				spec.Expand = func(v int32) bool { return !n.IsGroundSide(v) }
			}
			n.Search(st, spec)
			for _, pi := range bySrc[src] {
				out[pi] = 2 * st.Dist(n.CityNode(s.Pairs[pi].Dst))
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// String summarizes the sim.
func (s *Sim) String() string {
	return fmt.Sprintf("%s/%s: %d sats, %d cities, %d relays, %d pairs, %d snapshots",
		s.Choice, s.Scale.Name, s.Const.Size(), s.Seg.NumCity, s.Seg.NumRelay,
		len(s.Pairs), s.Scale.NumSnapshots)
}
