package core

import (
	"context"
	"fmt"
	"io"
	"math"

	"leosim/internal/ground"
	"leosim/internal/safe"
	"leosim/internal/stats"
)

// GSOImpactResult quantifies §7's closing claim: "the impact of the reduced
// GT field-of-view will be much higher on BP than on ISL connectivity, as
// for the latter, only sources and destinations in the Equatorial region
// will be affected". It compares equatorial-involved pairs with and without
// the arc-avoidance constraint under both modes.
type GSOImpactResult struct {
	// EquatorialPairs counts sampled pairs with at least one endpoint
	// within ±15° latitude.
	EquatorialPairs int
	// UnreachableFrac[mode] is the fraction of those pairs unroutable at
	// the sampled snapshot once the constraint applies.
	UnreachableFracBP, UnreachableFracHybrid float64
	// MedianInflationMs[mode] is the median RTT increase caused by the
	// constraint among pairs that stay reachable.
	MedianInflationBPMs, MedianInflationHybridMs float64
}

// RunGSOImpact compares routing with and without the Starlink 22° GSO
// separation rule for equatorial-involved pairs, at the first snapshot.
// It builds a second, GSO-constrained sim sharing the base sim's scale.
func RunGSOImpact(ctx context.Context, s *Sim) (res *GSOImpactResult, err error) {
	defer safe.RecoverTo(&err)
	constrained, err := NewSim(s.Choice, s.Scale, WithGSOAvoidance(ground.StarlinkGSOPolicy()))
	if err != nil {
		return nil, err
	}
	t := s.SnapshotTimes()[0]
	res = &GSOImpactResult{}

	var eqPairs []Pair
	for _, p := range s.Pairs {
		if math.Abs(s.Cities[p.Src].Lat) <= 15 || math.Abs(s.Cities[p.Dst].Lat) <= 15 {
			eqPairs = append(eqPairs, p)
		}
	}
	res.EquatorialPairs = len(eqPairs)
	if len(eqPairs) == 0 {
		return nil, fmt.Errorf("core: no equatorial-involved pairs in the sample")
	}

	// Restrict to pairs reachable unconstrained under BOTH modes so the
	// two unreachability fractions share a denominator (and the hybrid ⊇
	// BP graph containment makes them comparable).
	freeRTT := map[Mode]map[int]float64{BP: {}, Hybrid: {}}
	for _, mode := range []Mode{BP, Hybrid} {
		free := s.NetworkAt(t, mode)
		for pi, p := range eqPairs {
			if pf, ok := free.ShortestPath(free.CityNode(p.Src), free.CityNode(p.Dst)); ok {
				freeRTT[mode][pi] = pf.RTTMs()
			}
		}
	}
	var eligible []int
	for pi := range eqPairs {
		if _, a := freeRTT[BP][pi]; a {
			if _, b := freeRTT[Hybrid][pi]; b {
				eligible = append(eligible, pi)
			}
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("core: no equatorial pair reachable under both unconstrained modes")
	}
	res.EquatorialPairs = len(eligible)

	for _, mode := range []Mode{BP, Hybrid} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gso := constrained.NetworkAt(t, mode)
		var inflations []float64
		unreachable := 0
		for _, pi := range eligible {
			p := eqPairs[pi]
			pg, ok := gso.ShortestPath(gso.CityNode(p.Src), gso.CityNode(p.Dst))
			if !ok {
				unreachable++
				continue
			}
			inflations = append(inflations, pg.RTTMs()-freeRTT[mode][pi])
		}
		unFrac := float64(unreachable) / float64(len(eligible))
		med := stats.Percentile(inflations, 50)
		if math.IsNaN(med) {
			med = math.Inf(1)
		}
		if mode == BP {
			res.UnreachableFracBP = unFrac
			res.MedianInflationBPMs = med
		} else {
			res.UnreachableFracHybrid = unFrac
			res.MedianInflationHybridMs = med
		}
	}
	return res, nil
}

// WriteGSOImpactReport renders the comparison.
func WriteGSOImpactReport(w io.Writer, r *GSOImpactResult) {
	fmt.Fprintf(w, "gso-impact equatorial pairs: %d\n", r.EquatorialPairs)
	fmt.Fprintf(w, "gso-impact bp:     %4.0f%% become unreachable, median RTT inflation %+.1f ms\n",
		r.UnreachableFracBP*100, r.MedianInflationBPMs)
	fmt.Fprintf(w, "gso-impact hybrid: %4.0f%% become unreachable, median RTT inflation %+.1f ms\n",
		r.UnreachableFracHybrid*100, r.MedianInflationHybridMs)
}
