package core

import (
	"context"
	"fmt"
	"time"

	"leosim/internal/geo"
	"leosim/internal/ground"
	"leosim/internal/safe"
)

// GSORow quantifies Fig 9 at one latitude: how much of the usable sky the
// GSO arc-avoidance constraint blocks, and the average number of reachable
// satellites with and without the constraint.
type GSORow struct {
	LatitudeDeg     float64
	FOVBlockedFrac  float64
	VisibleSatsFree float64
	VisibleSatsGSO  float64
}

// RunGSOArc evaluates the GSO arc-avoidance impact (§7, Fig 9) on this
// sim's constellation: for terminals at a range of latitudes, the fraction
// of the ≥minElev sky blocked by the 22° separation rule and the mean count
// of connectable satellites over sampled snapshots. Fig 9 uses the 40°
// minimum elevation Starlink plans for full deployment.
func RunGSOArc(ctx context.Context, s *Sim, minElevDeg float64, latitudes []float64) (rows []GSORow, err error) {
	defer safe.RecoverTo(&err)
	policy := ground.StarlinkGSOPolicy()
	times := s.SnapshotTimes()
	if len(times) == 0 {
		return nil, fmt.Errorf("core: no snapshots to simulate (NumSnapshots = %d)",
			s.Scale.NumSnapshots)
	}
	if len(times) > 8 {
		times = times[:8]
	}
	for _, lat := range latitudes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pos := geo.LL(lat, 0)
		obs := pos.ToECEF()
		ck := ground.NewGSOChecker(pos, policy)
		var free, constrained float64
		for _, t := range times {
			satPos := s.Const.PositionsECEF(t)
			for _, sp := range satPos {
				if geo.Elevation(obs, sp) < minElevDeg {
					continue
				}
				free++
				if ck.Allowed(sp) {
					constrained++
				}
			}
		}
		nT := float64(len(times))
		rows = append(rows, GSORow{
			LatitudeDeg:     lat,
			FOVBlockedFrac:  ground.FOVReduction(lat, minElevDeg, policy),
			VisibleSatsFree: free / nT,
			VisibleSatsGSO:  constrained / nT,
		})
	}
	return rows, nil
}

// GSOConnectivityLoss compares cross-Equatorial BP reachability with and
// without the GSO constraint: the mean number of connectable satellites for
// equatorial terminals falls much harder than for mid-latitude ones, which
// is why BP (whose north–south traffic must transit equatorial GTs) suffers
// disproportionately (§7).
func GSOConnectivityLoss(s *Sim, minElevDeg float64, at time.Time) (equatorLossFrac, midLatLossFrac float64) {
	loss := func(lat float64) float64 {
		pos := geo.LL(lat, 0)
		obs := pos.ToECEF()
		ck := ground.NewGSOChecker(pos, ground.StarlinkGSOPolicy())
		free, con := 0, 0
		for _, sp := range s.Const.PositionsECEF(at) {
			if geo.Elevation(obs, sp) < minElevDeg {
				continue
			}
			free++
			if ck.Allowed(sp) {
				con++
			}
		}
		if free == 0 {
			return 0
		}
		return 1 - float64(con)/float64(free)
	}
	return loss(0), loss(45)
}
