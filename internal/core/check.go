package core

import (
	"context"

	"leosim/internal/check"
	"leosim/internal/flow"
	"leosim/internal/geo"
	"leosim/internal/graph"
	"leosim/internal/safe"
)

// CheckOptions sizes an invariant-checking sweep.
type CheckOptions struct {
	// Snapshots caps how many of the scale's snapshot times are swept
	// (0 = all of them).
	Snapshots int
	// PairSample caps how many traffic pairs get the per-pair checks
	// (symmetry, dominance) per snapshot; pairs are sampled at a fixed
	// stride so the set is deterministic. Default 24.
	PairSample int
	// OptimalitySample caps how many pairs are verified against the naive
	// O(V²) reference Dijkstra per snapshot — the expensive check.
	// Default 6.
	OptimalitySample int
	// MinISLAltKm is the atmosphere floor ISLs must clear (§2). Default
	// 80 km; pass a negative value to disable (sparse test shells).
	MinISLAltKm float64
}

func (o *CheckOptions) setDefaults() {
	if o.PairSample <= 0 {
		o.PairSample = 24
	}
	if o.OptimalitySample <= 0 {
		o.OptimalitySample = 6
	}
	if o.MinISLAltKm == 0 {
		o.MinISLAltKm = 80
	}
	if o.MinISLAltKm < 0 {
		o.MinISLAltKm = 0
	}
}

// RunCheck sweeps the invariant-validation suite (internal/check) over the
// sim: for every checked snapshot it validates both modes' graphs against
// the constellation's physics, routed paths against continuity/lower-bound/
// symmetry/dominance/optimality oracles, and the max-min throughput
// allocation against the Bertsekas–Gallager bottleneck conditions. The
// returned report carries violation samples tagged with snapshot and mode;
// it is the engine behind `leosim check`.
func RunCheck(ctx context.Context, s *Sim, opts CheckOptions) (rep *check.Report, err error) {
	defer safe.RecoverTo(&err)
	opts.setDefaults()

	geom := check.NewGeometry(s.Const, s.baseOpts.MinElevationOverrideDeg)
	geom.MinISLAltKm = opts.MinISLAltKm

	times := s.SnapshotTimes()
	if opts.Snapshots > 0 && opts.Snapshots < len(times) {
		times = times[:opts.Snapshots]
	}
	pairStride := stride(len(s.Pairs), opts.PairSample)
	optStride := stride(len(s.Pairs), opts.OptimalitySample)

	rep = &check.Report{}
	for _, t := range times {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		label := "t+" + t.Sub(geo.Epoch).String()
		nets := map[Mode]*checkedNet{}
		for _, mode := range []Mode{BP, Hybrid} {
			n := s.NetworkAtCtx(ctx, t, mode)
			nets[mode] = &checkedNet{net: n}
			rep.SetContext(label, mode.String())
			geom.CheckNetwork(rep, n)
		}
		bp, hy := nets[BP].net, nets[Hybrid].net

		for pi := 0; pi < len(s.Pairs); pi += pairStride {
			p := s.Pairs[pi]
			src, dst := hy.CityNode(p.Src), hy.CityNode(p.Dst)
			rep.SetContext(label, Hybrid.String())
			check.CheckSymmetry(rep, hy, src, dst)
			rep.SetContext(label, "bp-vs-hybrid")
			check.CheckDominance(rep, bp, hy, src, dst)
		}
		for pi := 0; pi < len(s.Pairs); pi += optStride {
			p := s.Pairs[pi]
			for _, mode := range []Mode{BP, Hybrid} {
				n := nets[mode].net
				rep.SetContext(label, mode.String())
				check.CheckOptimality(rep, n, n.CityNode(p.Src), n.CityNode(p.Dst), false)
			}
		}
		for _, mode := range []Mode{BP, Hybrid} {
			rep.SetContext(label, mode.String())
			if err := checkMaxMin(ctx, s, rep, nets[mode].net); err != nil {
				return nil, err
			}
		}
	}
	rep.SetContext("", "")
	return rep, nil
}

type checkedNet struct{ net *graph.Network }

// checkMaxMin routes the full traffic matrix over shortest paths, solves the
// max-min allocation exactly as the throughput experiments do, and holds the
// result to the defining optimality conditions via the independent
// flow.VerifyMaxMin oracle.
func checkMaxMin(ctx context.Context, s *Sim, rep *check.Report, n *graph.Network) error {
	paths, err := computePairPaths(ctx, s, n, 1)
	if err != nil {
		return err
	}
	pr := flow.NewNetworkProblem(n, s.SatCapGbps)
	for _, pp := range paths {
		for _, p := range pp {
			if _, err := pr.AddPath(p); err != nil {
				return err
			}
		}
	}
	alloc, err := pr.MaxMinFair()
	if err != nil {
		return err
	}
	for _, v := range pr.VerifyMaxMin(alloc, maxMinTolGbps) {
		rep.Violatef(check.ClassFlow, "%s: %s", v.Kind, v.Detail)
	}
	rep.Checked("flow-allocations", len(alloc))
	return nil
}

// maxMinTolGbps absorbs float accumulation across progressive-filling
// rounds; violations of interest (oversubscription, starved flows) are
// orders of magnitude larger.
const maxMinTolGbps = 1e-6

// stride returns the pair-index step that yields ~want samples.
func stride(total, want int) int {
	if want <= 0 || total <= want {
		return 1
	}
	return total / want
}
