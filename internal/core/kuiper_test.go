package core

import (
	"context"
	"sync"
	"testing"
)

var (
	kuiperOnce sync.Once
	kuiperSim  *Sim
	kuiperErr  error
)

func getKuiperSim(t *testing.T) *Sim {
	t.Helper()
	kuiperOnce.Do(func() {
		kuiperSim, kuiperErr = NewSim(Kuiper, TinyScale())
	})
	if kuiperErr != nil {
		t.Fatal(kuiperErr)
	}
	return kuiperSim
}

// The paper evaluates both constellations; every headline direction must
// hold on Kuiper's shell too.
func TestKuiperLatencyDirection(t *testing.T) {
	s := getKuiperSim(t)
	if s.Const.Size() != 1156 {
		t.Fatalf("Kuiper size = %d", s.Const.Size())
	}
	r, err := RunLatency(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.MinRTT[BP] {
		if r.MinRTT[Hybrid][i] > r.MinRTT[BP][i]+1e-9 {
			t.Fatalf("pair %d: hybrid min RTT above BP", i)
		}
	}
}

func TestKuiperThroughputDirection(t *testing.T) {
	s := getKuiperSim(t)
	t0 := s.SnapshotTimes()[0]
	bp, err := RunThroughput(context.Background(), s, BP, 4, t0)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := RunThroughput(context.Background(), s, Hybrid, 4, t0)
	if err != nil {
		t.Fatal(err)
	}
	if hy.AggregateGbps <= bp.AggregateGbps {
		t.Errorf("Kuiper hybrid %v should beat BP %v", hy.AggregateGbps, bp.AggregateGbps)
	}
}

func TestKuiperWeatherDirection(t *testing.T) {
	s := getKuiperSim(t)
	r, err := RunWeather(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.MedianAdvantageDB() < 0 {
		t.Errorf("Kuiper ISL weather advantage = %v dB", r.MedianAdvantageDB())
	}
}

func TestKuiperDisconnected(t *testing.T) {
	s := getKuiperSim(t)
	r, err := RunDisconnected(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean <= 0 || r.Mean >= 1 {
		t.Errorf("Kuiper stranded fraction %v", r.Mean)
	}
}
