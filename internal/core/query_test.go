package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"leosim/internal/fault"
	"leosim/internal/geo"
)

func querySim(t *testing.T) *Sim {
	t.Helper()
	scale := TinyScale()
	scale.NumSnapshots = 2
	s, err := NewSim(Starlink, scale)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFindCity(t *testing.T) {
	s := querySim(t)
	idx, ok := s.FindCity(s.CityName(3))
	if !ok || idx != 3 {
		t.Fatalf("FindCity(%q) = (%d, %v), want (3, true)", s.CityName(3), idx, ok)
	}
	if _, ok := s.FindCity("Atlantis"); ok {
		t.Fatal("FindCity should miss on unknown city")
	}
	if s.NumCities() != len(s.Cities) {
		t.Fatalf("NumCities = %d, want %d", s.NumCities(), len(s.Cities))
	}
}

// PathAt must agree exactly with the batch path the experiments compute —
// the server serves the same numbers the figures print.
func TestPathAtMatchesBatchShortestPath(t *testing.T) {
	s := querySim(t)
	ctx := context.Background()
	for _, mode := range []Mode{BP, Hybrid} {
		n := s.NetworkAt(geo.Epoch, mode)
		for _, pair := range s.Pairs[:10] {
			q, err := s.PathAt(ctx, n, pair.Src, pair.Dst)
			if err != nil {
				t.Fatal(err)
			}
			p, ok := n.ShortestPath(n.CityNode(pair.Src), n.CityNode(pair.Dst))
			if q.Reachable != ok {
				t.Fatalf("%s %d→%d: reachable=%v, batch says %v", mode, pair.Src, pair.Dst, q.Reachable, ok)
			}
			if !ok {
				continue
			}
			if q.RTTMs != p.RTTMs() || q.Hops != p.Hops() {
				t.Fatalf("%s %d→%d: (rtt=%v hops=%d), batch (rtt=%v hops=%d)",
					mode, pair.Src, pair.Dst, q.RTTMs, q.Hops, p.RTTMs(), p.Hops())
			}
			if len(q.Route) != p.Hops()+1 {
				t.Fatalf("route has %d names for %d hops", len(q.Route), p.Hops())
			}
		}
	}
}

// A cancelled request context must reach the routing kernel: PathAt returns
// the context's error, not a result.
func TestPathAtCancellationReachesKernel(t *testing.T) {
	s := querySim(t)
	n := s.NetworkAt(geo.Epoch, BP)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q, err := s.PathAt(ctx, n, s.Pairs[0].Src, s.Pairs[0].Dst)
	if q != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("PathAt on cancelled ctx = (%v, %v), want (nil, context.Canceled)", q, err)
	}
	if _, err := s.ReachabilityAt(ctx, n, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReachabilityAt on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestPathAtRejectsBadIndices(t *testing.T) {
	s := querySim(t)
	n := s.NetworkAt(geo.Epoch, BP)
	if _, err := s.PathAt(context.Background(), n, -1, 0); err == nil {
		t.Fatal("negative src should error")
	}
	if _, err := s.PathAt(context.Background(), n, 0, len(s.Cities)); err == nil {
		t.Fatal("out-of-range dst should error")
	}
}

// BuildNetworkAt is pure: two builds of the same (t, mode, outages) agree
// link for link, and it bypasses the sim cache entirely.
func TestBuildNetworkAtDeterministicAndUncached(t *testing.T) {
	s := querySim(t)
	ctx := context.Background()
	base := s.NetworkCacheStats()

	plan, err := fault.ForScenario(fault.SatOutage, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Realize(s.Const, len(s.Seg.Terminals))
	if err != nil {
		t.Fatal(err)
	}
	n1, err := s.BuildNetworkAt(ctx, geo.Epoch, Hybrid, out)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := s.BuildNetworkAt(ctx, geo.Epoch, Hybrid, out)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == n2 {
		t.Fatal("BuildNetworkAt must not return a shared cached network")
	}
	if len(n1.Links) != len(n2.Links) || n1.N() != n2.N() {
		t.Fatalf("non-deterministic build: %d/%d links, %d/%d nodes",
			len(n1.Links), len(n2.Links), n1.N(), n2.N())
	}
	for i := range n1.Links {
		if n1.Links[i] != n2.Links[i] {
			t.Fatalf("link %d differs between identical builds", i)
		}
	}
	// The masked build must differ from the healthy one.
	healthy, err := s.BuildNetworkAt(ctx, geo.Epoch, Hybrid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(healthy.Links) <= len(n1.Links) {
		t.Fatalf("mask removed nothing: healthy %d links, faulted %d", len(healthy.Links), len(n1.Links))
	}
	after := s.NetworkCacheStats()
	if after.Builds != base.Builds {
		t.Errorf("BuildNetworkAt touched the sim snapshot cache (builds %d → %d)", base.Builds, after.Builds)
	}

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.BuildNetworkAt(cctx, geo.Epoch, BP, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled BuildNetworkAt: err = %v, want context.Canceled", err)
	}
}

func TestReachabilityAt(t *testing.T) {
	s := querySim(t)
	ctx := context.Background()
	n := s.NetworkAt(geo.Epoch, BP)

	q, err := s.ReachabilityAt(ctx, n, -1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Components < 1 || q.TotalCities != len(s.Cities) {
		t.Fatalf("summary = %+v", q)
	}
	if q.StrandedFrac < 0 || q.StrandedFrac > 1 || math.IsNaN(q.StrandedFrac) {
		t.Fatalf("StrandedFrac = %v", q.StrandedFrac)
	}
	if q.ReachableCities != q.TotalCities {
		t.Fatalf("no-source query: ReachableCities = %d, want TotalCities %d", q.ReachableCities, q.TotalCities)
	}

	qs, err := s.ReachabilityAt(ctx, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if qs.ReachableCities < 1 || qs.ReachableCities > qs.TotalCities {
		t.Fatalf("sourced query: ReachableCities = %d of %d", qs.ReachableCities, qs.TotalCities)
	}
	if _, err := s.ReachabilityAt(ctx, n, len(s.Cities)); err == nil {
		t.Fatal("out-of-range source should error")
	}
}
